// Benchmarks regenerating every figure of the paper's evaluation (one
// benchmark per figure, Figures 3-11), plus component throughput and the
// ablation benchmarks called out in DESIGN.md §4. Run with:
//
//	go test -bench=. -benchmem
package tracedst_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"tracedst/internal/analysis"
	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/experiments"
	"tracedst/internal/pagemap"
	"tracedst/internal/profile"
	"tracedst/internal/rules"
	"tracedst/internal/trace"
	"tracedst/internal/tracediff"
	"tracedst/internal/tracer"
	"tracedst/internal/workloads"
	"tracedst/internal/xform"
)

// ---------------------------------------------------------------------------
// shared fixtures (traced once, reused across benchmark iterations)

type fixtures struct {
	t1Orig []trace.Record // SoA trace, LEN=16
	t2Orig []trace.Record // nested-struct trace, LEN=16
	t3Orig []trace.Record // contiguous-array trace, LEN=1024
	big    []trace.Record // larger matmul trace for throughput numbers
}

var (
	fixOnce sync.Once
	fix     fixtures
)

func load(b *testing.B) *fixtures {
	b.Helper()
	fixOnce.Do(func() {
		mustTrace := func(src string, defs map[string]string) []trace.Record {
			res, err := tracer.Run(src, defs, tracer.Options{})
			if err != nil {
				panic(err)
			}
			return res.Records
		}
		fix.t1Orig = mustTrace(workloads.Trans1SoA, map[string]string{"LEN": "16"})
		fix.t2Orig = mustTrace(workloads.Trans2Inline, map[string]string{"LEN": "16"})
		fix.t3Orig = mustTrace(workloads.Trans3Contiguous, map[string]string{"LEN": "1024"})
		fix.big = mustTrace(workloads.MatMul, map[string]string{"N": "24"})
	})
	return &fix
}

func mustRule(b *testing.B, src string) rules.Rule {
	b.Helper()
	r, err := rules.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

func runFigure(b *testing.B, id string) {
	b.Helper()
	var recs int
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		recs = r.Records
	}
	b.ReportMetric(float64(recs), "trace-records")
}

// ---------------------------------------------------------------------------
// one benchmark per figure (full pipeline: trace → [transform] → simulate/diff)

// BenchmarkFig03_SoA regenerates Figure 3: the SoA program's per-set
// histogram on the 32 KB direct-mapped cache.
func BenchmarkFig03_SoA(b *testing.B) { runFigure(b, "fig3") }

// BenchmarkFig04_AoSTransformed regenerates Figure 4: the same trace after
// the Listing 5 SoA→AoS rule.
func BenchmarkFig04_AoSTransformed(b *testing.B) { runFigure(b, "fig4") }

// BenchmarkFig05_Trans1Diff regenerates Figure 5: the T1 trace diff.
func BenchmarkFig05_Trans1Diff(b *testing.B) { runFigure(b, "fig5") }

// BenchmarkFig06_Nested regenerates Figure 6: the inline nested-structure
// program's histogram.
func BenchmarkFig06_Nested(b *testing.B) { runFigure(b, "fig6") }

// BenchmarkFig07_OutlinedTransformed regenerates Figure 7: the outlined
// layout with its extra indirection loads.
func BenchmarkFig07_OutlinedTransformed(b *testing.B) { runFigure(b, "fig7") }

// BenchmarkFig08_Trans2Diff regenerates Figure 8: the T2 trace diff.
func BenchmarkFig08_Trans2Diff(b *testing.B) { runFigure(b, "fig8") }

// BenchmarkFig09_Trans3Diff regenerates Figure 9: the T3 (stride) diff with
// injected index arithmetic.
func BenchmarkFig09_Trans3Diff(b *testing.B) { runFigure(b, "fig9") }

// BenchmarkFig10_Contiguous regenerates Figure 10: the contiguous sweep on
// the PowerPC 440 geometry.
func BenchmarkFig10_Contiguous(b *testing.B) { runFigure(b, "fig10") }

// BenchmarkFig11_SetPinned regenerates Figure 11: the strided, set-pinned
// sweep on the PowerPC 440 geometry.
func BenchmarkFig11_SetPinned(b *testing.B) { runFigure(b, "fig11") }

// ---------------------------------------------------------------------------
// component throughput

// BenchmarkTracerListing1 measures tracing throughput (the Gleipnir role):
// interpret + annotate the paper's Listing 1.
func BenchmarkTracerListing1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tracer.Run(workloads.Listing1, nil, tracer.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracerMatMul measures tracing a denser kernel and reports
// records/op.
func BenchmarkTracerMatMul(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		res, err := tracer.Run(workloads.MatMul, map[string]string{"N": "24"}, tracer.Options{})
		if err != nil {
			b.Fatal(err)
		}
		n = len(res.Records)
	}
	b.ReportMetric(float64(n), "trace-records")
}

// BenchmarkTraceParse measures trace-file parsing throughput.
func BenchmarkTraceParse(b *testing.B) {
	f := load(b)
	text := trace.Format(trace.Header{PID: 1}, f.big)
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := trace.ParseAll(text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceFormat measures trace-file rendering throughput.
func BenchmarkTraceFormat(b *testing.B) {
	f := load(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = trace.Format(trace.Header{PID: 1}, f.big)
	}
}

// BenchmarkCacheAccess measures the raw simulator datapath.
func BenchmarkCacheAccess(b *testing.B) {
	c, err := cache.New(cache.Paper32KDirect(), nil)
	if err != nil {
		b.Fatal(err)
	}
	var buf []cache.Outcome
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.Access(cache.Read, uint64(i*64), 4, 1, buf[:0])
	}
}

// BenchmarkSimulateMatMul measures full dinero simulation throughput with
// per-variable attribution.
func BenchmarkSimulateMatMul(b *testing.B) {
	f := load(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := dinero.New(dinero.Options{L1: cache.Paper32KDirect()})
		if err != nil {
			b.Fatal(err)
		}
		sim.Process(f.big)
	}
	b.ReportMetric(float64(len(f.big)), "trace-records")
}

// BenchmarkXformT1 measures transformation throughput for the remap rule.
func BenchmarkXformT1(b *testing.B) {
	f := load(b)
	rule := mustRule(b, workloads.RuleTrans1ForLen(16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := xform.New(xform.Options{}, rule)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.TransformAll(f.t1Orig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXformT3 measures the stride rule (formula evaluation + injected
// records) on the 1024-element trace.
func BenchmarkXformT3(b *testing.B) {
	f := load(b)
	rule := mustRule(b, workloads.RuleTrans3ForLen(1024, 16, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := xform.New(xform.Options{}, rule)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.TransformAll(f.t3Orig); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceDiff measures the Myers alignment on the largest figure
// diff (T3: ~7k vs ~12k records).
func BenchmarkTraceDiff(b *testing.B) {
	f := load(b)
	rule := mustRule(b, workloads.RuleTrans3ForLen(1024, 16, 8))
	eng, err := xform.New(xform.Options{}, rule)
	if err != nil {
		b.Fatal(err)
	}
	transformed, err := eng.TransformAll(f.t3Orig)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := tracediff.New(f.t3Orig, transformed)
		if d.Stats().Rewritten == 0 {
			b.Fatal("empty diff")
		}
	}
}

// BenchmarkReuseDistances measures the Fenwick-tree stack-distance profiler
// on the matmul trace.
func BenchmarkReuseDistances(b *testing.B) {
	f := load(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := analysis.ReuseDistances(f.big, 32)
		if r.Accesses == 0 {
			b.Fatal("empty profile")
		}
	}
	b.ReportMetric(float64(len(f.big)), "trace-records")
}

// BenchmarkProfile measures the memory-profile pass.
func BenchmarkProfile(b *testing.B) {
	f := load(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := profile.New(f.big)
		if p.WorkingSet == 0 {
			b.Fatal("empty profile")
		}
	}
}

// BenchmarkTimeline measures the windowed miss-rate pass.
func BenchmarkTimeline(b *testing.B) {
	f := load(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl, err := analysis.MissTimeline(f.big, cache.Paper32KDirect(), 1024)
		if err != nil || len(tl.Points) == 0 {
			b.Fatal(err)
		}
	}
}

// BenchmarkPagemapTranslate measures virtual→physical translation.
func BenchmarkPagemapTranslate(b *testing.B) {
	for _, pol := range []pagemap.Policy{pagemap.Sequential, pagemap.Shuffled} {
		b.Run(pol.String(), func(b *testing.B) {
			m := pagemap.New(pagemap.Config{Policy: pol, Seed: 1})
			for i := 0; i < b.N; i++ {
				// Cycle through 64 Ki pages so the frame space never
				// exhausts however large b.N grows.
				addr := uint64(i%(1<<20)) << 6
				if _, err := m.Translate(addr); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkXformPeel measures the structure-peeling rule.
func BenchmarkXformPeel(b *testing.B) {
	res, err := tracer.Run(`
typedef struct { int hot; double cold1; double cold2; } Rec;
Rec lRec[64];
int main(void) {
	int sum;
	GLEIPNIR_START_INSTRUMENTATION;
	sum = 0;
	for (int i = 0; i < 64; i++) sum += lRec[i].hot;
	GLEIPNIR_STOP_INSTRUMENTATION;
	return sum;
}`, nil, tracer.Options{})
	if err != nil {
		b.Fatal(err)
	}
	rule := mustRule(b, `
in:
struct lRec { int hot; double cold1; double cold2; }[64];
out:
struct lHot { int hot; }[64];
struct lCold { double cold1; double cold2; }[64];
`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, err := xform.New(xform.Options{}, rule)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.TransformAll(res.Records); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// ablations (DESIGN.md §4)

// BenchmarkAblationStreamingXform contrasts the paper's line-at-a-time
// processing with whole-slice batching (same work, different call shape).
func BenchmarkAblationStreamingXform(b *testing.B) {
	f := load(b)
	rule := mustRule(b, workloads.RuleTrans3ForLen(1024, 16, 8))
	b.Run("streaming", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, _ := xform.New(xform.Options{}, rule)
			n := 0
			for j := range f.t3Orig {
				out, err := eng.Transform(&f.t3Orig[j])
				if err != nil {
					b.Fatal(err)
				}
				n += len(out)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eng, _ := xform.New(xform.Options{}, rule)
			if _, err := eng.TransformAll(f.t3Orig); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationAttribution measures the cost of the "modified DineroIV"
// function/variable attribution versus the bare cache datapath.
func BenchmarkAblationAttribution(b *testing.B) {
	f := load(b)
	b.Run("bare-cache", func(b *testing.B) {
		var buf []cache.Outcome
		for i := 0; i < b.N; i++ {
			c, _ := cache.New(cache.Paper32KDirect(), nil)
			for j := range f.big {
				r := &f.big[j]
				if r.Op == trace.Misc {
					continue
				}
				buf = c.Access(cache.Read, r.Addr, r.Size, cache.NoOwner, buf[:0])
			}
		}
	})
	b.Run("attributed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim, _ := dinero.New(dinero.Options{L1: cache.Paper32KDirect()})
			sim.Process(f.big)
		}
	})
}

// BenchmarkAblationReplacement compares replacement policies on an
// 8-way cache driven by the matmul trace.
func BenchmarkAblationReplacement(b *testing.B) {
	f := load(b)
	for _, repl := range []cache.ReplPolicy{cache.ReplLRU, cache.ReplFIFO, cache.ReplRandom, cache.ReplRoundRobin} {
		b.Run(strings.ReplaceAll(repl.String(), "-", ""), func(b *testing.B) {
			cfg := cache.Config{Size: 8 * 1024, BlockSize: 32, Assoc: 8, Repl: repl}
			var misses int64
			for i := 0; i < b.N; i++ {
				sim, err := dinero.New(dinero.Options{L1: cfg})
				if err != nil {
					b.Fatal(err)
				}
				sim.Process(f.big)
				misses = sim.L1().Stats().Misses()
			}
			b.ReportMetric(float64(misses), "misses")
		})
	}
}

// BenchmarkAblationPrefetch compares sequential-prefetch policies on the
// matmul trace (misses reported per policy).
func BenchmarkAblationPrefetch(b *testing.B) {
	f := load(b)
	for _, pf := range []cache.PrefetchPolicy{cache.PrefetchNone, cache.PrefetchMiss, cache.PrefetchAlways} {
		b.Run(pf.String(), func(b *testing.B) {
			cfg := cache.Paper32KDirect()
			cfg.Prefetch = pf
			var misses int64
			for i := 0; i < b.N; i++ {
				sim, err := dinero.New(dinero.Options{L1: cfg})
				if err != nil {
					b.Fatal(err)
				}
				sim.Process(f.big)
				misses = sim.L1().Stats().Misses()
			}
			b.ReportMetric(float64(misses), "misses")
		})
	}
}

// BenchmarkAblationMissClassification measures the three-C shadow
// directory's overhead.
func BenchmarkAblationMissClassification(b *testing.B) {
	f := load(b)
	for _, classify := range []bool{false, true} {
		b.Run(fmt.Sprintf("classify=%v", classify), func(b *testing.B) {
			cfg := cache.Paper32KDirect()
			cfg.ClassifyMisses = classify
			for i := 0; i < b.N; i++ {
				sim, err := dinero.New(dinero.Options{L1: cfg})
				if err != nil {
					b.Fatal(err)
				}
				sim.Process(f.big)
			}
		})
	}
}
