// Process-level crash/drain recovery tests: SIGTERM real binaries
// mid-run and assert the restarted process produces byte-identical
// results — the end-to-end counterpart of the in-process checkpoint and
// drain tests.
package tracedst_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestShardedSweepKillResume: SIGTERM `experiments -sweep -shards 2`
// mid-run, then rerun with -resume — the resumed run's sweep tables must
// be byte-identical to an uninterrupted run's.
func TestShardedSweepKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	bin := filepath.Join(buildTools(t), "experiments")
	args := []string{"-sweep", "-shards", "2", "-parallel", "1"}

	clean, err := exec.Command(bin, args...).Output()
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}

	ckpt := filepath.Join(t.TempDir(), "ck")
	cmd := exec.Command(bin, append(args, "-checkpoint", ckpt)...)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill as soon as the first task lands on disk: mid-run by
	// construction (a full sweep run has eight side-level tasks).
	deadline := time.Now().Add(30 * time.Second)
	for {
		if ents, err := os.ReadDir(ckpt); err == nil && len(ents) > 0 {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("no checkpoint entries appeared within 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	if err == nil {
		// The run won the race and finished before the signal landed; the
		// resume below then merely replays the full checkpoint, which must
		// still be byte-identical.
		t.Log("run finished before SIGTERM; resume degenerates to a replay")
	} else if !strings.Contains(stderr.String(), "resume") {
		t.Fatalf("interrupted run gave no resume hint; stderr:\n%s", stderr.String())
	}

	resumed, err := exec.Command(bin, append(args, "-resume", ckpt)...).Output()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !bytes.Equal(resumed, clean) {
		t.Errorf("resumed sweep output differs from uninterrupted run:\n--- clean ---\n%s\n--- resumed ---\n%s",
			clean, resumed)
	}
}

// freePort reserves an ephemeral localhost port and releases it for the
// server under test.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startTracedstd launches the server binary and waits for /healthz.
func startTracedstd(t *testing.T, addr, state string, extra ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{"-addr", addr, "-state", state, "-workers", "1"}, extra...)
	cmd := exec.Command(filepath.Join(buildTools(t), "tracedstd"), args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("tracedstd did not become healthy within 15s")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// tracedstdJob is the slice of the job JSON these tests care about.
type tracedstdJob struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Error   string `json:"error"`
	Resumed bool   `json:"resumed"`
}

func postTrace(t *testing.T, addr string, data []byte) tracedstdJob {
	t.Helper()
	resp, err := http.Post("http://"+addr+"/jobs", "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload: status %d: %s", resp.StatusCode, raw)
	}
	var j tracedstdJob
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j
}

func waitJobDone(t *testing.T, addr, id string) tracedstdJob {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(fmt.Sprintf("http://%s/jobs/%s", addr, id))
		if err != nil {
			t.Fatal(err)
		}
		var j tracedstdJob
		derr := json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if derr != nil {
			t.Fatal(derr)
		}
		switch j.State {
		case "done":
			return j
		case "failed", "canceled":
			t.Fatalf("job %s ended %s: %s", id, j.State, j.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, j.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func jobReport(t *testing.T, addr, id string) string {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s/jobs/%s/report", addr, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestTracedstdKillResume: SIGTERM a tracedstd process with jobs in
// flight; a restart on the same state directory must resume them to
// reports byte-identical to an undisturbed server's.
func TestTracedstdKillResume(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "trace.out")
	runTool(t, "gltrace", "-w", "trans1-soa", "-o", traceFile)
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: an undisturbed server run of the same upload.
	refAddr := freePort(t)
	ref := startTracedstd(t, refAddr, filepath.Join(dir, "state-ref"))
	refJob := postTrace(t, refAddr, data)
	waitJobDone(t, refAddr, refJob.ID)
	want := jobReport(t, refAddr, refJob.ID)
	ref.Process.Signal(syscall.SIGTERM)
	ref.Wait()

	// Victim: two jobs in flight, killed immediately after submission.
	// The batch throttle guarantees neither job can finish before the
	// TERM lands, so the restart genuinely resumes rather than replays.
	addr := freePort(t)
	state := filepath.Join(dir, "state")
	srv := startTracedstd(t, addr, state, "-throttle", "200ms")
	a := postTrace(t, addr, data)
	b := postTrace(t, addr, data)
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := srv.Wait(); err != nil {
		t.Fatalf("tracedstd did not drain cleanly: %v", err)
	}

	// Restart on the same state directory and let everything finish.
	addr2 := freePort(t)
	srv2 := startTracedstd(t, addr2, state)
	defer func() {
		srv2.Process.Signal(syscall.SIGTERM)
		srv2.Wait()
	}()
	for _, id := range []string{a.ID, b.ID} {
		j := waitJobDone(t, addr2, id)
		if !j.Resumed {
			t.Errorf("job %s finished without being resumed — the kill missed it", id)
		}
		if got := jobReport(t, addr2, id); got != want {
			t.Errorf("job %s: resumed report differs from undisturbed server:\n--- want ---\n%s\n--- got ---\n%s",
				id, want, got)
		}
	}
}
