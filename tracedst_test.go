package tracedst_test

import (
	"fmt"
	"strings"
	"testing"

	"tracedst"
)

const facadeProgram = `
int main(int aArgc, char **aArgv) {
	typedef struct {
		int mX[LEN];
		double mY[LEN];
	} MyStructOfArrays;
	MyStructOfArrays lSoA;
	GLEIPNIR_START_INSTRUMENTATION;
	for (int lI=0 ; lI<LEN ; lI++) {
		lSoA.mX[lI] = (int) lI;
		lSoA.mY[lI] = (double) lI;
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return 0;
}
`

const facadeRule = `
in:
struct lSoA { int mX[8]; double mY[8]; };
out:
struct lAoS { int mX; double mY; }[8];
`

// TestFacadePipeline exercises the full public API end to end.
func TestFacadePipeline(t *testing.T) {
	res, err := tracedst.Trace(facadeProgram, map[string]string{"LEN": "8"}, tracedst.TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("empty trace")
	}

	rule, err := tracedst.ParseRule(facadeRule)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := tracedst.NewEngine(tracedst.EngineOptions{}, rule)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.TransformAll(res.Records)
	if err != nil {
		t.Fatal(err)
	}

	d := tracedst.DiffTraces(res.Records, out)
	if d.Stats().Rewritten != 16 {
		t.Errorf("rewritten = %d", d.Stats().Rewritten)
	}

	sim, err := tracedst.Simulate(out, tracedst.Paper32KDirect())
	if err != nil {
		t.Fatal(err)
	}
	rep := sim.Report()
	if !strings.Contains(rep, "lAoS") {
		t.Errorf("report missing lAoS:\n%s", rep)
	}
	p := tracedst.PerSetPlot("facade", sim)
	if _, ok := p.SeriesByLabel("lAoS"); !ok {
		t.Error("plot missing lAoS series")
	}

	prof := tracedst.ProfileTrace(out)
	if prof.Vars["lAoS"] == nil {
		t.Error("profile missing lAoS")
	}

	// Trace round trip through the text format.
	text := tracedst.FormatTrace(res.Header, out)
	h, recs, err := tracedst.ParseTrace(text)
	if err != nil || h.PID != res.Header.PID || len(recs) != len(out) {
		t.Errorf("round trip: %v %d %v", h, len(recs), err)
	}
}

func TestFacadeConfigs(t *testing.T) {
	if tracedst.Paper32KDirect().Sets() != 1024 {
		t.Error("Paper32KDirect geometry")
	}
	if tracedst.PowerPC440().Sets() != 16 {
		t.Error("PowerPC440 geometry")
	}
}

func TestFacadeSimulateWith(t *testing.T) {
	res, err := tracedst.Trace(`int g; int main(void){ g = 1; return g; }`, nil,
		tracedst.TraceOptions{TraceAll: true})
	if err != nil {
		t.Fatal(err)
	}
	l2 := tracedst.CacheConfig{Name: "l2", Size: 256 * 1024, BlockSize: 64, Assoc: 8}
	sim, err := tracedst.SimulateWith(res.Records, tracedst.SimOptions{
		L1: tracedst.Paper32KDirect(),
		L2: &l2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sim.L2() == nil || sim.L2().Stats().Reads == 0 {
		t.Error("L2 unused")
	}
}

func ExampleTrace() {
	res, _ := tracedst.Trace(`
int g;
int main(void) {
	GLEIPNIR_START_INSTRUMENTATION;
	g = 7;
	GLEIPNIR_STOP_INSTRUMENTATION;
	return g;
}`, nil, tracedst.TraceOptions{})
	fmt.Println(res.Records[len(res.Records)-1].Var.Root)
	// Output: g
}
