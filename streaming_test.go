// Streaming-pipeline equivalence suite: the constant-memory paths must be
// indistinguishable from the materializing ones. For every built-in
// workload, a simulator fed batch-by-batch from a RecordSource renders the
// byte-identical report to one fed the materialized slice; K-way sharded
// streaming over an indexed .glb merges to exactly the serial
// flush-at-boundary reference; and the live heap of a streaming run stays
// O(batch) however large the trace file is.
package tracedst_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"tracedst/internal/cliutil"
	"tracedst/internal/dinero"
	"tracedst/internal/trace"
)

// encodeIndexedTrace renders records to the binary container with the
// block-index footer and the given block size.
func encodeIndexedTrace(t testing.TB, recs []trace.Record, blockRecs int) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := trace.NewBinaryWriter(&buf)
	bw.EnableIndex()
	if blockRecs > 0 {
		bw.SetBlockRecords(blockRecs)
	}
	for i := range recs {
		if err := bw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestStreamingGoldenAllWorkloads: for all 15 workloads × {text, binary},
// a simulator fed through the streaming RecordSource path produces the
// byte-identical report to one fed the materialized record slice.
func TestStreamingGoldenAllWorkloads(t *testing.T) {
	formats := []struct {
		name string
		f    trace.FileFormat
	}{{"text", trace.FormatText}, {"binary", trace.FormatBinary}}
	for _, name := range sortedWorkloads() {
		recs := traceWorkload(t, name)

		want := make([]string, len(goldenConfigs))
		for i, cfg := range goldenConfigs {
			sim, err := dinero.New(dinero.Options{L1: cfg})
			if err != nil {
				t.Fatal(err)
			}
			sim.Process(recs)
			want[i] = sim.Report()
		}

		for _, fm := range formats {
			data := encodeTrace(t, recs, fm.f)
			for i, cfg := range goldenConfigs {
				sim, err := dinero.New(dinero.Options{L1: cfg})
				if err != nil {
					t.Fatal(err)
				}
				src, gotFmt, err := trace.OpenSource(bytes.NewReader(data), trace.DecodeOptions{}, 0)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, fm.name, err)
				}
				if gotFmt != fm.f {
					t.Fatalf("%s/%s: sniffed %v", name, fm.name, gotFmt)
				}
				if err := sim.ProcessSource(src); err != nil {
					t.Fatalf("%s/%s: %v", name, fm.name, err)
				}
				if rep := sim.Report(); rep != want[i] {
					t.Errorf("%s/%s config %s: streaming report diverges from materialized run:\n--- want ---\n%s\n--- got ---\n%s",
						name, fm.name, cfg.Name, want[i], rep)
				}
			}
		}
	}
}

// TestShardedStreamingGoldenAllWorkloads: K-way sharded streaming over an
// indexed trace, reduced with MergeFrom, equals — byte-for-byte in the
// rendered report — a serial run that flushes the cache at the shard
// boundaries. All 15 workloads, every golden config (none use ReplRandom,
// whose draw stream cannot survive a shard split).
func TestShardedStreamingGoldenAllWorkloads(t *testing.T) {
	for _, name := range sortedWorkloads() {
		recs := traceWorkload(t, name)
		data := encodeIndexedTrace(t, recs, 256)
		tr, err := trace.NewIndexedBytes(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Records() != int64(len(recs)) {
			t.Fatalf("%s: index says %d records, want %d", name, tr.Records(), len(recs))
		}
		for _, shards := range []int{2, 4} {
			for _, cfg := range goldenConfigs {
				res, err := dinero.SimulateSharded(tr, dinero.Options{L1: cfg}, shards, trace.DecodeOptions{})
				if err != nil {
					t.Fatalf("%s/%s/shards=%d: %v", name, cfg.Name, shards, err)
				}

				ref, err := dinero.New(dinero.Options{L1: cfg})
				if err != nil {
					t.Fatal(err)
				}
				next := 0
				for _, b := range res.Boundaries {
					ref.Process(recs[next:int(b)])
					ref.Flush()
					next = int(b)
				}
				ref.Process(recs[next:])

				if got, want := res.Sim.Report(), ref.Report(); got != want {
					t.Errorf("%s/%s/shards=%d: sharded report diverges from flush-at-boundary serial:\n--- want ---\n%s\n--- got ---\n%s",
						name, cfg.Name, shards, want, got)
				}
			}
		}
	}
}

// TestShardedSimulateCancel: a cancelled context stops every shard worker
// with the context's error instead of a partial result — the cooperative
// half of SIGTERM handling (the signal just cancels this context).
func TestShardedSimulateCancel(t *testing.T) {
	recs := traceWorkload(t, "matmul")
	data := encodeIndexedTrace(t, recs, 64)
	tr, err := trace.NewIndexedBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = dinero.SimulateShardedContext(ctx, tr, dinero.Options{L1: goldenConfigs[0]}, 2, trace.DecodeOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// An uncancelled context changes nothing about the result.
	res, err := dinero.SimulateShardedContext(context.Background(), tr, dinero.Options{L1: goldenConfigs[0]}, 2, trace.DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := dinero.SimulateSharded(tr, dinero.Options{L1: goldenConfigs[0]}, 2, trace.DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sim.Report() != plain.Sim.Report() {
		t.Fatal("context-threaded sharded run diverges from plain run")
	}
}

// streamHeapBound is the live-heap ceiling the streaming path must stay
// under while simulating a trace whose materialized form is an order of
// magnitude larger.
const streamHeapBound = 64 << 20

// writeBigTrace streams nrecs synthetic records to a .glb file without
// materializing them and returns the path.
func writeBigTrace(t *testing.T, nrecs int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "big.glb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	bw := trace.NewBinaryWriter(f)
	bw.EnableIndex()
	rec := trace.Record{Op: trace.Load, Size: 4}
	for i := 0; i < nrecs; i++ {
		// Vary function and address so the string table and delta encoder
		// both do real work.
		rec.Func = fmt.Sprintf("fn%d", i%97)
		rec.Addr = 0x601000 + uint64(i%4096)*64
		if i%3 == 0 {
			rec.Op = trace.Store
		} else {
			rec.Op = trace.Load
		}
		if err := bw.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestStreamingConstantMemory pins the streaming simulate path to O(batch)
// live heap: 2M records (hundreds of MB materialized as Record structs)
// stream through a simulator while sampled HeapAlloc stays under a bound
// an in-memory slice of them could not fit in.
func TestStreamingConstantMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-record trace generation")
	}
	const nrecs = 2_000_000
	path := writeBigTrace(t, nrecs)

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	sim, err := dinero.New(dinero.Options{L1: goldenConfigs[0]})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := cliutil.OpenTraceSource(path, trace.DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	var peak uint64
	var ms runtime.MemStats
	batches := 0
	for {
		batch, err := ts.NextBatch()
		if err != nil {
			break
		}
		sim.Process(batch)
		if batches%16 == 0 {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
		batches++
	}
	if ts.Records() != nrecs {
		t.Fatalf("streamed %d records, want %d", ts.Records(), nrecs)
	}
	if sim.Records() != nrecs {
		t.Fatalf("simulated %d records, want %d", sim.Records(), nrecs)
	}
	growth := int64(peak) - int64(base.HeapAlloc)
	t.Logf("peak HeapAlloc growth %d bytes over %d batches", growth, batches)
	if growth > streamHeapBound {
		t.Fatalf("live heap grew %d bytes while streaming, bound %d — streaming path is materializing",
			growth, streamHeapBound)
	}
}
