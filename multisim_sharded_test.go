// Golden equivalence suite for the sharded multi-configuration engine:
// full-attribution MultiSimSharded over an indexed .glb and
// MultiSimShardedRecords over text-decoded records must produce, for
// every workload and config, reports byte-identical to a serial MultiSim
// that flushes at each shard boundary — the same contract the
// single-config sharded engine honors.
package tracedst_test

import (
	"context"
	"testing"

	"tracedst/internal/dinero"
	"tracedst/internal/trace"
)

// refMultiReports runs the serial multi-config engine with a Flush at
// each boundary and renders every config's report.
func refMultiReports(t *testing.T, recs []trace.Record, boundaries []int64) []string {
	t.Helper()
	ref, err := dinero.NewMulti(dinero.MultiOptions{Configs: goldenConfigs})
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for _, b := range boundaries {
		ref.Process(recs[next:int(b)])
		ref.Flush()
		next = int(b)
	}
	ref.Process(recs[next:])
	reps := make([]string, len(goldenConfigs))
	for i := range goldenConfigs {
		reps[i] = ref.Report(i)
	}
	return reps
}

// TestMultiSimShardedGoldenAllWorkloads: all 15 workloads × {.glb indexed
// stream, text-decoded record slice} × {2, 4} shards, every golden
// config's full-attribution report byte-identical to the
// flush-at-boundary serial run. None of the golden configs use
// ReplRandom, whose draw stream cannot survive a shard split.
func TestMultiSimShardedGoldenAllWorkloads(t *testing.T) {
	ctx := context.Background()
	for _, name := range sortedWorkloads() {
		recs := traceWorkload(t, name)
		data := encodeIndexedTrace(t, recs, 256)
		tr, err := trace.NewIndexedBytes(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// The text container must decode to the same records the sharded
		// record-slice path consumes.
		_, _, decoded, err := trace.DecodeBytes(encodeTrace(t, recs, trace.FormatText), trace.DecodeOptions{}, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(decoded) != len(recs) {
			t.Fatalf("%s: text round-trip decoded %d records, want %d", name, len(decoded), len(recs))
		}

		for _, shards := range []int{2, 4} {
			glb, err := dinero.MultiSimSharded(tr, dinero.MultiOptions{Configs: goldenConfigs}, shards, trace.DecodeOptions{})
			if err != nil {
				t.Fatalf("%s/glb/shards=%d: %v", name, shards, err)
			}
			want := refMultiReports(t, recs, glb.Boundaries)
			for i, cfg := range goldenConfigs {
				if got := glb.Sim.Report(i); got != want[i] {
					t.Errorf("%s/glb/shards=%d config %s: sharded report diverges from flush-at-boundary serial:\n--- want ---\n%s\n--- got ---\n%s",
						name, shards, cfg.Name, want[i], got)
				}
			}
			if glb.Sim.Records() != int64(len(recs)) {
				t.Errorf("%s/glb/shards=%d: %d records simulated, want %d",
					name, shards, glb.Sim.Records(), len(recs))
			}

			rec, err := dinero.MultiSimShardedRecords(ctx, decoded, dinero.MultiOptions{Configs: goldenConfigs}, shards)
			if err != nil {
				t.Fatalf("%s/text/shards=%d: %v", name, shards, err)
			}
			want = refMultiReports(t, decoded, rec.Boundaries)
			for i, cfg := range goldenConfigs {
				if got := rec.Sim.Report(i); got != want[i] {
					t.Errorf("%s/text/shards=%d config %s: sharded record-slice report diverges from flush-at-boundary serial:\n--- want ---\n%s\n--- got ---\n%s",
						name, shards, cfg.Name, want[i], got)
				}
			}
		}
	}
}

// TestMultiSimShardedRejects pins the shardability preconditions at the
// entry point: shared symbol tables and sampling refuse up front rather
// than producing silently wrong merges.
func TestMultiSimShardedRejects(t *testing.T) {
	recs := traceWorkload(t, sortedWorkloads()[0])
	tab := trace.NewSymTab()
	if _, err := dinero.MultiSimShardedRecords(context.Background(), recs,
		dinero.MultiOptions{Configs: goldenConfigs, Syms: tab}, 2); err == nil {
		t.Error("shared Syms table: want error")
	}
	if _, err := dinero.MultiSimShardedRecords(context.Background(), recs,
		dinero.MultiOptions{Configs: goldenConfigs, Sampling: dinero.Sampling{Interval: 4}, StatsOnly: true}, 2); err == nil {
		t.Error("interval sampling: want error")
	}
}
