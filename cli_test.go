// End-to-end integration tests: build the real command-line tools and run
// the paper's full pipeline (Fig 2) through their binaries — trace,
// transform, diff, simulate, plot, profile.
package tracedst_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// tools lists every command built for the integration tests.
var tools = []string{"gltrace", "dinero", "dsxform", "tracediff", "setplot", "glprof", "experiments", "dsx", "glcheck", "tracedstd"}

func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "tracedst-bin")
		if buildErr != nil {
			return
		}
		for _, tool := range tools {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "./cmd/"+tool)
			out, err := cmd.CombinedOutput()
			if err != nil {
				buildErr = err
				t.Logf("build %s: %s", tool, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return binDir
}

func runTool(t *testing.T, name string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildTools(t), name), args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstdout:\n%s\nstderr:\n%s", name, args, err, stdout.String(), stderr.String())
	}
	return stdout.String()
}

func TestCLIPipelineT1(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "trace.out")
	ruleFile := filepath.Join(dir, "soa2aos.rule")
	xformFile := filepath.Join(dir, "transformed_trace.out")

	// 1. gltrace: built-in workload → trace file.
	runTool(t, "gltrace", "-w", "trans1-soa", "-o", traceFile)
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "START PID") || !strings.Contains(string(data), "lSoA.mX[0]") {
		t.Fatalf("trace content:\n%.300s", data)
	}

	// 2. dsxform: apply the Listing 5 rule.
	rule := `
in:
struct lSoA { int mX[16]; double mY[16]; };
out:
struct lAoS { int mX; double mY; }[16];
`
	if err := os.WriteFile(ruleFile, []byte(rule), 0o644); err != nil {
		t.Fatal(err)
	}
	runTool(t, "dsxform", "-rules", ruleFile, "-o", xformFile, traceFile)
	xdata, err := os.ReadFile(xformFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(xdata), "lAoS[0].mX") || strings.Contains(string(xdata), "lSoA") {
		t.Fatalf("transformed trace:\n%.300s", xdata)
	}

	// 3. tracediff: 32 rewrites, nothing inserted.
	diffOut := runTool(t, "tracediff", "-stats-only", traceFile, xformFile)
	if !strings.Contains(diffOut, "rewritten 32") || !strings.Contains(diffOut, "inserted 0") {
		t.Fatalf("diff output:\n%s", diffOut)
	}

	// 4. dinero: simulate the transformed trace on the paper geometry.
	simOut := runTool(t, "dinero", "-l1-size", "32k", "-l1-bsize", "32", "-l1-assoc", "1", xformFile)
	for _, want := range []string{"Demand Fetches", "Per-variable statistics", "lAoS", "lI"} {
		if !strings.Contains(simOut, want) {
			t.Errorf("dinero output missing %q", want)
		}
	}

	// 5. setplot: CSV per-set histogram.
	csvOut := runTool(t, "setplot", "-format", "csv", xformFile)
	if !strings.HasPrefix(csvOut, "set,") || !strings.Contains(csvOut, "lAoS hits") {
		t.Errorf("setplot csv:\n%.200s", csvOut)
	}

	// 6. glprof: memory profile with reuse distances.
	profOut := runTool(t, "glprof", "-reuse", traceFile)
	for _, want := range []string{"memory profile", "reuse distances", "miss-ratio curve"} {
		if !strings.Contains(profOut, want) {
			t.Errorf("glprof output missing %q", want)
		}
	}
}

func TestCLIGltraceOptions(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	// -list names the paper workloads.
	listOut := runTool(t, "gltrace", "-list")
	for _, want := range []string{"trans1-soa", "trans3-strd", "matmul", "listing1"} {
		if !strings.Contains(listOut, want) {
			t.Errorf("-list missing %q", want)
		}
	}
	// Filters and defines compose; output goes to stdout with "-o -".
	out := runTool(t, "gltrace", "-w", "trans1-soa", "-D", "LEN=4", "-only-var", "lSoA", "-o", "-")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+8 { // header + 4 mX + 4 mY
		t.Errorf("filtered trace lines = %d:\n%s", len(lines), out)
	}
	// A custom source file.
	dir := t.TempDir()
	src := filepath.Join(dir, "p.c")
	if err := os.WriteFile(src, []byte(`int g; int main(void){ g = 1; return g; }`), 0o644); err != nil {
		t.Fatal(err)
	}
	out = runTool(t, "gltrace", "-src", src, "-trace-all", "-o", "-")
	if !strings.Contains(out, "GV g") {
		t.Errorf("custom source trace:\n%s", out)
	}
}

func TestCLIExperimentsFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	out := runTool(t, "experiments", "-fig", "11")
	for _, want := range []string{"fig11", "lSetHashingArray", "set pinning: 100%"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiments output missing %q:\n%s", want, out)
		}
	}
	// Artifact files.
	dir := t.TempDir()
	runTool(t, "experiments", "-fig", "3", "-outdir", dir)
	if _, err := os.Stat(filepath.Join(dir, "fig3.csv")); err != nil {
		t.Errorf("fig3.csv not written: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig3.dat")); err != nil {
		t.Errorf("fig3.dat not written: %v", err)
	}
}

func TestCLIDineroPhysicalIndexing(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "t.out")
	runTool(t, "gltrace", "-w", "matmul", "-D", "N=8", "-o", traceFile)
	virt := runTool(t, "dinero", "-l1-size", "1m", "-l1-assoc", "1", traceFile)
	phys := runTool(t, "dinero", "-l1-size", "1m", "-l1-assoc", "1", "-phys", "shuffled", traceFile)
	if virt == phys {
		t.Log("virtual and physical reports identical (single page?) — tolerated")
	}
	if !strings.Contains(phys, "Demand Fetches") {
		t.Errorf("physical run malformed:\n%.200s", phys)
	}
}

func TestCLISteeringDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	ruleFile := filepath.Join(dir, "r.rule")
	rule := `
in:
struct lSoA { int mX[16]; double mY[16]; };
out:
struct lAoS { int mX; double mY; }[16];
`
	if err := os.WriteFile(ruleFile, []byte(rule), 0o644); err != nil {
		t.Fatal(err)
	}
	out := runTool(t, "dsx", "-w", "trans1-soa", "-rules", ruleFile)
	for _, want := range []string{
		"rule: struct-remap  lSoA → lAoS",
		"32 rewritten",
		"original", "transformed", "per-set occupancy",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dsx output missing %q:\n%s", want, out)
		}
	}
}

// TestCLIBinaryFormatParity feeds every reading tool the same workload in
// text and in binary form and requires byte-identical reports, plus a
// text → binary → text dsxform round trip that reproduces the text
// transform exactly.
func TestCLIBinaryFormatParity(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	textTrace := filepath.Join(dir, "trace.out")
	binTrace := filepath.Join(dir, "trace.glb")
	runTool(t, "gltrace", "-w", "trans1-soa", "-o", textTrace)
	runTool(t, "gltrace", "-w", "trans1-soa", "-format", "binary", "-o", binTrace)
	tdata, err := os.ReadFile(textTrace)
	if err != nil {
		t.Fatal(err)
	}
	bdata, err := os.ReadFile(binTrace)
	if err != nil {
		t.Fatal(err)
	}
	if len(bdata) >= len(tdata) {
		t.Errorf("binary trace (%d bytes) not smaller than text (%d bytes)", len(bdata), len(tdata))
	}

	// Single-input readers: identical stdout on both encodings.
	for _, tc := range [][]string{
		{"dinero", "-l1-size", "32k", "-l1-bsize", "32", "-l1-assoc", "1"},
		{"glprof", "-reuse"},
		{"setplot", "-format", "csv"},
	} {
		fromText := runTool(t, tc[0], append(tc[1:], textTrace)...)
		fromBin := runTool(t, tc[0], append(tc[1:], binTrace)...)
		if fromText != fromBin {
			t.Errorf("%s output differs between text and binary input", tc[0])
		}
	}

	// dsxform mirrors the input container; -format overrides it.
	ruleFile := filepath.Join(dir, "soa2aos.rule")
	rule := `
in:
struct lSoA { int mX[16]; double mY[16]; };
out:
struct lAoS { int mX; double mY; }[16];
`
	if err := os.WriteFile(ruleFile, []byte(rule), 0o644); err != nil {
		t.Fatal(err)
	}
	xformText := filepath.Join(dir, "xform.out")
	xformBin := filepath.Join(dir, "xform.glb")
	xformBack := filepath.Join(dir, "xform-back.out")
	runTool(t, "dsxform", "-rules", ruleFile, "-o", xformText, textTrace)
	runTool(t, "dsxform", "-rules", ruleFile, "-o", xformBin, binTrace)
	runTool(t, "dsxform", "-rules", ruleFile, "-format", "text", "-o", xformBack, binTrace)
	xt, err := os.ReadFile(xformText)
	if err != nil {
		t.Fatal(err)
	}
	xb, err := os.ReadFile(xformBin)
	if err != nil {
		t.Fatal(err)
	}
	back, err := os.ReadFile(xformBack)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(xt), "START PID") {
		t.Fatalf("text transform malformed:\n%.200s", xt)
	}
	if string(back) != string(xt) {
		t.Errorf("binary-input transform rendered to text differs from text-input transform")
	}
	if strings.HasPrefix(string(xb), "START PID") {
		t.Errorf("binary-input transform did not mirror the binary container")
	}

	// tracediff: identical stats whichever encodings the two sides use.
	want := runTool(t, "tracediff", "-stats-only", textTrace, xformText)
	for _, pair := range [][2]string{{binTrace, xformBin}, {textTrace, xformBin}, {binTrace, xformText}} {
		if got := runTool(t, "tracediff", "-stats-only", pair[0], pair[1]); got != want {
			t.Errorf("tracediff(%s, %s) differs from all-text run", filepath.Base(pair[0]), filepath.Base(pair[1]))
		}
	}

	// dinero agrees on the transformed trace too.
	simText := runTool(t, "dinero", "-l1-size", "32k", "-l1-assoc", "1", xformText)
	simBin := runTool(t, "dinero", "-l1-size", "32k", "-l1-assoc", "1", xformBin)
	if simText != simBin {
		t.Errorf("dinero reports differ between text and binary transformed traces")
	}

	// glcheck validates the binary container.
	if out := runTool(t, "glcheck", binTrace); !strings.Contains(out, "ok:") {
		t.Errorf("glcheck on binary trace:\n%s", out)
	}
}

func TestCLIErrorPaths(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	bin := buildTools(t)
	cases := [][]string{
		{"gltrace", "-w", "nonexistent"},
		{"gltrace"},
		{"dinero", "-l1-size", "100", "does-not-exist.trc"},
		{"dsxform", "-rules", "missing.rule", "missing.trc"},
		{"tracediff", "one-arg-only"},
		{"setplot", "-format", "bogus", "x"},
		{"experiments"},
	}
	for _, c := range cases {
		cmd := exec.Command(filepath.Join(bin, c[0]), c[1:]...)
		if out, err := cmd.CombinedOutput(); err == nil {
			t.Errorf("%v unexpectedly succeeded:\n%s", c, out)
		}
	}
}

// TestExamplesRun smoke-tests every example main via "go run".
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 5 {
		t.Fatalf("expected at least 5 examples, found %d", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./examples/"+name)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
}
