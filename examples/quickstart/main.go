// Quickstart: trace a small C kernel, simulate it on the paper's cache, and
// print DineroIV-style statistics with per-variable attribution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"tracedst/internal/analysis"
	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/telemetry"
	"tracedst/internal/tracer"
)

// Errors go through the telemetry sink, so the example fails the same way
// the CLIs do (and stays machine-parseable under a JSON logger).
func init() { telemetry.UseTextLogger("quickstart") }

func fatal(err error) {
	telemetry.L().Error(err.Error())
	os.Exit(1)
}

// A miniC program: sum a global array. The GLEIPNIR markers bound the
// traced region, exactly as with the real Gleipnir tool.
const program = `
int data[256];
int total;

int main(void) {
	for (int i=0; i<256; i++) data[i] = i;   // untraced: before the marker
	GLEIPNIR_START_INSTRUMENTATION;
	total = 0;
	for (int i=0; i<256; i++) {
		total += data[i];
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return total;
}
`

func main() {
	// 1. Trace the program (Gleipnir's role).
	res, err := tracer.Run(program, nil, tracer.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("traced %d memory accesses; program returned %d\n\n", len(res.Records), res.Return)

	// Show the first few annotated trace lines.
	fmt.Println("first trace lines:")
	for i := 0; i < 8 && i < len(res.Records); i++ {
		fmt.Println(" ", res.Records[i].String())
	}
	fmt.Println()

	// 2. Simulate on a 32 KB direct-mapped cache with 32-byte blocks (the
	//    paper's geometry for Figures 3-8).
	sim, err := dinero.New(dinero.Options{L1: cache.Paper32KDirect()})
	if err != nil {
		fatal(err)
	}
	sim.Process(res.Records)
	fmt.Print(sim.Report())

	// 3. Per-set view: which cache sets did each variable land in?
	plot := analysis.FromSimulator("quickstart per-set view", sim, false)
	fmt.Println()
	fmt.Print(plot.Summary())
}
