// Autosearch: explore the transformation space of a structure — the
// paper's closing vision ("exploring the transformation space of data
// structures that does not require source code modifications", "similarly
// to computational steering"). One trace of the original program is
// rewritten under a set of candidate layout rules; each candidate is ranked
// by simulated misses, without ever recompiling the program.
//
//	go run ./examples/autosearch
package main

import (
	"fmt"
	"os"
	"sort"

	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/rules"
	"tracedst/internal/trace"
	"tracedst/internal/telemetry"
	"tracedst/internal/tracer"
	"tracedst/internal/xform"
)

// The subject program: a record with one hot field, two warm fields and a
// cold blob, scanned with a skewed access mix (hot every element, warm
// every 4th, cold never inside the window).
const program = `
typedef struct {
	int hot;
	double warm1;
	double warm2;
	double cold[6];
} Rec;
Rec recs[256];

int main(void) {
	int acc;
	GLEIPNIR_START_INSTRUMENTATION;
	acc = 0;
	for (int i = 0; i < 256; i++) {
		acc += recs[i].hot;
		if (i % 4 == 0) {
			recs[i].warm1 = recs[i].warm1 + 1.0;
			recs[i].warm2 = recs[i].warm2 + 1.0;
		}
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return acc;
}
`

// candidate layouts, each expressed purely as a rule file.
var candidates = []struct {
	name string
	rule string // empty = identity (original layout)
}{
	{"original (AoS, 80 B/elem)", ""},
	{"SoA (full split by member)", `
in:
struct recs { int hot; double warm1; double warm2; double cold[6]; }[256];
out:
struct recsSoA { int hot[256]; double warm1[256]; double warm2[256]; double cold[1536]; };
`},
	{"peel hot | warm | cold", `
in:
struct recs { int hot; double warm1; double warm2; double cold[6]; }[256];
out:
struct rHot { int hot; }[256];
struct rWarm { double warm1; double warm2; }[256];
struct rCold { double cold[6]; }[256];
`},
	{"peel hot+warm | cold", `
in:
struct recs { int hot; double warm1; double warm2; double cold[6]; }[256];
out:
struct rFront { int hot; double warm1; double warm2; }[256];
struct rBack { double cold[6]; }[256];
`},
	{"outline cold behind pointer", `
in:
struct coldpart { double c0; double c1; double c2; double c3; double c4; double c5; };
struct recs { int hot; double warm1; double warm2; struct coldpart; }[256];
out:
struct coldpool { double c0; double c1; double c2; double c3; double c4; double c5; }[256];
struct recsOut { int hot; double warm1; double warm2; * coldpart:coldpool; }[256];
`},
}

func main() {
	res, err := tracer.Run(program, nil, tracer.Options{})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("traced %d records; exploring %d candidate layouts\n\n", len(res.Records), len(candidates))

	cfg := cache.Config{Name: "l1", Size: 2048, BlockSize: 32, Assoc: 2}
	type outcome struct {
		name    string
		misses  int64
		records int
	}
	var outcomes []outcome
	for _, c := range candidates {
		recs := res.Records
		if c.rule != "" {
			rule, err := rules.Parse(c.rule)
			if err != nil {
				fatal(fmt.Errorf("%s: %v", c.name, err))
			}
			eng, err := xform.New(xform.Options{}, rule)
			if err != nil {
				fatal(err)
			}
			recs, err = eng.TransformAll(res.Records)
			if err != nil {
				fatal(fmt.Errorf("%s: %v", c.name, err))
			}
		}
		outcomes = append(outcomes, outcome{c.name, misses(recs, cfg), len(recs)})
	}

	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].misses < outcomes[j].misses })
	fmt.Printf("%-32s %10s %10s\n", "layout (ranked)", "misses", "records")
	for i, o := range outcomes {
		marker := "  "
		if i == 0 {
			marker = "→ "
		}
		fmt.Printf("%s%-30s %10d %10d\n", marker, o.name, o.misses, o.records)
	}
	fmt.Printf("\ncache: %d B, %d-byte blocks, %d-way LRU\n", cfg.Size, cfg.BlockSize, cfg.Assoc)
	fmt.Println("note: the access mix (hot always, warm 25%, cold never) decides the winner —")
	fmt.Println("re-run the search per workload phase to steer the layout choice.")
}

func misses(recs []trace.Record, cfg cache.Config) int64 {
	sim, err := dinero.New(dinero.Options{L1: cfg})
	if err != nil {
		fatal(err)
	}
	sim.Process(recs)
	return sim.L1().Stats().Misses()
}

// Errors go through the telemetry sink, so the example fails the same way
// the CLIs do (and stays machine-parseable under a JSON logger).
func init() { telemetry.UseTextLogger("autosearch") }

func fatal(err error) {
	telemetry.L().Error(err.Error())
	os.Exit(1)
}
