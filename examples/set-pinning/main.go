// Set pinning: the paper's transformation 3 on the PowerPC 440 cache
// (32 KB, 64-way, 32-byte lines, round-robin). A contiguous sweep spreads
// over all 16 sets and would trash a co-resident working set; striding the
// array confines it to one set — at a 16× space cost — leaving the other 15
// sets untouched. We demonstrate both the pinning and the §IV.A.3 residency
// arithmetic (a set holds 64×32 = 2048 bytes, so 4096 pinned bytes achieve
// 50% residency).
//
//	go run ./examples/set-pinning
package main

import (
	"fmt"
	"os"

	"tracedst/internal/analysis"
	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/rules"
	"tracedst/internal/trace"
	"tracedst/internal/telemetry"
	"tracedst/internal/tracer"
	"tracedst/internal/workloads"
	"tracedst/internal/xform"
)

const n = 1024 // ints → 4096 bytes, the paper's example size

func main() {
	defines := map[string]string{"LEN": fmt.Sprint(n)}
	orig, err := tracer.Run(workloads.Trans3Contiguous, defines, tracer.Options{})
	if err != nil {
		fatal(err)
	}
	rule, err := rules.Parse(workloads.RuleTrans3ForLen(n, 16, 8))
	if err != nil {
		fatal(err)
	}
	eng, err := xform.New(xform.Options{}, rule)
	if err != nil {
		fatal(err)
	}
	pinned, err := eng.TransformAll(orig.Records)
	if err != nil {
		fatal(err)
	}

	before := simulate(orig.Records)
	after := simulate(pinned)

	show := func(tag string, sim *dinero.Simulator, arrVar string) {
		p := analysis.FromSimulator(tag, sim, false)
		s, ok := p.SeriesByLabel(arrVar)
		if !ok {
			fatal(fmt.Errorf("%s series missing", arrVar))
		}
		occ := analysis.OccupancyOf(s)
		fmt.Printf("%-12s %-20s sets touched: %2d  dominant set %2d (%.0f%%)  misses %d\n",
			tag, arrVar, occ.SetsTouched, occ.DominantSet, 100*occ.DominantShare, occ.Misses)
	}
	fmt.Printf("PowerPC 440 L1D: 32 KB, 64-way, 32 B lines, round-robin (16 sets)\n\n")
	show("contiguous", before, "lContiguousArray")
	show("pinned", after, "lSetHashingArray")

	// Residency check: replay the pinned addresses into a fresh cache and
	// count how many of the 128 blocks survive the sweep.
	c, err := cache.New(cache.PowerPC440(), nil)
	if err != nil {
		fatal(err)
	}
	var blocks []uint64
	seen := map[uint64]bool{}
	for i := range pinned {
		r := &pinned[i]
		if r.HasSym && r.Var.Root == "lSetHashingArray" {
			c.Access(cache.Write, r.Addr, r.Size, 1, nil)
			b := r.Addr >> 5
			if !seen[b] {
				seen[b] = true
				blocks = append(blocks, b)
			}
		}
	}
	resident := c.ResidentBlocks(blocks)
	fmt.Printf("\nresidency after pinned sweep: %d of %d blocks (%.0f%%) — one set holds 64×32 = 2048 of 4096 bytes\n",
		resident, len(blocks), 100*float64(resident)/float64(len(blocks)))

	fmt.Printf("\nspace cost: %d → %d elements (%d KB wasted for placement control)\n",
		n, 16*n, (16*n-n)*4/1024)
	fmt.Printf("inserted index-arithmetic loads: %d\n", eng.Stats().Inserted)
}

func simulate(recs []trace.Record) *dinero.Simulator {
	sim, err := dinero.New(dinero.Options{L1: cache.PowerPC440()})
	if err != nil {
		fatal(err)
	}
	sim.Process(recs)
	return sim
}

// Errors go through the telemetry sink, so the example fails the same way
// the CLIs do (and stays machine-parseable under a JSON logger).
func init() { telemetry.UseTextLogger("set-pinning") }

func fatal(err error) {
	telemetry.L().Error(err.Error())
	os.Exit(1)
}
