// SoA→AoS: the paper's transformation 1, end to end. We trace the
// structure-of-arrays program once, then explore the array-of-structures
// layout purely by rewriting the trace — no source change — and compare
// cache behaviour and the resulting trace side by side.
//
//	go run ./examples/soa-aos
package main

import (
	"fmt"
	"os"

	"tracedst/internal/analysis"
	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/rules"
	"tracedst/internal/trace"
	"tracedst/internal/tracediff"
	"tracedst/internal/telemetry"
	"tracedst/internal/tracer"
	"tracedst/internal/workloads"
	"tracedst/internal/xform"
)

const n = 64 // element count (the paper's figures use 16)

func main() {
	defines := map[string]string{"LEN": fmt.Sprint(n)}

	// 1. Trace the original structure-of-arrays program (Listing 4).
	orig, err := tracer.Run(workloads.Trans1SoA, defines, tracer.Options{})
	if err != nil {
		fatal(err)
	}

	// 2. Apply the Listing 5 rule to explore the AoS layout.
	rule, err := rules.Parse(workloads.RuleTrans1ForLen(n))
	if err != nil {
		fatal(err)
	}
	eng, err := xform.New(xform.Options{}, rule)
	if err != nil {
		fatal(err)
	}
	transformed, err := eng.TransformAll(orig.Records)
	if err != nil {
		fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("rule %s: %d/%d records rewritten (%s → %s)\n\n",
		rule.Kind(), st.Matched, st.Total, rule.InRoot(), rule.OutRoot())

	// 3. Show a diff excerpt (Figure 5).
	d := tracediff.New(orig.Records, transformed)
	fmt.Println("trace diff (first rewritten lines):")
	printed := 0
	for _, row := range d.Rows {
		if row.Kind == tracediff.Rewritten && printed < 6 {
			fmt.Printf("  %-46s => %s\n", orig.Records[row.A].String(), transformed[row.B].String())
			printed++
		}
	}
	ds := d.Stats()
	fmt.Printf("  (%d same, %d rewritten)\n\n", ds.Same, ds.Rewritten)

	// 4. Compare cache behaviour of both layouts on a small cache chosen so
	//    the layouts differ: with SoA, touching mX[i] and mY[i] together
	//    costs two blocks; AoS collocates them.
	cfg := cache.Config{Name: "tiny-l1", Size: 1024, BlockSize: 32, Assoc: 1}
	before := simulate(orig.Records, cfg)
	after := simulate(transformed, cfg)

	report := func(tag string, sim *dinero.Simulator, structVar string) {
		s := sim.L1().Stats()
		vs := sim.Var(structVar)
		fmt.Printf("%-12s total misses %4d   %s: %d accesses, %d misses\n",
			tag, s.Misses(), structVar, vs.Accesses, vs.Misses)
	}
	report("SoA (orig)", before, "lSoA")
	report("AoS (xform)", after, "lAoS")

	// 5. Per-set occupancy of the structure in both layouts.
	fmt.Println("\nper-set occupancy:")
	pb := analysis.FromSimulator("SoA", before, false)
	pa := analysis.FromSimulator("AoS", after, false)
	if s, ok := pb.SeriesByLabel("lSoA"); ok {
		occ := analysis.OccupancyOf(s)
		fmt.Printf("  lSoA touches %d sets (dominant share %.0f%%)\n", occ.SetsTouched, 100*occ.DominantShare)
	}
	if s, ok := pa.SeriesByLabel("lAoS"); ok {
		occ := analysis.OccupancyOf(s)
		fmt.Printf("  lAoS touches %d sets (dominant share %.0f%%)\n", occ.SetsTouched, 100*occ.DominantShare)
	}
}

func simulate(recs []trace.Record, cfg cache.Config) *dinero.Simulator {
	sim, err := dinero.New(dinero.Options{L1: cfg})
	if err != nil {
		fatal(err)
	}
	sim.Process(recs)
	return sim
}

// Errors go through the telemetry sink, so the example fails the same way
// the CLIs do (and stays machine-parseable under a JSON logger).
func init() { telemetry.UseTextLogger("soa-aos") }

func fatal(err error) {
	telemetry.L().Error(err.Error())
	os.Exit(1)
}
