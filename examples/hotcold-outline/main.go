// Hot/cold splitting: the paper's transformation 2. A structure mixing a
// frequently used scalar with a rarely used nested struct wastes cache
// space; outlining the cold part into an external pool packs the hot
// scalars densely. We quantify the trade-off — denser hot data vs the extra
// pointer loads the indirection costs — from the trace alone.
//
//	go run ./examples/hotcold-outline
package main

import (
	"fmt"
	"os"

	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/rules"
	"tracedst/internal/trace"
	"tracedst/internal/telemetry"
	"tracedst/internal/tracer"
	"tracedst/internal/workloads"
	"tracedst/internal/xform"
)

const n = 128

// hotLoop touches only the hot member of every element — the access
// pattern hot/cold splitting is designed for. The cold members are
// initialised outside the traced window.
const hotLoop = `
typedef struct {
	int mFrequentlyUsed;
	struct { double mY; int mZ; } mRarelyUsed;
} MyInlineStruct;
MyInlineStruct lS1[N];

int main(void) {
	int sum;
	GLEIPNIR_START_INSTRUMENTATION;
	sum = 0;
	for (int lI=0 ; lI<N ; lI++) {
		sum += lS1[lI].mFrequentlyUsed;
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return sum;
}
`

func main() {
	res, err := tracer.Run(hotLoop, map[string]string{"N": fmt.Sprint(n)}, tracer.Options{})
	if err != nil {
		fatal(err)
	}

	ruleSrc := workloads.RuleTrans2ForLen(n)
	rule, err := rules.Parse(ruleSrc)
	if err != nil {
		fatal(err)
	}
	eng, err := xform.New(xform.Options{}, rule)
	if err != nil {
		fatal(err)
	}
	transformed, err := eng.TransformAll(res.Records)
	if err != nil {
		fatal(err)
	}

	// A small cache makes the density effect visible: the inline layout
	// spreads 128 hot ints over 128×24 = 3072 bytes (96 blocks); outlined,
	// they pack into 128×16 = 2048 bytes (64 blocks).
	cfg := cache.Config{Name: "tiny-l1", Size: 512, BlockSize: 32, Assoc: 2}
	before := simulate(res.Records, cfg)
	after := simulate(transformed, cfg)

	fmt.Printf("hot loop over %d elements (only mFrequentlyUsed touched)\n\n", n)
	fmt.Printf("%-22s %10s %10s %10s\n", "layout", "accesses", "misses", "miss%")
	bs, as := before.L1().Stats(), after.L1().Stats()
	fmt.Printf("%-22s %10d %10d %9.1f%%\n", "inline (lS1)", bs.Accesses(), bs.Misses(),
		100*bs.MissRatio())
	fmt.Printf("%-22s %10d %10d %9.1f%%\n", "outlined (lS2+pool)", as.Accesses(), as.Misses(),
		100*as.MissRatio())

	// Per-variable: misses charged to the hot structure must drop.
	vb := before.Var("lS1")
	va := after.Var("lS2")
	fmt.Printf("\nhot-structure misses: inline %d → outlined %d", vb.Misses, va.Misses)
	if va.Misses < vb.Misses {
		fmt.Printf("  (outlining wins: hot data is %.1fx denser)\n",
			float64(vb.Misses)/float64(va.Misses))
	} else {
		fmt.Println("  (no win at this cache size)")
	}

	// The cost side: this loop never touches the cold part, so the
	// indirection inserts nothing. Re-run with the paper's full loop, which
	// touches hot AND cold members, to see the inserted pointer loads.
	full, err := tracer.Run(workloads.Trans2Inline, map[string]string{"LEN": fmt.Sprint(n)}, tracer.Options{})
	if err != nil {
		fatal(err)
	}
	eng2, err := xform.New(xform.Options{}, mustRule(ruleSrc))
	if err != nil {
		fatal(err)
	}
	fullT, err := eng2.TransformAll(full.Records)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nfull loop (hot+cold): %d records → %d (%d pointer loads inserted)\n",
		len(full.Records), len(fullT), eng2.Stats().Inserted)
}

func mustRule(src string) rules.Rule {
	r, err := rules.Parse(src)
	if err != nil {
		fatal(err)
	}
	return r
}

func simulate(recs []trace.Record, cfg cache.Config) *dinero.Simulator {
	sim, err := dinero.New(dinero.Options{L1: cfg})
	if err != nil {
		fatal(err)
	}
	sim.Process(recs)
	return sim
}

// Errors go through the telemetry sink, so the example fails the same way
// the CLIs do (and stays machine-parseable under a JSON logger).
func init() { telemetry.UseTextLogger("hotcold-outline") }

func fatal(err error) {
	telemetry.L().Error(err.Error())
	os.Exit(1)
}
