// Locality study: compare the AoS and SoA particle layouts with
// layout-independent metrics — reuse-distance miss-ratio curves and memory
// profiles — rather than a single cache configuration. The position-only
// update touches half of every AoS particle, so the AoS working set is
// twice the SoA one at every cache size.
//
//	go run ./examples/locality
package main

import (
	"fmt"
	"os"

	"tracedst/internal/analysis"
	"tracedst/internal/profile"
	"tracedst/internal/trace"
	"tracedst/internal/telemetry"
	"tracedst/internal/tracer"
	"tracedst/internal/workloads"
)

const n = 512

func main() {
	defines := map[string]string{"N": fmt.Sprint(n)}
	aos, err := tracer.Run(workloads.ParticlesAoS, defines, tracer.Options{})
	if err != nil {
		fatal(err)
	}
	soa, err := tracer.Run(workloads.ParticlesSoA, defines, tracer.Options{})
	if err != nil {
		fatal(err)
	}

	// Working-set comparison from the memory profile.
	pa, ps := profile.New(aos.Records), profile.New(soa.Records)
	fmt.Printf("position update over %d particles\n\n", n)
	fmt.Printf("%-8s %10s %16s\n", "layout", "records", "working set")
	fmt.Printf("%-8s %10d %12d blocks\n", "AoS", pa.Records, pa.WorkingSet)
	fmt.Printf("%-8s %10d %12d blocks\n\n", "SoA", ps.Records, ps.WorkingSet)

	// Footprint of the particle data alone (excluding loop bookkeeping).
	fpAoS := trace.Footprint(trace.Filter(aos.Records, trace.ByVar("particles")), 32)
	fpSoA := trace.Footprint(trace.Filter(soa.Records, trace.ByVar("particles")), 32)
	fmt.Printf("particle-data footprint: AoS %d blocks, SoA %d blocks (%.1fx denser)\n\n",
		fpAoS, fpSoA, float64(fpAoS)/float64(fpSoA))

	// Miss-ratio curves: what a fully-associative LRU cache of any size
	// would do — the crossover shows the cache size below which layout
	// matters.
	ra := analysis.ReuseDistances(aos.Records, 32)
	rs := analysis.ReuseDistances(soa.Records, 32)
	fmt.Printf("%-16s %10s %10s\n", "cache (blocks)", "AoS miss%", "SoA miss%")
	for _, c := range []int64{4, 8, 16, 32, 64, 128, 256} {
		fmt.Printf("%-16d %9.2f%% %9.2f%%\n", c, 100*ra.MissRatio(c), 100*rs.MissRatio(c))
	}
	fmt.Println()
	fmt.Print(ra.Histogram())
	fmt.Println()
	fmt.Print(rs.Histogram())
}

// Errors go through the telemetry sink, so the example fails the same way
// the CLIs do (and stays machine-parseable under a JSON logger).
func init() { telemetry.UseTextLogger("locality") }

func fatal(err error) {
	telemetry.L().Error(err.Error())
	os.Exit(1)
}
