// Golden equivalence suite for the single-pass multi-configuration
// engine: for every built-in workload, MultiSim reports must be
// byte-identical to independent Simulator runs, whichever container
// format the trace travelled through (text or binary) and however it was
// decoded (serial or parallel). The sampling tiers are approximate by
// design; their error is measured here and pinned to the bounds
// documented in docs/performance.md.
package tracedst_test

import (
	"bytes"
	"math"
	"sort"
	"testing"

	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/trace"
	"tracedst/internal/tracer"
	"tracedst/internal/workloads"
)

// goldenConfigs spans the kernel envelope: direct-mapped, set-associative
// LRU, and the paper's 64-way round-robin geometry.
var goldenConfigs = []cache.Config{
	{Name: "dm-4k", Size: 4096, BlockSize: 32, Assoc: 1, Repl: cache.ReplLRU},
	{Name: "lru-8k-2w", Size: 8192, BlockSize: 32, Assoc: 2, Repl: cache.ReplLRU},
	{Name: "rr-32k-64w", Size: 32768, BlockSize: 32, Assoc: 64, Repl: cache.ReplRoundRobin},
}

// sortedWorkloads returns every built-in workload name in stable order.
func sortedWorkloads() []string {
	names := make([]string, 0, len(workloads.Named))
	for name := range workloads.Named {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func traceWorkload(t *testing.T, name string) []trace.Record {
	t.Helper()
	wl := workloads.Named[name]
	res, err := tracer.Run(wl.Source, wl.Defines, tracer.Options{})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res.Records
}

func encodeTrace(t *testing.T, recs []trace.Record, format trace.FileFormat) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := trace.NewWriterFormat(&buf, format)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMultiSimGoldenAllWorkloads is the exact-mode acceptance matrix:
// all 15 workloads × {text, binary} container × {serial, parallel}
// decode, every config's MultiSim report byte-identical to an
// independent single-config Simulator run over the same records.
func TestMultiSimGoldenAllWorkloads(t *testing.T) {
	formats := []struct {
		name string
		f    trace.FileFormat
	}{{"text", trace.FormatText}, {"binary", trace.FormatBinary}}
	for _, name := range sortedWorkloads() {
		recs := traceWorkload(t, name)

		want := make([]string, len(goldenConfigs))
		for i, cfg := range goldenConfigs {
			sim, err := dinero.New(dinero.Options{L1: cfg})
			if err != nil {
				t.Fatal(err)
			}
			sim.Process(recs)
			want[i] = sim.Report()
		}

		for _, fm := range formats {
			data := encodeTrace(t, recs, fm.f)
			for _, workers := range []int{1, 4} {
				_, _, got, err := trace.DecodeBytes(data, trace.DecodeOptions{}, workers)
				if err != nil {
					t.Fatalf("%s/%s/workers=%d: %v", name, fm.name, workers, err)
				}
				if len(got) != len(recs) {
					t.Fatalf("%s/%s/workers=%d: %d records decoded, want %d",
						name, fm.name, workers, len(got), len(recs))
				}
				ms, err := dinero.NewMulti(dinero.MultiOptions{Configs: goldenConfigs})
				if err != nil {
					t.Fatal(err)
				}
				ms.Process(got)
				for i, cfg := range goldenConfigs {
					if rep := ms.Report(i); rep != want[i] {
						t.Errorf("%s/%s/workers=%d config %s: multi-config report diverges from serial run:\n--- want ---\n%s\n--- got ---\n%s",
							name, fm.name, workers, cfg.Name, want[i], rep)
					}
				}
			}
		}
	}
}

// Sampling error bounds asserted below and documented in
// docs/performance.md. The guaranteed quantity is the scaled total MISS
// COUNT — what the sweep engine consumes. Miss-ratio extrapolation is
// deliberately not bounded: hit traffic concentrates in the hot loop
// scalar's set, so set sampling over- or under-weights hits depending on
// whether that one set is sampled, while misses (array traffic) spread
// evenly. The bounds only hold where the exact signal is large enough
// for the tiers' constant bias sources not to dominate: at least
// minMissesForBound exact misses, and an exact miss ratio of at least
// minRatioForBound (below that, interval sampling's cold-resume refills
// outweigh the real misses — measured 2.5× on matmul at ratio 0.003).
const (
	minMissesForBound = 100
	minRatioForBound  = 0.01
	setSampleBound    = 0.20 // |Δ misses| / exact misses, sets/4 (worst measured 0.14)
	intervalBound     = 0.30 // |Δ misses| / exact misses, every 4th 4096-record window (worst measured 0.23)
)

// TestMultiSimSamplingErrorBounds measures both approximation tiers
// against exact runs on every workload and asserts the documented
// miss-count bounds wherever the exact run produced a statistically
// meaningful number of misses.
func TestMultiSimSamplingErrorBounds(t *testing.T) {
	tiers := []struct {
		name  string
		sm    dinero.Sampling
		bound float64
	}{
		{"set-sampling", dinero.Sampling{SetFactor: 4}, setSampleBound},
		{"interval-sampling", dinero.Sampling{Interval: 4}, intervalBound},
	}
	worst := map[string]float64{}
	asserted := 0
	for _, name := range sortedWorkloads() {
		recs := traceWorkload(t, name)
		exact, err := dinero.NewMulti(dinero.MultiOptions{Configs: goldenConfigs, StatsOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		exact.Process(recs)

		for _, tier := range tiers {
			ms, err := dinero.NewMulti(dinero.MultiOptions{
				Configs: goldenConfigs, Sampling: tier.sm, StatsOnly: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			ms.Process(recs)
			for i, cfg := range goldenConfigs {
				ex := exact.Stats(i)
				if ex.Misses() < minMissesForBound || ex.MissRatio() < minRatioForBound {
					continue
				}
				est := ms.ScaledStats(i)
				relErr := math.Abs(float64(est.Misses()-ex.Misses())) / float64(ex.Misses())
				if relErr > worst[tier.name] {
					worst[tier.name] = relErr
				}
				asserted++
				if relErr > tier.bound {
					t.Errorf("%s %s config %s: miss-count rel. error %.4f exceeds bound %.2f (exact %d, sampled estimate %d)",
						name, tier.name, cfg.Name, relErr, tier.bound, ex.Misses(), est.Misses())
				}
			}
		}
	}
	if asserted == 0 {
		t.Fatal("no workload/config pair reached the assertion threshold")
	}
	for _, tier := range tiers {
		t.Logf("%s: worst miss-count relative error %.4f over %d asserted pairs (bound %.2f)",
			tier.name, worst[tier.name], asserted, tier.bound)
	}
}
