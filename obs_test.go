// End-to-end observability tests: run the real binaries with -metrics-out
// and -log-format=json and assert the manifest invariants the telemetry
// layer promises — lossless runs simulate every decoded record, resumed
// runs reuse checkpointed work, and the JSON log sink emits one parseable
// object per line.
package tracedst_test

import (
	"bufio"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// manifest mirrors the fields of the telemetry metrics manifest that the
// tests assert on.
type manifest struct {
	Schema   int              `json:"schema"`
	Tool     string           `json:"tool"`
	WallNS   int64            `json:"wall_ns"`
	Counters map[string]int64 `json:"counters"`
	Gauges   map[string]int64 `json:"gauges"`
	Spans    map[string]struct {
		Count  int64 `json:"count"`
		WallNS int64 `json:"wall_ns"`
	} `json:"spans"`
}

func readManifest(t *testing.T, path string) manifest {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest %s does not parse: %v\n%s", path, err, data)
	}
	if m.Schema != 1 {
		t.Errorf("manifest schema = %d, want 1", m.Schema)
	}
	return m
}

// runToolStderr runs a tool like runTool but also returns stderr instead
// of requiring it to be empty.
func runToolStderr(t *testing.T, name string, args ...string) (string, string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildTools(t), name), args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("%s %v: %v\nstdout:\n%s\nstderr:\n%s", name, args, err, stdout.String(), stderr.String())
	}
	return stdout.String(), stderr.String()
}

// TestCLIMetricsLossless checks the pipeline's conservation law: on a
// clean run every record the decoder produced is simulated (or explicitly
// counted as ignored) — nothing is dropped silently.
func TestCLIMetricsLossless(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "t.out")
	metrics := filepath.Join(dir, "metrics.json")
	runTool(t, "gltrace", "-w", "trans1-soa", "-o", traceFile)
	runTool(t, "dinero", "-metrics-out", metrics, traceFile)

	m := readManifest(t, metrics)
	if m.Tool != "dinero" {
		t.Errorf("tool = %q, want dinero", m.Tool)
	}
	decoded := m.Counters["trace.decode.records"]
	simulated := m.Counters["dinero.records_simulated"]
	ignored := m.Counters["dinero.records_ignored"]
	if decoded == 0 {
		t.Fatalf("trace.decode.records = 0; counters: %v", m.Counters)
	}
	if decoded != simulated+ignored {
		t.Errorf("lossless run: decoded %d != simulated %d + ignored %d",
			decoded, simulated, ignored)
	}
	if m.Counters["dinero.sims"] != 1 {
		t.Errorf("dinero.sims = %d, want 1", m.Counters["dinero.sims"])
	}
	for _, span := range []string{"dinero/load", "dinero/simulate"} {
		if m.Spans[span].Count != 1 {
			t.Errorf("span %q count = %d, want 1", span, m.Spans[span].Count)
		}
	}
}

// TestCLIExperimentsMetricsResume checks the batch-runner metrics: a fresh
// checkpointed sweep persists every task and simulates every record it
// decodes; the resumed run reports checkpoint hits instead of re-simulating.
func TestCLIExperimentsMetricsResume(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck")
	m1Path := filepath.Join(dir, "m1.json")
	m2Path := filepath.Join(dir, "m2.json")

	runTool(t, "experiments", "-sweep", "-checkpoint", ck, "-metrics-out", m1Path)
	m1 := readManifest(t, m1Path)
	if m1.Tool != "experiments" {
		t.Errorf("tool = %q, want experiments", m1.Tool)
	}
	if got, want := m1.Counters["experiments.tasks"], m1.Counters["experiments.tasks_ok"]; got != want || got == 0 {
		t.Errorf("tasks = %d, tasks_ok = %d; want equal and nonzero", got, want)
	}
	if m1.Counters["experiments.records_in"] == 0 ||
		m1.Counters["experiments.records_in"] != m1.Counters["dinero.records_simulated"] {
		t.Errorf("records_in = %d, records_simulated = %d; want equal and nonzero",
			m1.Counters["experiments.records_in"], m1.Counters["dinero.records_simulated"])
	}
	// Sweep tasks are side-level but checkpoint one entry per cache size
	// (so sampled/exact runs and old checkpoints stay resumable), so puts
	// is at least one per task and strictly more for the sweep tasks.
	if puts, tasks := m1.Counters["experiments.checkpoint.puts"], m1.Counters["experiments.tasks"]; puts < tasks || puts == 0 {
		t.Errorf("checkpoint.puts = %d, want >= %d (at least one per task)", puts, tasks)
	}
	if m1.Counters["experiments.checkpoint.hits"] != 0 {
		t.Errorf("fresh run checkpoint.hits = %d, want 0", m1.Counters["experiments.checkpoint.hits"])
	}
	if m1.Gauges["experiments.workers"] < 1 {
		t.Errorf("workers gauge = %d, want >= 1", m1.Gauges["experiments.workers"])
	}

	runTool(t, "experiments", "-sweep", "-resume", ck, "-metrics-out", m2Path)
	m2 := readManifest(t, m2Path)
	if m2.Counters["experiments.checkpoint.hits"] == 0 {
		t.Errorf("resumed run checkpoint.hits = 0; counters: %v", m2.Counters)
	}
	if m2.Counters["experiments.checkpoint.misses"] != 0 {
		t.Errorf("resumed run checkpoint.misses = %d, want 0", m2.Counters["experiments.checkpoint.misses"])
	}
	if m2.Counters["dinero.sims"] != 0 {
		t.Errorf("resumed run re-simulated %d times, want 0", m2.Counters["dinero.sims"])
	}
}

// TestCLIJSONLogs checks the machine-readable sink: with -log-format=json
// every stderr line is a JSON object carrying the tool attribute —
// including lenient-decode skip warnings.
func TestCLIJSONLogs(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "t.out")
	runTool(t, "gltrace", "-w", "trans1-soa", "-o", traceFile)

	// Corrupt one line mid-trace so the lenient decoder has something to
	// report.
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 4 {
		t.Fatalf("trace too short: %d lines", len(lines))
	}
	lines[2] = "THIS IS NOT A TRACE LINE\n"
	bad := filepath.Join(dir, "bad.out")
	if err := os.WriteFile(bad, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	metrics := filepath.Join(dir, "m.json")
	_, stderr := runToolStderr(t, "dinero",
		"-log-format=json", "-lenient", "-metrics-out", metrics, bad)

	var sawSkip bool
	sc := bufio.NewScanner(strings.NewReader(stderr))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev struct {
			Tool string `json:"tool"`
			Msg  string `json:"msg"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("stderr line is not JSON: %q (%v)", line, err)
		}
		if ev.Tool != "dinero" {
			t.Errorf("event tool = %q, want dinero: %s", ev.Tool, line)
		}
		if strings.Contains(ev.Msg, "skipping line") {
			sawSkip = true
		}
	}
	if !sawSkip {
		t.Errorf("no skipping-line event in stderr:\n%s", stderr)
	}
	m := readManifest(t, metrics)
	if m.Counters["trace.decode.bad_lines"] != 1 {
		t.Errorf("trace.decode.bad_lines = %d, want 1", m.Counters["trace.decode.bad_lines"])
	}
	if m.Counters["trace.decode.bad_lines.parse"] != 1 {
		t.Errorf("trace.decode.bad_lines.parse = %d, want 1", m.Counters["trace.decode.bad_lines.parse"])
	}
}

// TestCLIMetricsStdout checks that -metrics-out - streams the manifest to
// stdout after the report.
func TestCLIMetricsStdout(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "t.out")
	runTool(t, "gltrace", "-w", "trans1-soa", "-o", traceFile)
	out := runTool(t, "glprof", "-metrics-out", "-", traceFile)
	i := strings.Index(out, `{
  "schema": 1,`)
	if i < 0 {
		t.Fatalf("no manifest on stdout:\n%.400s", out)
	}
	var m manifest
	if err := json.Unmarshal([]byte(out[i:]), &m); err != nil {
		t.Fatalf("stdout manifest does not parse: %v", err)
	}
	if m.Tool != "glprof" {
		t.Errorf("tool = %q, want glprof", m.Tool)
	}
}

// TestCLITraceExport: -trace-out writes a JSONL span export whose lines
// form one tree — a single trace ID, a root span named after the tool,
// every other span reachable through in-export parents.
func TestCLITraceExport(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "t.out")
	spansFile := filepath.Join(dir, "spans.jsonl")
	runTool(t, "gltrace", "-w", "trans1-soa", "-o", traceFile)
	runTool(t, "dinero", "-stream", "-trace-out", spansFile, traceFile)

	type spanEvent struct {
		Trace   string            `json:"trace"`
		Span    string            `json:"span"`
		Parent  string            `json:"parent"`
		Name    string            `json:"name"`
		StartNS int64             `json:"start_unix_ns"`
		EndNS   int64             `json:"end_unix_ns"`
		Attrs   map[string]string `json:"attrs"`
	}
	f, err := os.Open(spansFile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var events []spanEvent
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) == "" {
			continue
		}
		var ev spanEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("span line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("only %d spans exported", len(events))
	}

	byName := map[string]spanEvent{}
	ids := map[string]bool{}
	trace := events[0].Trace
	for _, ev := range events {
		if ev.Trace != trace {
			t.Fatalf("spans carry two trace IDs: %s and %s", trace, ev.Trace)
		}
		if ev.EndNS < ev.StartNS {
			t.Fatalf("span %s ends before it starts", ev.Name)
		}
		byName[ev.Name] = ev
		ids[ev.Span] = true
	}
	root, ok := byName["dinero"]
	if !ok || root.Parent != "" {
		t.Fatalf("no parentless root span named dinero (have %+v)", byName)
	}
	for _, want := range []string{"dinero/simulate-stream", "trace.decode.stream", "dinero.simulate"} {
		ev, ok := byName[want]
		if !ok {
			t.Fatalf("no %s span in export", want)
		}
		if !ids[ev.Parent] {
			t.Fatalf("span %s has parent %q outside the export", want, ev.Parent)
		}
	}
	if byName["dinero.simulate"].Attrs["records"] == "" {
		t.Error("dinero.simulate span lost its records attr")
	}
}
