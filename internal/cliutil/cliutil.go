// Package cliutil holds the flag plumbing shared by the command-line tools:
// cache-geometry flags in DineroIV style, trace-decoder robustness flags,
// repeatable -D macro definitions, and trace-file loading.
package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"tracedst/internal/cache"
	"tracedst/internal/telemetry"
	"tracedst/internal/trace"
)

// CacheFlags registers DineroIV-style geometry flags with the given prefix
// (e.g. "l1") and returns a builder.
type CacheFlags struct {
	size  *string
	bsize *int64
	assoc *int
	repl  *string
	write *string
	alloc *string
	class *bool
	pf    *string
	name  string
}

// NewCacheFlags registers -<p>-size, -<p>-bsize, -<p>-assoc, -<p>-repl,
// -<p>-write, -<p>-alloc and -<p>-classify on fs with the given defaults.
func NewCacheFlags(fs *flag.FlagSet, p string, defSize string, defBsize int64, defAssoc int) *CacheFlags {
	return &CacheFlags{
		name:  p,
		size:  fs.String(p+"-size", defSize, "cache size in bytes (suffixes k/m allowed)"),
		bsize: fs.Int64(p+"-bsize", defBsize, "cache block size in bytes"),
		assoc: fs.Int(p+"-assoc", defAssoc, "associativity (0 = fully associative)"),
		repl:  fs.String(p+"-repl", "lru", "replacement policy: lru|fifo|random|rr"),
		write: fs.String(p+"-write", "wb", "write policy: wb (write-back) | wt (write-through)"),
		alloc: fs.String(p+"-alloc", "wa", "write-miss policy: wa (allocate) | wn (no allocate)"),
		class: fs.Bool(p+"-classify", false, "classify misses (compulsory/capacity/conflict)"),
		pf:    fs.String(p+"-pf", "none", "sequential prefetch: none | miss | always"),
	}
}

// Build validates the flags into a cache.Config.
func (cf *CacheFlags) Build() (cache.Config, error) {
	var cfg cache.Config
	size, err := ParseSize(*cf.size)
	if err != nil {
		return cfg, err
	}
	repl, err := cache.ParseRepl(*cf.repl)
	if err != nil {
		return cfg, err
	}
	pf, err := cache.ParsePrefetch(*cf.pf)
	if err != nil {
		return cfg, err
	}
	cfg = cache.Config{
		Name:           cf.name,
		Size:           size,
		BlockSize:      *cf.bsize,
		Assoc:          *cf.assoc,
		Repl:           repl,
		Prefetch:       pf,
		ClassifyMisses: *cf.class,
	}
	switch *cf.write {
	case "wb":
		cfg.Write = cache.WriteBack
	case "wt":
		cfg.Write = cache.WriteThrough
	default:
		return cfg, fmt.Errorf("bad write policy %q", *cf.write)
	}
	switch *cf.alloc {
	case "wa":
		cfg.Alloc = cache.WriteAllocate
	case "wn":
		cfg.Alloc = cache.NoWriteAllocate
	default:
		return cfg, fmt.Errorf("bad alloc policy %q", *cf.alloc)
	}
	return cfg, cfg.Validate()
}

// ParseSize parses "32768", "32k", "4m".
func ParseSize(s string) (int64, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "k"):
		mult, s = 1024, s[:len(s)-1]
	case strings.HasSuffix(s, "m"):
		mult, s = 1024*1024, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return n * mult, nil
}

// Defines is a repeatable -D NAME=VALUE flag.
type Defines map[string]string

// String implements flag.Value.
func (d Defines) String() string {
	var parts []string
	for k, v := range d {
		parts = append(parts, k+"="+v)
	}
	return strings.Join(parts, ",")
}

// Set implements flag.Value.
func (d Defines) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("define must be NAME=VALUE, got %q", s)
	}
	d[name] = val
	return nil
}

// ParseTraceFormat maps a -format flag value to a trace container format.
// "auto" (and "") mean "decide from context" — mirror the input format on a
// transform, or fall back to text — and return FormatUnknown.
func ParseTraceFormat(s string) (trace.FileFormat, error) {
	switch s {
	case "text", "gleipnir":
		return trace.FormatText, nil
	case "binary", "glb":
		return trace.FormatBinary, nil
	case "", "auto":
		return trace.FormatUnknown, nil
	}
	return trace.FormatUnknown, fmt.Errorf("bad trace format %q (want auto, text or binary)", s)
}

// TraceFlags registers the trace-decoder robustness flags shared by every
// tool that ingests a trace file.
type TraceFlags struct {
	lenient *bool
	maxBad  *int
	maxLine *int
	format  *string
	tool    string
}

// NewTraceFlags registers -lenient, -max-bad-lines and -max-line-bytes on
// fs. tool names the program in skip messages.
func NewTraceFlags(fs *flag.FlagSet, tool string) *TraceFlags {
	return &TraceFlags{
		tool:    tool,
		lenient: fs.Bool("lenient", false, "skip malformed trace lines instead of failing on the first"),
		maxBad:  fs.Int("max-bad-lines", 0, "lenient mode: fail after skipping this many lines (0 = unlimited)"),
		maxLine: fs.Int("max-line-bytes", 0, "maximum trace line length in bytes (0 = 1 MiB default)"),
	}
}

// AddFormatFlag registers -format on fs for tools that write traces.
// Opt-in rather than part of NewTraceFlags because some tools already own a
// -format flag with a different meaning (setplot's plot style, gltrace's
// output dialect). Readers never need it: input format is sniffed.
func (tf *TraceFlags) AddFormatFlag(fs *flag.FlagSet) {
	tf.format = fs.String("format", "auto", "output trace format: auto (mirror input) | text | binary")
}

// OutputFormat resolves the -format flag against the detected input format:
// "auto" mirrors the input, so text pipelines stay text and binary stay
// binary unless overridden.
func (tf *TraceFlags) OutputFormat(input trace.FileFormat) (trace.FileFormat, error) {
	if tf.format == nil {
		return input, nil
	}
	f, err := ParseTraceFormat(*tf.format)
	if err != nil {
		return trace.FormatUnknown, err
	}
	if f == trace.FormatUnknown {
		return input, nil
	}
	return f, nil
}

// Options builds the decoder options. In lenient mode every skipped line
// is reported through the telemetry logger as a warning whose message is
// "skipping line N: <reason>" (text format renders the traditional
// "<tool>: skipping line N: ..." stderr line) and counted by failure
// class under trace.decode.bad_lines.
func (tf *TraceFlags) Options() trace.DecodeOptions {
	opts := trace.DecodeOptions{MaxLineBytes: *tf.maxLine}
	if *tf.lenient {
		opts.Mode = trace.Lenient
		opts.MaxBadLines = *tf.maxBad
		opts.OnError = func(line int, text string, err error) {
			reg := telemetry.Default()
			reg.Counter("trace.decode.bad_lines").Inc()
			if errors.Is(err, trace.ErrLineTooLong) {
				reg.Counter("trace.decode.bad_lines.line_len").Inc()
			} else {
				reg.Counter("trace.decode.bad_lines.parse").Inc()
			}
			telemetry.L().Warn(fmt.Sprintf("skipping line %d: %v", line, err))
		}
	}
	return opts
}

// nopCloser wraps stdio streams so OpenTrace callers can Close uniformly
// without closing the process's fds.
type nopCloser struct{ io.Reader }

func (nopCloser) Close() error { return nil }

// OpenTrace opens a trace file for streaming ("-" means stdin; Close is a
// no-op for stdin).
func OpenTrace(path string) (io.ReadCloser, error) {
	if path == "-" {
		return nopCloser{os.Stdin}, nil
	}
	return os.Open(path)
}

// LoadTrace reads a trace file ("-" means stdin) with a strict decoder.
func LoadTrace(path string) (trace.Header, []trace.Record, error) {
	h, _, recs, err := LoadTraceOpts(path, trace.DecodeOptions{})
	return h, recs, err
}

// LoadTraceOpts reads a trace file ("-" means stdin) with explicit decode
// options. hasHdr reports whether the input actually began with a START
// line, so writers can round-trip headerless traces byte-for-byte.
func LoadTraceOpts(path string, opts trace.DecodeOptions) (h trace.Header, hasHdr bool, recs []trace.Record, err error) {
	h, hasHdr, recs, _, err = LoadTraceFormat(path, opts)
	return h, hasHdr, recs, err
}

// LoadTraceFormat is LoadTraceOpts plus the sniffed container format, for
// tools that mirror the input format on output. The trace format (text or
// binary) is detected from the file's magic, and decoding fans out across
// GOMAXPROCS workers with serial-identical results.
func LoadTraceFormat(path string, opts trace.DecodeOptions) (h trace.Header, hasHdr bool, recs []trace.Record, format trace.FileFormat, err error) {
	in, err := OpenTrace(path)
	if err != nil {
		return trace.Header{}, false, nil, trace.FormatUnknown, err
	}
	defer in.Close()
	data, err := io.ReadAll(in)
	if err != nil {
		return trace.Header{}, false, nil, trace.FormatUnknown, err
	}
	format = trace.DetectFormat(data)
	h, hasHdr, recs, err = trace.DecodeBytes(data, opts, 0)
	reg := telemetry.Default()
	reg.Counter("trace.decode.files").Inc()
	reg.Counter("trace.decode.bytes").Add(int64(len(data)))
	reg.Counter("trace.decode.records").Add(int64(len(recs)))
	reg.Counter("trace.decode.records." + format.String()).Add(int64(len(recs)))
	return h, hasHdr, recs, format, err
}

// WriteTrace writes a trace file ("-" means stdout), header included.
func WriteTrace(path string, h trace.Header, recs []trace.Record) error {
	return WriteTraceOpts(path, h, true, recs)
}

// WriteTraceOpts writes a trace file ("-" means stdout), emitting the
// START line only when hasHdr is true. File output goes through an atomic
// temp-file+rename, so an interrupted run never leaves a truncated trace
// at the destination path. The container format follows the path: ".glb"
// files are written binary, everything else text.
func WriteTraceOpts(path string, h trace.Header, hasHdr bool, recs []trace.Record) error {
	return WriteTraceFormat(path, h, hasHdr, recs, trace.FormatUnknown)
}

// countingWriter tallies bytes written, for the trace.encode.bytes counter.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

// WriteTraceFormat is WriteTraceOpts with an explicit container format.
// FormatUnknown picks by destination: ".glb" paths get binary, others text.
func WriteTraceFormat(path string, h trace.Header, hasHdr bool, recs []trace.Record, format trace.FileFormat) error {
	if format == trace.FormatUnknown {
		format = trace.FormatText
		if strings.HasSuffix(path, ".glb") {
			format = trace.FormatBinary
		}
	}
	var written int64
	emit := func(out io.Writer) error {
		cw := &countingWriter{w: out}
		w := trace.NewWriterFormat(cw, format)
		if hasHdr {
			if err := w.WriteHeader(h); err != nil {
				return err
			}
		}
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		written = cw.n
		return nil
	}
	var err error
	if path == "-" {
		err = emit(os.Stdout)
	} else {
		err = trace.WriteToAtomic(path, emit)
	}
	if err != nil {
		return err
	}
	reg := telemetry.Default()
	reg.Counter("trace.encode.files").Inc()
	reg.Counter("trace.encode.bytes").Add(written)
	reg.Counter("trace.encode.records").Add(int64(len(recs)))
	reg.Counter("trace.encode.records." + format.String()).Add(int64(len(recs)))
	return nil
}

// WriteFile writes an output artifact ("-" means stdout) via an atomic
// temp-file+rename, the shared crash-safe path for every CLI that produces
// CSV/gnuplot/diff files.
func WriteFile(path string, data []byte) error {
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return trace.WriteFileAtomic(path, data, 0o644)
}

// WriteTo streams write's output to path ("-" means stdout) with the same
// atomic-rename guarantee as WriteFile.
func WriteTo(path string, write func(w io.Writer) error) error {
	if path == "-" {
		return write(os.Stdout)
	}
	return trace.WriteToAtomic(path, write)
}
