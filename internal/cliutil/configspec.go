package cliutil

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"tracedst/internal/cache"
)

// ParseConfigSpec applies a comma-separated list of key=value overrides to
// base and validates the result. It is the textual form of one -config
// flag: "size=8k,assoc=2,name=l1-8k" names a config that is the -l1 flags
// with an 8 KiB capacity and two ways. Keys: name, size, bsize, assoc,
// repl, write, alloc, pf, classify, seed.
func ParseConfigSpec(base cache.Config, spec string) (cache.Config, error) {
	cfg := base
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return cfg, fmt.Errorf("config field %q: want key=value", field)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "name":
			cfg.Name = val
		case "size":
			cfg.Size, err = ParseSize(val)
		case "bsize":
			cfg.BlockSize, err = ParseSize(val)
		case "assoc":
			cfg.Assoc, err = strconv.Atoi(val)
		case "repl":
			cfg.Repl, err = cache.ParseRepl(val)
		case "write":
			switch val {
			case "wb":
				cfg.Write = cache.WriteBack
			case "wt":
				cfg.Write = cache.WriteThrough
			default:
				err = fmt.Errorf("bad write policy %q", val)
			}
		case "alloc":
			switch val {
			case "wa":
				cfg.Alloc = cache.WriteAllocate
			case "wn":
				cfg.Alloc = cache.NoWriteAllocate
			default:
				err = fmt.Errorf("bad alloc policy %q", val)
			}
		case "pf":
			cfg.Prefetch, err = cache.ParsePrefetch(val)
		case "classify":
			cfg.ClassifyMisses, err = strconv.ParseBool(val)
		case "seed":
			cfg.Seed, err = strconv.ParseUint(val, 10, 64)
		default:
			err = fmt.Errorf("unknown key %q (want name|size|bsize|assoc|repl|write|alloc|pf|classify|seed)", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("config field %q: %w", field, err)
		}
	}
	return cfg, cfg.Validate()
}

// LoadConfigSpecs reads a config-spec file ("-" means stdin): one
// ParseConfigSpec line per config, blank lines and #-comments skipped.
func LoadConfigSpecs(path string, base cache.Config) ([]cache.Config, error) {
	in, err := OpenTrace(path)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	data, err := io.ReadAll(in)
	if err != nil {
		return nil, err
	}
	var cfgs []cache.Config
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cfg, err := ParseConfigSpec(base, line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, ln+1, err)
		}
		cfgs = append(cfgs, cfg)
	}
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("%s: no configs", path)
	}
	return cfgs, nil
}

// Repeated is a repeatable string flag (e.g. several -config specs).
type Repeated []string

// String implements flag.Value.
func (r *Repeated) String() string { return strings.Join(*r, " ") }

// Set implements flag.Value.
func (r *Repeated) Set(s string) error {
	*r = append(*r, s)
	return nil
}
