package cliutil

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"tracedst/internal/cache"
	"tracedst/internal/trace"
)

func TestParseSize(t *testing.T) {
	cases := map[string]int64{
		"32768": 32768,
		"32k":   32768,
		"32K":   32768,
		"4m":    4 * 1024 * 1024,
		" 8k ":  8192,
	}
	for in, want := range cases {
		got, err := ParseSize(in)
		if err != nil || got != want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "k", "12q", "1.5k"} {
		if _, err := ParseSize(bad); err == nil {
			t.Errorf("ParseSize(%q) accepted", bad)
		}
	}
}

func TestCacheFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	cf := NewCacheFlags(fs, "l1", "32k", 32, 1)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	cfg, err := cf.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Size != 32768 || cfg.BlockSize != 32 || cfg.Assoc != 1 ||
		cfg.Repl != cache.ReplLRU || cfg.Write != cache.WriteBack || cfg.Alloc != cache.WriteAllocate {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestCacheFlagsParsing(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	cf := NewCacheFlags(fs, "l1", "32k", 32, 1)
	args := []string{"-l1-size", "8k", "-l1-assoc", "64", "-l1-repl", "rr",
		"-l1-write", "wt", "-l1-alloc", "wn", "-l1-classify"}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	cfg, err := cf.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Size != 8192 || cfg.Assoc != 64 || cfg.Repl != cache.ReplRoundRobin ||
		cfg.Write != cache.WriteThrough || cfg.Alloc != cache.NoWriteAllocate || !cfg.ClassifyMisses {
		t.Errorf("cfg = %+v", cfg)
	}
}

func TestCacheFlagsErrors(t *testing.T) {
	build := func(args ...string) error {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		cf := NewCacheFlags(fs, "l1", "32k", 32, 1)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		_, err := cf.Build()
		return err
	}
	for _, args := range [][]string{
		{"-l1-size", "nope"},
		{"-l1-repl", "mru"},
		{"-l1-write", "xx"},
		{"-l1-alloc", "xx"},
		{"-l1-bsize", "33"},
	} {
		if build(args...) == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestDefinesFlag(t *testing.T) {
	d := Defines{}
	if err := d.Set("LEN=16"); err != nil {
		t.Fatal(err)
	}
	if err := d.Set("N=8"); err != nil {
		t.Fatal(err)
	}
	if d["LEN"] != "16" || d["N"] != "8" {
		t.Errorf("defines = %v", d)
	}
	if err := d.Set("NOVALUE"); err == nil {
		t.Error("missing '=' accepted")
	}
	if err := d.Set("=5"); err == nil {
		t.Error("empty name accepted")
	}
	if d.String() == "" {
		t.Error("String empty")
	}
}

func TestLoadWriteTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trc")
	h := trace.Header{PID: 42}
	rec, err := trace.ParseRecord("S 000601040 4 main GV g")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(path, h, []trace.Record{rec}); err != nil {
		t.Fatal(err)
	}
	h2, recs, err := LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if h2.PID != 42 || len(recs) != 1 || !recs[0].Equal(&rec) {
		t.Errorf("round trip: %+v %+v", h2, recs)
	}
}

func TestLoadTraceMissing(t *testing.T) {
	if _, _, err := LoadTrace(filepath.Join(t.TempDir(), "missing.trc")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestWriteTraceBadDir(t *testing.T) {
	if err := WriteTrace(filepath.Join(t.TempDir(), "no", "such", "dir", "t.trc"),
		trace.Header{}, nil); err == nil {
		t.Error("bad path accepted")
	}
	_ = os.ErrNotExist
}

func TestCacheFlagsPrefetch(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	cf := NewCacheFlags(fs, "l1", "32k", 32, 1)
	if err := fs.Parse([]string{"-l1-pf", "always"}); err != nil {
		t.Fatal(err)
	}
	cfg, err := cf.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Prefetch != cache.PrefetchAlways {
		t.Errorf("prefetch = %v", cfg.Prefetch)
	}
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	cf2 := NewCacheFlags(fs2, "l1", "32k", 32, 1)
	if err := fs2.Parse([]string{"-l1-pf", "bogus"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cf2.Build(); err == nil {
		t.Error("bad prefetch flag accepted")
	}
}

func TestTraceFlagsDefaultsToStrict(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	tf := NewTraceFlags(fs, "tool")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	opts := tf.Options()
	if opts.Mode != trace.Strict || opts.OnError != nil || opts.MaxBadLines != 0 {
		t.Errorf("defaults not strict: %+v", opts)
	}
}

func TestTraceFlagsLenient(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	tf := NewTraceFlags(fs, "tool")
	if err := fs.Parse([]string{"-lenient", "-max-bad-lines", "5", "-max-line-bytes", "4096"}); err != nil {
		t.Fatal(err)
	}
	opts := tf.Options()
	if opts.Mode != trace.Lenient || opts.MaxBadLines != 5 || opts.MaxLineBytes != 4096 {
		t.Errorf("lenient flags not mapped: %+v", opts)
	}
	if opts.OnError == nil {
		t.Error("lenient mode must report skips")
	}
}

func TestLoadTraceOptsHeaderless(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "nohdr.trc")
	const body = "S 000601040 4 main GV g\n"
	if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	h, hasHdr, recs, err := LoadTraceOpts(p, trace.DecodeOptions{})
	if err != nil || hasHdr || h.PID != 0 || len(recs) != 1 {
		t.Fatalf("hasHdr=%v h=%v recs=%d err=%v", hasHdr, h, len(recs), err)
	}
	// Round trip keeps it headerless.
	out := filepath.Join(dir, "out.trc")
	if err := WriteTraceOpts(out, h, hasHdr, recs); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != body {
		t.Errorf("round trip = %q, want %q", b, body)
	}
}

func TestLoadTraceOptsLenient(t *testing.T) {
	p := filepath.Join(t.TempDir(), "bad.trc")
	src := "START PID 1\nS 000601040 4 main GV g\n@@junk@@\nL 000601040 4 main GV g\n"
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadTraceOpts(p, trace.DecodeOptions{}); err == nil {
		t.Fatal("strict load accepted junk")
	}
	h, hasHdr, recs, err := LoadTraceOpts(p, trace.DecodeOptions{Mode: trace.Lenient})
	if err != nil || !hasHdr || h.PID != 1 || len(recs) != 2 {
		t.Fatalf("lenient: hasHdr=%v h=%v recs=%d err=%v", hasHdr, h, len(recs), err)
	}
}

func TestOpenTraceStdin(t *testing.T) {
	rc, err := OpenTrace("-")
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Close(); err != nil {
		t.Errorf("stdin Close: %v", err)
	}
	if _, err := OpenTrace(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestWriteTraceAtomic(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "out.trc")
	h := trace.Header{PID: 7}
	recs := []trace.Record{{Op: trace.Store, Addr: 0x601040, Size: 4, Func: "main"}}
	if err := WriteTrace(p, h, recs); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	want := "START PID 7\nS 000601040 4 main\n"
	if string(got) != want {
		t.Errorf("trace = %q, want %q", got, want)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Errorf("WriteTrace leaked temp files: %v", ents)
	}
}

func TestWriteFileAtomicHelper(t *testing.T) {
	p := filepath.Join(t.TempDir(), "a.csv")
	if err := WriteFile(p, []byte("x,y\n")); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(p)
	if string(got) != "x,y\n" {
		t.Errorf("content = %q", got)
	}
}

func TestParseTraceFormat(t *testing.T) {
	cases := []struct {
		in   string
		want trace.FileFormat
		err  bool
	}{
		{"", trace.FormatUnknown, false},
		{"auto", trace.FormatUnknown, false},
		{"text", trace.FormatText, false},
		{"gleipnir", trace.FormatText, false},
		{"binary", trace.FormatBinary, false},
		{"glb", trace.FormatBinary, false},
		{"yaml", trace.FormatUnknown, true},
	}
	for _, c := range cases {
		got, err := ParseTraceFormat(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseTraceFormat(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
}

func TestWriteTraceFormatBinaryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	h := trace.Header{PID: 7}
	rec, err := trace.ParseRecord("S 000601040 4 main GV g")
	if err != nil {
		t.Fatal(err)
	}
	recs := []trace.Record{rec}

	// An explicit binary request and a .glb extension under auto must both
	// produce the block format; loading sniffs it back without being told.
	for _, tc := range []struct {
		name   string
		format trace.FileFormat
	}{
		{"explicit.trc", trace.FormatBinary},
		{"auto.glb", trace.FormatUnknown},
	} {
		p := filepath.Join(dir, tc.name)
		if err := WriteTraceFormat(p, h, true, recs, tc.format); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if trace.DetectFormat(b) != trace.FormatBinary {
			t.Fatalf("%s: not binary on disk: %q", tc.name, b[:min(len(b), 8)])
		}
		h2, hasHdr, recs2, format, err := LoadTraceFormat(p, trace.DecodeOptions{})
		if err != nil || !hasHdr || h2 != h || format != trace.FormatBinary {
			t.Fatalf("%s: load: h=%v hasHdr=%v format=%v err=%v", tc.name, h2, hasHdr, format, err)
		}
		if len(recs2) != 1 || !recs2[0].Equal(&rec) {
			t.Fatalf("%s: records changed: %+v", tc.name, recs2)
		}
	}

	// .glb loads still report text when the payload is text.
	p := filepath.Join(dir, "lying.glb")
	if err := WriteTraceFormat(p, h, true, recs, trace.FormatText); err != nil {
		t.Fatal(err)
	}
	if _, _, _, format, err := LoadTraceFormat(p, trace.DecodeOptions{}); err != nil || format != trace.FormatText {
		t.Fatalf("text-in-.glb: format=%v err=%v", format, err)
	}
}

func TestTraceFlagsOutputFormat(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	tf := NewTraceFlags(fs, "tool")
	tf.AddFormatFlag(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	// auto mirrors the input container.
	if f, err := tf.OutputFormat(trace.FormatBinary); err != nil || f != trace.FormatBinary {
		t.Errorf("auto: %v, %v", f, err)
	}
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	tf2 := NewTraceFlags(fs2, "tool")
	tf2.AddFormatFlag(fs2)
	if err := fs2.Parse([]string{"-format", "text"}); err != nil {
		t.Fatal(err)
	}
	if f, err := tf2.OutputFormat(trace.FormatBinary); err != nil || f != trace.FormatText {
		t.Errorf("override: %v, %v", f, err)
	}
}
