package cliutil

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"tracedst/internal/telemetry"
)

// ObsFlags registers the observability flags shared by every CLI:
// -v, -log-format, -metrics-out and -progress; tools that can run long
// enough to profile add -pprof, -cpuprofile and -memprofile via
// AddProfileFlags.
type ObsFlags struct {
	tool       string
	verbose    *bool
	logFormat  *string
	metricsOut *string
	traceOut   *string
	progress   *time.Duration
	pprofAddr  *string
	cpuProfile *string
	memProfile *string
}

// NewObsFlags registers the shared observability flags on fs. tool names
// the program in log lines and the metrics manifest.
func NewObsFlags(fs *flag.FlagSet, tool string) *ObsFlags {
	return &ObsFlags{
		tool:       tool,
		verbose:    fs.Bool("v", false, "verbose: emit debug events (per-phase spans, rates)"),
		logFormat:  fs.String("log-format", telemetry.FormatText, "log sink format: text | json (one JSON object per stderr line)"),
		metricsOut: fs.String("metrics-out", "", "write the end-of-run metrics manifest (JSON) to this file (- for stdout)"),
		traceOut:   fs.String("trace-out", "", "export completed spans as JSONL to this file (atomic rename; enables trace-ID propagation — see tools/spanview)"),
		progress:   fs.Duration("progress", 0, "emit a progress line with ETA at this interval during batch runs (0 = off)"),
	}
}

// AddProfileFlags registers -pprof, -cpuprofile and -memprofile — the
// live and post-mortem profiling hooks for the long-running tools.
func (of *ObsFlags) AddProfileFlags(fs *flag.FlagSet) {
	of.pprofAddr = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for live profiling")
	of.cpuProfile = fs.String("cpuprofile", "", "write a CPU profile to this file")
	of.memProfile = fs.String("memprofile", "", "write a heap profile to this file at exit")
}

// Obs is a started observability context: the tool's logger and registry
// (also installed as the telemetry process defaults), plus the profiling
// state unwound by Close.
type Obs struct {
	Tool string
	Log  *slog.Logger
	Reg  *telemetry.Registry
	// Ctx is the tool's base context: when -trace-out is set it carries a
	// fresh trace rooted at a span named after the tool, so stage spans
	// started with StartSpanCtx(obs.Ctx, ...) form one tree in the export.
	// Without -trace-out it is context.Background() and ctx-aware spans
	// cost the same as plain ones.
	Ctx context.Context
	// Spans is the JSONL exporter behind -trace-out (nil when unset).
	Spans *telemetry.SpanExporter

	root       *telemetry.Span
	metricsOut string
	memProfile string
	cpuFile    *os.File
	pprofLn    net.Listener
}

// Start builds the logger and a fresh registry from the parsed flags,
// installs both as the telemetry defaults, and begins any requested
// profiling. Call Close before exiting (also on the error path — it
// flushes profiles and writes the metrics manifest).
func (of *ObsFlags) Start() (*Obs, error) {
	log, err := telemetry.NewLogger(os.Stderr, of.tool, *of.logFormat, *of.verbose)
	if err != nil {
		return nil, err
	}
	o := &Obs{
		Tool:       of.tool,
		Log:        log,
		Reg:        telemetry.NewRegistry(),
		Ctx:        context.Background(),
		metricsOut: *of.metricsOut,
	}
	telemetry.SetLogger(log)
	telemetry.SetDefault(o.Reg)
	telemetry.SetProgressInterval(*of.progress)

	if *of.traceOut != "" {
		o.Spans = telemetry.NewSpanExporter(*of.traceOut)
		ctx := telemetry.ContextWithTrace(o.Ctx, o.Spans, telemetry.NewTraceID())
		o.root, o.Ctx = o.Reg.StartSpanCtx(ctx, of.tool)
	}

	if of.pprofAddr != nil && *of.pprofAddr != "" {
		ln, err := net.Listen("tcp", *of.pprofAddr)
		if err != nil {
			return nil, fmt.Errorf("%s: -pprof: %w", of.tool, err)
		}
		o.pprofLn = ln
		go func() {
			// The default mux carries the pprof handlers; Serve only
			// returns once the listener closes at shutdown.
			srv := &http.Server{Handler: http.DefaultServeMux}
			_ = srv.Serve(ln)
		}()
		log.Info("pprof listening", "addr", ln.Addr().String())
	}
	if of.cpuProfile != nil && *of.cpuProfile != "" {
		f, err := os.Create(*of.cpuProfile)
		if err != nil {
			return nil, fmt.Errorf("%s: -cpuprofile: %w", of.tool, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: -cpuprofile: %w", of.tool, err)
		}
		o.cpuFile = f
	}
	if of.memProfile != nil {
		o.memProfile = *of.memProfile
	}
	return o, nil
}

// Close unwinds what Start began: stops the CPU profile, writes the heap
// profile, shuts the pprof listener, and writes the metrics manifest
// atomically. Safe to call exactly once, right before process exit.
func (o *Obs) Close() error {
	var first error
	if o.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := o.cpuFile.Close(); err != nil && first == nil {
			first = err
		}
		o.cpuFile = nil
	}
	if o.memProfile != "" {
		if err := writeHeapProfile(o.memProfile); err != nil && first == nil {
			first = err
		}
	}
	if o.pprofLn != nil {
		o.pprofLn.Close()
		o.pprofLn = nil
	}
	if o.root != nil {
		o.root.End()
		o.root = nil
	}
	if o.Spans != nil {
		if err := o.Spans.Flush(); err != nil && first == nil {
			first = err
		}
	}
	if o.metricsOut != "" {
		if err := o.Reg.Snapshot(o.Tool).WriteFile(o.metricsOut); err != nil && first == nil {
			first = err
		} else if o.metricsOut != "-" {
			o.Log.Debug("metrics manifest written", "path", o.metricsOut)
		}
	}
	return first
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize the final live set
	return pprof.WriteHeapProfile(f)
}

// Fatal logs err through the tool's sink and exits with status 1,
// flushing profiles and the metrics manifest first. The shared
// last-resort error path of every CLI main.
func (o *Obs) Fatal(err error) {
	o.Log.Error(err.Error())
	o.Close()
	os.Exit(1)
}

// Exit flushes observability state and exits with the given status.
func (o *Obs) Exit(code int) {
	o.Close()
	os.Exit(code)
}
