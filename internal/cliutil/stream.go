// Streaming trace entry points: the constant-memory counterparts of
// LoadTrace*/WriteTrace*. OpenTraceSource streams a trace file as record
// batches (O(batch) live heap however large the file), StreamTrace drives
// a callback over them, and WriteTraceStream writes a trace incrementally
// behind the same atomic-rename and telemetry guarantees as the
// materializing writers.
package cliutil

import (
	"context"
	"io"
	"os"
	"strconv"
	"strings"

	"tracedst/internal/telemetry"
	"tracedst/internal/trace"
)

// countingReader tallies bytes read, for the trace.decode.bytes counter.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}

// TraceStream is an open trace file being streamed as record batches. It
// implements trace.RecordSource; Close releases the file and publishes the
// decode telemetry (files, bytes, records by format) that the
// materializing loaders publish per call, so streaming and slurping runs
// report identically.
type TraceStream struct {
	src     trace.RecordSource
	in      io.ReadCloser
	cr      *countingReader
	format  trace.FileFormat
	span    *telemetry.Span // non-nil when opened with OpenTraceSourceCtx
	records int64
	batches int64
	closed  bool
}

// OpenTraceSource opens path ("-" means stdin) for streaming with the
// given decode options. The container format is sniffed from the magic;
// binary traces stream block-at-a-time with zero copying.
func OpenTraceSource(path string, opts trace.DecodeOptions) (*TraceStream, error) {
	in, err := OpenTrace(path)
	if err != nil {
		return nil, err
	}
	cr := &countingReader{r: in}
	src, format, err := trace.OpenSource(cr, opts, 0)
	if err != nil {
		in.Close()
		return nil, err
	}
	return &TraceStream{src: src, in: in, cr: cr, format: format}, nil
}

// OpenTraceSourceCtx is OpenTraceSource with a "trace.decode.stream" span
// covering the stream's lifetime (open to Close): when ctx carries a
// trace the span joins its tree — tagged with format, records and bytes —
// and the per-name aggregate is recorded either way.
func OpenTraceSourceCtx(ctx context.Context, path string, opts trace.DecodeOptions) (*TraceStream, error) {
	ts, err := OpenTraceSource(path, opts)
	if err != nil {
		return nil, err
	}
	ts.span, _ = telemetry.Default().StartSpanCtx(ctx, "trace.decode.stream")
	ts.span.SetAttr("format", ts.format.String())
	return ts, nil
}

// Format returns the sniffed container format.
func (ts *TraceStream) Format() trace.FileFormat { return ts.format }

// Records returns how many records have been streamed so far.
func (ts *TraceStream) Records() int64 { return ts.records }

// Bytes returns how many input bytes have been consumed so far.
func (ts *TraceStream) Bytes() int64 { return ts.cr.n }

// Header returns the trace header (zero when absent).
func (ts *TraceStream) Header() (trace.Header, error) { return ts.src.Header() }

// HasHeader reports whether the trace carried a START header.
func (ts *TraceStream) HasHeader() bool { return ts.src.HasHeader() }

// BadLines returns how many damaged units were skipped in lenient mode.
func (ts *TraceStream) BadLines() int { return ts.src.BadLines() }

// NextBatch returns the next record batch (see trace.RecordSource).
func (ts *TraceStream) NextBatch() ([]trace.Record, error) {
	batch, err := ts.src.NextBatch()
	ts.records += int64(len(batch))
	if len(batch) > 0 {
		ts.batches++
	}
	return batch, err
}

// Close releases the input and publishes the decode telemetry. Safe to
// call more than once; only the first call publishes.
func (ts *TraceStream) Close() error {
	if ts.closed {
		return nil
	}
	ts.closed = true
	reg := telemetry.Default()
	reg.Counter("trace.decode.files").Inc()
	reg.Counter("trace.decode.bytes").Add(ts.cr.n)
	reg.Counter("trace.decode.records").Add(ts.records)
	reg.Counter("trace.decode.records." + ts.format.String()).Add(ts.records)
	reg.Counter("trace.stream.batches").Add(ts.batches)
	if ts.span != nil {
		ts.span.SetAttr("records", strconv.FormatInt(ts.records, 10))
		ts.span.SetAttr("bytes", strconv.FormatInt(ts.cr.n, 10))
		ts.span.End()
		ts.span = nil
	}
	return ts.in.Close()
}

// PublishIndexedDecode publishes the trace.decode counters for a pass over
// an mmap-backed indexed trace (always binary), so sharded runs report the
// same decode telemetry as the reader-based paths. records is how many
// records the pass actually decoded.
func PublishIndexedDecode(tr *trace.IndexedTrace, records int64) {
	reg := telemetry.Default()
	reg.Counter("trace.decode.files").Inc()
	reg.Counter("trace.decode.bytes").Add(tr.Bytes())
	reg.Counter("trace.decode.records").Add(records)
	reg.Counter("trace.decode.records.binary").Add(records)
}

// StreamInfo summarizes a finished StreamTrace pass.
type StreamInfo struct {
	Header    trace.Header
	HasHeader bool
	Format    trace.FileFormat
	Records   int64
	BadLines  int
}

// StreamTrace streams path's records through fn batch by batch — the
// constant-memory counterpart of LoadTraceOpts for consumers that fold
// rather than materialize. fn must not retain the batch slice.
func StreamTrace(path string, opts trace.DecodeOptions, fn func(batch []trace.Record) error) (StreamInfo, error) {
	ts, err := OpenTraceSource(path, opts)
	if err != nil {
		return StreamInfo{}, err
	}
	defer ts.Close()
	for {
		batch, err := ts.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			return ts.info(), err
		}
		if err := fn(batch); err != nil {
			return ts.info(), err
		}
	}
	return ts.info(), nil
}

func (ts *TraceStream) info() StreamInfo {
	h, _ := ts.src.Header()
	return StreamInfo{
		Header:    h,
		HasHeader: ts.src.HasHeader(),
		Format:    ts.format,
		Records:   ts.records,
		BadLines:  ts.src.BadLines(),
	}
}

// WriterOptions tune WriteTraceStream.
type WriterOptions struct {
	// Format selects the container; FormatUnknown picks by path suffix
	// (".glb" binary, otherwise text).
	Format trace.FileFormat
	// Index makes binary writers append the block-index footer so the
	// output is seekable/shardable without a scan. Ignored for text.
	Index bool
}

// ResolveTraceFormat applies the path-suffix default: FormatUnknown
// becomes binary for ".glb" destinations and text otherwise.
func ResolveTraceFormat(path string, format trace.FileFormat) trace.FileFormat {
	if format != trace.FormatUnknown {
		return format
	}
	if strings.HasSuffix(path, ".glb") {
		return trace.FormatBinary
	}
	return trace.FormatText
}

// WriteTraceStream writes a trace to path ("-" means stdout) by handing
// emit a RecordWriter — the streaming counterpart of WriteTraceFormat:
// records are encoded as emit produces them, nothing is materialized, and
// file output still goes through the atomic temp-file+rename.
// WriteTraceStream flushes (and emits the block-index footer when
// requested) after emit returns; both writers' Flush is idempotent, so an
// emit that already flushed is fine.
func WriteTraceStream(path string, o WriterOptions, emit func(w trace.RecordWriter) error) error {
	format := ResolveTraceFormat(path, o.Format)
	var written, records int64
	run := func(out io.Writer) error {
		cw := &countingWriter{w: out}
		w := trace.NewWriterFormat(cw, format)
		if bw, ok := w.(*trace.BinaryWriter); ok && o.Index {
			bw.EnableIndex()
		}
		if err := emit(w); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		written = cw.n
		records = int64(w.Records())
		return nil
	}
	var err error
	if path == "-" {
		err = run(os.Stdout)
	} else {
		err = trace.WriteToAtomic(path, run)
	}
	if err != nil {
		return err
	}
	reg := telemetry.Default()
	reg.Counter("trace.encode.files").Inc()
	reg.Counter("trace.encode.bytes").Add(written)
	reg.Counter("trace.encode.records").Add(records)
	reg.Counter("trace.encode.records." + format.String()).Add(records)
	return nil
}
