package analysis

import (
	"fmt"
	"strings"

	"tracedst/internal/cache"
	"tracedst/internal/trace"
)

// TimelinePoint is one window of a miss-rate timeline.
type TimelinePoint struct {
	// StartRecord is the index of the first record in the window.
	StartRecord int
	Accesses    int64
	Misses      int64
}

// Ratio returns misses/accesses for the window.
func (p TimelinePoint) Ratio() float64 {
	if p.Accesses == 0 {
		return 0
	}
	return float64(p.Misses) / float64(p.Accesses)
}

// Timeline is the evolution of the miss rate across a trace — phase
// behaviour that a single aggregate miss ratio hides (e.g. the cold start,
// or a transformation shifting misses from one loop to another).
type Timeline struct {
	Window int
	Points []TimelinePoint
}

// MissTimeline replays recs on a fresh cache of the given geometry and
// samples hit/miss counts every window records. X records are skipped;
// modifies count as read+write like the simulator proper.
func MissTimeline(recs []trace.Record, cfg cache.Config, window int) (*Timeline, error) {
	if window <= 0 {
		window = 256
	}
	c, err := cache.New(cfg, nil)
	if err != nil {
		return nil, err
	}
	tl := &Timeline{Window: window}
	var cur TimelinePoint
	flush := func(next int) {
		if cur.Accesses > 0 {
			tl.Points = append(tl.Points, cur)
		}
		cur = TimelinePoint{StartRecord: next}
	}
	var buf []cache.Outcome
	count := func(kind cache.Kind, r *trace.Record) {
		buf = c.Access(kind, r.Addr, r.Size, cache.NoOwner, buf[:0])
		for _, o := range buf {
			cur.Accesses++
			if !o.Hit {
				cur.Misses++
			}
		}
	}
	for i := range recs {
		if i > 0 && i%window == 0 {
			flush(i)
		}
		r := &recs[i]
		switch r.Op {
		case trace.Load:
			count(cache.Read, r)
		case trace.Store:
			count(cache.Write, r)
		case trace.Modify:
			count(cache.Read, r)
			count(cache.Write, r)
		}
	}
	flush(len(recs))
	return tl, nil
}

// Sparkline renders the timeline as a one-line unicode-free chart where
// each character bins one window's miss ratio into levels " .:-=+*#%@".
func (tl *Timeline) Sparkline() string {
	const levels = " .:-=+*#%@"
	var b strings.Builder
	for _, p := range tl.Points {
		idx := int(p.Ratio() * float64(len(levels)-1))
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteByte(levels[idx])
	}
	return b.String()
}

// Table renders the timeline numerically.
func (tl *Timeline) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %8s\n", "record", "accesses", "misses", "ratio")
	for _, p := range tl.Points {
		fmt.Fprintf(&b, "%-10d %10d %10d %7.2f%%\n", p.StartRecord, p.Accesses, p.Misses, 100*p.Ratio())
	}
	return b.String()
}

// PeakWindow returns the window with the highest miss ratio (ok false for
// an empty timeline).
func (tl *Timeline) PeakWindow() (TimelinePoint, bool) {
	var best TimelinePoint
	found := false
	for _, p := range tl.Points {
		if !found || p.Ratio() > best.Ratio() {
			best = p
			found = true
		}
	}
	return best, found
}
