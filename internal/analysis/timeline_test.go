package analysis

import (
	"strings"
	"testing"

	"tracedst/internal/cache"
	"tracedst/internal/trace"
	"tracedst/internal/tracer"
	"tracedst/internal/workloads"
)

func TestMissTimelineWindows(t *testing.T) {
	res, err := tracer.Run(workloads.Trans3Contiguous, map[string]string{"LEN": "256"}, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := MissTimeline(res.Records, cache.Paper32KDirect(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Points) < 2 {
		t.Fatalf("points = %d", len(tl.Points))
	}
	// Windows start at multiples of 100.
	for i, p := range tl.Points {
		if p.StartRecord%100 != 0 {
			t.Errorf("point %d starts at %d", i, p.StartRecord)
		}
		if p.Accesses == 0 {
			t.Errorf("point %d empty", i)
		}
	}
	// Totals match a plain simulation of the same model.
	var acc, miss int64
	for _, p := range tl.Points {
		acc += p.Accesses
		miss += p.Misses
	}
	c, _ := cache.New(cache.Paper32KDirect(), nil)
	var acc2, miss2 int64
	for i := range res.Records {
		r := &res.Records[i]
		kinds := []cache.Kind{}
		switch r.Op {
		case trace.Load:
			kinds = append(kinds, cache.Read)
		case trace.Store:
			kinds = append(kinds, cache.Write)
		case trace.Modify:
			kinds = append(kinds, cache.Read, cache.Write)
		}
		for _, k := range kinds {
			for _, o := range c.Access(k, r.Addr, r.Size, cache.NoOwner, nil) {
				acc2++
				if !o.Hit {
					miss2++
				}
			}
		}
	}
	if acc != acc2 || miss != miss2 {
		t.Errorf("timeline totals %d/%d vs direct %d/%d", acc, miss, acc2, miss2)
	}
}

func TestMissTimelineColdStart(t *testing.T) {
	// A sweep has its misses concentrated early-ish per window but a tiny
	// re-sweep is all hits: the second pass windows must have lower ratios.
	var recs []trace.Record
	mk := func(addr uint64) trace.Record {
		return trace.Record{Op: trace.Load, Addr: addr, Size: 4, Func: "main"}
	}
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 64; i++ {
			recs = append(recs, mk(uint64(i)*32))
		}
	}
	tl, err := MissTimeline(recs, cache.Paper32KDirect(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Points) != 2 {
		t.Fatalf("points = %d", len(tl.Points))
	}
	if tl.Points[0].Ratio() != 1.0 || tl.Points[1].Ratio() != 0.0 {
		t.Errorf("ratios = %v %v", tl.Points[0].Ratio(), tl.Points[1].Ratio())
	}
	peak, ok := tl.PeakWindow()
	if !ok || peak.StartRecord != 0 {
		t.Errorf("peak = %+v ok=%v", peak, ok)
	}
	spark := tl.Sparkline()
	if len(spark) != 2 || spark[0] != '@' || spark[1] != ' ' {
		t.Errorf("sparkline = %q", spark)
	}
	if !strings.Contains(tl.Table(), "100.00%") {
		t.Errorf("table:\n%s", tl.Table())
	}
}

func TestMissTimelineDefaults(t *testing.T) {
	tl, err := MissTimeline(nil, cache.Paper32KDirect(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Window != 256 || len(tl.Points) != 0 {
		t.Errorf("tl = %+v", tl)
	}
	if _, ok := tl.PeakWindow(); ok {
		t.Error("peak of empty timeline")
	}
	if _, err := MissTimeline(nil, cache.Config{Size: 100, BlockSize: 32, Assoc: 1}, 10); err == nil {
		t.Error("bad geometry accepted")
	}
}
