package analysis

import (
	"fmt"
	"strings"
)

// GnuplotScript renders a complete gnuplot script that reproduces the
// paper's figure style from a data file written by GnuplotData: two
// stacked log-scale panels (hits above, misses below) over cache sets,
// one line per series — the layout of Figures 3, 4, 6, 7, 10 and 11.
// datafile is the path the .dat series were written to.
func (p *Plot) GnuplotScript(datafile string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# gnuplot script regenerating %q in the paper's figure style\n", p.Title)
	fmt.Fprintf(&b, "# usage: gnuplot -persist thisfile.gp\n")
	fmt.Fprintf(&b, "set multiplot layout 2,1 title %q\n", p.Title)
	fmt.Fprintf(&b, "set logscale y\n")
	fmt.Fprintf(&b, "set xlabel 'Cache Sets'\n")
	fmt.Fprintf(&b, "set style data linespoints\n")
	fmt.Fprintf(&b, "set key outside\n")

	plotLines := func(col int, ylabel string) {
		fmt.Fprintf(&b, "set ylabel %q\n", ylabel)
		b.WriteString("plot ")
		for i, s := range p.Series {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%q index %d using 1:($%d+0.1) title %q", datafile, i, col, s.Label)
		}
		b.WriteString("\n")
	}
	plotLines(2, "Hits")
	plotLines(3, "Misses")
	b.WriteString("unset multiplot\n")
	return b.String()
}
