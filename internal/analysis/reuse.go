package analysis

import (
	"fmt"
	"math/bits"
	"strings"

	"tracedst/internal/trace"
)

// ReuseResult is the LRU stack-distance profile of a trace at block
// granularity: for every access, the number of *distinct* blocks touched
// since the previous access to the same block. Cold (first-touch) accesses
// have infinite distance. The profile directly yields the miss-ratio curve
// of a fully-associative LRU cache of any capacity — a layout-independent
// summary of a workload's locality that complements the per-set histograms.
type ReuseResult struct {
	// BlockSize is the granularity in bytes.
	BlockSize int64
	// Accesses is the number of block-granular accesses profiled.
	Accesses int64
	// Cold counts first-touch (infinite-distance) accesses.
	Cold int64
	// Buckets[k] counts accesses with distance in [2^(k-1), 2^k) — except
	// Buckets[0], which counts distance-0 accesses (immediate re-use).
	Buckets []int64
	// maxDist is the largest finite distance observed.
	MaxDist int64

	// dists holds the raw finite distances, ascending, for exact queries.
	sorted []int32
}

// ReuseDistances profiles a record slice at the given block size. Modify
// records count once (they re-touch the same block for read and write).
func ReuseDistances(recs []trace.Record, blockSize int64) *ReuseResult {
	if blockSize <= 0 {
		blockSize = 1
	}
	r := &ReuseResult{BlockSize: blockSize}

	// Count block touches first to size the Fenwick tree.
	var touches int
	for i := range recs {
		if recs[i].Op == trace.Misc {
			continue
		}
		first := recs[i].Addr / uint64(blockSize)
		last := (recs[i].End() - 1) / uint64(blockSize)
		touches += int(last-first) + 1
	}
	bit := newFenwick(touches + 1)
	lastAt := map[uint64]int{} // block → timestamp of latest access
	now := 0

	for i := range recs {
		if recs[i].Op == trace.Misc {
			continue
		}
		first := recs[i].Addr / uint64(blockSize)
		last := (recs[i].End() - 1) / uint64(blockSize)
		for b := first; b <= last; b++ {
			now++
			r.Accesses++
			if p, seen := lastAt[b]; seen {
				// Distinct blocks accessed strictly between p and now.
				d := int64(bit.sum(now-1) - bit.sum(p))
				r.record(d)
				bit.add(p, -1)
			} else {
				r.Cold++
			}
			bit.add(now, 1)
			lastAt[b] = now
		}
	}
	return r
}

func (r *ReuseResult) record(d int64) {
	if d > r.MaxDist {
		r.MaxDist = d
	}
	k := 0
	if d > 0 {
		k = bits.Len64(uint64(d)) // d in [2^(k-1), 2^k)
	}
	for len(r.Buckets) <= k {
		r.Buckets = append(r.Buckets, 0)
	}
	r.Buckets[k]++
	r.sorted = append(r.sorted, int32(d))
}

// finalize sorts the raw distances lazily.
func (r *ReuseResult) finalize() {
	if len(r.sorted) < 2 {
		return
	}
	// Counting-free insertion check: sort only once.
	for i := 1; i < len(r.sorted); i++ {
		if r.sorted[i] < r.sorted[i-1] {
			sortInt32(r.sorted)
			return
		}
	}
}

// MissRatio returns the miss ratio of a fully-associative LRU cache with
// the given capacity in blocks: accesses whose distance ≥ capacity (plus
// cold misses) divided by all accesses.
func (r *ReuseResult) MissRatio(capacityBlocks int64) float64 {
	if r.Accesses == 0 {
		return 0
	}
	r.finalize()
	// Count finite distances ≥ capacity via binary search.
	lo, hi := 0, len(r.sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if int64(r.sorted[mid]) < capacityBlocks {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	misses := int64(len(r.sorted)-lo) + r.Cold
	return float64(misses) / float64(r.Accesses)
}

// MissRatioCurve evaluates MissRatio at each capacity.
func (r *ReuseResult) MissRatioCurve(capacities []int64) []float64 {
	out := make([]float64, len(capacities))
	for i, c := range capacities {
		out[i] = r.MissRatio(c)
	}
	return out
}

// Histogram renders the bucketed distance distribution.
func (r *ReuseResult) Histogram() string {
	var b strings.Builder
	fmt.Fprintf(&b, "reuse distances (%d-byte blocks, %d accesses, %d cold)\n",
		r.BlockSize, r.Accesses, r.Cold)
	for k, n := range r.Buckets {
		if n == 0 {
			continue
		}
		var label string
		switch k {
		case 0:
			label = "0"
		case 1:
			label = "1"
		default:
			label = fmt.Sprintf("%d-%d", int64(1)<<(k-1), int64(1)<<k-1)
		}
		fmt.Fprintf(&b, "  dist %-12s %8d (%.1f%%)\n", label, n, 100*float64(n)/float64(r.Accesses))
	}
	fmt.Fprintf(&b, "  dist inf          %8d (%.1f%%)\n", r.Cold, 100*float64(r.Cold)/float64(r.Accesses))
	return b.String()
}

// fenwick is a 1-based binary indexed tree over timestamps.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(i, delta int) {
	for ; i < len(f.tree); i += i & -i {
		f.tree[i] += delta
	}
}

func (f *fenwick) sum(i int) int {
	s := 0
	for ; i > 0; i -= i & -i {
		s += f.tree[i]
	}
	return s
}

// sortInt32 is an in-place pdq-free quicksort for int32 (avoids pulling in
// sort for a hot path; median-of-three, insertion sort for small runs).
func sortInt32(a []int32) {
	for len(a) > 12 {
		// Median of three pivot.
		m := len(a) / 2
		hi := len(a) - 1
		if a[0] > a[m] {
			a[0], a[m] = a[m], a[0]
		}
		if a[m] > a[hi] {
			a[m], a[hi] = a[hi], a[m]
			if a[0] > a[m] {
				a[0], a[m] = a[m], a[0]
			}
		}
		pivot := a[m]
		i, j := 0, hi
		for i <= j {
			for a[i] < pivot {
				i++
			}
			for a[j] > pivot {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		// Recurse into the smaller half, loop on the larger.
		if j < len(a)-i {
			sortInt32(a[:j+1])
			a = a[i:]
		} else {
			sortInt32(a[i:])
			a = a[:j+1]
		}
	}
	// Insertion sort.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
