package analysis_test

import (
	"fmt"

	"tracedst/internal/analysis"
	"tracedst/internal/trace"
)

// ExampleReuseDistances profiles a tiny block sequence A B A: the second
// access to A has stack distance 1, so it hits in any LRU cache of at
// least two blocks and misses in a one-block cache.
func ExampleReuseDistances() {
	recs := []trace.Record{
		{Op: trace.Load, Addr: 0, Size: 4, Func: "main"},  // A
		{Op: trace.Load, Addr: 32, Size: 4, Func: "main"}, // B
		{Op: trace.Load, Addr: 0, Size: 4, Func: "main"},  // A again
	}
	r := analysis.ReuseDistances(recs, 32)
	fmt.Printf("cold=%d missRatio(1)=%.2f missRatio(2)=%.2f\n",
		r.Cold, r.MissRatio(1), r.MissRatio(2))
	// Output: cold=2 missRatio(1)=1.00 missRatio(2)=0.67
}
