package analysis

import (
	"strings"
	"testing"

	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/tracer"
	"tracedst/internal/workloads"
)

func simFor(t *testing.T, src string, defines map[string]string, cfg cache.Config) *dinero.Simulator {
	t.Helper()
	res, err := tracer.Run(src, defines, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := dinero.New(dinero.Options{L1: cfg})
	if err != nil {
		t.Fatal(err)
	}
	sim.Process(res.Records)
	return sim
}

func TestFromSimulatorSeries(t *testing.T) {
	sim := simFor(t, workloads.Trans1SoA, map[string]string{"LEN": "16"}, cache.Paper32KDirect())
	p := FromSimulator("fig3", sim, false)
	if p.Sets != 1024 {
		t.Errorf("sets = %d", p.Sets)
	}
	if _, ok := p.SeriesByLabel("lSoA"); !ok {
		t.Error("lSoA series missing")
	}
	if _, ok := p.SeriesByLabel("lI"); !ok {
		t.Error("lI series missing")
	}
	if _, ok := p.SeriesByLabel("(nosym)"); ok {
		t.Error("(nosym) series included without flag")
	}
	// Series sorted by traffic: lI first.
	if p.Series[0].Label != "lI" {
		t.Errorf("first series = %s", p.Series[0].Label)
	}
}

func TestIncludeNoSym(t *testing.T) {
	sim := simFor(t, workloads.Trans1SoA, map[string]string{"LEN": "4"}, cache.Paper32KDirect())
	p := FromSimulator("x", sim, true)
	if _, ok := p.SeriesByLabel("(nosym)"); !ok {
		t.Error("(nosym) missing with flag set")
	}
}

func TestOccupiedRangeAndCSV(t *testing.T) {
	sim := simFor(t, workloads.Trans1SoA, map[string]string{"LEN": "16"}, cache.Paper32KDirect())
	p := FromSimulator("fig3", sim, false)
	lo, hi, ok := p.OccupiedRange()
	if !ok || lo > hi || hi >= p.Sets {
		t.Fatalf("range = %d..%d ok=%v", lo, hi, ok)
	}
	csv := p.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != (hi-lo+1)+1 {
		t.Errorf("csv rows = %d, want %d", len(lines), hi-lo+2)
	}
	if !strings.HasPrefix(lines[0], "set,") || !strings.Contains(lines[0], "lSoA hits") {
		t.Errorf("csv header = %q", lines[0])
	}
}

func TestGnuplotData(t *testing.T) {
	sim := simFor(t, workloads.Trans1SoA, map[string]string{"LEN": "8"}, cache.Paper32KDirect())
	p := FromSimulator("fig3", sim, false)
	dat := p.GnuplotData()
	if !strings.Contains(dat, "# series: lSoA") || !strings.Contains(dat, "# fig3") {
		t.Errorf("gnuplot data:\n%s", dat)
	}
}

func TestASCIIChart(t *testing.T) {
	sim := simFor(t, workloads.Trans1SoA, map[string]string{"LEN": "16"}, cache.Paper32KDirect())
	p := FromSimulator("fig3", sim, false)
	art := p.ASCII(30)
	if !strings.Contains(art, "set ") || !strings.Contains(art, "#") {
		t.Errorf("ascii chart:\n%s", art)
	}
	// Empty plot renders gracefully.
	empty := &Plot{Title: "none", Sets: 8}
	if !strings.Contains(empty.ASCII(10), "no traffic") {
		t.Error("empty plot rendering")
	}
}

func TestOccupancySummary(t *testing.T) {
	sim := simFor(t, workloads.Trans3Contiguous, map[string]string{"LEN": "1024"}, cache.PowerPC440())
	p := FromSimulator("fig10", sim, false)
	arr, ok := p.SeriesByLabel("lContiguousArray")
	if !ok {
		t.Fatal("series missing")
	}
	occ := OccupancyOf(arr)
	// A 4 KB contiguous array sweeps all 16 sets of the PPC440 cache.
	if occ.SetsTouched != 16 {
		t.Errorf("contiguous array touches %d sets, want 16", occ.SetsTouched)
	}
	// lI is a single scalar: exactly one set.
	li, _ := p.SeriesByLabel("lI")
	occLI := OccupancyOf(li)
	if occLI.SetsTouched != 1 || occLI.DominantShare != 1.0 {
		t.Errorf("lI occupancy = %+v", occLI)
	}
	sum := p.Summary()
	if !strings.Contains(sum, "lContiguousArray") || !strings.Contains(sum, "dominant-set") {
		t.Errorf("summary:\n%s", sum)
	}
}

func TestSeriesTotal(t *testing.T) {
	s := Series{Label: "x", Hits: []int64{1, 2}, Misses: []int64{3, 0}}
	if s.Total() != 6 {
		t.Errorf("total = %d", s.Total())
	}
}

func TestBarScaling(t *testing.T) {
	if bar(0, 10, 10) != "" {
		t.Error("zero bar not empty")
	}
	if len(bar(10, 10, 10)) != 10 {
		t.Errorf("full bar = %q", bar(10, 10, 10))
	}
	if len(bar(1, 1000000, 10)) < 1 {
		t.Error("small value bar vanished")
	}
}

func TestGnuplotScript(t *testing.T) {
	sim := simFor(t, workloads.Trans1SoA, map[string]string{"LEN": "8"}, cache.Paper32KDirect())
	p := FromSimulator("fig3", sim, false)
	gp := p.GnuplotScript("fig3.dat")
	for _, want := range []string{
		"set multiplot", "set logscale y", "Cache Sets",
		`"fig3.dat" index 0`, "lSoA", "Hits", "Misses",
	} {
		if !strings.Contains(gp, want) {
			t.Errorf("script missing %q:\n%s", want, gp)
		}
	}
	// One plot command per panel ("multiplot" also contains the substring,
	// so anchor at line start).
	if strings.Count(gp, "\nplot ") != 2 {
		t.Errorf("expected 2 plot commands:\n%s", gp)
	}
}
