package analysis

import (
	"strings"
	"testing"
	"testing/quick"

	"tracedst/internal/cache"
	"tracedst/internal/trace"
	"tracedst/internal/tracer"
	"tracedst/internal/workloads"
)

func mkAccess(addr uint64) trace.Record {
	return trace.Record{Op: trace.Load, Addr: addr, Size: 4, Func: "main"}
}

func TestReuseHandComputed(t *testing.T) {
	// Block sequence (32-byte blocks): A B A C B A
	recs := []trace.Record{
		mkAccess(0),  // A cold
		mkAccess(32), // B cold
		mkAccess(0),  // A dist 1 (B)
		mkAccess(64), // C cold
		mkAccess(32), // B dist 2 (A, C)
		mkAccess(0),  // A dist 2 (C, B)
	}
	r := ReuseDistances(recs, 32)
	if r.Accesses != 6 || r.Cold != 3 {
		t.Fatalf("accesses=%d cold=%d", r.Accesses, r.Cold)
	}
	// Distances: 1, 2, 2 → bucket[1] = 1, bucket[2] = 2.
	if r.Buckets[1] != 1 || r.Buckets[2] != 2 {
		t.Errorf("buckets = %v", r.Buckets)
	}
	if r.MaxDist != 2 {
		t.Errorf("max = %d", r.MaxDist)
	}
	// Capacity 3 holds everything: only cold misses → 3/6.
	if got := r.MissRatio(3); got != 0.5 {
		t.Errorf("miss ratio cap=3: %v", got)
	}
	// Capacity 2: distance-2 accesses miss → (3 cold + 2)/6.
	if got := r.MissRatio(2); got != 5.0/6.0 {
		t.Errorf("miss ratio cap=2: %v", got)
	}
	// Capacity 1: everything but distance-0 misses → 6/6.
	if got := r.MissRatio(1); got != 1.0 {
		t.Errorf("miss ratio cap=1: %v", got)
	}
}

func TestReuseImmediateRepeat(t *testing.T) {
	recs := []trace.Record{mkAccess(0), mkAccess(4), mkAccess(8)}
	r := ReuseDistances(recs, 32)
	// Same block three times: distances 0, 0.
	if r.Cold != 1 || r.Buckets[0] != 2 {
		t.Errorf("cold=%d buckets=%v", r.Cold, r.Buckets)
	}
	if got := r.MissRatio(1); got != 1.0/3.0 {
		t.Errorf("cap=1 ratio = %v", got)
	}
}

func TestReuseBlockSpanning(t *testing.T) {
	// An 8-byte access at block boundary touches two blocks.
	recs := []trace.Record{{Op: trace.Load, Addr: 28, Size: 8, Func: "main"}}
	r := ReuseDistances(recs, 32)
	if r.Accesses != 2 || r.Cold != 2 {
		t.Errorf("accesses=%d cold=%d", r.Accesses, r.Cold)
	}
}

func TestReuseMiscIgnored(t *testing.T) {
	recs := []trace.Record{{Op: trace.Misc, Addr: 0, Size: 4, Func: "main"}}
	r := ReuseDistances(recs, 32)
	if r.Accesses != 0 {
		t.Errorf("misc counted: %+v", r)
	}
}

func TestReuseHistogramRendering(t *testing.T) {
	res, err := tracer.Run(workloads.Stencil, map[string]string{"N": "256"}, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := ReuseDistances(res.Records, 32)
	h := r.Histogram()
	if !strings.Contains(h, "dist inf") || !strings.Contains(h, "32-byte blocks") {
		t.Errorf("histogram:\n%s", h)
	}
	curve := r.MissRatioCurve([]int64{1, 8, 64, 1 << 20})
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Errorf("miss-ratio curve not monotone: %v", curve)
		}
	}
}

// TestReuseMatchesFullyAssociativeLRU cross-validates the reuse profiler
// against the cache simulator: for a fully-associative LRU cache of C
// blocks, misses == cold accesses + accesses with stack distance ≥ C.
func TestReuseMatchesFullyAssociativeLRU(t *testing.T) {
	res, err := tracer.Run(workloads.MatMul, map[string]string{"N": "8"}, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const blockSize = 32
	r := ReuseDistances(res.Records, blockSize)
	for _, capBlocks := range []int64{4, 8, 16, 64} {
		cfg := cache.Config{
			Size:      capBlocks * blockSize,
			BlockSize: blockSize,
			Assoc:     0, // fully associative
			Repl:      cache.ReplLRU,
		}
		c, err := cache.New(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		var accesses, misses int64
		for i := range res.Records {
			rec := &res.Records[i]
			if rec.Op == trace.Misc {
				continue
			}
			// Match the reuse profiler's touch model: one access per block
			// touched, reads and writes alike, modifies once.
			first := rec.Addr / blockSize
			last := (rec.End() - 1) / blockSize
			for b := first; b <= last; b++ {
				out := c.Access(cache.Read, b*blockSize, 1, cache.NoOwner, nil)
				accesses++
				if !out[0].Hit {
					misses++
				}
			}
		}
		wantRatio := r.MissRatio(capBlocks)
		gotRatio := float64(misses) / float64(accesses)
		if wantRatio != gotRatio {
			t.Errorf("capacity %d blocks: reuse predicts %.6f, simulator measured %.6f",
				capBlocks, wantRatio, gotRatio)
		}
	}
}

// Property: the profiler's total accounting always balances.
func TestReuseAccountingProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		recs := make([]trace.Record, len(addrs))
		for i, a := range addrs {
			recs[i] = mkAccess(uint64(a))
		}
		r := ReuseDistances(recs, 64)
		var bucketed int64
		for _, n := range r.Buckets {
			bucketed += n
		}
		return bucketed+r.Cold == r.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSortInt32(t *testing.T) {
	f := func(raw []int32) bool {
		a := append([]int32{}, raw...)
		sortInt32(a)
		for i := 1; i < len(a); i++ {
			if a[i] < a[i-1] {
				return false
			}
		}
		return len(a) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
