// Package analysis turns simulation results into the per-cache-set
// hit/miss plots of the paper's figures: CSV and gnuplot exports for
// external plotting, and log-scale ASCII charts for the terminal. It also
// computes the occupancy summaries EXPERIMENTS.md compares against the
// paper ("who wins, by what factor, where the accesses land").
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"tracedst/internal/dinero"
)

// Series is one plotted line: a variable's per-set hits or misses.
type Series struct {
	Label  string
	Hits   []int64
	Misses []int64
}

// Total returns total hits+misses of the series.
func (s *Series) Total() int64 {
	var n int64
	for i := range s.Hits {
		n += s.Hits[i] + s.Misses[i]
	}
	return n
}

// Plot is a figure: several series over the same set axis.
type Plot struct {
	Title  string
	Sets   int
	Series []Series
}

// FromSimulator builds a plot from the per-variable series of a finished
// simulation, largest series first. Variables with no traffic are skipped;
// the (nosym) bucket is included only when includeNoSym is set.
func FromSimulator(title string, sim *dinero.Simulator, includeNoSym bool) *Plot {
	p := &Plot{Title: title, Sets: sim.L1().Config().Sets()}
	for _, vs := range sim.Vars() {
		if vs.Name == dinero.NoSymbol && !includeNoSym {
			continue
		}
		if vs.Accesses == 0 {
			continue
		}
		s := Series{Label: vs.Name, Hits: make([]int64, p.Sets), Misses: make([]int64, p.Sets)}
		for i, ps := range vs.PerSet {
			s.Hits[i] = ps.Hits
			s.Misses[i] = ps.Misses
		}
		p.Series = append(p.Series, s)
	}
	return p
}

// FromMulti builds the plot of configuration i of a finished multi-config
// simulation — FromSimulator for the single-pass engine. Exact-mode
// plots are identical to FromSimulator over an independent run of the
// same configuration.
func FromMulti(title string, ms *dinero.MultiSim, i int, includeNoSym bool) *Plot {
	p := &Plot{Title: title, Sets: ms.Config(i).Sets()}
	for _, vs := range ms.Vars(i) {
		if vs.Name == dinero.NoSymbol && !includeNoSym {
			continue
		}
		if vs.Accesses == 0 {
			continue
		}
		s := Series{Label: vs.Name, Hits: make([]int64, p.Sets), Misses: make([]int64, p.Sets)}
		for j, ps := range vs.PerSet {
			s.Hits[j] = ps.Hits
			s.Misses[j] = ps.Misses
		}
		p.Series = append(p.Series, s)
	}
	return p
}

// OccupiedRange returns the smallest [lo, hi] set interval containing all
// traffic. ok is false when the plot is empty.
func (p *Plot) OccupiedRange() (lo, hi int, ok bool) {
	lo, hi = p.Sets, -1
	for _, s := range p.Series {
		for i := 0; i < p.Sets; i++ {
			if s.Hits[i]+s.Misses[i] > 0 {
				if i < lo {
					lo = i
				}
				if i > hi {
					hi = i
				}
			}
		}
	}
	return lo, hi, hi >= 0
}

// CSV renders "set,<label> hits,<label> misses,…" rows over the occupied
// range (the paper's figures likewise show only the active window).
func (p *Plot) CSV() string {
	var b strings.Builder
	b.WriteString("set")
	for _, s := range p.Series {
		fmt.Fprintf(&b, ",%s hits,%s misses", s.Label, s.Label)
	}
	b.WriteByte('\n')
	lo, hi, ok := p.OccupiedRange()
	if !ok {
		return b.String()
	}
	for i := lo; i <= hi; i++ {
		fmt.Fprintf(&b, "%d", i)
		for _, s := range p.Series {
			fmt.Fprintf(&b, ",%d,%d", s.Hits[i], s.Misses[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// GnuplotData renders one indexed data block per series (hits and misses
// columns), ready for `plot 'file.dat' index N using 1:2`.
func (p *Plot) GnuplotData() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", p.Title)
	lo, hi, ok := p.OccupiedRange()
	if !ok {
		return b.String()
	}
	for _, s := range p.Series {
		fmt.Fprintf(&b, "# series: %s (set hits misses)\n", s.Label)
		for i := lo; i <= hi; i++ {
			fmt.Fprintf(&b, "%d %d %d\n", i, s.Hits[i], s.Misses[i])
		}
		b.WriteString("\n\n")
	}
	return b.String()
}

// ASCII renders the plot as log-scale bar rows, one row per occupied set:
//
//	set   12 | lSoA  hits ██████ 64        misses ██ 3
//
// width bounds the widest bar.
func (p *Plot) ASCII(width int) string {
	if width <= 0 {
		width = 40
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", p.Title)
	lo, hi, ok := p.OccupiedRange()
	if !ok {
		b.WriteString("(no traffic)\n")
		return b.String()
	}
	var maxVal int64 = 1
	for _, s := range p.Series {
		for i := lo; i <= hi; i++ {
			if s.Hits[i] > maxVal {
				maxVal = s.Hits[i]
			}
			if s.Misses[i] > maxVal {
				maxVal = s.Misses[i]
			}
		}
	}
	labelW := 0
	for _, s := range p.Series {
		if len(s.Label) > labelW {
			labelW = len(s.Label)
		}
	}
	for i := lo; i <= hi; i++ {
		first := true
		for _, s := range p.Series {
			h, m := s.Hits[i], s.Misses[i]
			if h+m == 0 {
				continue
			}
			if first {
				fmt.Fprintf(&b, "set %4d | ", i)
				first = false
			} else {
				b.WriteString("         | ")
			}
			fmt.Fprintf(&b, "%-*s hits %-*s %-8d misses %-*s %d\n",
				labelW, s.Label,
				width, bar(h, maxVal, width), h,
				width, bar(m, maxVal, width), m)
		}
	}
	return b.String()
}

// bar renders a log-scaled bar for v against max.
func bar(v, max int64, width int) string {
	if v <= 0 {
		return ""
	}
	frac := math.Log1p(float64(v)) / math.Log1p(float64(max))
	n := int(frac*float64(width) + 0.5)
	if n < 1 {
		n = 1
	}
	return strings.Repeat("#", n)
}

// Occupancy summarises where a series' traffic lands: the set count and the
// dominant set's share, used to verify claims like "striding directs all
// accesses to a single set".
type Occupancy struct {
	Label string
	// SetsTouched is the number of sets with any traffic.
	SetsTouched int
	// DominantSet is the set with the most traffic.
	DominantSet int
	// DominantShare is the fraction of the series' traffic in DominantSet.
	DominantShare float64
	Hits, Misses  int64
}

// OccupancyOf summarises one series.
func OccupancyOf(s *Series) Occupancy {
	o := Occupancy{Label: s.Label, DominantSet: -1}
	var total, best int64
	for i := range s.Hits {
		t := s.Hits[i] + s.Misses[i]
		o.Hits += s.Hits[i]
		o.Misses += s.Misses[i]
		if t > 0 {
			o.SetsTouched++
			total += t
			if t > best {
				best = t
				o.DominantSet = i
			}
		}
	}
	if total > 0 {
		o.DominantShare = float64(best) / float64(total)
	}
	return o
}

// Summary renders the occupancy table for all series, ordered by traffic.
func (p *Plot) Summary() string {
	occ := make([]Occupancy, 0, len(p.Series))
	for i := range p.Series {
		occ = append(occ, OccupancyOf(&p.Series[i]))
	}
	sort.Slice(occ, func(i, j int) bool {
		return occ[i].Hits+occ[i].Misses > occ[j].Hits+occ[j].Misses
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %8s %8s %12s %12s %14s\n",
		"series", "hits", "misses", "sets-touched", "dominant-set", "dominant-share")
	for _, o := range occ {
		fmt.Fprintf(&b, "%-28s %8d %8d %12d %12d %13.1f%%\n",
			o.Label, o.Hits, o.Misses, o.SetsTouched, o.DominantSet, 100*o.DominantShare)
	}
	return b.String()
}

// SeriesByLabel finds a series by its label.
func (p *Plot) SeriesByLabel(label string) (*Series, bool) {
	for i := range p.Series {
		if p.Series[i].Label == label {
			return &p.Series[i], true
		}
	}
	return nil, false
}
