package trace

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// listDir returns the names present in dir (the destination file plus any
// leaked temporaries).
func listDir(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestWriteFileAtomicRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := WriteFileAtomic(path, []byte("hello\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello\n" {
		t.Errorf("content = %q, want %q", got, "hello\n")
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Errorf("directory holds %v, want just out.txt (no temp leaks)", names)
	}
}

func TestWriteFileAtomicReplacesWholesale(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("old contents, quite long"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Errorf("content = %q, want %q", got, "new")
	}
}

func TestAbortPreservesOriginal(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("original"), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("partial garbage")); err != nil {
		t.Fatal(err)
	}
	a.Abort()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Errorf("abort clobbered the original: %q", got)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Errorf("abort leaked temp files: %v", names)
	}
}

func TestAbortAfterCommitIsNoop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	a, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(a, "data")
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	a.Abort() // must not remove the committed file
	if _, err := os.Stat(path); err != nil {
		t.Errorf("Abort after Commit removed the file: %v", err)
	}
	if err := a.Commit(); err == nil {
		t.Error("second Commit succeeded, want error")
	}
}

func TestWriteToAtomicErrorDiscards(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	boom := errors.New("boom")
	err := WriteToAtomic(path, func(w io.Writer) error {
		io.WriteString(w, "half a file")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Errorf("failed write left a file behind: %v", serr)
	}
	if names := listDir(t, dir); len(names) != 0 {
		t.Errorf("failed write leaked temp files: %v", names)
	}
}

func TestCreateAtomicMissingDir(t *testing.T) {
	_, err := CreateAtomic(filepath.Join(t.TempDir(), "nope", "out.txt"))
	if err == nil {
		t.Fatal("CreateAtomic in a missing directory succeeded")
	}
	if !strings.Contains(err.Error(), "nope") {
		t.Errorf("error does not name the directory: %v", err)
	}
}
