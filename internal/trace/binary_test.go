package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// encodeBinary renders header+records to the binary format with the given
// block size (0 = default).
func encodeBinary(t *testing.T, h *Header, recs []Record, blockRecs int) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	if blockRecs > 0 {
		bw.SetBlockRecords(blockRecs)
	}
	if h != nil {
		if err := bw.WriteHeader(*h); err != nil {
			t.Fatal(err)
		}
	}
	for i := range recs {
		if err := bw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if bw.Records() != len(recs) {
		t.Fatalf("Records() = %d, want %d", bw.Records(), len(recs))
	}
	return buf.Bytes()
}

func sampleRecords(t *testing.T) (Header, []Record) {
	t.Helper()
	h, recs, err := ParseAll(sampleTrace)
	if err != nil {
		t.Fatal(err)
	}
	return h, recs
}

func TestBinaryRoundTrip(t *testing.T) {
	h, recs := sampleRecords(t)
	for _, blockRecs := range []int{1, 2, 0} {
		data := encodeBinary(t, &h, recs, blockRecs)
		rd := NewBinaryReader(bytes.NewReader(data))
		gh, err := rd.Header()
		if err != nil {
			t.Fatal(err)
		}
		if gh != h || !rd.HasHeader() {
			t.Fatalf("block=%d header = %+v hasHdr=%v", blockRecs, gh, rd.HasHeader())
		}
		got, err := rd.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(recs) {
			t.Fatalf("block=%d got %d records, want %d", blockRecs, len(got), len(recs))
		}
		for i := range got {
			if !got[i].Equal(&recs[i]) {
				t.Fatalf("block=%d record %d = %v, want %v", blockRecs, i, &got[i], &recs[i])
			}
		}
		// text -> binary -> text is byte-identical.
		if Format(gh, got) != sampleTrace {
			t.Fatalf("block=%d text round trip mismatch:\n%q", blockRecs, Format(gh, got))
		}
	}
}

func TestBinaryHeaderless(t *testing.T) {
	_, recs := sampleRecords(t)
	data := encodeBinary(t, nil, recs, 0)
	rd := NewBinaryReader(bytes.NewReader(data))
	h, err := rd.Header()
	if err != nil {
		t.Fatal(err)
	}
	if h.PID != 0 || rd.HasHeader() {
		t.Fatalf("headerless decode: header=%+v hasHdr=%v", h, rd.HasHeader())
	}
	got, err := rd.ReadAll()
	if err != nil || len(got) != len(recs) {
		t.Fatalf("recs=%d err=%v", len(got), err)
	}
}

func TestBinaryEmpty(t *testing.T) {
	data := encodeBinary(t, &Header{PID: 7}, nil, 0)
	rd := NewBinaryReader(bytes.NewReader(data))
	h, err := rd.Header()
	if err != nil || h.PID != 7 {
		t.Fatalf("header=%+v err=%v", h, err)
	}
	recs, err := rd.ReadAll()
	if err != nil || len(recs) != 0 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
	if _, err := rd.Read(); err != io.EOF {
		t.Fatalf("Read after end = %v, want EOF", err)
	}
}

func TestBinaryChecksumStrict(t *testing.T) {
	h, recs := sampleRecords(t)
	data := encodeBinary(t, &h, recs, 2) // 3 blocks
	data[len(data)-1] ^= 0xff            // damage the last block's payload
	rd := NewBinaryReader(bytes.NewReader(data))
	got, err := rd.ReadAll()
	if !errors.Is(err, ErrBlockChecksum) {
		t.Fatalf("err = %v, want ErrBlockChecksum", err)
	}
	var ble *BadLineError
	if !errors.As(err, &ble) || ble.Line != 3 {
		t.Fatalf("err = %v, want block ordinal 3", err)
	}
	if len(got) != 4 {
		t.Fatalf("decoded %d records before the bad block, want 4", len(got))
	}
}

func TestBinaryChecksumLenient(t *testing.T) {
	h, recs := sampleRecords(t)
	data := encodeBinary(t, &h, recs, 2)
	// Damage the middle block: locate it by re-encoding the first block
	// alone and flipping a byte beyond that prefix.
	oneBlock := encodeBinary(t, &h, recs[:2], 2)
	data[len(oneBlock)+8] ^= 0xff
	var calls []int
	rd := NewBinaryReaderOptions(bytes.NewReader(data), DecodeOptions{
		Mode: Lenient,
		OnError: func(line int, text string, err error) {
			calls = append(calls, line)
			if !errors.Is(err, ErrBlockChecksum) {
				t.Errorf("OnError err = %v", err)
			}
		},
	})
	got, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]Record(nil), recs[:2]...), recs[4:]...)
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Equal(&want[i]) {
			t.Fatalf("record %d = %v, want %v", i, &got[i], &want[i])
		}
	}
	if rd.BadLines() != 1 || len(calls) != 1 || calls[0] != 2 {
		t.Fatalf("bad=%d calls=%v, want one bad block with ordinal 2", rd.BadLines(), calls)
	}
}

func TestBinaryLenientBudget(t *testing.T) {
	h, recs := sampleRecords(t)
	data := encodeBinary(t, &h, recs, 1) // 6 blocks
	// Corrupt the last byte of every block by walking backwards: corrupt
	// the whole tail region after the preamble.
	one := encodeBinary(t, &h, recs[:1], 1)
	two := encodeBinary(t, &h, recs[:2], 1)
	data[len(one)-1] ^= 0xff // block 1
	data[len(two)-1] ^= 0xff // block 2
	rd := NewBinaryReaderOptions(bytes.NewReader(data), DecodeOptions{Mode: Lenient, MaxBadLines: 1})
	_, err := rd.ReadAll()
	if err == nil || !strings.Contains(err.Error(), "budget 1 exhausted") {
		t.Fatalf("err = %v, want budget exhausted", err)
	}
}

func TestBinaryTruncation(t *testing.T) {
	h, recs := sampleRecords(t)
	data := encodeBinary(t, &h, recs, 0)
	rd := NewBinaryReader(bytes.NewReader(data[:len(data)-3]))
	_, err := rd.ReadAll()
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("err = %v, want truncated payload", err)
	}
}

func TestBinaryReadBatch(t *testing.T) {
	h, recs := sampleRecords(t)
	data := encodeBinary(t, &h, recs, 2)
	rd := NewBinaryReader(bytes.NewReader(data))
	var got []Record
	buf := make([]Record, 4)
	for {
		n, err := rd.ReadBatch(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(recs) {
		t.Fatalf("batched decode got %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if !got[i].Equal(&recs[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestDetectFormatAndOpenReader(t *testing.T) {
	h, recs := sampleRecords(t)
	bin := encodeBinary(t, &h, recs, 0)
	if f := DetectFormat(bin); f != FormatBinary {
		t.Fatalf("DetectFormat(binary) = %v", f)
	}
	if f := DetectFormat([]byte(sampleTrace)); f != FormatText {
		t.Fatalf("DetectFormat(text) = %v", f)
	}
	if f := DetectFormat(nil); f != FormatText {
		t.Fatalf("DetectFormat(empty) = %v", f)
	}
	for _, tc := range []struct {
		data []byte
		want FileFormat
	}{
		{bin, FormatBinary},
		{[]byte(sampleTrace), FormatText},
	} {
		rd, f, err := OpenReader(bytes.NewReader(tc.data), DecodeOptions{})
		if err != nil || f != tc.want {
			t.Fatalf("OpenReader format = %v err = %v, want %v", f, err, tc.want)
		}
		gh, err := rd.Header()
		if err != nil || gh != h || !rd.HasHeader() {
			t.Fatalf("%v header = %+v err = %v", f, gh, err)
		}
		got, err := rd.ReadAll()
		if err != nil || len(got) != len(recs) {
			t.Fatalf("%v recs = %d err = %v", f, len(got), err)
		}
	}
}

func TestNewWriterFormat(t *testing.T) {
	h, recs := sampleRecords(t)
	for _, f := range []FileFormat{FormatText, FormatBinary, FormatUnknown} {
		var buf bytes.Buffer
		wr := NewWriterFormat(&buf, f)
		if err := wr.WriteHeader(h); err != nil {
			t.Fatal(err)
		}
		for i := range recs {
			if err := wr.Write(&recs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if err := wr.Flush(); err != nil {
			t.Fatal(err)
		}
		want := FormatText
		if f == FormatBinary {
			want = FormatBinary
		}
		if got := DetectFormat(buf.Bytes()); got != want {
			t.Fatalf("format %v wrote %v", f, got)
		}
	}
}
