//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package trace

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps f read-only. The returned cleanup unmaps; the caller may
// close f immediately after a successful map.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	if int64(int(size)) != size {
		return nil, nil, fmt.Errorf("trace: file too large to map (%d bytes)", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("trace: mmap: %w", err)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
