// The optional .glb block-index footer. An indexed writer appends one
// final record-free block whose single string-table entry holds the
// encoded index, so pre-footer readers skip it transparently (they CRC and
// discard record-free blocks) while new readers can locate every data
// block without scanning the file:
//
//	footer  := idxMagic["GLIX1"] nblocks:uvarint
//	           { offsetDelta:uvarint count:uvarint }*   (per data block)
//	           records:uvarint crc32:u32le
//	trailer := footerLen:u32le endMagic["GLIXEND\n"]
//
// The footer bytes (footer ++ trailer) are the last bytes of the file:
// a reader stats the file, reads the fixed-size trailer, seeks back
// footerLen bytes and verifies idxMagic plus the CRC over footer[:len-4].
// Offsets are absolute file positions of each data block's frame, encoded
// as deltas from the previous offset; counts are records per block.
package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// BlockIndex locates every data block of a binary trace: parallel slices
// of absolute frame offsets and per-block record counts, plus the total.
type BlockIndex struct {
	Offsets []int64
	Counts  []int64
	Records int64
}

// NumBlocks returns how many data blocks the index covers.
func (ix *BlockIndex) NumBlocks() int { return len(ix.Offsets) }

var (
	footerMagic  = []byte("GLIX1")
	trailerMagic = []byte("GLIXEND\n")
)

// trailerLen is the fixed size of the end-of-file locator: footerLen u32le
// plus the trailer magic.
const trailerLen = 4 + 8

// maxFooterBytes bounds a declared footer length so a corrupt trailer
// cannot drive a giant allocation or a bogus seek.
const maxFooterBytes = 1 << 30

// appendFooter encodes ix (footer ++ trailer) onto dst.
func appendFooter(dst []byte, ix *BlockIndex) []byte {
	start := len(dst)
	dst = append(dst, footerMagic...)
	dst = binary.AppendUvarint(dst, uint64(len(ix.Offsets)))
	prev := int64(0)
	for i, off := range ix.Offsets {
		dst = binary.AppendUvarint(dst, uint64(off-prev))
		dst = binary.AppendUvarint(dst, uint64(ix.Counts[i]))
		prev = off
	}
	dst = binary.AppendUvarint(dst, uint64(ix.Records))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[start:]))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(dst)-start))
	dst = append(dst, trailerMagic...)
	return dst
}

// parseFooter looks for a footer at the end of data. It returns (nil, nil)
// when no trailer magic is present — an unindexed trace, not an error —
// and an error when a trailer is present but the footer it points at is
// damaged.
func parseFooter(data []byte) (*BlockIndex, error) {
	if len(data) < trailerLen {
		return nil, nil
	}
	tail := data[len(data)-trailerLen:]
	if string(tail[4:]) != string(trailerMagic) {
		return nil, nil
	}
	footLen := int64(binary.LittleEndian.Uint32(tail[:4]))
	if footLen < int64(len(footerMagic))+4 || footLen > maxFooterBytes ||
		footLen > int64(len(data)-trailerLen) {
		return nil, fmt.Errorf("trace: block-index footer: bad length %d", footLen)
	}
	foot := data[int64(len(data)-trailerLen)-footLen : len(data)-trailerLen]
	if string(foot[:len(footerMagic)]) != string(footerMagic) {
		return nil, fmt.Errorf("trace: block-index footer: bad magic")
	}
	body, crcBytes := foot[:len(foot)-4], foot[len(foot)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, fmt.Errorf("trace: block-index footer: checksum mismatch")
	}
	p := body[len(footerMagic):]
	nblocks, n := binary.Uvarint(p)
	if n <= 0 || nblocks > uint64(len(data)) {
		return nil, fmt.Errorf("trace: block-index footer: bad block count")
	}
	p = p[n:]
	ix := &BlockIndex{
		Offsets: make([]int64, 0, nblocks),
		Counts:  make([]int64, 0, nblocks),
	}
	prev := int64(0)
	for i := uint64(0); i < nblocks; i++ {
		delta, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, fmt.Errorf("trace: block-index footer: bad offset in entry %d", i)
		}
		p = p[n:]
		count, n := binary.Uvarint(p)
		if n <= 0 {
			return nil, fmt.Errorf("trace: block-index footer: bad count in entry %d", i)
		}
		p = p[n:]
		off := prev + int64(delta)
		if off < 0 || off >= int64(len(data)) {
			return nil, fmt.Errorf("trace: block-index footer: offset %d out of range in entry %d", off, i)
		}
		ix.Offsets = append(ix.Offsets, off)
		ix.Counts = append(ix.Counts, int64(count))
		prev = off
	}
	total, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, fmt.Errorf("trace: block-index footer: bad record total")
	}
	if p = p[n:]; len(p) != 0 {
		return nil, fmt.Errorf("trace: block-index footer: %d trailing bytes", len(p))
	}
	ix.Records = int64(total)
	var sum int64
	for _, c := range ix.Counts {
		sum += c
	}
	if sum != ix.Records {
		return nil, fmt.Errorf("trace: block-index footer: per-block counts sum to %d, total says %d", sum, ix.Records)
	}
	return ix, nil
}
