// Streaming trace validation: the engine behind cmd/glcheck. A Validator
// decodes a trace leniently, collecting every decode failure instead of
// stopping at the first, and layers semantic checks on top: header sanity,
// address-region plausibility against the memmodel layout, monotonic
// thread introduction, and per-symbol referential consistency. The result
// is a structured Report suitable for both CLI output and tests.
package trace

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tracedst/internal/memmodel"
	"tracedst/internal/telemetry"
)

// Severity ranks a diagnostic.
type Severity int

// Severities. Errors fail validation (glcheck exits non-zero); warnings
// flag suspicious but survivable input.
const (
	SevWarn Severity = iota
	SevError
)

// String names the severity.
func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warn"
}

// Diagnostic codes emitted by the validator.
const (
	CodeParse    = "parse"     // line failed to decode as a record
	CodeHeader   = "header"    // START line problems (corrupt, duplicate, bad PID)
	CodeLineLen  = "line-len"  // line over the length limit
	CodeRegion   = "region"    // address outside / straddling memmodel regions
	CodeOrder    = "order"     // non-monotonic thread introduction, bad frame depth
	CodeSymRef   = "symref"    // symbol-table referential integrity
	CodeNoHeader = "no-header" // trace has no START line at all
	CodeBlock    = "block"     // binary trace: damaged or unreadable block
	CodeFooter   = "footer"    // binary trace: damaged block-index footer (records intact)
)

// Diag is one validator finding.
type Diag struct {
	// Line is the 1-based input line (0 when not line-specific). For
	// binary traces it is the record ordinal, or the block ordinal for
	// CodeBlock findings.
	Line int
	Sev  Severity
	Code string
	Msg  string
}

// String formats the finding for terminal output.
func (d Diag) String() string {
	if d.Line > 0 {
		return fmt.Sprintf("%s: line %d: [%s] %s", d.Sev, d.Line, d.Code, d.Msg)
	}
	return fmt.Sprintf("%s: [%s] %s", d.Sev, d.Code, d.Msg)
}

// Report is the structured outcome of validating one trace.
type Report struct {
	// Records is the count of well-formed records seen.
	Records int
	// BadLines is the count of undecodable lines (for binary traces, of
	// dropped blocks).
	BadLines int
	// HasHeader reports whether a valid START line was present.
	HasHeader bool
	// Header is the parsed header (zero when HasHeader is false).
	Header Header
	// Diags holds the findings, in input order, capped at the configured
	// maximum; Dropped counts findings beyond the cap.
	Diags   []Diag
	Dropped int

	errors, warnings int
	max              int
	// byCode counts findings per diagnostic code, past the Diags cap.
	byCode map[string]int
}

// Errors returns the number of error-severity findings (including dropped).
func (r *Report) Errors() int { return r.errors }

// Warnings returns the number of warning-severity findings (including dropped).
func (r *Report) Warnings() int { return r.warnings }

// OK reports whether the trace passed: no error-severity findings.
func (r *Report) OK() bool { return r.errors == 0 }

func (r *Report) add(line int, sev Severity, code, format string, args ...any) {
	if sev == SevError {
		r.errors++
	} else {
		r.warnings++
	}
	if r.byCode == nil {
		r.byCode = map[string]int{}
	}
	r.byCode[code]++
	if r.max > 0 && len(r.Diags) >= r.max {
		r.Dropped++
		return
	}
	r.Diags = append(r.Diags, Diag{Line: line, Sev: sev, Code: code, Msg: fmt.Sprintf(format, args...)})
}

// Summary renders the report for humans: one status line, then findings.
func (r *Report) Summary() string {
	var b strings.Builder
	hdr := "no header"
	if r.HasHeader {
		hdr = fmt.Sprintf("PID %d", r.Header.PID)
	}
	status := "ok"
	if !r.OK() {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "%s: %d records, %d bad lines, %s — %d errors, %d warnings\n",
		status, r.Records, r.BadLines, hdr, r.errors, r.warnings)
	for _, d := range r.Diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	if r.Dropped > 0 {
		fmt.Fprintf(&b, "  ... and %d more findings\n", r.Dropped)
	}
	return b.String()
}

// ValidateOptions tune a validation pass.
type ValidateOptions struct {
	// MaxLineBytes is passed to the decoder (0 = DefaultMaxLineBytes).
	MaxLineBytes int
	// MaxDiags caps the findings kept in the report (0 = 100). Counters
	// keep counting past the cap.
	MaxDiags int
	// SkipRegionChecks disables the memmodel address-region checks, for
	// traces captured from real binaries whose layout differs from the
	// paper's model.
	SkipRegionChecks bool
}

// synthLimit bounds the address window the transformation engine uses for
// injected synthetic scalars (xform.Engine.synthNext starts just above
// StackTop); accesses there are flagged as warnings, not errors, so that
// transformed traces still validate.
const synthLimit = memmodel.StackTop + 1<<16

// ValidateCtx is Validate wrapped in a "validate.trace" span: when ctx
// carries a trace the span joins its tree, tagged with the record and
// diagnostic counts, and the per-name aggregate is recorded either way.
func ValidateCtx(ctx context.Context, r io.Reader, opts ValidateOptions) (*Report, error) {
	sp, _ := telemetry.Default().StartSpanCtx(ctx, "validate.trace")
	rep, err := Validate(r, opts)
	if rep != nil {
		sp.SetAttr("records", strconv.Itoa(rep.Records))
		sp.SetAttr("errors", strconv.Itoa(rep.Errors()))
		sp.SetAttr("warnings", strconv.Itoa(rep.Warnings()))
	}
	sp.End()
	return rep, err
}

// Validate streams the trace from r through the decoder and semantic
// checks. Both container formats are accepted — the format is sniffed from
// the magic. The returned error is non-nil only for I/O failures or a
// blown bad-line budget — format problems (including damaged or truncated
// binary blocks) land in the Report instead.
func Validate(r io.Reader, opts ValidateOptions) (*Report, error) {
	rep := &Report{max: opts.MaxDiags}
	if rep.max == 0 {
		rep.max = 100
	}
	sawBadHeader := false
	isBinary := false
	dec := DecodeOptions{
		Mode:         Lenient,
		MaxLineBytes: opts.MaxLineBytes,
		OnError: func(line int, text string, err error) {
			switch {
			case isBinary:
				rep.add(line, SevError, CodeBlock, "damaged block dropped: %v", err)
			case err == ErrLineTooLong:
				rep.add(line, SevError, CodeLineLen, "%v", err)
			case strings.HasPrefix(text, "START"):
				sawBadHeader = true
				if _, herr := ParseHeader(text); herr == nil {
					rep.add(line, SevError, CodeHeader, "misplaced START header mid-stream")
				} else {
					rep.add(line, SevError, CodeHeader, "corrupt START line %q", text)
				}
			default:
				rep.add(line, SevError, CodeParse, "%v (%.60q)", err, text)
			}
		},
	}
	rd, format, err := OpenReader(r, dec)
	if err != nil {
		return rep, err
	}
	isBinary = format == FormatBinary
	lineOf := func() int {
		if tr, ok := rd.(*Reader); ok {
			return tr.Line()
		}
		return rep.Records // binary: record ordinal
	}
	h, err := rd.Header()
	if err != nil && err != io.EOF {
		if isBinary {
			rep.add(0, SevError, CodeBlock, "unreadable binary preamble: %v", err)
			rep.publish()
			return rep, nil
		}
		return rep, err
	}
	rep.Header, rep.HasHeader = h, rd.HasHeader()
	v := newRecordChecker(rep)
	if rep.HasHeader {
		v.checkHeader(lineOf(), h)
	}
	for {
		rec, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			if isBinary {
				// Framing damage is unrecoverable (the block chain is
				// lost); report it and stop instead of aborting glcheck.
				rep.add(0, SevError, CodeBlock, "binary stream unreadable: %v", err)
				break
			}
			return rep, err
		}
		rep.Records++
		v.check(lineOf(), &rec, opts.SkipRegionChecks)
	}
	rep.BadLines = rd.BadLines()
	if br, ok := rd.(*BinaryReader); ok {
		if aerr := br.AuxDamage(); aerr != nil {
			// Footer damage loses no records (readers fall back to a frame
			// scan), so it degrades the trace rather than corrupting it.
			rep.add(0, SevWarn, CodeFooter, "damaged block-index footer ignored (records intact): %v", aerr)
		}
	}
	// A corrupt START already produced a header finding; only flag traces
	// that never attempted a header at all.
	if !rep.HasHeader && !sawBadHeader && rep.Records > 0 {
		rep.add(0, SevWarn, CodeNoHeader, "trace has no START header")
	}
	v.finish()
	rep.publish()
	return rep, nil
}

// publish adds the report's totals — records checked, bad lines, and
// finding counts per diagnostic class — to the default telemetry
// registry, so glcheck and the experiments self-check surface in the
// metrics manifest.
func (r *Report) publish() {
	reg := telemetry.Default()
	reg.Counter("validate.traces").Inc()
	reg.Counter("validate.records").Add(int64(r.Records))
	reg.Counter("validate.bad_lines").Add(int64(r.BadLines))
	reg.Counter("validate.errors").Add(int64(r.errors))
	reg.Counter("validate.warnings").Add(int64(r.warnings))
	for code, n := range r.byCode {
		reg.Counter("validate.diags." + code).Add(int64(n))
	}
}

// ValidateRecords runs the semantic checks over an already-decoded record
// slice — the in-process entry used by cmd/experiments to self-check
// generated traces. Line numbers in findings are record indices (1-based).
func ValidateRecords(h Header, hasHdr bool, recs []Record) *Report {
	rep := &Report{max: 100, Records: len(recs), Header: h, HasHeader: hasHdr}
	v := newRecordChecker(rep)
	if hasHdr {
		v.checkHeader(1, h)
	}
	for i := range recs {
		v.check(i+1, &recs[i], false)
	}
	v.finish()
	rep.publish()
	return rep
}

// symInfo tracks how a root symbol has been used, for referential checks.
type symInfo struct {
	line      int // first sighting
	vis       Visibility
	aggregate bool
	scalar    bool // seen without an access path
	mixed     bool // scalar/aggregate mix already reported
}

// recordChecker holds the running state of the semantic checks.
type recordChecker struct {
	rep       *Report
	syms      map[string]*symInfo
	maxThread int
}

func newRecordChecker(rep *Report) *recordChecker {
	return &recordChecker{rep: rep, syms: make(map[string]*symInfo)}
}

// checkHeader validates a START line's content. Duplicate mid-stream
// START lines never reach here: the decoder rejects them as records and
// the OnError hook reports them as misplaced headers.
func (v *recordChecker) checkHeader(line int, h Header) {
	if h.PID <= 0 {
		v.rep.add(line, SevWarn, CodeHeader, "implausible PID %d in START header", h.PID)
	}
}

// check runs the per-record semantic checks.
func (v *recordChecker) check(line int, r *Record, skipRegions bool) {
	if !skipRegions {
		v.checkRegions(line, r)
	}
	v.checkOrder(line, r)
	v.checkSymRef(line, r)
}

// checkRegions verifies address plausibility against the memmodel layout:
// every access must land in a known region, not straddle a region
// boundary, and match its symbol's storage class.
func (v *recordChecker) checkRegions(line int, r *Record) {
	region := memmodel.RegionOf(r.Addr)
	if region == "unmapped" {
		if r.Addr >= memmodel.StackTop && r.End() <= synthLimit {
			v.rep.add(line, SevWarn, CodeRegion,
				"address %09x in the synthetic injected-variable window", r.Addr)
			return
		}
		v.rep.add(line, SevError, CodeRegion,
			"address %09x outside the data/heap/stack regions", r.Addr)
		return
	}
	if r.Size > 0 {
		if end := memmodel.RegionOf(r.End() - 1); end != region {
			v.rep.add(line, SevError, CodeRegion,
				"%d-byte access at %09x straddles the %s/%s region boundary",
				r.Size, r.Addr, region, end)
			return
		}
	}
	if !r.HasSym {
		return
	}
	switch {
	case r.Vis == Global && region == "stack":
		v.rep.add(line, SevWarn, CodeRegion,
			"global %s accessed at stack address %09x", r.Var.Root, r.Addr)
	case r.Vis == Local && region != "stack":
		v.rep.add(line, SevWarn, CodeRegion,
			"local %s accessed at %s address %09x", r.Var.Root, region, r.Addr)
	}
}

// checkOrder enforces the trace's ordering invariants: frame distances are
// non-negative and thread ids are introduced monotonically starting at 1
// (Gleipnir numbers threads 1, 2, ... in order of first access).
func (v *recordChecker) checkOrder(line int, r *Record) {
	if !r.HasSym || r.Vis != Local {
		return
	}
	if r.Frame < 0 {
		v.rep.add(line, SevError, CodeOrder, "negative frame distance %d for %s", r.Frame, r.Var.Root)
	}
	switch {
	case r.Thread < 1:
		v.rep.add(line, SevError, CodeOrder, "thread id %d below 1 for %s", r.Thread, r.Var.Root)
	case r.Thread > v.maxThread+1:
		v.rep.add(line, SevError, CodeOrder,
			"thread %d introduced out of order (highest so far %d)", r.Thread, v.maxThread)
		v.maxThread = r.Thread
	case r.Thread == v.maxThread+1:
		v.maxThread = r.Thread
	}
}

// checkSymRef enforces per-symbol consistency: a root variable keeps one
// storage class for the whole trace, and its scope tag agrees with the
// presence of an access path.
func (v *recordChecker) checkSymRef(line int, r *Record) {
	if !r.HasSym {
		return
	}
	if r.Aggregate && len(r.Var.Path) == 0 {
		v.rep.add(line, SevWarn, CodeSymRef,
			"aggregate scope %s for %s without an access path", r.ScopeCode(), r.Var.Root)
	}
	if !r.Aggregate && len(r.Var.Path) > 0 {
		v.rep.add(line, SevWarn, CodeSymRef,
			"scalar scope %s for %s with access path %s", r.ScopeCode(), r.Var.Root, r.Var)
	}
	info, ok := v.syms[r.Var.Root]
	if !ok {
		v.syms[r.Var.Root] = &symInfo{
			line: line, vis: r.Vis, aggregate: r.Aggregate, scalar: !r.Aggregate,
		}
		return
	}
	if info.vis != r.Vis {
		v.rep.add(line, SevError, CodeSymRef,
			"%s seen as both %c and %c scope (first at line %d)",
			r.Var.Root, byte(info.vis), byte(r.Vis), info.line)
		return
	}
	if r.Aggregate {
		info.aggregate = true
	} else {
		info.scalar = true
	}
	if info.aggregate && info.scalar && !info.mixed {
		v.rep.add(line, SevWarn, CodeSymRef,
			"%s accessed both as scalar and as aggregate (first at line %d)",
			r.Var.Root, info.line)
		info.mixed = true
	}
}

// finish runs end-of-trace checks (none yet beyond counters; kept as the
// hook for stream-level invariants).
func (v *recordChecker) finish() {}
