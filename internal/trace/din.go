package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Din conversion: the classic DineroIV "din" input format, one access per
// line: "<label> <hex-address>", label 0 = read, 1 = write, 2 = instruction
// fetch. Exporting lets traces collected here drive an unmodified DineroIV
// binary (at the cost of all Gleipnir metadata); importing lets din traces
// from other tools run through this simulator.

// WriteDin writes records in din format. Modify records expand to a read
// followed by a write; Misc records are skipped (din has no equivalent).
// It returns the number of din lines written.
func WriteDin(w io.Writer, recs []Record) (int, error) {
	bw := bufio.NewWriter(w)
	n := 0
	emit := func(label int, addr uint64) error {
		n++
		_, err := fmt.Fprintf(bw, "%d %x\n", label, addr)
		return err
	}
	for i := range recs {
		r := &recs[i]
		var err error
		switch r.Op {
		case Load:
			err = emit(0, r.Addr)
		case Store:
			err = emit(1, r.Addr)
		case Modify:
			if err = emit(0, r.Addr); err == nil {
				err = emit(1, r.Addr)
			}
		}
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadDin parses a din-format stream into records. Reads become Loads,
// writes Stores, instruction fetches are mapped to Misc (this simulator
// does not model an instruction cache). Sizes default to 4 bytes (din
// carries none) and no metadata is attached.
func ReadDin(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	var recs []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var label int
		var addr uint64
		if _, err := fmt.Sscanf(text, "%d %x", &label, &addr); err != nil {
			return nil, fmt.Errorf("trace: din line %d: %q: %v", lineNo, text, err)
		}
		rec := Record{Addr: addr, Size: 4, Func: "din"}
		switch label {
		case 0:
			rec.Op = Load
		case 1:
			rec.Op = Store
		case 2:
			rec.Op = Misc
		default:
			return nil, fmt.Errorf("trace: din line %d: bad label %d", lineNo, label)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}
