package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// encodeIndexed renders header+records to the binary format with the
// block-index footer enabled.
func encodeIndexed(t *testing.T, h *Header, recs []Record, blockRecs int) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	bw.EnableIndex()
	if blockRecs > 0 {
		bw.SetBlockRecords(blockRecs)
	}
	if h != nil {
		if err := bw.WriteHeader(*h); err != nil {
			t.Fatal(err)
		}
	}
	for i := range recs {
		if err := bw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFooterBackwardCompatible: a footer-bearing trace decodes to the same
// records through the pre-footer serial reader and the parallel decoder —
// the footer rides as a record-free block old readers skip.
func TestFooterBackwardCompatible(t *testing.T) {
	h, recs := sampleRecords(t)
	for _, blockRecs := range []int{1, 2, 0} {
		indexed := encodeIndexed(t, &h, recs, blockRecs)
		plain := encodeBinary(t, &h, recs, blockRecs)
		if len(indexed) <= len(plain) {
			t.Fatalf("block=%d: indexed encoding (%d bytes) not longer than plain (%d)", blockRecs, len(indexed), len(plain))
		}
		if !bytes.HasPrefix(indexed, plain) {
			t.Fatalf("block=%d: footer is not a pure suffix", blockRecs)
		}

		rd := NewBinaryReader(bytes.NewReader(indexed))
		got, err := rd.ReadAll()
		if err != nil {
			t.Fatalf("block=%d: serial decode of indexed trace: %v", blockRecs, err)
		}
		if len(got) != len(recs) {
			t.Fatalf("block=%d: serial got %d records, want %d", blockRecs, len(got), len(recs))
		}
		for i := range got {
			if !got[i].Equal(&recs[i]) {
				t.Fatalf("block=%d: serial record %d = %v, want %v", blockRecs, i, &got[i], &recs[i])
			}
		}

		_, _, pgot, err := DecodeBytes(indexed, DecodeOptions{}, 4)
		if err != nil {
			t.Fatalf("block=%d: parallel decode of indexed trace: %v", blockRecs, err)
		}
		if len(pgot) != len(recs) {
			t.Fatalf("block=%d: parallel got %d records, want %d", blockRecs, len(pgot), len(recs))
		}
	}
}

// TestIndexedFooterMatchesScan: the footer index and the frame-scan index
// of the same trace are identical.
func TestIndexedFooterMatchesScan(t *testing.T) {
	h, recs := sampleRecords(t)
	indexed := encodeIndexed(t, &h, recs, 2)
	plain := encodeBinary(t, &h, recs, 2)

	ft, err := NewIndexedBytes(indexed)
	if err != nil {
		t.Fatal(err)
	}
	if !ft.HasFooter() {
		t.Fatal("indexed trace did not resolve its footer")
	}
	st, err := NewIndexedBytes(plain)
	if err != nil {
		t.Fatal(err)
	}
	if st.HasFooter() {
		t.Fatal("plain trace claims a footer")
	}

	fix, six := ft.Index(), st.Index()
	if fix.Records != six.Records || fix.NumBlocks() != six.NumBlocks() {
		t.Fatalf("footer index %+v != scan index %+v", fix, six)
	}
	for i := range fix.Offsets {
		if fix.Offsets[i] != six.Offsets[i] || fix.Counts[i] != six.Counts[i] {
			t.Fatalf("block %d: footer (%d,%d) != scan (%d,%d)",
				i, fix.Offsets[i], fix.Counts[i], six.Offsets[i], six.Counts[i])
		}
	}
	if ft.Records() != int64(len(recs)) {
		t.Fatalf("Records() = %d, want %d", ft.Records(), len(recs))
	}
}

// TestIndexedSourceRoundTrip: a full-range Source yields exactly the
// serially decoded records, header included.
func TestIndexedSourceRoundTrip(t *testing.T) {
	h, recs := sampleRecords(t)
	for _, data := range [][]byte{
		encodeIndexed(t, &h, recs, 2),
		encodeBinary(t, &h, recs, 2),
	} {
		tr, err := NewIndexedBytes(data)
		if err != nil {
			t.Fatal(err)
		}
		src := tr.Source(0, tr.NumBlocks(), DecodeOptions{})
		gh, err := src.Header()
		if err != nil || gh != h || !src.HasHeader() {
			t.Fatalf("header = %+v err=%v hasHdr=%v", gh, err, src.HasHeader())
		}
		got, err := ReadSource(src)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(recs) {
			t.Fatalf("got %d records, want %d", len(got), len(recs))
		}
		for i := range got {
			if !got[i].Equal(&recs[i]) {
				t.Fatalf("record %d = %v, want %v", i, &got[i], &recs[i])
			}
		}
	}
}

// TestShardRangesPartition: shard ranges are a disjoint contiguous cover
// of all blocks, and concatenating the shard sources reproduces the trace.
func TestShardRangesPartition(t *testing.T) {
	h, recs := sampleRecords(t)
	data := encodeIndexed(t, &h, recs, 1) // one record per block
	tr, err := NewIndexedBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, len(recs), len(recs) + 5} {
		ranges := tr.ShardRanges(n)
		if len(ranges) == 0 || len(ranges) > n {
			t.Fatalf("n=%d: %d ranges", n, len(ranges))
		}
		next := 0
		var got []Record
		for _, r := range ranges {
			if r[0] != next || r[1] <= r[0] {
				t.Fatalf("n=%d: bad range %v (want lo=%d)", n, r, next)
			}
			next = r[1]
			part, err := ReadSource(tr.Source(r[0], r[1], DecodeOptions{}))
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, part...)
		}
		if next != tr.NumBlocks() {
			t.Fatalf("n=%d: ranges end at %d, want %d", n, next, tr.NumBlocks())
		}
		if len(got) != len(recs) {
			t.Fatalf("n=%d: got %d records, want %d", n, len(got), len(recs))
		}
		for i := range got {
			if !got[i].Equal(&recs[i]) {
				t.Fatalf("n=%d: record %d = %v, want %v", n, i, &got[i], &recs[i])
			}
		}
	}
}

// TestIndexedDamagedFooter: a corrupted footer body is never a silent
// wrong index — the footer is discarded, FooterErr records why, and the
// index is rebuilt by a frame scan with identical contents.
func TestIndexedDamagedFooter(t *testing.T) {
	h, recs := sampleRecords(t)
	clean := encodeIndexed(t, &h, recs, 2)
	want, err := NewIndexedBytes(clean)
	if err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), clean...)
	// Flip a bit inside the footer body (just before the trailer's
	// footerLen field), leaving the trailer magic intact.
	data[len(data)-trailerLen-2] ^= 0x01
	tr, err := NewIndexedBytes(data)
	if err != nil {
		t.Fatalf("damaged footer did not fall back to a scan: %v", err)
	}
	if tr.HasFooter() {
		t.Fatal("damaged footer accepted as a footer")
	}
	if tr.FooterErr() == nil {
		t.Fatal("fallback left no FooterErr")
	}
	wix, gix := want.Index(), tr.Index()
	if gix.Records != wix.Records || gix.NumBlocks() != wix.NumBlocks() {
		t.Fatalf("scan index %+v != footer index %+v", gix, wix)
	}
	for i := range wix.Offsets {
		if gix.Offsets[i] != wix.Offsets[i] || gix.Counts[i] != wix.Counts[i] {
			t.Fatalf("block %d: scan (%d,%d) != footer (%d,%d)",
				i, gix.Offsets[i], gix.Counts[i], wix.Offsets[i], wix.Counts[i])
		}
	}
	got, err := ReadSource(tr.Source(0, tr.NumBlocks(), DecodeOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
}

// TestSerialReaderAuxDamage: the serial reader reads every record of a
// trace whose footer block is damaged or torn, recording the damage out
// of band through AuxDamage — in strict mode, with no bad lines charged.
func TestSerialReaderAuxDamage(t *testing.T) {
	h, recs := sampleRecords(t)
	clean := encodeIndexed(t, &h, recs, 2)
	for _, tc := range []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"bad-footer-crc", func(b []byte) []byte {
			b[len(b)-trailerLen-2] ^= 0x01
			return b
		}},
		{"torn-footer", func(b []byte) []byte {
			return b[:len(b)-trailerLen-4]
		}},
		{"truncated-trailer", func(b []byte) []byte {
			return b[:len(b)-3]
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mut(append([]byte(nil), clean...))
			rd := NewBinaryReader(bytes.NewReader(data))
			got, err := rd.ReadAll()
			if err != nil {
				t.Fatalf("strict read with damaged footer: %v", err)
			}
			if len(got) != len(recs) {
				t.Fatalf("got %d records, want %d", len(got), len(recs))
			}
			if rd.AuxDamage() == nil {
				t.Fatal("no AuxDamage recorded")
			}
			if rd.BadLines() != 0 {
				t.Fatalf("BadLines = %d, want 0 (aux damage is out of band)", rd.BadLines())
			}

			// Parallel decode keeps the same no-error semantics.
			_, _, pgot, err := DecodeBytes(data, DecodeOptions{}, 4)
			if err != nil {
				t.Fatalf("parallel decode with damaged footer: %v", err)
			}
			if len(pgot) != len(recs) {
				t.Fatalf("parallel got %d records, want %d", len(pgot), len(recs))
			}
		})
	}
}

// TestIndexedRejectsText: indexed access requires the binary container.
func TestIndexedRejectsText(t *testing.T) {
	if _, err := NewIndexedBytes([]byte(sampleTrace)); err == nil {
		t.Fatal("text trace accepted for indexed access")
	}
}

// TestOpenIndexedFile: the mmap path agrees with the in-memory path.
func TestOpenIndexedFile(t *testing.T) {
	h, recs := sampleRecords(t)
	data := encodeIndexed(t, &h, recs, 2)
	path := filepath.Join(t.TempDir(), "trace.glb")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	tr, err := OpenIndexed(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Bytes() != int64(len(data)) || tr.Records() != int64(len(recs)) || !tr.HasFooter() {
		t.Fatalf("bytes=%d records=%d footer=%v", tr.Bytes(), tr.Records(), tr.HasFooter())
	}
	got, err := ReadSource(tr.Source(0, tr.NumBlocks(), DecodeOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil { // double Close is a no-op
		t.Fatal(err)
	}
}

// TestIndexedSourceLenient: a damaged block inside a shard is skipped in
// lenient mode with the block ordinal reported, and fails strict mode with
// the same ordinal.
func TestIndexedSourceLenient(t *testing.T) {
	h, recs := sampleRecords(t)
	data := encodeIndexed(t, &h, recs, 1)
	tr, err := NewIndexedBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	// Damage the payload of the third data block.
	ix := tr.Index()
	off := ix.Offsets[2]
	data[int(off)+6] ^= 0xff

	var lines []int
	src := tr.Source(0, tr.NumBlocks(), DecodeOptions{
		Mode:    Lenient,
		OnError: func(line int, _ string, _ error) { lines = append(lines, line) },
	})
	got, err := ReadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs)-1 || src.BadLines() != 1 {
		t.Fatalf("lenient: got %d records (bad=%d), want %d with 1 bad", len(got), src.BadLines(), len(recs)-1)
	}
	if len(lines) != 1 || lines[0] != 3 {
		t.Fatalf("OnError lines = %v, want [3]", lines)
	}

	strict := tr.Source(0, tr.NumBlocks(), DecodeOptions{})
	if _, err := ReadSource(strict); err == nil || !strings.Contains(err.Error(), "3") {
		t.Fatalf("strict error = %v, want block-3 failure", err)
	}
}
