package trace

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// oversizePrefixLen is how many bytes of an over-long line are retained in
// BadLineError.Text so diagnostics can show what was skipped.
const oversizePrefixLen = 128

// Reader streams records from a Gleipnir trace file. Its tolerance for
// malformed input is set by DecodeOptions; see NewReaderOptions.
type Reader struct {
	br         *bufio.Reader
	opts       DecodeOptions
	intern     *Interner
	header     Header
	gotHdr     bool
	hasHdr     bool // input actually began with a START line
	buf        []byte
	pending    []byte // non-header first line peeked while looking for START
	hasPending bool
	line       int
	bad        int
	err        error
}

// NewReader returns a strict Reader over r with default limits. The header,
// if present, is consumed lazily on the first Read/Header call.
func NewReader(r io.Reader) *Reader { return NewReaderOptions(r, DecodeOptions{}) }

// NewReaderOptions returns a Reader with explicit decode options.
func NewReaderOptions(r io.Reader, opts DecodeOptions) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 64*1024), opts: opts, intern: NewInterner()}
}

// Header returns the trace header. If the stream has no START line the
// zero Header is returned and the first data line is preserved for Read.
func (rd *Reader) Header() (Header, error) {
	if err := rd.ensureHeader(); err != nil && err != io.EOF {
		return rd.header, err
	}
	return rd.header, nil
}

// HasHeader reports whether the input actually contained a START line. It
// is meaningful once Header (or the first Read) has been called.
func (rd *Reader) HasHeader() bool { return rd.hasHdr }

// Line returns the number of input lines consumed so far.
func (rd *Reader) Line() int { return rd.line }

// BadLines returns the number of malformed lines skipped in lenient mode.
func (rd *Reader) BadLines() int { return rd.bad }

// readLine returns the next input line without its terminator, counting it
// in rd.line. The returned slice aliases the Reader's scratch buffer and is
// valid only until the next readLine call. It returns io.EOF at end of
// input, a *BadLineError for a line over the length limit (whose bytes are
// fully consumed, so the stream remains usable, and whose Text carries the
// first oversizePrefixLen bytes), or a line-annotated I/O error.
func (rd *Reader) readLine() ([]byte, error) {
	max := rd.opts.maxLine()
	buf := rd.buf[:0]
	overflow := false
	for {
		frag, err := rd.br.ReadSlice('\n')
		if len(frag) > 0 {
			switch {
			case overflow:
				// Keep only the diagnostic prefix of an over-long line.
				if len(buf) < oversizePrefixLen {
					buf = append(buf, frag...)
				}
			case len(buf)+len(frag) > max+1: // +1 for the newline itself
				overflow = true
				buf = append(buf, frag...)
			default:
				buf = append(buf, frag...)
			}
			if overflow && len(buf) > oversizePrefixLen {
				buf = buf[:oversizePrefixLen]
			}
		}
		rd.buf = buf[:0]
		switch err {
		case nil:
			rd.line++
			if overflow {
				return nil, rd.oversizeErr(buf)
			}
			return bytes.TrimSuffix(buf, []byte("\n")), nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(buf) == 0 && !overflow {
				return nil, io.EOF
			}
			// Final line without a trailing newline.
			rd.line++
			if overflow {
				return nil, rd.oversizeErr(buf)
			}
			return buf, nil
		default:
			return nil, fmt.Errorf("line %d: %w", rd.line+1, err)
		}
	}
}

// oversizeErr builds the BadLineError for an over-long line, carrying the
// retained diagnostic prefix (sans any trailing newline) in Text.
func (rd *Reader) oversizeErr(prefix []byte) *BadLineError {
	prefix = bytes.TrimSuffix(prefix, []byte("\n"))
	return &BadLineError{Line: rd.line, Text: string(prefix), Err: ErrLineTooLong}
}

// skipBad decides what to do with a malformed line: in lenient mode within
// budget it reports the line through OnError and returns ok=true ("keep
// going"); otherwise it returns the error to latch. OnError fires in both
// modes.
func (rd *Reader) skipBad(ble *BadLineError) (bool, error) {
	if rd.opts.OnError != nil {
		rd.opts.OnError(ble.Line, ble.Text, ble.Err)
	}
	if rd.opts.Mode != Lenient {
		return false, ble
	}
	rd.bad++
	if rd.opts.MaxBadLines > 0 && rd.bad > rd.opts.MaxBadLines {
		return false, fmt.Errorf("%w (bad-line budget %d exhausted)", ble, rd.opts.MaxBadLines)
	}
	return true, nil
}

// ensureHeader consumes the optional START line. A malformed header or an
// unreadable first line latches rd.err so later Reads fail loudly instead
// of silently treating the trace as headerless.
func (rd *Reader) ensureHeader() error {
	if rd.gotHdr {
		if rd.err != nil && rd.err != io.EOF {
			return rd.err
		}
		return nil
	}
	rd.gotHdr = true
	for {
		text, err := rd.readLine()
		if err == io.EOF {
			return io.EOF
		}
		if err != nil {
			if ble, ok := err.(*BadLineError); ok {
				if ok2, lerr := rd.skipBad(ble); ok2 {
					continue
				} else {
					rd.err = lerr
					return rd.err
				}
			}
			rd.err = err
			return rd.err
		}
		text = bytes.TrimSpace(text)
		if len(text) == 0 {
			continue
		}
		if bytes.HasPrefix(text, []byte("START")) {
			h, herr := ParseHeader(string(text))
			if herr != nil {
				ble := &BadLineError{Line: rd.line, Text: string(text), Err: herr}
				if ok, lerr := rd.skipBad(ble); ok {
					// Lenient: drop the corrupt header line and treat the
					// trace as headerless.
					return nil
				} else {
					rd.err = lerr
					return rd.err
				}
			}
			rd.header = h
			rd.hasHdr = true
			return nil
		}
		rd.pending = append(rd.pending[:0], text...)
		rd.hasPending = true
		return nil
	}
}

// Read returns the next record, or io.EOF at end of stream.
func (rd *Reader) Read() (Record, error) {
	if rd.err != nil {
		return Record{}, rd.err
	}
	if err := rd.ensureHeader(); err != nil {
		rd.err = err
		return Record{}, err
	}
	for {
		var text []byte
		if rd.hasPending {
			text = rd.pending
			rd.hasPending = false
		} else {
			var err error
			text, err = rd.readLine()
			if err == io.EOF {
				rd.err = io.EOF
				return Record{}, rd.err
			}
			if err != nil {
				if ble, ok := err.(*BadLineError); ok {
					if ok2, lerr := rd.skipBad(ble); ok2 {
						continue
					} else {
						rd.err = lerr
						return Record{}, rd.err
					}
				}
				rd.err = err
				return Record{}, rd.err
			}
			text = bytes.TrimSpace(text)
			if len(text) == 0 {
				continue
			}
		}
		rec, perr := rd.intern.ParseRecord(text)
		if perr != nil {
			ble := &BadLineError{Line: rd.line, Text: string(text), Err: perr}
			if ok, lerr := rd.skipBad(ble); ok {
				continue
			} else {
				rd.err = lerr
				return Record{}, rd.err
			}
		}
		return rec, nil
	}
}

// ReadBatch fills dst with up to len(dst) records and returns how many were
// read. It returns io.EOF only when no records were read and the stream is
// exhausted, so callers can loop until (0, io.EOF).
func (rd *Reader) ReadBatch(dst []Record) (int, error) {
	n := 0
	for n < len(dst) {
		rec, err := rd.Read()
		if err == io.EOF {
			if n > 0 {
				return n, nil
			}
			return 0, io.EOF
		}
		if err != nil {
			return n, err
		}
		dst[n] = rec
		n++
	}
	return n, nil
}

// ReadAll reads the remaining records into a slice.
func (rd *Reader) ReadAll() ([]Record, error) {
	var recs []Record
	for {
		rec, err := rd.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// Writer streams records to a trace file in Gleipnir format.
type Writer struct {
	bw        *bufio.Writer
	scratch   []byte
	wroteHdr  bool
	recsSoFar int
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 64*1024)}
}

// WriteHeader writes the START line; it must precede any record.
func (wr *Writer) WriteHeader(h Header) error {
	if wr.wroteHdr {
		return fmt.Errorf("trace: header written twice")
	}
	if wr.recsSoFar > 0 {
		return fmt.Errorf("trace: header after records")
	}
	wr.wroteHdr = true
	_, err := fmt.Fprintln(wr.bw, h.String())
	return err
}

// Write appends one record. It renders into a writer-owned scratch buffer,
// so steady-state writes perform no allocations.
func (wr *Writer) Write(r *Record) error {
	wr.scratch = append(r.AppendText(wr.scratch[:0]), '\n')
	if _, err := wr.bw.Write(wr.scratch); err != nil {
		return err
	}
	wr.recsSoFar++
	return nil
}

// Flush flushes buffered output.
func (wr *Writer) Flush() error { return wr.bw.Flush() }

// Records returns the number of records successfully written so far.
func (wr *Writer) Records() int { return wr.recsSoFar }

// ParseAll parses a whole trace held in a string, returning header and
// records. Traces without a START line get a zero header.
func ParseAll(src string) (Header, []Record, error) {
	rd := NewReader(strings.NewReader(src))
	h, err := rd.Header()
	if err != nil && err != io.EOF {
		return h, nil, err
	}
	recs, err := rd.ReadAll()
	return h, recs, err
}

// Format renders a header and records as a trace file string.
func Format(h Header, recs []Record) string {
	var buf []byte
	buf = append(buf, h.String()...)
	buf = append(buf, '\n')
	for i := range recs {
		buf = recs[i].AppendText(buf)
		buf = append(buf, '\n')
	}
	return string(buf)
}
