package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Reader streams records from a Gleipnir trace file.
type Reader struct {
	sc         *bufio.Scanner
	header     Header
	gotHdr     bool
	pending    string // non-header first line peeked while looking for START
	hasPending bool
	line       int
	err        error
}

// NewReader returns a Reader over r. The header, if present, is consumed
// lazily on the first Read/Header call. Lines are limited to 1 MiB.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	return &Reader{sc: sc}
}

// Header returns the trace header. If the stream has no START line the
// zero Header is returned and the first data line is preserved for Read.
func (rd *Reader) Header() (Header, error) {
	if err := rd.ensureHeader(); err != nil && err != io.EOF {
		return rd.header, err
	}
	return rd.header, nil
}

func (rd *Reader) ensureHeader() error {
	if rd.gotHdr {
		return nil
	}
	rd.gotHdr = true
	for rd.sc.Scan() {
		rd.line++
		text := strings.TrimSpace(rd.sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "START") {
			h, err := ParseHeader(text)
			if err != nil {
				return err
			}
			rd.header = h
			return nil
		}
		rd.pending = text
		rd.hasPending = true
		return nil
	}
	if err := rd.sc.Err(); err != nil {
		return err
	}
	return io.EOF
}

// Read returns the next record, or io.EOF at end of stream.
func (rd *Reader) Read() (Record, error) {
	if rd.err != nil {
		return Record{}, rd.err
	}
	if err := rd.ensureHeader(); err != nil {
		rd.err = err
		return Record{}, err
	}
	if rd.hasPending {
		rd.hasPending = false
		rec, err := ParseRecord(rd.pending)
		if err != nil {
			rd.err = fmt.Errorf("line %d: %w", rd.line, err)
			return Record{}, rd.err
		}
		return rec, nil
	}
	for rd.sc.Scan() {
		rd.line++
		text := strings.TrimSpace(rd.sc.Text())
		if text == "" {
			continue
		}
		rec, err := ParseRecord(text)
		if err != nil {
			rd.err = fmt.Errorf("line %d: %w", rd.line, err)
			return Record{}, rd.err
		}
		return rec, nil
	}
	if err := rd.sc.Err(); err != nil {
		rd.err = err
	} else {
		rd.err = io.EOF
	}
	return Record{}, rd.err
}

// ReadAll reads the remaining records into a slice.
func (rd *Reader) ReadAll() ([]Record, error) {
	var recs []Record
	for {
		rec, err := rd.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

// Writer streams records to a trace file in Gleipnir format.
type Writer struct {
	bw        *bufio.Writer
	wroteHdr  bool
	recsSoFar int
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 64*1024)}
}

// WriteHeader writes the START line; it must precede any record.
func (wr *Writer) WriteHeader(h Header) error {
	if wr.wroteHdr {
		return fmt.Errorf("trace: header written twice")
	}
	if wr.recsSoFar > 0 {
		return fmt.Errorf("trace: header after records")
	}
	wr.wroteHdr = true
	_, err := fmt.Fprintln(wr.bw, h.String())
	return err
}

// Write appends one record.
func (wr *Writer) Write(r *Record) error {
	wr.recsSoFar++
	var b strings.Builder
	r.appendTo(&b)
	b.WriteByte('\n')
	_, err := wr.bw.WriteString(b.String())
	return err
}

// Flush flushes buffered output.
func (wr *Writer) Flush() error { return wr.bw.Flush() }

// Records written so far.
func (wr *Writer) Records() int { return wr.recsSoFar }

// ParseAll parses a whole trace held in a string, returning header and
// records. Traces without a START line get a zero header.
func ParseAll(src string) (Header, []Record, error) {
	rd := NewReader(strings.NewReader(src))
	h, err := rd.Header()
	if err != nil && err != io.EOF {
		return h, nil, err
	}
	recs, err := rd.ReadAll()
	return h, recs, err
}

// Format renders a header and records as a trace file string.
func Format(h Header, recs []Record) string {
	var b strings.Builder
	b.WriteString(h.String())
	b.WriteByte('\n')
	for i := range recs {
		recs[i].appendTo(&b)
		b.WriteByte('\n')
	}
	return b.String()
}
