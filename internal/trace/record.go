// Package trace implements the Gleipnir memory-trace format: one annotated
// tuple per data access, as produced by the Gleipnir Valgrind plug-in and
// consumed by the modified DineroIV simulator and the transformation engine.
//
// A trace file begins with a "START PID <n>" header followed by one record
// per line. Record layout (whitespace separated):
//
//	<op> <addr> <size> <func>                      -- no symbol information
//	<op> <addr> <size> <func> GV <var>             -- global scalar
//	<op> <addr> <size> <func> GS <var-path>        -- global aggregate member
//	<op> <addr> <size> <func> LV <frame> <thread> <var>
//	<op> <addr> <size> <func> LS <frame> <thread> <var-path>
//
// where op is L (load), S (store), M (modify) or X (miscellaneous), addr is
// a zero-padded 9-digit hex virtual address, and var-path is a C-style
// access expression such as glStructArray[0].myArray[0]. Globals omit frame
// and thread ("there is no need to identify the frame of the corresponding
// variable"); locals carry the frame id (0 = the executing function's own
// frame, 1 = the caller's, …) and the thread id.
package trace

import (
	"fmt"
	"strings"

	"tracedst/internal/ctype"
)

// Op is the access type of a trace record.
type Op byte

// Access types, matching Gleipnir's single-letter codes.
const (
	Load   Op = 'L' // data read
	Store  Op = 'S' // data write
	Modify Op = 'M' // read-modify-write
	Misc   Op = 'X' // miscellaneous instruction
)

// Valid reports whether op is one of the defined access types.
func (o Op) Valid() bool {
	switch o {
	case Load, Store, Modify, Misc:
		return true
	}
	return false
}

// String returns the single-letter code.
func (o Op) String() string { return string(byte(o)) }

// Visibility distinguishes global (data segment) from local (stack) symbols.
type Visibility byte

// Symbol visibilities.
const (
	Global Visibility = 'G'
	Local  Visibility = 'L'
)

// Record is a single trace line.
type Record struct {
	Op   Op
	Addr uint64
	Size int64
	// Func is the function executing the access (always present).
	Func string

	// HasSym reports whether the debug parser could associate the access
	// with a program variable; when false the fields below are meaningless
	// (e.g. return-address pushes, unannotated stack traffic).
	HasSym bool
	// Vis is G for globals, L for locals.
	Vis Visibility
	// Aggregate is true when the accessed element is part of a structure or
	// array (the trace spells the scope GS/LS instead of GV/LV).
	Aggregate bool
	// Frame is the stack-frame distance for locals: 0 is the executing
	// function's own frame, 1 its caller's, and so on. Unused for globals.
	Frame int
	// Thread is the id of the thread that executed the access (locals only;
	// Gleipnir numbers threads from 1).
	Thread int
	// Var is the accessed variable: root name plus access path.
	Var ctype.AccessExpr

	// FuncID and VarID are interned ids for Func and Var.Root, filled by
	// InternRecords against a SymTab. Zero means "not interned"; VarID is
	// always zero when HasSym is false. They are derived metadata: String,
	// Equal and the parsers ignore them.
	FuncID SymID
	VarID  SymID
}

// ScopeCode returns the two-letter scope tag (GV, GS, LV, LS) or "" when the
// record carries no symbol information.
func (r *Record) ScopeCode() string {
	if !r.HasSym {
		return ""
	}
	b := [2]byte{byte(r.Vis), 'V'}
	if r.Aggregate {
		b[1] = 'S'
	}
	return string(b[:])
}

// String formats the record exactly as Gleipnir writes it.
func (r *Record) String() string { return string(r.AppendText(nil)) }

// Equal reports whether two records are identical, including metadata.
func (r *Record) Equal(s *Record) bool {
	if r.Op != s.Op || r.Addr != s.Addr || r.Size != s.Size || r.Func != s.Func ||
		r.HasSym != s.HasSym {
		return false
	}
	if !r.HasSym {
		return true
	}
	return r.Vis == s.Vis && r.Aggregate == s.Aggregate &&
		r.Frame == s.Frame && r.Thread == s.Thread &&
		r.Var.Root == s.Var.Root && r.Var.Path.Equal(s.Var.Path)
}

// End returns the first address past the accessed bytes.
func (r *Record) End() uint64 { return r.Addr + uint64(r.Size) }

// IsWrite reports whether the access writes memory (stores and modifies).
func (r *Record) IsWrite() bool { return r.Op == Store || r.Op == Modify }

// IsRead reports whether the access reads memory (loads and modifies).
func (r *Record) IsRead() bool { return r.Op == Load || r.Op == Modify }

// ParseRecord parses one trace line. It rejects the START header (use
// ParseHeader) and malformed lines. It is a convenience wrapper around
// ParseRecordBytes, which is the canonical grammar.
func ParseRecord(line string) (Record, error) {
	return parseRecordBytes([]byte(line), nil)
}

// Header is the trace-file preamble.
type Header struct {
	PID int
}

// String formats the header line.
func (h Header) String() string { return fmt.Sprintf("START PID %d", h.PID) }

// ParseHeader parses a "START PID <n>" line.
func ParseHeader(line string) (Header, error) {
	var h Header
	if _, err := fmt.Sscanf(strings.TrimSpace(line), "START PID %d", &h.PID); err != nil {
		return h, fmt.Errorf("trace: bad header %q", line)
	}
	return h, nil
}
