package trace

import (
	"errors"
	"io"
	"strings"
	"testing"
)

// Table tests for the strict/lenient decoder over damaged input: truncated
// traces, corrupt headers, garbage lines, oversized lines.
func TestDecodeDamagedTraces(t *testing.T) {
	cases := []struct {
		name       string
		src        string
		maxLine    int
		strictErr  string // substring the strict error must contain; "" = no error
		strictRecs int    // records decoded before the strict error
		lenRecs    int    // records recovered in lenient mode
		lenBad     int    // bad lines skipped in lenient mode
	}{
		{
			name:       "clean",
			src:        "START PID 1\nS 000601040 4 main GV g\nL 000601040 4 main GV g\n",
			strictRecs: 2, lenRecs: 2,
		},
		{
			name:      "truncated mid-record",
			src:       "START PID 1\nS 000601040 4 main GV g\nL 0006",
			strictErr: "line 3", strictRecs: 1,
			lenRecs: 1, lenBad: 1,
		},
		{
			name:      "corrupt START line",
			src:       "START PID banana\nS 000601040 4 main GV g\n",
			strictErr: "line 1: trace: bad header",
			lenRecs:   1, lenBad: 1,
		},
		{
			name:      "corrupt START with no records",
			src:       "START\n",
			strictErr: "line 1",
			lenBad:    1,
		},
		{
			name:      "garbage between records",
			src:       "START PID 1\nS 000601040 4 main GV g\n!!@@ junk\nL 000601040 4 main GV g\n",
			strictErr: "line 3", strictRecs: 1,
			lenRecs: 2, lenBad: 1,
		},
		{
			name:      "oversized line",
			src:       "START PID 1\nS 000601040 4 main GV g\n" + strings.Repeat("y", 200) + "\nL 000601040 4 main GV g\n",
			maxLine:   100,
			strictErr: "line 3", strictRecs: 1,
			lenRecs: 2, lenBad: 1,
		},
		{
			name:       "no final newline",
			src:        "START PID 1\nS 000601040 4 main GV g",
			strictRecs: 1, lenRecs: 1,
		},
		{
			name:    "only garbage",
			src:     "##\n%%\n",
			lenBad:  2,
			lenRecs: 0, strictErr: "line 1",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Strict pass.
			rd := NewReaderOptions(strings.NewReader(tc.src), DecodeOptions{MaxLineBytes: tc.maxLine})
			recs, err := rd.ReadAll()
			if tc.strictErr == "" {
				if err != nil {
					t.Fatalf("strict: %v", err)
				}
			} else {
				if err == nil || !strings.Contains(err.Error(), tc.strictErr) {
					t.Fatalf("strict err = %v, want %q", err, tc.strictErr)
				}
			}
			if len(recs) != tc.strictRecs {
				t.Errorf("strict recs = %d, want %d", len(recs), tc.strictRecs)
			}
			// Lenient pass.
			var calls int
			rd = NewReaderOptions(strings.NewReader(tc.src), DecodeOptions{
				Mode:         Lenient,
				MaxLineBytes: tc.maxLine,
				OnError:      func(int, string, error) { calls++ },
			})
			recs, err = rd.ReadAll()
			if err != nil {
				t.Fatalf("lenient: %v", err)
			}
			if len(recs) != tc.lenRecs {
				t.Errorf("lenient recs = %d, want %d", len(recs), tc.lenRecs)
			}
			if rd.BadLines() != tc.lenBad || calls != tc.lenBad {
				t.Errorf("lenient bad = %d (callback %d), want %d", rd.BadLines(), calls, tc.lenBad)
			}
		})
	}
}

// TestHeaderErrorIsLatched: after Header() reports a corrupt START line,
// Read must keep failing instead of silently ingesting data records as if
// the trace were headerless (the old gotHdr bug).
func TestHeaderErrorIsLatched(t *testing.T) {
	rd := NewReader(strings.NewReader("START PID banana\nS 000601040 4 main GV g\n"))
	if _, err := rd.Header(); err == nil {
		t.Fatal("corrupt header accepted")
	}
	if _, err := rd.Read(); err == nil {
		t.Fatal("Read proceeded after header error")
	}
	// And the error is the same latched one on every call.
	_, err1 := rd.Read()
	_, err2 := rd.Read()
	if err1 != err2 || err1 == io.EOF {
		t.Errorf("not latched: %v vs %v", err1, err2)
	}
	var ble *BadLineError
	if !errors.As(err1, &ble) || ble.Line != 1 {
		t.Errorf("want BadLineError at line 1, got %v", err1)
	}
}

// TestHeaderErrorLatchedViaRead: same bug class when Read is the first
// call (no explicit Header()).
func TestHeaderErrorLatchedViaRead(t *testing.T) {
	rd := NewReader(strings.NewReader("START PID banana\nS 000601040 4 main GV g\n"))
	if _, err := rd.Read(); err == nil {
		t.Fatal("Read ingested records after corrupt header")
	}
}

func TestHasHeader(t *testing.T) {
	rd := NewReader(strings.NewReader("START PID 9\nS 000601040 4 main GV g\n"))
	if _, err := rd.Header(); err != nil || !rd.HasHeader() {
		t.Errorf("HasHeader = %v, err %v", rd.HasHeader(), err)
	}
	rd = NewReader(strings.NewReader("S 000601040 4 main GV g\n"))
	if _, err := rd.Header(); err != nil || rd.HasHeader() {
		t.Errorf("headerless HasHeader = %v, err %v", rd.HasHeader(), err)
	}
}

func TestOnErrorFiresInStrictMode(t *testing.T) {
	var got []int
	rd := NewReaderOptions(strings.NewReader("START PID 1\njunk junk\n"), DecodeOptions{
		OnError: func(line int, text string, err error) { got = append(got, line) },
	})
	if _, err := rd.ReadAll(); err == nil {
		t.Fatal("strict accepted junk")
	}
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("OnError calls = %v, want [2]", got)
	}
}

func TestLenientBudgetError(t *testing.T) {
	src := "S 1 4 f\n##\n##\n##\nS 2 4 f\n"
	rd := NewReaderOptions(strings.NewReader(src), DecodeOptions{Mode: Lenient, MaxBadLines: 2})
	recs, err := rd.ReadAll()
	if err == nil || !strings.Contains(err.Error(), "budget 2 exhausted") {
		t.Fatalf("err = %v", err)
	}
	if len(recs) != 1 {
		t.Errorf("recs before budget blow = %d, want 1", len(recs))
	}
}

func TestWriterRecordsCountsOnlySuccessfulWrites(t *testing.T) {
	// A writer whose sink fails immediately: with a tiny record repeated,
	// bufio absorbs some writes, but once WriteString starts failing the
	// count must stop advancing.
	fw := &failWriter{n: 0}
	wr := NewWriter(fw)
	rec, _ := ParseRecord("S 000601040 4 main GV g")
	for i := 0; i < 100_000; i++ {
		if err := wr.Write(&rec); err != nil {
			break
		}
	}
	// Everything counted must actually have been handed to bufio
	// successfully; the failed Write must not be included.
	if wr.Records() >= 100_000 {
		t.Errorf("Records() = %d counts failed writes", wr.Records())
	}
}

func TestModeString(t *testing.T) {
	if Strict.String() != "strict" || Lenient.String() != "lenient" {
		t.Error("mode names wrong")
	}
}
