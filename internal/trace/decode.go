package trace

import (
	"errors"
	"fmt"
)

// Mode selects how the decoder reacts to malformed input.
type Mode int

// Decoder modes.
const (
	// Strict fails the stream on the first malformed line. This is the
	// default: a trace is the sole contract between the tracer, the
	// transformation module and the simulator, so silent damage is worse
	// than a dead run.
	Strict Mode = iota
	// Lenient skips malformed lines (reporting each through OnError) up to
	// the MaxBadLines budget, then fails. Only whole-line damage is
	// skippable: I/O errors from the underlying reader always abort.
	Lenient
)

// String names the mode.
func (m Mode) String() string {
	if m == Lenient {
		return "lenient"
	}
	return "strict"
}

// DefaultMaxLineBytes is the line-length limit applied when
// DecodeOptions.MaxLineBytes is zero.
const DefaultMaxLineBytes = 1 << 20

// ErrLineTooLong marks a line that exceeds the configured MaxLineBytes.
// It is reported wrapped in a *BadLineError carrying the line number.
var ErrLineTooLong = errors.New("line exceeds maximum length")

// DecodeOptions tune a Reader. The zero value is a strict decoder with a
// 1 MiB line limit — the historical behaviour, minus its silent failure
// modes.
type DecodeOptions struct {
	// Mode is Strict (default) or Lenient.
	Mode Mode
	// MaxBadLines is the lenient-mode skip budget: after this many skipped
	// lines the stream fails anyway. Zero means unlimited. Ignored in
	// strict mode.
	MaxBadLines int
	// MaxLineBytes caps the length of a single line; zero selects
	// DefaultMaxLineBytes. Longer lines fail (strict) or are skipped
	// (lenient) as *BadLineError{Err: ErrLineTooLong}.
	MaxLineBytes int
	// OnError, if non-nil, is invoked once per malformed line with the
	// 1-based line number, the offending text (truncated to a ~128-byte
	// prefix for oversized lines) and the underlying parse error. It fires
	// in both modes, before the decoder decides whether to skip or fail.
	OnError func(line int, text string, err error)
}

// maxLine returns the effective line limit.
func (o *DecodeOptions) maxLine() int {
	if o.MaxLineBytes > 0 {
		return o.MaxLineBytes
	}
	return DefaultMaxLineBytes
}

// BadLineError is a malformed line: a record or START header that failed to
// parse, or a line over the length limit. Line is 1-based; Text is the
// offending line (truncated to its first ~128 bytes when the line was
// discarded for length). Binary-format decoders reuse the type for damaged
// blocks, with Line carrying the 1-based block ordinal.
type BadLineError struct {
	Line int
	Text string
	Err  error
}

// Error formats like the historical decoder errors ("line N: ...").
func (e *BadLineError) Error() string { return fmt.Sprintf("line %d: %v", e.Line, e.Err) }

// Unwrap exposes the underlying parse error.
func (e *BadLineError) Unwrap() error { return e.Err }
