package trace

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// failWriter fails after n successful writes.
type failWriter struct {
	n int
}

func (w *failWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestWriterPropagatesIOErrors(t *testing.T) {
	// The bufio layer only surfaces the error at Flush (or once the buffer
	// fills), so write records until something fails.
	wr := NewWriter(&failWriter{n: 0})
	rec, _ := ParseRecord("S 000601040 4 main GV g")
	var err error
	if err = wr.WriteHeader(Header{PID: 1}); err == nil {
		for i := 0; i < 100_000 && err == nil; i++ {
			err = wr.Write(&rec)
		}
		if err == nil {
			err = wr.Flush()
		}
	}
	if err == nil {
		t.Error("io error never surfaced")
	}
}

// failReader fails after delivering its prefix.
type failReader struct {
	data []byte
	err  error
}

func (r *failReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

func TestReaderPropagatesIOErrors(t *testing.T) {
	rd := NewReader(&failReader{
		data: []byte("START PID 1\nS 000601040 4 main GV g\n"),
		err:  errors.New("cable pulled"),
	})
	if _, err := rd.Read(); err != nil {
		t.Fatalf("first record: %v", err)
	}
	_, err := rd.Read()
	if err == nil || !strings.Contains(err.Error(), "cable pulled") {
		t.Errorf("err = %v", err)
	}
	// I/O errors carry the line being read, like parse errors do.
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("err = %v, want line 3 mention", err)
	}
}

func TestReaderOverlongLine(t *testing.T) {
	// Lines beyond the 1 MiB limit must fail cleanly, with line context.
	long := "S 000601040 4 main GV " + strings.Repeat("x", 2<<20)
	rd := NewReader(strings.NewReader("START PID 1\n" + long + "\n"))
	_, err := rd.Read()
	if err == nil {
		t.Fatal("overlong line accepted")
	}
	if !errors.Is(err, ErrLineTooLong) || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want ErrLineTooLong at line 2", err)
	}
}

// TestParseRecordNeverPanics fuzzes the parser with arbitrary field soup.
func TestParseRecordNeverPanics(t *testing.T) {
	pieces := []string{
		"S", "L", "M", "X", "Q", "main", "GV", "LS", "LV", "GS",
		"7ff0001b0", "zz", "4", "-1", "0", "1", "glScalar", "a[", "a[3].b",
		"", "   ", "_zzq_result", "99999999999999999999",
	}
	f := func(picks []uint8) bool {
		var fields []string
		for _, p := range picks {
			fields = append(fields, pieces[int(p)%len(pieces)])
		}
		line := strings.Join(fields, " ")
		rec, err := ParseRecord(line)
		if err != nil {
			return true
		}
		// Anything accepted must round-trip.
		again, err2 := ParseRecord(rec.String())
		return err2 == nil && again.Equal(&rec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestParseHeaderNeverPanics fuzzes the header parser.
func TestParseHeaderNeverPanics(t *testing.T) {
	f := func(s string) bool {
		h, err := ParseHeader(s)
		if err != nil {
			return true
		}
		_, err2 := ParseHeader(h.String())
		return err2 == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestFormatLargeTraceStreams(t *testing.T) {
	// Sanity: formatting and re-parsing a generated trace of 10k records.
	recs := make([]Record, 10_000)
	for i := range recs {
		recs[i] = Record{
			Op:   Load,
			Addr: uint64(i) * 8,
			Size: 8,
			Func: fmt.Sprintf("f%d", i%7),
		}
	}
	text := Format(Header{PID: 9}, recs)
	h, parsed, err := ParseAll(text)
	if err != nil || h.PID != 9 || len(parsed) != len(recs) {
		t.Fatalf("round trip: %v %d %v", h, len(parsed), err)
	}
}
