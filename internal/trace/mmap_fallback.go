//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package trace

import (
	"io"
	"os"
)

// mmapFile on platforms without syscall.Mmap reads the file into memory.
// Indexed access still works, just without the constant-memory property —
// the streaming (non-indexed) paths remain bounded everywhere.
func mmapFile(f *os.File, size int64) ([]byte, func() error, error) {
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
