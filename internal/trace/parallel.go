// Parallel trace decoding. Both container formats admit embarrassingly
// parallel decode: binary blocks are self-describing (framing, string
// table, delta base and checksum are all block-local), and text lines are
// independent once split at newline boundaries. DecodeParallel slurps the
// input, carves it into per-worker pieces and decodes them concurrently,
// concatenating the per-piece record slices in input order so the result is
// deterministic and identical to a serial decode.
//
// Error semantics: the serial readers define the contract (ordered OnError
// callbacks, line/block numbers, lenient bad-line budgets, partial-prefix
// output on failure). The binary path reproduces it exactly — frames are
// walked serially (cheap: two varints plus a skip per block) and per-block
// damage is judged in block order after the parallel decode; a broken
// frame (truncation, corrupt length fields) aborts the walk before any
// OnError has fired and falls back to one serial pass, so error values,
// callbacks and the partial record prefix are byte-identical to
// BinaryReader. The text path takes the fast parallel route only when
// every chunk parses cleanly; the moment any worker sees a bad line it
// falls back to one serial pass over the full buffer, which recreates the
// byte-exact strict/lenient behaviour including line numbers.
package trace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"sync"
)

// DecodeParallel reads the whole trace from r and decodes it using up to
// workers goroutines (<= 0 selects GOMAXPROCS). The format is sniffed from
// the magic. Results are identical to a serial Reader/BinaryReader decode:
// same records in the same order, same header, same error behaviour. When
// an error is returned, the accompanying records are exactly the serial
// readers' partial output — the prefix decoded before the failure, with
// lenient-mode skips applied in order.
func DecodeParallel(r io.Reader, opts DecodeOptions, workers int) (Header, bool, []Record, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Header{}, false, nil, err
	}
	return DecodeBytes(data, opts, workers)
}

// DecodeBytes is DecodeParallel over an in-memory trace.
func DecodeBytes(data []byte, opts DecodeOptions, workers int) (Header, bool, []Record, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if DetectFormat(data) == FormatBinary {
		return decodeBinaryBytes(data, opts, workers)
	}
	return decodeTextBytes(data, opts, workers)
}

// serialDecode is the fallback (and small-input) path: one pass through the
// ordinary reader for the format.
func serialDecode(data []byte, opts DecodeOptions) (Header, bool, []Record, error) {
	rd, _, err := OpenReader(bytes.NewReader(data), opts)
	if err != nil {
		return Header{}, false, nil, err
	}
	h, err := rd.Header()
	if err != nil && err != io.EOF {
		return h, rd.HasHeader(), nil, err
	}
	recs, err := rd.ReadAll()
	return h, rd.HasHeader(), recs, err
}

// ---- binary ----

// binaryBlock is one framed block located by the serial frame walk.
type binaryBlock struct {
	payload  []byte
	recCount int
	crc      uint32
	// aux marks a record-free block (auxiliary payload such as the
	// block-index footer): CRC-checked but never decoded.
	aux bool
	// decode results
	recs []Record
	err  error
}

// decodeBinaryBytes walks the frames serially, decodes payloads in
// parallel, and merges in order with serial-identical damage handling. Any
// frame-level damage (truncation, corrupt length fields — errors the
// serial reader cannot skip either) aborts the walk before OnError has
// fired for anything, so falling back to serialDecode reproduces
// BinaryReader's callbacks, error value and partial record prefix exactly.
func decodeBinaryBytes(data []byte, opts DecodeOptions, workers int) (Header, bool, []Record, error) {
	h, hasHdr, p, err := parseBinaryPreamble(data)
	if err != nil {
		return serialDecode(data, opts)
	}

	var blocks []binaryBlock
	for len(p) > 0 {
		payloadLen, n := binary.Uvarint(p)
		if n <= 0 {
			return serialDecode(data, opts)
		}
		p = p[n:]
		if payloadLen > maxBlockPayload {
			return serialDecode(data, opts)
		}
		recCount, n := binary.Uvarint(p)
		if n <= 0 {
			return serialDecode(data, opts)
		}
		p = p[n:]
		if recCount > payloadLen {
			return serialDecode(data, opts)
		}
		if len(p) < 4+int(payloadLen) {
			return serialDecode(data, opts)
		}
		crc := binary.LittleEndian.Uint32(p)
		p = p[4:]
		if recCount == 0 {
			// Auxiliary record-free block (e.g. the block-index footer):
			// CRC-check it in order like the serial reader, decode nothing.
			blocks = append(blocks, binaryBlock{payload: p[:payloadLen], recCount: 0, crc: crc, aux: true})
		} else {
			blocks = append(blocks, binaryBlock{payload: p[:payloadLen], recCount: int(recCount), crc: crc})
		}
		p = p[payloadLen:]
	}

	// The frame walk fixed every block's record count, so each block can
	// decode straight into its own region of one shared result slice —
	// workers never contend and the merge below only moves records when an
	// earlier block was dropped.
	offs := make([]int, len(blocks))
	total := 0
	for i := range blocks {
		offs[i] = total
		total += blocks[i].recCount
	}
	big := make([]Record, total)

	// Decode every block; damage is judged afterwards, in block order, so
	// OnError ordering and the bad budget match the serial reader.
	var next int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	if workers > len(blocks) {
		workers = len(blocks)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dec := blockDecoder{intern: NewInterner()}
			for {
				mu.Lock()
				i := int(next)
				next++
				mu.Unlock()
				if i >= len(blocks) {
					return
				}
				b := &blocks[i]
				if crc32.ChecksumIEEE(b.payload) != b.crc {
					b.err = ErrBlockChecksum
					continue
				}
				if b.aux {
					continue
				}
				out := big[offs[i] : offs[i] : offs[i]+b.recCount]
				b.recs, b.err = dec.decode(b.payload, b.recCount, out)
			}
		}()
	}
	wg.Wait()

	w := 0
	bad := 0
	for i := range blocks {
		b := &blocks[i]
		if b.aux {
			// Auxiliary record-free blocks lose no records when damaged;
			// the serial reader records the damage out of band and keeps
			// going, so a CRC failure here is not a decode error either.
			continue
		}
		if b.err == nil {
			if w != offs[i] {
				copy(big[w:], b.recs)
			}
			w += len(b.recs)
			continue
		}
		recs := big[:w]
		ble := &BadLineError{Line: i + 1, Err: b.err}
		if opts.OnError != nil {
			opts.OnError(ble.Line, "", ble.Err)
		}
		if opts.Mode != Lenient {
			return h, hasHdr, recs, ble
		}
		bad++
		if opts.MaxBadLines > 0 && bad > opts.MaxBadLines {
			return h, hasHdr, recs, fmt.Errorf("%w (bad-line budget %d exhausted)", ble, opts.MaxBadLines)
		}
	}
	return h, hasHdr, big[:w], nil
}

// ---- text ----

// errChunkBad aborts a chunk worker on the first malformed line; the caller
// then reruns the whole input serially to reproduce exact error semantics.
var errChunkBad = fmt.Errorf("trace: chunk contains a bad line")

// decodeTextBytes consumes the optional header serially, splits the rest at
// newline boundaries and parses chunks concurrently. Any bad line anywhere
// triggers the serial fallback.
func decodeTextBytes(data []byte, opts DecodeOptions, workers int) (Header, bool, []Record, error) {
	const minChunk = 64 * 1024
	if workers > len(data)/minChunk {
		workers = len(data) / minChunk
	}
	if workers < 2 {
		return serialDecode(data, opts)
	}

	// Consume leading blank lines and the optional START header; any
	// irregularity at the top (oversize first line, corrupt header) is the
	// serial path's business.
	var h Header
	hasHdr := false
	body := data
	maxLine := opts.maxLine()
	for {
		nl := bytes.IndexByte(body, '\n')
		line := body
		rest := []byte(nil)
		if nl >= 0 {
			line, rest = body[:nl], body[nl+1:]
		}
		if len(line) > maxLine {
			return serialDecode(data, opts)
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			if nl < 0 {
				return h, false, nil, nil // blank input
			}
			body = rest
			continue
		}
		if bytes.HasPrefix(line, []byte("START")) {
			hh, err := ParseHeader(string(line))
			if err != nil {
				return serialDecode(data, opts)
			}
			h, hasHdr = hh, true
			if nl < 0 {
				return h, true, nil, nil
			}
			body = rest
		}
		break
	}

	// Carve the body into newline-aligned chunks.
	bounds := make([]int, 0, workers+1)
	bounds = append(bounds, 0)
	for w := 1; w < workers; w++ {
		target := len(body) * w / workers
		if target <= bounds[len(bounds)-1] {
			continue
		}
		nl := bytes.IndexByte(body[target:], '\n')
		if nl < 0 {
			break
		}
		end := target + nl + 1
		if end > bounds[len(bounds)-1] {
			bounds = append(bounds, end)
		}
	}
	bounds = append(bounds, len(body))

	chunks := make([][]Record, len(bounds)-1)
	fail := false
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < len(bounds)-1; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			recs, err := parseChunk(body[bounds[i]:bounds[i+1]], maxLine)
			if err != nil {
				mu.Lock()
				fail = true
				mu.Unlock()
				return
			}
			chunks[i] = recs
		}(i)
	}
	wg.Wait()
	if fail {
		return serialDecode(data, opts)
	}
	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	recs := make([]Record, 0, total)
	for _, c := range chunks {
		recs = append(recs, c...)
	}
	return h, hasHdr, recs, nil
}

// parseChunk parses a newline-aligned slice of record lines with its own
// interner, failing fast on the first malformed or oversize line.
func parseChunk(chunk []byte, maxLine int) ([]Record, error) {
	in := NewInterner()
	var recs []Record
	for len(chunk) > 0 {
		nl := bytes.IndexByte(chunk, '\n')
		var line []byte
		if nl < 0 {
			line, chunk = chunk, nil
		} else {
			line, chunk = chunk[:nl], chunk[nl+1:]
		}
		if len(line) > maxLine {
			return nil, errChunkBad
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		rec, err := in.ParseRecord(line)
		if err != nil {
			return nil, errChunkBad
		}
		recs = append(recs, rec)
	}
	return recs, nil
}
