package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// FuzzParseRecord asserts the record parser never panics and that every
// accepted line round-trips: String() re-parses to an Equal record.
func FuzzParseRecord(f *testing.F) {
	seeds := []string{
		"S 000601040 4 main GV glScalar",
		"L 7ff0001b0 8 main",
		"S 0006010e0 8 foo GS glStructArray[0].d1",
		"M 7ff0001b8 4 main LV 0 1 i",
		"S 7ff0001b0 8 main LS 2 3 lcStrcArray[1].myArray[9]",
		"X 7ff0001a8 8 foo",
		"START PID 13063",
		"S 000601040 4 main GV",
		"q zz -1 f GV x",
		"S 000601040 99999999999999999999 main GV g",
		"",
		"   ",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseRecord(line)
		if err != nil {
			return
		}
		again, err2 := ParseRecord(rec.String())
		if err2 != nil {
			t.Fatalf("round trip rejected: %q -> %q: %v", line, rec.String(), err2)
		}
		if !again.Equal(&rec) {
			t.Fatalf("round trip changed record: %q -> %q -> %q", line, rec.String(), again.String())
		}
	})
}

// FuzzParseHeader asserts the header parser never panics and accepted
// headers round-trip.
func FuzzParseHeader(f *testing.F) {
	for _, s := range []string{"START PID 13063", "START PID -1", "START", "START PID x", ""} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		h, err := ParseHeader(line)
		if err != nil {
			return
		}
		if _, err2 := ParseHeader(h.String()); err2 != nil {
			t.Fatalf("round trip rejected: %q -> %q: %v", line, h.String(), err2)
		}
	})
}

// FuzzReader streams arbitrary bytes through both decoder modes: neither
// may panic, strict must stop at the first bad line, and lenient with an
// unlimited budget must always reach EOF.
func FuzzReader(f *testing.F) {
	f.Add("START PID 1\nS 000601040 4 main GV glScalar\n")
	f.Add("\x00\xff\nS 000601040 4\n\n")
	f.Add("START PID banana\nL 7ff0001b0 8 main\n")
	f.Fuzz(func(t *testing.T, src string) {
		strictRecs, _ := NewReader(strings.NewReader(src)).ReadAll()
		rd := NewReaderOptions(strings.NewReader(src), DecodeOptions{Mode: Lenient})
		lenRecs, err := rd.ReadAll()
		if err != nil {
			t.Fatalf("lenient decode with unlimited budget failed: %v", err)
		}
		if len(lenRecs) < len(strictRecs) {
			t.Fatalf("lenient recovered %d records, strict %d", len(lenRecs), len(strictRecs))
		}
	})
}

// FuzzCodecRoundTrip is the differential fuzzer for the two container
// formats: any text trace the lenient decoder accepts must survive a
// text → binary → text round trip byte-identically, and the byte-slice
// record parser must agree with the string parser on every input line.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add("START PID 13063\nS 000601040 4 main GV glScalar\nL 7ff0001b0 8 main\n")
	f.Add("S 0006010e0 8 foo GS glStructArray[0].d1\nM 7ff0001b8 4 main LV 0 1 i\n")
	f.Add("START PID -7\nX 7ff0001a8 8 foo\nS 7ff0001b0 8 main LS 2 3 a[1].b[9]\n")
	f.Add("junk\nS 000601040 4 main GV glScalar\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		// Differential check: the zero-alloc byte parser and the string
		// parser must accept the same lines and produce equal records.
		for _, line := range strings.Split(src, "\n") {
			rs, errS := ParseRecord(line)
			rb, errB := ParseRecordBytes([]byte(line))
			if (errS == nil) != (errB == nil) {
				t.Fatalf("parser disagreement on %q: string err=%v bytes err=%v", line, errS, errB)
			}
			if errS == nil && !rs.Equal(&rb) {
				t.Fatalf("parsers differ on %q: %q vs %q", line, rs.String(), rb.String())
			}
		}

		// Round trip: decode leniently, re-render as canonical text, then
		// push through the binary codec and back.
		rd := NewReaderOptions(strings.NewReader(src), DecodeOptions{Mode: Lenient})
		recs, err := rd.ReadAll()
		if err != nil {
			t.Fatalf("lenient decode: %v", err)
		}
		h, err := rd.Header()
		if err != nil {
			t.Fatalf("header: %v", err)
		}
		hasHdr := rd.HasHeader()

		var canon bytes.Buffer
		if err := writeTrace(&canon, h, hasHdr, recs, FormatText); err != nil {
			t.Fatalf("render text: %v", err)
		}

		var bin bytes.Buffer
		if err := writeTrace(&bin, h, hasHdr, recs, FormatBinary); err != nil {
			t.Fatalf("encode binary: %v", err)
		}
		br := NewBinaryReader(bytes.NewReader(bin.Bytes()))
		recs2, err := br.ReadAll()
		if err != nil {
			t.Fatalf("decode binary: %v", err)
		}
		h2, err := br.Header()
		if err != nil {
			t.Fatalf("binary header: %v", err)
		}
		if br.HasHeader() != hasHdr || (hasHdr && h2 != h) {
			t.Fatalf("header changed: %v/%v -> %v/%v", h, hasHdr, h2, br.HasHeader())
		}
		var canon2 bytes.Buffer
		if err := writeTrace(&canon2, h2, br.HasHeader(), recs2, FormatText); err != nil {
			t.Fatalf("re-render text: %v", err)
		}
		if !bytes.Equal(canon.Bytes(), canon2.Bytes()) {
			t.Fatalf("text -> binary -> text changed the trace:\nbefore: %q\nafter:  %q",
				canon.String(), canon2.String())
		}
	})
}

// writeTrace renders records in the given container format.
func writeTrace(w io.Writer, h Header, hasHdr bool, recs []Record, f FileFormat) error {
	tw := NewWriterFormat(w, f)
	if hasHdr {
		if err := tw.WriteHeader(h); err != nil {
			return err
		}
	}
	for i := range recs {
		if err := tw.Write(&recs[i]); err != nil {
			return err
		}
	}
	return tw.Flush()
}
