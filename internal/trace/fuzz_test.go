package trace

import (
	"strings"
	"testing"
)

// FuzzParseRecord asserts the record parser never panics and that every
// accepted line round-trips: String() re-parses to an Equal record.
func FuzzParseRecord(f *testing.F) {
	seeds := []string{
		"S 000601040 4 main GV glScalar",
		"L 7ff0001b0 8 main",
		"S 0006010e0 8 foo GS glStructArray[0].d1",
		"M 7ff0001b8 4 main LV 0 1 i",
		"S 7ff0001b0 8 main LS 2 3 lcStrcArray[1].myArray[9]",
		"X 7ff0001a8 8 foo",
		"START PID 13063",
		"S 000601040 4 main GV",
		"q zz -1 f GV x",
		"S 000601040 99999999999999999999 main GV g",
		"",
		"   ",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseRecord(line)
		if err != nil {
			return
		}
		again, err2 := ParseRecord(rec.String())
		if err2 != nil {
			t.Fatalf("round trip rejected: %q -> %q: %v", line, rec.String(), err2)
		}
		if !again.Equal(&rec) {
			t.Fatalf("round trip changed record: %q -> %q -> %q", line, rec.String(), again.String())
		}
	})
}

// FuzzParseHeader asserts the header parser never panics and accepted
// headers round-trip.
func FuzzParseHeader(f *testing.F) {
	for _, s := range []string{"START PID 13063", "START PID -1", "START", "START PID x", ""} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, line string) {
		h, err := ParseHeader(line)
		if err != nil {
			return
		}
		if _, err2 := ParseHeader(h.String()); err2 != nil {
			t.Fatalf("round trip rejected: %q -> %q: %v", line, h.String(), err2)
		}
	})
}

// FuzzReader streams arbitrary bytes through both decoder modes: neither
// may panic, strict must stop at the first bad line, and lenient with an
// unlimited budget must always reach EOF.
func FuzzReader(f *testing.F) {
	f.Add("START PID 1\nS 000601040 4 main GV glScalar\n")
	f.Add("\x00\xff\nS 000601040 4\n\n")
	f.Add("START PID banana\nL 7ff0001b0 8 main\n")
	f.Fuzz(func(t *testing.T, src string) {
		strictRecs, _ := NewReader(strings.NewReader(src)).ReadAll()
		rd := NewReaderOptions(strings.NewReader(src), DecodeOptions{Mode: Lenient})
		lenRecs, err := rd.ReadAll()
		if err != nil {
			t.Fatalf("lenient decode with unlimited budget failed: %v", err)
		}
		if len(lenRecs) < len(strictRecs) {
			t.Fatalf("lenient recovered %d records, strict %d", len(lenRecs), len(strictRecs))
		}
	})
}
