package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// stutterReader returns its data and then a persistent non-EOF error — the
// shape of a faltering pipe or a torn network read.
type stutterReader struct {
	data []byte
	err  error
	off  int
}

func (r *stutterReader) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, r.err
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// TestOpenReaderShortInput: inputs shorter than the binary magic sniff as
// text instead of failing the open — including the empty input, which
// decodes to zero records.
func TestOpenReaderShortInput(t *testing.T) {
	for _, in := range []string{"", "L", "L 7ff"} {
		rd, format, err := OpenReader(strings.NewReader(in), DecodeOptions{})
		if err != nil {
			t.Fatalf("input %q: OpenReader error %v", in, err)
		}
		if format != FormatText {
			t.Fatalf("input %q: format = %v, want text", in, format)
		}
		recs, err := rd.ReadAll()
		if in == "" {
			if err != nil || len(recs) != 0 {
				t.Fatalf("empty input: recs=%d err=%v", len(recs), err)
			}
		} else if err == nil {
			// The malformed content must still fail loudly downstream.
			t.Fatalf("input %q: expected a decode error, got %d records", in, len(recs))
		}
	}
}

// TestOpenReaderShortReadError: a reader that yields a short prefix and
// then a non-EOF error must still open (sniffing as text); the I/O error
// resurfaces during decoding, not as a bare Peek failure at open time.
func TestOpenReaderShortReadError(t *testing.T) {
	ioErr := errors.New("torn read")
	rd, format, err := OpenReader(&stutterReader{data: []byte("L 7"), err: ioErr}, DecodeOptions{})
	if err != nil {
		t.Fatalf("OpenReader = %v, want short read tolerated", err)
	}
	if format != FormatText {
		t.Fatalf("format = %v, want text", format)
	}
	if _, err := rd.ReadAll(); !errors.Is(err, ioErr) {
		t.Fatalf("ReadAll error = %v, want the underlying %v surfaced", err, ioErr)
	}
}

// TestOpenReaderEmptyError: with no bytes at all and a non-EOF failure,
// the open itself reports the error — text decoding could not start
// either.
func TestOpenReaderEmptyError(t *testing.T) {
	ioErr := errors.New("device gone")
	if _, _, err := OpenReader(&stutterReader{err: ioErr}, DecodeOptions{}); !errors.Is(err, ioErr) {
		t.Fatalf("OpenReader = %v, want %v", err, ioErr)
	}
}

// TestOpenReaderBinary: a binary stream still sniffs as binary (the fix
// must not regress format detection).
func TestOpenReaderBinary(t *testing.T) {
	h, recs := sampleRecords(t)
	data := encodeBinary(t, &h, recs, 0)
	rd, format, err := OpenReader(bytes.NewReader(data), DecodeOptions{})
	if err != nil || format != FormatBinary {
		t.Fatalf("format=%v err=%v", format, err)
	}
	got, err := rd.ReadAll()
	if err != nil || len(got) != len(recs) {
		t.Fatalf("recs=%d err=%v", len(got), err)
	}
	if _, err := rd.Read(); err != io.EOF {
		t.Fatalf("Read after end = %v, want EOF", err)
	}
}
