// Zero-allocation text codec: the byte-level record parser and renderer
// behind Reader and Writer. ParseRecordBytes is the canonical grammar for a
// trace line (ParseRecord delegates to it); an Interner adds per-stream
// string caches so that steady-state decoding of a trace with a bounded
// symbol population performs no per-record allocations at all.
package trace

import (
	"fmt"
	"strconv"

	"tracedst/internal/ctype"
)

// ParseRecordBytes parses one trace line held as bytes. It accepts exactly
// the grammar ParseRecord documents and allocates only the record's own
// strings (Func, Var); use an Interner to amortize those across a stream.
func ParseRecordBytes(line []byte) (Record, error) {
	return parseRecordBytes(line, nil)
}

// AppendText appends the record, formatted exactly as Gleipnir writes it
// (and exactly as String returns it), to dst and returns the extended
// slice. It performs no allocations beyond growing dst.
func (r *Record) AppendText(dst []byte) []byte {
	dst = append(dst, byte(r.Op), ' ')
	dst = appendHex9(dst, r.Addr)
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, r.Size, 10)
	dst = append(dst, ' ')
	dst = append(dst, r.Func...)
	if !r.HasSym {
		return dst
	}
	sc := byte('V')
	if r.Aggregate {
		sc = 'S'
	}
	dst = append(dst, ' ', byte(r.Vis), sc)
	if r.Vis == Local {
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, int64(r.Frame), 10)
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, int64(r.Thread), 10)
	}
	dst = append(dst, ' ')
	return r.Var.AppendText(dst)
}

// appendHex9 appends addr as lowercase hex, zero-padded to at least 9
// digits (the Gleipnir fixed-width address column).
func appendHex9(dst []byte, addr uint64) []byte {
	var tmp [16]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = "0123456789abcdef"[addr&0xf]
		addr >>= 4
		if addr == 0 {
			break
		}
	}
	for len(tmp)-i < 9 {
		i--
		tmp[i] = '0'
	}
	return append(dst, tmp[i:]...)
}

// maxInternedStrings caps each intern table so a pathological trace with an
// unbounded symbol population degrades to plain allocation instead of
// holding every distinct string alive.
const maxInternedStrings = 1 << 20

// Interner caches the strings a trace decoder produces — function names and
// variable access expressions — so that decoding a stream with a bounded
// symbol population settles at zero allocations per record. Cached access
// expressions share their parsed Path across records; records from an
// interning decoder must therefore be treated as read-only (which every
// consumer in this repository already does — transformations build fresh
// paths). An Interner is not safe for concurrent use; give each decoding
// goroutine its own.
type Interner struct {
	funcs map[string]string
	vars  map[string]ctype.AccessExpr
}

// NewInterner returns an empty intern table set.
func NewInterner() *Interner {
	return &Interner{
		funcs: make(map[string]string),
		vars:  make(map[string]ctype.AccessExpr),
	}
}

// ParseRecord parses one trace line, interning Func and Var through the
// table. The line bytes are not retained.
func (in *Interner) ParseRecord(line []byte) (Record, error) {
	return parseRecordBytes(line, in)
}

// internFunc returns the cached string for b, adding it on first sight.
func (in *Interner) internFunc(b []byte) string {
	if s, ok := in.funcs[string(b)]; ok {
		return s
	}
	s := string(b)
	if len(in.funcs) < maxInternedStrings {
		in.funcs[s] = s
	}
	return s
}

// internFuncString is internFunc for callers that already hold a string
// (the binary decoder's block string tables).
func (in *Interner) internFuncString(s string) string {
	if c, ok := in.funcs[s]; ok {
		return c
	}
	if len(in.funcs) < maxInternedStrings {
		in.funcs[s] = s
	}
	return s
}

// internVar returns the cached parsed access expression for b, parsing and
// adding it on first sight. The returned expression shares its Path with
// every other record carrying the same spelling.
func (in *Interner) internVar(b []byte) (ctype.AccessExpr, error) {
	if v, ok := in.vars[string(b)]; ok {
		return v, nil
	}
	return in.internVarString(string(b))
}

// internVarString is internVar for callers that already hold a string (the
// binary decoder's block string tables).
func (in *Interner) internVarString(s string) (ctype.AccessExpr, error) {
	if v, ok := in.vars[s]; ok {
		return v, nil
	}
	v, err := ctype.ParseAccess(s)
	if err != nil {
		return v, err
	}
	if len(in.vars) < maxInternedStrings {
		in.vars[s] = v
	}
	return v, nil
}

// maxRecordFields is the widest legal record: op addr size func scope frame
// thread var. One extra slot catches trailing junk without scanning it.
const maxRecordFields = 8

// splitFields splits line on ASCII whitespace into at most len(dst) fields,
// returning the field count, or -1 when there are more than len(dst)-1
// fields (too many to be a record).
func splitFields(line []byte, dst *[maxRecordFields + 1][]byte) int {
	n := 0
	i := 0
	for {
		for i < len(line) && isASCIISpace(line[i]) {
			i++
		}
		if i == len(line) {
			return n
		}
		if n == len(dst) {
			return -1
		}
		j := i
		for j < len(line) && !isASCIISpace(line[j]) {
			j++
		}
		dst[n] = line[i:j]
		n++
		i = j
	}
}

func isASCIISpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'
}

// parseRecordBytes is the shared parser; in == nil allocates fresh strings.
func parseRecordBytes(line []byte, in *Interner) (Record, error) {
	var r Record
	var fields [maxRecordFields + 1][]byte
	nf := splitFields(line, &fields)
	if nf < 0 {
		return r, fmt.Errorf("trace: trailing fields in %q", line)
	}
	if nf < 4 {
		return r, fmt.Errorf("trace: short record %q", line)
	}
	if len(fields[0]) != 1 {
		return r, fmt.Errorf("trace: bad op %q in %q", fields[0], line)
	}
	r.Op = Op(fields[0][0])
	if !r.Op.Valid() {
		return r, fmt.Errorf("trace: bad op %q in %q", fields[0], line)
	}
	addr, ok := parseHex(fields[1])
	if !ok {
		return r, fmt.Errorf("trace: bad address %q in %q", fields[1], line)
	}
	r.Addr = addr
	size, ok := parseInt(fields[2])
	if !ok || size < 0 {
		return r, fmt.Errorf("trace: bad size %q in %q", fields[2], line)
	}
	r.Size = size
	if in != nil {
		r.Func = in.internFunc(fields[3])
	} else {
		r.Func = string(fields[3])
	}
	if nf == 4 {
		return r, nil
	}
	scope := fields[4]
	if len(scope) != 2 || (scope[0] != 'G' && scope[0] != 'L') || (scope[1] != 'V' && scope[1] != 'S') {
		return r, fmt.Errorf("trace: bad scope %q in %q", scope, line)
	}
	r.HasSym = true
	r.Vis = Visibility(scope[0])
	r.Aggregate = scope[1] == 'S'
	varIdx := 5
	if r.Vis == Local {
		if nf != 8 {
			return r, fmt.Errorf("trace: local record needs frame, thread, var: %q", line)
		}
		frame, ok := parseInt(fields[5])
		if !ok {
			return r, fmt.Errorf("trace: bad frame %q in %q", fields[5], line)
		}
		thread, ok := parseInt(fields[6])
		if !ok {
			return r, fmt.Errorf("trace: bad thread %q in %q", fields[6], line)
		}
		r.Frame, r.Thread = int(frame), int(thread)
		varIdx = 7
	} else if nf != 6 {
		return r, fmt.Errorf("trace: expected variable name at end of %q", line)
	}
	var v ctype.AccessExpr
	var err error
	if in != nil {
		v, err = in.internVar(fields[varIdx])
	} else {
		v, err = ctype.ParseAccess(string(fields[varIdx]))
	}
	if err != nil {
		return r, fmt.Errorf("trace: %v in %q", err, line)
	}
	r.Var = v
	return r, nil
}

// parseHex parses an unsigned hex field (no 0x prefix, no sign).
func parseHex(b []byte) (uint64, bool) {
	if len(b) == 0 || len(b) > 16 {
		return 0, false
	}
	var v uint64
	for _, c := range b {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// parseInt parses a decimal integer field with an optional leading minus
// (frame/thread fields historically admitted negative values; semantic
// checks flag them downstream).
func parseInt(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	if b[0] == '-' {
		neg = true
		b = b[1:]
		if len(b) == 0 {
			return 0, false
		}
	}
	if len(b) > 19 {
		return 0, false
	}
	var v int64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
		if v < 0 {
			return 0, false
		}
	}
	if neg {
		v = -v
	}
	return v, true
}
