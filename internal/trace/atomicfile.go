package trace

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// AtomicFile writes a file crash-safely: bytes accumulate in a hidden
// temporary file in the destination directory and only a successful Commit
// renames it over the final path. A run interrupted mid-write — SIGKILL,
// panic, full disk — leaves the previous file contents (or no file) behind,
// never a truncated one. Rename is atomic on POSIX filesystems when source
// and destination share a directory, which the temp-file placement
// guarantees.
type AtomicFile struct {
	f      *os.File
	path   string
	closed bool
}

// CreateAtomic starts an atomic write of path. The caller must finish with
// Commit (publish) or Abort (discard); deferring Abort is safe after a
// successful Commit.
func CreateAtomic(path string) (*AtomicFile, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return nil, err
	}
	return &AtomicFile{f: f, path: path}, nil
}

// Write implements io.Writer.
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// Commit flushes the temporary file to stable storage and atomically
// renames it over the destination path.
func (a *AtomicFile) Commit() error {
	if a.closed {
		return fmt.Errorf("trace: atomic file %s already closed", a.path)
	}
	a.closed = true
	tmp := a.f.Name()
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(tmp)
		return err
	}
	if err := a.f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, a.path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Abort discards the temporary file. It is a no-op after Commit (or a
// previous Abort), so "defer a.Abort()" pairs safely with a conditional
// Commit.
func (a *AtomicFile) Abort() {
	if a.closed {
		return
	}
	a.closed = true
	tmp := a.f.Name()
	a.f.Close()
	os.Remove(tmp)
}

// WriteFileAtomic is the os.WriteFile shape of CreateAtomic: the
// destination either keeps its old contents or holds exactly data, never a
// prefix of it.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	a, err := CreateAtomic(path)
	if err != nil {
		return err
	}
	defer a.Abort()
	if _, err := a.Write(data); err != nil {
		return err
	}
	if err := a.f.Chmod(perm); err != nil {
		return err
	}
	return a.Commit()
}

// WriteToAtomic streams write's output into an atomic write of path.
func WriteToAtomic(path string, write func(w io.Writer) error) error {
	a, err := CreateAtomic(path)
	if err != nil {
		return err
	}
	defer a.Abort()
	if err := write(a); err != nil {
		return err
	}
	return a.Commit()
}
