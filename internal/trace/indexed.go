// Indexed (seekable, shardable) access to binary traces. An IndexedTrace
// mmaps a .glb file and resolves its block index — from the optional
// footer when the writer emitted one, otherwise by one cheap frame walk
// (two varints plus a skip per block, no payload decoding). Block ranges
// then decode independently as RecordSources straight out of the mapping,
// so N workers can simulate disjoint shards of a trace far larger than RAM
// and merge their statistics.
package trace

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// IndexedTrace is a binary trace opened for random block access.
type IndexedTrace struct {
	data      []byte
	unmap     func() error
	header    Header
	hasHdr    bool
	index     BlockIndex
	footer    bool  // index came from a footer rather than a scan
	footerErr error // why the footer was unusable (damage), nil otherwise
}

// parseBinaryPreamble decodes the fixed preamble of an in-memory binary
// trace (the magic must already have been verified) and returns the
// header, whether one was present, and the body following the preamble.
func parseBinaryPreamble(data []byte) (h Header, hasHdr bool, body []byte, err error) {
	p := data[BinaryMagicLen:]
	if len(p) < 1 {
		return Header{}, false, nil, fmt.Errorf("trace: short binary preamble: %w", io.ErrUnexpectedEOF)
	}
	flags := p[0]
	p = p[1:]
	pid, n := binary.Varint(p)
	if n <= 0 {
		return Header{}, false, nil, fmt.Errorf("trace: bad binary preamble pid")
	}
	p = p[n:]
	hasHdr = flags&1 != 0
	if hasHdr {
		h = Header{PID: int(pid)}
	}
	return h, hasHdr, p, nil
}

// OpenIndexed maps path and resolves its block index. The file must be a
// binary (.glb) trace; text traces have no block structure to seek in.
func OpenIndexed(path string) (*IndexedTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, unmap, err := mmapFile(f, st.Size())
	if err != nil {
		return nil, err
	}
	t, err := NewIndexedBytes(data)
	if err != nil {
		unmap()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	t.unmap = unmap
	return t, nil
}

// NewIndexedBytes is OpenIndexed over an in-memory trace (tests, network
// buffers). Close is a no-op.
func NewIndexedBytes(data []byte) (*IndexedTrace, error) {
	if DetectFormat(data) != FormatBinary {
		return nil, fmt.Errorf("trace: indexed access requires the binary format")
	}
	h, hasHdr, body, err := parseBinaryPreamble(data)
	if err != nil {
		return nil, err
	}
	t := &IndexedTrace{data: data, header: h, hasHdr: hasHdr}
	ix, err := parseFooter(data)
	if err != nil {
		// The footer is an optimization over data blocks that are still
		// intact, so footer damage degrades to a frame scan, not failure.
		t.footerErr = err
		ix = nil
	}
	if ix != nil {
		for i, off := range ix.Offsets {
			if off < int64(len(data)-len(body)) {
				t.footerErr = fmt.Errorf("trace: block-index footer: offset %d inside preamble in entry %d", off, i)
				ix = nil
				break
			}
		}
	}
	if ix != nil {
		t.index = *ix
		t.footer = true
		return t, nil
	}
	if err := t.scanIndex(body, int64(len(data)-len(body))); err != nil {
		return nil, err
	}
	return t, nil
}

// scanIndex builds the index by walking the frames, skipping record-free
// blocks (auxiliary payloads carry no records to shard over).
func (t *IndexedTrace) scanIndex(p []byte, off int64) error {
	ord := 0
	for len(p) > 0 {
		ord++
		start := off
		payloadLen, n := binary.Uvarint(p)
		if n <= 0 {
			return fmt.Errorf("trace: block %d: bad frame: %w", ord, io.ErrUnexpectedEOF)
		}
		p = p[n:]
		off += int64(n)
		if payloadLen > maxBlockPayload {
			return fmt.Errorf("trace: block %d: payload length %d exceeds limit", ord, payloadLen)
		}
		recCount, n := binary.Uvarint(p)
		if n <= 0 {
			return fmt.Errorf("trace: block %d: bad frame: %w", ord, io.ErrUnexpectedEOF)
		}
		p = p[n:]
		off += int64(n)
		if recCount > payloadLen {
			return fmt.Errorf("trace: block %d: record count %d exceeds payload %d", ord, recCount, payloadLen)
		}
		if len(p) < 4+int(payloadLen) {
			if recCount == 0 {
				// A record-free auxiliary block (e.g. the block-index
				// footer) torn off at the end of the file: every data
				// block scanned so far is intact, so salvage them.
				if t.footerErr == nil {
					t.footerErr = fmt.Errorf("trace: block %d: truncated record-free block: %w", ord, io.ErrUnexpectedEOF)
				}
				return nil
			}
			return fmt.Errorf("trace: block %d: truncated payload: %w", ord, io.ErrUnexpectedEOF)
		}
		p = p[4+payloadLen:]
		off += 4 + int64(payloadLen)
		if recCount == 0 {
			continue
		}
		t.index.Offsets = append(t.index.Offsets, start)
		t.index.Counts = append(t.index.Counts, int64(recCount))
		t.index.Records += int64(recCount)
	}
	return nil
}

// Close unmaps the file. The IndexedTrace and every RecordSource derived
// from it are invalid afterwards.
func (t *IndexedTrace) Close() error {
	if t.unmap == nil {
		return nil
	}
	u := t.unmap
	t.unmap = nil
	t.data = nil
	return u()
}

// Header returns the trace header (zero when absent).
func (t *IndexedTrace) Header() (Header, error) { return t.header, nil }

// HasHeader reports whether the trace carried a START header.
func (t *IndexedTrace) HasHeader() bool { return t.hasHdr }

// HasFooter reports whether the index came from a writer-emitted footer
// (false means it was rebuilt by a frame scan).
func (t *IndexedTrace) HasFooter() bool { return t.footer }

// FooterErr returns why a present-but-damaged block-index footer was
// discarded in favor of a frame scan (nil for a healthy footer or an
// unindexed trace). The index is still fully usable; the error exists so
// diagnostics like glcheck can surface the damage.
func (t *IndexedTrace) FooterErr() error { return t.footerErr }

// NumBlocks returns how many data blocks the trace holds.
func (t *IndexedTrace) NumBlocks() int { return t.index.NumBlocks() }

// Records returns the total record count across all blocks.
func (t *IndexedTrace) Records() int64 { return t.index.Records }

// Bytes returns the mapped file size.
func (t *IndexedTrace) Bytes() int64 { return int64(len(t.data)) }

// Index returns a copy of the block index.
func (t *IndexedTrace) Index() BlockIndex {
	return BlockIndex{
		Offsets: append([]int64(nil), t.index.Offsets...),
		Counts:  append([]int64(nil), t.index.Counts...),
		Records: t.index.Records,
	}
}

// Source returns a RecordSource over blocks [lo, hi) decoding straight
// from the mapping. Damage semantics follow opts exactly as in the serial
// reader, with BadLineError.Line carrying the 1-based position among the
// trace's data blocks. Sources over disjoint ranges are independent and
// safe to drive from different goroutines.
func (t *IndexedTrace) Source(lo, hi int, opts DecodeOptions) RecordSource {
	if lo < 0 {
		lo = 0
	}
	if hi > t.NumBlocks() {
		hi = t.NumBlocks()
	}
	return &blockRangeSource{
		t:    t,
		opts: opts,
		cur:  lo,
		hi:   hi,
		dec:  blockDecoder{intern: NewInterner()},
	}
}

// BlockChecksums returns the stored CRC32 (IEEE) of every data block, in
// block order, read straight from the frame headers without decoding any
// payload. Together with the preamble and record count they identify the
// trace's content — the cheap content hash simcache keys .glb files by.
func (t *IndexedTrace) BlockChecksums() ([]uint32, error) {
	sums := make([]uint32, 0, t.NumBlocks())
	for i := 0; i < t.NumBlocks(); i++ {
		framed, _, err := t.frameAt(i)
		if err != nil {
			return nil, err
		}
		sums = append(sums, binary.LittleEndian.Uint32(framed[:4]))
	}
	return sums, nil
}

// ShardRanges splits the data blocks into up to n contiguous ranges of
// near-equal record count — the work division for sharded simulation. It
// returns [lo, hi) block-index pairs; fewer than n when the trace has
// fewer blocks.
func (t *IndexedTrace) ShardRanges(n int) [][2]int {
	nb := t.NumBlocks()
	if n < 1 {
		n = 1
	}
	if n > nb {
		n = nb
	}
	if n == 0 {
		return nil
	}
	ranges := make([][2]int, 0, n)
	target := t.index.Records / int64(n)
	lo := 0
	var acc int64
	for i := 0; i < nb; i++ {
		acc += t.index.Counts[i]
		// Close the shard once it reaches its share, keeping enough blocks
		// back for the remaining shards.
		if len(ranges) < n-1 && acc >= target && nb-i-1 >= n-len(ranges)-1 {
			ranges = append(ranges, [2]int{lo, i + 1})
			lo = i + 1
			acc = 0
		}
	}
	ranges = append(ranges, [2]int{lo, nb})
	return ranges
}

// blockRangeSource decodes a contiguous block range out of the mapping.
type blockRangeSource struct {
	t    *IndexedTrace
	opts DecodeOptions
	cur  int
	hi   int
	dec  blockDecoder
	recs []Record
	bad  int
	err  error
}

func (s *blockRangeSource) Header() (Header, error) { return s.t.header, nil }
func (s *blockRangeSource) HasHeader() bool         { return s.t.hasHdr }
func (s *blockRangeSource) BadLines() int           { return s.bad }

// badBlock mirrors BinaryReader.badBlock for a damaged block at index i.
func (s *blockRangeSource) badBlock(i int, err error) (bool, error) {
	ble := &BadLineError{Line: i + 1, Err: err}
	if s.opts.OnError != nil {
		s.opts.OnError(ble.Line, "", ble.Err)
	}
	if s.opts.Mode != Lenient {
		return false, ble
	}
	s.bad++
	if s.opts.MaxBadLines > 0 && s.bad > s.opts.MaxBadLines {
		return false, fmt.Errorf("%w (bad-line budget %d exhausted)", ble, s.opts.MaxBadLines)
	}
	return true, nil
}

func (s *blockRangeSource) NextBatch() ([]Record, error) {
	if s.err != nil {
		return nil, s.err
	}
	for s.cur < s.hi {
		i := s.cur
		s.cur++
		payload, recCount, err := s.t.frameAt(i)
		if err != nil {
			s.err = err
			return nil, err
		}
		if derr := s.checkAndDecode(payload, recCount); derr != nil {
			if ok, lerr := s.badBlock(i, derr); ok {
				continue
			} else {
				s.err = lerr
				return nil, lerr
			}
		}
		if len(s.recs) == 0 {
			continue
		}
		return s.recs, nil
	}
	s.err = io.EOF
	return nil, io.EOF
}

// checkAndDecode CRC-checks a payload (whose expected CRC the frame
// carries just before it) and decodes it into s.recs.
func (s *blockRangeSource) checkAndDecode(framed []byte, recCount int) error {
	crc := binary.LittleEndian.Uint32(framed[:4])
	payload := framed[4:]
	if crc32.ChecksumIEEE(payload) != crc {
		return ErrBlockChecksum
	}
	recs, err := s.dec.decode(payload, recCount, s.recs[:0])
	s.recs = recs
	return err
}

// frameAt parses the frame of data block i and returns its crc+payload
// bytes (crc in the first 4 bytes) and record count.
func (t *IndexedTrace) frameAt(i int) ([]byte, int, error) {
	off := t.index.Offsets[i]
	if off < 0 || off >= int64(len(t.data)) {
		return nil, 0, fmt.Errorf("trace: block %d: index offset %d out of range", i+1, off)
	}
	p := t.data[off:]
	payloadLen, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, 0, fmt.Errorf("trace: block %d: bad frame: %w", i+1, io.ErrUnexpectedEOF)
	}
	p = p[n:]
	if payloadLen > maxBlockPayload {
		return nil, 0, fmt.Errorf("trace: block %d: payload length %d exceeds limit", i+1, payloadLen)
	}
	recCount, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, 0, fmt.Errorf("trace: block %d: bad frame: %w", i+1, io.ErrUnexpectedEOF)
	}
	p = p[n:]
	if recCount > payloadLen {
		return nil, 0, fmt.Errorf("trace: block %d: record count %d exceeds payload %d", i+1, recCount, payloadLen)
	}
	if int64(recCount) != t.index.Counts[i] {
		return nil, 0, fmt.Errorf("trace: block %d: frame says %d records, index says %d", i+1, recCount, t.index.Counts[i])
	}
	if len(p) < 4+int(payloadLen) {
		return nil, 0, fmt.Errorf("trace: block %d: truncated payload: %w", i+1, io.ErrUnexpectedEOF)
	}
	return p[:4+payloadLen], int(recCount), nil
}
