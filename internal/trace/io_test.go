package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

const sampleTrace = `START PID 13063
S 7ff0001b0 8 main LV 0 1 _zzq_result
L 7ff0001b0 8 main
S 000601040 4 main GV glScalar
S 7ff0001bc 4 main LV 0 1 lcScalar
S 0006010e0 8 foo GS glStructArray[0].d1
M 7ff0001b8 4 main LV 0 1 i
`

func TestReaderBasics(t *testing.T) {
	rd := NewReader(strings.NewReader(sampleTrace))
	h, err := rd.Header()
	if err != nil {
		t.Fatal(err)
	}
	if h.PID != 13063 {
		t.Errorf("pid = %d", h.PID)
	}
	recs, err := rd.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[2].Var.Root != "glScalar" {
		t.Errorf("record 2 = %+v", recs[2])
	}
	if recs[4].Var.String() != "glStructArray[0].d1" {
		t.Errorf("record 4 var = %q", recs[4].Var)
	}
}

func TestReaderNoHeader(t *testing.T) {
	rd := NewReader(strings.NewReader("S 000601040 4 main GV glScalar\n"))
	h, err := rd.Header()
	if err != nil {
		t.Fatal(err)
	}
	if h.PID != 0 {
		t.Errorf("pid = %d", h.PID)
	}
	recs, err := rd.ReadAll()
	if err != nil || len(recs) != 1 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
}

func TestReaderSkipsBlankLines(t *testing.T) {
	src := "START PID 1\n\nS 000601040 4 main GV glScalar\n\n\nL 000601040 4 main GV glScalar\n"
	_, recs, err := ParseAll(src)
	if err != nil || len(recs) != 2 {
		t.Fatalf("recs=%d err=%v", len(recs), err)
	}
}

func TestReaderEmptyInput(t *testing.T) {
	rd := NewReader(strings.NewReader(""))
	if _, err := rd.Read(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
	// Header on empty input returns zero header, no error.
	rd2 := NewReader(strings.NewReader(""))
	if h, err := rd2.Header(); err != nil || h.PID != 0 {
		t.Errorf("header on empty: %v %v", h, err)
	}
}

func TestReaderBadLineReportsLineNumber(t *testing.T) {
	src := "START PID 1\nS 000601040 4 main GV glScalar\nBOGUS LINE HERE ZZ\n"
	rd := NewReader(strings.NewReader(src))
	if _, err := rd.Read(); err != nil {
		t.Fatal(err)
	}
	_, err := rd.Read()
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("err = %v, want line 3 mention", err)
	}
	// Error is sticky.
	if _, err2 := rd.Read(); err2 != err {
		t.Errorf("error not sticky: %v vs %v", err2, err)
	}
}

func TestWriterRoundTrip(t *testing.T) {
	h, recs, err := ParseAll(sampleTrace)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	wr := NewWriter(&buf)
	if err := wr.WriteHeader(h); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := wr.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := wr.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != sampleTrace {
		t.Errorf("round trip mismatch:\n got %q\nwant %q", buf.String(), sampleTrace)
	}
	if wr.Records() != len(recs) {
		t.Errorf("Records() = %d", wr.Records())
	}
}

func TestWriterHeaderTwice(t *testing.T) {
	wr := NewWriter(io.Discard)
	if err := wr.WriteHeader(Header{PID: 1}); err != nil {
		t.Fatal(err)
	}
	if err := wr.WriteHeader(Header{PID: 2}); err == nil {
		t.Error("second header accepted")
	}
}

func TestWriterHeaderAfterRecords(t *testing.T) {
	wr := NewWriter(io.Discard)
	r, _ := ParseRecord("L 7ff0001b0 8 main")
	if err := wr.Write(&r); err != nil {
		t.Fatal(err)
	}
	if err := wr.WriteHeader(Header{PID: 1}); err == nil {
		t.Error("header after records accepted")
	}
}

func TestFormatMatchesWriter(t *testing.T) {
	h, recs, err := ParseAll(sampleTrace)
	if err != nil {
		t.Fatal(err)
	}
	if Format(h, recs) != sampleTrace {
		t.Error("Format mismatch")
	}
}

func TestParseAllError(t *testing.T) {
	if _, _, err := ParseAll("START PID 1\ngarbage here zz\n"); err == nil {
		t.Error("garbage accepted")
	}
}
