// Batch-streaming trace consumption. RecordSource is the iterator contract
// the streaming pipeline (xform, dinero, the CLI front ends) consumes:
// records arrive in batches whose backing storage is reused between calls,
// so a pipeline stage holds O(batch) records live no matter how large the
// trace is. Sources wrap the serial readers (NewSource), in-memory slices
// (SliceSource) and mmap-backed block ranges (IndexedTrace.Source), all
// with the same strict/lenient BadLineError semantics as the readers they
// are built from.
package trace

import "io"

// DefaultBatchRecords is the batch size streaming consumers use when the
// caller does not specify one. It matches DefaultBlockRecords so binary
// traces stream block-at-a-time with no copying or re-batching.
const DefaultBatchRecords = DefaultBlockRecords

// RecordSource yields a trace as a sequence of record batches.
//
// NextBatch returns a non-empty batch with a nil error, or a nil batch
// with io.EOF at a clean end of stream, or a nil batch with the decoding
// error that stopped the stream (sticky: subsequent calls return it
// again). The returned slice is only valid until the next NextBatch call —
// consumers that need records to outlive the call must copy them.
type RecordSource interface {
	// Header returns the trace header (zero when the source had none).
	Header() (Header, error)
	// HasHeader reports whether the trace carried a START header;
	// meaningful after Header or the first NextBatch.
	HasHeader() bool
	// NextBatch returns the next batch of records (see the interface
	// comment for the contract).
	NextBatch() ([]Record, error)
	// BadLines returns how many damaged units (lines or blocks) were
	// skipped so far in lenient mode.
	BadLines() int
}

// NewSource adapts a serial reader into a RecordSource. batch <= 0 selects
// DefaultBatchRecords. A *BinaryReader streams zero-copy: NextBatch hands
// out each decoded block directly (the batch parameter is ignored and
// batches are block-sized), so no per-record copying happens between the
// decoder and the consumer.
func NewSource(rd RecordReader, batch int) RecordSource {
	if br, ok := rd.(*BinaryReader); ok {
		return &blockSource{rd: br}
	}
	if batch <= 0 {
		batch = DefaultBatchRecords
	}
	return &readerSource{rd: rd, buf: make([]Record, batch)}
}

// OpenSource sniffs r's container format (like OpenReader) and returns a
// streaming source over it: block-at-a-time for binary traces, batch-sized
// line chunks for text. batch <= 0 selects DefaultBatchRecords.
func OpenSource(r io.Reader, opts DecodeOptions, batch int) (RecordSource, FileFormat, error) {
	rd, format, err := OpenReader(r, opts)
	if err != nil {
		return nil, format, err
	}
	return NewSource(rd, batch), format, nil
}

// readerSource batches any RecordReader through a reusable buffer.
type readerSource struct {
	rd  RecordReader
	buf []Record
}

func (s *readerSource) Header() (Header, error) { return s.rd.Header() }
func (s *readerSource) HasHeader() bool         { return s.rd.HasHeader() }
func (s *readerSource) BadLines() int           { return s.rd.BadLines() }

func (s *readerSource) NextBatch() ([]Record, error) {
	n, err := s.rd.ReadBatch(s.buf)
	if n > 0 {
		// A partial batch before an error is still good data; the reader's
		// sticky error resurfaces on the next call.
		return s.buf[:n], nil
	}
	if err == nil {
		err = io.EOF
	}
	return nil, err
}

// blockSource is the zero-copy binary fast path: batches are the decoded
// blocks themselves.
type blockSource struct {
	rd *BinaryReader
}

func (s *blockSource) Header() (Header, error) { return s.rd.Header() }
func (s *blockSource) HasHeader() bool         { return s.rd.HasHeader() }
func (s *blockSource) BadLines() int           { return s.rd.BadLines() }

func (s *blockSource) NextBatch() ([]Record, error) { return s.rd.NextBlock() }

// SliceSource adapts an in-memory record slice into a RecordSource, for
// callers bridging materialized traces into streaming consumers.
type SliceSource struct {
	header Header
	hasHdr bool
	recs   []Record
	batch  int
	off    int
}

// NewSliceSource returns a SliceSource over recs. batch <= 0 selects
// DefaultBatchRecords. Batches alias recs (no copying).
func NewSliceSource(h Header, hasHdr bool, recs []Record, batch int) *SliceSource {
	if batch <= 0 {
		batch = DefaultBatchRecords
	}
	return &SliceSource{header: h, hasHdr: hasHdr, recs: recs, batch: batch}
}

// Header returns the header passed at construction.
func (s *SliceSource) Header() (Header, error) { return s.header, nil }

// HasHeader reports whether the original trace carried a header.
func (s *SliceSource) HasHeader() bool { return s.hasHdr }

// BadLines always returns zero: the records were already decoded.
func (s *SliceSource) BadLines() int { return 0 }

// NextBatch returns the next batch-sized window of the slice.
func (s *SliceSource) NextBatch() ([]Record, error) {
	if s.off >= len(s.recs) {
		return nil, io.EOF
	}
	end := s.off + s.batch
	if end > len(s.recs) {
		end = len(s.recs)
	}
	b := s.recs[s.off:end]
	s.off = end
	return b, nil
}

// ReadSource drains src into a slice — the bridge back from streaming to
// materialized consumers (reuse-distance analysis, miss timelines) that
// genuinely need the whole trace.
func ReadSource(src RecordSource) ([]Record, error) {
	var recs []Record
	for {
		batch, err := src.NextBatch()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, batch...)
	}
}
