package trace

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// bigTextTrace builds a synthetic trace large enough to split into several
// parallel chunks (> a few hundred KB).
func bigTextTrace(n int) string {
	var b strings.Builder
	b.WriteString("START PID 42\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "S %09x 8 main LV 0 1 _zzq_result\n", 0x7ff0001b0+8*i)
		fmt.Fprintf(&b, "L %09x 4 compute GS glStructArray[%d].myArray[%d]\n", 0x601040+4*i, i%4, i%7)
		fmt.Fprintf(&b, "M %09x 4 main GV glScalar\n", 0x601040)
	}
	return b.String()
}

func decodeSerial(t *testing.T, data []byte, opts DecodeOptions) (Header, bool, []Record, error) {
	t.Helper()
	return serialDecode(data, opts)
}

func sameDecode(t *testing.T, data []byte, opts DecodeOptions, workers int) {
	t.Helper()
	wh, whas, wrecs, werr := decodeSerial(t, data, opts)
	gh, ghas, grecs, gerr := DecodeBytes(data, opts, workers)
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("err mismatch: serial=%v parallel=%v", werr, gerr)
	}
	if werr != nil {
		if werr.Error() != gerr.Error() {
			t.Fatalf("err text mismatch:\nserial:   %v\nparallel: %v", werr, gerr)
		}
		// The partial output accompanying an error is part of the contract:
		// it must be the serial reader's exact kept-record prefix.
		if len(grecs) != len(wrecs) {
			t.Fatalf("partial record count mismatch: serial=%d parallel=%d", len(wrecs), len(grecs))
		}
		for i := range grecs {
			if !grecs[i].Equal(&wrecs[i]) {
				t.Fatalf("partial record %d mismatch: serial=%v parallel=%v", i, &wrecs[i], &grecs[i])
			}
		}
		return
	}
	if gh != wh || ghas != whas {
		t.Fatalf("header mismatch: serial=%+v/%v parallel=%+v/%v", wh, whas, gh, ghas)
	}
	if len(grecs) != len(wrecs) {
		t.Fatalf("record count mismatch: serial=%d parallel=%d", len(wrecs), len(grecs))
	}
	for i := range grecs {
		if !grecs[i].Equal(&wrecs[i]) {
			t.Fatalf("record %d mismatch: serial=%v parallel=%v", i, &wrecs[i], &grecs[i])
		}
	}
}

func TestDecodeBytesTextMatchesSerial(t *testing.T) {
	data := []byte(bigTextTrace(20000))
	for _, workers := range []int{1, 2, 3, 8} {
		sameDecode(t, data, DecodeOptions{}, workers)
	}
}

func TestDecodeBytesTextHeaderless(t *testing.T) {
	src := bigTextTrace(20000)
	data := []byte(src[strings.Index(src, "\n")+1:])
	sameDecode(t, data, DecodeOptions{}, 4)
}

func TestDecodeBytesTextSmallInput(t *testing.T) {
	sameDecode(t, []byte(sampleTrace), DecodeOptions{}, 8)
	sameDecode(t, nil, DecodeOptions{}, 8)
	sameDecode(t, []byte("\n\n\n"), DecodeOptions{}, 8)
}

func TestDecodeBytesTextBadLineFallsBack(t *testing.T) {
	data := []byte(bigTextTrace(20000))
	// Poison a line deep in the body; the parallel path must fall back to
	// the serial decoder and reproduce its exact lenient semantics
	// (ordered OnError with true line numbers) and strict error text.
	idx := bytes.Index(data, []byte("\nM"))
	data[idx+1] = '?'

	sameDecode(t, data, DecodeOptions{}, 4) // strict: identical error

	var serialCalls, parCalls []int
	opts := DecodeOptions{Mode: Lenient, OnError: func(line int, text string, err error) {
		serialCalls = append(serialCalls, line)
	}}
	_, _, wrecs, werr := decodeSerial(t, data, opts)
	opts.OnError = func(line int, text string, err error) { parCalls = append(parCalls, line) }
	_, _, grecs, gerr := DecodeBytes(data, opts, 4)
	if werr != nil || gerr != nil {
		t.Fatalf("lenient errs: serial=%v parallel=%v", werr, gerr)
	}
	if len(grecs) != len(wrecs) {
		t.Fatalf("lenient record counts: serial=%d parallel=%d", len(wrecs), len(grecs))
	}
	if len(parCalls) != 1 || len(serialCalls) != 1 || parCalls[0] != serialCalls[0] {
		t.Fatalf("OnError lines: serial=%v parallel=%v", serialCalls, parCalls)
	}
}

func TestDecodeBytesBinaryMatchesSerial(t *testing.T) {
	h, recs, err := ParseAll(bigTextTrace(5000))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	bw := NewBinaryWriter(&buf)
	bw.SetBlockRecords(512)
	if err := bw.WriteHeader(h); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := bw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, workers := range []int{1, 2, 8} {
		sameDecode(t, data, DecodeOptions{}, workers)
	}

	// Damaged block: strict and lenient must both match serial.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0xff
	sameDecode(t, bad, DecodeOptions{}, 4)
	var calls []int
	sameDecode(t, bad, DecodeOptions{Mode: Lenient}, 4)
	_, _, _, err = DecodeBytes(bad, DecodeOptions{Mode: Lenient, OnError: func(line int, text string, err2 error) {
		calls = append(calls, line)
		if !errors.Is(err2, ErrBlockChecksum) {
			t.Errorf("OnError err = %v", err2)
		}
	}}, 4)
	if err != nil || len(calls) != 1 {
		t.Fatalf("lenient damaged decode: err=%v calls=%v", err, calls)
	}

	// Truncated frame: identical hard error.
	sameDecode(t, data[:len(data)-5], DecodeOptions{}, 4)
}

// TestDecodeBytesBinaryFrameDamagePrefix: frame-walk failures (cuts that
// truncate a frame header or payload mid-file) must return the serial
// reader's exact kept-record prefix next to the identical error — the
// tightened partial-output contract, in both strict and lenient mode.
func TestDecodeBytesBinaryFrameDamagePrefix(t *testing.T) {
	h, recs, err := ParseAll(bigTextTrace(5000))
	if err != nil {
		t.Fatal(err)
	}
	data := encodeBinary(t, &h, recs, 512)
	for _, cut := range []int{1, 7, 100, len(data) / 2} {
		trunc := data[:len(data)-cut]
		for _, workers := range []int{1, 4} {
			sameDecode(t, trunc, DecodeOptions{}, workers)
			sameDecode(t, trunc, DecodeOptions{Mode: Lenient}, workers)
		}
	}
	// A mid-file cut leaves whole blocks before the damage: the partial
	// output must carry them, not come back empty.
	_, _, precs, perr := DecodeBytes(data[:len(data)/2], DecodeOptions{}, 4)
	if perr == nil {
		t.Fatal("mid-file truncation decoded cleanly")
	}
	if len(precs) == 0 {
		t.Fatal("partial output empty, want the decoded prefix")
	}
}

func TestDecodeParallelDeterministic(t *testing.T) {
	data := []byte(bigTextTrace(20000))
	_, _, first, err := DecodeBytes(data, DecodeOptions{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		_, _, again, err := DecodeBytes(data, DecodeOptions{}, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(first) {
			t.Fatalf("round %d: %d records, want %d", round, len(again), len(first))
		}
		for i := range again {
			if !again[i].Equal(&first[i]) {
				t.Fatalf("round %d: record %d differs", round, i)
			}
		}
	}
}

func TestDecodeParallelReader(t *testing.T) {
	src := bigTextTrace(2000)
	h, hasHdr, recs, err := DecodeParallel(strings.NewReader(src), DecodeOptions{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.PID != 42 || !hasHdr {
		t.Fatalf("header = %+v hasHdr=%v", h, hasHdr)
	}
	if len(recs) != 6000 {
		t.Fatalf("decoded %d records", len(recs))
	}
}
