package trace

// Pred is a record predicate used by the filtering helpers.
type Pred func(*Record) bool

// Filter returns the records satisfying pred, preserving order.
func Filter(recs []Record, pred Pred) []Record {
	var out []Record
	for i := range recs {
		if pred(&recs[i]) {
			out = append(out, recs[i])
		}
	}
	return out
}

// ByFunc matches records executed by the given function.
func ByFunc(fn string) Pred {
	return func(r *Record) bool { return r.Func == fn }
}

// ByVar matches records annotated with the given root variable.
func ByVar(root string) Pred {
	return func(r *Record) bool { return r.HasSym && r.Var.Root == root }
}

// ByOp matches records with any of the given access types.
func ByOp(ops ...Op) Pred {
	return func(r *Record) bool {
		for _, op := range ops {
			if r.Op == op {
				return true
			}
		}
		return false
	}
}

// ByAddrRange matches records whose access overlaps [lo, hi).
func ByAddrRange(lo, hi uint64) Pred {
	return func(r *Record) bool { return r.Addr < hi && r.End() > lo }
}

// Annotated matches records that carry symbol information.
func Annotated() Pred {
	return func(r *Record) bool { return r.HasSym }
}

// And combines predicates conjunctively.
func And(preds ...Pred) Pred {
	return func(r *Record) bool {
		for _, p := range preds {
			if !p(r) {
				return false
			}
		}
		return true
	}
}

// Or combines predicates disjunctively.
func Or(preds ...Pred) Pred {
	return func(r *Record) bool {
		for _, p := range preds {
			if p(r) {
				return true
			}
		}
		return false
	}
}

// Not negates a predicate.
func Not(p Pred) Pred {
	return func(r *Record) bool { return !p(r) }
}

// Roots returns the distinct annotated root variables in first-seen order.
func Roots(recs []Record) []string {
	seen := map[string]bool{}
	var out []string
	for i := range recs {
		if recs[i].HasSym && !seen[recs[i].Var.Root] {
			seen[recs[i].Var.Root] = true
			out = append(out, recs[i].Var.Root)
		}
	}
	return out
}

// Funcs returns the distinct executing functions in first-seen order.
func Funcs(recs []Record) []string {
	seen := map[string]bool{}
	var out []string
	for i := range recs {
		if !seen[recs[i].Func] {
			seen[recs[i].Func] = true
			out = append(out, recs[i].Func)
		}
	}
	return out
}

// Footprint returns the number of distinct size-aligned blocks touched
// (e.g. blockSize 32 gives the 32-byte-line footprint).
func Footprint(recs []Record, blockSize int64) int {
	if blockSize <= 0 {
		blockSize = 1
	}
	blocks := map[uint64]bool{}
	for i := range recs {
		r := &recs[i]
		for b := r.Addr / uint64(blockSize); b <= (r.End()-1)/uint64(blockSize); b++ {
			blocks[b] = true
		}
	}
	return len(blocks)
}
