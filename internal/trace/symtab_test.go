package trace

import (
	"fmt"
	"sync"
	"testing"
)

func TestSymTabInternStable(t *testing.T) {
	st := NewSymTab()
	a := st.Intern("main")
	b := st.Intern("lSoA")
	if a == 0 || b == 0 || a == b {
		t.Fatalf("ids = %d, %d", a, b)
	}
	if got := st.Intern("main"); got != a {
		t.Errorf("re-intern main = %d, want %d", got, a)
	}
	if st.Name(a) != "main" || st.Name(b) != "lSoA" {
		t.Errorf("names = %q, %q", st.Name(a), st.Name(b))
	}
	if st.Name(0) != "" || st.Name(SymID(99)) != "" {
		t.Error("out-of-range names not empty")
	}
	if st.Len() != 2 {
		t.Errorf("len = %d", st.Len())
	}
	if id, ok := st.Lookup("lSoA"); !ok || id != b {
		t.Errorf("lookup = %d, %v", id, ok)
	}
	if _, ok := st.Lookup("absent"); ok {
		t.Error("lookup of absent name succeeded")
	}
}

func TestSymTabConcurrentIntern(t *testing.T) {
	st := NewSymTab()
	const workers = 8
	var wg sync.WaitGroup
	ids := make([][]SymID, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ids[w] = append(ids[w], st.Intern(fmt.Sprintf("sym%d", i)))
			}
		}(w)
	}
	wg.Wait()
	if st.Len() != 100 {
		t.Fatalf("len = %d, want 100", st.Len())
	}
	for w := 1; w < workers; w++ {
		for i := range ids[w] {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d got id %d for sym%d, worker 0 got %d",
					w, ids[w][i], i, ids[0][i])
			}
		}
	}
}

func TestInternRecords(t *testing.T) {
	lines := []string{
		"L 000601040 4 main GV glScalar",
		"S 000601040 4 main GV glScalar",
		"L 7ff000480 8 helper",
	}
	recs := make([]Record, len(lines))
	for i, l := range lines {
		r, err := ParseRecord(l)
		if err != nil {
			t.Fatal(err)
		}
		recs[i] = r
	}
	st := NewSymTab()
	InternRecords(st, recs)
	if recs[0].FuncID == 0 || recs[0].FuncID != recs[1].FuncID {
		t.Errorf("main ids = %d, %d", recs[0].FuncID, recs[1].FuncID)
	}
	if recs[0].VarID == 0 || recs[0].VarID != recs[1].VarID {
		t.Errorf("glScalar ids = %d, %d", recs[0].VarID, recs[1].VarID)
	}
	if recs[2].VarID != 0 {
		t.Errorf("nosym record got VarID %d", recs[2].VarID)
	}
	if st.Name(recs[2].FuncID) != "helper" {
		t.Errorf("helper name = %q", st.Name(recs[2].FuncID))
	}
	// Re-interning against another table overwrites stale ids.
	st2 := NewSymTab()
	st2.Intern("pad") // shift ids so staleness would show
	InternRecords(st2, recs)
	if st2.Name(recs[0].VarID) != "glScalar" {
		t.Errorf("re-intern: VarID names %q", st2.Name(recs[0].VarID))
	}
}
