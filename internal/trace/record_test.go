package trace

import (
	"testing"
	"testing/quick"

	"tracedst/internal/ctype"
)

func TestParseRecordGlobalScalar(t *testing.T) {
	// Listing 2 line 4 of the paper.
	r, err := ParseRecord("S 000601040 4 main GV glScalar")
	if err != nil {
		t.Fatal(err)
	}
	if r.Op != Store || r.Addr != 0x601040 || r.Size != 4 || r.Func != "main" {
		t.Errorf("got %+v", r)
	}
	if !r.HasSym || r.Vis != Global || r.Aggregate || r.Var.Root != "glScalar" {
		t.Errorf("symbol fields: %+v", r)
	}
	if got := r.String(); got != "S 000601040 4 main GV glScalar" {
		t.Errorf("round trip = %q", got)
	}
}

func TestParseRecordLocalScalar(t *testing.T) {
	r, err := ParseRecord("S 7ff0001bc 4 main LV 0 1 lcScalar")
	if err != nil {
		t.Fatal(err)
	}
	if r.Vis != Local || r.Frame != 0 || r.Thread != 1 || r.Var.Root != "lcScalar" {
		t.Errorf("got %+v", r)
	}
	if r.String() != "S 7ff0001bc 4 main LV 0 1 lcScalar" {
		t.Errorf("round trip = %q", r.String())
	}
}

func TestParseRecordGlobalAggregate(t *testing.T) {
	// Listing 2 line 29.
	r, err := ParseRecord("S 0006010e8 4 foo GS glStructArray[0].myArray[0]")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Aggregate || r.Vis != Global {
		t.Errorf("scope: %+v", r)
	}
	wantPath := ctype.Path{{Index: 0}, {Field: "myArray"}, {Index: 0}}
	if r.Var.Root != "glStructArray" || !r.Var.Path.Equal(wantPath) {
		t.Errorf("var = %v", r.Var)
	}
	if r.ScopeCode() != "GS" {
		t.Errorf("scope code = %q", r.ScopeCode())
	}
}

func TestParseRecordCallerFrame(t *testing.T) {
	// Listing 2 line 34: foo touches main's local through a pointer (frame 1).
	r, err := ParseRecord("S 7ff000060 8 foo LS 1 1 lcStrcArray[0].d1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Frame != 1 || r.Func != "foo" || !r.Aggregate {
		t.Errorf("got %+v", r)
	}
}

func TestParseRecordNoSymbol(t *testing.T) {
	// Listing 2 line 3: an unannotated access (no debug info).
	r, err := ParseRecord("L 7ff0001b0 8 main")
	if err != nil {
		t.Fatal(err)
	}
	if r.HasSym {
		t.Errorf("expected no symbol: %+v", r)
	}
	if r.ScopeCode() != "" {
		t.Errorf("scope code = %q", r.ScopeCode())
	}
	if r.String() != "L 7ff0001b0 8 main" {
		t.Errorf("round trip = %q", r.String())
	}
}

func TestParseRecordModifyAndMisc(t *testing.T) {
	for _, line := range []string{
		"M 7ff0001b8 4 main LV 0 1 i",
		"X 7ff0001b8 4 main",
	} {
		r, err := ParseRecord(line)
		if err != nil {
			t.Fatalf("%q: %v", line, err)
		}
		if r.String() != line {
			t.Errorf("round trip %q = %q", line, r.String())
		}
	}
}

func TestOpPredicates(t *testing.T) {
	cases := []struct {
		op          Op
		read, write bool
	}{
		{Load, true, false}, {Store, false, true}, {Modify, true, true}, {Misc, false, false},
	}
	for _, c := range cases {
		r := Record{Op: c.op}
		if r.IsRead() != c.read || r.IsWrite() != c.write {
			t.Errorf("%s: read=%v write=%v", c.op, r.IsRead(), r.IsWrite())
		}
	}
	if Op('Q').Valid() {
		t.Error("Q should not be a valid op")
	}
}

func TestParseRecordErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"S",
		"S 7ff0001b0",
		"S 7ff0001b0 8",
		"Q 7ff0001b0 8 main",
		"SS 7ff0001b0 8 main",
		"S zzz 8 main",
		"S 7ff0001b0 -1 main",
		"S 7ff0001b0 x main",
		"S 7ff0001b0 8 main QV x",
		"S 7ff0001b0 8 main GQ x",
		"S 7ff0001b0 8 main LV 0 x",   // missing var after local ids
		"S 7ff0001b0 8 main LV z 1 x", // bad frame
		"S 7ff0001b0 8 main LV 0 z x", // bad thread
		"S 7ff0001b0 8 main GV",       // missing var
		"S 7ff0001b0 8 main GV a b",   // extra field
		"S 7ff0001b0 8 main GV a[",    // bad access path
	} {
		if _, err := ParseRecord(bad); err == nil {
			t.Errorf("ParseRecord(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h, err := ParseHeader("START PID 13063")
	if err != nil {
		t.Fatal(err)
	}
	if h.PID != 13063 {
		t.Errorf("pid = %d", h.PID)
	}
	if h.String() != "START PID 13063" {
		t.Errorf("format = %q", h.String())
	}
	if _, err := ParseHeader("BEGIN 12"); err == nil {
		t.Error("bad header accepted")
	}
}

func TestRecordEqual(t *testing.T) {
	a, _ := ParseRecord("S 000601040 4 main GV glScalar")
	b, _ := ParseRecord("S 000601040 4 main GV glScalar")
	if !a.Equal(&b) {
		t.Error("identical records not equal")
	}
	c, _ := ParseRecord("S 000601044 4 main GV glScalar")
	if a.Equal(&c) {
		t.Error("different addresses compare equal")
	}
	d, _ := ParseRecord("S 000601040 4 main GV other")
	if a.Equal(&d) {
		t.Error("different variables compare equal")
	}
	e, _ := ParseRecord("S 000601040 4 main")
	if a.Equal(&e) {
		t.Error("symbol vs no-symbol compare equal")
	}
}

func TestRecordEnd(t *testing.T) {
	r := Record{Addr: 0x100, Size: 8}
	if r.End() != 0x108 {
		t.Errorf("End = %#x", r.End())
	}
}

// Property: String → ParseRecord is the identity for well-formed records.
func TestRecordRoundTripProperty(t *testing.T) {
	ops := []Op{Load, Store, Modify, Misc}
	f := func(addr uint32, size uint8, opPick uint8, local, agg bool, frame uint8, idx uint8) bool {
		r := Record{
			Op:   ops[int(opPick)%len(ops)],
			Addr: uint64(addr),
			Size: int64(size%16) + 1,
			Func: "main",
		}
		r.HasSym = true
		r.Aggregate = agg
		if local {
			r.Vis = Local
			r.Frame = int(frame % 4)
			r.Thread = 1
		} else {
			r.Vis = Global
		}
		r.Var = ctype.AccessExpr{Root: "v"}
		if agg {
			r.Var.Path = ctype.Path{{Index: int64(idx)}, {Field: "m"}}
		}
		parsed, err := ParseRecord(r.String())
		return err == nil && parsed.Equal(&r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
