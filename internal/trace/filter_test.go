package trace

import (
	"strings"
	"testing"
)

func filterFixture(t *testing.T) []Record {
	t.Helper()
	_, recs, err := ParseAll(`START PID 1
S 000601040 4 main GV g
L 000601040 4 main GV g
L 7ff000010 4 foo LV 0 1 i
M 7ff000010 4 foo LV 0 1 i
S 7ff000020 8 foo LS 0 1 arr[0]
L 7ff000100 8 main
`)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestFilterByFunc(t *testing.T) {
	recs := filterFixture(t)
	got := Filter(recs, ByFunc("foo"))
	if len(got) != 3 {
		t.Errorf("foo records = %d", len(got))
	}
}

func TestFilterByVar(t *testing.T) {
	recs := filterFixture(t)
	if got := Filter(recs, ByVar("i")); len(got) != 2 {
		t.Errorf("i records = %d", len(got))
	}
	if got := Filter(recs, ByVar("missing")); len(got) != 0 {
		t.Errorf("missing records = %d", len(got))
	}
}

func TestFilterByOp(t *testing.T) {
	recs := filterFixture(t)
	if got := Filter(recs, ByOp(Store)); len(got) != 2 {
		t.Errorf("stores = %d", len(got))
	}
	if got := Filter(recs, ByOp(Store, Modify)); len(got) != 3 {
		t.Errorf("stores+modifies = %d", len(got))
	}
}

func TestFilterByAddrRange(t *testing.T) {
	recs := filterFixture(t)
	got := Filter(recs, ByAddrRange(0x7ff000000, 0x7ff000018))
	if len(got) != 2 { // the two accesses to i at 0x7ff000010
		t.Errorf("range records = %d", len(got))
	}
	// Overlap at the edge: an 8-byte access starting just below hi counts.
	got = Filter(recs, ByAddrRange(0x7ff000024, 0x7ff000025))
	if len(got) != 1 {
		t.Errorf("overlap records = %d", len(got))
	}
}

func TestFilterCombinators(t *testing.T) {
	recs := filterFixture(t)
	got := Filter(recs, And(ByFunc("foo"), ByOp(Modify)))
	if len(got) != 1 {
		t.Errorf("and = %d", len(got))
	}
	got = Filter(recs, Or(ByVar("g"), ByVar("i")))
	if len(got) != 4 {
		t.Errorf("or = %d", len(got))
	}
	got = Filter(recs, Not(Annotated()))
	if len(got) != 1 {
		t.Errorf("not annotated = %d", len(got))
	}
}

func TestRootsAndFuncs(t *testing.T) {
	recs := filterFixture(t)
	roots := Roots(recs)
	want := []string{"g", "i", "arr"}
	if len(roots) != len(want) {
		t.Fatalf("roots = %v", roots)
	}
	for i := range want {
		if roots[i] != want[i] {
			t.Errorf("roots[%d] = %s, want %s", i, roots[i], want[i])
		}
	}
	fns := Funcs(recs)
	if len(fns) != 2 || fns[0] != "main" || fns[1] != "foo" {
		t.Errorf("funcs = %v", fns)
	}
}

func TestFootprint(t *testing.T) {
	recs := filterFixture(t)
	// Blocks of 32: 0x601040 (1), 0x7ff000000 (i and arr share 0x7ff000000..1f?
	// i at 0x10, arr at 0x20..0x27 → blocks 0x3ff800000 and +1), 0x7ff000100.
	if got := Footprint(recs, 32); got != 4 {
		t.Errorf("footprint = %d, want 4", got)
	}
	if got := Footprint(recs, 0); got == 0 {
		t.Error("byte footprint = 0")
	}
	if Footprint(nil, 32) != 0 {
		t.Error("empty footprint")
	}
}

func TestWriteDinRoundTrip(t *testing.T) {
	recs := filterFixture(t)
	var buf strings.Builder
	n, err := WriteDin(&buf, recs)
	if err != nil {
		t.Fatal(err)
	}
	// 6 records, one M expands to 2, one L unannotated still counts: 7 lines.
	if n != 7 {
		t.Fatalf("din lines = %d, want 7\n%s", n, buf.String())
	}
	back, err := ReadDin(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 7 {
		t.Fatalf("reimported = %d", len(back))
	}
	// Labels and addresses survive; metadata does not.
	if back[0].Op != Store || back[0].Addr != 0x601040 || back[0].HasSym {
		t.Errorf("first din record = %+v", back[0])
	}
	// The modify became read then write at the same address.
	if back[3].Op != Load || back[4].Op != Store || back[3].Addr != back[4].Addr {
		t.Errorf("modify expansion = %+v %+v", back[3], back[4])
	}
}

func TestReadDinErrorsAndComments(t *testing.T) {
	recs, err := ReadDin(strings.NewReader("# comment\n0 601040\n2 4000\n\n1 601044\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0].Op != Load || recs[1].Op != Misc || recs[2].Op != Store {
		t.Errorf("recs = %+v", recs)
	}
	for _, bad := range []string{"5 100\n", "zz\n", "0 zz\n"} {
		if _, err := ReadDin(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadDin(%q) accepted", bad)
		}
	}
}
