// Trace container formats. The package supports two encodings of the same
// record stream: the Gleipnir line-oriented text format (io.go) and a
// block-framed binary format (binary.go). Format sniffing plus the
// RecordReader/RecordWriter interfaces let every tool accept either
// transparently.
package trace

import (
	"bufio"
	"io"
)

// FileFormat identifies a trace container encoding.
type FileFormat int

// Trace container formats.
const (
	FormatUnknown FileFormat = iota
	// FormatText is the Gleipnir line format: "START PID <n>" plus one
	// whitespace-separated record per line.
	FormatText
	// FormatBinary is the block-framed binary format (.glb): a magic-tagged
	// preamble followed by independently decodable blocks, each with its own
	// string table, varint+delta record encoding and CRC32 checksum.
	FormatBinary
)

// String names the format as spelled by the -format CLI flags.
func (f FileFormat) String() string {
	switch f {
	case FormatText:
		return "text"
	case FormatBinary:
		return "binary"
	}
	return "unknown"
}

// binaryMagic opens every binary trace. The 0x89 byte keeps it out of the
// text grammar (and of ASCII transports), "GLB1" names format+version, and
// the newline catches line-ending translation, PNG-style.
var binaryMagic = [6]byte{0x89, 'G', 'L', 'B', '1', '\n'}

// BinaryMagicLen is how many leading bytes DetectFormat needs to identify a
// binary trace.
const BinaryMagicLen = len(binaryMagic)

// DetectFormat sniffs the container format from the first bytes of a trace
// (at least BinaryMagicLen bytes for a reliable answer; shorter prefixes
// sniff as text, which fails loudly downstream if wrong). Anything not
// starting with the binary magic is treated as text, matching the
// historical behaviour for arbitrary line input.
func DetectFormat(prefix []byte) FileFormat {
	if len(prefix) >= BinaryMagicLen && string(prefix[:BinaryMagicLen]) == string(binaryMagic[:]) {
		return FormatBinary
	}
	return FormatText
}

// RecordReader is the decoding half shared by the text Reader and the
// BinaryReader, so pipelines can consume either format behind one type.
type RecordReader interface {
	// Header returns the trace header (zero when absent).
	Header() (Header, error)
	// HasHeader reports whether the input carried a header; meaningful
	// after Header or the first Read.
	HasHeader() bool
	// Read returns the next record, or io.EOF at end of stream.
	Read() (Record, error)
	// ReadBatch fills dst and returns how many records were read; (0,
	// io.EOF) signals end of stream.
	ReadBatch(dst []Record) (int, error)
	// ReadAll reads the remaining records.
	ReadAll() ([]Record, error)
	// BadLines returns how many damaged units (lines or blocks) were
	// skipped in lenient mode.
	BadLines() int
}

// RecordWriter is the encoding half shared by the text Writer and the
// BinaryWriter.
type RecordWriter interface {
	// WriteHeader writes the trace header; it must precede any record.
	WriteHeader(h Header) error
	// Write appends one record.
	Write(r *Record) error
	// Flush writes out any buffered data; it must be called when done.
	Flush() error
	// Records returns the number of records successfully written so far.
	Records() int
}

// OpenReader sniffs the format of r and returns a decoder for it plus the
// detected format. Sniffing never consumes input, so a text stream that
// merely resembles the magic is impossible (the magic byte 0x89 cannot open
// a valid text trace).
func OpenReader(r io.Reader, opts DecodeOptions) (RecordReader, FileFormat, error) {
	br, ok := r.(*bufio.Reader)
	if !ok || br.Size() < BinaryMagicLen {
		br = bufio.NewReaderSize(r, 64*1024)
	}
	// Peek only errors when fewer than BinaryMagicLen bytes are available
	// (EOF, or a short read from a faltering underlying reader). A prefix
	// that short cannot be binary — and the shortest valid text trace
	// content fits in fewer bytes than the magic — so any short read
	// sniffs as text. bufio clears the peeked error, so a persistent I/O
	// failure resurfaces with line context on the first read; only an
	// empty non-EOF failure is reported here, where text decoding could
	// not start either.
	prefix, err := br.Peek(BinaryMagicLen)
	if err != nil && err != io.EOF && len(prefix) == 0 {
		return nil, FormatUnknown, err
	}
	if DetectFormat(prefix) == FormatBinary {
		return NewBinaryReaderOptions(br, opts), FormatBinary, nil
	}
	return NewReaderOptions(br, opts), FormatText, nil
}

// NewWriterFormat returns an encoder for the requested format
// (FormatUnknown selects text, the historical default).
func NewWriterFormat(w io.Writer, f FileFormat) RecordWriter {
	if f == FormatBinary {
		return NewBinaryWriter(w)
	}
	return NewWriter(w)
}
