package trace

import "sync"

// SymID is an interned symbol identifier issued by a SymTab. The zero value
// means "not interned": consumers must fall back to the record's string
// fields (or their own interning) when they see it. Valid ids start at 1.
type SymID int32

// SymTab interns symbol strings (function names, variable roots) into dense
// integer ids so the simulation hot path can attribute statistics by slice
// index instead of hashing a string per access.
//
// A SymTab is safe for concurrent use: Intern takes a write lock, Lookup,
// Name and Len take a read lock. The intended pattern is to intern a record
// slice once (InternRecords) before fan-out, after which readers never
// mutate the table.
type SymTab struct {
	mu    sync.RWMutex
	ids   map[string]SymID
	names []string // names[0] is the reserved "uninterned" slot
}

// NewSymTab returns an empty table.
func NewSymTab() *SymTab {
	return &SymTab{
		ids:   make(map[string]SymID),
		names: []string{""},
	}
}

// Intern returns the id for name, assigning the next free id on first use.
func (t *SymTab) Intern(name string) SymID {
	t.mu.RLock()
	id, ok := t.ids[name]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[name]; ok {
		return id
	}
	id = SymID(len(t.names))
	t.ids[name] = id
	t.names = append(t.names, name)
	return id
}

// Lookup returns the id for name without assigning one.
func (t *SymTab) Lookup(name string) (SymID, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.ids[name]
	return id, ok
}

// Name returns the string for id ("" for the zero id or out-of-range ids).
func (t *SymTab) Name(id SymID) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id <= 0 || int(id) >= len(t.names) {
		return ""
	}
	return t.names[id]
}

// Len returns the number of interned symbols (excluding the reserved slot).
func (t *SymTab) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.names) - 1
}

// InternRecords fills FuncID and VarID on every record from t, overwriting
// any ids a transformation may have copied from another table. Records
// without symbol information keep VarID zero. After interning, the slice can
// be shared read-only across goroutines that attribute against t.
func InternRecords(t *SymTab, recs []Record) {
	for i := range recs {
		r := &recs[i]
		r.FuncID = t.Intern(r.Func)
		if r.HasSym {
			r.VarID = t.Intern(r.Var.Root)
		} else {
			r.VarID = 0
		}
	}
}
