// Block-framed binary trace format (.glb).
//
// Layout:
//
//	preamble := magic[6] flags:u8 pid:svarint
//	block    := payloadLen:uvarint recCount:uvarint crc32:u32le payload
//	payload  := strCount:uvarint { len:uvarint bytes }* record*
//	record   := tag:u8 addrDelta:svarint size:svarint funcIdx:uvarint
//	            [ frame:svarint thread:svarint ]   (local only)
//	            [ varIdx:uvarint ]                 (hasSym only)
//
// flags bit0 records whether the source trace had a START header. The tag
// byte packs the op index (bits 0-1), hasSym (bit 2), local (bit 3) and
// aggregate (bit 4). Addresses are delta-encoded against the previous
// record in the same block (starting from zero), so blocks decode
// independently: each carries its own string table (function names and
// canonical variable access expressions) and a CRC32 (IEEE) over its
// payload. That framing is what makes parallel decode and lenient
// block-skip recovery possible.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// DefaultBlockRecords is how many records a BinaryWriter packs per block by
// default. Big enough to amortize the string table, small enough that a
// damaged block loses little and parallel decode has work to hand out.
const DefaultBlockRecords = 4096

// maxBlockPayload caps a block's declared payload size so a corrupt length
// field cannot drive a giant allocation.
const maxBlockPayload = 1 << 30

// ErrBlockChecksum marks a binary block whose payload fails its CRC32. It
// is reported wrapped in a *BadLineError whose Line is the 1-based block
// ordinal.
var ErrBlockChecksum = errors.New("block checksum mismatch")

// opIndexes maps Op to its 2-bit tag encoding and back.
var opFromIndex = [4]Op{Load, Store, Modify, Misc}

func opIndex(o Op) byte {
	switch o {
	case Load:
		return 0
	case Store:
		return 1
	case Modify:
		return 2
	default:
		return 3
	}
}

const (
	tagHasSym    = 1 << 2
	tagLocal     = 1 << 3
	tagAggregate = 1 << 4
)

// BinaryWriter streams records to the block-framed binary format. Call
// Flush when done to emit the final partial block.
type BinaryWriter struct {
	bw        *bufio.Writer
	blockRecs int
	header    Header
	hasHdr    bool
	wrotePre  bool
	recsSoFar int

	strTab   []byte // encoded string-table entries for the block
	strCount int
	strIdx   map[string]uint64 // string -> table index
	recBuf   []byte            // encoded records for the block
	recCount int
	prevAddr uint64
	scratch  []byte // variable-expression rendering
	payload  []byte // assembled block payload

	// Block-index footer state: off tracks the file offset of the next
	// byte, idx collects per-block frame offsets and record counts, and
	// indexed/wroteIdx gate the footer block Flush appends.
	off      int64
	idx      BlockIndex
	indexed  bool
	wroteIdx bool
}

// NewBinaryWriter returns a BinaryWriter over w.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{
		bw:        bufio.NewWriterSize(w, 256*1024),
		blockRecs: DefaultBlockRecords,
		strIdx:    make(map[string]uint64),
	}
}

// SetBlockRecords overrides the records-per-block flush threshold (tests
// and benchmarks; n < 1 is ignored).
func (wr *BinaryWriter) SetBlockRecords(n int) {
	if n >= 1 {
		wr.blockRecs = n
	}
}

// EnableIndex makes Flush append the block-index footer (see footer.go):
// per-block file offsets and record counts that let readers seek and shard
// without scanning. The footer travels as a record-free block, so readers
// that predate it skip it transparently.
func (wr *BinaryWriter) EnableIndex() { wr.indexed = true }

// WriteHeader records the START header; it must precede any record.
func (wr *BinaryWriter) WriteHeader(h Header) error {
	if wr.hasHdr {
		return fmt.Errorf("trace: header written twice")
	}
	if wr.wrotePre {
		return fmt.Errorf("trace: header after records")
	}
	wr.header = h
	wr.hasHdr = true
	return nil
}

// writePreamble emits magic, flags and PID; the header becomes immutable.
func (wr *BinaryWriter) writePreamble() error {
	if wr.wrotePre {
		return nil
	}
	wr.wrotePre = true
	if _, err := wr.bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var flags byte
	if wr.hasHdr {
		flags |= 1
	}
	if err := wr.bw.WriteByte(flags); err != nil {
		return err
	}
	pid := binary.AppendVarint(wr.scratch[:0], int64(wr.header.PID))
	wr.off = int64(len(binaryMagic) + 1 + len(pid))
	_, err := wr.bw.Write(pid)
	return err
}

// internString returns the block-local string-table index for s, adding the
// entry on first use. key avoids allocating when s is scratch-backed.
func (wr *BinaryWriter) internString(key []byte) uint64 {
	if idx, ok := wr.strIdx[string(key)]; ok {
		return idx
	}
	idx := uint64(wr.strCount)
	wr.strIdx[string(key)] = idx
	wr.strCount++
	wr.strTab = binary.AppendUvarint(wr.strTab, uint64(len(key)))
	wr.strTab = append(wr.strTab, key...)
	return idx
}

// Write appends one record, flushing a block when it is full.
func (wr *BinaryWriter) Write(r *Record) error {
	if err := wr.writePreamble(); err != nil {
		return err
	}
	tag := opIndex(r.Op)
	if r.HasSym {
		tag |= tagHasSym
		if r.Vis == Local {
			tag |= tagLocal
		}
		if r.Aggregate {
			tag |= tagAggregate
		}
	}
	b := append(wr.recBuf, tag)
	b = binary.AppendVarint(b, int64(r.Addr-wr.prevAddr))
	b = binary.AppendVarint(b, r.Size)
	wr.scratch = append(wr.scratch[:0], r.Func...)
	b = binary.AppendUvarint(b, wr.internString(wr.scratch))
	if r.HasSym {
		if r.Vis == Local {
			b = binary.AppendVarint(b, int64(r.Frame))
			b = binary.AppendVarint(b, int64(r.Thread))
		}
		wr.scratch = r.Var.AppendText(wr.scratch[:0])
		b = binary.AppendUvarint(b, wr.internString(wr.scratch))
	}
	wr.recBuf = b
	wr.prevAddr = r.Addr
	wr.recCount++
	wr.recsSoFar++
	if wr.recCount >= wr.blockRecs {
		return wr.flushBlock()
	}
	return nil
}

// flushBlock frames and writes the current block, then resets block state.
func (wr *BinaryWriter) flushBlock() error {
	if wr.recCount == 0 {
		return nil
	}
	p := binary.AppendUvarint(wr.payload[:0], uint64(wr.strCount))
	p = append(p, wr.strTab...)
	p = append(p, wr.recBuf...)
	wr.payload = p

	hdr := binary.AppendUvarint(wr.scratch[:0], uint64(len(p)))
	hdr = binary.AppendUvarint(hdr, uint64(wr.recCount))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(p))
	wr.scratch = hdr
	wr.idx.Offsets = append(wr.idx.Offsets, wr.off)
	wr.idx.Counts = append(wr.idx.Counts, int64(wr.recCount))
	wr.idx.Records += int64(wr.recCount)
	wr.off += int64(len(hdr) + len(p))
	if _, err := wr.bw.Write(hdr); err != nil {
		return err
	}
	if _, err := wr.bw.Write(p); err != nil {
		return err
	}
	wr.strTab = wr.strTab[:0]
	wr.strCount = 0
	clear(wr.strIdx)
	wr.recBuf = wr.recBuf[:0]
	wr.recCount = 0
	wr.prevAddr = 0
	return nil
}

// Flush writes the preamble (for empty traces), the final partial block,
// the block-index footer when EnableIndex was called, and any buffered
// output.
func (wr *BinaryWriter) Flush() error {
	if err := wr.writePreamble(); err != nil {
		return err
	}
	if err := wr.flushBlock(); err != nil {
		return err
	}
	if wr.indexed && !wr.wroteIdx {
		wr.wroteIdx = true
		if err := wr.writeFooterBlock(); err != nil {
			return err
		}
	}
	return wr.bw.Flush()
}

// writeFooterBlock frames the encoded index as a record-free block whose
// single string-table entry is the footer bytes. Old readers CRC-check and
// skip it; the trailer magic at the end of the file lets new readers find
// it without a scan.
func (wr *BinaryWriter) writeFooterBlock() error {
	body := appendFooter(nil, &wr.idx)
	p := binary.AppendUvarint(wr.payload[:0], 1)
	p = binary.AppendUvarint(p, uint64(len(body)))
	p = append(p, body...)
	wr.payload = p
	hdr := binary.AppendUvarint(wr.scratch[:0], uint64(len(p)))
	hdr = binary.AppendUvarint(hdr, 0)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(p))
	wr.scratch = hdr
	wr.off += int64(len(hdr) + len(p))
	if _, err := wr.bw.Write(hdr); err != nil {
		return err
	}
	_, err := wr.bw.Write(p)
	return err
}

// Records returns the number of records successfully written so far.
func (wr *BinaryWriter) Records() int { return wr.recsSoFar }

// BinaryReader streams records from the block-framed binary format. In
// lenient mode, blocks with checksum or encoding damage are skipped whole,
// each charged as one unit against the MaxBadLines budget and reported
// through OnError with the 1-based block ordinal as the line number.
type BinaryReader struct {
	br     *bufio.Reader
	opts   DecodeOptions
	header Header
	gotPre bool
	hasHdr bool
	block  int // 1-based ordinal of the block last read
	bad    int
	err    error
	auxErr error // first damage seen in a record-free auxiliary block

	recs    []Record // decoded current block
	next    int
	dec     blockDecoder
	payload []byte
}

// NewBinaryReader returns a strict BinaryReader over r.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return NewBinaryReaderOptions(r, DecodeOptions{})
}

// NewBinaryReaderOptions returns a BinaryReader with explicit options.
func NewBinaryReaderOptions(r io.Reader, opts DecodeOptions) *BinaryReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 256*1024)
	}
	return &BinaryReader{br: br, opts: opts, dec: blockDecoder{intern: NewInterner()}}
}

// ensurePre consumes and checks the preamble.
func (rd *BinaryReader) ensurePre() error {
	if rd.gotPre {
		if rd.err != nil && rd.err != io.EOF {
			return rd.err
		}
		return nil
	}
	rd.gotPre = true
	var magic [BinaryMagicLen]byte
	if _, err := io.ReadFull(rd.br, magic[:]); err != nil {
		rd.err = fmt.Errorf("trace: short binary preamble: %w", err)
		return rd.err
	}
	if magic != binaryMagic {
		rd.err = fmt.Errorf("trace: bad binary magic %q", magic[:])
		return rd.err
	}
	flags, err := rd.br.ReadByte()
	if err != nil {
		rd.err = fmt.Errorf("trace: short binary preamble: %w", err)
		return rd.err
	}
	pid, err := binary.ReadVarint(rd.br)
	if err != nil {
		rd.err = fmt.Errorf("trace: bad binary preamble pid: %w", err)
		return rd.err
	}
	rd.hasHdr = flags&1 != 0
	if rd.hasHdr {
		rd.header = Header{PID: int(pid)}
	}
	return nil
}

// Header returns the trace header (zero when the source had none).
func (rd *BinaryReader) Header() (Header, error) {
	if err := rd.ensurePre(); err != nil {
		return rd.header, err
	}
	return rd.header, nil
}

// HasHeader reports whether the source trace carried a START header.
func (rd *BinaryReader) HasHeader() bool { return rd.hasHdr }

// BadLines returns the number of damaged blocks skipped in lenient mode.
func (rd *BinaryReader) BadLines() int { return rd.bad }

// Blocks returns the number of blocks consumed so far.
func (rd *BinaryReader) Blocks() int { return rd.block }

// AuxDamage returns the first damage found in a record-free auxiliary
// block (e.g. a torn or checksum-failed block-index footer), nil when
// none was seen. Auxiliary blocks carry no records, so their damage
// loses no data and is reported out of band rather than through the
// bad-line machinery — even strict reads succeed past it.
func (rd *BinaryReader) AuxDamage() error { return rd.auxErr }

// noteAux records auxiliary-block damage, keeping the first error.
func (rd *BinaryReader) noteAux(err error) {
	if rd.auxErr == nil {
		rd.auxErr = err
	}
}

// badBlock mirrors the text reader's skipBad for a damaged block.
func (rd *BinaryReader) badBlock(err error) (bool, error) {
	ble := &BadLineError{Line: rd.block, Err: err}
	if rd.opts.OnError != nil {
		rd.opts.OnError(ble.Line, "", ble.Err)
	}
	if rd.opts.Mode != Lenient {
		return false, ble
	}
	rd.bad++
	if rd.opts.MaxBadLines > 0 && rd.bad > rd.opts.MaxBadLines {
		return false, fmt.Errorf("%w (bad-line budget %d exhausted)", ble, rd.opts.MaxBadLines)
	}
	return true, nil
}

// eofish reports whether err marks the end of the stream (clean or short).
func eofish(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// loadBlock reads and decodes the next block into rd.recs. io.EOF means a
// clean end of stream.
func (rd *BinaryReader) loadBlock() error {
	for {
		payloadLen, err := binary.ReadUvarint(rd.br)
		if err == io.EOF {
			return io.EOF
		}
		if err != nil {
			return fmt.Errorf("trace: block %d: bad frame: %w", rd.block+1, err)
		}
		rd.block++
		if payloadLen > maxBlockPayload {
			return fmt.Errorf("trace: block %d: payload length %d exceeds limit", rd.block, payloadLen)
		}
		recCount, err := binary.ReadUvarint(rd.br)
		if err != nil {
			return fmt.Errorf("trace: block %d: bad frame: %w", rd.block, err)
		}
		if recCount > payloadLen {
			return fmt.Errorf("trace: block %d: record count %d exceeds payload %d", rd.block, recCount, payloadLen)
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(rd.br, crcBuf[:]); err != nil {
			if recCount == 0 && eofish(err) {
				// A record-free block torn off at the end of the stream
				// (ReadFull only comes up short there): no records lost.
				rd.noteAux(fmt.Errorf("trace: block %d: truncated record-free block: %w", rd.block, err))
				return io.EOF
			}
			return fmt.Errorf("trace: block %d: bad frame: %w", rd.block, err)
		}
		if cap(rd.payload) < int(payloadLen) {
			rd.payload = make([]byte, payloadLen)
		}
		rd.payload = rd.payload[:payloadLen]
		if _, err := io.ReadFull(rd.br, rd.payload); err != nil {
			if recCount == 0 && eofish(err) {
				rd.noteAux(fmt.Errorf("trace: block %d: truncated record-free block: %w", rd.block, err))
				return io.EOF
			}
			return fmt.Errorf("trace: block %d: truncated payload: %w", rd.block, err)
		}
		// Framing is intact from here on, so damage is skippable: the next
		// block starts right after the payload we already consumed.
		if crc32.ChecksumIEEE(rd.payload) != binary.LittleEndian.Uint32(crcBuf[:]) {
			if recCount == 0 {
				// Record-free blocks carry auxiliary payloads (the
				// block-index footer); damage there loses no records.
				rd.noteAux(fmt.Errorf("trace: block %d: record-free block: %w", rd.block, ErrBlockChecksum))
				continue
			}
			if ok, lerr := rd.badBlock(ErrBlockChecksum); ok {
				continue
			} else {
				return lerr
			}
		}
		if recCount == 0 {
			// CRC-valid auxiliary payload; nothing to decode.
			continue
		}
		if derr := rd.decodeBlock(rd.payload, int(recCount)); derr != nil {
			if ok, lerr := rd.badBlock(derr); ok {
				continue
			} else {
				return lerr
			}
		}
		return nil
	}
}

// decodeBlock decodes a CRC-valid payload into rd.recs.
func (rd *BinaryReader) decodeBlock(p []byte, recCount int) error {
	recs, err := rd.dec.decode(p, recCount, rd.recs[:0])
	rd.recs = recs
	rd.next = 0
	return err
}

// blockDecoder decodes block payloads. It is the per-goroutine state of the
// parallel decoder and the block-decoding half of BinaryReader.
type blockDecoder struct {
	intern *Interner
	strs   []string
}

// decode appends the payload's records to recs and returns the extended
// slice. The payload must already have passed its CRC check.
func (d *blockDecoder) decode(p []byte, recCount int, recs []Record) ([]Record, error) {
	strCount, n := binary.Uvarint(p)
	if n <= 0 || strCount > uint64(len(p)) {
		return recs, fmt.Errorf("bad string table header")
	}
	p = p[n:]
	d.strs = d.strs[:0]
	for i := uint64(0); i < strCount; i++ {
		slen, n := binary.Uvarint(p)
		if n <= 0 || slen > uint64(len(p)-n) {
			return recs, fmt.Errorf("bad string table entry %d", i)
		}
		d.strs = append(d.strs, d.intern.internFuncString(string(p[n:n+int(slen)])))
		p = p[n+int(slen):]
	}
	var prevAddr uint64
	for i := 0; i < recCount; i++ {
		if len(p) == 0 {
			return recs, fmt.Errorf("truncated record %d", i)
		}
		tag := p[0]
		p = p[1:]
		var r Record
		r.Op = opFromIndex[tag&3]
		delta, n := binary.Varint(p)
		if n <= 0 {
			return recs, fmt.Errorf("bad address in record %d", i)
		}
		p = p[n:]
		r.Addr = prevAddr + uint64(delta)
		prevAddr = r.Addr
		size, n := binary.Varint(p)
		if n <= 0 || size < 0 {
			return recs, fmt.Errorf("bad size in record %d", i)
		}
		p = p[n:]
		r.Size = size
		fidx, n := binary.Uvarint(p)
		if n <= 0 || fidx >= uint64(len(d.strs)) {
			return recs, fmt.Errorf("bad function index in record %d", i)
		}
		p = p[n:]
		r.Func = d.strs[fidx]
		if tag&tagHasSym != 0 {
			r.HasSym = true
			r.Vis = Global
			r.Aggregate = tag&tagAggregate != 0
			if tag&tagLocal != 0 {
				r.Vis = Local
				frame, n := binary.Varint(p)
				if n <= 0 {
					return recs, fmt.Errorf("bad frame in record %d", i)
				}
				p = p[n:]
				thread, n := binary.Varint(p)
				if n <= 0 {
					return recs, fmt.Errorf("bad thread in record %d", i)
				}
				p = p[n:]
				r.Frame, r.Thread = int(frame), int(thread)
			}
			vidx, n := binary.Uvarint(p)
			if n <= 0 || vidx >= uint64(len(d.strs)) {
				return recs, fmt.Errorf("bad variable index in record %d", i)
			}
			p = p[n:]
			v, err := d.intern.internVarString(d.strs[vidx])
			if err != nil {
				return recs, fmt.Errorf("bad variable in record %d: %v", i, err)
			}
			r.Var = v
		} else if tag&(tagLocal|tagAggregate) != 0 {
			return recs, fmt.Errorf("bad tag %#x in record %d", tag, i)
		}
		recs = append(recs, r)
	}
	if len(p) != 0 {
		return recs, fmt.Errorf("%d trailing bytes after %d records", len(p), recCount)
	}
	return recs, nil
}

// Read returns the next record, or io.EOF at end of stream.
func (rd *BinaryReader) Read() (Record, error) {
	if rd.err != nil {
		return Record{}, rd.err
	}
	if err := rd.ensurePre(); err != nil {
		return Record{}, err
	}
	for rd.next >= len(rd.recs) {
		if err := rd.loadBlock(); err != nil {
			rd.err = err
			return Record{}, err
		}
	}
	r := rd.recs[rd.next]
	rd.next++
	return r, nil
}

// NextBlock returns the records remaining in the current decoded block,
// loading the next block when it is exhausted — the zero-copy batch path
// behind NewSource. The returned slice aliases the reader's block buffer
// and is only valid until the next NextBlock/Read/ReadBatch call. io.EOF
// signals a clean end of stream.
func (rd *BinaryReader) NextBlock() ([]Record, error) {
	if rd.err != nil {
		return nil, rd.err
	}
	if err := rd.ensurePre(); err != nil {
		return nil, err
	}
	for rd.next >= len(rd.recs) {
		if err := rd.loadBlock(); err != nil {
			rd.err = err
			return nil, err
		}
	}
	recs := rd.recs[rd.next:]
	rd.next = len(rd.recs)
	return recs, nil
}

// ReadBatch fills dst with up to len(dst) records and returns how many were
// read; (0, io.EOF) signals end of stream. Whole decoded blocks are copied
// at once, so large batches decode with no per-record overhead.
func (rd *BinaryReader) ReadBatch(dst []Record) (int, error) {
	if rd.err != nil {
		return 0, rd.err
	}
	if err := rd.ensurePre(); err != nil {
		return 0, err
	}
	n := 0
	for n < len(dst) {
		if rd.next >= len(rd.recs) {
			err := rd.loadBlock()
			if err == io.EOF {
				if n > 0 {
					return n, nil
				}
				rd.err = io.EOF
				return 0, io.EOF
			}
			if err != nil {
				rd.err = err
				return n, err
			}
		}
		c := copy(dst[n:], rd.recs[rd.next:])
		rd.next += c
		n += c
	}
	return n, nil
}

// ReadAll reads the remaining records into a slice.
func (rd *BinaryReader) ReadAll() ([]Record, error) {
	var recs []Record
	for {
		if rd.next < len(rd.recs) {
			recs = append(recs, rd.recs[rd.next:]...)
			rd.next = len(rd.recs)
		}
		if rd.err != nil {
			if rd.err == io.EOF {
				return recs, nil
			}
			return recs, rd.err
		}
		if err := rd.ensurePre(); err != nil {
			if err == io.EOF {
				return recs, nil
			}
			return recs, err
		}
		if err := rd.loadBlock(); err != nil {
			rd.err = err
			if err == io.EOF {
				return recs, nil
			}
			return recs, err
		}
	}
}
