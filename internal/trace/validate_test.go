package trace

import (
	"bytes"
	"strings"
	"testing"
)

const validTrace = `START PID 13063
S 7ff0001b0 8 main LV 0 1 _zzq_result
L 7ff0001b0 8 main
S 000601040 4 main GV glScalar
S 7ff0001bc 4 main LV 0 1 lcScalar
S 0006010e0 8 foo GS glStructArray[0].d1
M 7ff0001b8 4 main LV 0 1 i
`

func validateString(t *testing.T, src string, opts ValidateOptions) *Report {
	t.Helper()
	rep, err := Validate(strings.NewReader(src), opts)
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	return rep
}

func TestValidateCleanTrace(t *testing.T) {
	rep := validateString(t, validTrace, ValidateOptions{})
	if !rep.OK() || rep.Warnings() != 0 {
		t.Fatalf("clean trace: %s", rep.Summary())
	}
	if rep.Records != 6 || rep.BadLines != 0 || !rep.HasHeader || rep.Header.PID != 13063 {
		t.Errorf("report = %+v", rep)
	}
	if !strings.HasPrefix(rep.Summary(), "ok: 6 records") {
		t.Errorf("summary = %q", rep.Summary())
	}
}

// diagCodes collects the codes of all findings.
func diagCodes(rep *Report) map[string]int {
	m := map[string]int{}
	for _, d := range rep.Diags {
		m[d.Code]++
	}
	return m
}

func TestValidateFindings(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		wantCode string
		wantErrs int
		wantWarn int
	}{
		{
			name:     "parse failure",
			src:      "START PID 1\njunk line\n",
			wantCode: CodeParse, wantErrs: 1,
		},
		{
			name:     "corrupt header",
			src:      "START PID banana\nS 000601040 4 main GV g\n",
			wantCode: CodeHeader, wantErrs: 1,
		},
		{
			name:     "duplicate header",
			src:      "START PID 1\nS 000601040 4 main GV g\nSTART PID 2\n",
			wantCode: CodeHeader, wantErrs: 1, // flagged as a misplaced mid-stream START
		},
		{
			name:     "no header",
			src:      "S 000601040 4 main GV g\n",
			wantCode: CodeNoHeader, wantWarn: 1,
		},
		{
			name:     "implausible pid",
			src:      "START PID 0\nS 000601040 4 main GV g\n",
			wantCode: CodeHeader, wantWarn: 1,
		},
		{
			name:     "unmapped address",
			src:      "START PID 1\nS 900000000 4 main GV g\n",
			wantCode: CodeRegion, wantErrs: 1,
		},
		{
			name:     "region straddle",
			src:      "START PID 1\nS 0009fffff 8 main GV g\n",
			wantCode: CodeRegion, wantErrs: 1,
		},
		{
			name:     "global at stack address",
			src:      "START PID 1\nS 7ff0001b0 4 main GV g\n",
			wantCode: CodeRegion, wantWarn: 1,
		},
		{
			name:     "local at data address",
			src:      "START PID 1\nS 000601040 4 main LV 0 1 x\n",
			wantCode: CodeRegion, wantWarn: 1,
		},
		{
			name:     "thread out of order",
			src:      "START PID 1\nS 7ff0001b0 4 main LV 0 3 x\n",
			wantCode: CodeOrder, wantErrs: 1,
		},
		{
			name:     "negative frame",
			src:      "START PID 1\nS 7ff0001b0 4 main LV -1 1 x\n",
			wantCode: CodeOrder, wantErrs: 1,
		},
		{
			name:     "visibility conflict",
			src:      "START PID 1\nS 000601040 4 main GV g\nS 7ff0001b0 4 main LV 0 1 g\n",
			wantCode: CodeSymRef, wantErrs: 1,
		},
		{
			name:     "scalar-aggregate mix",
			src:      "START PID 1\nS 000601040 4 main GV g\nS 000601044 4 main GS g.x\n",
			wantCode: CodeSymRef, wantWarn: 1,
		},
		{
			name:     "aggregate scope without path",
			src:      "START PID 1\nS 000601040 4 main GS g\n",
			wantCode: CodeSymRef, wantWarn: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := validateString(t, tc.src, ValidateOptions{})
			if got := diagCodes(rep); got[tc.wantCode] == 0 {
				t.Errorf("no %s finding; got %v\n%s", tc.wantCode, got, rep.Summary())
			}
			if rep.Errors() != tc.wantErrs {
				t.Errorf("errors = %d, want %d\n%s", rep.Errors(), tc.wantErrs, rep.Summary())
			}
			if rep.Warnings() != tc.wantWarn {
				t.Errorf("warnings = %d, want %d\n%s", rep.Warnings(), tc.wantWarn, rep.Summary())
			}
		})
	}
}

func TestValidateThreadMonotonicIntroduction(t *testing.T) {
	// 1, 2, then 2 and 1 again: all fine. A jump to 4 is not.
	good := "START PID 1\n" +
		"S 7ff0001b0 4 main LV 0 1 x\n" +
		"S 7ff0001b4 4 main LV 0 2 x\n" +
		"S 7ff0001b0 4 main LV 0 2 x\n" +
		"S 7ff0001b4 4 main LV 0 1 x\n"
	if rep := validateString(t, good, ValidateOptions{}); !rep.OK() {
		t.Errorf("interleaved threads flagged: %s", rep.Summary())
	}
	bad := good + "S 7ff0001b0 4 main LV 0 4 x\n"
	rep := validateString(t, bad, ValidateOptions{})
	if rep.OK() || diagCodes(rep)[CodeOrder] == 0 {
		t.Errorf("thread jump not flagged: %s", rep.Summary())
	}
}

func TestValidateSyntheticWindowIsWarning(t *testing.T) {
	// Addresses just above StackTop are the transformation engine's
	// synthetic injected-variable window: suspicious, not fatal.
	src := "START PID 1\nL 7ff000510 4 main GV ITEMSPERLINE\n"
	rep := validateString(t, src, ValidateOptions{})
	if !rep.OK() {
		t.Errorf("synthetic window treated as error: %s", rep.Summary())
	}
	if rep.Warnings() == 0 {
		t.Error("synthetic window not flagged at all")
	}
}

func TestValidateSkipRegionChecks(t *testing.T) {
	src := "START PID 1\nS 900000000 4 main GV g\n"
	rep := validateString(t, src, ValidateOptions{SkipRegionChecks: true})
	if !rep.OK() || rep.Warnings() != 0 {
		t.Errorf("region checks not skipped: %s", rep.Summary())
	}
}

func TestValidateDiagCap(t *testing.T) {
	var b strings.Builder
	b.WriteString("START PID 1\n")
	for i := 0; i < 10; i++ {
		b.WriteString("junk\n")
	}
	rep := validateString(t, b.String(), ValidateOptions{MaxDiags: 3})
	if len(rep.Diags) != 3 || rep.Dropped != 7 {
		t.Errorf("kept %d dropped %d, want 3/7", len(rep.Diags), rep.Dropped)
	}
	if rep.Errors() != 10 {
		t.Errorf("errors = %d, want 10 (counted past cap)", rep.Errors())
	}
	if !strings.Contains(rep.Summary(), "7 more findings") {
		t.Errorf("summary lacks drop note: %q", rep.Summary())
	}
}

func TestValidateRecordsInProcess(t *testing.T) {
	_, recs, err := ParseAll(validTrace)
	if err != nil {
		t.Fatal(err)
	}
	rep := ValidateRecords(Header{PID: 13063}, true, recs)
	if !rep.OK() || rep.Warnings() != 0 || rep.Records != len(recs) {
		t.Errorf("in-process validation: %s", rep.Summary())
	}
	// Damage one record: global relocated to an unmapped address.
	recs[2].Addr = 0x900000000
	rep = ValidateRecords(Header{PID: 13063}, true, recs)
	if rep.OK() {
		t.Error("unmapped address not flagged")
	}
}

func TestValidateBinaryTrace(t *testing.T) {
	h, recs, err := ParseAll(validTrace)
	if err != nil {
		t.Fatal(err)
	}
	data := encodeBinary(t, &h, recs, 2)
	rep, err := Validate(bytes.NewReader(data), ValidateOptions{})
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !rep.OK() || rep.Warnings() != 0 {
		t.Fatalf("clean binary trace: %s", rep.Summary())
	}
	if rep.Records != len(recs) || !rep.HasHeader || rep.Header.PID != 13063 {
		t.Errorf("report = %+v", rep)
	}

	// Flip a payload byte: the damaged block must surface as a dropped-block
	// error diag with the block ordinal, not abort validation.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0xff
	rep, err = Validate(bytes.NewReader(bad), ValidateOptions{})
	if err != nil {
		t.Fatalf("validate damaged: %v", err)
	}
	if rep.OK() {
		t.Fatal("damaged block not flagged")
	}
	codes := diagCodes(rep)
	if codes[CodeBlock] == 0 {
		t.Errorf("no %s diag: %+v", CodeBlock, rep.Diags)
	}
	if rep.BadLines != 1 {
		t.Errorf("BadLines = %d, want 1 dropped block", rep.BadLines)
	}
	if rep.Records != len(recs)-2 {
		t.Errorf("records = %d, want %d (one 2-record block dropped)", rep.Records, len(recs)-2)
	}
}

func TestValidateBinaryBadPreamble(t *testing.T) {
	data := append([]byte(nil), binaryMagic[:]...)
	// Truncated right after the magic: flags and PID missing.
	rep, err := Validate(bytes.NewReader(data), ValidateOptions{})
	if err != nil {
		t.Fatalf("validate: %v", err)
	}
	if rep.OK() || diagCodes(rep)[CodeBlock] == 0 {
		t.Errorf("unreadable preamble not flagged: %s", rep.Summary())
	}
}
