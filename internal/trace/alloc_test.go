package trace

import (
	"bytes"
	"io"
	"runtime"
	"testing"
)

// TestWriterWriteZeroAlloc pins the text writer's per-record allocation
// count at zero: Write renders into a scratch buffer the writer owns, so
// steady-state encoding never touches the heap.
func TestWriterWriteZeroAlloc(t *testing.T) {
	_, recs := sampleRecords(t)
	wr := NewWriter(io.Discard)
	for i := range recs { // warm the scratch buffer
		if err := wr.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := range recs {
			if err := wr.Write(&recs[i]); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg != 0 {
		t.Errorf("Writer.Write allocates: %.2f allocs per %d records, want 0", avg, len(recs))
	}
}

// TestInternerParseZeroAlloc pins the byte-slice parser at zero
// steady-state allocations: once the interner has seen every function and
// variable in the working set, re-parsing lines is allocation-free.
func TestInternerParseZeroAlloc(t *testing.T) {
	var lines [][]byte
	for _, l := range bytes.Split([]byte(sampleTrace), []byte("\n")) {
		if len(l) == 0 || bytes.HasPrefix(l, []byte("START")) {
			continue
		}
		lines = append(lines, l)
	}
	in := NewInterner()
	for _, l := range lines { // warm the intern tables
		if _, err := in.ParseRecord(l); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		for _, l := range lines {
			if _, err := in.ParseRecord(l); err != nil {
				t.Fatal(err)
			}
		}
	})
	if avg != 0 {
		t.Errorf("Interner.ParseRecord allocates: %.2f allocs per %d lines, want 0", avg, len(lines))
	}
}

// TestReaderSteadyStateAllocs streams a large trace through the Reader and
// asserts the steady state (after the interner and scratch buffers warm up
// on an initial prefix) allocates nothing per record.
func TestReaderSteadyStateAllocs(t *testing.T) {
	const warm, measured = 200, 5000
	data := []byte(bigTextTrace(2000)) // 6000 records
	rd := NewReader(bytes.NewReader(data))
	var rec Record
	var err error
	for i := 0; i < warm; i++ {
		if rec, err = rd.Read(); err != nil {
			t.Fatal(err)
		}
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < measured; i++ {
		if rec, err = rd.Read(); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	_ = rec
	mallocs := after.Mallocs - before.Mallocs
	// Allow a little background noise from the runtime itself, but per-record
	// cost must round to zero.
	if float64(mallocs)/measured > 0.01 {
		t.Errorf("Reader.Read steady state: %d mallocs over %d records", mallocs, measured)
	}
}
