package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// TestSourceMatchesReadAll: draining a source reproduces the serial
// reader's output for both containers.
func TestSourceMatchesReadAll(t *testing.T) {
	h, recs := sampleRecords(t)
	inputs := map[string][]byte{
		"text":   []byte(sampleTrace),
		"binary": encodeBinary(t, &h, recs, 2),
	}
	for name, data := range inputs {
		for _, batch := range []int{0, 1, 3} {
			rd, _, err := OpenReader(bytes.NewReader(data), DecodeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			src := NewSource(rd, batch)
			gh, err := src.Header()
			if err != nil || gh != h || !src.HasHeader() {
				t.Fatalf("%s batch=%d: header=%+v err=%v", name, batch, gh, err)
			}
			got, err := ReadSource(src)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(recs) {
				t.Fatalf("%s batch=%d: got %d records, want %d", name, batch, len(got), len(recs))
			}
			for i := range got {
				if !got[i].Equal(&recs[i]) {
					t.Fatalf("%s batch=%d: record %d = %v, want %v", name, batch, i, &got[i], &recs[i])
				}
			}
			// The source is exhausted: EOF is sticky.
			for i := 0; i < 2; i++ {
				if b, err := src.NextBatch(); b != nil || err != io.EOF {
					t.Fatalf("%s: NextBatch after end = (%v, %v), want (nil, EOF)", name, b, err)
				}
			}
		}
	}
}

// TestSourceBatchContract: batches are non-empty, at most batch-sized for
// text, and reused between calls (the documented aliasing).
func TestSourceBatchContract(t *testing.T) {
	h, recs := sampleRecords(t)
	_ = h
	rd := NewReader(strings.NewReader(sampleTrace))
	src := NewSource(rd, 2)
	var n int
	for {
		b, err := src.NextBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(b) == 0 || len(b) > 2 {
			t.Fatalf("batch size %d, want 1..2", len(b))
		}
		n += len(b)
	}
	if n != len(recs) {
		t.Fatalf("streamed %d records, want %d", n, len(recs))
	}
}

// TestSourcePartialBatchBeforeError: a decoding error surfaces only after
// the records decoded before it have been yielded, exactly like the serial
// reader's partial ReadBatch output.
func TestSourcePartialBatchBeforeError(t *testing.T) {
	text := "START PID 7\nL 7ff0001b0 8 main\nBOGUS\n"
	rd := NewReader(strings.NewReader(text))
	src := NewSource(rd, 8)
	b, err := src.NextBatch()
	if err != nil || len(b) != 1 {
		t.Fatalf("first batch = (%d records, %v), want the pre-error prefix", len(b), err)
	}
	_, err = src.NextBatch()
	var ble *BadLineError
	if !errors.As(err, &ble) || ble.Line != 3 {
		t.Fatalf("second batch error = %v, want BadLineError at line 3", err)
	}
	// The error is sticky.
	if _, err2 := src.NextBatch(); !errors.Is(err2, err) {
		t.Fatalf("sticky error = %v, want %v", err2, err)
	}
}

// TestSliceSource: windows cover the slice in order without copying.
func TestSliceSource(t *testing.T) {
	h, recs := sampleRecords(t)
	src := NewSliceSource(h, true, recs, 2)
	got, err := ReadSource(src)
	if err != nil || len(got) != len(recs) {
		t.Fatalf("got %d records err=%v", len(got), err)
	}
	empty := NewSliceSource(Header{}, false, nil, 0)
	if b, err := empty.NextBatch(); b != nil || err != io.EOF {
		t.Fatalf("empty source = (%v, %v), want (nil, EOF)", b, err)
	}
}

// TestOpenSourceSniffs: OpenSource detects the container like OpenReader.
func TestOpenSourceSniffs(t *testing.T) {
	h, recs := sampleRecords(t)
	bin := encodeBinary(t, &h, recs, 0)
	if _, f, err := OpenSource(bytes.NewReader(bin), DecodeOptions{}, 0); err != nil || f != FormatBinary {
		t.Fatalf("binary: format=%v err=%v", f, err)
	}
	if _, f, err := OpenSource(strings.NewReader(sampleTrace), DecodeOptions{}, 0); err != nil || f != FormatText {
		t.Fatalf("text: format=%v err=%v", f, err)
	}
}
