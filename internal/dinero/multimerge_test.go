package dinero

import (
	"context"
	"math"
	"strings"
	"testing"

	"tracedst/internal/cache"
	"tracedst/internal/trace"
)

// TestMultiSimMergeFrom is the multi-config half of the sharded-merge
// property: two cold full-attribution MultiSims over a split trace,
// merged, must reproduce — to the byte — every config's report from one
// serial run with a Flush at the split, across kernel and fallback
// engines and every split position including the empty shards.
func TestMultiSimMergeFrom(t *testing.T) {
	cfgs := multiTestConfigs()
	recs := multiRecords(20000, 12)
	for _, statsOnly := range []bool{false, true} {
		for _, split := range []int{0, 1, len(recs) / 3, len(recs) / 2, len(recs)} {
			ref, err := NewMulti(MultiOptions{Configs: cfgs, StatsOnly: statsOnly})
			if err != nil {
				t.Fatal(err)
			}
			ref.Process(recs[:split])
			ref.Flush()
			ref.Process(recs[split:])

			a, _ := NewMulti(MultiOptions{Configs: cfgs, StatsOnly: statsOnly})
			b, _ := NewMulti(MultiOptions{Configs: cfgs, StatsOnly: statsOnly})
			a.Process(recs[:split])
			b.Process(recs[split:])
			if err := a.MergeFrom(b); err != nil {
				t.Fatal(err)
			}
			for i, cfg := range cfgs {
				if got, want := a.Report(i), ref.Report(i); got != want {
					t.Errorf("statsOnly=%v split %d config %d (%+v): merged report != flush-at-boundary serial report\n--- merged ---\n%s\n--- ref ---\n%s",
						statsOnly, split, i, cfg, got, want)
				}
				gs, ws := a.Stats(i), ref.Stats(i)
				if gs.Misses() != ws.Misses() || gs.Accesses() != ws.Accesses() {
					t.Errorf("statsOnly=%v split %d config %d: stats diverge (merged %d/%d, ref %d/%d)",
						statsOnly, split, i, gs.Misses(), gs.Accesses(), ws.Misses(), ws.Accesses())
				}
			}
			if a.Records() != ref.Records() || a.SimulatedRecords() != ref.SimulatedRecords() {
				t.Errorf("statsOnly=%v split %d: merged counters %d/%d != ref %d/%d",
					statsOnly, split, a.Records(), a.SimulatedRecords(), ref.Records(), ref.SimulatedRecords())
			}
		}
	}
}

// TestMultiSimMergeFromPrivateInterning pins the property that makes
// sharding possible at all: each shard interns symbols privately (first
// sight order differs per shard), and the merged attribution must still
// be byte-identical because attrib merges by symbol name.
func TestMultiSimMergeFromPrivateInterning(t *testing.T) {
	cfgs := []cache.Config{
		{Size: 2048, BlockSize: 32, Assoc: 2, Repl: cache.ReplLRU},
	}
	recs := multiRecords(10000, 16)
	// Reverse the second half so shard b meets the symbols in a different
	// order than shard a (and than the serial run).
	split := len(recs) / 2
	back := make([]trace.Record, len(recs)-split)
	copy(back, recs[split:])
	for i, j := 0, len(back)-1; i < j; i, j = i+1, j-1 {
		back[i], back[j] = back[j], back[i]
	}

	ref, err := NewMulti(MultiOptions{Configs: cfgs})
	if err != nil {
		t.Fatal(err)
	}
	ref.Process(recs[:split])
	ref.Flush()
	ref.Process(back)

	a, _ := NewMulti(MultiOptions{Configs: cfgs})
	b, _ := NewMulti(MultiOptions{Configs: cfgs})
	a.Process(recs[:split])
	b.Process(back)
	if err := a.MergeFrom(b); err != nil {
		t.Fatal(err)
	}
	if got, want := a.Report(0), ref.Report(0); got != want {
		t.Errorf("private intern tables: merged report != serial report\n--- merged ---\n%s\n--- ref ---\n%s", got, want)
	}
}

// TestMultiSimMergeFromRejects covers every refusal: config-count
// mismatch, geometry mismatch, sampling on either side, and mixed
// attribution modes.
func TestMultiSimMergeFromRejects(t *testing.T) {
	base := []cache.Config{{Size: 2048, BlockSize: 32, Assoc: 2, Repl: cache.ReplLRU}}
	mk := func(opts MultiOptions) *MultiSim {
		t.Helper()
		ms, err := NewMulti(opts)
		if err != nil {
			t.Fatal(err)
		}
		return ms
	}
	cases := []struct {
		name string
		a, b *MultiSim
	}{
		{"config count", mk(MultiOptions{Configs: base}),
			mk(MultiOptions{Configs: append([]cache.Config{{Size: 1024, BlockSize: 32, Assoc: 1}}, base...)})},
		{"set counts", mk(MultiOptions{Configs: base}),
			mk(MultiOptions{Configs: []cache.Config{{Size: 4096, BlockSize: 32, Assoc: 2, Repl: cache.ReplLRU}}})},
		{"sampling on other", mk(MultiOptions{Configs: base}),
			mk(MultiOptions{Configs: base, Sampling: Sampling{Interval: 4}, StatsOnly: true})},
		{"stats-only mismatch", mk(MultiOptions{Configs: base}),
			mk(MultiOptions{Configs: base, StatsOnly: true})},
	}
	for _, tc := range cases {
		if err := tc.a.MergeFrom(tc.b); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
	if err := mk(MultiOptions{Configs: base, Sampling: Sampling{Interval: 4}, StatsOnly: true}).
		MergeFrom(mk(MultiOptions{Configs: base, Sampling: Sampling{Interval: 4}, StatsOnly: true})); err == nil {
		t.Error("sampling on both sides: want error (interval state spans the stream)")
	}
}

// TestMultiSimEmptyTraceScales is the zero-records regression: every
// scale must be a safe 1.0 — never NaN or Inf — and the report and scaled
// stats must render cleanly when a simulator saw no records at all (an
// empty trace, or an empty shard of a sharded run).
func TestMultiSimEmptyTraceScales(t *testing.T) {
	samplings := []Sampling{{}, {Interval: 4}, {SetFactor: 4}, {Interval: 8, SetFactor: 4}}
	cfgs := []cache.Config{
		{Size: 2048, BlockSize: 32, Assoc: 2, Repl: cache.ReplLRU},
		{Size: 4096, BlockSize: 32, Assoc: 1},
	}
	for _, sm := range samplings {
		ms, err := NewMulti(MultiOptions{Configs: cfgs, Sampling: sm, StatsOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		if got := ms.RecordScale(); got != 1 {
			t.Errorf("sampling %+v: empty RecordScale() = %v, want 1", sm, got)
		}
		for i := range cfgs {
			sc := ms.Scale(i)
			if math.IsNaN(sc) || math.IsInf(sc, 0) {
				t.Errorf("sampling %+v config %d: empty Scale() = %v", sm, i, sc)
			}
			st := ms.ScaledStats(i)
			if st.Accesses() != 0 || st.Misses() != 0 {
				t.Errorf("sampling %+v config %d: empty ScaledStats = %d/%d, want zeros",
					sm, i, st.Misses(), st.Accesses())
			}
		}
	}
	// Full-attribution empty report path: must render without NaN/Inf.
	ms, err := NewMulti(MultiOptions{Configs: cfgs})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		rep := ms.Report(i)
		if rep == "" {
			t.Errorf("config %d: empty-trace report is empty", i)
		}
		if strings.Contains(rep, "NaN") || strings.Contains(rep, "Inf") {
			t.Errorf("config %d: empty-trace report contains NaN/Inf:\n%s", i, rep)
		}
	}
}

// TestMultiSimShardedRecordsEmpty pins the sharded entry points on the
// degenerate inputs: an empty record slice yields a usable zero-shard
// result, and shard counts clamp to the record count.
func TestMultiSimShardedRecordsEmpty(t *testing.T) {
	cfgs := []cache.Config{{Size: 2048, BlockSize: 32, Assoc: 2, Repl: cache.ReplLRU}}
	res, err := MultiSimShardedRecords(context.Background(), nil, MultiOptions{Configs: cfgs}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sim.Records() != 0 {
		t.Errorf("empty input: %d records", res.Sim.Records())
	}
	if sc := res.Sim.RecordScale(); sc != 1 {
		t.Errorf("empty input: RecordScale() = %v, want 1", sc)
	}
	if rep := res.Sim.Report(0); strings.Contains(rep, "NaN") || strings.Contains(rep, "Inf") {
		t.Errorf("empty sharded report contains NaN/Inf:\n%s", rep)
	}

	recs := multiRecords(3, 2)
	res, err = MultiSimShardedRecords(context.Background(), recs, MultiOptions{Configs: cfgs}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requested != 16 || res.Shards > len(recs) {
		t.Errorf("clamp: requested %d effective %d over %d records", res.Requested, res.Shards, len(recs))
	}
	if res.Sim.Records() != int64(len(recs)) {
		t.Errorf("clamp: %d records simulated, want %d", res.Sim.Records(), len(recs))
	}
}
