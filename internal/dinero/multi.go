package dinero

import (
	"context"
	"fmt"
	"io"
	"strconv"

	"tracedst/internal/cache"
	"tracedst/internal/telemetry"
	"tracedst/internal/trace"
)

// Sampling selects an approximate simulation tier for a MultiSim. The zero
// value is exact.
type Sampling struct {
	// SetFactor K > 1 simulates only cache sets whose index ≡ 0 (mod K)
	// and scales totals by the sampled fraction. Must be a power of two,
	// and every configuration must be fast-kernel eligible (see
	// cache.CanMulti). Per-set state is independent, so sampled sets'
	// counters are exact for recency-based replacement; ReplRandom shares
	// one draw stream and becomes approximate.
	SetFactor int
	// Interval k > 1 simulates every k-th window of Window records
	// (window 0 always runs) and scales totals by the fed/simulated ratio.
	// Accurate when behaviour is phase-stable at the window scale.
	Interval int
	// Window is the interval-sampling window length in records
	// (DefaultSampleWindow when zero).
	Window int
}

// DefaultSampleWindow is the interval-sampling window length when
// Sampling.Window is zero.
const DefaultSampleWindow = 4096

// Exact reports whether the sampling configuration is a no-op.
func (sm Sampling) Exact() bool { return sm.SetFactor <= 1 && sm.Interval <= 1 }

// MultiOptions configure a multi-configuration simulation.
type MultiOptions struct {
	// Configs are the L1 geometries to evaluate, all in one pass.
	Configs []cache.Config
	// L2, when non-nil, adds the same second level behind every config
	// (forces the full per-config simulator path).
	L2 *cache.Config
	// Translate maps virtual addresses before they reach any cache; it
	// runs once per record, shared by every configuration.
	Translate func(uint64) uint64
	// Syms is the shared intern table (see Options.Syms).
	Syms *trace.SymTab
	// Sampling selects the approximation tier; zero value is exact.
	Sampling Sampling
	// StatsOnly skips per-variable/per-function attribution and the
	// conflict matrix for fast-kernel configs, collecting cache-level
	// statistics only — the sweep engine's mode, where only miss totals
	// are consumed and symbol resolution would be pure overhead. Reports
	// and Vars/Funcs/Conflicts for fast configs come back empty; cache
	// statistics are unaffected and remain exact.
	StatsOnly bool
}

// MultiSim evaluates N cache configurations over one pass of a trace.
// Record iteration, op dispatch, address translation and symbol resolution
// happen once per record; each configuration then updates its own state.
// Configurations inside the fast-kernel envelope (single-level, no
// prefetch, no classification) share cache.MultiSim's flat state; the rest
// fall back to full Simulators behind the same front end. Exact-mode
// results are byte-identical to N independent Simulator runs — Report(i)
// renders through the same code path over the same counters.
type MultiSim struct {
	cfgs     []cache.Config
	syms     *trace.SymTab
	trustIDs bool
	nosymID  trace.SymID

	translate func(uint64) uint64
	sampling  Sampling
	window    int64
	statsOnly bool

	// kernel covers the fast configs; kernelIdx maps kernel slot -> global
	// config index and kernelAt holds their attribution state.
	kernel    *cache.MultiSim
	kernelIdx []int
	kernelAt  []attrib
	visitFn   cache.MultiVisit

	// subs are the fallback full simulators; subIdx maps sub -> global
	// config index. slot maps global index -> (isKernel, local index).
	subs   []*Simulator
	subIdx []int
	slot   []multiSlot

	// Per-record resolution shared by every kernel config via visitFn.
	curVid trace.SymID
	curFid trace.SymID
	curOwn cache.OwnerID

	fed     int64 // records seen (including skipped windows)
	simFed  int64 // records in simulated windows
	ignored int64 // non-memory ops in simulated windows
}

type multiSlot struct {
	kernel bool
	idx    int
}

// NewMulti builds a multi-configuration simulator.
func NewMulti(opts MultiOptions) (*MultiSim, error) {
	if len(opts.Configs) == 0 {
		return nil, fmt.Errorf("dinero: NewMulti needs at least one config")
	}
	sm := opts.Sampling
	if sm.Interval < 0 || sm.SetFactor < 0 || sm.Window < 0 {
		return nil, fmt.Errorf("dinero: negative sampling parameter")
	}
	if sm.Interval > 1 && sm.Window == 0 {
		sm.Window = DefaultSampleWindow
	}
	syms := opts.Syms
	trust := syms != nil
	if syms == nil {
		syms = trace.NewSymTab()
	}
	m := &MultiSim{
		cfgs:      append([]cache.Config(nil), opts.Configs...),
		syms:      syms,
		trustIDs:  trust,
		nosymID:   syms.Intern(NoSymbol),
		translate: opts.Translate,
		sampling:  sm,
		window:    int64(sm.Window),
		slot:      make([]multiSlot, len(opts.Configs)),
	}
	var fast []cache.Config
	for i, cfg := range opts.Configs {
		if opts.L2 == nil && cache.CanMulti(cfg) == nil {
			m.slot[i] = multiSlot{kernel: true, idx: len(fast)}
			fast = append(fast, cfg)
			m.kernelIdx = append(m.kernelIdx, i)
			continue
		}
		if sm.SetFactor > 1 {
			return nil, fmt.Errorf("dinero: set sampling requires fast-kernel configs: config %d: %w",
				i, firstMultiErr(cfg, opts.L2))
		}
		sub, err := New(Options{L1: cfg, L2: opts.L2, Translate: opts.Translate, Syms: opts.Syms})
		if err != nil {
			return nil, fmt.Errorf("dinero: config %d: %w", i, err)
		}
		m.slot[i] = multiSlot{idx: len(m.subs)}
		m.subs = append(m.subs, sub)
		m.subIdx = append(m.subIdx, i)
	}
	if len(fast) > 0 {
		kernel, err := cache.NewMultiSim(fast, sm.SetFactor)
		if err != nil {
			return nil, err
		}
		m.kernel = kernel
		m.kernelAt = make([]attrib, len(fast))
		for ki, cfg := range fast {
			m.kernelAt[ki] = newAttrib(syms, cfg.Sets())
		}
		if !opts.StatsOnly {
			m.visitFn = m.visitBlock
		}
	}
	m.statsOnly = opts.StatsOnly
	return m, nil
}

// firstMultiErr explains why a config cannot use the fast kernel.
func firstMultiErr(cfg cache.Config, l2 *cache.Config) error {
	if l2 != nil {
		return fmt.Errorf("two-level hierarchy")
	}
	return cache.CanMulti(cfg)
}

// Flush invalidates every configuration's cache lines (kernel and
// fallback simulators alike), leaving statistics in place — the reference
// boundary operation for sharded simulation (see Simulator.Flush).
func (m *MultiSim) Flush() {
	if m.kernel != nil {
		m.kernel.Flush()
	}
	for _, sub := range m.subs {
		sub.Flush()
	}
}

// NumConfigs returns how many configurations the simulator evaluates.
func (m *MultiSim) NumConfigs() int { return len(m.cfgs) }

// Config returns configuration i.
func (m *MultiSim) Config(i int) cache.Config { return m.cfgs[i] }

// Sampling returns the active sampling configuration.
func (m *MultiSim) Sampling() Sampling { return m.sampling }

// Records returns how many trace records were fed (including records in
// windows that interval sampling skipped).
func (m *MultiSim) Records() int64 { return m.fed }

// SimulatedRecords returns how many records reached the simulators.
func (m *MultiSim) SimulatedRecords() int64 { return m.simFed }

// visitBlock is the kernel's per-block callback: it attributes the
// outcome for one fast config using the record resolution cached by apply.
func (m *MultiSim) visitBlock(cfg, set int, hit bool, evicted cache.OwnerID) {
	m.kernelAt[cfg].noteBlock(m.curVid, m.curFid, set, hit, m.curOwn, evicted)
}

func (m *MultiSim) varID(rec *trace.Record) trace.SymID {
	if !rec.HasSym {
		return m.nosymID
	}
	if m.trustIDs && rec.VarID != 0 {
		return rec.VarID
	}
	return m.syms.Intern(rec.Var.Root)
}

func (m *MultiSim) funcID(rec *trace.Record) trace.SymID {
	if m.trustIDs && rec.FuncID != 0 {
		return rec.FuncID
	}
	return m.syms.Intern(rec.Func)
}

// Feed simulates one trace record against every configuration.
func (m *MultiSim) Feed(rec *trace.Record) {
	m.fed++
	if k := int64(m.sampling.Interval); k > 1 {
		if ((m.fed-1)/m.window)%k != 0 {
			return
		}
	}
	m.simFed++
	for _, sub := range m.subs {
		sub.Feed(rec)
	}
	if m.kernel == nil {
		switch rec.Op {
		case trace.Load, trace.Store, trace.Modify:
		default:
			m.ignored++
		}
		return
	}
	switch rec.Op {
	case trace.Load:
		m.apply(rec, cache.Read)
	case trace.Store:
		m.apply(rec, cache.Write)
	case trace.Modify:
		m.apply(rec, cache.Read)
		m.apply(rec, cache.Write)
	default:
		m.ignored++
	}
}

// apply resolves a record once — translation, variable, function — and
// drives every fast config through the kernel. In StatsOnly mode symbol
// resolution is skipped entirely: owners only feed the conflict matrix,
// and cache statistics do not depend on them.
func (m *MultiSim) apply(rec *trace.Record, kind cache.Kind) {
	addr := rec.Addr
	if m.translate != nil {
		addr = m.translate(addr)
	}
	if m.statsOnly {
		m.kernel.Access(kind, addr, rec.Size, cache.NoOwner, nil)
		return
	}
	m.curVid = m.varID(rec)
	m.curFid = m.funcID(rec)
	m.curOwn = cache.OwnerID(m.curVid)
	m.kernel.Access(kind, addr, rec.Size, m.curOwn, m.visitFn)
}

// Process simulates a record slice.
func (m *MultiSim) Process(recs []trace.Record) {
	for i := range recs {
		m.Feed(&recs[i])
	}
}

// ProcessReader streams records from a trace reader until EOF.
func (m *MultiSim) ProcessReader(rd *trace.Reader) error {
	for {
		rec, err := rd.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		m.Feed(&rec)
	}
}

// ProcessSourceCtx is ProcessSource wrapped in a "dinero.multisim" span:
// when ctx carries a trace the span joins its tree, tagged with the fed
// record and configuration counts.
func (m *MultiSim) ProcessSourceCtx(ctx context.Context, src trace.RecordSource) error {
	sp, _ := telemetry.Default().StartSpanCtx(ctx, "dinero.multisim")
	err := m.ProcessSource(src)
	sp.SetAttr("records", strconv.FormatInt(m.Records(), 10))
	sp.SetAttr("configs", strconv.Itoa(m.NumConfigs()))
	sp.End()
	return err
}

// ProcessSource streams record batches from src until EOF, holding only
// one batch live at a time. Results are identical to Process over the
// materialized trace.
func (m *MultiSim) ProcessSource(src trace.RecordSource) error {
	for {
		batch, err := src.NextBatch()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		m.Process(batch)
	}
}

// Stats returns configuration i's raw L1 statistics: exact totals when
// sampling is off, sampled-subset totals otherwise (see ScaledStats).
func (m *MultiSim) Stats(i int) cache.Stats {
	s := m.slot[i]
	if s.kernel {
		return m.kernel.Stats(s.idx)
	}
	return m.subs[s.idx].L1().Stats()
}

// RecordScale is the interval-sampling expansion factor: records fed over
// records simulated (1 when off or nothing fed yet).
func (m *MultiSim) RecordScale() float64 {
	if m.sampling.Interval <= 1 || m.simFed == 0 {
		return 1
	}
	return float64(m.fed) / float64(m.simFed)
}

// Scale is configuration i's total expansion factor: record scale times
// its set-sampling scale.
func (m *MultiSim) Scale(i int) float64 {
	sc := m.RecordScale()
	if s := m.slot[i]; s.kernel {
		sc *= m.kernel.SetScale(s.idx)
	}
	return sc
}

// ScaledStats estimates configuration i's full-trace statistics by scaling
// the raw counters by Scale(i). With sampling off it returns the exact
// stats unchanged.
func (m *MultiSim) ScaledStats(i int) cache.Stats {
	return m.Stats(i).Scaled(m.Scale(i))
}

// MergeFrom folds another MultiSim's accumulated state into this one:
// per-config raw statistics, full attribution (per-variable series,
// per-function stats, conflict matrices — matched by symbol name, so the
// two sides may use different intern tables) and record counters. It is
// the reduce step of sharded multi-config simulation: merging cold shards
// equals one serial run with Flush at each shard boundary. Both sides
// must have the same configurations in the same order and exact sampling;
// other is left unchanged and must not be fed concurrently.
func (m *MultiSim) MergeFrom(other *MultiSim) error {
	if len(m.cfgs) != len(other.cfgs) {
		return fmt.Errorf("dinero: merge of %d-config multisim into %d-config multisim", len(other.cfgs), len(m.cfgs))
	}
	if !m.sampling.Exact() || !other.sampling.Exact() {
		return fmt.Errorf("dinero: multisim merge requires exact sampling on both sides")
	}
	if m.statsOnly != other.statsOnly {
		return fmt.Errorf("dinero: multisim merge across stats-only modes")
	}
	for i := range m.cfgs {
		if m.slot[i] != other.slot[i] {
			return fmt.Errorf("dinero: config %d runs on different engines (kernel vs fallback)", i)
		}
		if m.cfgs[i].Sets() != other.cfgs[i].Sets() {
			return fmt.Errorf("dinero: config %d set counts differ (%d vs %d)", i, m.cfgs[i].Sets(), other.cfgs[i].Sets())
		}
	}
	for ki := range m.kernelIdx {
		m.kernel.MergeStats(ki, other.kernel.Stats(ki))
		m.kernelAt[ki].mergeFrom(&other.kernelAt[ki])
	}
	for si := range m.subs {
		if err := m.subs[si].MergeFrom(other.subs[si]); err != nil {
			return err
		}
	}
	m.fed += other.fed
	m.simFed += other.simFed
	m.ignored += other.ignored
	return nil
}

// Sub returns the fallback Simulator behind configuration i, or nil when
// the config runs on the fast kernel — analysis consumers (plots, CSV)
// need the full simulator.
func (m *MultiSim) Sub(i int) *Simulator {
	if s := m.slot[i]; !s.kernel {
		return m.subs[s.idx]
	}
	return nil
}

// Vars returns configuration i's per-variable series (sorted as
// Simulator.Vars).
func (m *MultiSim) Vars(i int) []*VarSeries {
	s := m.slot[i]
	if s.kernel {
		return m.kernelAt[s.idx].vars()
	}
	return m.subs[s.idx].Vars()
}

// Funcs returns configuration i's per-function stats.
func (m *MultiSim) Funcs(i int) []*FuncStats {
	s := m.slot[i]
	if s.kernel {
		return m.kernelAt[s.idx].funcs()
	}
	return m.subs[s.idx].Funcs()
}

// Conflicts returns configuration i's eviction matrix.
func (m *MultiSim) Conflicts(i int) []Conflict {
	s := m.slot[i]
	if s.kernel {
		return m.kernelAt[s.idx].conflictList()
	}
	return m.subs[s.idx].Conflicts()
}

// Report renders configuration i's full text report. In exact mode it is
// byte-identical to the report of an independent Simulator run of the same
// config over the same records.
func (m *MultiSim) Report(i int) string {
	s := m.slot[i]
	if s.kernel {
		return renderReport(m.cfgs[i], m.kernel.Stats(s.idx), nil, &m.kernelAt[s.idx])
	}
	return m.subs[s.idx].Report()
}

// PageAllocs returns the lazily allocated series pages across all configs.
func (m *MultiSim) PageAllocs() int64 {
	var n int64
	for i := range m.kernelAt {
		n += m.kernelAt[i].pageAllocs()
	}
	for _, sub := range m.subs {
		n += sub.PageAllocs()
	}
	return n
}

// PublishTelemetry adds the run's totals to reg. The dinero.* counters
// accumulate as if each configuration had been an independent simulation,
// so downstream invariants (records_in == records_simulated) hold
// unchanged; the multisim.* counters expose the sharing:
// multisim.config_records (records × configs, summed per run) must equal
// multisim.per_config_records (what each config actually consumed) —
// tools/metricscheck enforces it.
func (m *MultiSim) PublishTelemetry(reg *telemetry.Registry) {
	n := int64(len(m.cfgs))
	reg.Counter("multisim.runs").Inc()
	reg.Counter("multisim.configs").Add(n)
	reg.Counter("multisim.records").Add(m.fed)
	reg.Counter("multisim.records_sampled").Add(m.simFed)
	reg.Counter("multisim.config_records").Add(m.simFed * n)
	perCfg := m.simFed * int64(len(m.kernelIdx))
	for _, sub := range m.subs {
		perCfg += sub.Records()
	}
	reg.Counter("multisim.per_config_records").Add(perCfg)

	reg.Counter("dinero.sims").Add(n)
	reg.Counter("dinero.records_simulated").Add(m.simFed * n)
	reg.Counter("dinero.records_ignored").Add(m.ignored * n)
	var acc, hits, misses int64
	for i := range m.cfgs {
		st := m.Stats(i)
		acc += st.Accesses()
		hits += st.Hits()
		misses += st.Misses()
	}
	reg.Counter("dinero.accesses").Add(acc)
	reg.Counter("dinero.hits").Add(hits)
	reg.Counter("dinero.misses").Add(misses)
	reg.Counter("dinero.page_allocs").Add(m.PageAllocs())

	if !m.sampling.Exact() {
		reg.Gauge("multisim.sample_sets").Set(int64(m.sampling.SetFactor))
		reg.Gauge("multisim.sample_interval").Set(int64(m.sampling.Interval))
		reg.Gauge("multisim.sample_window").Set(m.window)
		if m.fed > 0 {
			reg.Gauge("multisim.record_coverage_pct").Set(100 * m.simFed / m.fed)
		}
	}
}
