package dinero

import (
	"math"
	"testing"

	"tracedst/internal/cache"
	"tracedst/internal/trace"
)

// multiRecords builds a mixed synthetic trace: loads, stores and modifies
// over strided arrays with nosym gaps — the same shape as benchRecords but
// exercising every op the simulator dispatches.
func multiRecords(n, nvars int) []trace.Record {
	recs := benchRecords(n, nvars)
	for i := range recs {
		switch i % 5 {
		case 1:
			recs[i].Op = trace.Store
		case 3:
			recs[i].Op = trace.Modify
		}
		if i%97 == 0 {
			recs[i].Size = 40 // block-spanning
		}
	}
	return recs
}

// multiTestConfigs mixes fast-kernel geometries with a fallback config
// (miss classification forces the full Simulator path).
func multiTestConfigs() []cache.Config {
	return []cache.Config{
		{Size: 1024, BlockSize: 32, Assoc: 1},
		{Size: 8192, BlockSize: 32, Assoc: 2, Repl: cache.ReplLRU},
		{Size: 4096, BlockSize: 32, Assoc: 64, Repl: cache.ReplRoundRobin},
		{Size: 2048, BlockSize: 32, Assoc: 2, ClassifyMisses: true}, // fallback
		{Size: 4096, BlockSize: 64, Assoc: 4, Repl: cache.ReplFIFO, Write: cache.WriteThrough},
	}
}

// TestMultiSimReportsMatchSerial is the core exactness contract: one
// multi-config pass must produce, for every configuration, a report
// byte-identical to an independent Simulator run — on both the interned
// fast path and the string-interning fallback path.
func TestMultiSimReportsMatchSerial(t *testing.T) {
	cfgs := multiTestConfigs()
	for _, shared := range []bool{true, false} {
		recs := multiRecords(30000, 16)
		var tab *trace.SymTab
		if shared {
			tab = trace.NewSymTab()
			trace.InternRecords(tab, recs)
		}
		ms, err := NewMulti(MultiOptions{Configs: cfgs, Syms: tab})
		if err != nil {
			t.Fatal(err)
		}
		ms.Process(recs)
		for i, cfg := range cfgs {
			ref, err := New(Options{L1: cfg, Syms: tab})
			if err != nil {
				t.Fatal(err)
			}
			ref.Process(recs)
			if got, want := ms.Report(i), ref.Report(); got != want {
				t.Errorf("shared=%v config %d (%+v): multi report != serial report\n--- multi ---\n%s\n--- serial ---\n%s",
					shared, i, cfg, got, want)
			}
			if got, want := ms.Stats(i), ref.L1().Stats(); got.Misses() != want.Misses() || got.Accesses() != want.Accesses() {
				t.Errorf("shared=%v config %d: stats diverge (multi %d/%d, serial %d/%d)",
					shared, i, got.Misses(), got.Accesses(), want.Misses(), want.Accesses())
			}
		}
		if ms.Records() != int64(len(recs)) || ms.SimulatedRecords() != int64(len(recs)) {
			t.Errorf("shared=%v: records %d simulated %d, want %d", shared, ms.Records(), ms.SimulatedRecords(), len(recs))
		}
	}
}

// TestMultiSimIntervalSampling pins the window arithmetic — window 0
// always simulates, every k-th window thereafter — and checks the scaled
// estimate lands near the exact totals on a phase-stable trace.
func TestMultiSimIntervalSampling(t *testing.T) {
	cfg := cache.Config{Size: 4096, BlockSize: 32, Assoc: 2, Repl: cache.ReplLRU}
	recs := multiRecords(64*1024, 8)
	exact, err := NewMulti(MultiOptions{Configs: []cache.Config{cfg}})
	if err != nil {
		t.Fatal(err)
	}
	exact.Process(recs)

	const k, w = 4, 1024
	sampled, err := NewMulti(MultiOptions{
		Configs:  []cache.Config{cfg},
		Sampling: Sampling{Interval: k, Window: w},
	})
	if err != nil {
		t.Fatal(err)
	}
	sampled.Process(recs)

	wantSim := int64(0)
	for win := 0; win*w < len(recs); win++ {
		if win%k == 0 {
			end := (win + 1) * w
			if end > len(recs) {
				end = len(recs)
			}
			wantSim += int64(end - win*w)
		}
	}
	if sampled.SimulatedRecords() != wantSim {
		t.Fatalf("simulated %d records, want %d", sampled.SimulatedRecords(), wantSim)
	}
	if sampled.Records() != int64(len(recs)) {
		t.Fatalf("fed %d, want %d", sampled.Records(), len(recs))
	}
	gotScale := sampled.Scale(0)
	wantScale := float64(len(recs)) / float64(wantSim)
	if math.Abs(gotScale-wantScale) > 1e-9 {
		t.Fatalf("scale %v, want %v", gotScale, wantScale)
	}

	est, ref := sampled.ScaledStats(0), exact.Stats(0)
	if est.Accesses() == 0 {
		t.Fatal("no sampled accesses")
	}
	relErr := math.Abs(est.MissRatio()-ref.MissRatio()) / ref.MissRatio()
	if relErr > 0.10 {
		t.Errorf("interval-sampled miss ratio %.5f vs exact %.5f: relative error %.3f > 0.10",
			est.MissRatio(), ref.MissRatio(), relErr)
	}
	accErr := math.Abs(float64(est.Accesses()-ref.Accesses())) / float64(ref.Accesses())
	if accErr > 0.02 {
		t.Errorf("scaled accesses %d vs exact %d: relative error %.3f > 0.02", est.Accesses(), ref.Accesses(), accErr)
	}
}

// TestMultiSimSetSampling checks the set-sampling tier end to end at the
// dinero layer: eligible configs only, sampled sets exact, scaled miss
// ratio close to the exact run.
func TestMultiSimSetSampling(t *testing.T) {
	cfgs := []cache.Config{
		{Size: 4096, BlockSize: 32, Assoc: 1},
		{Size: 8192, BlockSize: 32, Assoc: 2, Repl: cache.ReplLRU},
	}
	recs := multiRecords(60000, 16)
	exact, err := NewMulti(MultiOptions{Configs: cfgs})
	if err != nil {
		t.Fatal(err)
	}
	exact.Process(recs)
	sampled, err := NewMulti(MultiOptions{Configs: cfgs, Sampling: Sampling{SetFactor: 4}})
	if err != nil {
		t.Fatal(err)
	}
	sampled.Process(recs)
	for i := range cfgs {
		es, ss := exact.Stats(i), sampled.Stats(i)
		for set := range ss.PerSet {
			if set%4 == 0 {
				if ss.PerSet[set] != es.PerSet[set] {
					t.Errorf("config %d set %d: sampled per-set stats diverge", i, set)
				}
			}
		}
		est := sampled.ScaledStats(i)
		relErr := math.Abs(est.MissRatio() - es.MissRatio())
		if es.MissRatio() > 0 {
			relErr /= es.MissRatio()
		}
		if relErr > 0.25 {
			t.Errorf("config %d: set-sampled miss ratio %.5f vs exact %.5f: relative error %.3f > 0.25",
				i, est.MissRatio(), es.MissRatio(), relErr)
		}
	}

	// Ineligible configs must be rejected up front.
	_, err = NewMulti(MultiOptions{
		Configs:  []cache.Config{{Size: 2048, BlockSize: 32, Assoc: 2, ClassifyMisses: true}},
		Sampling: Sampling{SetFactor: 4},
	})
	if err == nil {
		t.Error("set sampling with classify config: want error")
	}
}

// TestSimulatorMergeFrom is the attribution half of the sharded-merge
// property: two cold-cache shard simulations merged must reproduce — to
// the byte — the report of one simulation with a Flush at the boundary,
// including per-variable per-set series, function totals, the conflict
// matrix, and both cache levels.
func TestSimulatorMergeFrom(t *testing.T) {
	l2 := cache.Config{Size: 32768, BlockSize: 64, Assoc: 4, Repl: cache.ReplLRU}
	opts := func() Options {
		return Options{
			L1: cache.Config{Size: 2048, BlockSize: 32, Assoc: 2, Repl: cache.ReplLRU, ClassifyMisses: true},
			L2: &l2,
		}
	}
	recs := multiRecords(20000, 12)
	for _, split := range []int{0, 1, len(recs) / 2, len(recs)} {
		ref, err := New(opts())
		if err != nil {
			t.Fatal(err)
		}
		ref.Process(recs[:split])
		ref.L1().Flush()
		ref.L2().Flush()
		ref.Process(recs[split:])

		a, _ := New(opts())
		b, _ := New(opts())
		a.Process(recs[:split])
		b.Process(recs[split:])
		if err := a.MergeFrom(b); err != nil {
			t.Fatal(err)
		}
		if got, want := a.Report(), ref.Report(); got != want {
			t.Errorf("split %d: merged shard report != concatenated report\n--- merged ---\n%s\n--- ref ---\n%s",
				split, got, want)
		}
		if a.Records() != ref.Records() {
			t.Errorf("split %d: merged records %d != ref %d", split, a.Records(), ref.Records())
		}
		// Per-set series must merge exactly, not just the report totals.
		av, rv := a.Vars(), ref.Vars()
		for i := range rv {
			for set := range rv[i].PerSet {
				if av[i].PerSet[set] != rv[i].PerSet[set] {
					t.Fatalf("split %d: var %s set %d: merged %+v != ref %+v",
						split, rv[i].Name, set, av[i].PerSet[set], rv[i].PerSet[set])
				}
			}
		}
	}

	// Mismatched geometries must refuse to merge.
	x, _ := New(Options{L1: cache.Config{Size: 1024, BlockSize: 32, Assoc: 1}})
	y, _ := New(Options{L1: cache.Config{Size: 4096, BlockSize: 32, Assoc: 1}})
	if err := x.MergeFrom(y); err == nil {
		t.Error("merging different set counts: want error")
	}
}

// TestMultiSimFeedZeroAllocs pins the hot path: once symbol tables, series
// pages and conflict cells exist, a multi-config Feed must not allocate.
func TestMultiSimFeedZeroAllocs(t *testing.T) {
	cfgs := []cache.Config{
		{Size: 1024, BlockSize: 32, Assoc: 1},
		{Size: 4096, BlockSize: 32, Assoc: 2, Repl: cache.ReplLRU},
		{Size: 8192, BlockSize: 32, Assoc: 4, Repl: cache.ReplFIFO},
		{Size: 4096, BlockSize: 32, Assoc: 64, Repl: cache.ReplRoundRobin},
	}
	recs := multiRecords(4096, 16)
	tab := trace.NewSymTab()
	trace.InternRecords(tab, recs)
	ms, err := NewMulti(MultiOptions{Configs: cfgs, Syms: tab})
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 4; pass++ { // warm: instantiate every series page and conflict cell
		ms.Process(recs)
	}
	allocs := testing.AllocsPerRun(10, func() {
		ms.Process(recs)
	})
	if allocs != 0 {
		t.Errorf("MultiSim.Process allocates %.1f times per pass over %d records, want 0", allocs, len(recs))
	}
}

// BenchmarkMultiSimFeed measures the single-pass engine's per-record cost
// with the standard sweep's eight direct-mapped geometries.
func BenchmarkMultiSimFeed(b *testing.B) {
	var cfgs []cache.Config
	for size := int64(256); size <= 32768; size *= 2 {
		cfgs = append(cfgs, cache.Config{Size: size, BlockSize: 32, Assoc: 1})
	}
	recs := multiRecords(4096, 16)
	tab := trace.NewSymTab()
	trace.InternRecords(tab, recs)
	ms, err := NewMulti(MultiOptions{Configs: cfgs, Syms: tab})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms.Feed(&recs[i%len(recs)])
	}
	b.ReportMetric(float64(b.N*len(cfgs))*1e9/float64(b.Elapsed().Nanoseconds()), "cfgrec/s")
}

// BenchmarkMultiSimFeedStatsOnly measures the sweep engine's mode: cache
// statistics only, no attribution.
func BenchmarkMultiSimFeedStatsOnly(b *testing.B) {
	var cfgs []cache.Config
	for size := int64(256); size <= 32768; size *= 2 {
		cfgs = append(cfgs, cache.Config{Size: size, BlockSize: 32, Assoc: 1})
	}
	recs := multiRecords(4096, 16)
	tab := trace.NewSymTab()
	trace.InternRecords(tab, recs)
	ms, err := NewMulti(MultiOptions{Configs: cfgs, Syms: tab, StatsOnly: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms.Feed(&recs[i%len(recs)])
	}
	b.ReportMetric(float64(b.N*len(cfgs))*1e9/float64(b.Elapsed().Nanoseconds()), "cfgrec/s")
}
