package dinero_test

import (
	"fmt"

	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/trace"
)

// Example shows the per-variable attribution the modified DineroIV adds: a
// store misses, the re-load hits, both charged to glScalar.
func Example() {
	sim, err := dinero.New(dinero.Options{L1: cache.Paper32KDirect()})
	if err != nil {
		panic(err)
	}
	_, recs, err := trace.ParseAll(`START PID 1
S 000601040 4 main GV glScalar
L 000601040 4 main GV glScalar
`)
	if err != nil {
		panic(err)
	}
	sim.Process(recs)
	vs := sim.Var("glScalar")
	fmt.Printf("glScalar: %d accesses, %d hits, %d misses\n", vs.Accesses, vs.Hits, vs.Misses)
	// Output: glScalar: 2 accesses, 1 hits, 1 misses
}
