// Package dinero is the trace-consuming front end of the cache simulator —
// the role DineroIV plays in the paper, including the modifications the
// authors describe: statistics are attributed to the function and the
// program variable named in each trace line, per-set counters feed the
// paper's figures, and a variable×variable eviction matrix exposes
// "conflicts between program structures".
package dinero

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"tracedst/internal/cache"
	"tracedst/internal/trace"
)

// NoSymbol is the attribution bucket for records without debug info.
const NoSymbol = "(nosym)"

// Options configure a simulation.
type Options struct {
	// L1 is the first-level (data) cache. Required.
	L1 cache.Config
	// L2, when non-nil, adds a second level behind L1.
	L2 *cache.Config
	// Translate, when non-nil, maps every record's virtual address before
	// it reaches the cache — e.g. pagemap.Mapper.MustTranslate to simulate
	// physically indexed (shared) caches, the paper's §VI remedy for
	// virtual-address-only traces.
	Translate func(uint64) uint64
}

// VarSeries accumulates one variable's cache behaviour: the per-set series
// plotted in the paper's figures plus totals.
type VarSeries struct {
	Name     string
	Accesses int64
	Hits     int64
	Misses   int64
	PerSet   []cache.SetStats
}

// FuncStats accumulates one function's totals.
type FuncStats struct {
	Name     string
	Accesses int64
	Hits     int64
	Misses   int64
}

// Conflict is one cell of the eviction matrix: Evictor's fill replaced a
// line that Victim had filled, Count times.
type Conflict struct {
	Evictor string
	Victim  string
	Count   int64
}

// Simulator drives a cache hierarchy from Gleipnir trace records.
type Simulator struct {
	l1, l2 *cache.Cache

	vars      map[string]*VarSeries
	funcs     map[string]*FuncStats
	conflicts map[[2]string]int64
	translate func(uint64) uint64
	records   int64
	ignored   int64
}

// New builds a simulator.
func New(opts Options) (*Simulator, error) {
	var l2 *cache.Cache
	if opts.L2 != nil {
		var err error
		l2, err = cache.New(*opts.L2, nil)
		if err != nil {
			return nil, err
		}
	}
	l1, err := cache.New(opts.L1, l2)
	if err != nil {
		return nil, err
	}
	return &Simulator{
		l1:        l1,
		l2:        l2,
		vars:      map[string]*VarSeries{},
		funcs:     map[string]*FuncStats{},
		conflicts: map[[2]string]int64{},
		translate: opts.Translate,
	}, nil
}

// L1 returns the first-level cache.
func (s *Simulator) L1() *cache.Cache { return s.l1 }

// L2 returns the second-level cache or nil.
func (s *Simulator) L2() *cache.Cache { return s.l2 }

// Records returns the number of trace records consumed.
func (s *Simulator) Records() int64 { return s.records }

// varKey buckets a record by its symbolic root variable.
func varKey(rec *trace.Record) string {
	if !rec.HasSym {
		return NoSymbol
	}
	return rec.Var.Root
}

// Feed simulates one trace record. Loads access the cache once; stores
// likewise; modifies perform a read followed by a write (the two halves of
// the RMW). X records are counted but do not touch the cache.
func (s *Simulator) Feed(rec *trace.Record) {
	s.records++
	owner := varKey(rec)
	switch rec.Op {
	case trace.Load:
		s.apply(rec, owner, cache.Read)
	case trace.Store:
		s.apply(rec, owner, cache.Write)
	case trace.Modify:
		s.apply(rec, owner, cache.Read)
		s.apply(rec, owner, cache.Write)
	default:
		s.ignored++
	}
}

func (s *Simulator) apply(rec *trace.Record, owner string, kind cache.Kind) {
	addr := rec.Addr
	if s.translate != nil {
		addr = s.translate(addr)
	}
	outcomes := s.l1.Access(kind, addr, rec.Size, owner)
	vs := s.varSeries(owner)
	fs := s.funcStats(rec.Func)
	for _, o := range outcomes {
		vs.Accesses++
		fs.Accesses++
		if o.Hit {
			vs.Hits++
			fs.Hits++
			vs.PerSet[o.Set].Hits++
		} else {
			vs.Misses++
			fs.Misses++
			vs.PerSet[o.Set].Misses++
		}
		if o.Evicted && o.EvictedOwner != "" && o.EvictedOwner != owner {
			s.conflicts[[2]string{owner, o.EvictedOwner}]++
		}
	}
}

func (s *Simulator) varSeries(name string) *VarSeries {
	vs := s.vars[name]
	if vs == nil {
		vs = &VarSeries{Name: name, PerSet: make([]cache.SetStats, s.l1.Config().Sets())}
		s.vars[name] = vs
	}
	return vs
}

func (s *Simulator) funcStats(name string) *FuncStats {
	fs := s.funcs[name]
	if fs == nil {
		fs = &FuncStats{Name: name}
		s.funcs[name] = fs
	}
	return fs
}

// Process simulates a record slice.
func (s *Simulator) Process(recs []trace.Record) {
	for i := range recs {
		s.Feed(&recs[i])
	}
}

// ProcessReader streams records from a trace reader until EOF.
func (s *Simulator) ProcessReader(rd *trace.Reader) error {
	for {
		rec, err := rd.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		s.Feed(&rec)
	}
}

// Var returns the series for one variable (nil when unseen).
func (s *Simulator) Var(name string) *VarSeries { return s.vars[name] }

// Vars returns all variable series sorted by descending access count, then
// name.
func (s *Simulator) Vars() []*VarSeries {
	out := make([]*VarSeries, 0, len(s.vars))
	for _, vs := range s.vars {
		out = append(out, vs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Accesses != out[j].Accesses {
			return out[i].Accesses > out[j].Accesses
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Funcs returns per-function stats sorted by descending access count.
func (s *Simulator) Funcs() []*FuncStats {
	out := make([]*FuncStats, 0, len(s.funcs))
	for _, fs := range s.funcs {
		out = append(out, fs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Accesses != out[j].Accesses {
			return out[i].Accesses > out[j].Accesses
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Conflicts returns the eviction matrix sorted by descending count.
func (s *Simulator) Conflicts() []Conflict {
	out := make([]Conflict, 0, len(s.conflicts))
	for k, n := range s.conflicts {
		out = append(out, Conflict{Evictor: k[0], Victim: k[1], Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Evictor != out[j].Evictor {
			return out[i].Evictor < out[j].Evictor
		}
		return out[i].Victim < out[j].Victim
	})
	return out
}

// Report renders the full text report: overall DineroIV-style statistics,
// per-function and per-variable tables, and the conflict matrix.
func (s *Simulator) Report() string {
	var b strings.Builder
	cfg := s.l1.Config()
	fmt.Fprintf(&b, "---Simulation begins.\n")
	fmt.Fprintf(&b, "l1-dcache: %d bytes, %d-byte blocks, %d-way, %s replacement, %s, %s\n",
		cfg.Size, cfg.BlockSize, displayAssoc(cfg), cfg.Repl, cfg.Write, cfg.Alloc)
	b.WriteString(s.l1.Stats().Report("l1-data"))
	if s.l2 != nil {
		b.WriteString(s.l2.Stats().Report("l2-unified"))
	}

	fmt.Fprintf(&b, "\nPer-function statistics\n")
	fmt.Fprintf(&b, " %-24s %10s %10s %10s %8s\n", "function", "accesses", "hits", "misses", "miss%")
	for _, fs := range s.Funcs() {
		fmt.Fprintf(&b, " %-24s %10d %10d %10d %7.2f%%\n",
			fs.Name, fs.Accesses, fs.Hits, fs.Misses, pct(fs.Misses, fs.Accesses))
	}

	fmt.Fprintf(&b, "\nPer-variable statistics\n")
	fmt.Fprintf(&b, " %-24s %10s %10s %10s %8s\n", "variable", "accesses", "hits", "misses", "miss%")
	for _, vs := range s.Vars() {
		fmt.Fprintf(&b, " %-24s %10d %10d %10d %7.2f%%\n",
			vs.Name, vs.Accesses, vs.Hits, vs.Misses, pct(vs.Misses, vs.Accesses))
	}

	if cs := s.Conflicts(); len(cs) > 0 {
		fmt.Fprintf(&b, "\nStructure conflicts (evictor ← victim)\n")
		for _, c := range cs {
			fmt.Fprintf(&b, " %-24s evicted %-24s %8d times\n", c.Evictor, c.Victim, c.Count)
		}
	}
	fmt.Fprintf(&b, "---Simulation complete.\n")
	return b.String()
}

func displayAssoc(cfg cache.Config) int {
	if cfg.Assoc == 0 {
		return int(cfg.Size / cfg.BlockSize)
	}
	return cfg.Assoc
}

func pct(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}
