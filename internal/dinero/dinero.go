// Package dinero is the trace-consuming front end of the cache simulator —
// the role DineroIV plays in the paper, including the modifications the
// authors describe: statistics are attributed to the function and the
// program variable named in each trace line, per-set counters feed the
// paper's figures, and a variable×variable eviction matrix exposes
// "conflicts between program structures".
//
// The per-access hot path is allocation-lean: symbols are interned into
// integer ids (trace.SymTab) so attribution is a slice index instead of a
// string-map lookup, cache outcomes land in a reusable buffer, and per-set
// series grow lazily in 64-set pages. Feeding records that were interned
// (trace.InternRecords) against the table passed in Options.Syms skips
// string handling entirely.
package dinero

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"tracedst/internal/cache"
	"tracedst/internal/telemetry"
	"tracedst/internal/trace"
)

// NoSymbol is the attribution bucket for records without debug info.
const NoSymbol = "(nosym)"

// Options configure a simulation.
type Options struct {
	// L1 is the first-level (data) cache. Required.
	L1 cache.Config
	// L2, when non-nil, adds a second level behind L1.
	L2 *cache.Config
	// Translate, when non-nil, maps every record's virtual address before
	// it reaches the cache — e.g. pagemap.Mapper.MustTranslate to simulate
	// physically indexed (shared) caches, the paper's §VI remedy for
	// virtual-address-only traces.
	Translate func(uint64) uint64
	// Syms, when non-nil, is the intern table the simulator attributes
	// against. Records whose FuncID/VarID were filled by
	// trace.InternRecords against this same table are attributed without
	// touching their string fields — the fast path for parallel sweeps
	// sharing one immutable record slice. When nil the simulator creates a
	// private table and interns per record, and any ids carried on records
	// are ignored (they belong to some other table).
	Syms *trace.SymTab
}

// perSetPage is the lazy-allocation granule of a variable's per-set series.
const perSetPage = 64

// VarSeries accumulates one variable's cache behaviour: the per-set series
// plotted in the paper's figures plus totals.
type VarSeries struct {
	Name     string
	Accesses int64
	Hits     int64
	Misses   int64
	PerSet   []cache.SetStats
	// PageAllocs counts the 64-set pages lazily allocated for this
	// series — the memory-vs-coverage signal telemetry reports.
	PageAllocs int64

	// pages backs PerSet sparsely: one 64-set page per touched region, so
	// large-cache sweeps with many variables stop paying O(vars×sets)
	// memory up front. PerSet is materialized from it by the accessors.
	pages [][]cache.SetStats
	nsets int
	dirty bool
}

func newVarSeries(name string, nsets int) *VarSeries {
	return &VarSeries{
		Name:  name,
		nsets: nsets,
		pages: make([][]cache.SetStats, (nsets+perSetPage-1)/perSetPage),
	}
}

// touch records one block outcome for set.
func (vs *VarSeries) touch(set int, hit bool) {
	pg := vs.pages[set/perSetPage]
	if pg == nil {
		pg = make([]cache.SetStats, perSetPage)
		vs.pages[set/perSetPage] = pg
		vs.PageAllocs++
	}
	if hit {
		pg[set%perSetPage].Hits++
	} else {
		pg[set%perSetPage].Misses++
	}
	vs.dirty = true
}

// materialize fills the dense PerSet slice from the sparse pages. The
// accessors call it, so PerSet is always current on series obtained from
// Var/Vars after feeding finished.
func (vs *VarSeries) materialize() {
	if !vs.dirty && vs.PerSet != nil {
		return
	}
	if vs.PerSet == nil {
		vs.PerSet = make([]cache.SetStats, vs.nsets)
	}
	for pi, pg := range vs.pages {
		if pg == nil {
			continue
		}
		copy(vs.PerSet[pi*perSetPage:], pg)
	}
	vs.dirty = false
}

// FuncStats accumulates one function's totals.
type FuncStats struct {
	Name     string
	Accesses int64
	Hits     int64
	Misses   int64
}

// Conflict is one cell of the eviction matrix: Evictor's fill replaced a
// line that Victim had filled, Count times.
type Conflict struct {
	Evictor string
	Victim  string
	Count   int64
}

// Simulator drives a cache hierarchy from Gleipnir trace records.
type Simulator struct {
	l1, l2 *cache.Cache

	syms     *trace.SymTab
	trustIDs bool // record ids were issued by syms
	nosymID  trace.SymID

	// at holds the attribution state (per-variable series, per-function
	// totals, conflict matrix) shared with the multi-config engine.
	at        attrib
	translate func(uint64) uint64
	records   int64
	ignored   int64
	// out is the reusable outcome buffer handed to cache.Access.
	out []cache.Outcome
}

// New builds a simulator.
func New(opts Options) (*Simulator, error) {
	var l2 *cache.Cache
	if opts.L2 != nil {
		var err error
		l2, err = cache.New(*opts.L2, nil)
		if err != nil {
			return nil, err
		}
	}
	l1, err := cache.New(opts.L1, l2)
	if err != nil {
		return nil, err
	}
	syms := opts.Syms
	trust := syms != nil
	if syms == nil {
		syms = trace.NewSymTab()
	}
	return &Simulator{
		l1:        l1,
		l2:        l2,
		syms:      syms,
		trustIDs:  trust,
		nosymID:   syms.Intern(NoSymbol),
		at:        newAttrib(syms, l1.Config().Sets()),
		translate: opts.Translate,
	}, nil
}

// L1 returns the first-level cache.
func (s *Simulator) L1() *cache.Cache { return s.l1 }

// L2 returns the second-level cache or nil.
func (s *Simulator) L2() *cache.Cache { return s.l2 }

// Records returns the number of trace records consumed.
func (s *Simulator) Records() int64 { return s.records }

// varID buckets a record by its symbolic root variable.
func (s *Simulator) varID(rec *trace.Record) trace.SymID {
	if !rec.HasSym {
		return s.nosymID
	}
	if s.trustIDs && rec.VarID != 0 {
		return rec.VarID
	}
	return s.syms.Intern(rec.Var.Root)
}

func (s *Simulator) funcID(rec *trace.Record) trace.SymID {
	if s.trustIDs && rec.FuncID != 0 {
		return rec.FuncID
	}
	return s.syms.Intern(rec.Func)
}

// Feed simulates one trace record. Loads access the cache once; stores
// likewise; modifies perform a read followed by a write (the two halves of
// the RMW). X records are counted but do not touch the cache.
func (s *Simulator) Feed(rec *trace.Record) {
	s.records++
	switch rec.Op {
	case trace.Load:
		s.apply(rec, cache.Read)
	case trace.Store:
		s.apply(rec, cache.Write)
	case trace.Modify:
		s.apply(rec, cache.Read)
		s.apply(rec, cache.Write)
	default:
		s.ignored++
	}
}

func (s *Simulator) apply(rec *trace.Record, kind cache.Kind) {
	addr := rec.Addr
	if s.translate != nil {
		addr = s.translate(addr)
	}
	vid := s.varID(rec)
	fid := s.funcID(rec)
	owner := cache.OwnerID(vid)
	s.out = s.l1.Access(kind, addr, rec.Size, owner, s.out[:0])
	vs := s.at.varAt(vid)
	fs := s.at.funcAt(fid)
	for i := range s.out {
		o := &s.out[i]
		vs.Accesses++
		fs.Accesses++
		if o.Hit {
			vs.Hits++
			fs.Hits++
		} else {
			vs.Misses++
			fs.Misses++
		}
		vs.touch(o.Set, o.Hit)
		if o.Evicted && o.EvictedOwner != cache.NoOwner && o.EvictedOwner != owner {
			s.at.bumpConflict(vid, o.EvictedOwner)
		}
	}
}

// Process simulates a record slice.
func (s *Simulator) Process(recs []trace.Record) {
	for i := range recs {
		s.Feed(&recs[i])
	}
}

// ProcessReader streams records from a trace reader until EOF.
func (s *Simulator) ProcessReader(rd *trace.Reader) error {
	for {
		rec, err := rd.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		s.Feed(&rec)
	}
}

// ProcessSourceCtx is ProcessSource wrapped in a "dinero.simulate" span:
// when ctx carries a trace the span joins its tree, tagged with the record
// count, and the per-name aggregate is recorded either way.
func (s *Simulator) ProcessSourceCtx(ctx context.Context, src trace.RecordSource) error {
	sp, _ := telemetry.Default().StartSpanCtx(ctx, "dinero.simulate")
	err := s.ProcessSource(src)
	sp.SetAttr("records", strconv.FormatInt(s.Records(), 10))
	sp.End()
	return err
}

// ProcessSource streams record batches from src until EOF, holding only
// one batch live at a time — the constant-memory ingestion path. Results
// are identical to Process over the materialized trace.
func (s *Simulator) ProcessSource(src trace.RecordSource) error {
	for {
		batch, err := src.NextBatch()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		s.Process(batch)
	}
}

// Flush invalidates every cache line at both levels, leaving statistics
// and attribution in place. A serial run with Flush at each shard boundary
// is the exact reference for sharded cold-cache simulation: shard
// simulators merged with MergeFrom reproduce it to the byte (ReplRandom
// excepted — its draw stream survives a Flush but not a shard split).
func (s *Simulator) Flush() {
	s.l1.Flush()
	if s.l2 != nil {
		s.l2.Flush()
	}
}

// PageAllocs returns how many 64-set series pages the simulation
// allocated across all variables.
func (s *Simulator) PageAllocs() int64 { return s.at.pageAllocs() }

// MergeFrom folds other's simulation into s: cache statistics at both
// levels, record counts, and the full attribution state (per-variable
// series with per-set counters, per-function totals, conflict matrix),
// matching symbols by name. With a Flush at the shard boundary this is
// exact — simulating trace shards on cold caches and merging equals one
// simulation of the concatenation — which is the aggregation step for
// sharding sweeps across machines.
func (s *Simulator) MergeFrom(other *Simulator) error {
	if s.l1.Config().Sets() != other.l1.Config().Sets() {
		return fmt.Errorf("dinero: MergeFrom: set counts differ (%d vs %d)",
			s.l1.Config().Sets(), other.l1.Config().Sets())
	}
	if (s.l2 == nil) != (other.l2 == nil) {
		return fmt.Errorf("dinero: MergeFrom: L2 presence differs")
	}
	s.l1.MergeStats(other.l1.Stats())
	if s.l2 != nil {
		s.l2.MergeStats(other.l2.Stats())
	}
	s.records += other.records
	s.ignored += other.ignored
	s.at.mergeFrom(&other.at)
	return nil
}

// PublishTelemetry adds this simulation's totals to reg: records consumed,
// cache accesses by outcome, ignored records and lazy set-page
// allocations. It is a cold-path publish — the per-access loop stays
// untouched — so callers invoke it once per finished simulation.
func (s *Simulator) PublishTelemetry(reg *telemetry.Registry) {
	st := s.l1.Stats()
	reg.Counter("dinero.sims").Inc()
	reg.Counter("dinero.records_simulated").Add(s.records)
	reg.Counter("dinero.records_ignored").Add(s.ignored)
	reg.Counter("dinero.accesses").Add(st.Accesses())
	reg.Counter("dinero.hits").Add(st.Hits())
	reg.Counter("dinero.misses").Add(st.Misses())
	reg.Counter("dinero.page_allocs").Add(s.PageAllocs())
}

// Var returns the series for one variable (nil when unseen).
func (s *Simulator) Var(name string) *VarSeries {
	id, ok := s.syms.Lookup(name)
	if !ok || int(id) >= len(s.at.varsByID) {
		return nil
	}
	vs := s.at.varsByID[id]
	if vs != nil {
		vs.materialize()
	}
	return vs
}

// Vars returns all variable series sorted by descending access count, then
// name.
func (s *Simulator) Vars() []*VarSeries { return s.at.vars() }

// Funcs returns per-function stats sorted by descending access count.
func (s *Simulator) Funcs() []*FuncStats { return s.at.funcs() }

// Conflicts returns the eviction matrix sorted by descending count.
func (s *Simulator) Conflicts() []Conflict { return s.at.conflictList() }

// Report renders the full text report: overall DineroIV-style statistics,
// per-function and per-variable tables, and the conflict matrix.
func (s *Simulator) Report() string {
	var l2 *cache.Stats
	if s.l2 != nil {
		st := s.l2.Stats()
		l2 = &st
	}
	return renderReport(s.l1.Config(), s.l1.Stats(), l2, &s.at)
}

// renderReport is the one renderer behind Simulator.Report and the
// multi-config engine's per-config reports, so the two paths cannot drift:
// exact-mode multi-config output is byte-identical because it is the same
// code over the same numbers.
func renderReport(cfg cache.Config, l1 cache.Stats, l2 *cache.Stats, a *attrib) string {
	var b strings.Builder
	fmt.Fprintf(&b, "---Simulation begins.\n")
	fmt.Fprintf(&b, "l1-dcache: %d bytes, %d-byte blocks, %d-way, %s replacement, %s, %s\n",
		cfg.Size, cfg.BlockSize, displayAssoc(cfg), cfg.Repl, cfg.Write, cfg.Alloc)
	b.WriteString(l1.Report("l1-data"))
	if l2 != nil {
		b.WriteString(l2.Report("l2-unified"))
	}

	fmt.Fprintf(&b, "\nPer-function statistics\n")
	fmt.Fprintf(&b, " %-24s %10s %10s %10s %8s\n", "function", "accesses", "hits", "misses", "miss%")
	for _, fs := range a.funcs() {
		fmt.Fprintf(&b, " %-24s %10d %10d %10d %7.2f%%\n",
			fs.Name, fs.Accesses, fs.Hits, fs.Misses, pct(fs.Misses, fs.Accesses))
	}

	fmt.Fprintf(&b, "\nPer-variable statistics\n")
	fmt.Fprintf(&b, " %-24s %10s %10s %10s %8s\n", "variable", "accesses", "hits", "misses", "miss%")
	for _, vs := range a.vars() {
		fmt.Fprintf(&b, " %-24s %10d %10d %10d %7.2f%%\n",
			vs.Name, vs.Accesses, vs.Hits, vs.Misses, pct(vs.Misses, vs.Accesses))
	}

	if cs := a.conflictList(); len(cs) > 0 {
		fmt.Fprintf(&b, "\nStructure conflicts (evictor ← victim)\n")
		for _, c := range cs {
			fmt.Fprintf(&b, " %-24s evicted %-24s %8d times\n", c.Evictor, c.Victim, c.Count)
		}
	}
	fmt.Fprintf(&b, "---Simulation complete.\n")
	return b.String()
}

func displayAssoc(cfg cache.Config) int {
	if cfg.Assoc == 0 {
		return int(cfg.Size / cfg.BlockSize)
	}
	return cfg.Assoc
}

func pct(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}
