// Sharded streaming simulation: N workers simulate disjoint block ranges
// of an indexed binary trace straight out of the mmap, each on its own
// cold Simulator, and the shard results reduce with MergeFrom. The result
// equals a serial streaming run with a cache Flush at every shard boundary
// — exactly, to the byte of the rendered report (ReplRandom excepted: its
// draw stream survives a Flush but cannot survive a shard split).
package dinero

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"tracedst/internal/telemetry"
	"tracedst/internal/trace"
)

// ShardedResult is the merged outcome of a sharded streaming simulation.
type ShardedResult struct {
	// Sim holds the merged statistics and attribution; its Report is the
	// flush-at-boundary reference output.
	Sim *Simulator
	// Requested is the shard count asked for (after the <1 → GOMAXPROCS
	// default); Shards is how many actually ran, clamped to the block
	// count.
	Requested int
	Shards    int
	// Boundaries are the record indices where shards split — the Flush
	// points a serial reference run must use to reproduce Sim exactly.
	Boundaries []int64
}

// SimulateSharded streams tr through min(shards, blocks) workers over
// disjoint block ranges and merges the shard simulators. opts.Syms must be
// nil (each shard interns privately; MergeFrom matches by name — a shared
// table is not goroutine-safe). dec carries the lenient/strict decode
// semantics applied per shard.
func SimulateSharded(tr *trace.IndexedTrace, opts Options, shards int, dec trace.DecodeOptions) (*ShardedResult, error) {
	return SimulateShardedContext(context.Background(), tr, opts, shards, dec)
}

// SimulateShardedContext is SimulateSharded under a context: every shard
// polls ctx between record batches, so cancellation (SIGINT/SIGTERM in
// cmd/dinero and cmd/experiments) stops all workers within one batch and
// surfaces ctx.Err(). An interrupted run returns no partial result —
// callers resume by re-running, which is cheap because shards are
// deterministic.
func SimulateShardedContext(ctx context.Context, tr *trace.IndexedTrace, opts Options, shards int, dec trace.DecodeOptions) (*ShardedResult, error) {
	if opts.Syms != nil {
		return nil, fmt.Errorf("dinero: SimulateSharded: shared Syms table is not supported (shards intern privately)")
	}
	if shards < 1 {
		shards = runtime.GOMAXPROCS(0)
	}
	requested := shards
	ranges := tr.ShardRanges(shards)
	if len(ranges) == 0 {
		// Empty trace: nothing to shard, return one cold simulator.
		sim, err := New(opts)
		if err != nil {
			return nil, err
		}
		return &ShardedResult{Sim: sim, Requested: requested, Shards: 0}, nil
	}

	sims := make([]*Simulator, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i, r := range ranges {
		sim, err := New(opts)
		if err != nil {
			return nil, err
		}
		sims[i] = sim
		wg.Add(1)
		go func(i int, lo, hi int) {
			defer wg.Done()
			errs[i] = sims[i].ProcessSource(&ctxSource{ctx: ctx, src: tr.Source(lo, hi, dec)})
		}(i, r[0], r[1])
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			if cerr := context.Cause(ctx); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("dinero: shard %d (blocks %d-%d): %w", i, ranges[i][0], ranges[i][1], err)
		}
	}

	res := &ShardedResult{Sim: sims[0], Requested: requested, Shards: len(ranges)}
	var cum int64
	for i := 1; i < len(sims); i++ {
		cum += sims[i-1].Records()
		res.Boundaries = append(res.Boundaries, cum)
		if err := res.Sim.MergeFrom(sims[i]); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ctxSource threads context cancellation into a RecordSource: NextBatch
// fails with the context's error as soon as it fires, so a shard stops
// within one batch of cancellation.
type ctxSource struct {
	ctx context.Context
	src trace.RecordSource
}

func (s *ctxSource) Header() (trace.Header, error) { return s.src.Header() }
func (s *ctxSource) HasHeader() bool               { return s.src.HasHeader() }
func (s *ctxSource) BadLines() int                 { return s.src.BadLines() }

func (s *ctxSource) NextBatch() ([]trace.Record, error) {
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	return s.src.NextBatch()
}

// PublishShardTelemetry records a sharded run's shape — requested vs
// effective shard count — next to the merged simulator's own counters,
// and logs when oversubscription clamped the request.
func (r *ShardedResult) PublishShardTelemetry(reg *telemetry.Registry) {
	reg.Counter("dinero.sharded_runs").Inc()
	reg.Counter("dinero.shards_requested").Add(int64(r.Requested))
	reg.Counter("dinero.shards").Add(int64(r.Shards))
	if r.Shards < r.Requested {
		telemetry.L().Info("sharded run clamped to available blocks", "requested", r.Requested, "effective", r.Shards)
	}
	r.Sim.PublishTelemetry(reg)
}
