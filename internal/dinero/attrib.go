package dinero

import (
	"sort"

	"tracedst/internal/cache"
	"tracedst/internal/trace"
)

// attrib is one configuration's attribution state: the per-variable series,
// per-function totals and the variable×variable eviction matrix. Simulator
// owns one; the multi-config engine owns one per fast-kernel configuration,
// so both paths share the same bookkeeping (and the same report) down to
// the byte.
type attrib struct {
	syms  *trace.SymTab
	nsets int

	// varsByID / funcsByID are indexed by trace.SymID; nil entries are
	// symbols the simulation never touched.
	varsByID  []*VarSeries
	funcsByID []*FuncStats
	// conflicts is the eviction matrix as a ragged array: row = evictor
	// variable id, column = victim variable id, both grown on demand. A
	// flat increment here replaced a map assign that was ~20% of the
	// multi-config profile.
	conflicts [][]int64
}

func newAttrib(syms *trace.SymTab, nsets int) attrib {
	return attrib{syms: syms, nsets: nsets}
}

// bumpConflict counts one eviction of victim's line by evictor's fill.
func (a *attrib) bumpConflict(evictor trace.SymID, victim cache.OwnerID) {
	i, j := int(evictor), int(victim)
	if i >= len(a.conflicts) {
		grown := make([][]int64, i+1)
		copy(grown, a.conflicts)
		a.conflicts = grown
	}
	row := a.conflicts[i]
	if j >= len(row) {
		grown := make([]int64, j+1)
		copy(grown, row)
		row = grown
		a.conflicts[i] = row
	}
	row[j]++
}

func (a *attrib) varAt(id trace.SymID) *VarSeries {
	i := int(id)
	if i >= len(a.varsByID) {
		grown := make([]*VarSeries, i+1)
		copy(grown, a.varsByID)
		a.varsByID = grown
	}
	vs := a.varsByID[i]
	if vs == nil {
		vs = newVarSeries(a.syms.Name(id), a.nsets)
		a.varsByID[i] = vs
	}
	return vs
}

func (a *attrib) funcAt(id trace.SymID) *FuncStats {
	i := int(id)
	if i >= len(a.funcsByID) {
		grown := make([]*FuncStats, i+1)
		copy(grown, a.funcsByID)
		a.funcsByID = grown
	}
	fs := a.funcsByID[i]
	if fs == nil {
		fs = &FuncStats{Name: a.syms.Name(id)}
		a.funcsByID[i] = fs
	}
	return fs
}

// noteBlock attributes one block-granular outcome: per-variable and
// per-function tallies, the variable's per-set series, and — when the fill
// displaced another variable's line — the conflict matrix.
func (a *attrib) noteBlock(vid, fid trace.SymID, set int, hit bool, owner, evicted cache.OwnerID) {
	vs := a.varAt(vid)
	fs := a.funcAt(fid)
	vs.Accesses++
	fs.Accesses++
	if hit {
		vs.Hits++
		fs.Hits++
	} else {
		vs.Misses++
		fs.Misses++
	}
	vs.touch(set, hit)
	if evicted != cache.NoOwner && evicted != owner {
		a.bumpConflict(vid, evicted)
	}
}

// pageAllocs sums the lazily allocated 64-set pages across all variables.
func (a *attrib) pageAllocs() int64 {
	var n int64
	for _, vs := range a.varsByID {
		if vs != nil {
			n += vs.PageAllocs
		}
	}
	return n
}

// vars returns all variable series, materialized and sorted by descending
// access count, then name.
func (a *attrib) vars() []*VarSeries {
	out := make([]*VarSeries, 0, len(a.varsByID))
	for _, vs := range a.varsByID {
		if vs == nil {
			continue
		}
		vs.materialize()
		out = append(out, vs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Accesses != out[j].Accesses {
			return out[i].Accesses > out[j].Accesses
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// funcs returns per-function stats sorted by descending access count.
func (a *attrib) funcs() []*FuncStats {
	out := make([]*FuncStats, 0, len(a.funcsByID))
	for _, fs := range a.funcsByID {
		if fs != nil {
			out = append(out, fs)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Accesses != out[j].Accesses {
			return out[i].Accesses > out[j].Accesses
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// conflictList returns the eviction matrix sorted by descending count.
func (a *attrib) conflictList() []Conflict {
	var out []Conflict
	for i, row := range a.conflicts {
		for j, n := range row {
			if n == 0 {
				continue
			}
			out = append(out, Conflict{
				Evictor: a.syms.Name(trace.SymID(i)),
				Victim:  a.syms.Name(trace.SymID(j)),
				Count:   n,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Evictor != out[j].Evictor {
			return out[i].Evictor < out[j].Evictor
		}
		return out[i].Victim < out[j].Victim
	})
	return out
}

// mergeFrom folds other's attribution into a, matching symbols by name so
// the two sides may use different intern tables. Per-variable series merge
// page-wise (per-set counters stay exact), per-function totals and the
// conflict matrix add cell-wise — the attribution half of the sharded
// merge identity tested next to Stats.Merge.
func (a *attrib) mergeFrom(other *attrib) {
	for _, vs := range other.varsByID {
		if vs == nil {
			continue
		}
		dst := a.varAt(a.syms.Intern(vs.Name))
		dst.Accesses += vs.Accesses
		dst.Hits += vs.Hits
		dst.Misses += vs.Misses
		if vs.nsets > dst.nsets {
			grown := make([][]cache.SetStats, (vs.nsets+perSetPage-1)/perSetPage)
			copy(grown, dst.pages)
			dst.pages = grown
			dst.nsets = vs.nsets
			dst.PerSet = nil // force re-materialization at the new width
		}
		for pi, pg := range vs.pages {
			if pg == nil {
				continue
			}
			dpg := dst.pages[pi]
			if dpg == nil {
				dpg = make([]cache.SetStats, perSetPage)
				dst.pages[pi] = dpg
				dst.PageAllocs++
			}
			for off := range pg {
				dpg[off].Hits += pg[off].Hits
				dpg[off].Misses += pg[off].Misses
			}
			dst.dirty = true
		}
	}
	for _, fs := range other.funcsByID {
		if fs == nil {
			continue
		}
		dst := a.funcAt(a.syms.Intern(fs.Name))
		dst.Accesses += fs.Accesses
		dst.Hits += fs.Hits
		dst.Misses += fs.Misses
	}
	for i, row := range other.conflicts {
		for j, n := range row {
			if n == 0 {
				continue
			}
			ev := a.syms.Intern(other.syms.Name(trace.SymID(i)))
			vi := a.syms.Intern(other.syms.Name(trace.SymID(j)))
			a.bumpConflict(ev, cache.OwnerID(vi)) // grows the cell
			a.conflicts[int(ev)][int(vi)] += n - 1
		}
	}
}
