// Sharded multi-configuration simulation: the full-attribution MultiSim
// engine split over N workers, each simulating a disjoint slice of the
// trace on its own cold MultiSim, reduced with MultiSim.MergeFrom. Like
// the single-config sharded path (stream.go), the merged result equals a
// serial run with Flush at every shard boundary — byte-identical reports
// in exact mode (ReplRandom excepted: its draw stream survives a Flush
// but cannot survive a shard split).
package dinero

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"tracedst/internal/telemetry"
	"tracedst/internal/trace"
)

// MultiShardedResult is the merged outcome of a sharded multi-config run.
type MultiShardedResult struct {
	// Sim holds the merged statistics and attribution for every config;
	// its Report(i) is the flush-at-boundary reference output.
	Sim *MultiSim
	// Requested is the shard count asked for (after the <1 → GOMAXPROCS
	// default); Shards is how many actually ran, clamped to the available
	// block or record count.
	Requested int
	Shards    int
	// Boundaries are the record indices where shards split — the Flush
	// points a serial reference run must use to reproduce Sim exactly.
	Boundaries []int64
}

// MultiSimSharded streams an indexed binary trace through min(shards,
// blocks) workers over disjoint block ranges, each feeding a cold
// MultiSim, and merges the shards. opts.Syms must be nil (each shard
// interns privately; MergeFrom matches attribution by symbol name) and
// opts.Sampling must be exact — interval sampling is stateful across the
// whole record stream and cannot split.
func MultiSimSharded(tr *trace.IndexedTrace, opts MultiOptions, shards int, dec trace.DecodeOptions) (*MultiShardedResult, error) {
	return MultiSimShardedContext(context.Background(), tr, opts, shards, dec)
}

// MultiSimShardedContext is MultiSimSharded under a context: every shard
// polls ctx between record batches, so cancellation stops all workers
// within one batch and surfaces ctx.Err(). An interrupted run returns no
// partial result — callers resume by re-running.
func MultiSimShardedContext(ctx context.Context, tr *trace.IndexedTrace, opts MultiOptions, shards int, dec trace.DecodeOptions) (*MultiShardedResult, error) {
	requested, err := checkMultiShard(&opts, &shards)
	if err != nil {
		return nil, err
	}
	ranges := tr.ShardRanges(shards)
	if len(ranges) == 0 {
		// Empty trace: nothing to shard, return one cold simulator.
		ms, err := NewMulti(opts)
		if err != nil {
			return nil, err
		}
		return &MultiShardedResult{Sim: ms, Requested: requested, Shards: 0}, nil
	}

	sims := make([]*MultiSim, len(ranges))
	errs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for i, r := range ranges {
		ms, err := NewMulti(opts)
		if err != nil {
			return nil, err
		}
		sims[i] = ms
		wg.Add(1)
		go func(i int, lo, hi int) {
			defer wg.Done()
			errs[i] = sims[i].ProcessSource(&ctxSource{ctx: ctx, src: tr.Source(lo, hi, dec)})
		}(i, r[0], r[1])
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			if cerr := context.Cause(ctx); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("dinero: multisim shard %d (blocks %d-%d): %w", i, ranges[i][0], ranges[i][1], err)
		}
	}
	return reduceMultiShards(sims, requested)
}

// MultiSimShardedRecords is the in-memory variant: the record slice is
// split into min(shards, len(recs)) contiguous ranges, each simulated on a
// cold MultiSim, and the shards merge. It backs the experiments sweeps and
// figure regeneration, where traces are already materialized. Same
// constraints as MultiSimSharded: nil Syms, exact sampling.
func MultiSimShardedRecords(ctx context.Context, recs []trace.Record, opts MultiOptions, shards int) (*MultiShardedResult, error) {
	requested, err := checkMultiShard(&opts, &shards)
	if err != nil {
		return nil, err
	}
	if shards > len(recs) {
		shards = len(recs)
	}
	if shards < 1 {
		shards = 1 // empty slice: one cold, zero-fed simulator
	}

	sims := make([]*MultiSim, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		ms, err := NewMulti(opts)
		if err != nil {
			return nil, err
		}
		sims[i] = ms
		lo, hi := len(recs)*i/shards, len(recs)*(i+1)/shards
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			errs[i] = sims[i].processRecordsCtx(ctx, recs[lo:hi])
		}(i, lo, hi)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			if cerr := context.Cause(ctx); cerr != nil {
				return nil, cerr
			}
			return nil, fmt.Errorf("dinero: multisim shard %d: %w", i, err)
		}
	}
	return reduceMultiShards(sims, requested)
}

// checkMultiShard validates the sharding constraints and resolves the
// default shard count, returning the requested (pre-clamp) count.
func checkMultiShard(opts *MultiOptions, shards *int) (int, error) {
	if opts.Syms != nil {
		return 0, fmt.Errorf("dinero: MultiSimSharded: shared Syms table is not supported (shards intern privately)")
	}
	if !opts.Sampling.Exact() {
		return 0, fmt.Errorf("dinero: MultiSimSharded: sampling is not shardable (interval state spans the whole stream)")
	}
	if *shards < 1 {
		*shards = runtime.GOMAXPROCS(0)
	}
	return *shards, nil
}

// processRecordsCtx feeds recs in chunks, polling ctx between chunks so a
// cancelled sharded run stops promptly.
func (m *MultiSim) processRecordsCtx(ctx context.Context, recs []trace.Record) error {
	const chunk = 1 << 16
	for len(recs) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := min(chunk, len(recs))
		m.Process(recs[:n])
		recs = recs[n:]
	}
	return nil
}

// reduceMultiShards merges shard simulators left to right, recording the
// record-index boundaries a serial reference run must Flush at.
func reduceMultiShards(sims []*MultiSim, requested int) (*MultiShardedResult, error) {
	res := &MultiShardedResult{Sim: sims[0], Requested: requested, Shards: len(sims)}
	var cum int64
	for i := 1; i < len(sims); i++ {
		cum += sims[i-1].Records()
		res.Boundaries = append(res.Boundaries, cum)
		if err := res.Sim.MergeFrom(sims[i]); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// PublishShardTelemetry records the sharded run's shape — requested vs
// effective shard count — next to the merged simulator's own counters,
// and logs when oversubscription clamped the request.
func (r *MultiShardedResult) PublishShardTelemetry(reg *telemetry.Registry) {
	reg.Counter("multisim.sharded_runs").Inc()
	reg.Counter("multisim.shards_requested").Add(int64(r.Requested))
	reg.Counter("multisim.shards").Add(int64(r.Shards))
	if r.Shards < r.Requested {
		telemetry.L().Info("sharded multisim clamped", "requested", r.Requested, "effective", r.Shards)
	}
	r.Sim.PublishTelemetry(reg)
}
