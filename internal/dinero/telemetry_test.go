package dinero

import (
	"io"
	"testing"

	"tracedst/internal/telemetry"
	"tracedst/internal/trace"
)

// TestFeedZeroAllocsWithTelemetry guards the hot-path contract of the
// observability layer: with a real registry and logger installed, the
// per-access Feed path still allocates nothing. All telemetry publishing
// happens once per finished simulation, never per access.
func TestFeedZeroAllocsWithTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	prevReg := telemetry.SetDefault(reg)
	log, err := telemetry.NewLogger(io.Discard, "dinero-test", telemetry.FormatText, false)
	if err != nil {
		t.Fatal(err)
	}
	prevLog := telemetry.SetLogger(log)
	defer func() {
		telemetry.SetDefault(prevReg)
		telemetry.SetLogger(prevLog)
	}()

	recs := benchRecords(4096, 16)
	tab := trace.NewSymTab()
	trace.InternRecords(tab, recs)
	s, err := New(Options{L1: benchL1(), Syms: tab})
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: first touches allocate set pages; the steady state must not.
	s.Process(recs)

	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		s.Feed(&recs[i%len(recs)])
		i++
	})
	if allocs != 0 {
		t.Errorf("Feed allocates %.1f per access with telemetry enabled, want 0", allocs)
	}

	s.PublishTelemetry(reg)
	if got := reg.Counter("dinero.records_simulated").Value(); got == 0 {
		t.Error("PublishTelemetry recorded no simulated records")
	}
	if got := reg.Counter("dinero.page_allocs").Value(); got == 0 {
		t.Error("PublishTelemetry recorded no page allocations")
	}
}
