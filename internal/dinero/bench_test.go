package dinero

import (
	"fmt"
	"testing"

	"tracedst/internal/cache"
	"tracedst/internal/ctype"
	"tracedst/internal/trace"
)

// benchRecords builds a synthetic trace: nvars global arrays strided over
// repeatedly, with every eighth access an unannotated (nosym) one — enough
// symbol churn to make per-record attribution cost visible.
func benchRecords(n, nvars int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		v := i % nvars
		r := trace.Record{
			Op:   trace.Load,
			Addr: uint64(0x601000 + v*4096 + (i/nvars)%64*32),
			Size: 4,
			Func: fmt.Sprintf("func%d", v%4),
		}
		if i%8 != 7 {
			r.HasSym = true
			r.Vis = trace.Global
			r.Var = ctype.AccessExpr{Root: fmt.Sprintf("glArray%d", v)}
		}
		recs[i] = r
	}
	return recs
}

func benchL1() cache.Config {
	return cache.Config{Size: 8192, BlockSize: 32, Assoc: 2}
}

// BenchmarkFeedInterned measures the hot path the parallel sweeps use:
// records pre-interned against the simulator's own symbol table, so Feed
// attributes by integer id without hashing strings or allocating.
func BenchmarkFeedInterned(b *testing.B) {
	recs := benchRecords(4096, 16)
	tab := trace.NewSymTab()
	trace.InternRecords(tab, recs)
	s, err := New(Options{L1: benchL1(), Syms: tab})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Feed(&recs[i%len(recs)])
	}
}

// BenchmarkFeedStrings measures the fallback path: no shared table, so the
// simulator interns each record's strings itself.
func BenchmarkFeedStrings(b *testing.B) {
	recs := benchRecords(4096, 16)
	s, err := New(Options{L1: benchL1()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Feed(&recs[i%len(recs)])
	}
}
