package dinero

import (
	"strings"
	"testing"

	"tracedst/internal/cache"
	"tracedst/internal/trace"
	"tracedst/internal/tracer"
	"tracedst/internal/workloads"
)

func sim(t *testing.T, opts Options) *Simulator {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func rec(t *testing.T, line string) trace.Record {
	t.Helper()
	r, err := trace.ParseRecord(line)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFeedBasicAttribution(t *testing.T) {
	s := sim(t, Options{L1: cache.Paper32KDirect()})
	s.Feed(&[]trace.Record{rec(t, "S 000601040 4 main GV glScalar")}[0])
	s.Feed(&[]trace.Record{rec(t, "L 000601040 4 main GV glScalar")}[0])
	s.Feed(&[]trace.Record{rec(t, "L 7ff000480 8 main")}[0])

	vs := s.Var("glScalar")
	if vs == nil || vs.Accesses != 2 || vs.Hits != 1 || vs.Misses != 1 {
		t.Errorf("glScalar = %+v", vs)
	}
	if ns := s.Var(NoSymbol); ns == nil || ns.Accesses != 1 {
		t.Errorf("nosym = %+v", ns)
	}
	fs := s.Funcs()
	if len(fs) != 1 || fs[0].Name != "main" || fs[0].Accesses != 3 {
		t.Errorf("funcs = %+v", fs)
	}
	if s.Records() != 3 {
		t.Errorf("records = %d", s.Records())
	}
}

func TestModifyCountsReadAndWrite(t *testing.T) {
	s := sim(t, Options{L1: cache.Paper32KDirect()})
	r := rec(t, "M 7ff0001b8 4 main LV 0 1 i")
	s.Feed(&r)
	vs := s.Var("i")
	if vs.Accesses != 2 || vs.Misses != 1 || vs.Hits != 1 {
		t.Errorf("modify accounting = %+v", vs)
	}
	st := s.L1().Stats()
	if st.Reads != 1 || st.Writes != 1 {
		t.Errorf("cache stats = %+v", st)
	}
}

func TestMiscIgnored(t *testing.T) {
	s := sim(t, Options{L1: cache.Paper32KDirect()})
	r := rec(t, "X 7ff0001b8 4 main")
	s.Feed(&r)
	if s.L1().Stats().Accesses() != 0 {
		t.Error("X record touched the cache")
	}
	if s.Records() != 1 {
		t.Error("X record not counted")
	}
}

func TestPerSetSeries(t *testing.T) {
	s := sim(t, Options{L1: cache.Config{Size: 256, BlockSize: 32, Assoc: 1}})
	// Set = (addr>>5) & 7. addr 0x40 → set 2.
	r := rec(t, "S 000000040 4 main GV v")
	s.Feed(&r)
	vs := s.Var("v")
	if vs.PerSet[2].Misses != 1 {
		t.Errorf("per-set = %+v", vs.PerSet)
	}
}

func TestConflictMatrix(t *testing.T) {
	// Direct-mapped 256B cache: addresses 256 apart collide.
	s := sim(t, Options{L1: cache.Config{Size: 256, BlockSize: 32, Assoc: 1}})
	a := rec(t, "L 000000000 4 main GV a")
	b := rec(t, "L 000000100 4 main GV b")
	s.Feed(&a)
	s.Feed(&b) // b evicts a
	s.Feed(&a) // a evicts b
	cs := s.Conflicts()
	if len(cs) != 2 {
		t.Fatalf("conflicts = %+v", cs)
	}
	for _, c := range cs {
		if c.Count != 1 {
			t.Errorf("conflict count = %+v", c)
		}
	}
	// Deterministic order: counts equal → lexicographic by evictor.
	if cs[0].Evictor != "a" || cs[1].Evictor != "b" {
		t.Errorf("order = %+v", cs)
	}
}

func TestSelfEvictionNotAConflict(t *testing.T) {
	s := sim(t, Options{L1: cache.Config{Size: 256, BlockSize: 32, Assoc: 1}})
	a1 := rec(t, "L 000000000 4 main GV big")
	a2 := rec(t, "L 000000100 4 main GV big")
	s.Feed(&a1)
	s.Feed(&a2)
	if len(s.Conflicts()) != 0 {
		t.Errorf("self-conflict recorded: %+v", s.Conflicts())
	}
}

func TestTwoLevelHierarchy(t *testing.T) {
	l2 := cache.Config{Name: "l2", Size: 64 * 1024, BlockSize: 64, Assoc: 8}
	s := sim(t, Options{L1: cache.Paper32KDirect(), L2: &l2})
	r := rec(t, "L 000601040 4 main GV g")
	s.Feed(&r)
	if s.L2() == nil || s.L2().Stats().Reads != 1 {
		t.Error("L2 did not see the fill")
	}
	rep := s.Report()
	if !strings.Contains(rep, "l2-unified") {
		t.Error("report missing L2 section")
	}
}

func TestProcessReaderAndReport(t *testing.T) {
	res, err := tracer.Run(workloads.Trans1SoA, map[string]string{"LEN": "16"}, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := sim(t, Options{L1: cache.Paper32KDirect()})
	s.Process(res.Records)

	rep := s.Report()
	for _, want := range []string{"lSoA", "lI", "main", "Per-variable", "Per-function", "Demand Fetches"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// lI is touched far more often than lSoA (loop bookkeeping).
	li, soa := s.Var("lI"), s.Var("lSoA")
	if li == nil || soa == nil {
		t.Fatal("missing series")
	}
	if li.Accesses <= soa.Accesses {
		t.Errorf("lI %d accesses vs lSoA %d", li.Accesses, soa.Accesses)
	}
	// Vars sorted by descending accesses: lI first.
	if vars := s.Vars(); vars[0].Name != "lI" {
		t.Errorf("vars[0] = %s", vars[0].Name)
	}
	// The SoA structure spans (16*4 + 16*8) = 192 bytes: 6 blocks when
	// 32-byte aligned, 7 when it straddles (it is only 8-byte aligned).
	occupied := 0
	for _, ps := range soa.PerSet {
		if ps.Hits+ps.Misses > 0 {
			occupied++
		}
	}
	if occupied == 0 || occupied > 7 {
		t.Errorf("lSoA occupies %d sets, want 1..7", occupied)
	}
}

func TestProcessReaderStream(t *testing.T) {
	const src = `START PID 7
S 000601040 4 main GV g
L 000601040 4 main GV g
`
	s := sim(t, Options{L1: cache.Paper32KDirect()})
	if err := s.ProcessReader(trace.NewReader(strings.NewReader(src))); err != nil {
		t.Fatal(err)
	}
	if s.Records() != 2 {
		t.Errorf("records = %d", s.Records())
	}
}

func TestProcessReaderPropagatesError(t *testing.T) {
	s := sim(t, Options{L1: cache.Paper32KDirect()})
	err := s.ProcessReader(trace.NewReader(strings.NewReader("START PID 1\ngarbage zz yy\n")))
	if err == nil {
		t.Error("malformed trace accepted")
	}
}

func TestNewValidatesConfigs(t *testing.T) {
	if _, err := New(Options{L1: cache.Config{Size: 100, BlockSize: 32, Assoc: 1}}); err == nil {
		t.Error("bad L1 accepted")
	}
	bad := cache.Config{Size: 100, BlockSize: 32, Assoc: 1}
	if _, err := New(Options{L1: cache.Paper32KDirect(), L2: &bad}); err == nil {
		t.Error("bad L2 accepted")
	}
}
