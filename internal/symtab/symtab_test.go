package symtab

import (
	"testing"

	"tracedst/internal/ctype"
)

func typeA() *ctype.Struct {
	return ctype.NewStruct("_typeA", []ctype.Field{
		{Name: "d1", Type: ctype.Double},
		{Name: "myArray", Type: ctype.NewArray(ctype.Int, 10)},
	})
}

func TestGlobalLookupAndDescribe(t *testing.T) {
	tb := New()
	arr := ctype.NewArray(typeA(), 10)
	if _, err := tb.AddGlobal("glStructArray", 0x6010e0, arr); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddGlobal("glScalar", 0x601040, ctype.Int); err != nil {
		t.Fatal(err)
	}

	// glStructArray[1].myArray[1]: 0x6010e0 + 48 + 8 + 4 = 0x60111c (paper line 43).
	ref, ok := tb.Describe(0x60111c, 0)
	if !ok {
		t.Fatal("describe failed")
	}
	if got := ref.Expr.String(); got != "glStructArray[1].myArray[1]" {
		t.Errorf("expr = %q", got)
	}
	if !ref.Aggregate {
		t.Error("array symbol should be aggregate")
	}

	ref, ok = tb.Describe(0x601040, 0)
	if !ok || ref.Expr.String() != "glScalar" || ref.Aggregate {
		t.Errorf("glScalar ref = %+v ok=%v", ref, ok)
	}
}

func TestLookupMiss(t *testing.T) {
	tb := New()
	if _, err := tb.AddGlobal("x", 0x601040, ctype.Int); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := tb.Lookup(0x601044); ok {
		t.Error("lookup past end should miss")
	}
	if _, _, ok := tb.Lookup(0x60103f); ok {
		t.Error("lookup before start should miss")
	}
	if _, ok := tb.Describe(0xdead, 0); ok {
		t.Error("describe of unmapped address should fail")
	}
}

func TestOverlapRejected(t *testing.T) {
	tb := New()
	if _, err := tb.AddGlobal("a", 0x601040, ctype.NewArray(ctype.Int, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddGlobal("b", 0x601048, ctype.Int); err == nil {
		t.Error("overlapping global accepted")
	}
	if _, err := tb.AddGlobal("c", 0x60103c, ctype.NewArray(ctype.Int, 2)); err == nil {
		t.Error("overlap from below accepted")
	}
	if _, err := tb.AddGlobal("d", 0x601050, ctype.Int); err != nil {
		t.Errorf("adjacent global rejected: %v", err)
	}
}

func TestFrameScopesAndDistance(t *testing.T) {
	tb := New()
	tb.PushFrame("main")
	if _, err := tb.AddLocal("lcStrcArray", 0x7ff000060, ctype.NewArray(typeA(), 5)); err != nil {
		t.Fatal(err)
	}
	tb.PushFrame("foo")
	if _, err := tb.AddLocal("i", 0x7ff000044, ctype.Int); err != nil {
		t.Fatal(err)
	}

	// foo (depth 1) touching its own local: distance 0.
	ref, ok := tb.Describe(0x7ff000044, 1)
	if !ok || ref.FrameDistance != 0 || ref.Expr.Root != "i" {
		t.Errorf("own local: %+v ok=%v", ref, ok)
	}
	// foo touching main's local through a pointer: distance 1 (paper's
	// "S 7ff000060 8 foo LS 1 1 lcStrcArray[0].d1").
	ref, ok = tb.Describe(0x7ff000060, 1)
	if !ok || ref.FrameDistance != 1 {
		t.Errorf("caller local: %+v ok=%v", ref, ok)
	}
	if got := ref.Expr.String(); got != "lcStrcArray[0].d1" {
		t.Errorf("expr = %q", got)
	}

	tb.PopFrame()
	if _, _, ok := tb.Lookup(0x7ff000044); ok {
		t.Error("popped frame's local still visible")
	}
	if _, _, ok := tb.Lookup(0x7ff000060); !ok {
		t.Error("main's local vanished after inner pop")
	}
}

func TestLocalOutsideFrame(t *testing.T) {
	tb := New()
	if _, err := tb.AddLocal("x", 0x7ff000000, ctype.Int); err == nil {
		t.Error("local outside frame accepted")
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PopFrame on empty stack did not panic")
		}
	}()
	New().PopFrame()
}

func TestInnerFrameShadowsOuter(t *testing.T) {
	// Two frames can cover the same address only if the outer frame's local
	// died; since our allocator never reuses live addresses this is
	// synthetic, but Lookup must prefer the innermost frame regardless.
	tb := New()
	tb.PushFrame("main")
	if _, err := tb.AddLocal("outer", 0x7ff000100, ctype.Int); err != nil {
		t.Fatal(err)
	}
	tb.PushFrame("foo")
	if _, err := tb.AddLocal("inner", 0x7ff000100, ctype.Int); err != nil {
		t.Fatal(err)
	}
	s, _, ok := tb.Lookup(0x7ff000100)
	if !ok || s.Name != "inner" {
		t.Errorf("lookup = %v", s)
	}
}

func TestHeapBlocks(t *testing.T) {
	tb := New()
	blk := ctype.NewArray(ctype.Double, 8)
	if _, err := tb.AddHeap("malloc#1", 0x1000000, blk, "main"); err != nil {
		t.Fatal(err)
	}
	ref, ok := tb.Describe(0x1000010, 0)
	if !ok || ref.Expr.String() != "malloc#1[2]" {
		t.Errorf("heap describe = %+v ok=%v", ref, ok)
	}
	if !tb.RemoveHeap(0x1000000) {
		t.Error("RemoveHeap failed")
	}
	if tb.RemoveHeap(0x1000000) {
		t.Error("double free reported success")
	}
	if _, _, ok := tb.Lookup(0x1000010); ok {
		t.Error("freed block still visible")
	}
}

func TestGlobalsListing(t *testing.T) {
	tb := New()
	_, _ = tb.AddGlobal("b", 0x601100, ctype.Int)
	_, _ = tb.AddGlobal("a", 0x601040, ctype.Int)
	gs := tb.Globals()
	if len(gs) != 2 || gs[0].Name != "a" || gs[1].Name != "b" {
		t.Errorf("globals = %v", gs)
	}
}

func TestKindString(t *testing.T) {
	if KindGlobal.String() != "global" || KindLocal.String() != "local" ||
		KindHeap.String() != "heap" || Kind(9).String() != "Kind(9)" {
		t.Error("Kind.String broken")
	}
}

func TestSymbolContains(t *testing.T) {
	s := &Symbol{Name: "x", Addr: 0x100, Type: ctype.NewArray(ctype.Int, 2)}
	if !s.Contains(0x100) || !s.Contains(0x107) || s.Contains(0x108) || s.Contains(0xff) {
		t.Error("Contains boundaries wrong")
	}
}

// TestLocalSlotReuse: when a block exits and its stack memory is reused by
// a new local, AddLocal replaces the dead symbol rather than erroring, and
// lookups describe the new variable.
func TestLocalSlotReuse(t *testing.T) {
	tb := New()
	tb.PushFrame("main")
	if _, err := tb.AddLocal("first", 0x7ff000100, ctype.Int); err != nil {
		t.Fatal(err)
	}
	// Same slot, new life.
	if _, err := tb.AddLocal("second", 0x7ff000100, ctype.Int); err != nil {
		t.Fatal(err)
	}
	s, _, ok := tb.Lookup(0x7ff000100)
	if !ok || s.Name != "second" {
		t.Errorf("lookup after reuse = %v", s)
	}
	// Partial overlap also evicts the dead symbol.
	if _, err := tb.AddLocal("third", 0x7ff0000fc, ctype.NewArray(ctype.Int, 2)); err != nil {
		t.Fatal(err)
	}
	s, _, ok = tb.Lookup(0x7ff000100)
	if !ok || s.Name != "third" {
		t.Errorf("lookup after partial overlap = %v", s)
	}
	// Globals still reject overlaps (no block scoping in the data segment).
	if _, err := tb.AddGlobal("g1", 0x601040, ctype.Int); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddGlobal("g2", 0x601040, ctype.Int); err == nil {
		t.Error("global overlap accepted")
	}
}
