// Package symtab is the debug-information side of the tracer: it records
// where every live program variable sits in the simulated address space and
// answers the reverse question Valgrind's debug parser answers for Gleipnir
// — "which variable, and which element of it, does raw address X belong
// to?". The answer is rendered as an access expression such as
// glStructArray[0].myArray[0].
package symtab

import (
	"fmt"
	"sort"

	"tracedst/internal/ctype"
)

// Kind classifies a symbol's storage.
type Kind int

// Symbol kinds.
const (
	KindGlobal Kind = iota // data segment
	KindLocal              // stack frame
	KindHeap               // malloc'd block
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindGlobal:
		return "global"
	case KindLocal:
		return "local"
	case KindHeap:
		return "heap"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Symbol is one live program variable (or heap block).
type Symbol struct {
	Name string
	Addr uint64
	Type ctype.Type
	Kind Kind
	// Func is the function that declared the symbol (locals) or performed
	// the allocation (heap blocks).
	Func string
	// Depth is the 0-based call depth of the owning frame (locals only).
	Depth int
}

// Size returns the symbol's extent in bytes.
func (s *Symbol) Size() int64 { return s.Type.Size() }

// Contains reports whether addr falls inside the symbol.
func (s *Symbol) Contains(addr uint64) bool {
	return addr >= s.Addr && addr < s.Addr+uint64(s.Size())
}

// scope is a sorted set of non-overlapping symbols.
type scope struct {
	syms []*Symbol // sorted by Addr
}

func (sc *scope) insert(s *Symbol) error {
	i := sort.Search(len(sc.syms), func(i int) bool { return sc.syms[i].Addr >= s.Addr })
	if i < len(sc.syms) && s.Addr+uint64(s.Size()) > sc.syms[i].Addr && s.Size() > 0 {
		return fmt.Errorf("symtab: %s overlaps %s", s.Name, sc.syms[i].Name)
	}
	if i > 0 && sc.syms[i-1].Addr+uint64(sc.syms[i-1].Size()) > s.Addr {
		return fmt.Errorf("symtab: %s overlaps %s", s.Name, sc.syms[i-1].Name)
	}
	sc.syms = append(sc.syms, nil)
	copy(sc.syms[i+1:], sc.syms[i:])
	sc.syms[i] = s
	return nil
}

// insertReplacing inserts s, evicting any overlapped symbols first — used
// for stack frames, where block-scope exit lets later locals reuse the
// addresses of dead ones (the debug info then describes the innermost live
// variable, as a real debugger's lexical-scope tables do).
func (sc *scope) insertReplacing(s *Symbol) {
	end := s.Addr + uint64(s.Size())
	kept := sc.syms[:0]
	for _, old := range sc.syms {
		if old.Addr < end && old.Addr+uint64(old.Size()) > s.Addr && s.Size() > 0 {
			continue // overlapped: the old local is dead
		}
		kept = append(kept, old)
	}
	sc.syms = kept
	i := sort.Search(len(sc.syms), func(i int) bool { return sc.syms[i].Addr >= s.Addr })
	sc.syms = append(sc.syms, nil)
	copy(sc.syms[i+1:], sc.syms[i:])
	sc.syms[i] = s
}

func (sc *scope) lookup(addr uint64) (*Symbol, bool) {
	i := sort.Search(len(sc.syms), func(i int) bool { return sc.syms[i].Addr > addr })
	if i == 0 {
		return nil, false
	}
	s := sc.syms[i-1]
	if s.Contains(addr) {
		return s, true
	}
	return nil, false
}

func (sc *scope) remove(addr uint64) bool {
	i := sort.Search(len(sc.syms), func(i int) bool { return sc.syms[i].Addr >= addr })
	if i < len(sc.syms) && sc.syms[i].Addr == addr {
		sc.syms = append(sc.syms[:i], sc.syms[i+1:]...)
		return true
	}
	return false
}

// frameScope holds the locals of one live stack frame.
type frameScope struct {
	fn    string
	depth int
	scope
}

// Table is the full symbol table: globals, heap blocks, and a stack of
// frame scopes mirroring the call stack.
type Table struct {
	globals scope
	heap    scope
	frames  []*frameScope
}

// New returns an empty table.
func New() *Table { return &Table{} }

// AddGlobal registers a data-segment variable.
func (t *Table) AddGlobal(name string, addr uint64, ty ctype.Type) (*Symbol, error) {
	s := &Symbol{Name: name, Addr: addr, Type: ty, Kind: KindGlobal}
	if err := t.globals.insert(s); err != nil {
		return nil, err
	}
	return s, nil
}

// AddHeap registers a heap block (e.g. at a malloc call).
func (t *Table) AddHeap(name string, addr uint64, ty ctype.Type, fn string) (*Symbol, error) {
	s := &Symbol{Name: name, Addr: addr, Type: ty, Kind: KindHeap, Func: fn}
	if err := t.heap.insert(s); err != nil {
		return nil, err
	}
	return s, nil
}

// RemoveHeap drops the heap block starting at addr (free). It reports
// whether a block was removed.
func (t *Table) RemoveHeap(addr uint64) bool { return t.heap.remove(addr) }

// PushFrame opens a new local scope for a call to fn.
func (t *Table) PushFrame(fn string) {
	t.frames = append(t.frames, &frameScope{fn: fn, depth: len(t.frames)})
}

// PopFrame closes the innermost local scope.
func (t *Table) PopFrame() {
	if len(t.frames) == 0 {
		panic("symtab: PopFrame on empty frame stack")
	}
	t.frames = t.frames[:len(t.frames)-1]
}

// FrameDepth returns the number of open frames.
func (t *Table) FrameDepth() int { return len(t.frames) }

// AddLocal registers a stack variable in the innermost frame.
func (t *Table) AddLocal(name string, addr uint64, ty ctype.Type) (*Symbol, error) {
	if len(t.frames) == 0 {
		return nil, fmt.Errorf("symtab: local %s declared outside any frame", name)
	}
	fr := t.frames[len(t.frames)-1]
	s := &Symbol{Name: name, Addr: addr, Type: ty, Kind: KindLocal, Func: fr.fn, Depth: fr.depth}
	fr.insertReplacing(s)
	return s, nil
}

// Lookup finds the live symbol covering addr, preferring inner frames, then
// outer frames, then globals, then heap blocks. It returns the symbol and
// the byte offset of addr within it.
func (t *Table) Lookup(addr uint64) (*Symbol, int64, bool) {
	for i := len(t.frames) - 1; i >= 0; i-- {
		if s, ok := t.frames[i].lookup(addr); ok {
			return s, int64(addr - s.Addr), true
		}
	}
	if s, ok := t.globals.lookup(addr); ok {
		return s, int64(addr - s.Addr), true
	}
	if s, ok := t.heap.lookup(addr); ok {
		return s, int64(addr - s.Addr), true
	}
	return nil, 0, false
}

// Ref is the debug annotation for one raw address: everything the Gleipnir
// trace line needs beyond op/addr/size/function.
type Ref struct {
	Sym *Symbol
	// Expr is the rendered access expression, e.g. lSoA.mX[3].
	Expr ctype.AccessExpr
	// Aggregate is true when the symbol's type is a struct or array (the
	// trace's S vs V scope suffix).
	Aggregate bool
	// FrameDistance is (current depth - owning frame depth) for locals:
	// 0 for the executing function's own variables, 1 for the caller's, ….
	FrameDistance int
}

// Describe annotates a raw address. currentDepth is the call depth of the
// executing function (Table.FrameDepth()-1 during execution); it determines
// FrameDistance for locals.
func (t *Table) Describe(addr uint64, currentDepth int) (Ref, bool) {
	sym, off, ok := t.Lookup(addr)
	if !ok {
		return Ref{}, false
	}
	path, _, err := ctype.PathForOffset(sym.Type, off)
	if err != nil {
		// Address inside the symbol but past a resolvable sub-object —
		// annotate with the bare symbol.
		path = nil
	}
	ref := Ref{
		Sym:       sym,
		Expr:      ctype.AccessExpr{Root: sym.Name, Path: path},
		Aggregate: ctype.IsAggregate(sym.Type),
	}
	if sym.Kind == KindLocal {
		ref.FrameDistance = currentDepth - sym.Depth
		if ref.FrameDistance < 0 {
			ref.FrameDistance = 0
		}
	}
	return ref, true
}

// Globals returns the registered globals in address order (for reports).
func (t *Table) Globals() []*Symbol {
	out := make([]*Symbol, len(t.globals.syms))
	copy(out, t.globals.syms)
	return out
}
