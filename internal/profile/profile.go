// Package profile derives memory-profiling summaries from a Gleipnir trace
// — the "advanced memory analysis" role the paper assigns to Gleipnir's
// output beyond cache simulation: per-function and per-variable access
// mixes, byte volumes, cache-line footprints, working-set sizes and
// function-transition counts.
package profile

import (
	"fmt"
	"sort"
	"strings"

	"tracedst/internal/trace"
)

// FootprintBlock is the line size used for footprint accounting.
const FootprintBlock = 32

// FuncProfile summarises one function's memory behaviour.
type FuncProfile struct {
	Name     string
	Accesses int64
	Reads    int64
	Writes   int64
	Modifies int64
	// Bytes is the total bytes moved (modify counted once).
	Bytes int64
	// Footprint is the number of distinct 32-byte blocks touched.
	Footprint int

	blocks map[uint64]bool
}

// VarProfile summarises one variable's usage.
type VarProfile struct {
	Name     string
	Accesses int64
	Bytes    int64
	// Footprint is the number of distinct 32-byte blocks touched.
	Footprint int
	// Funcs lists the functions that touched the variable.
	Funcs []string

	blocks map[uint64]bool
	funcs  map[string]bool
}

// Profile is the full trace summary.
type Profile struct {
	Records int64
	// Funcs and Vars are keyed summaries; use the sorted accessors for
	// reports.
	Funcs map[string]*FuncProfile
	Vars  map[string]*VarProfile
	// Transitions counts consecutive-record function changes a→b — an
	// approximation of the call/return structure visible in the trace.
	Transitions map[[2]string]int64
	// WorkingSet is the total distinct 32-byte blocks in the trace.
	WorkingSet int

	blocks map[uint64]bool
}

// Profiler accumulates a Profile incrementally, one record at a time, so
// streaming pipelines can profile traces larger than RAM (live state is the
// footprint maps, not the trace). Feed records with Add, then call Finish.
type Profiler struct {
	p        *Profile
	prevFunc string
	done     bool
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{p: &Profile{
		Funcs:       map[string]*FuncProfile{},
		Vars:        map[string]*VarProfile{},
		Transitions: map[[2]string]int64{},
		blocks:      map[uint64]bool{},
	}}
}

// Add folds one record into the profile.
func (pr *Profiler) Add(r *trace.Record) {
	p := pr.p
	p.Records++

	fp := p.Funcs[r.Func]
	if fp == nil {
		fp = &FuncProfile{Name: r.Func, blocks: map[uint64]bool{}}
		p.Funcs[r.Func] = fp
	}
	fp.Accesses++
	switch r.Op {
	case trace.Load:
		fp.Reads++
	case trace.Store:
		fp.Writes++
	case trace.Modify:
		fp.Modifies++
	}
	fp.Bytes += r.Size
	for b := r.Addr / FootprintBlock; b <= (r.End()-1)/FootprintBlock; b++ {
		fp.blocks[b] = true
		p.blocks[b] = true
	}

	if r.HasSym {
		vp := p.Vars[r.Var.Root]
		if vp == nil {
			vp = &VarProfile{Name: r.Var.Root, blocks: map[uint64]bool{}, funcs: map[string]bool{}}
			p.Vars[r.Var.Root] = vp
		}
		vp.Accesses++
		vp.Bytes += r.Size
		vp.funcs[r.Func] = true
		for b := r.Addr / FootprintBlock; b <= (r.End()-1)/FootprintBlock; b++ {
			vp.blocks[b] = true
		}
	}

	if pr.prevFunc != "" && pr.prevFunc != r.Func {
		p.Transitions[[2]string{pr.prevFunc, r.Func}]++
	}
	pr.prevFunc = r.Func
}

// AddBatch folds a record batch into the profile.
func (pr *Profiler) AddBatch(recs []trace.Record) {
	for i := range recs {
		pr.Add(&recs[i])
	}
}

// Finish computes the derived fields and returns the profile. The profiler
// must not be used after Finish.
func (pr *Profiler) Finish() *Profile {
	if pr.done {
		return pr.p
	}
	pr.done = true
	p := pr.p
	for _, fp := range p.Funcs {
		fp.Footprint = len(fp.blocks)
	}
	for _, vp := range p.Vars {
		vp.Footprint = len(vp.blocks)
		for fn := range vp.funcs {
			vp.Funcs = append(vp.Funcs, fn)
		}
		sort.Strings(vp.Funcs)
	}
	p.WorkingSet = len(p.blocks)
	return p
}

// New builds a profile from a materialized record slice.
func New(recs []trace.Record) *Profile {
	pr := NewProfiler()
	pr.AddBatch(recs)
	return pr.Finish()
}

// TopFuncs returns function profiles by descending access count.
func (p *Profile) TopFuncs() []*FuncProfile {
	out := make([]*FuncProfile, 0, len(p.Funcs))
	for _, fp := range p.Funcs {
		out = append(out, fp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Accesses != out[j].Accesses {
			return out[i].Accesses > out[j].Accesses
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TopVars returns variable profiles by descending access count.
func (p *Profile) TopVars() []*VarProfile {
	out := make([]*VarProfile, 0, len(p.Vars))
	for _, vp := range p.Vars {
		out = append(out, vp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Accesses != out[j].Accesses {
			return out[i].Accesses > out[j].Accesses
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TopTransitions returns function transitions by descending count.
func (p *Profile) TopTransitions() []struct {
	From, To string
	Count    int64
} {
	type tr = struct {
		From, To string
		Count    int64
	}
	out := make([]tr, 0, len(p.Transitions))
	for k, n := range p.Transitions {
		out = append(out, tr{From: k[0], To: k[1], Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Report renders the profile as text.
func (p *Profile) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "memory profile: %d records, working set %d blocks (%d bytes)\n",
		p.Records, p.WorkingSet, p.WorkingSet*FootprintBlock)

	fmt.Fprintf(&b, "\nfunctions\n %-20s %9s %8s %8s %8s %10s %9s\n",
		"name", "accesses", "reads", "writes", "modifies", "bytes", "footprint")
	for _, fp := range p.TopFuncs() {
		fmt.Fprintf(&b, " %-20s %9d %8d %8d %8d %10d %9d\n",
			fp.Name, fp.Accesses, fp.Reads, fp.Writes, fp.Modifies, fp.Bytes, fp.Footprint)
	}

	fmt.Fprintf(&b, "\nvariables\n %-24s %9s %10s %9s  %s\n",
		"name", "accesses", "bytes", "footprint", "used by")
	for _, vp := range p.TopVars() {
		fmt.Fprintf(&b, " %-24s %9d %10d %9d  %s\n",
			vp.Name, vp.Accesses, vp.Bytes, vp.Footprint, strings.Join(vp.Funcs, ","))
	}

	if ts := p.TopTransitions(); len(ts) > 0 {
		fmt.Fprintf(&b, "\nfunction transitions\n")
		for _, tr := range ts {
			fmt.Fprintf(&b, " %-20s -> %-20s %8d\n", tr.From, tr.To, tr.Count)
		}
	}
	return b.String()
}
