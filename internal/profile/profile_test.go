package profile

import (
	"strings"
	"testing"

	"tracedst/internal/trace"
	"tracedst/internal/tracer"
	"tracedst/internal/workloads"
)

func fixture(t *testing.T) []trace.Record {
	t.Helper()
	_, recs, err := trace.ParseAll(`START PID 1
S 000601040 4 main GV g
L 000601040 4 main GV g
M 000601040 4 main GV g
S 7ff000010 8 foo LS 0 1 arr[0]
L 000601040 4 foo GV g
L 7ff000100 8 main
`)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestProfileCounts(t *testing.T) {
	p := New(fixture(t))
	if p.Records != 6 {
		t.Errorf("records = %d", p.Records)
	}
	main := p.Funcs["main"]
	if main == nil || main.Accesses != 4 || main.Reads != 2 || main.Writes != 1 || main.Modifies != 1 {
		t.Errorf("main = %+v", main)
	}
	if main.Bytes != 4+4+4+8 {
		t.Errorf("main bytes = %d", main.Bytes)
	}
	foo := p.Funcs["foo"]
	if foo == nil || foo.Accesses != 2 {
		t.Errorf("foo = %+v", foo)
	}
}

func TestProfileVars(t *testing.T) {
	p := New(fixture(t))
	g := p.Vars["g"]
	if g == nil || g.Accesses != 4 {
		t.Fatalf("g = %+v", g)
	}
	// g touched by both functions, sorted.
	if len(g.Funcs) != 2 || g.Funcs[0] != "foo" || g.Funcs[1] != "main" {
		t.Errorf("g funcs = %v", g.Funcs)
	}
	if g.Footprint != 1 {
		t.Errorf("g footprint = %d", g.Footprint)
	}
	if arr := p.Vars["arr"]; arr == nil || arr.Accesses != 1 || arr.Bytes != 8 {
		t.Errorf("arr = %+v", p.Vars["arr"])
	}
	// Unannotated record contributes to no variable.
	if len(p.Vars) != 2 {
		t.Errorf("vars = %d", len(p.Vars))
	}
}

func TestProfileWorkingSet(t *testing.T) {
	p := New(fixture(t))
	// Blocks: 0x601040 (g), 0x7ff000000 (arr@10..17), 0x7ff000100 → 3.
	if p.WorkingSet != 3 {
		t.Errorf("working set = %d", p.WorkingSet)
	}
}

func TestProfileTransitions(t *testing.T) {
	p := New(fixture(t))
	// main→foo once, foo→main once.
	if p.Transitions[[2]string{"main", "foo"}] != 1 ||
		p.Transitions[[2]string{"foo", "main"}] != 1 {
		t.Errorf("transitions = %v", p.Transitions)
	}
	ts := p.TopTransitions()
	if len(ts) != 2 || ts[0].From != "foo" { // equal counts → lexicographic
		t.Errorf("top transitions = %+v", ts)
	}
}

func TestProfileOrdering(t *testing.T) {
	p := New(fixture(t))
	fns := p.TopFuncs()
	if fns[0].Name != "main" || fns[1].Name != "foo" {
		t.Errorf("func order = %s, %s", fns[0].Name, fns[1].Name)
	}
	vars := p.TopVars()
	if vars[0].Name != "g" {
		t.Errorf("var order = %s", vars[0].Name)
	}
}

func TestProfileReport(t *testing.T) {
	p := New(fixture(t))
	rep := p.Report()
	for _, want := range []string{"memory profile", "functions", "variables",
		"function transitions", "main", "foo", "arr", "working set 3 blocks"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestProfileBlockSpanning(t *testing.T) {
	recs := []trace.Record{{Op: trace.Load, Addr: 30, Size: 8, Func: "main"}}
	p := New(recs)
	if p.WorkingSet != 2 || p.Funcs["main"].Footprint != 2 {
		t.Errorf("spanning footprint = %d / %d", p.WorkingSet, p.Funcs["main"].Footprint)
	}
}

func TestProfileEmpty(t *testing.T) {
	p := New(nil)
	if p.Records != 0 || p.WorkingSet != 0 || len(p.TopFuncs()) != 0 {
		t.Errorf("empty profile = %+v", p)
	}
	if !strings.Contains(p.Report(), "0 records") {
		t.Error("empty report")
	}
}

func TestProfileListing1EndToEnd(t *testing.T) {
	res, err := tracer.Run(workloads.Listing1, nil, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := New(res.Records)
	if p.Funcs["main"] == nil || p.Funcs["foo"] == nil {
		t.Fatal("functions missing")
	}
	// foo touches globals and main's lcStrcArray.
	gsa := p.Vars["glStructArray"]
	if gsa == nil || len(gsa.Funcs) != 1 || gsa.Funcs[0] != "foo" {
		t.Errorf("glStructArray = %+v", gsa)
	}
	lsa := p.Vars["lcStrcArray"]
	if lsa == nil || lsa.Funcs[0] != "foo" {
		t.Errorf("lcStrcArray = %+v", lsa)
	}
	// One call each way: exactly one main→foo transition.
	if p.Transitions[[2]string{"main", "foo"}] != 1 {
		t.Errorf("transitions = %v", p.Transitions)
	}
}
