package rules

import (
	"strings"
	"testing"
	"testing/quick"

	"tracedst/internal/ctype"
	"tracedst/internal/workloads"
)

func TestParseRuleTrans1(t *testing.T) {
	r, err := Parse(workloads.RuleTrans1)
	if err != nil {
		t.Fatal(err)
	}
	rr, ok := r.(*StructRemapRule)
	if !ok {
		t.Fatalf("kind = %v", r.Kind())
	}
	if rr.InRoot() != "lSoA" || rr.OutRoot() != "lAoS" {
		t.Errorf("roots = %s → %s", rr.InRoot(), rr.OutRoot())
	}
	// In: bare struct of arrays, 192 bytes.
	if rr.InType.Size() != 192 {
		t.Errorf("in size = %d", rr.InType.Size())
	}
	// Out: array of 16 structs of 16 bytes each (padding!).
	if rr.OutType.Size() != 256 {
		t.Errorf("out size = %d", rr.OutType.Size())
	}
	if InSize(r) != 192 || OutSize(r) != 256 {
		t.Errorf("InSize/OutSize = %d/%d", InSize(r), OutSize(r))
	}
	if r.Kind().String() != "struct-remap" {
		t.Errorf("kind string = %s", r.Kind())
	}
}

func TestParseRuleTrans1Reverse(t *testing.T) {
	// AoS→SoA: the inverse direction must parse and validate too.
	src := `
in:
struct lAoS {
	int mX;
	double mY;
}[16];
out:
struct lSoA {
	int mX[16];
	double mY[16];
};
`
	r, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if r.InRoot() != "lAoS" || r.OutRoot() != "lSoA" {
		t.Errorf("roots = %s → %s", r.InRoot(), r.OutRoot())
	}
}

func TestParseRuleTrans2(t *testing.T) {
	r, err := Parse(workloads.RuleTrans2)
	if err != nil {
		t.Fatal(err)
	}
	or, ok := r.(*OutlineRule)
	if !ok {
		t.Fatalf("kind = %v", r.Kind())
	}
	if or.InRoot() != "lS1" || or.OutRoot() != "lS2" || or.PoolVar != "lStorageForRarelyUsed" {
		t.Errorf("rule = %+v", or)
	}
	if or.NestedField != "mRarelyUsed" {
		t.Errorf("nested field = %q", or.NestedField)
	}
	// In: 16 × {int + struct{double,int}} = 16 × 24.
	if or.InType.Size() != 384 {
		t.Errorf("in size = %d", or.InType.Size())
	}
	// Out: 16 × {int + ptr} = 16 × 16.
	if or.OutType.Size() != 256 {
		t.Errorf("out size = %d", or.OutType.Size())
	}
	if or.PoolType.Size() != 256 {
		t.Errorf("pool size = %d", or.PoolType.Size())
	}
}

func TestParseRuleTrans3(t *testing.T) {
	r, err := Parse(workloads.RuleTrans3)
	if err != nil {
		t.Fatal(err)
	}
	sr, ok := r.(*StrideRule)
	if !ok {
		t.Fatalf("kind = %v", r.Kind())
	}
	if sr.InRoot() != "lContiguousArray" || sr.OutRoot() != "lSetHashingArray" {
		t.Errorf("roots = %s → %s", sr.InRoot(), sr.OutRoot())
	}
	if sr.InLen != 1024 || sr.OutLen != 16384 {
		t.Errorf("lens = %d → %d", sr.InLen, sr.OutLen)
	}
	// Formula: (lI/8)*(16*8)+(lI%8).
	for _, c := range []struct{ i, want int64 }{
		{0, 0}, {7, 7}, {8, 128}, {9, 129}, {15, 135}, {16, 256}, {1023, 16263},
	} {
		got, err := sr.Formula.Eval(c.i)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("f(%d) = %d, want %d", c.i, got, c.want)
		}
	}
	// Injected instructions (the paper's hand-forced loads).
	inj := sr.Inject()
	if len(inj) == 0 {
		t.Fatal("no injects parsed")
	}
	for _, ia := range inj {
		if ia.Op != 'L' || ia.Size != 4 {
			t.Errorf("inject = %+v", ia)
		}
		if ia.Var != "lI" && ia.Var != "ITEMSPERLINE" {
			t.Errorf("inject var = %q", ia.Var)
		}
	}
}

func TestFormulaParsing(t *testing.T) {
	f, err := ParseFormula("(i/8)*(16*8)+(i%8)")
	if err != nil {
		t.Fatal(err)
	}
	if f.Var != "i" {
		t.Errorf("var = %q", f.Var)
	}
	if got, _ := f.Eval(25); got != (25/8)*128+1 {
		t.Errorf("f(25) = %d", got)
	}
	if f.String() == "" {
		t.Error("empty formula source")
	}
}

func TestFormulaPrecedenceAndUnary(t *testing.T) {
	f, err := ParseFormula("2+3*4")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := f.Eval(0); got != 14 {
		t.Errorf("2+3*4 = %d", got)
	}
	f, err = ParseFormula("-3+i")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := f.Eval(10); got != 7 {
		t.Errorf("-3+i = %d", got)
	}
	f, err = ParseFormula("100-i-1")
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := f.Eval(10); got != 89 { // left associative
		t.Errorf("100-i-1 = %d", got)
	}
}

func TestFormulaIdentityWhenNil(t *testing.T) {
	var f *Formula
	if got, err := f.Eval(5); err != nil || got != 5 {
		t.Errorf("nil formula = %d, %v", got, err)
	}
}

func TestFormulaErrors(t *testing.T) {
	for _, bad := range []string{
		"", "(", "i+", "i j", "i+k", "2 &", "()",
	} {
		if _, err := ParseFormula(bad); err == nil {
			t.Errorf("ParseFormula(%q) unexpectedly succeeded", bad)
		}
	}
	// Division by zero at eval time.
	f, err := ParseFormula("i/0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Eval(1); err == nil {
		t.Error("division by zero not reported")
	}
	f, _ = ParseFormula("i%0")
	if _, err := f.Eval(1); err == nil {
		t.Error("modulo by zero not reported")
	}
}

// Property: the paper's stride formula maps every index into a single
// 32-element window modulo 128 (one cache line group per set).
func TestStrideFormulaPinsProperty(t *testing.T) {
	f, err := ParseFormula("(i/8)*(16*8)+(i%8)")
	if err != nil {
		t.Fatal(err)
	}
	check := func(raw uint16) bool {
		i := int64(raw) % 1024
		j, err := f.Eval(i)
		if err != nil {
			return false
		}
		// j*4 mod 512 ∈ [0,32): all accesses fall in the same 32-byte-per-
		// 512-byte window, i.e. one set when the base is 512-aligned.
		return (j*4)%512 < 32
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParseRuleErrors(t *testing.T) {
	cases := map[string]string{
		"missing out": `
in:
struct a { int x; };`,
		"decl outside section": `
struct a { int x; };`,
		"field mismatch": `
in:
struct a { int x[4]; };
out:
struct b { int y; }[4];`,
		"count mismatch": `
in:
struct a { int x[4]; };
out:
struct b { int x; }[8];`,
		"size mismatch": `
in:
struct a { int x[4]; };
out:
struct b { double x; }[4];`,
		"stride without target": `
in:
int a[16];
out:
int b[256 (i*16)];`,
		"stride formula out of range": `
in:
int a[16]:b;
out:
int b[16 (i*16)];`,
		"stride missing formula": `
in:
int a[16]:b;
out:
int b[256];`,
		"outline pool missing": `
in:
struct n { int z; };
struct s { int a; struct n; }[4];
out:
struct s2 { int a; * n:pool; }[4];`,
		"pointer member in in rule": `
in:
struct s { * p:pool; }[4];
out:
struct s2 { int a; }[4];`,
		"nested reference undeclared": `
in:
struct s { int a; struct missing; }[4];
out:
struct s2 { int a; }[4];`,
		"unknown type": `
in:
struct a { quux x; };
out:
struct b { quux x; }[4];`,
		"unterminated struct": `
in:
struct a { int x;`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseOutlineLengthMismatch(t *testing.T) {
	src := strings.Replace(workloads.RuleTrans2, "struct lS2 {", "struct lS2x {", 1)
	// Sanity: unmodified parses.
	if _, err := Parse(workloads.RuleTrans2); err != nil {
		t.Fatalf("canonical rule 2 failed: %v", err)
	}
	_ = src
	bad := `
in:
struct mR { double y; int z; };
struct lS1 { int a; struct mR; }[16];
out:
struct pool { double y; int z; }[8];
struct lS2 { int a; * mR:pool; }[16];
`
	if _, err := Parse(bad); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestInjectSizes(t *testing.T) {
	src := `
in:
int a[4]:b;
out:
int b[64 (i*16)];
inject:
L x;
M y 8;
`
	r, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	inj := r.Inject()
	if len(inj) != 2 || inj[0].Size != 4 || inj[1].Size != 8 || inj[1].Op != 'M' {
		t.Errorf("injects = %+v", inj)
	}
}

func TestGeneratedRuleHelpers(t *testing.T) {
	for _, src := range []string{
		workloads.RuleTrans1ForLen(8),
		workloads.RuleTrans2ForLen(8),
		workloads.RuleTrans3ForLen(64, 16, 8),
	} {
		if _, err := Parse(src); err != nil {
			t.Errorf("generated rule failed: %v\n%s", err, src)
		}
	}
}

func TestRuleTrans2FieldTypes(t *testing.T) {
	r, _ := Parse(workloads.RuleTrans2)
	or := r.(*OutlineRule)
	st := or.OutType.Elem.(*ctype.Struct)
	f, ok := st.FieldByName("mRarelyUsed")
	if !ok {
		t.Fatal("pointer member missing")
	}
	if _, isPtr := f.Type.(*ctype.Pointer); !isPtr {
		t.Errorf("member type = %v", f.Type)
	}
	if f.Offset != 8 {
		t.Errorf("pointer member offset = %d, want 8", f.Offset)
	}
}

func TestPeelRuleAccessors(t *testing.T) {
	r, err := Parse(`
in:
struct lRec { int hot; double cold; }[8];
out:
struct lHot { int hot; }[8];
struct lCold { double cold; }[8];
`)
	if err != nil {
		t.Fatal(err)
	}
	pr, ok := r.(*PeelRule)
	if !ok {
		t.Fatalf("kind = %v", r.Kind())
	}
	if pr.Kind() != KindPeel || pr.Kind().String() != "peel" {
		t.Errorf("kind = %v", pr.Kind())
	}
	if pr.InRoot() != "lRec" || pr.OutRoot() != "lHot" {
		t.Errorf("roots = %s → %s", pr.InRoot(), pr.OutRoot())
	}
	if pr.Inject() != nil {
		t.Errorf("inject = %v", pr.Inject())
	}
	if InSize(pr) != 8*16 || OutSize(pr) != 8*4+8*8 {
		t.Errorf("sizes = %d/%d", InSize(pr), OutSize(pr))
	}
	if KindPeel.String() != "peel" || Kind(99).String() == "" {
		t.Error("kind strings")
	}
}

func TestRuleAccessorsAllKinds(t *testing.T) {
	outline, err := Parse(workloads.RuleTrans2)
	if err != nil {
		t.Fatal(err)
	}
	if outline.Inject() != nil || outline.Kind() != KindOutline {
		t.Errorf("outline = %v %v", outline.Kind(), outline.Inject())
	}
	stride, err := Parse(workloads.RuleTrans3)
	if err != nil {
		t.Fatal(err)
	}
	if stride.Kind() != KindStride || len(stride.Inject()) == 0 {
		t.Errorf("stride = %v", stride.Kind())
	}
	remap, err := Parse(workloads.RuleTrans1)
	if err != nil {
		t.Fatal(err)
	}
	if remap.Kind() != KindStructRemap || remap.Inject() != nil {
		t.Errorf("remap = %v", remap.Kind())
	}
	for _, r := range []Rule{outline, stride, remap} {
		if InSize(r) <= 0 || OutSize(r) <= 0 {
			t.Errorf("%v sizes = %d/%d", r.Kind(), InSize(r), OutSize(r))
		}
	}
}

func TestFieldsMatchErrors(t *testing.T) {
	// Pool with wrong member size is rejected end to end.
	bad := `
in:
struct mR { double y; int z; };
struct lS1 { int a; struct mR; }[4];
out:
struct pool { int y; int z; }[4];
struct lS2 { int a; * mR:pool; }[4];
`
	if _, err := Parse(bad); err == nil {
		t.Error("pool member size mismatch accepted")
	}
}
