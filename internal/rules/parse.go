package rules

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"tracedst/internal/ctype"
)

// Parse reads one rule file (the format of Listings 5, 8 and 11) and
// returns the validated rule.
func Parse(src string) (Rule, error) {
	p := &rparser{toks: rlex(src)}
	if err := p.parseSections(); err != nil {
		return nil, err
	}
	return p.classify()
}

// ---------------------------------------------------------------------------
// lexer

type rtok struct {
	text  string
	num   int64
	isNum bool
	line  int
}

func rlex(src string) []rtok {
	var toks []rtok
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case unicode.IsSpace(rune(c)):
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '_' || unicode.IsLetter(rune(c)):
			j := i
			for j < len(src) && (src[j] == '_' || unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j]))) {
				j++
			}
			toks = append(toks, rtok{text: src[i:j], line: line})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			n, _ := strconv.ParseInt(src[i:j], 10, 64)
			toks = append(toks, rtok{text: src[i:j], num: n, isNum: true, line: line})
			i = j
		default:
			toks = append(toks, rtok{text: string(c), line: line})
			i++
		}
	}
	toks = append(toks, rtok{text: "", line: line}) // EOF
	return toks
}

// ---------------------------------------------------------------------------
// parser

// rdecl is one declaration in a section, before classification.
type rdecl struct {
	// struct declarations
	isStruct bool
	name     string
	st       *ctype.Struct
	arrayLen int64 // trailing [N]; 0 = scalar struct
	// ptrFields maps pointer member name → pool variable name.
	ptrFields map[string]string

	// array declarations (stride rules)
	elem    ctype.Type
	length  int64
	target  string // ":name" rename target (in rules)
	formula *Formula
}

type rparser struct {
	toks []rtok
	pos  int

	in      []rdecl
	out     []rdecl
	injects []InjectAccess
	// structs declared so far in the current section, by name.
	inStructs  map[string]*ctype.Struct
	outStructs map[string]*ctype.Struct
}

func (p *rparser) peek() rtok { return p.toks[p.pos] }

func (p *rparser) next() rtok {
	t := p.toks[p.pos]
	if t.text != "" || p.pos < len(p.toks)-1 {
		if p.pos < len(p.toks)-1 {
			p.pos++
		}
	}
	return t
}

func (p *rparser) eof() bool { return p.pos >= len(p.toks)-1 }

func (p *rparser) errf(t rtok, format string, args ...interface{}) error {
	return fmt.Errorf("rules: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *rparser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return p.errf(t, "expected %q, got %q", text, t.text)
	}
	return nil
}

func (p *rparser) parseSections() error {
	p.inStructs = map[string]*ctype.Struct{}
	p.outStructs = map[string]*ctype.Struct{}
	section := ""
	for !p.eof() {
		t := p.peek()
		if (t.text == "in" || t.text == "out" || t.text == "inject") && p.toks[p.pos+1].text == ":" {
			section = t.text
			p.pos += 2
			continue
		}
		switch section {
		case "in":
			d, err := p.parseDecl(p.inStructs, false)
			if err != nil {
				return err
			}
			p.in = append(p.in, d)
		case "out":
			d, err := p.parseDecl(p.outStructs, true)
			if err != nil {
				return err
			}
			p.out = append(p.out, d)
		case "inject":
			inj, err := p.parseInject()
			if err != nil {
				return err
			}
			p.injects = append(p.injects, inj)
		default:
			return p.errf(t, "declaration outside in:/out:/inject: section")
		}
	}
	if len(p.in) == 0 || len(p.out) == 0 {
		return fmt.Errorf("rules: file needs both an in: and an out: section")
	}
	return nil
}

// parseInject parses "L name;" (optionally "L name 8;").
func (p *rparser) parseInject() (InjectAccess, error) {
	opTok := p.next()
	if opTok.text != "L" && opTok.text != "S" && opTok.text != "M" {
		return InjectAccess{}, p.errf(opTok, "inject op must be L, S or M, got %q", opTok.text)
	}
	nameTok := p.next()
	if nameTok.text == "" || nameTok.isNum {
		return InjectAccess{}, p.errf(nameTok, "expected variable name after inject op")
	}
	inj := InjectAccess{Op: opTok.text[0], Var: nameTok.text, Size: 4}
	if p.peek().isNum {
		inj.Size = p.next().num
	}
	if err := p.expect(";"); err != nil {
		return InjectAccess{}, err
	}
	return inj, nil
}

// parseDecl parses a struct or array declaration.
func (p *rparser) parseDecl(structs map[string]*ctype.Struct, isOut bool) (rdecl, error) {
	t := p.peek()
	if t.text == "struct" {
		return p.parseStructDecl(structs, isOut)
	}
	return p.parseArrayDecl(isOut)
}

// parseStructDecl parses: struct NAME { fields } [N]? ;
func (p *rparser) parseStructDecl(structs map[string]*ctype.Struct, isOut bool) (rdecl, error) {
	p.next() // struct
	nameTok := p.next()
	if nameTok.text == "" || nameTok.isNum {
		return rdecl{}, p.errf(nameTok, "expected struct name")
	}
	d := rdecl{isStruct: true, name: nameTok.text, ptrFields: map[string]string{}}
	if err := p.expect("{"); err != nil {
		return rdecl{}, err
	}
	var fields []ctype.Field
	for p.peek().text != "}" {
		if p.eof() {
			return rdecl{}, p.errf(p.peek(), "unterminated struct body for %s", d.name)
		}
		switch p.peek().text {
		case "struct":
			// Nested reference: "struct NAME;" — field named NAME with the
			// previously declared rule struct's shape (bottom-up nesting).
			p.next()
			ref := p.next()
			st, ok := structs[ref.text]
			if !ok {
				return rdecl{}, p.errf(ref, "nested struct %q not declared earlier in this section", ref.text)
			}
			if err := p.expect(";"); err != nil {
				return rdecl{}, err
			}
			fields = append(fields, ctype.Field{Name: ref.text, Type: st})
		case "*":
			// Pointer member: "* name:pool;"
			if !isOut {
				return rdecl{}, p.errf(p.peek(), "pointer members are only valid in out rules")
			}
			p.next()
			nm := p.next()
			if nm.text == "" || nm.isNum {
				return rdecl{}, p.errf(nm, "expected pointer member name")
			}
			if err := p.expect(":"); err != nil {
				return rdecl{}, err
			}
			pool := p.next()
			if pool.text == "" || pool.isNum {
				return rdecl{}, p.errf(pool, "expected pool name after ':'")
			}
			poolSt, ok := structs[pool.text]
			if !ok {
				return rdecl{}, p.errf(pool, "pool %q not declared earlier in the out section", pool.text)
			}
			if err := p.expect(";"); err != nil {
				return rdecl{}, err
			}
			fields = append(fields, ctype.Field{Name: nm.text, Type: ctype.NewPointer(poolSt)})
			d.ptrFields[nm.text] = pool.text
		default:
			f, err := p.parseField()
			if err != nil {
				return rdecl{}, err
			}
			fields = append(fields, f)
		}
	}
	p.next() // }
	d.st = ctype.NewStruct(d.name, fields)
	structs[d.name] = d.st
	if p.peek().text == "[" {
		p.next()
		lenTok := p.next()
		if !lenTok.isNum || lenTok.num <= 0 {
			return rdecl{}, p.errf(lenTok, "expected positive array length")
		}
		d.arrayLen = lenTok.num
		if err := p.expect("]"); err != nil {
			return rdecl{}, err
		}
	}
	if err := p.expect(";"); err != nil {
		return rdecl{}, err
	}
	return d, nil
}

// parseField parses "type name [N]*;".
func (p *rparser) parseField() (ctype.Field, error) {
	ty, err := p.parsePrimType()
	if err != nil {
		return ctype.Field{}, err
	}
	nameTok := p.next()
	if nameTok.text == "" || nameTok.isNum {
		return ctype.Field{}, p.errf(nameTok, "expected field name")
	}
	var dims []int64
	for p.peek().text == "[" {
		p.next()
		lt := p.next()
		if !lt.isNum || lt.num <= 0 {
			return ctype.Field{}, p.errf(lt, "expected positive array length")
		}
		dims = append(dims, lt.num)
		if err := p.expect("]"); err != nil {
			return ctype.Field{}, err
		}
	}
	for i := len(dims) - 1; i >= 0; i-- {
		ty = ctype.NewArray(ty, dims[i])
	}
	if err := p.expect(";"); err != nil {
		return ctype.Field{}, err
	}
	return ctype.Field{Name: nameTok.text, Type: ty}, nil
}

// parsePrimType parses a (possibly multi-word) primitive type name.
func (p *rparser) parsePrimType() (ctype.Type, error) {
	t := p.next()
	if t.text == "" || t.isNum {
		return nil, p.errf(t, "expected type name")
	}
	words := []string{t.text}
	for {
		cand := strings.Join(append(append([]string{}, words...), p.peek().text), " ")
		if _, ok := ctype.PrimitiveByName(cand); ok && !p.peek().isNum {
			words = append(words, p.next().text)
			continue
		}
		break
	}
	name := strings.Join(words, " ")
	prim, ok := ctype.PrimitiveByName(name)
	if !ok {
		return nil, p.errf(t, "unknown type %q", name)
	}
	return prim, nil
}

// parseArrayDecl parses stride declarations:
//
//	in:  type NAME [N] : TARGET ;
//	out: type NAME [N (formula)] ;
func (p *rparser) parseArrayDecl(isOut bool) (rdecl, error) {
	ty, err := p.parsePrimType()
	if err != nil {
		return rdecl{}, err
	}
	nameTok := p.next()
	if nameTok.text == "" || nameTok.isNum {
		return rdecl{}, p.errf(nameTok, "expected array name")
	}
	d := rdecl{name: nameTok.text, elem: ty}
	if err := p.expect("["); err != nil {
		return rdecl{}, err
	}
	lenTok := p.next()
	if !lenTok.isNum || lenTok.num <= 0 {
		return rdecl{}, p.errf(lenTok, "expected positive array length")
	}
	d.length = lenTok.num
	if p.peek().text == "(" {
		src, err := p.captureParens()
		if err != nil {
			return rdecl{}, err
		}
		f, err := ParseFormula(src)
		if err != nil {
			return rdecl{}, err
		}
		d.formula = f
	}
	if err := p.expect("]"); err != nil {
		return rdecl{}, err
	}
	if p.peek().text == ":" {
		p.next()
		tt := p.next()
		if tt.text == "" || tt.isNum {
			return rdecl{}, p.errf(tt, "expected rename target after ':'")
		}
		d.target = tt.text
	}
	if err := p.expect(";"); err != nil {
		return rdecl{}, err
	}
	_ = isOut
	return d, nil
}

// captureParens consumes a balanced parenthesised token run and returns its
// source text (with the outer parens stripped).
func (p *rparser) captureParens() (string, error) {
	if err := p.expect("("); err != nil {
		return "", err
	}
	depth := 1
	var b strings.Builder
	for depth > 0 {
		t := p.next()
		if t.text == "" {
			return "", fmt.Errorf("rules: unterminated formula")
		}
		switch t.text {
		case "(":
			depth++
		case ")":
			depth--
			if depth == 0 {
				return b.String(), nil
			}
		}
		b.WriteString(t.text)
	}
	return b.String(), nil
}
