package rules

import (
	"fmt"

	"tracedst/internal/ctype"
)

// Kind identifies the transformation a rule performs.
type Kind int

// Rule kinds.
const (
	// KindStructRemap maps a structure-of-arrays onto an array-of-structures
	// or vice versa (Listing 5).
	KindStructRemap Kind = iota
	// KindOutline moves a nested structure into an external pool reached
	// through a pointer member, inserting the indirection load (Listing 8).
	KindOutline
	// KindStride remaps array indices through a formula to pin accesses to
	// chosen cache sets (Listing 11).
	KindStride
	// KindPeel splits an array of structures into parallel arrays, one per
	// member group — the "structure peeling" of the compiler literature the
	// paper cites (Chakrabarti & Chow), expressed in trace form: no
	// pointer, each group simply becomes its own array.
	KindPeel
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindStructRemap:
		return "struct-remap"
	case KindOutline:
		return "outline"
	case KindStride:
		return "stride"
	case KindPeel:
		return "peel"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Rule is a parsed transformation rule. Exactly one of the concrete rule
// types implements it per file.
type Rule interface {
	// Kind reports the transformation type.
	Kind() Kind
	// InRoot is the root variable name the rule applies to. Rules are
	// one-directional: only in→out is rewritten (paper §IV.A).
	InRoot() string
	// OutRoot is the primary replacement variable name.
	OutRoot() string
	// Inject lists extra accesses to insert before each transformed record.
	Inject() []InjectAccess
}

// InjectAccess is one entry of an "inject:" section: an access to a named
// scalar inserted before every transformed record (the paper's hand-forced
// stride-arithmetic instructions).
type InjectAccess struct {
	// Op is 'L', 'S' or 'M'.
	Op byte
	// Var is the scalar variable to access.
	Var string
	// Size in bytes (default 4).
	Size int64
}

// StructRemapRule implements Listing 5: an in structure and an out structure
// with matching element names ("the current limitation is that structure's
// element names must match").
type StructRemapRule struct {
	InVar  string
	InType ctype.Type // *ctype.Struct (SoA) or *ctype.Array of struct (AoS)

	OutVar  string
	OutType ctype.Type

	injects []InjectAccess
}

// Kind implements Rule.
func (r *StructRemapRule) Kind() Kind { return KindStructRemap }

// InRoot implements Rule.
func (r *StructRemapRule) InRoot() string { return r.InVar }

// OutRoot implements Rule.
func (r *StructRemapRule) OutRoot() string { return r.OutVar }

// Inject implements Rule.
func (r *StructRemapRule) Inject() []InjectAccess { return r.injects }

// OutlineRule implements Listing 8.
type OutlineRule struct {
	InVar  string
	InType *ctype.Array // of struct with the nested field inline
	// NestedField is the name of the nested structure member being
	// outlined (also the pointer member's name in the out structure).
	NestedField string
	// NestedType is the nested structure's shape.
	NestedType *ctype.Struct

	OutVar  string
	OutType *ctype.Array // of struct with a pointer member
	// PoolVar is the external storage array for the outlined structures.
	PoolVar  string
	PoolType *ctype.Array

	injects []InjectAccess
}

// Kind implements Rule.
func (r *OutlineRule) Kind() Kind { return KindOutline }

// InRoot implements Rule.
func (r *OutlineRule) InRoot() string { return r.InVar }

// OutRoot implements Rule.
func (r *OutlineRule) OutRoot() string { return r.OutVar }

// Inject implements Rule.
func (r *OutlineRule) Inject() []InjectAccess { return r.injects }

// StrideRule implements Listing 11.
type StrideRule struct {
	InVar string
	// Elem is the array element type (the paper uses int).
	Elem ctype.Type
	// InLen is the original element count.
	InLen int64

	OutVar string
	// OutLen is the transformed element count (larger: space is traded for
	// set placement).
	OutLen int64
	// Formula maps an original element index to a transformed index.
	Formula *Formula

	injects []InjectAccess
}

// Kind implements Rule.
func (r *StrideRule) Kind() Kind { return KindStride }

// InRoot implements Rule.
func (r *StrideRule) InRoot() string { return r.InVar }

// OutRoot implements Rule.
func (r *StrideRule) OutRoot() string { return r.OutVar }

// Inject implements Rule.
func (r *StrideRule) Inject() []InjectAccess { return r.injects }

// PeelRule splits struct members across several out arrays. Every member
// of the in structure must appear in exactly one out structure.
type PeelRule struct {
	InVar  string
	InType *ctype.Array // of struct

	// Groups are the out arrays in declaration order.
	Groups []PeelGroup
	// byField maps member name → group index.
	ByField map[string]int

	injects []InjectAccess
}

// PeelGroup is one peeled-out array.
type PeelGroup struct {
	Var  string
	Type *ctype.Array // of struct holding a subset of the members
}

// Kind implements Rule.
func (r *PeelRule) Kind() Kind { return KindPeel }

// InRoot implements Rule.
func (r *PeelRule) InRoot() string { return r.InVar }

// OutRoot implements Rule: the first group is the primary replacement.
func (r *PeelRule) OutRoot() string { return r.Groups[0].Var }

// Inject implements Rule.
func (r *PeelRule) Inject() []InjectAccess { return r.injects }

// InSize returns the byte size of the rule's in shape (for diagnostics).
func InSize(r Rule) int64 {
	switch rr := r.(type) {
	case *StructRemapRule:
		return rr.InType.Size()
	case *OutlineRule:
		return rr.InType.Size()
	case *StrideRule:
		return rr.Elem.Size() * rr.InLen
	case *PeelRule:
		return rr.InType.Size()
	}
	return 0
}

// OutSize returns the byte size of the rule's primary out shape.
func OutSize(r Rule) int64 {
	switch rr := r.(type) {
	case *StructRemapRule:
		return rr.OutType.Size()
	case *OutlineRule:
		return rr.OutType.Size()
	case *StrideRule:
		return rr.Elem.Size() * rr.OutLen
	case *PeelRule:
		var n int64
		for _, g := range rr.Groups {
			n += g.Type.Size()
		}
		return n
	}
	return 0
}
