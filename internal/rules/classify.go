package rules

import (
	"fmt"

	"tracedst/internal/ctype"
)

// classify turns the parsed sections into a validated Rule.
func (p *rparser) classify() (Rule, error) {
	if !p.in[0].isStruct {
		return p.classifyStride()
	}
	for _, d := range p.out {
		if d.isStruct && len(d.ptrFields) > 0 {
			return p.classifyOutline(d)
		}
	}
	if len(p.out) > 1 {
		return p.classifyPeel()
	}
	return p.classifyRemap()
}

// classifyPeel validates a structure-peeling rule: one in array-of-struct,
// several out arrays-of-struct that partition its members.
func (p *rparser) classifyPeel() (Rule, error) {
	if len(p.in) != 1 || !p.in[0].isStruct || p.in[0].arrayLen == 0 {
		return nil, fmt.Errorf("rules: peel needs a single in array-of-struct")
	}
	in := p.in[0]
	r := &PeelRule{
		InVar:   in.name,
		InType:  ctype.NewArray(in.st, in.arrayLen),
		ByField: map[string]int{},
		injects: p.injects,
	}
	for _, d := range p.out {
		if !d.isStruct || d.arrayLen == 0 {
			return nil, fmt.Errorf("rules: peel out declaration %s must be an array-of-struct", d.name)
		}
		if d.arrayLen != in.arrayLen {
			return nil, fmt.Errorf("rules: peel group %s has length %d, in has %d", d.name, d.arrayLen, in.arrayLen)
		}
		gi := len(r.Groups)
		r.Groups = append(r.Groups, PeelGroup{Var: d.name, Type: ctype.NewArray(d.st, d.arrayLen)})
		for _, f := range d.st.Fields {
			inF, ok := in.st.FieldByName(f.Name)
			if !ok {
				return nil, fmt.Errorf("rules: peel group %s has member %q absent from %s", d.name, f.Name, in.name)
			}
			if inF.Type.Size() != f.Type.Size() {
				return nil, fmt.Errorf("rules: peel member %q changes size", f.Name)
			}
			if _, dup := r.ByField[f.Name]; dup {
				return nil, fmt.Errorf("rules: peel member %q appears in two groups", f.Name)
			}
			r.ByField[f.Name] = gi
		}
	}
	for _, f := range in.st.Fields {
		if _, ok := r.ByField[f.Name]; !ok {
			return nil, fmt.Errorf("rules: peel leaves member %q unassigned", f.Name)
		}
	}
	return r, nil
}

// classifyStride validates a Listing 11 rule.
func (p *rparser) classifyStride() (Rule, error) {
	in := p.in[0]
	if len(p.in) != 1 {
		return nil, fmt.Errorf("rules: stride rules take exactly one in declaration")
	}
	if in.target == "" {
		return nil, fmt.Errorf("rules: stride in-array %s needs a ':target' rename", in.name)
	}
	var out *rdecl
	for i := range p.out {
		if !p.out[i].isStruct && p.out[i].name == in.target {
			out = &p.out[i]
		}
	}
	if out == nil {
		return nil, fmt.Errorf("rules: stride target %q not declared in out section", in.target)
	}
	if out.formula == nil {
		return nil, fmt.Errorf("rules: stride out-array %s needs an index formula", out.name)
	}
	if in.elem != out.elem {
		return nil, fmt.Errorf("rules: stride element types differ: %s vs %s", in.elem, out.elem)
	}
	// The formula must stay within the out array for every original index.
	for i := int64(0); i < in.length; i++ {
		j, err := out.formula.Eval(i)
		if err != nil {
			return nil, err
		}
		if j < 0 || j >= out.length {
			return nil, fmt.Errorf("rules: formula maps index %d to %d, outside %s[%d]",
				i, j, out.name, out.length)
		}
	}
	return &StrideRule{
		InVar:   in.name,
		Elem:    in.elem,
		InLen:   in.length,
		OutVar:  out.name,
		OutLen:  out.length,
		Formula: out.formula,
		injects: p.injects,
	}, nil
}

// classifyOutline validates a Listing 8 rule. outMain is the out struct
// containing the pointer member.
func (p *rparser) classifyOutline(outMain rdecl) (Rule, error) {
	if len(outMain.ptrFields) != 1 {
		return nil, fmt.Errorf("rules: outline out-struct %s must have exactly one pointer member", outMain.name)
	}
	var field, poolName string
	for f, pl := range outMain.ptrFields {
		field, poolName = f, pl
	}
	var pool *rdecl
	for i := range p.out {
		if p.out[i].isStruct && p.out[i].name == poolName {
			pool = &p.out[i]
		}
	}
	if pool == nil || pool.arrayLen == 0 {
		return nil, fmt.Errorf("rules: outline pool %q must be an out array-of-struct", poolName)
	}
	// The outer in struct is the last declaration (bottom-up nesting:
	// "the top most defined rule is the deepest structure").
	outer := p.in[len(p.in)-1]
	if !outer.isStruct || outer.arrayLen == 0 {
		return nil, fmt.Errorf("rules: outline in rule must end with an array-of-struct declaration")
	}
	nestedField, ok := outer.st.FieldByName(field)
	if !ok {
		return nil, fmt.Errorf("rules: in struct %s has no nested member %q", outer.name, field)
	}
	nested, ok := nestedField.Type.(*ctype.Struct)
	if !ok {
		return nil, fmt.Errorf("rules: in member %q is not a nested structure", field)
	}
	if outer.arrayLen != outMain.arrayLen || outer.arrayLen != pool.arrayLen {
		return nil, fmt.Errorf("rules: outline lengths differ: in %d, out %d, pool %d",
			outer.arrayLen, outMain.arrayLen, pool.arrayLen)
	}
	// Pool elements must carry the nested structure's members by name.
	if err := fieldsMatch(nested, pool.st); err != nil {
		return nil, fmt.Errorf("rules: pool %s does not match nested %s: %v", pool.name, field, err)
	}
	// The remaining members of the outer struct must appear in the out
	// struct under the same names.
	for _, f := range outer.st.Fields {
		if f.Name == field {
			continue
		}
		of, ok := outMain.st.FieldByName(f.Name)
		if !ok {
			return nil, fmt.Errorf("rules: out struct %s lacks member %q", outMain.name, f.Name)
		}
		if of.Type.Size() != f.Type.Size() {
			return nil, fmt.Errorf("rules: member %q changes size (%d → %d)", f.Name, f.Type.Size(), of.Type.Size())
		}
	}
	return &OutlineRule{
		InVar:       outer.name,
		InType:      ctype.NewArray(outer.st, outer.arrayLen),
		NestedField: field,
		NestedType:  nested,
		OutVar:      outMain.name,
		OutType:     ctype.NewArray(outMain.st, outMain.arrayLen),
		PoolVar:     pool.name,
		PoolType:    ctype.NewArray(pool.st, pool.arrayLen),
		injects:     p.injects,
	}, nil
}

// classifyRemap validates a Listing 5 rule (either direction).
func (p *rparser) classifyRemap() (Rule, error) {
	if len(p.in) != 1 || len(p.out) != 1 {
		return nil, fmt.Errorf("rules: struct remap takes exactly one in and one out declaration")
	}
	in, out := p.in[0], p.out[0]
	if !in.isStruct || !out.isStruct {
		return nil, fmt.Errorf("rules: struct remap needs struct declarations on both sides")
	}
	// Field names must correspond one to one ("structure's element names
	// must match").
	if len(in.st.Fields) != len(out.st.Fields) {
		return nil, fmt.Errorf("rules: field counts differ (%d vs %d)", len(in.st.Fields), len(out.st.Fields))
	}
	for _, f := range in.st.Fields {
		of, ok := out.st.FieldByName(f.Name)
		if !ok {
			return nil, fmt.Errorf("rules: out struct %s lacks member %q", out.name, f.Name)
		}
		inN, inElem := fieldExtent(f.Type, in.arrayLen)
		outN, outElem := fieldExtent(of.Type, out.arrayLen)
		if inN != outN {
			return nil, fmt.Errorf("rules: member %q element counts differ (%d vs %d)", f.Name, inN, outN)
		}
		if inElem.Size() != outElem.Size() {
			return nil, fmt.Errorf("rules: member %q scalar sizes differ (%s vs %s)", f.Name, inElem, outElem)
		}
	}
	return &StructRemapRule{
		InVar:   in.name,
		InType:  withArray(in.st, in.arrayLen),
		OutVar:  out.name,
		OutType: withArray(out.st, out.arrayLen),
		injects: p.injects,
	}, nil
}

// fieldExtent returns the number of scalar elements a member contributes
// (its own array length × the struct-level array length) and the scalar
// element type.
func fieldExtent(t ctype.Type, structArrayLen int64) (int64, ctype.Type) {
	n := structArrayLen
	if n == 0 {
		n = 1
	}
	if at, ok := t.(*ctype.Array); ok {
		return n * at.Len, at.Elem
	}
	return n, t
}

func withArray(st *ctype.Struct, n int64) ctype.Type {
	if n > 0 {
		return ctype.NewArray(st, n)
	}
	return st
}

// fieldsMatch checks that b has exactly a's field names with same-size types.
func fieldsMatch(a, b *ctype.Struct) error {
	if len(a.Fields) != len(b.Fields) {
		return fmt.Errorf("field counts differ (%d vs %d)", len(a.Fields), len(b.Fields))
	}
	for _, f := range a.Fields {
		bf, ok := b.FieldByName(f.Name)
		if !ok {
			return fmt.Errorf("missing member %q", f.Name)
		}
		if bf.Type.Size() != f.Type.Size() {
			return fmt.Errorf("member %q size differs", f.Name)
		}
	}
	return nil
}
