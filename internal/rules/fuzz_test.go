package rules

import (
	"strings"
	"testing"
)

// FuzzParseFormula asserts the index-formula parser never panics and that
// every accepted formula evaluates without panicking across a spread of
// indices (division by zero must surface as an error, not a crash).
func FuzzParseFormula(f *testing.F) {
	seeds := []string{
		"(lI/8)*(16*8)+(lI%8)",
		"i",
		"2+3*4",
		"-3+i",
		"100-i-1",
		"i/0",
		"i%0",
		"((((i))))",
		"i*i*i",
		"9223372036854775807+i",
		"",
		"i i",
		"(i",
		"i)",
		"1//2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		formula, err := ParseFormula(src)
		if err != nil {
			return
		}
		for _, i := range []int64{0, 1, 7, 63, -1, 1 << 20} {
			// Eval errors (division by zero) are fine; panics are not.
			_, _ = formula.Eval(i)
		}
		if formula.Src != strings.TrimSpace(formula.Src) && formula.Src != src {
			t.Errorf("Src %q not derived from input %q", formula.Src, src)
		}
	})
}

// FuzzParseRule streams arbitrary text through the rule-file parser: it
// must reject or accept without panicking.
func FuzzParseRule(f *testing.F) {
	f.Add("in:\nstruct _t { int x[16]; } lIn;\nout:\nstruct _u { int x[16]; } lOut;\n")
	f.Add("in:\nout:\n")
	f.Add("# comment only\n")
	f.Add("in struct {{{{")
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = Parse(src)
	})
}

// TestParseMalformedRuleFiles pins the error behaviour on a table of
// damaged rule files: every one must fail cleanly, never panic, and never
// be silently accepted.
func TestParseMalformedRuleFiles(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"empty", ""},
		{"comment only", "# nothing here\n"},
		{"in without out", "in:\nstruct _a { int x[16]; } lIn;\n"},
		{"out without in", "out:\nstruct _a { int x[16]; } lOut;\n"},
		{"unterminated struct", "in:\nstruct _a { int x[16];\nout:\n"},
		{"missing semicolon", "in:\nstruct _a { int x[16] } lIn\nout:\nstruct _b { int y[16]; } lOut;\n"},
		{"bad member type", "in:\nstruct _a { frob x[16]; } lIn;\nout:\nstruct _b { int y[16]; } lOut;\n"},
		{"stride without formula", "in:\nint lA[16];\nout:\nint lB[16 ()];\n"},
		{"garbage tokens", "@@ ?? !!\n"},
		{"truncated mid-decl", "in:\nstruct _a { int"},
		{"duplicate in section", "in:\nint lA[16];\nin:\nint lB[16];\nout:\nint lC[16];\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := Parse(tc.src)
			if err == nil {
				t.Errorf("accepted malformed rule file (%T)", r)
			}
		})
	}
}

// TestParseTruncatedValidRule truncates a known-good rule file at every
// byte and requires parse to fail or succeed without panicking.
func TestParseTruncatedValidRule(t *testing.T) {
	const good = `in:
struct lSoA {
	int mX[16];
	double mY[16];
};
out:
struct lAoS {
	int mX;
	double mY;
}[16];
`
	if _, err := Parse(good); err != nil {
		t.Fatalf("baseline rule invalid: %v", err)
	}
	for i := 0; i < len(good); i++ {
		_, _ = Parse(good[:i])
	}
}
