// Package rules implements the transformation rule language of the paper's
// Listings 5, 8 and 11: a rule file declares an "in" structure shape and an
// "out" shape, and the transformation engine rewrites every trace line whose
// metadata matches the in shape into the out layout. Three rule kinds are
// supported, mirroring the paper:
//
//   - structure remap (SoA→AoS and the reverse) — Listing 5
//   - nested-structure outlining through a pointer and an external pool —
//     Listing 8 (the "* field:pool" member syntax)
//   - array striding with an index formula for cache-set pinning —
//     Listing 11 ("name[len (formula)]"), plus an "inject:" section listing
//     the extra scalar loads the stride arithmetic performs (the paper
//     hand-forces these instructions)
package rules

import (
	"fmt"
	"strconv"
	"strings"
)

// Formula is an integer index-mapping expression over a single free
// variable (the original element index), e.g. (lI/8)*(16*8)+(lI%8).
type Formula struct {
	root fnode
	// Var is the name of the free variable as written in the rule.
	Var string
	// Src is the original text, for display.
	Src string
}

type fnode interface {
	eval(i int64) (int64, error)
}

type fconst int64

func (c fconst) eval(int64) (int64, error) { return int64(c), nil }

type fvar struct{}

func (fvar) eval(i int64) (int64, error) { return i, nil }

type fbin struct {
	op   byte
	l, r fnode
}

func (b fbin) eval(i int64) (int64, error) {
	l, err := b.l.eval(i)
	if err != nil {
		return 0, err
	}
	r, err := b.r.eval(i)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case '+':
		return l + r, nil
	case '-':
		return l - r, nil
	case '*':
		return l * r, nil
	case '/':
		if r == 0 {
			return 0, fmt.Errorf("rules: division by zero in formula")
		}
		return l / r, nil
	case '%':
		if r == 0 {
			return 0, fmt.Errorf("rules: modulo by zero in formula")
		}
		return l % r, nil
	}
	return 0, fmt.Errorf("rules: bad operator %q", b.op)
}

// Eval applies the formula to index i.
func (f *Formula) Eval(i int64) (int64, error) {
	if f == nil || f.root == nil {
		return i, nil // identity
	}
	return f.root.eval(i)
}

// String returns the formula source.
func (f *Formula) String() string { return f.Src }

// ParseFormula parses an index formula. Every identifier in the expression
// denotes the same free variable; mixing two different names is an error.
func ParseFormula(src string) (*Formula, error) {
	p := &fparser{src: src}
	p.skipSpace()
	root, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("rules: trailing input %q in formula %q", p.src[p.pos:], src)
	}
	return &Formula{root: root, Var: p.varName, Src: strings.TrimSpace(src)}, nil
}

type fparser struct {
	src     string
	pos     int
	varName string
}

func (p *fparser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t' || p.src[p.pos] == '\n') {
		p.pos++
	}
}

func (p *fparser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *fparser) parseAdd() (fnode, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		c := p.peek()
		if c != '+' && c != '-' {
			return l, nil
		}
		p.pos++
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = fbin{op: c, l: l, r: r}
	}
}

func (p *fparser) parseMul() (fnode, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		c := p.peek()
		if c != '*' && c != '/' && c != '%' {
			return l, nil
		}
		p.pos++
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = fbin{op: c, l: l, r: r}
	}
}

func (p *fparser) parsePrimary() (fnode, error) {
	p.skipSpace()
	c := p.peek()
	switch {
	case c == '(':
		p.pos++
		n, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("rules: missing ')' in formula %q", p.src)
		}
		p.pos++
		return n, nil
	case c == '-':
		p.pos++
		n, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return fbin{op: '-', l: fconst(0), r: n}, nil
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		v, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("rules: bad number in formula: %v", err)
		}
		return fconst(v), nil
	case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
		start := p.pos
		for p.pos < len(p.src) && (p.src[p.pos] == '_' ||
			(p.src[p.pos] >= 'a' && p.src[p.pos] <= 'z') ||
			(p.src[p.pos] >= 'A' && p.src[p.pos] <= 'Z') ||
			(p.src[p.pos] >= '0' && p.src[p.pos] <= '9')) {
			p.pos++
		}
		name := p.src[start:p.pos]
		if p.varName == "" {
			p.varName = name
		} else if p.varName != name {
			return nil, fmt.Errorf("rules: formula uses two variables %q and %q", p.varName, name)
		}
		return fvar{}, nil
	case c == 0:
		return nil, fmt.Errorf("rules: unexpected end of formula %q", p.src)
	default:
		return nil, fmt.Errorf("rules: unexpected %q in formula %q", c, p.src)
	}
}
