package pagemap

import (
	"testing"
	"testing/quick"

	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/trace"
	"tracedst/internal/tracer"
	"tracedst/internal/workloads"
)

func TestIdentityPassThrough(t *testing.T) {
	m := New(Config{Policy: Identity})
	for _, va := range []uint64{0, 0x601040, 0x7ff0001b0} {
		pa, err := m.Translate(va)
		if err != nil || pa != va {
			t.Errorf("identity(%#x) = %#x, %v", va, pa, err)
		}
	}
}

func TestSequentialFirstTouch(t *testing.T) {
	m := New(Config{Policy: Sequential})
	// Touch three different pages out of order: frames follow touch order.
	pa1, _ := m.Translate(0x7ff000000)
	pa2, _ := m.Translate(0x601040)
	pa3, _ := m.Translate(0x7ff000008) // same page as first
	if pa1>>12 != 0 {
		t.Errorf("first page frame = %d", pa1>>12)
	}
	if pa2>>12 != 1 {
		t.Errorf("second page frame = %d", pa2>>12)
	}
	if pa3>>12 != pa1>>12 {
		t.Error("same page mapped twice")
	}
	if m.MappedPages() != 2 {
		t.Errorf("mapped pages = %d", m.MappedPages())
	}
}

func TestOffsetPreserved(t *testing.T) {
	for _, pol := range []Policy{Sequential, Shuffled} {
		m := New(Config{Policy: pol, Seed: 7})
		f := func(va uint64) bool {
			pa, err := m.Translate(va)
			if err != nil {
				return false
			}
			return pa&0xfff == va&0xfff
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%v: %v", pol, err)
		}
	}
}

func TestTranslationStable(t *testing.T) {
	m := New(Config{Policy: Shuffled, Seed: 3})
	a1, _ := m.Translate(0x601040)
	a2, _ := m.Translate(0x601044)
	a3, _ := m.Translate(0x601040)
	if a1 != a3 {
		t.Error("translation not stable")
	}
	if a2-a1 != 4 {
		t.Error("intra-page offsets broken")
	}
}

func TestShuffledUniqueFrames(t *testing.T) {
	m := New(Config{Policy: Shuffled, FrameBits: 10, Seed: 11})
	seen := map[uint64]bool{}
	for p := uint64(0); p < 1024; p++ {
		pa, err := m.Translate(p << 12)
		if err != nil {
			t.Fatalf("page %d: %v", p, err)
		}
		frame := pa >> 12
		if frame >= 1024 {
			t.Fatalf("frame %d out of range", frame)
		}
		if seen[frame] {
			t.Fatalf("frame %d assigned twice", frame)
		}
		seen[frame] = true
	}
}

func TestFrameExhaustion(t *testing.T) {
	m := New(Config{Policy: Sequential, FrameBits: 2}) // 4 frames
	for p := uint64(0); p < 4; p++ {
		if _, err := m.Translate(p << 12); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Translate(4 << 12); err == nil {
		t.Error("exhaustion not reported")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTranslate did not panic on exhaustion")
		}
	}()
	m.MustTranslate(5 << 12)
}

func TestCustomPageBits(t *testing.T) {
	m := New(Config{Policy: Sequential, PageBits: 16}) // 64 KiB pages
	if m.PageSize() != 65536 {
		t.Errorf("page size = %d", m.PageSize())
	}
	a, _ := m.Translate(0x10000)
	b, _ := m.Translate(0x1ffff)
	if a>>16 != b>>16 {
		t.Error("64K page split")
	}
}

func TestTranslateAll(t *testing.T) {
	m := New(Config{Policy: Sequential})
	out, err := m.TranslateAll([]uint64{0x1000, 0x2000, 0x1004})
	if err != nil || len(out) != 3 {
		t.Fatalf("out=%v err=%v", out, err)
	}
	if out[2]-out[0] != 4 {
		t.Error("same-page addresses diverged")
	}
}

func TestPolicyString(t *testing.T) {
	if Identity.String() != "identity" || Sequential.String() != "sequential" ||
		Shuffled.String() != "shuffled" || Policy(9).String() == "" {
		t.Error("policy strings")
	}
}

// TestPhysicallyIndexedSimulation exercises the paper's §VI scenario: the
// same trace simulated with virtual vs physical indexing gives the same hit
// totals on a small cache whose index bits fall inside the page offset
// (translation cannot change those sets), but may differ once index bits
// extend beyond the page.
func TestPhysicallyIndexedSimulation(t *testing.T) {
	res, err := tracer.Run(workloads.MatMul, map[string]string{"N": "16"}, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Small cache: 128 sets × 32 B = index+offset bits = 12 → entirely
	// within a 4 KiB page: physical indexing must be identical.
	small := cache.Config{Size: 4096, BlockSize: 32, Assoc: 1}
	vSim, err := dinero.New(dinero.Options{L1: small})
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Policy: Shuffled, Seed: 5})
	pSim, err := dinero.New(dinero.Options{L1: small, Translate: m.MustTranslate})
	if err != nil {
		t.Fatal(err)
	}
	vSim.Process(res.Records)
	pSim.Process(res.Records)
	if vSim.L1().Stats().Misses() != pSim.L1().Stats().Misses() {
		t.Errorf("page-offset-indexed cache diverged: %d vs %d misses",
			vSim.L1().Stats().Misses(), pSim.L1().Stats().Misses())
	}

	// Large direct-mapped cache: index bits beyond the page offset — the
	// shuffled mapping redistributes pages across sets, so per-set
	// occupancy (not totals) must change for a multi-page working set.
	big := cache.Config{Size: 1 << 20, BlockSize: 32, Assoc: 1}
	vBig, _ := dinero.New(dinero.Options{L1: big})
	m2 := New(Config{Policy: Shuffled, Seed: 5})
	pBig, _ := dinero.New(dinero.Options{L1: big, Translate: m2.MustTranslate})
	vBig.Process(res.Records)
	pBig.Process(res.Records)
	vSets := vBig.L1().Stats().OccupiedSets()
	pSets := pBig.L1().Stats().OccupiedSets()
	same := len(vSets) == len(pSets)
	if same {
		for i := range vSets {
			if vSets[i] != pSets[i] {
				same = false
				break
			}
		}
	}
	if same && m2.MappedPages() > 1 {
		t.Error("shuffled physical mapping did not move any set traffic")
	}
}

func TestTraceRecordTranslation(t *testing.T) {
	// End-to-end: rewrite a real trace's addresses through the mapper.
	res, err := tracer.Run(workloads.Trans1SoA, map[string]string{"LEN": "4"}, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{Policy: Sequential})
	for i := range res.Records {
		pa, err := m.Translate(res.Records[i].Addr)
		if err != nil {
			t.Fatal(err)
		}
		res.Records[i].Addr = pa
	}
	// Stack page(s) got low frames; all addresses now far below StackTop.
	for i := range res.Records {
		if res.Records[i].Addr > uint64(m.MappedPages())<<12 {
			t.Errorf("untranslated address %#x", res.Records[i].Addr)
		}
	}
	_ = trace.Format
}
