// Package pagemap implements the paper's §VI future-work item: simulating
// caches that are physically indexed. Gleipnir traces carry virtual
// addresses, which the paper notes limits simulation "to private caches
// only because the addresses used are virtual addresses … This can be
// remedied … by mapping kernel page-maps information directly into the
// trace." This package provides that mapping: a page table that assigns
// physical frames to virtual pages on first touch, with selectable
// allocation policies, so a trace can be replayed against a physically
// indexed (e.g. shared last-level) cache.
package pagemap

import (
	"fmt"
)

// Policy selects how physical frames are assigned to newly touched pages.
type Policy int

// Frame-allocation policies.
const (
	// Identity maps every page to itself (pass-through; what simulating
	// with virtual addresses does implicitly).
	Identity Policy = iota
	// Sequential assigns frames in first-touch order — a freshly booted
	// machine with no fragmentation. Contiguous virtual regions stay
	// physically contiguous only if touched in order.
	Sequential
	// Shuffled assigns each page a pseudo-random unique frame (a Feistel
	// permutation of the frame space) — a long-running, fragmented
	// machine. Physically indexed set mappings decorrelate from virtual
	// layout, which is exactly the effect the paper warns about for
	// shared caches.
	Shuffled
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Identity:
		return "identity"
	case Sequential:
		return "sequential"
	case Shuffled:
		return "shuffled"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config parameterises a Mapper.
type Config struct {
	// Policy is the frame-allocation policy.
	Policy Policy
	// PageBits is log2(page size); 0 means 12 (4 KiB pages).
	PageBits uint
	// FrameBits is log2(number of physical frames); 0 means 20
	// (4 GiB of physical memory with 4 KiB pages). Sequential allocation
	// fails once the frame space is exhausted.
	FrameBits uint
	// Seed perturbs the Shuffled permutation.
	Seed uint64
}

func (c *Config) defaults() {
	if c.PageBits == 0 {
		c.PageBits = 12
	}
	if c.FrameBits == 0 {
		c.FrameBits = 20
	}
}

// Mapper is a software page table.
type Mapper struct {
	cfg    Config
	table  map[uint64]uint64 // virtual page → physical frame
	next   uint64            // next sequential frame
	frames uint64            // total frames
}

// New returns a mapper with the given configuration.
func New(cfg Config) *Mapper {
	cfg.defaults()
	return &Mapper{
		cfg:    cfg,
		table:  map[uint64]uint64{},
		frames: 1 << cfg.FrameBits,
	}
}

// PageSize returns the page size in bytes.
func (m *Mapper) PageSize() uint64 { return 1 << m.cfg.PageBits }

// MappedPages returns how many pages have been touched.
func (m *Mapper) MappedPages() int { return len(m.table) }

// Translate maps a virtual address to its physical address, allocating a
// frame on first touch. The page offset is preserved.
func (m *Mapper) Translate(va uint64) (uint64, error) {
	if m.cfg.Policy == Identity {
		return va, nil
	}
	page := va >> m.cfg.PageBits
	offset := va & (m.PageSize() - 1)
	frame, ok := m.table[page]
	if !ok {
		var err error
		frame, err = m.allocate(page)
		if err != nil {
			return 0, err
		}
		m.table[page] = frame
	}
	return frame<<m.cfg.PageBits | offset, nil
}

// MustTranslate is Translate for callers that pre-size the frame space; it
// panics on exhaustion.
func (m *Mapper) MustTranslate(va uint64) uint64 {
	pa, err := m.Translate(va)
	if err != nil {
		panic(err)
	}
	return pa
}

func (m *Mapper) allocate(page uint64) (uint64, error) {
	if m.next >= m.frames {
		return 0, fmt.Errorf("pagemap: out of physical frames (%d mapped)", m.next)
	}
	idx := m.next
	m.next++
	switch m.cfg.Policy {
	case Sequential:
		return idx, nil
	case Shuffled:
		// A bijective Feistel permutation of the frame index space keeps
		// frames unique without materialising a free list.
		return m.feistel(idx), nil
	}
	return 0, fmt.Errorf("pagemap: unknown policy %v", m.cfg.Policy)
}

// feistel permutes the FrameBits-wide index space bijectively. FrameBits
// may be odd; the halves are split as ceil/floor and the classic
// unbalanced-Feistel cycle-walk is avoided by using equal half-width and
// masking (FrameBits rounded up to even via an extra walk step).
func (m *Mapper) feistel(x uint64) uint64 {
	bits := m.cfg.FrameBits
	if bits%2 == 1 {
		bits++ // permute a larger even space and cycle-walk back
	}
	half := bits / 2
	mask := uint64(1)<<half - 1
	for {
		l, r := x>>half, x&mask
		for round := 0; round < 4; round++ {
			f := (r*0x9E3779B97F4A7C15 + m.cfg.Seed + uint64(round)) >> (64 - half) & mask
			l, r = r, l^f
		}
		y := l<<half | r
		if y < m.frames {
			return y
		}
		x = y // cycle-walk until we land inside the real frame space
	}
}

// TranslateAll rewrites a slice of addresses (for bulk trace rewriting).
func (m *Mapper) TranslateAll(vas []uint64) ([]uint64, error) {
	out := make([]uint64, len(vas))
	for i, va := range vas {
		pa, err := m.Translate(va)
		if err != nil {
			return nil, err
		}
		out[i] = pa
	}
	return out, nil
}
