// HTTP chaos layer: adversarial client behaviours for exercising a trace
// service's admission control end to end. SlowBody feeds an upload at a
// slow-loris trickle, AbortBody dies mid-stream, and PostTruncated speaks
// just enough raw HTTP to declare a Content-Length and then renege on it
// — the three client pathologies a robust ingest path must survive.
package faultinject

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"time"
)

// ErrAborted is the error an AbortBody reader returns once its budget is
// spent — the in-process stand-in for a client vanishing mid-upload.
var ErrAborted = errors.New("faultinject: client aborted mid-stream")

// SlowBody returns a reader that serves data in chunk-sized pieces with
// delay between them: a slow-loris upload. chunk < 1 defaults to 1.
func SlowBody(data []byte, chunk int, delay time.Duration) io.Reader {
	if chunk < 1 {
		chunk = 1
	}
	return &slowBody{data: data, chunk: chunk, delay: delay}
}

type slowBody struct {
	data  []byte
	chunk int
	delay time.Duration
	begun bool
}

func (s *slowBody) Read(p []byte) (int, error) {
	if len(s.data) == 0 {
		return 0, io.EOF
	}
	if s.begun && s.delay > 0 {
		time.Sleep(s.delay)
	}
	s.begun = true
	n := s.chunk
	if n > len(s.data) {
		n = len(s.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, s.data[:n])
	s.data = s.data[n:]
	return n, nil
}

// AbortBody returns a reader that yields the first n bytes of data and
// then fails with ErrAborted: a client connection dying mid-stream.
func AbortBody(data []byte, n int) io.Reader {
	if n > len(data) {
		n = len(data)
	}
	return &abortBody{data: data[:n]}
}

type abortBody struct{ data []byte }

func (a *abortBody) Read(p []byte) (int, error) {
	if len(a.data) == 0 {
		return 0, ErrAborted
	}
	n := copy(p, a.data)
	a.data = a.data[n:]
	return n, nil
}

// PostTruncated POSTs body to addr+path declaring the full Content-Length
// but sending only the first sendN bytes before closing the write side —
// a truncated upload as seen from the server. It returns the response
// status code (0 if the server hung up without answering, which is a
// legitimate response to a liar).
func PostTruncated(addr, path, contentType string, body []byte, sendN int) (int, error) {
	if sendN > len(body) {
		sendN = len(body)
	}
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))

	fmt.Fprintf(conn, "POST %s HTTP/1.1\r\nHost: %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\r\n",
		path, addr, contentType, len(body))
	// The server may already have rejected and reset; a write error here is
	// fine — the response read below tells the story.
	_, _ = conn.Write(body[:sendN])
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	}

	br := bufio.NewReader(conn)
	line, err := br.ReadString('\n')
	if err != nil {
		return 0, nil // connection dropped without a response
	}
	var proto string
	var code int
	if _, err := fmt.Sscanf(strings.TrimSpace(line), "%s %d", &proto, &code); err != nil {
		return 0, fmt.Errorf("faultinject: unparsable status line %q", line)
	}
	return code, nil
}
