// Package faultinject corrupts Gleipnir trace text in controlled,
// deterministic ways, so the robustness of the ingestion layer can be
// exercised end-to-end: strict decoding must fail with a line-numbered
// error on every corruption class, lenient decoding must skip damage that
// is confined to whole lines, and glcheck must flag every class.
//
// All corruptors are pure string→string functions seeded explicitly;
// the same (input, seed) pair always yields the same corrupted trace.
package faultinject

import (
	"fmt"
	"math/rand"
	"strings"
)

// Truncate cuts the trace mid-line: it keeps the given fraction of the
// lines whole, then a short partial of the next line — at most 7 bytes, so
// the remnant can never form a valid 4-field record. frac is clamped to
// (0,1].
func Truncate(src string, frac float64) string {
	if frac <= 0 || frac > 1 {
		frac = 0.5
	}
	lines := strings.Split(strings.TrimSuffix(src, "\n"), "\n")
	if len(lines) < 2 {
		return src[:len(src)/2]
	}
	k := int(float64(len(lines)) * frac)
	if k < 1 {
		k = 1
	}
	if k >= len(lines) {
		k = len(lines) - 1
	}
	partial := lines[k]
	if partial == "" {
		partial = "S 00060"
	}
	n := len(partial) / 2
	if n > 7 {
		n = 7
	}
	if n < 1 {
		n = 1
	}
	return strings.Join(lines[:k], "\n") + "\n" + partial[:n]
}

// BitFlipOps flips the high bit of the opcode byte on n randomly chosen
// record lines (header excluded), turning them into undecodable garbage
// while leaving the line structure intact — the classic single-bit media
// error. The damage is whole-line, so lenient decoding can skip it.
func BitFlipOps(src string, seed int64, n int) string {
	rng := rand.New(rand.NewSource(seed))
	lines := strings.Split(src, "\n")
	var candidates []int
	for i, l := range lines {
		if l != "" && !strings.HasPrefix(l, "START") {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return src
	}
	if n > len(candidates) {
		n = len(candidates)
	}
	// Flip distinct lines: re-flipping one would restore it.
	for _, pick := range rng.Perm(len(candidates))[:n] {
		i := candidates[pick]
		b := []byte(lines[i])
		b[0] ^= 0x80
		lines[i] = string(b)
	}
	return strings.Join(lines, "\n")
}

// InterleaveGarbage inserts an undecodable junk line after every every-th
// input line. Garbage lines are self-contained, so a lenient decoder that
// skips them recovers the original record stream exactly.
func InterleaveGarbage(src string, seed int64, every int) string {
	if every < 1 {
		every = 10
	}
	rng := rand.New(rand.NewSource(seed))
	lines := strings.Split(strings.TrimSuffix(src, "\n"), "\n")
	out := make([]string, 0, len(lines)+len(lines)/every+1)
	for i, l := range lines {
		out = append(out, l)
		if (i+1)%every == 0 {
			out = append(out, fmt.Sprintf("?? @@GARBAGE %x ~~", rng.Uint32()))
		}
	}
	return strings.Join(out, "\n") + "\n"
}

// OversizeLine inserts a single line of length bytes (all 'x') after the
// first line, exceeding any MaxLineBytes limit below that length.
func OversizeLine(src string, length int) string {
	head, tail, found := strings.Cut(src, "\n")
	long := strings.Repeat("x", length)
	if !found {
		return src + "\n" + long + "\n"
	}
	return head + "\n" + long + "\n" + tail
}

// CorruptHeader damages the START line (or prepends a damaged one when the
// trace is headerless), producing a header that matches the START prefix
// but fails to parse.
func CorruptHeader(src string) string {
	head, tail, found := strings.Cut(src, "\n")
	if !found || !strings.HasPrefix(head, "START") {
		return "START PID banana\n" + src
	}
	return "START PID banana\n" + tail
}

// Corruption is one named corruption class for table-driven harnesses.
type Corruption struct {
	// Name identifies the class.
	Name string
	// Apply corrupts the trace deterministically for the given seed.
	Apply func(src string, seed int64) string
	// Skippable reports whether the damage is confined to whole lines, so
	// lenient decoding recovers every undamaged record.
	Skippable bool
	// Lossless reports whether skipping the damaged lines reproduces the
	// clean record stream exactly (the damage added lines or only hit the
	// header), so lenient simulation results must match a clean run.
	Lossless bool
}

// Classes returns the standard corruption classes driven by the
// robustness harness. The oversized line is sized past the decoder's
// default 1 MiB limit.
func Classes() []Corruption {
	return []Corruption{
		{
			Name:      "truncation",
			Apply:     func(s string, _ int64) string { return Truncate(s, 0.75) },
			Skippable: true,
		},
		{
			Name:      "bit-flip",
			Apply:     func(s string, seed int64) string { return BitFlipOps(s, seed, 3) },
			Skippable: true,
		},
		{
			Name:      "interleaved-garbage",
			Apply:     func(s string, seed int64) string { return InterleaveGarbage(s, seed, 7) },
			Skippable: true,
			Lossless:  true,
		},
		{
			Name:      "oversized-line",
			Apply:     func(s string, _ int64) string { return OversizeLine(s, 2<<20) },
			Skippable: true,
			Lossless:  true,
		},
		{
			Name:      "corrupt-header",
			Apply:     func(s string, _ int64) string { return CorruptHeader(s) },
			Skippable: true,
			Lossless:  true,
		},
	}
}
