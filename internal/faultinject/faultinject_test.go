package faultinject

import (
	"strings"
	"testing"
)

const clean = `START PID 7
S 000601040 4 main GV glScalar
L 000601040 4 main GV glScalar
S 7ff0001b0 8 main LV 0 1 lcScalar
L 7ff0001b0 8 main LV 0 1 lcScalar
M 7ff0001b8 4 main LV 0 1 i
S 0006010e0 8 foo GS glStructArray[0].d1
L 0006010e0 8 foo GS glStructArray[0].d1
X 7ff0001a8 8 foo
`

func TestCorruptorsAreDeterministic(t *testing.T) {
	for _, c := range Classes() {
		a := c.Apply(clean, 99)
		b := c.Apply(clean, 99)
		if a != b {
			t.Errorf("%s: not deterministic for fixed seed", c.Name)
		}
		if a == clean {
			t.Errorf("%s: did not change the trace", c.Name)
		}
	}
}

func TestTruncateLeavesShortPartial(t *testing.T) {
	out := Truncate(clean, 0.75)
	lines := strings.Split(out, "\n")
	last := lines[len(lines)-1]
	if len(last) == 0 || len(last) > 7 {
		t.Errorf("partial line %q should be 1..7 bytes", last)
	}
	if !strings.HasPrefix(clean, strings.Join(lines[:len(lines)-1], "\n")) {
		t.Error("kept lines are not a prefix of the input")
	}
}

func TestBitFlipOpsDamagesDistinctRecordLines(t *testing.T) {
	out := BitFlipOps(clean, 3, 3)
	damaged := 0
	for i, l := range strings.Split(out, "\n") {
		if l == "" || strings.HasPrefix(l, "START") {
			continue
		}
		if l[0]&0x80 != 0 {
			damaged++
			if orig := strings.Split(clean, "\n")[i]; l[1:] != orig[1:] {
				t.Errorf("line %d: more than the op byte changed", i+1)
			}
		}
	}
	if damaged != 3 {
		t.Errorf("damaged %d lines, want 3", damaged)
	}
}

func TestInterleaveGarbageKeepsOriginalLines(t *testing.T) {
	out := InterleaveGarbage(clean, 5, 2)
	var kept []string
	for _, l := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if !strings.HasPrefix(l, "?? @@GARBAGE") {
			kept = append(kept, l)
		}
	}
	want := strings.Split(strings.TrimSuffix(clean, "\n"), "\n")
	if strings.Join(kept, "\n") != strings.Join(want, "\n") {
		t.Error("original lines not preserved verbatim")
	}
	if out == clean {
		t.Error("no garbage inserted")
	}
}

func TestOversizeLinePlacement(t *testing.T) {
	out := OversizeLine(clean, 100)
	lines := strings.Split(out, "\n")
	if lines[1] != strings.Repeat("x", 100) {
		t.Errorf("line 2 = %.20q..., want 100 x's", lines[1])
	}
	if lines[0] != "START PID 7" || lines[2] != "S 000601040 4 main GV glScalar" {
		t.Error("surrounding lines disturbed")
	}
}

func TestCorruptHeaderKeepsRecords(t *testing.T) {
	out := CorruptHeader(clean)
	if !strings.HasPrefix(out, "START") {
		t.Error("corrupt header should keep the START prefix")
	}
	_, tail, _ := strings.Cut(out, "\n")
	_, cleanTail, _ := strings.Cut(clean, "\n")
	if tail != cleanTail {
		t.Error("records disturbed")
	}
	// Headerless input gains a corrupt header.
	out2 := CorruptHeader(cleanTail)
	if !strings.HasPrefix(out2, "START") || !strings.HasSuffix(out2, cleanTail) {
		t.Error("headerless case mishandled")
	}
}
