// Corruption classes for the binary (.glb) container's block-index
// footer. The footer is a pure suffix optimization: every class here
// damages only the footer or its end-of-file trailer and loses zero
// records, so indexed open must degrade to a scan-built index, readers
// must keep decoding every record, and glcheck must surface the damage
// as a warning rather than an error.
package faultinject

import (
	"bytes"
	"encoding/binary"
)

// glbTrailerLen is the fixed size of the .glb footer trailer:
// footerLen:u32le followed by the "GLIXEND\n" end magic.
const glbTrailerLen = 4 + 8

var glbTrailerMagic = []byte("GLIXEND\n")

// hasGLBTrailer reports whether data ends with an intact footer trailer.
func hasGLBTrailer(data []byte) bool {
	return len(data) > glbTrailerLen && bytes.HasSuffix(data, glbTrailerMagic)
}

// GLBTruncatedTrailer cuts into the trailer's end magic, so readers no
// longer recognize that the trace carries a footer at all. The footer
// block it belonged to is left torn at the end of the file.
func GLBTruncatedTrailer(data []byte) []byte {
	if !hasGLBTrailer(data) {
		return data
	}
	return data[:len(data)-3]
}

// GLBTornFooter rips off the trailer and roughly half the footer body —
// the shape left behind by a writer killed mid-footer-append. The torn
// remainder still sits inside the final record-free block's payload.
func GLBTornFooter(data []byte) []byte {
	if !hasGLBTrailer(data) {
		return data
	}
	footLen := int(binary.LittleEndian.Uint32(data[len(data)-glbTrailerLen:]))
	cut := glbTrailerLen + footLen/2
	if cut >= len(data) {
		cut = glbTrailerLen
	}
	return data[:len(data)-cut]
}

// GLBBadFooterCRC flips one bit in the footer body just before the
// trailer, leaving the trailer (and thus footer discovery) intact. Both
// the footer's own CRC and the CRC of the record-free block carrying it
// fail afterwards.
func GLBBadFooterCRC(data []byte) []byte {
	if !hasGLBTrailer(data) {
		return data
	}
	out := append([]byte(nil), data...)
	out[len(out)-glbTrailerLen-2] ^= 0x01
	return out
}

// GLBCorruption is one named .glb footer corruption class. All classes
// are lossless by construction: they touch only the footer/trailer
// suffix, never a data block.
type GLBCorruption struct {
	// Name identifies the class.
	Name string
	// Apply corrupts an indexed .glb trace deterministically. Traces
	// without a footer trailer pass through unchanged.
	Apply func(data []byte) []byte
}

// GLBFooterClasses returns the footer corruption classes driven by the
// robustness harness.
func GLBFooterClasses() []GLBCorruption {
	return []GLBCorruption{
		{Name: "torn-footer", Apply: GLBTornFooter},
		{Name: "bad-footer-crc", Apply: GLBBadFooterCRC},
		{Name: "truncated-trailer", Apply: GLBTruncatedTrailer},
	}
}
