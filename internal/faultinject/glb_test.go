package faultinject

import (
	"bytes"
	"testing"

	"tracedst/internal/trace"
)

// encodeIndexedGLB renders a small binary trace with the block-index
// footer enabled, two records per block.
func encodeIndexedGLB(t *testing.T) ([]byte, []trace.Record) {
	t.Helper()
	recs := []trace.Record{
		{Op: trace.Load, Addr: 0x1000, Size: 4, Func: "main"},
		{Op: trace.Store, Addr: 0x1004, Size: 4, Func: "main"},
		{Op: trace.Load, Addr: 0x2000, Size: 8, Func: "work"},
		{Op: trace.Load, Addr: 0x2008, Size: 8, Func: "work"},
		{Op: trace.Store, Addr: 0x1008, Size: 4, Func: "main"},
	}
	var buf bytes.Buffer
	bw := trace.NewBinaryWriter(&buf)
	bw.EnableIndex()
	bw.SetBlockRecords(2)
	if err := bw.WriteHeader(trace.Header{PID: 42}); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := bw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), recs
}

// TestGLBFooterClassesFallBackToScan: every footer corruption class
// leaves the data blocks intact, so indexed open must succeed with a
// scan-built index identical to the healthy footer's, FooterErr must
// record the damage, and a full-range read must return every record.
func TestGLBFooterClassesFallBackToScan(t *testing.T) {
	clean, recs := encodeIndexedGLB(t)
	want, err := trace.NewIndexedBytes(clean)
	if err != nil {
		t.Fatal(err)
	}
	if !want.HasFooter() {
		t.Fatal("clean trace has no footer")
	}
	wix := want.Index()

	for _, class := range GLBFooterClasses() {
		t.Run(class.Name, func(t *testing.T) {
			data := class.Apply(append([]byte(nil), clean...))
			if bytes.Equal(data, clean) {
				t.Fatal("corruption class left the trace unchanged")
			}
			tr, err := trace.NewIndexedBytes(data)
			if err != nil {
				t.Fatalf("indexed open did not fall back to a scan: %v", err)
			}
			if tr.HasFooter() {
				t.Fatal("damaged footer accepted as a footer")
			}
			if tr.FooterErr() == nil {
				t.Fatal("fallback recorded no FooterErr")
			}
			gix := tr.Index()
			if gix.Records != wix.Records || gix.NumBlocks() != wix.NumBlocks() {
				t.Fatalf("scan index %+v != footer index %+v", gix, wix)
			}
			for i := range wix.Offsets {
				if gix.Offsets[i] != wix.Offsets[i] || gix.Counts[i] != wix.Counts[i] {
					t.Fatalf("block %d: scan (%d,%d) != footer (%d,%d)",
						i, gix.Offsets[i], gix.Counts[i], wix.Offsets[i], wix.Counts[i])
				}
			}
			got, err := trace.ReadSource(tr.Source(0, tr.NumBlocks(), trace.DecodeOptions{}))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(recs) {
				t.Fatalf("got %d records, want %d (footer damage must be lossless)", len(got), len(recs))
			}
			for i := range got {
				if !got[i].Equal(&recs[i]) {
					t.Fatalf("record %d = %v, want %v", i, &got[i], &recs[i])
				}
			}
		})
	}
}

// TestGLBFooterClassesValidateWarn: the validator reads every record of
// a footer-damaged trace and reports the damage as a severity-coded
// "footer" warning — no errors, so glcheck still exits 0 without -werror.
func TestGLBFooterClassesValidateWarn(t *testing.T) {
	clean, recs := encodeIndexedGLB(t)
	for _, class := range GLBFooterClasses() {
		t.Run(class.Name, func(t *testing.T) {
			data := class.Apply(append([]byte(nil), clean...))
			rep, err := trace.Validate(bytes.NewReader(data), trace.ValidateOptions{SkipRegionChecks: true})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Fatalf("footer damage produced errors: %+v", rep.Diags)
			}
			if rep.Records != len(recs) {
				t.Fatalf("validated %d records, want %d", rep.Records, len(recs))
			}
			found := false
			for _, d := range rep.Diags {
				if d.Code == trace.CodeFooter && d.Sev == trace.SevWarn {
					found = true
				}
			}
			if !found {
				t.Fatalf("no %q warning among %+v", trace.CodeFooter, rep.Diags)
			}
		})
	}
}

// TestGLBFooterClassesNoTrailerPassThrough: traces without a footer pass
// through every class unchanged.
func TestGLBFooterClassesNoTrailerPassThrough(t *testing.T) {
	var buf bytes.Buffer
	bw := trace.NewBinaryWriter(&buf)
	rec := trace.Record{Op: trace.Load, Addr: 0x10, Size: 4, Func: "f"}
	if err := bw.Write(&rec); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	plain := buf.Bytes()
	for _, class := range GLBFooterClasses() {
		if got := class.Apply(plain); !bytes.Equal(got, plain) {
			t.Fatalf("%s modified a footerless trace", class.Name)
		}
	}
}
