package tracediff

import (
	"strings"
	"testing"
	"testing/quick"

	"tracedst/internal/rules"
	"tracedst/internal/trace"
	"tracedst/internal/tracer"
	"tracedst/internal/workloads"
	"tracedst/internal/xform"
)

func recsOf(t *testing.T, lines ...string) []trace.Record {
	t.Helper()
	out := make([]trace.Record, len(lines))
	for i, l := range lines {
		r, err := trace.ParseRecord(l)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = r
	}
	return out
}

func TestDiffIdentical(t *testing.T) {
	a := recsOf(t,
		"S 000601040 4 main GV g",
		"L 000601040 4 main GV g",
	)
	d := New(a, a)
	st := d.Stats()
	if st.Same != 2 || st.Rewritten+st.Inserted+st.Deleted != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDiffRewrite(t *testing.T) {
	a := recsOf(t,
		"L 7ff000001 4 main LV 0 1 i",
		"S 7ff000100 4 main LS 0 1 a[0]",
		"L 7ff000001 4 main LV 0 1 i",
	)
	b := recsOf(t,
		"L 7ff000001 4 main LV 0 1 i",
		"S 7ff000200 4 main LS 0 1 b[0]",
		"L 7ff000001 4 main LV 0 1 i",
	)
	d := New(a, b)
	st := d.Stats()
	if st.Same != 2 || st.Rewritten != 1 {
		t.Errorf("stats = %+v rows=%+v", st, d.Rows)
	}
	cv := d.ChangedVariables()
	if cv["b"] != 1 || len(cv) != 1 {
		t.Errorf("changed vars = %v", cv)
	}
}

func TestDiffInsertion(t *testing.T) {
	a := recsOf(t,
		"L 7ff000001 4 main LV 0 1 i",
		"S 7ff000100 4 main LS 0 1 a[0]",
	)
	b := recsOf(t,
		"L 7ff000001 4 main LV 0 1 i",
		"L 7ff000300 8 main LS 0 1 p[0].q",
		"S 7ff000100 4 main LS 0 1 a[0]",
	)
	d := New(a, b)
	st := d.Stats()
	if st.Same != 2 || st.Inserted != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDiffDeletion(t *testing.T) {
	a := recsOf(t,
		"L 7ff000001 4 main LV 0 1 i",
		"S 7ff000100 4 main LS 0 1 a[0]",
	)
	b := recsOf(t, "L 7ff000001 4 main LV 0 1 i")
	d := New(a, b)
	if st := d.Stats(); st.Deleted != 1 || st.Same != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDiffEmpty(t *testing.T) {
	d := New(nil, nil)
	if len(d.Rows) != 0 {
		t.Errorf("rows = %+v", d.Rows)
	}
	b := recsOf(t, "L 7ff000001 4 main LV 0 1 i")
	if st := New(nil, b).Stats(); st.Inserted != 1 {
		t.Errorf("insert-only stats = %+v", st)
	}
	if st := New(b, nil).Stats(); st.Deleted != 1 {
		t.Errorf("delete-only stats = %+v", st)
	}
}

func TestSideBySideRendering(t *testing.T) {
	a := recsOf(t, "S 7ff000100 4 main LS 0 1 a[0]")
	b := recsOf(t,
		"L 7ff000300 8 main LS 0 1 p[0].q",
		"S 7ff000200 4 main LS 0 1 b[0]",
	)
	out := New(a, b).SideBySide(40)
	if !strings.Contains(out, "=>") || !strings.Contains(out, "++") {
		t.Errorf("side by side:\n%s", out)
	}
}

// TestFig5Diff: the T1 diff must consist of rewrites only (same line count,
// as Figure 5 shows).
func TestFig5Diff(t *testing.T) {
	res, err := tracer.Run(workloads.Trans1SoA, map[string]string{"LEN": "16"}, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rule, err := rules.Parse(workloads.RuleTrans1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := xform.New(xform.Options{}, rule)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.TransformAll(res.Records)
	if err != nil {
		t.Fatal(err)
	}
	d := New(res.Records, got)
	st := d.Stats()
	if st.Inserted != 0 || st.Deleted != 0 {
		t.Errorf("T1 diff has insertions/deletions: %+v", st)
	}
	if st.Rewritten != 32 {
		t.Errorf("rewritten = %d, want 32 (16 mX + 16 mY)", st.Rewritten)
	}
	cv := d.ChangedVariables()
	if cv["lAoS"] != 32 {
		t.Errorf("changed vars = %v", cv)
	}
}

// TestFig8Diff: the T2 diff shows 32 rewrites (nested accesses) + 16
// rewrites (mFrequentlyUsed) and 32 insertions (pointer loads).
func TestFig8Diff(t *testing.T) {
	res, err := tracer.Run(workloads.Trans2Inline, map[string]string{"LEN": "16"}, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rule, err := rules.Parse(workloads.RuleTrans2)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := xform.New(xform.Options{}, rule)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.TransformAll(res.Records)
	if err != nil {
		t.Fatal(err)
	}
	st := New(res.Records, got).Stats()
	if st.Inserted != 32 {
		t.Errorf("inserted = %d, want 32 pointer loads", st.Inserted)
	}
	if st.Rewritten != 48 {
		t.Errorf("rewritten = %d, want 48", st.Rewritten)
	}
	if st.Deleted != 0 {
		t.Errorf("deleted = %d", st.Deleted)
	}
}

func TestOpKindString(t *testing.T) {
	if Same.String() != "same" || Rewritten.String() != "rewritten" ||
		Inserted.String() != "inserted" || Deleted.String() != "deleted" {
		t.Error("OpKind strings")
	}
}

// Property: diff row counts are consistent with input lengths:
// same+rewritten+deleted == len(A), same+rewritten+inserted == len(B).
func TestDiffCountInvariant(t *testing.T) {
	mk := func(words []uint8) []trace.Record {
		recs := make([]trace.Record, len(words))
		for i, w := range words {
			recs[i] = trace.Record{
				Op:   trace.Load,
				Addr: uint64(w%8) * 32,
				Size: 4,
				Func: "main",
			}
		}
		return recs
	}
	f := func(aw, bw []uint8) bool {
		if len(aw) > 40 {
			aw = aw[:40]
		}
		if len(bw) > 40 {
			bw = bw[:40]
		}
		a, b := mk(aw), mk(bw)
		st := New(a, b).Stats()
		return st.Same+st.Rewritten+st.Deleted == len(a) &&
			st.Same+st.Rewritten+st.Inserted == len(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
