// Package tracediff aligns an original trace with its transformed
// counterpart — the role of the graphical diff tool in the paper's Figures
// 5, 8 and 9. It computes a Myers diff over whole trace lines, pairs
// adjacent delete/insert runs into "rewritten" lines, and renders a
// side-by-side view with change markers.
package tracediff

import (
	"fmt"
	"strings"

	"tracedst/internal/trace"
)

// OpKind classifies one diff row.
type OpKind int

// Diff row kinds.
const (
	// Same: the line appears unchanged in both traces.
	Same OpKind = iota
	// Rewritten: a line was transformed in place (delete paired with an
	// insert) — the ⇒ rows of Fig 5.
	Rewritten
	// Inserted: a new line exists only in the transformed trace (the green
	// indirection loads of Fig 8).
	Inserted
	// Deleted: a line exists only in the original trace.
	Deleted
)

// String returns the kind name.
func (k OpKind) String() string {
	switch k {
	case Same:
		return "same"
	case Rewritten:
		return "rewritten"
	case Inserted:
		return "inserted"
	case Deleted:
		return "deleted"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Row is one aligned diff row. A and B index into the original and
// transformed record slices (-1 when absent).
type Row struct {
	Kind OpKind
	A, B int
}

// Diff is the alignment of two traces.
type Diff struct {
	A, B []trace.Record
	Rows []Row
}

// Stats summarises a diff.
type Stats struct {
	Same      int
	Rewritten int
	Inserted  int
	Deleted   int
}

// Stats computes row-kind counts.
func (d *Diff) Stats() Stats {
	var s Stats
	for _, r := range d.Rows {
		switch r.Kind {
		case Same:
			s.Same++
		case Rewritten:
			s.Rewritten++
		case Inserted:
			s.Inserted++
		case Deleted:
			s.Deleted++
		}
	}
	return s
}

// New aligns two record slices.
func New(a, b []trace.Record) *Diff {
	// Intern record texts so the diff compares small integers, not strings.
	intern := map[string]int32{}
	id := func(s string) int32 {
		if v, ok := intern[s]; ok {
			return v
		}
		v := int32(len(intern))
		intern[s] = v
		return v
	}
	keysA := make([]int32, len(a))
	for i := range a {
		keysA[i] = id(a[i].String())
	}
	keysB := make([]int32, len(b))
	for i := range b {
		keysB[i] = id(b[i].String())
	}
	ops := myers(keysA, keysB)
	return &Diff{A: a, B: b, Rows: pairRewrites(ops)}
}

// myers computes a minimal edit script between a and b as raw rows with
// kinds Same, Deleted and Inserted. Snapshots of the frontier are stored
// windowed (only diagonals -d..d per step), keeping memory O(D²) instead of
// O(D·(N+M)).
func myers(a, b []int32) []Row {
	n, m := len(a), len(b)
	max := n + m
	if max == 0 {
		return nil
	}
	// v[k+max] = furthest x on diagonal k.
	v := make([]int32, 2*max+1)
	var traceV [][]int32 // traceV[d] holds v[max-d .. max+d] before step d
	var found bool
	var dFound int
	for d := 0; d <= max && !found; d++ {
		vc := make([]int32, 2*d+1)
		copy(vc, v[max-d:max+d+1])
		traceV = append(traceV, vc)
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[k-1+max] < v[k+1+max]) {
				x = int(v[k+1+max]) // down: insert from b
			} else {
				x = int(v[k-1+max]) + 1 // right: delete from a
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[k+max] = int32(x)
			if x >= n && y >= m {
				found = true
				dFound = d
				break
			}
		}
	}
	// Backtrack.
	var rows []Row
	x, y := n, m
	for d := dFound; d > 0; d-- {
		vPrev := traceV[d] // window of diagonals -d..d, index k+d
		k := x - y
		var prevK int
		if k == -d || (k != d && vPrev[k-1+d] < vPrev[k+1+d]) {
			prevK = k + 1
		} else {
			prevK = k - 1
		}
		prevX := int(vPrev[prevK+d])
		prevY := prevX - prevK
		for x > prevX && y > prevY {
			x--
			y--
			rows = append(rows, Row{Kind: Same, A: x, B: y})
		}
		if x == prevX {
			y--
			rows = append(rows, Row{Kind: Inserted, A: -1, B: y})
		} else {
			x--
			rows = append(rows, Row{Kind: Deleted, A: x, B: -1})
		}
	}
	for x > 0 && y > 0 {
		x--
		y--
		rows = append(rows, Row{Kind: Same, A: x, B: y})
	}
	for x > 0 {
		x--
		rows = append(rows, Row{Kind: Deleted, A: x, B: -1})
	}
	for y > 0 {
		y--
		rows = append(rows, Row{Kind: Inserted, A: -1, B: y})
	}
	// Reverse.
	for i, j := 0, len(rows)-1; i < j; i, j = i+1, j-1 {
		rows[i], rows[j] = rows[j], rows[i]
	}
	return rows
}

// pairRewrites merges each run of deletes followed by a run of inserts into
// Rewritten rows pairwise (leftovers stay Deleted/Inserted), matching how a
// graphical diff presents in-place changes.
func pairRewrites(rows []Row) []Row {
	var out []Row
	i := 0
	for i < len(rows) {
		if rows[i].Kind != Deleted {
			out = append(out, rows[i])
			i++
			continue
		}
		j := i
		for j < len(rows) && rows[j].Kind == Deleted {
			j++
		}
		k := j
		for k < len(rows) && rows[k].Kind == Inserted {
			k++
		}
		dels := rows[i:j]
		ins := rows[j:k]
		p := 0
		for ; p < len(dels) && p < len(ins); p++ {
			out = append(out, Row{Kind: Rewritten, A: dels[p].A, B: ins[p].B})
		}
		for ; p < len(dels); p++ {
			out = append(out, dels[p])
		}
		for p = len(dels); p < len(ins); p++ {
			out = append(out, ins[p])
		}
		i = k
	}
	return out
}

// SideBySide renders the aligned traces with change markers: "  " same,
// "=>" rewritten, "++" inserted, "--" deleted (cf. Figures 5, 8, 9).
// width is the column width for each side.
func (d *Diff) SideBySide(width int) string {
	if width <= 0 {
		width = 52
	}
	var b strings.Builder
	for _, r := range d.Rows {
		var left, right, mark string
		switch r.Kind {
		case Same:
			left, right, mark = d.A[r.A].String(), d.B[r.B].String(), "  "
		case Rewritten:
			left, right, mark = d.A[r.A].String(), d.B[r.B].String(), "=>"
		case Inserted:
			left, right, mark = "", d.B[r.B].String(), "++"
		case Deleted:
			left, right, mark = d.A[r.A].String(), "", "--"
		}
		fmt.Fprintf(&b, "%-*.*s %s %s\n", width, width, left, mark, right)
	}
	return b.String()
}

// ChangedVariables lists the root variables whose records were rewritten or
// inserted, with counts — the quick answer to "what did the rule touch?".
func (d *Diff) ChangedVariables() map[string]int {
	out := map[string]int{}
	for _, r := range d.Rows {
		switch r.Kind {
		case Rewritten, Inserted:
			rec := &d.B[r.B]
			if rec.HasSym {
				out[rec.Var.Root]++
			} else {
				out["(nosym)"]++
			}
		}
	}
	return out
}
