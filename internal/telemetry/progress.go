package telemetry

import (
	"fmt"
	"sync/atomic"
	"time"
)

// progEvery is the process-wide progress emission interval (0 = off),
// wired from the shared -progress flag by cliutil.
var progEvery atomic.Int64

// SetProgressInterval sets how often batch runners emit a progress line
// (0 disables) and returns the previous interval.
func SetProgressInterval(d time.Duration) time.Duration {
	if d < 0 {
		d = 0
	}
	return time.Duration(progEvery.Swap(int64(d)))
}

// ProgressInterval returns the current progress emission interval.
func ProgressInterval() time.Duration {
	return time.Duration(progEvery.Load())
}

// Progress tracks a batch of known size and periodically emits one
// structured line — completed/total, percentage, rate and ETA — through
// the default logger. Add is a single atomic increment, safe from any
// worker; the emitting goroutine only exists while the interval is
// positive.
type Progress struct {
	label string
	total int64
	done  atomic.Int64
	start time.Time
	stop  chan struct{}
	quit  chan struct{}
}

// StartProgress begins tracking total units of work under label,
// emitting every interval (<= 0 disables emission; counting still
// works). Call Stop when the batch ends to emit the final line and
// release the ticker.
func StartProgress(label string, total int, every time.Duration) *Progress {
	p := &Progress{label: label, total: int64(total), start: time.Now()}
	if every > 0 {
		p.stop = make(chan struct{})
		p.quit = make(chan struct{})
		go p.run(every)
	}
	return p
}

// Add records n more completed units.
func (p *Progress) Add(n int) { p.done.Add(int64(n)) }

// Done returns how many units completed so far.
func (p *Progress) Done() int64 { return p.done.Load() }

// Stop ends the tracker, emitting the final summary line when periodic
// emission was on. Stop is idempotent for convenience in defer chains.
func (p *Progress) Stop() {
	if p.stop == nil {
		return
	}
	select {
	case <-p.quit:
		return
	default:
	}
	close(p.stop)
	<-p.quit
}

func (p *Progress) run(every time.Duration) {
	defer close(p.quit)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.emit(false)
		case <-p.stop:
			p.emit(true)
			return
		}
	}
}

func (p *Progress) emit(final bool) {
	done := p.done.Load()
	elapsed := time.Since(p.start)
	msg, attrs := p.line(done, elapsed, final)
	L().Info(msg, attrs...)
}

// line formats one progress event: the human-facing message plus the
// structured attributes (done, total, pct, rate, eta).
func (p *Progress) line(done int64, elapsed time.Duration, final bool) (string, []any) {
	pct := float64(100)
	if p.total > 0 {
		pct = 100 * float64(done) / float64(p.total)
	}
	rate := float64(0)
	if elapsed > 0 {
		rate = float64(done) / elapsed.Seconds()
	}
	attrs := []any{
		"label", p.label,
		"done", done,
		"total", p.total,
		"pct", fmt.Sprintf("%.1f", pct),
		"rate_per_sec", fmt.Sprintf("%.1f", rate),
	}
	if final {
		attrs = append(attrs, "elapsed", elapsed.Round(time.Millisecond).String())
		return "progress done", attrs
	}
	eta := "?"
	if rate > 0 && done < p.total {
		eta = (time.Duration(float64(p.total-done) / rate * float64(time.Second))).Round(time.Second).String()
	}
	attrs = append(attrs, "eta", eta)
	return "progress", attrs
}
