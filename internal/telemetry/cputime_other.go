//go:build !unix

package telemetry

import "time"

// processCPU is unavailable off unix; spans report zero CPU time there.
func processCPU() time.Duration { return 0 }
