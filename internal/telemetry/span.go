package telemetry

import (
	"context"
	"log/slog"
	"time"
)

// SpanStats aggregates every completed span of one name: how often the
// phase ran and the wall and CPU time it consumed. CPU time is
// process-wide (user+system), so concurrent phases each see the whole
// process's burn — the useful signal is the per-phase wall/CPU ratio of
// serial phases and the total at the run level.
type SpanStats struct {
	Count  int64
	WallNS int64
	CPUNS  int64
	MinNS  int64
	MaxNS  int64
}

// Span is one running phase timer. Create with Registry.StartSpan, stop
// with End. Spans nest by name: child spans started with Child record
// under "parent/child". A span started with StartSpanCtx from a context
// carrying a trace additionally gets IDs and exports a SpanEvent on End.
type Span struct {
	reg   *Registry
	name  string
	wall0 time.Time
	cpu0  time.Duration

	// Tracing state; all zero (and cost-free) for untraced spans.
	trace  TraceID
	id     SpanID
	parent SpanID
	exp    *SpanExporter
	attrs  map[string]string
}

// StartSpan starts a phase timer recording into the registry under name.
func (r *Registry) StartSpan(name string) *Span {
	return &Span{reg: r, name: name, wall0: time.Now(), cpu0: processCPU()}
}

// StartSpanCtx starts a span that participates in the trace ctx carries:
// the span gets a fresh ID, names the context's current span as parent,
// inherits the context's attributes, and exports a SpanEvent when ended.
// The returned context makes this span the parent of spans started from
// it. When ctx carries no trace this is exactly StartSpan — same cost,
// same aggregates, ctx returned unchanged.
func (r *Registry) StartSpanCtx(ctx context.Context, name string) (*Span, context.Context) {
	tc, ok := ctx.Value(traceCtxKey{}).(*traceCtx)
	if !ok || tc.trace.IsZero() {
		return r.StartSpan(name), ctx
	}
	s := r.StartSpan(name)
	s.trace = tc.trace
	s.id = NewSpanID()
	s.parent = tc.parent
	s.exp = tc.exp
	if len(tc.attrs) > 0 {
		s.attrs = make(map[string]string, len(tc.attrs)+2)
		for k, v := range tc.attrs {
			s.attrs[k] = v
		}
	}
	child := &traceCtx{exp: tc.exp, trace: tc.trace, parent: s.id, attrs: tc.attrs}
	return s, context.WithValue(ctx, traceCtxKey{}, child)
}

// Traced reports whether the span is part of a trace.
func (s *Span) Traced() bool { return !s.trace.IsZero() }

// Trace returns the span's trace ID (zero when untraced).
func (s *Span) Trace() TraceID { return s.trace }

// SetAttr tags the span with a key=value attribute for the JSONL export.
// No-op on untraced spans, so call sites need not guard.
func (s *Span) SetAttr(key, value string) {
	if s.trace.IsZero() {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
}

// ProcessCPU returns the process's cumulative CPU time (user + system) —
// the clock spans time against, exported for per-job resource accounting.
func ProcessCPU() time.Duration { return processCPU() }

// Name returns the span's full (nested) name.
func (s *Span) Name() string { return s.name }

// Child starts a nested span named "<parent>/<name>".
func (s *Span) Child(name string) *Span {
	return s.reg.StartSpan(s.name + "/" + name)
}

// End stops the span, records it, and returns the wall duration. A span
// must be ended exactly once. When the default logger has debug enabled,
// the completed span is also emitted as a structured event.
func (s *Span) End() time.Duration {
	wall := time.Since(s.wall0)
	cpu := processCPU() - s.cpu0
	s.reg.recordSpan(s.name, wall, cpu)
	if !s.trace.IsZero() && s.exp != nil {
		if cpu < 0 {
			cpu = 0 // a cputime backend error must not produce a negative event
		}
		start := s.wall0.UnixNano()
		ev := SpanEvent{
			Trace:   s.trace.String(),
			Span:    s.id.String(),
			Name:    s.name,
			StartNS: start,
			EndNS:   start + int64(wall),
			CPUNS:   int64(cpu),
			Attrs:   s.attrs,
		}
		if !s.parent.IsZero() {
			ev.Parent = s.parent.String()
		}
		s.exp.Record(ev)
	}
	if l := L(); l.Enabled(context.Background(), slog.LevelDebug) {
		l.Debug("span", "name", s.name,
			"wall_ms", float64(wall)/float64(time.Millisecond),
			"cpu_ms", float64(cpu)/float64(time.Millisecond))
	}
	return wall
}

func (r *Registry) recordSpan(name string, wall, cpu time.Duration) {
	w, c := int64(wall), int64(cpu)
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.spans[name]
	if st == nil {
		st = &SpanStats{MinNS: w, MaxNS: w}
		r.spans[name] = st
	}
	st.Count++
	st.WallNS += w
	st.CPUNS += c
	if w < st.MinNS {
		st.MinNS = w
	}
	if w > st.MaxNS {
		st.MaxNS = w
	}
}
