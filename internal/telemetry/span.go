package telemetry

import (
	"context"
	"log/slog"
	"time"
)

// SpanStats aggregates every completed span of one name: how often the
// phase ran and the wall and CPU time it consumed. CPU time is
// process-wide (user+system), so concurrent phases each see the whole
// process's burn — the useful signal is the per-phase wall/CPU ratio of
// serial phases and the total at the run level.
type SpanStats struct {
	Count  int64
	WallNS int64
	CPUNS  int64
	MinNS  int64
	MaxNS  int64
}

// Span is one running phase timer. Create with Registry.StartSpan, stop
// with End. Spans nest by name: child spans started with Child record
// under "parent/child".
type Span struct {
	reg   *Registry
	name  string
	wall0 time.Time
	cpu0  time.Duration
}

// StartSpan starts a phase timer recording into the registry under name.
func (r *Registry) StartSpan(name string) *Span {
	return &Span{reg: r, name: name, wall0: time.Now(), cpu0: processCPU()}
}

// Name returns the span's full (nested) name.
func (s *Span) Name() string { return s.name }

// Child starts a nested span named "<parent>/<name>".
func (s *Span) Child(name string) *Span {
	return s.reg.StartSpan(s.name + "/" + name)
}

// End stops the span, records it, and returns the wall duration. A span
// must be ended exactly once. When the default logger has debug enabled,
// the completed span is also emitted as a structured event.
func (s *Span) End() time.Duration {
	wall := time.Since(s.wall0)
	cpu := processCPU() - s.cpu0
	s.reg.recordSpan(s.name, wall, cpu)
	if l := L(); l.Enabled(context.Background(), slog.LevelDebug) {
		l.Debug("span", "name", s.name,
			"wall_ms", float64(wall)/float64(time.Millisecond),
			"cpu_ms", float64(cpu)/float64(time.Millisecond))
	}
	return wall
}

func (r *Registry) recordSpan(name string, wall, cpu time.Duration) {
	w, c := int64(wall), int64(cpu)
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.spans[name]
	if st == nil {
		st = &SpanStats{MinNS: w, MaxNS: w}
		r.spans[name] = st
	}
	st.Count++
	st.WallNS += w
	st.CPUNS += c
	if w < st.MinNS {
		st.MinNS = w
	}
	if w > st.MaxNS {
		st.MaxNS = w
	}
}
