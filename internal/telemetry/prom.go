// Prometheus text exposition (format version 0.0.4) for a Registry:
// counters become *_total counters, gauges map 1:1, the log2-bucket
// histograms render as cumulative le-bucket histograms, and span
// aggregates export as count/wall/cpu totals labeled by span name — so a
// stock Prometheus server can scrape tracedstd's /metrics with no
// adapter. Rendering reads straight off the live registry (histogram
// buckets included, which the JSON manifest elides) and is byte-
// deterministic for a frozen registry: families and series sort by name.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// PromContentType is the Content-Type of the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promNamespace prefixes every exported metric family.
const promNamespace = "tracedst"

// WritePrometheus renders the registry in the Prometheus text exposition
// format. tool labels the uptime/info series with the exporting binary.
func (r *Registry) WritePrometheus(w io.Writer, tool string) error {
	r.mu.RLock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	type histCopy struct {
		count, sum int64
		buckets    [histBuckets]int64
	}
	hists := make(map[string]histCopy, len(r.hists))
	for name, h := range r.hists {
		hc := histCopy{count: h.Count(), sum: h.Sum()}
		for i := range h.buckets {
			hc.buckets[i] = h.buckets[i].Load()
		}
		hists[name] = hc
	}
	spans := make(map[string]SpanSnapshot, len(r.spans))
	for name, st := range r.spans {
		spans[name] = SpanSnapshot{Count: st.Count, WallNS: st.WallNS, CPUNS: st.CPUNS}
	}
	started := r.start
	r.mu.RUnlock()

	var b strings.Builder

	fmt.Fprintf(&b, "# HELP %s_up Whether the %s exporter is serving (always 1 when scraped).\n", promNamespace, promNamespace)
	fmt.Fprintf(&b, "# TYPE %s_up gauge\n", promNamespace)
	fmt.Fprintf(&b, "%s_up{tool=%s} 1\n", promNamespace, promLabelValue(tool))
	fmt.Fprintf(&b, "# HELP %s_uptime_seconds Seconds since the registry was created.\n", promNamespace)
	fmt.Fprintf(&b, "# TYPE %s_uptime_seconds gauge\n", promNamespace)
	fmt.Fprintf(&b, "%s_uptime_seconds %s\n", promNamespace, promFloat(time.Since(started).Seconds()))

	for _, name := range sortedKeys(counters) {
		fam := promNamespace + "_" + promName(name) + "_total"
		fmt.Fprintf(&b, "# HELP %s Counter %q.\n", fam, name)
		fmt.Fprintf(&b, "# TYPE %s counter\n", fam)
		fmt.Fprintf(&b, "%s %d\n", fam, counters[name])
	}
	for _, name := range sortedKeys(gauges) {
		fam := promNamespace + "_" + promName(name)
		fmt.Fprintf(&b, "# HELP %s Gauge %q.\n", fam, name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", fam)
		fmt.Fprintf(&b, "%s %d\n", fam, gauges[name])
	}
	for _, name := range sortedKeys(hists) {
		h := hists[name]
		fam := promNamespace + "_" + promName(name)
		fmt.Fprintf(&b, "# HELP %s Histogram %q (power-of-two buckets).\n", fam, name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", fam)
		// Bucket i of the internal histogram holds values of bit length i,
		// i.e. (2^(i-1), 2^i - 1]; its inclusive Prometheus upper bound is
		// 2^i - 1 (bucket 0 holds exactly the value 0, le="0"). Emit only up
		// to the highest populated bucket, then +Inf.
		top := 0
		for i, n := range h.buckets {
			if n > 0 {
				top = i
			}
		}
		var cum int64
		for i := 0; i <= top; i++ {
			cum += h.buckets[i]
			le := "0"
			if i > 0 {
				le = strconv.FormatUint(1<<uint(i)-1, 10)
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", fam, le, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", fam, h.count)
		fmt.Fprintf(&b, "%s_sum %d\n", fam, h.sum)
		fmt.Fprintf(&b, "%s_count %d\n", fam, h.count)
	}

	if len(spans) > 0 {
		names := sortedKeys(spans)
		emit := func(fam, help string, val func(SpanSnapshot) string) {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam, help)
			fmt.Fprintf(&b, "# TYPE %s counter\n", fam)
			for _, name := range names {
				fmt.Fprintf(&b, "%s{span=%s} %s\n", fam, promLabelValue(name), val(spans[name]))
			}
		}
		emit(promNamespace+"_span_count_total", "Completed spans by name.",
			func(s SpanSnapshot) string { return strconv.FormatInt(s.Count, 10) })
		emit(promNamespace+"_span_wall_seconds_total", "Cumulative span wall time by name.",
			func(s SpanSnapshot) string { return promFloat(float64(s.WallNS) / 1e9) })
		emit(promNamespace+"_span_cpu_seconds_total", "Cumulative span CPU time by name (process-wide clock).",
			func(s SpanSnapshot) string { return promFloat(float64(s.CPUNS) / 1e9) })
	}

	_, err := io.WriteString(w, b.String())
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promName maps a registry metric name onto the Prometheus name charset
// [a-zA-Z0-9_:]: every other rune (the registry's dots, dashes, slashes)
// becomes an underscore.
func promName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabelValue quotes and escapes a label value per the exposition
// format: backslash, double quote and newline are escaped.
func promLabelValue(s string) string {
	var b strings.Builder
	b.Grow(len(s) + 2)
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// promFloat renders a float in the shortest round-tripping form.
func promFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
