package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryGetOrCreate checks that the same name always yields the
// same handle and distinct names distinct handles.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a, b := r.Counter("x"), r.Counter("x")
	if a != b {
		t.Fatal("same counter name returned distinct handles")
	}
	if r.Counter("y") == a {
		t.Fatal("distinct counter names shared a handle")
	}
	if r.Gauge("x") == nil || r.Histogram("x") == nil {
		t.Fatal("gauge/histogram construction failed")
	}
	a.Add(3)
	a.Inc()
	if got := b.Value(); got != 4 {
		t.Fatalf("counter value = %d, want 4", got)
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge value = %d, want 5", got)
	}
}

// TestRegistryConcurrency hammers get-or-create and updates from many
// goroutines; run with -race this is the registry's thread-safety proof.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const iters = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("metric-%d", i%7)
				r.Counter(name).Inc()
				r.Gauge(name).Set(int64(i))
				r.Histogram(name).Observe(int64(i))
				sp := r.StartSpan(name)
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for i := 0; i < 7; i++ {
		total += r.Counter(fmt.Sprintf("metric-%d", i)).Value()
	}
	if want := int64(workers * iters); total != want {
		t.Fatalf("counter total = %d, want %d", total, want)
	}
	m := r.Snapshot("test")
	if m.Spans["metric-0"].Count == 0 {
		t.Fatal("span stats missing after concurrent spans")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for i := 0; i < 50; i++ {
		h.Observe(1)
	}
	for i := 0; i < 50; i++ {
		h.Observe(64)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if got := h.Sum(); got != 50+50*64 {
		t.Fatalf("sum = %d", got)
	}
	if got, want := h.Min(), int64(1); got != want {
		t.Fatalf("min = %d, want %d", got, want)
	}
	if got, want := h.Max(), int64(64); got != want {
		t.Fatalf("max = %d, want %d", got, want)
	}
	// The 25th percentile lands in the all-ones half; the bucket upper
	// bound for value 1 is exactly 1.
	if got := h.Quantile(0.25); got != 1 {
		t.Fatalf("p25 = %d, want 1", got)
	}
	// The 75th percentile lands in the 64s; the bucket [64,127] is
	// tightened to the observed max.
	if got := h.Quantile(0.75); got != 64 {
		t.Fatalf("p75 = %d, want 64", got)
	}
	if got := h.Quantile(1); got != 64 {
		t.Fatalf("p100 = %d, want 64", got)
	}

	empty := r.Histogram("empty")
	if empty.Quantile(0.5) != 0 || empty.Min() != 0 || empty.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	neg := r.Histogram("neg")
	neg.Observe(-5)
	if neg.Min() != 0 {
		t.Fatalf("negative observation should clamp to 0, min = %d", neg.Min())
	}
}

func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	parent := r.StartSpan("phase")
	child := parent.Child("inner")
	if child.Name() != "phase/inner" {
		t.Fatalf("child name = %q", child.Name())
	}
	grand := child.Child("leaf")
	time.Sleep(2 * time.Millisecond)
	grand.End()
	child.End()
	parent.End()
	m := r.Snapshot("test")
	for _, name := range []string{"phase", "phase/inner", "phase/inner/leaf"} {
		if m.Spans[name].Count != 1 {
			t.Fatalf("span %q count = %d, want 1", name, m.Spans[name].Count)
		}
	}
	// Wall time nests: the parent covers its children.
	if m.Spans["phase"].WallNS < m.Spans["phase/inner"].WallNS {
		t.Fatalf("parent wall %d < child wall %d",
			m.Spans["phase"].WallNS, m.Spans["phase/inner"].WallNS)
	}
	if m.Spans["phase/inner"].WallNS < m.Spans["phase/inner/leaf"].WallNS {
		t.Fatal("child wall < grandchild wall")
	}
	if m.Spans["phase/inner/leaf"].WallNS < int64(time.Millisecond) {
		t.Fatalf("leaf wall %d implausibly small", m.Spans["phase/inner/leaf"].WallNS)
	}
}

func TestManifestWriteFile(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(42)
	r.Gauge("g").Set(-3)
	r.Histogram("h").Observe(10)
	sp := r.StartSpan("s")
	sp.End()

	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := r.Snapshot("unittest").WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if m.Schema != ManifestSchema || m.Tool != "unittest" {
		t.Fatalf("schema/tool = %d/%q", m.Schema, m.Tool)
	}
	if m.Counters["c"] != 42 || m.Gauges["g"] != -3 {
		t.Fatalf("counters/gauges round-trip: %+v", m)
	}
	if m.Histograms["h"].Count != 1 || m.Histograms["h"].Max != 10 {
		t.Fatalf("histogram round-trip: %+v", m.Histograms["h"])
	}
	if m.Spans["s"].Count != 1 {
		t.Fatalf("span round-trip: %+v", m.Spans["s"])
	}
	// No temp files left behind.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left in output dir: %v", ents)
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "mytool", FormatText, false)
	if err != nil {
		t.Fatal(err)
	}
	l.Warn("skipping line 3", "err", "bad record")
	if got := buf.String(); !strings.Contains(got, "mytool: warning: skipping line 3") ||
		!strings.Contains(got, `err="bad record"`) {
		t.Fatalf("text line = %q", got)
	}
	l.Debug("hidden")
	if strings.Contains(buf.String(), "hidden") {
		t.Fatal("debug emitted without verbose")
	}

	buf.Reset()
	l, err = NewLogger(&buf, "mytool", FormatJSON, true)
	if err != nil {
		t.Fatal(err)
	}
	l.Info("event", "records", 7)
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("json line %q: %v", buf.String(), err)
	}
	if obj["tool"] != "mytool" || obj["msg"] != "event" || obj["records"] != float64(7) {
		t.Fatalf("json fields: %v", obj)
	}

	if _, err := NewLogger(&buf, "t", "xml", false); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestDefaultSwap(t *testing.T) {
	fresh := NewRegistry()
	prev := SetDefault(fresh)
	defer SetDefault(prev)
	if Default() != fresh {
		t.Fatal("SetDefault did not install the registry")
	}
	var buf bytes.Buffer
	l := slog.New(slog.NewJSONHandler(&buf, nil))
	prevLog := SetLogger(l)
	defer SetLogger(prevLog)
	if L() != l {
		t.Fatal("SetLogger did not install the logger")
	}
	SetLogger(nil)
	if L() == nil {
		t.Fatal("nil logger should fall back to Nop")
	}
	SetLogger(prevLog)
}

func TestProgressLines(t *testing.T) {
	p := StartProgress("tasks", 10, 0) // emission off, counting on
	p.Add(3)
	if p.Done() != 3 {
		t.Fatalf("done = %d", p.Done())
	}
	msg, attrs := p.line(3, 2*time.Second, false)
	if msg != "progress" {
		t.Fatalf("msg = %q", msg)
	}
	s := fmt.Sprint(attrs...)
	if !strings.Contains(s, "30.0") { // pct
		t.Fatalf("attrs missing pct: %v", s)
	}
	if !strings.Contains(s, "1.5") { // rate: 3 done / 2s
		t.Fatalf("attrs missing rate: %v", s)
	}
	// ETA: 7 remaining at 1.5/s ≈ 5s (rounded to seconds).
	if !strings.Contains(s, "eta 5s") && !strings.Contains(s, "eta5s") {
		t.Fatalf("attrs missing eta: %v", s)
	}
	msg, attrs = p.line(10, 4*time.Second, true)
	if msg != "progress done" {
		t.Fatalf("final msg = %q", msg)
	}
	if !strings.Contains(fmt.Sprint(attrs...), "elapsed") {
		t.Fatalf("final attrs missing elapsed: %v", attrs)
	}
	p.Stop() // no periodic goroutine; must be a no-op
}

// TestProgressEmits runs a real ticker against a captured logger.
func TestProgressEmits(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	l := slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil))
	prev := SetLogger(l)
	defer SetLogger(prev)

	p := StartProgress("work", 4, 5*time.Millisecond)
	p.Add(2)
	time.Sleep(30 * time.Millisecond)
	p.Add(2)
	p.Stop()
	p.Stop() // idempotent

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, `"msg":"progress"`) {
		t.Fatalf("no periodic progress line in:\n%s", out)
	}
	if !strings.Contains(out, `"msg":"progress done"`) {
		t.Fatalf("no final progress line in:\n%s", out)
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("non-JSON progress line %q: %v", line, err)
		}
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}
