package telemetry

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceIDRoundTrip(t *testing.T) {
	id := NewTraceID()
	if id.IsZero() {
		t.Fatal("NewTraceID returned zero")
	}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("trace ID %q: want 32 hex digits", s)
	}
	back, err := ParseTraceID(s)
	if err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("round trip %v != %v", back, id)
	}
	if other := NewTraceID(); other == id {
		t.Fatal("two NewTraceID calls collided")
	}
}

func TestParseTraceIDRejects(t *testing.T) {
	for _, bad := range []string{
		"", "abc", strings.Repeat("0", 32), strings.Repeat("g", 32),
		strings.Repeat("a", 31), strings.Repeat("a", 33),
	} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Errorf("ParseTraceID(%q): want error", bad)
		}
	}
}

func TestSpanIDRoundTrip(t *testing.T) {
	id := NewSpanID()
	if id.IsZero() {
		t.Fatal("NewSpanID returned zero")
	}
	back, err := ParseSpanID(id.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != id {
		t.Fatalf("round trip %v != %v", back, id)
	}
}

func TestDeriveTraceID(t *testing.T) {
	a := DeriveTraceID("request-42")
	b := DeriveTraceID("request-42")
	c := DeriveTraceID("request-43")
	if a != b {
		t.Fatal("derivation is not deterministic")
	}
	if a == c {
		t.Fatal("distinct inputs collided")
	}
	if a.IsZero() {
		t.Fatal("derived ID is zero")
	}
}

func TestParseTraceparent(t *testing.T) {
	tid, sid, err := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if err != nil {
		t.Fatal(err)
	}
	if tid.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace = %s", tid)
	}
	if sid.String() != "00f067aa0ba902b7" {
		t.Fatalf("span = %s", sid)
	}
	for _, bad := range []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // missing flags
		"00-short-00f067aa0ba902b7-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // all-zero trace
	} {
		if _, _, err := ParseTraceparent(bad); err == nil {
			t.Errorf("ParseTraceparent(%q): want error", bad)
		}
	}
}

func TestStartSpanCtxUntracedIsFree(t *testing.T) {
	reg := NewRegistry()
	ctx := context.Background()
	sp, out := reg.StartSpanCtx(ctx, "plain")
	if out != ctx {
		t.Fatal("untraced StartSpanCtx should return the same context")
	}
	if sp.Traced() {
		t.Fatal("span should be untraced")
	}
	sp.SetAttr("k", "v") // must be a no-op, not a panic
	sp.End()
	if snap := reg.Snapshot("t"); snap.Spans["plain"].Count != 1 {
		t.Fatal("aggregates must still record untraced spans")
	}
}

func TestTracePropagationAndExport(t *testing.T) {
	reg := NewRegistry()
	exp := NewSpanExporter("")
	tid := NewTraceID()
	ctx := ContextWithTrace(context.Background(), exp, tid)
	ctx = ContextWithAttrs(ctx, "job", "j000001")

	root, ctx := reg.StartSpanCtx(ctx, "root")
	if !root.Traced() || root.Trace() != tid {
		t.Fatal("root span did not join the trace")
	}
	child, cctx := reg.StartSpanCtx(ctx, "child")
	grand, _ := reg.StartSpanCtx(cctx, "grandchild")
	grand.SetAttr("records", "5")
	grand.End()
	child.End()
	root.End()

	events := exp.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	byName := map[string]SpanEvent{}
	for _, ev := range events {
		byName[ev.Name] = ev
		if ev.Trace != tid.String() {
			t.Fatalf("span %s: trace %s, want %s", ev.Name, ev.Trace, tid)
		}
		if ev.Attrs["job"] != "j000001" {
			t.Fatalf("span %s: inherited attr job = %q", ev.Name, ev.Attrs["job"])
		}
		if ev.EndNS < ev.StartNS {
			t.Fatalf("span %s ends before it starts", ev.Name)
		}
	}
	if byName["root"].Parent != "" {
		t.Fatalf("root has parent %q", byName["root"].Parent)
	}
	if byName["child"].Parent != byName["root"].Span {
		t.Fatal("child's parent is not root")
	}
	if byName["grandchild"].Parent != byName["child"].Span {
		t.Fatal("grandchild's parent is not child")
	}
	if byName["grandchild"].Attrs["records"] != "5" {
		t.Fatal("SetAttr lost")
	}
	// Aggregates fire alongside the events.
	snap := reg.Snapshot("t")
	for _, name := range []string{"root", "child", "grandchild"} {
		if snap.Spans[name].Count != 1 {
			t.Fatalf("aggregate for %s missing", name)
		}
	}
}

func TestContextWithRemoteParent(t *testing.T) {
	reg := NewRegistry()
	exp := NewSpanExporter("")
	tid := NewTraceID()
	remote := NewSpanID()
	ctx := ContextWithRemoteParent(context.Background(), exp, tid, remote)
	sp, _ := reg.StartSpanCtx(ctx, "server.job")
	sp.End()
	events := exp.Events()
	if len(events) != 1 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].Parent != remote.String() {
		t.Fatalf("parent %q, want remote %s", events[0].Parent, remote)
	}
}

func TestTraceIDFrom(t *testing.T) {
	if _, ok := TraceIDFrom(context.Background()); ok {
		t.Fatal("background context should carry no trace")
	}
	tid := NewTraceID()
	ctx := ContextWithTrace(context.Background(), NewSpanExporter(""), tid)
	got, ok := TraceIDFrom(ctx)
	if !ok || got != tid {
		t.Fatalf("TraceIDFrom = %v, %v", got, ok)
	}
}

func TestSpanExporterFlushJSONL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spans.jsonl")
	reg := NewRegistry()
	exp := NewSpanExporter(path)
	ctx := ContextWithTrace(context.Background(), exp, NewTraceID())
	root, ctx := reg.StartSpanCtx(ctx, "a")
	child, _ := reg.StartSpanCtx(ctx, "b")
	child.End()
	root.End()
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var ev SpanEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if ev.Trace == "" || ev.Span == "" || ev.Name == "" {
			t.Fatalf("incomplete event %+v", ev)
		}
	}
	// Flush is a full rewrite: flushing again must not duplicate lines.
	if err := exp.Flush(); err != nil {
		t.Fatal(err)
	}
	again, _ := os.ReadFile(path)
	if string(again) != string(data) {
		t.Fatal("second flush changed the file")
	}
}

func TestSpanExporterCapDrops(t *testing.T) {
	exp := NewSpanExporter("")
	exp.SetCap(2)
	for i := 0; i < 5; i++ {
		exp.Record(SpanEvent{Trace: "t", Span: "s", Name: "n"})
	}
	if got := len(exp.Events()); got != 2 {
		t.Fatalf("buffered %d, want 2", got)
	}
	if exp.Dropped() != 3 {
		t.Fatalf("dropped %d, want 3", exp.Dropped())
	}
}

func TestRuntimeSampler(t *testing.T) {
	reg := NewRegistry()
	stop := StartRuntimeSampler(reg, DefaultRuntimeSampleInterval)
	defer stop()
	snap := reg.Snapshot("t")
	if snap.Gauges["runtime.goroutines"] <= 0 {
		t.Fatalf("runtime.goroutines = %d", snap.Gauges["runtime.goroutines"])
	}
	if snap.Gauges["runtime.heap_alloc_bytes"] <= 0 {
		t.Fatalf("runtime.heap_alloc_bytes = %d", snap.Gauges["runtime.heap_alloc_bytes"])
	}
	stop()
	stop() // idempotent
}
