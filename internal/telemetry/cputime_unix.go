//go:build unix

package telemetry

import (
	"syscall"
	"time"
)

// processCPU returns the process's cumulative CPU time (user + system).
func processCPU() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
