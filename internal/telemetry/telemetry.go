// Package telemetry is the pipeline's dependency-free observability
// layer: named atomic counters, gauges and histograms in a Registry,
// wall+CPU phase spans, a pluggable log sink built on log/slog (human
// text, JSON lines, discard), a periodic progress reporter with ETA, and
// a machine-readable end-of-run metrics manifest written atomically.
//
// Instrumented packages read the process defaults (Default registry,
// L logger) so a library user pays nothing — the default sink discards —
// while the CLIs wire real sinks through cliutil's shared flags. Hot
// paths must not allocate: metric handles are looked up once (cold) and
// then updated with single atomic operations.
package telemetry

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time value (worker count, utilization percentage).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the bucket count of a Histogram: bucket i holds values
// whose bit length is i, i.e. [2^(i-1), 2^i). Bucket 0 holds zero.
const histBuckets = 65

// Histogram accumulates a distribution in power-of-two buckets — coarse
// but allocation-free and mergeable. Quantiles are bucket-resolution
// (within a factor of two), tightened by the tracked min/max.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns how many values were observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Min returns the smallest observed value (0 before any observation).
// Observe bumps count before it settles min/max, so a concurrent reader
// can see count > 0 while min still holds its init sentinel; both the
// no-sample case and that window report 0 instead of leaking MaxInt64
// into snapshots.
func (h *Histogram) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	v := h.min.Load()
	if v == math.MaxInt64 {
		return 0
	}
	return v
}

// Max returns the largest observed value (0 before any observation or
// while a racing first Observe has not yet settled the sentinel).
func (h *Histogram) Max() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	v := h.max.Load()
	if v == math.MinInt64 {
		return 0
	}
	return v
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) at
// bucket resolution: the value returned is >= the true quantile and less
// than twice it, clamped to the observed max.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	if target > n {
		target = n
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i == 0 {
				return 0
			}
			hi := int64(1)<<uint(i) - 1 // largest value with bit length i
			if m := h.max.Load(); hi > m {
				hi = m
			}
			return hi
		}
	}
	return h.max.Load()
}

// Registry is a named collection of metrics and completed spans. All
// methods are safe for concurrent use; the metric handles it returns are
// lock-free and should be cached by hot paths.
type Registry struct {
	start time.Time

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    map[string]*SpanStats
}

// NewRegistry returns an empty registry stamped with the current time.
func NewRegistry() *Registry {
	return &Registry{
		start:    time.Now(),
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		spans:    map[string]*SpanStats{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = newHistogram()
	r.hists[name] = h
	return h
}

// defReg is the process-wide default registry instrumented packages use.
var defReg atomic.Pointer[Registry]

func init() {
	defReg.Store(NewRegistry())
}

// Default returns the process-wide registry.
func Default() *Registry { return defReg.Load() }

// SetDefault replaces the process-wide registry (CLI startup, test
// isolation) and returns the previous one.
func SetDefault(r *Registry) *Registry {
	if r == nil {
		r = NewRegistry()
	}
	return defReg.Swap(r)
}
