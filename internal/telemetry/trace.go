// Structured request tracing: spans get IDs, parents and a trace ID, are
// tagged with key=value attributes, and export as JSONL — while still
// feeding the per-name aggregates the metrics manifest reports, so
// tracing rides on the existing Span API instead of replacing it.
//
// The design follows the tracer-driver shape: the process emits
// structured trace events and external analyzers (tools/spanview,
// tools/metricscheck -spans) consume them offline. Propagation is
// context-based: a context made with ContextWithTrace carries the trace
// ID, the current parent span and inherited attributes; StartSpanCtx
// reads it and returns a child context, so trace IDs flow through the
// pipeline stages without any API beyond context.Context. A context
// without a trace costs nothing: StartSpanCtx degenerates to StartSpan.
package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
)

// TraceID identifies one end-to-end request: every span recorded on its
// behalf — across pipeline stages, retries, even a server restart —
// carries the same trace ID. The zero value means "not traced".
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// NewTraceID returns a random trace ID (never zero).
func NewTraceID() TraceID {
	var t TraceID
	fillRandom(t[:])
	return t
}

// NewSpanID returns a random span ID (never zero).
func NewSpanID() SpanID {
	var s SpanID
	fillRandom(s[:])
	return s
}

// fillRandom fills b with random bytes and guarantees b is nonzero.
func fillRandom(b []byte) {
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; degrade to a
		// counter so IDs stay unique within the process.
		n := idFallback.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * (uint(i) % 8)))
		}
	}
	for _, c := range b {
		if c != 0 {
			return
		}
	}
	b[len(b)-1] = 1
}

var idFallback counterValue

// counterValue is a tiny atomic counter (avoids importing sync/atomic
// types into the ID path signature).
type counterValue struct{ c Counter }

func (v *counterValue) Add(n int64) int64 { v.c.Add(n); return v.c.Value() }

// IsZero reports whether the trace ID is unset.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the trace ID as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the span ID is unset.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the span ID as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID parses a 32-hex-character trace ID.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 2*len(t) {
		return t, fmt.Errorf("telemetry: trace ID %q: want %d hex chars", s, 2*len(t))
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("telemetry: trace ID %q: %v", s, err)
	}
	if t.IsZero() {
		return t, fmt.Errorf("telemetry: trace ID %q: all-zero IDs are invalid", s)
	}
	return t, nil
}

// ParseSpanID parses a 16-hex-character span ID.
func ParseSpanID(s string) (SpanID, error) {
	var id SpanID
	if len(s) != 2*len(id) {
		return id, fmt.Errorf("telemetry: span ID %q: want %d hex chars", s, 2*len(id))
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, fmt.Errorf("telemetry: span ID %q: %v", s, err)
	}
	return id, nil
}

// DeriveTraceID maps an arbitrary request identifier (an opaque
// X-Request-ID, say) onto a stable trace ID, so retried submissions with
// the same caller ID land in the same trace.
func DeriveTraceID(s string) TraceID {
	h := fnv.New128a()
	h.Write([]byte(s))
	var t TraceID
	h.Sum(t[:0])
	if t.IsZero() {
		t[15] = 1
	}
	return t
}

// ParseTraceparent parses a W3C traceparent header
// ("00-<32 hex trace>-<16 hex span>-<flags>") into the remote trace and
// parent span IDs.
func ParseTraceparent(h string) (TraceID, SpanID, error) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || parts[0] != "00" {
		return TraceID{}, SpanID{}, fmt.Errorf("telemetry: traceparent %q: want 00-<trace>-<span>-<flags>", h)
	}
	t, err := ParseTraceID(parts[1])
	if err != nil {
		return TraceID{}, SpanID{}, err
	}
	s, err := ParseSpanID(parts[2])
	if err != nil {
		return TraceID{}, SpanID{}, err
	}
	return t, s, nil
}

// SpanEvent is one completed span as exported to the JSONL trace file —
// the wire schema checked in as schema/spans.schema.json and validated
// by `metricscheck -spans`.
type SpanEvent struct {
	Trace   string            `json:"trace"`
	Span    string            `json:"span"`
	Parent  string            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartNS int64             `json:"start_unix_ns"`
	EndNS   int64             `json:"end_unix_ns"`
	CPUNS   int64             `json:"cpu_ns,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// WallNS returns the span's wall duration in nanoseconds.
func (e *SpanEvent) WallNS() int64 { return e.EndNS - e.StartNS }

// DefaultSpanCap bounds how many events a SpanExporter buffers; beyond
// it events are dropped (counted by Dropped) so a long-lived server
// cannot grow without bound.
const DefaultSpanCap = 1 << 18

// SpanExporter collects completed span events and writes them as JSONL
// with the same atomic temp-file+rename discipline as the metrics
// manifest: Flush rewrites the whole file, so readers never observe a
// torn line.
type SpanExporter struct {
	path string

	mu      sync.Mutex
	cap     int
	events  []SpanEvent
	dropped int64
}

// NewSpanExporter returns an exporter targeting path ("" buffers only —
// useful in-process; Flush is then a no-op).
func NewSpanExporter(path string) *SpanExporter {
	return &SpanExporter{path: path, cap: DefaultSpanCap}
}

// SetCap bounds the event buffer (n <= 0 restores the default).
func (e *SpanExporter) SetCap(n int) {
	if n <= 0 {
		n = DefaultSpanCap
	}
	e.mu.Lock()
	e.cap = n
	e.mu.Unlock()
}

// Record buffers one completed span event.
func (e *SpanExporter) Record(ev SpanEvent) {
	e.mu.Lock()
	if len(e.events) >= e.cap {
		e.dropped++
	} else {
		e.events = append(e.events, ev)
	}
	e.mu.Unlock()
}

// Events returns a snapshot of the buffered events.
func (e *SpanExporter) Events() []SpanEvent {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]SpanEvent(nil), e.events...)
}

// Dropped returns how many events the cap discarded.
func (e *SpanExporter) Dropped() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dropped
}

// Flush writes every buffered event as one JSON object per line,
// atomically replacing the target file. Safe to call repeatedly: each
// call rewrites the full buffer, so the file is always a complete,
// self-consistent export.
func (e *SpanExporter) Flush() error {
	e.mu.Lock()
	events := append([]SpanEvent(nil), e.events...)
	path := e.path
	e.mu.Unlock()
	if path == "" {
		return nil
	}
	var buf []byte
	for i := range events {
		line, err := json.Marshal(&events[i])
		if err != nil {
			return fmt.Errorf("telemetry: span export: %w", err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	return writeFileAtomic(path, buf)
}

// Close flushes the exporter.
func (e *SpanExporter) Close() error { return e.Flush() }

// traceCtxKey keys the trace state carried by a context.
type traceCtxKey struct{}

// traceCtx is the per-context trace state: where events go, which trace
// this is, the span new children should name as parent, and attributes
// every descendant span inherits (the job ID, for instance).
type traceCtx struct {
	exp    *SpanExporter
	trace  TraceID
	parent SpanID
	attrs  map[string]string
}

// ContextWithTrace returns a context carrying a new trace root: spans
// started from it (StartSpanCtx) get IDs, record into exp, and propagate
// parentage through the returned context chain. exp may be nil to
// propagate IDs and attributes without exporting.
func ContextWithTrace(ctx context.Context, exp *SpanExporter, trace TraceID) context.Context {
	if trace.IsZero() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, &traceCtx{exp: exp, trace: trace})
}

// ContextWithRemoteParent is ContextWithTrace for a trace that began in
// another process (an inbound traceparent header): the first span started
// from the context reports the remote span as its parent.
func ContextWithRemoteParent(ctx context.Context, exp *SpanExporter, trace TraceID, parent SpanID) context.Context {
	if trace.IsZero() {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, &traceCtx{exp: exp, trace: trace, parent: parent})
}

// ContextWithAttrs returns a context whose future spans (and theirs,
// recursively) carry the given key=value attributes — how a server job
// tags every stage span with its job ID. kv is alternating keys and
// values; a context without a trace is returned unchanged.
func ContextWithAttrs(ctx context.Context, kv ...string) context.Context {
	tc, ok := ctx.Value(traceCtxKey{}).(*traceCtx)
	if !ok || len(kv) < 2 {
		return ctx
	}
	attrs := make(map[string]string, len(tc.attrs)+len(kv)/2)
	for k, v := range tc.attrs {
		attrs[k] = v
	}
	for i := 0; i+1 < len(kv); i += 2 {
		attrs[kv[i]] = kv[i+1]
	}
	return context.WithValue(ctx, traceCtxKey{}, &traceCtx{exp: tc.exp, trace: tc.trace, parent: tc.parent, attrs: attrs})
}

// TraceIDFrom extracts the trace ID a context carries, if any.
func TraceIDFrom(ctx context.Context) (TraceID, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(*traceCtx)
	if !ok {
		return TraceID{}, false
	}
	return tc.trace, true
}
