package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Log formats accepted by NewLogger (the -log-format flag values).
const (
	FormatText = "text" // human-oriented "tool: msg k=v" lines
	FormatJSON = "json" // one JSON object per line via log/slog
)

// NewLogger builds a logger writing to w in the given format. tool
// prefixes every line (text) or is attached as a "tool" attribute
// (json). verbose lowers the threshold to debug, which also makes
// completed spans emit events.
func NewLogger(w io.Writer, tool, format string, verbose bool) (*slog.Logger, error) {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	switch format {
	case FormatText, "":
		return slog.New(&humanHandler{w: w, tool: tool, level: level, mu: &sync.Mutex{}}), nil
	case FormatJSON:
		h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
		return slog.New(h).With("tool", tool), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (text|json)", format)
	}
}

// Nop returns a logger that discards everything — the default sink, so
// library users pay nothing until a CLI installs a real one.
func Nop() *slog.Logger { return slog.New(discardHandler{}) }

// UseTextLogger installs a human-format stderr logger as the process
// default — the one-liner for examples and small programs that don't
// carry the full CLI flag set. Respects TRACEDST_LOG_FORMAT=json.
func UseTextLogger(tool string) {
	format := FormatText
	if os.Getenv("TRACEDST_LOG_FORMAT") == FormatJSON {
		format = FormatJSON
	}
	l, err := NewLogger(os.Stderr, tool, format, false)
	if err != nil {
		return
	}
	SetLogger(l)
}

// defLog is the process-wide default logger instrumented packages use.
var defLog atomic.Pointer[slog.Logger]

func init() {
	defLog.Store(Nop())
}

// L returns the process-wide logger (discard until SetLogger).
func L() *slog.Logger { return defLog.Load() }

// SetLogger replaces the process-wide logger and returns the previous one.
func SetLogger(l *slog.Logger) *slog.Logger {
	if l == nil {
		l = Nop()
	}
	return defLog.Swap(l)
}

// discardHandler drops every record without formatting it.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// humanHandler renders records as the terse single-line messages the CLIs
// have always printed to stderr: "tool: msg k=v ...", with a severity
// prefix for non-info levels.
type humanHandler struct {
	mu    *sync.Mutex
	w     io.Writer
	tool  string
	level slog.Level
	attrs []slog.Attr
}

func (h *humanHandler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= h.level
}

func (h *humanHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	nh.attrs = append(append([]slog.Attr{}, h.attrs...), attrs...)
	return &nh
}

// WithGroup flattens groups away; the human format has no nesting.
func (h *humanHandler) WithGroup(string) slog.Handler { return h }

func (h *humanHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	if h.tool != "" {
		b.WriteString(h.tool)
		b.WriteString(": ")
	}
	switch {
	case r.Level >= slog.LevelError:
		b.WriteString("error: ")
	case r.Level >= slog.LevelWarn:
		b.WriteString("warning: ")
	case r.Level < slog.LevelInfo:
		b.WriteString("debug: ")
	}
	b.WriteString(r.Message)
	for _, a := range h.attrs {
		appendAttr(&b, a)
	}
	r.Attrs(func(a slog.Attr) bool {
		appendAttr(&b, a)
		return true
	})
	b.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, b.String())
	return err
}

func appendAttr(b *strings.Builder, a slog.Attr) {
	if a.Equal(slog.Attr{}) {
		return
	}
	b.WriteByte(' ')
	b.WriteString(a.Key)
	b.WriteByte('=')
	v := a.Value.Resolve()
	switch v.Kind() {
	case slog.KindString:
		s := v.String()
		if strings.ContainsAny(s, " \t\"") {
			s = strconv.Quote(s)
		}
		b.WriteString(s)
	default:
		b.WriteString(v.String())
	}
}
