package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// ManifestSchema is the current metrics.json schema version; bump it when
// the shape below changes incompatibly.
const ManifestSchema = 1

// HistSnapshot is a histogram frozen for the manifest.
type HistSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
}

// SpanSnapshot is one span name's aggregate for the manifest.
type SpanSnapshot struct {
	Count  int64 `json:"count"`
	WallNS int64 `json:"wall_ns"`
	CPUNS  int64 `json:"cpu_ns"`
	MinNS  int64 `json:"min_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// Manifest is the machine-readable end-of-run summary written as
// metrics.json: every counter, gauge, histogram and span of a registry.
type Manifest struct {
	Schema     int                     `json:"schema"`
	Tool       string                  `json:"tool"`
	Started    time.Time               `json:"started"`
	WallNS     int64                   `json:"wall_ns"`
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	Spans      map[string]SpanSnapshot `json:"spans"`
}

// Snapshot freezes the registry into a manifest for tool.
func (r *Registry) Snapshot(tool string) *Manifest {
	m := &Manifest{
		Schema:     ManifestSchema,
		Tool:       tool,
		Started:    r.start,
		WallNS:     int64(time.Since(r.start)),
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
		Spans:      map[string]SpanSnapshot{},
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		m.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		m.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		m.Histograms[name] = HistSnapshot{
			Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
			P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
		}
	}
	for name, st := range r.spans {
		m.Spans[name] = SpanSnapshot{
			Count: st.Count, WallNS: st.WallNS, CPUNS: st.CPUNS,
			MinNS: st.MinNS, MaxNS: st.MaxNS,
		}
	}
	return m
}

// WriteTo writes the manifest as indented JSON to w — the shape served
// by tracedstd's /metrics endpoint, identical to what WriteFile persists.
func (m *Manifest) WriteTo(w io.Writer) (int64, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return 0, fmt.Errorf("telemetry: manifest: %w", err)
	}
	data = append(data, '\n')
	n, err := w.Write(data)
	return int64(n), err
}

// WriteFile writes the manifest as indented JSON to path ("-" for
// stdout) via an atomic temp-file+rename, so a crash mid-write never
// leaves a truncated manifest behind.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("telemetry: manifest: %w", err)
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return writeFileAtomic(path, data)
}

// writeFileAtomic is the telemetry-local temp+fsync+rename writer; the
// package stays dependency-free, so it does not borrow internal/trace's.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("telemetry: manifest: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("telemetry: manifest: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("telemetry: manifest: %w", err)
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return fmt.Errorf("telemetry: manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("telemetry: manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("telemetry: manifest: %w", err)
	}
	return nil
}
