// Background runtime sampler: periodically folds Go runtime health —
// goroutine count, heap, GC activity — into registry gauges, so a scrape
// of /metrics (JSON or Prometheus) always carries a fresh picture of the
// process without every handler paying for ReadMemStats.
package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// DefaultRuntimeSampleInterval is the sampling cadence used when
// StartRuntimeSampler is given a non-positive interval.
const DefaultRuntimeSampleInterval = 5 * time.Second

// StartRuntimeSampler samples the Go runtime into reg's gauges
// (runtime.goroutines, runtime.heap_alloc_bytes, runtime.heap_sys_bytes,
// runtime.heap_objects, runtime.gc_count, runtime.gc_pause_total_ns,
// runtime.last_gc_pause_ns) every interval until the returned stop
// function is called. One sample is taken synchronously before returning,
// so the gauges exist immediately. stop is idempotent and waits for the
// sampler goroutine to exit.
func StartRuntimeSampler(reg *Registry, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = DefaultRuntimeSampleInterval
	}
	goroutines := reg.Gauge("runtime.goroutines")
	heapAlloc := reg.Gauge("runtime.heap_alloc_bytes")
	heapSys := reg.Gauge("runtime.heap_sys_bytes")
	heapObjects := reg.Gauge("runtime.heap_objects")
	gcCount := reg.Gauge("runtime.gc_count")
	gcPauseTotal := reg.Gauge("runtime.gc_pause_total_ns")
	lastPause := reg.Gauge("runtime.last_gc_pause_ns")

	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(int64(runtime.NumGoroutine()))
		heapAlloc.Set(int64(ms.HeapAlloc))
		heapSys.Set(int64(ms.HeapSys))
		heapObjects.Set(int64(ms.HeapObjects))
		gcCount.Set(int64(ms.NumGC))
		gcPauseTotal.Set(int64(ms.PauseTotalNs))
		if ms.NumGC > 0 {
			lastPause.Set(int64(ms.PauseNs[(ms.NumGC+255)%256]))
		}
	}
	sample()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				sample()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
		})
	}
}
