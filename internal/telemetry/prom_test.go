package telemetry

import (
	"strings"
	"testing"
	"time"
)

func promRender(t *testing.T, reg *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := reg.WritePrometheus(&b, "testtool"); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestWritePrometheusFamilies(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("trace.decode.records").Add(42)
	reg.Gauge("server.queue_depth").Set(3)
	sp := reg.StartSpan("server.job")
	time.Sleep(time.Millisecond)
	sp.End()

	out := promRender(t, reg)
	for _, want := range []string{
		`tracedst_up{tool="testtool"} 1`,
		"# TYPE tracedst_trace_decode_records_total counter",
		"tracedst_trace_decode_records_total 42",
		"# TYPE tracedst_server_queue_depth gauge",
		"tracedst_server_queue_depth 3",
		`tracedst_span_count_total{span="server.job"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	if !strings.Contains(out, `tracedst_span_wall_seconds_total{span="server.job"} `) {
		t.Errorf("output missing span wall family\n%s", out)
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("job.wall_ns")
	h.Observe(0) // bucket le="0"
	h.Observe(1) // bucket le="1"
	h.Observe(3) // bucket le="3"
	h.Observe(3)

	out := promRender(t, reg)
	for _, want := range []string{
		"# TYPE tracedst_job_wall_ns histogram",
		`tracedst_job_wall_ns_bucket{le="0"} 1`,
		`tracedst_job_wall_ns_bucket{le="1"} 2`,
		`tracedst_job_wall_ns_bucket{le="3"} 4`,
		`tracedst_job_wall_ns_bucket{le="+Inf"} 4`,
		"tracedst_job_wall_ns_sum 7",
		"tracedst_job_wall_ns_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestWritePrometheusDeterministicAndEscaped(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.counter").Inc()
	reg.Counter("a.counter").Inc()
	sp := reg.StartSpan(`odd"name` + "\n")
	sp.End()

	out1 := promRender(t, reg)
	out2 := promRender(t, reg)
	// Uptime moves between renders; compare everything else.
	strip := func(s string) string {
		var kept []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.Contains(line, "uptime_seconds") {
				kept = append(kept, line)
			}
		}
		return strings.Join(kept, "\n")
	}
	if strip(out1) != strip(out2) {
		t.Fatal("output is not deterministic")
	}
	if strings.Index(out1, "tracedst_a_counter_total") > strings.Index(out1, "tracedst_b_counter_total") {
		t.Fatal("families are not sorted")
	}
	if !strings.Contains(out1, `span="odd\"name\n"`) {
		t.Fatalf("label value not escaped:\n%s", out1)
	}
}

func TestHistogramEmptySnapshotZeroes(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("empty")
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram Min/Max = %d/%d, want 0/0", h.Min(), h.Max())
	}
	snap := reg.Snapshot("t").Histograms["empty"]
	if snap.Min != 0 || snap.Max != 0 || snap.Count != 0 {
		t.Fatalf("empty snapshot = %+v", snap)
	}
}

func TestHistogramMinMaxSentinelRace(t *testing.T) {
	// Observe bumps count before settling min/max; a reader landing in
	// that window used to see the init sentinels (MaxInt64/MinInt64).
	// Simulate the torn state white-box: count advanced, min/max untouched.
	reg := NewRegistry()
	h := reg.Histogram("torn")
	h.count.Add(1)
	h.sum.Add(5)
	if h.Min() != 0 {
		t.Fatalf("torn Min = %d, want 0", h.Min())
	}
	if h.Max() != 0 {
		t.Fatalf("torn Max = %d, want 0", h.Max())
	}
	// A real observation afterwards restores exact min/max.
	h.Observe(5)
	if h.Min() != 5 || h.Max() != 5 {
		t.Fatalf("after observe Min/Max = %d/%d, want 5/5", h.Min(), h.Max())
	}
}
