package ctype

import (
	"testing"
	"testing/quick"
)

func TestPrimitiveSizes(t *testing.T) {
	cases := []struct {
		p          *Primitive
		size, algn int64
	}{
		{Char, 1, 1}, {UChar, 1, 1}, {Short, 2, 2}, {UShort, 2, 2},
		{Int, 4, 4}, {UInt, 4, 4}, {Long, 8, 8}, {ULong, 8, 8},
		{LongLong, 8, 8}, {Float, 4, 4}, {Double, 8, 8},
	}
	for _, c := range cases {
		if got := c.p.Size(); got != c.size {
			t.Errorf("sizeof(%s) = %d, want %d", c.p, got, c.size)
		}
		if got := c.p.Align(); got != c.algn {
			t.Errorf("alignof(%s) = %d, want %d", c.p, got, c.algn)
		}
	}
}

func TestPrimitiveByName(t *testing.T) {
	if p, ok := PrimitiveByName("unsigned long"); !ok || p != ULong {
		t.Errorf("PrimitiveByName(unsigned long) = %v, %v", p, ok)
	}
	if _, ok := PrimitiveByName("quux"); ok {
		t.Error("PrimitiveByName(quux) unexpectedly succeeded")
	}
}

// The paper's Listing 3 struct: struct { int mX; double mY; } must be 16
// bytes with mY at offset 8 — this padding is exactly why SoA→AoS changes
// the address map.
func TestStructLayoutIntDouble(t *testing.T) {
	s := NewStruct("MyStruct", []Field{
		{Name: "mX", Type: Int},
		{Name: "mY", Type: Double},
	})
	if s.Size() != 16 {
		t.Errorf("sizeof = %d, want 16", s.Size())
	}
	if s.Align() != 8 {
		t.Errorf("alignof = %d, want 8", s.Align())
	}
	mY, ok := s.FieldByName("mY")
	if !ok || mY.Offset != 8 {
		t.Errorf("offsetof(mY) = %d (ok=%v), want 8", mY.Offset, ok)
	}
	mX, _ := s.FieldByName("mX")
	if mX.Offset != 0 {
		t.Errorf("offsetof(mX) = %d, want 0", mX.Offset)
	}
}

// The paper's Listing 1 struct: struct _typeA { double d1; int myArray[10]; }.
func TestStructLayoutListing1(t *testing.T) {
	s := NewStruct("_typeA", []Field{
		{Name: "d1", Type: Double},
		{Name: "myArray", Type: NewArray(Int, 10)},
	})
	if s.Size() != 48 {
		t.Errorf("sizeof(struct _typeA) = %d, want 48", s.Size())
	}
	arr, _ := s.FieldByName("myArray")
	if arr.Offset != 8 {
		t.Errorf("offsetof(myArray) = %d, want 8", arr.Offset)
	}
}

func TestStructTrailingPadding(t *testing.T) {
	// struct { double d; char c; } → size 16 (7 bytes trailing pad).
	s := NewStruct("", []Field{
		{Name: "d", Type: Double},
		{Name: "c", Type: Char},
	})
	if s.Size() != 16 {
		t.Errorf("sizeof = %d, want 16", s.Size())
	}
}

func TestStructInteriorPadding(t *testing.T) {
	// struct { char c; int i; short s; } → c@0, i@4, s@8, size 12.
	s := NewStruct("", []Field{
		{Name: "c", Type: Char},
		{Name: "i", Type: Int},
		{Name: "s", Type: Short},
	})
	i, _ := s.FieldByName("i")
	sh, _ := s.FieldByName("s")
	if i.Offset != 4 || sh.Offset != 8 || s.Size() != 12 {
		t.Errorf("layout = i@%d s@%d size %d, want i@4 s@8 size 12", i.Offset, sh.Offset, s.Size())
	}
}

func TestEmptyStruct(t *testing.T) {
	s := NewStruct("empty", nil)
	if s.Size() != 0 || s.Align() != 1 {
		t.Errorf("empty struct: size %d align %d, want 0 and 1", s.Size(), s.Align())
	}
}

func TestNestedStructLayout(t *testing.T) {
	// Paper Listing 6: struct { int mFrequentlyUsed; struct { double mY; int mZ; } mRarelyUsed; }
	inner := NewStruct("", []Field{
		{Name: "mY", Type: Double},
		{Name: "mZ", Type: Int},
	})
	if inner.Size() != 16 {
		t.Fatalf("inner size = %d, want 16", inner.Size())
	}
	outer := NewStruct("MyInlineStruct", []Field{
		{Name: "mFrequentlyUsed", Type: Int},
		{Name: "mRarelyUsed", Type: inner},
	})
	ru, _ := outer.FieldByName("mRarelyUsed")
	if ru.Offset != 8 {
		t.Errorf("offsetof(mRarelyUsed) = %d, want 8", ru.Offset)
	}
	if outer.Size() != 24 {
		t.Errorf("sizeof(MyInlineStruct) = %d, want 24", outer.Size())
	}
}

func TestArrayProperties(t *testing.T) {
	a := NewArray(Double, 16)
	if a.Size() != 128 || a.Align() != 8 {
		t.Errorf("double[16]: size %d align %d, want 128 and 8", a.Size(), a.Align())
	}
	aa := NewArray(a, 3)
	if aa.Size() != 384 {
		t.Errorf("double[3][16]: size %d, want 384", aa.Size())
	}
	if s := aa.String(); s != "double[16][3]" && s != "double[3][16]" {
		// String renders elem first then this dimension.
		t.Logf("array spelling: %s", s)
	}
}

func TestArrayNegativeLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewArray(-1) did not panic")
		}
	}()
	NewArray(Int, -1)
}

func TestPointerProperties(t *testing.T) {
	p := NewPointer(NewStruct("RarelyUsed", []Field{{Name: "mY", Type: Double}}))
	if p.Size() != 8 || p.Align() != 8 {
		t.Errorf("pointer: size %d align %d, want 8 and 8", p.Size(), p.Align())
	}
	if p.String() != "struct RarelyUsed*" {
		t.Errorf("pointer spelling = %q", p.String())
	}
}

func TestFieldAt(t *testing.T) {
	s := NewStruct("", []Field{
		{Name: "c", Type: Char},
		{Name: "i", Type: Int},
	})
	if f, ok := s.FieldAt(0); !ok || f.Name != "c" {
		t.Errorf("FieldAt(0) = %v %v, want c", f.Name, ok)
	}
	if _, ok := s.FieldAt(2); ok {
		t.Error("FieldAt(2) should land in padding")
	}
	if f, ok := s.FieldAt(5); !ok || f.Name != "i" {
		t.Errorf("FieldAt(5) = %v %v, want i", f.Name, ok)
	}
}

func TestIsAggregate(t *testing.T) {
	if IsAggregate(Int) {
		t.Error("int is not an aggregate")
	}
	if !IsAggregate(NewArray(Int, 2)) {
		t.Error("int[2] is an aggregate")
	}
	if !IsAggregate(NewStruct("s", nil)) {
		t.Error("struct is an aggregate")
	}
	if IsAggregate(NewPointer(Int)) {
		t.Error("int* is not an aggregate")
	}
}

func TestAlignUpProperty(t *testing.T) {
	f := func(off uint16, alignExp uint8) bool {
		align := int64(1) << (alignExp % 5) // 1,2,4,8,16
		o := int64(off)
		r := AlignUp(o, align)
		return r >= o && r%align == 0 && r-o < align
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: struct size is always a multiple of struct alignment, and fields
// never overlap and appear in declaration order.
func TestStructLayoutInvariants(t *testing.T) {
	prims := []*Primitive{Char, Short, Int, Long, Float, Double}
	f := func(picks []uint8) bool {
		if len(picks) > 12 {
			picks = picks[:12]
		}
		var fields []Field
		for i, p := range picks {
			fields = append(fields, Field{
				Name: "f" + string(rune('a'+i)),
				Type: prims[int(p)%len(prims)],
			})
		}
		s := NewStruct("q", fields)
		if s.Size()%s.Align() != 0 {
			return false
		}
		var prevEnd int64
		for _, fl := range s.Fields {
			if fl.Offset < prevEnd || fl.Offset%fl.Type.Align() != 0 {
				return false
			}
			prevEnd = fl.Offset + fl.Type.Size()
		}
		return prevEnd <= s.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIncompleteStruct(t *testing.T) {
	s := NewIncompleteStruct("node")
	if !s.Incomplete() || s.Size() != 0 {
		t.Fatalf("incomplete = %v size=%d", s.Incomplete(), s.Size())
	}
	// Usable behind a pointer immediately.
	p := NewPointer(s)
	if p.Size() != 8 {
		t.Errorf("pointer to incomplete size = %d", p.Size())
	}
	if err := s.Complete([]Field{
		{Name: "value", Type: Int},
		{Name: "next", Type: p},
	}); err != nil {
		t.Fatal(err)
	}
	if s.Incomplete() || s.Size() != 16 {
		t.Errorf("completed: incomplete=%v size=%d", s.Incomplete(), s.Size())
	}
	next, _ := s.FieldByName("next")
	if next.Offset != 8 {
		t.Errorf("next offset = %d", next.Offset)
	}
	// Redefinition rejected.
	if err := s.Complete(nil); err == nil {
		t.Error("double Complete accepted")
	}
}

func TestCompleteRejectsSelfByValue(t *testing.T) {
	s := NewIncompleteStruct("bad")
	if err := s.Complete([]Field{{Name: "self", Type: s}}); err == nil {
		t.Error("struct containing itself accepted")
	}
	s2 := NewIncompleteStruct("a")
	other := NewIncompleteStruct("b")
	if err := s2.Complete([]Field{{Name: "f", Type: other}}); err == nil {
		t.Error("field of incomplete type accepted")
	}
}
