package ctype

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Env is a registry of named types (struct tags and typedefs) visible to the
// declaration parser. The zero value is usable.
type Env struct {
	structs  map[string]*Struct
	typedefs map[string]Type
}

// NewEnv returns an empty type environment.
func NewEnv() *Env {
	return &Env{structs: map[string]*Struct{}, typedefs: map[string]Type{}}
}

// DefineStruct records a struct tag. Redefinition is an error.
func (e *Env) DefineStruct(s *Struct) error {
	if s.Name == "" {
		return fmt.Errorf("ctype: cannot register anonymous struct")
	}
	if _, dup := e.structs[s.Name]; dup {
		return fmt.Errorf("ctype: struct %s redefined", s.Name)
	}
	e.structs[s.Name] = s
	return nil
}

// Struct looks up a struct tag.
func (e *Env) Struct(name string) (*Struct, bool) {
	s, ok := e.structs[name]
	return s, ok
}

// DefineTypedef records a typedef name. Redefinition is an error.
func (e *Env) DefineTypedef(name string, t Type) error {
	if _, dup := e.typedefs[name]; dup {
		return fmt.Errorf("ctype: typedef %s redefined", name)
	}
	e.typedefs[name] = t
	return nil
}

// Typedef looks up a typedef name.
func (e *Env) Typedef(name string) (Type, bool) {
	t, ok := e.typedefs[name]
	return t, ok
}

// Decl is a parsed variable declaration.
type Decl struct {
	Name string
	Type Type
}

// ParseDecls parses a sequence of C declarations — variable declarations and
// struct definitions — and returns the variable declarations in order.
// Struct definitions are registered in env. Supported forms:
//
//	int x; double d; int a[10]; char m[4][8];
//	struct tag { int x; double y[4]; };          (definition only)
//	struct tag v; struct tag av[10];
//	struct tag { ... } v[10];                    (define and declare)
//	struct tag *p; int *q;
//
// Comments (// and /* */) are ignored.
func ParseDecls(env *Env, src string) ([]Decl, error) {
	p := &declParser{env: env, toks: lexDecls(src)}
	var decls []Decl
	for !p.eof() {
		ds, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		decls = append(decls, ds...)
	}
	return decls, nil
}

// ParseType parses a single type expression such as "int", "double[16]",
// "struct tag" or "int*". Arrays may be written with a trailing [n].
func ParseType(env *Env, src string) (Type, error) {
	p := &declParser{env: env, toks: lexDecls(src)}
	t, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tkPunct && p.peek().text == "*" {
		p.next()
		t = NewPointer(t)
	}
	var dims []int64
	for p.peek().kind == tkPunct && p.peek().text == "[" {
		n, err := p.parseArraySuffix()
		if err != nil {
			return nil, err
		}
		dims = append(dims, n)
	}
	for i := len(dims) - 1; i >= 0; i-- {
		t = NewArray(t, dims[i])
	}
	if !p.eof() {
		return nil, fmt.Errorf("ctype: trailing input %q in type %q", p.peek().text, src)
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// lexer

type tokKind int

const (
	tkEOF tokKind = iota
	tkIdent
	tkNumber
	tkPunct
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lexDecls(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			j := strings.Index(src[i+2:], "*/")
			if j < 0 {
				i = len(src)
			} else {
				i += j + 4
			}
		case unicode.IsSpace(rune(c)):
			i++
		case isIdentByte(c):
			j := i
			for j < len(src) && (isIdentByte(src[j]) || isDigit(src[j])) {
				j++
			}
			toks = append(toks, token{tkIdent, src[i:j], i})
			i = j
		case isDigit(c):
			j := i
			for j < len(src) && isDigit(src[j]) {
				j++
			}
			toks = append(toks, token{tkNumber, src[i:j], i})
			i = j
		default:
			toks = append(toks, token{tkPunct, string(c), i})
			i++
		}
	}
	toks = append(toks, token{tkEOF, "", len(src)})
	return toks
}

func isIdentByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// ---------------------------------------------------------------------------
// parser

type declParser struct {
	env  *Env
	toks []token
	pos  int
}

func (p *declParser) peek() token { return p.toks[p.pos] }

func (p *declParser) next() token {
	t := p.toks[p.pos]
	if t.kind != tkEOF {
		p.pos++
	}
	return t
}

func (p *declParser) eof() bool { return p.peek().kind == tkEOF }

func (p *declParser) expect(text string) error {
	t := p.next()
	if t.text != text {
		return fmt.Errorf("ctype: expected %q, got %q at offset %d", text, t.text, t.pos)
	}
	return nil
}

// parseDecl parses one declaration statement terminated by ';'. A struct
// definition without declarators produces no Decls.
func (p *declParser) parseDecl() ([]Decl, error) {
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	// "struct tag { ... };" with no declarator.
	if p.peek().text == ";" {
		p.next()
		return nil, nil
	}
	var decls []Decl
	for {
		d, err := p.parseDeclarator(base)
		if err != nil {
			return nil, err
		}
		decls = append(decls, d)
		switch p.peek().text {
		case ",":
			p.next()
			continue
		case ";":
			p.next()
			return decls, nil
		default:
			return nil, fmt.Errorf("ctype: expected ',' or ';' after declarator, got %q at offset %d",
				p.peek().text, p.peek().pos)
		}
	}
}

// parseBaseType parses the type specifier part of a declaration.
func (p *declParser) parseBaseType() (Type, error) {
	t := p.peek()
	if t.kind != tkIdent {
		return nil, fmt.Errorf("ctype: expected type, got %q at offset %d", t.text, t.pos)
	}
	if t.text == "struct" {
		p.next()
		return p.parseStructType()
	}
	// Multi-word primitives: unsigned int, long long, unsigned long, ...
	words := []string{p.next().text}
	for {
		nt := p.peek()
		if nt.kind == tkIdent {
			if _, ok := PrimitiveByName(strings.Join(append(append([]string{}, words...), nt.text), " ")); ok {
				words = append(words, p.next().text)
				continue
			}
		}
		break
	}
	name := strings.Join(words, " ")
	if prim, ok := PrimitiveByName(name); ok {
		return prim, nil
	}
	if len(words) == 1 {
		if td, ok := p.env.Typedef(words[0]); ok {
			return td, nil
		}
		if st, ok := p.env.Struct(words[0]); ok {
			// Tolerate the common "typedef struct {...} Name;" idiom where
			// later declarations say just "Name v;".
			return st, nil
		}
	}
	return nil, fmt.Errorf("ctype: unknown type %q at offset %d", name, t.pos)
}

// parseStructType parses what follows the "struct" keyword: an optional tag,
// an optional body, for reference or definition.
func (p *declParser) parseStructType() (Type, error) {
	var tag string
	if p.peek().kind == tkIdent {
		tag = p.next().text
	}
	if p.peek().text != "{" {
		if tag == "" {
			return nil, fmt.Errorf("ctype: struct with neither tag nor body at offset %d", p.peek().pos)
		}
		s, ok := p.env.Struct(tag)
		if !ok {
			return nil, fmt.Errorf("ctype: reference to undefined struct %q", tag)
		}
		return s, nil
	}
	p.next() // consume '{'
	var fields []Field
	for p.peek().text != "}" {
		if p.eof() {
			return nil, fmt.Errorf("ctype: unterminated struct body for %q", tag)
		}
		ds, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		for _, d := range ds {
			fields = append(fields, Field{Name: d.Name, Type: d.Type})
		}
	}
	p.next() // consume '}'
	s := NewStruct(tag, fields)
	if tag != "" {
		if err := p.env.DefineStruct(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// parseDeclarator parses pointer stars, the name, and array suffixes.
func (p *declParser) parseDeclarator(base Type) (Decl, error) {
	t := base
	for p.peek().text == "*" {
		p.next()
		t = NewPointer(t)
	}
	nt := p.next()
	if nt.kind != tkIdent {
		return Decl{}, fmt.Errorf("ctype: expected declarator name, got %q at offset %d", nt.text, nt.pos)
	}
	var dims []int64
	for p.peek().text == "[" {
		n, err := p.parseArraySuffix()
		if err != nil {
			return Decl{}, err
		}
		dims = append(dims, n)
	}
	for i := len(dims) - 1; i >= 0; i-- {
		t = NewArray(t, dims[i])
	}
	return Decl{Name: nt.text, Type: t}, nil
}

func (p *declParser) parseArraySuffix() (int64, error) {
	if err := p.expect("["); err != nil {
		return 0, err
	}
	nt := p.next()
	if nt.kind != tkNumber {
		return 0, fmt.Errorf("ctype: expected array length, got %q at offset %d", nt.text, nt.pos)
	}
	n, err := strconv.ParseInt(nt.text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("ctype: bad array length %q: %v", nt.text, err)
	}
	if err := p.expect("]"); err != nil {
		return 0, err
	}
	return n, nil
}
