package ctype

import (
	"testing"
	"testing/quick"
)

func listing1Env() (*Struct, *Array) {
	typeA := NewStruct("_typeA", []Field{
		{Name: "d1", Type: Double},
		{Name: "myArray", Type: NewArray(Int, 10)},
	})
	return typeA, NewArray(typeA, 10)
}

func TestParseAccessSimple(t *testing.T) {
	a, err := ParseAccess("glScalar")
	if err != nil {
		t.Fatal(err)
	}
	if a.Root != "glScalar" || len(a.Path) != 0 {
		t.Errorf("got %+v", a)
	}
}

func TestParseAccessNested(t *testing.T) {
	a, err := ParseAccess("glStructArray[0].myArray[3]")
	if err != nil {
		t.Fatal(err)
	}
	want := AccessExpr{Root: "glStructArray", Path: Path{
		{Index: 0}, {Field: "myArray"}, {Index: 3},
	}}
	if a.Root != want.Root || !a.Path.Equal(want.Path) {
		t.Errorf("got %v, want %v", a, want)
	}
	if a.String() != "glStructArray[0].myArray[3]" {
		t.Errorf("round trip = %q", a.String())
	}
}

func TestParseAccessDotFirst(t *testing.T) {
	a, err := ParseAccess("lSoA.mX[5]")
	if err != nil {
		t.Fatal(err)
	}
	if a.Root != "lSoA" || !a.Path.Equal(Path{{Field: "mX"}, {Index: 5}}) {
		t.Errorf("got %v", a)
	}
}

func TestParseAccessErrors(t *testing.T) {
	for _, bad := range []string{
		"", "[0]", "x[", "x[abc]", "x.", "x..y", "x]y",
	} {
		if _, err := ParseAccess(bad); err == nil {
			t.Errorf("ParseAccess(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestResolveNested(t *testing.T) {
	_, arr := listing1Env()
	// glStructArray[1].myArray[2]: 1*48 + 8 + 2*4 = 64
	off, elem, err := Resolve(arr, Path{{Index: 1}, {Field: "myArray"}, {Index: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if off != 64 {
		t.Errorf("offset = %d, want 64", off)
	}
	if elem != Int {
		t.Errorf("elem = %v, want int", elem)
	}
}

func TestResolveErrors(t *testing.T) {
	typeA, arr := listing1Env()
	cases := []struct {
		t    Type
		path Path
	}{
		{arr, Path{{Index: 10}}},                 // out of bounds
		{arr, Path{{Field: "d1"}}},               // field on array
		{typeA, Path{{Index: 0}}},                // subscript on struct
		{typeA, Path{{Field: "nope"}}},           // missing field
		{Int, Path{{Index: 0}}},                  // path past scalar
		{NewPointer(Int), Path{{Field: "x"}}},    // through pointer
		{typeA, Path{{Field: "d1"}, {Index: 0}}}, // subscript on double
	}
	for i, c := range cases {
		if _, _, err := Resolve(c.t, c.path); err == nil {
			t.Errorf("case %d: Resolve(%v, %v) unexpectedly succeeded", i, c.t, c.path)
		}
	}
}

func TestPathForOffset(t *testing.T) {
	_, arr := listing1Env()
	path, elem, err := PathForOffset(arr, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := Path{{Index: 1}, {Field: "myArray"}, {Index: 2}}
	if !path.Equal(want) {
		t.Errorf("path = %v, want %v", path, want)
	}
	if elem != Int {
		t.Errorf("elem = %v", elem)
	}
}

func TestPathForOffsetPadding(t *testing.T) {
	s := NewStruct("p", []Field{
		{Name: "c", Type: Char},
		{Name: "i", Type: Int},
	})
	// Offset 2 is in the padding hole between c and i: path stops at struct.
	path, elem, err := PathForOffset(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 0 || elem != Type(s) {
		t.Errorf("padding lookup: path=%v elem=%v", path, elem)
	}
}

func TestPathForOffsetOutOfRange(t *testing.T) {
	if _, _, err := PathForOffset(Int, 4); err == nil {
		t.Error("offset 4 in int should fail")
	}
	if _, _, err := PathForOffset(Int, -1); err == nil {
		t.Error("negative offset should fail")
	}
}

// Property: Resolve and PathForOffset are inverses for scalar-leaf offsets.
func TestResolvePathRoundTrip(t *testing.T) {
	typeA, _ := listing1Env()
	arr := NewArray(typeA, 7)
	f := func(rawOff uint16) bool {
		off := int64(rawOff) % arr.Size()
		path, elem, err := PathForOffset(arr, off)
		if err != nil {
			return false
		}
		if _, isAgg := elem.(*Struct); isAgg {
			return true // padding hole; no scalar to round-trip
		}
		got, gotElem, err := Resolve(arr, path)
		if err != nil {
			return false
		}
		// Resolve returns the start of the scalar; off may be interior.
		return gotElem == elem && got <= off && off < got+elem.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPathClone(t *testing.T) {
	p := Path{{Index: 1}, {Field: "x"}}
	q := p.Clone()
	q[0].Index = 9
	if p[0].Index != 1 {
		t.Error("Clone did not copy")
	}
}

func TestPathString(t *testing.T) {
	p := Path{{Index: 2}, {Field: "mY"}}
	if p.String() != "[2].mY" {
		t.Errorf("got %q", p.String())
	}
	if (Path{}).String() != "" {
		t.Error("empty path should render empty")
	}
}
