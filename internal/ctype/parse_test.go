package ctype

import "testing"

func TestParseDeclsScalarsAndArrays(t *testing.T) {
	env := NewEnv()
	decls, err := ParseDecls(env, `
		int glScalar;
		int glArray[10];
		double d;
		char m[4][8];
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(decls) != 4 {
		t.Fatalf("got %d decls", len(decls))
	}
	if decls[0].Name != "glScalar" || decls[0].Type != Int {
		t.Errorf("decl 0 = %+v", decls[0])
	}
	if a, ok := decls[1].Type.(*Array); !ok || a.Len != 10 || a.Elem != Int {
		t.Errorf("decl 1 = %+v", decls[1])
	}
	// char m[4][8] is an array of 4 arrays of 8 chars.
	outer, ok := decls[3].Type.(*Array)
	if !ok || outer.Len != 4 {
		t.Fatalf("decl 3 = %+v", decls[3])
	}
	inner, ok := outer.Elem.(*Array)
	if !ok || inner.Len != 8 || inner.Elem != Char {
		t.Errorf("decl 3 inner = %+v", outer.Elem)
	}
}

func TestParseDeclsStructDefinitionAndUse(t *testing.T) {
	env := NewEnv()
	decls, err := ParseDecls(env, `
		struct _typeA {
			double d1;
			int myArray[10];
		};
		struct _typeA glStruct;
		struct _typeA glStructArray[10];
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(decls) != 2 {
		t.Fatalf("got %d decls: %+v", len(decls), decls)
	}
	st, ok := decls[0].Type.(*Struct)
	if !ok || st.Size() != 48 {
		t.Errorf("glStruct type = %v", decls[0].Type)
	}
	arr, ok := decls[1].Type.(*Array)
	if !ok || arr.Len != 10 || arr.Size() != 480 {
		t.Errorf("glStructArray type = %v", decls[1].Type)
	}
	if _, ok := env.Struct("_typeA"); !ok {
		t.Error("struct _typeA not registered")
	}
}

func TestParseDeclsInlineDefineAndDeclare(t *testing.T) {
	env := NewEnv()
	decls, err := ParseDecls(env, `struct pt { int x; int y; } origin, grid[4];`)
	if err != nil {
		t.Fatal(err)
	}
	if len(decls) != 2 || decls[0].Name != "origin" || decls[1].Name != "grid" {
		t.Fatalf("decls = %+v", decls)
	}
	if decls[1].Type.Size() != 32 {
		t.Errorf("grid size = %d", decls[1].Type.Size())
	}
}

func TestParseDeclsPointers(t *testing.T) {
	env := NewEnv()
	decls, err := ParseDecls(env, `
		struct RarelyUsed { double mY; int mZ; };
		struct RarelyUsed *p;
		int *q, r;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(decls) != 3 {
		t.Fatalf("decls = %+v", decls)
	}
	if _, ok := decls[0].Type.(*Pointer); !ok {
		t.Errorf("p type = %v", decls[0].Type)
	}
	if _, ok := decls[1].Type.(*Pointer); !ok {
		t.Errorf("q type = %v", decls[1].Type)
	}
	if decls[2].Type != Int {
		t.Errorf("r type = %v", decls[2].Type)
	}
}

func TestParseDeclsNestedStruct(t *testing.T) {
	env := NewEnv()
	decls, err := ParseDecls(env, `
		struct Inline {
			int mFrequentlyUsed;
			struct { double mY; int mZ; } mRarelyUsed;
		};
		struct Inline lS1[16];
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(decls) != 1 {
		t.Fatalf("decls = %+v", decls)
	}
	if decls[0].Type.Size() != 16*24 {
		t.Errorf("lS1 size = %d, want 384", decls[0].Type.Size())
	}
}

func TestParseDeclsComments(t *testing.T) {
	env := NewEnv()
	decls, err := ParseDecls(env, `
		// a line comment
		int a; /* block
		          comment */ int b;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(decls) != 2 {
		t.Errorf("decls = %+v", decls)
	}
}

func TestParseDeclsMultiWordPrimitives(t *testing.T) {
	env := NewEnv()
	decls, err := ParseDecls(env, `unsigned long ul; long long ll; unsigned u;`)
	if err != nil {
		t.Fatal(err)
	}
	if decls[0].Type != ULong || decls[1].Type != LongLong || decls[2].Type != UInt {
		t.Errorf("decls = %+v", decls)
	}
}

func TestParseDeclsTypedefLookup(t *testing.T) {
	env := NewEnv()
	st := NewStruct("MyStruct", []Field{{Name: "mX", Type: Int}})
	if err := env.DefineTypedef("MyStruct", st); err != nil {
		t.Fatal(err)
	}
	decls, err := ParseDecls(env, `MyStruct lAoS[16];`)
	if err != nil {
		t.Fatal(err)
	}
	if decls[0].Type.Size() != 64 {
		t.Errorf("lAoS size = %d", decls[0].Type.Size())
	}
}

func TestParseDeclsErrors(t *testing.T) {
	for _, bad := range []string{
		`bogus x;`,
		`int;` + ` int`,       // missing declarator then truncation
		`struct { int x } v;`, // missing ';' after field
		`int a[];`,
		`int a[x];`,
		`struct undefinedref v;`,
		`struct T { int x; }; struct T { int y; };`, // redefinition
		`int a b;`,
	} {
		if _, err := ParseDecls(NewEnv(), bad); err == nil {
			t.Errorf("ParseDecls(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestParseType(t *testing.T) {
	env := NewEnv()
	if _, err := ParseDecls(env, `struct S { int a; };`); err != nil {
		t.Fatal(err)
	}
	ty, err := ParseType(env, "struct S[4]")
	if err != nil {
		t.Fatal(err)
	}
	if ty.Size() != 16 {
		t.Errorf("struct S[4] size = %d", ty.Size())
	}
	ty, err = ParseType(env, "int*")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ty.(*Pointer); !ok {
		t.Errorf("int* parsed as %v", ty)
	}
	if _, err := ParseType(env, "int extra junk"); err == nil {
		t.Error("trailing junk accepted")
	}
}

func TestEnvDuplicateTypedef(t *testing.T) {
	env := NewEnv()
	if err := env.DefineTypedef("T", Int); err != nil {
		t.Fatal(err)
	}
	if err := env.DefineTypedef("T", Double); err == nil {
		t.Error("duplicate typedef accepted")
	}
}

func TestEnvAnonymousStructRejected(t *testing.T) {
	if err := NewEnv().DefineStruct(NewStruct("", nil)); err == nil {
		t.Error("anonymous struct registration accepted")
	}
}
