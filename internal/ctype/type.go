// Package ctype models the C type system used throughout the tracer, the
// rule language and the transformation engine: primitive types, arrays,
// structs and pointers, together with the LP64 layout rules (sizes,
// alignments, field offsets, padding) that Gleipnir observes through the
// compiler's debug information.
//
// Every type is immutable after construction. Struct field offsets are
// computed eagerly by NewStruct following the System V AMD64 ABI rules the
// paper's examples rely on (e.g. struct{int;double} has size 16, the double
// at offset 8).
package ctype

import (
	"fmt"
	"strings"
)

// Type is the interface implemented by all C types.
type Type interface {
	// Size returns sizeof(T) in bytes, including trailing padding.
	Size() int64
	// Align returns the alignment requirement of T in bytes.
	Align() int64
	// String returns a C-like spelling of the type.
	String() string
}

// Primitive is a scalar C type (integer or floating point).
type Primitive struct {
	Name   string // C spelling, e.g. "int", "unsigned long"
	Bytes  int64  // sizeof
	Signed bool   // signed integer (meaningless when Float is true)
	Float  bool   // floating-point type
}

// Size implements Type.
func (p *Primitive) Size() int64 { return p.Bytes }

// Align implements Type. Scalars are self-aligned on LP64.
func (p *Primitive) Align() int64 { return p.Bytes }

// String implements Type.
func (p *Primitive) String() string { return p.Name }

// Builtin primitive types (LP64 data model, as on the paper's x86-64 host).
var (
	Char     = &Primitive{Name: "char", Bytes: 1, Signed: true}
	UChar    = &Primitive{Name: "unsigned char", Bytes: 1}
	Short    = &Primitive{Name: "short", Bytes: 2, Signed: true}
	UShort   = &Primitive{Name: "unsigned short", Bytes: 2}
	Int      = &Primitive{Name: "int", Bytes: 4, Signed: true}
	UInt     = &Primitive{Name: "unsigned int", Bytes: 4}
	Long     = &Primitive{Name: "long", Bytes: 8, Signed: true}
	ULong    = &Primitive{Name: "unsigned long", Bytes: 8}
	LongLong = &Primitive{Name: "long long", Bytes: 8, Signed: true}
	Float    = &Primitive{Name: "float", Bytes: 4, Float: true}
	Double   = &Primitive{Name: "double", Bytes: 8, Float: true}
)

// builtins maps C spellings to the builtin primitives, for the parsers.
var builtins = map[string]*Primitive{
	"char": Char, "unsigned char": UChar,
	"short": Short, "unsigned short": UShort,
	"int": Int, "unsigned int": UInt, "unsigned": UInt,
	"long": Long, "unsigned long": ULong,
	"long long": LongLong,
	"float":     Float, "double": Double,
}

// PrimitiveByName returns the builtin primitive with the given C spelling.
func PrimitiveByName(name string) (*Primitive, bool) {
	p, ok := builtins[name]
	return p, ok
}

// Array is a fixed-length C array type.
type Array struct {
	Elem Type
	Len  int64
}

// NewArray returns the array type elem[n]. It panics if n is negative.
func NewArray(elem Type, n int64) *Array {
	if n < 0 {
		panic(fmt.Sprintf("ctype: negative array length %d", n))
	}
	return &Array{Elem: elem, Len: n}
}

// Size implements Type.
func (a *Array) Size() int64 { return a.Elem.Size() * a.Len }

// Align implements Type: an array is aligned like its element.
func (a *Array) Align() int64 { return a.Elem.Align() }

// String implements Type.
func (a *Array) String() string { return fmt.Sprintf("%s[%d]", a.Elem, a.Len) }

// Pointer is a C pointer type. All pointers are 8 bytes on LP64.
type Pointer struct {
	Elem Type
}

// NewPointer returns the pointer type *elem.
func NewPointer(elem Type) *Pointer { return &Pointer{Elem: elem} }

// PointerSize is sizeof(void*) on the modelled LP64 host.
const PointerSize = 8

// Size implements Type.
func (p *Pointer) Size() int64 { return PointerSize }

// Align implements Type.
func (p *Pointer) Align() int64 { return PointerSize }

// String implements Type.
func (p *Pointer) String() string { return p.Elem.String() + "*" }

// Field is a named member of a Struct. Offset is filled in by NewStruct.
type Field struct {
	Name   string
	Type   Type
	Offset int64
}

// Struct is a C struct type with ABI-computed field offsets.
type Struct struct {
	// Name is the struct tag (may be empty for anonymous structs).
	Name   string
	Fields []Field

	size       int64
	align      int64
	incomplete bool
}

// NewIncompleteStruct returns a forward-declared struct. It may be used
// behind pointers immediately; call Complete to give it fields before using
// it by value.
func NewIncompleteStruct(name string) *Struct {
	return &Struct{Name: name, align: 1, incomplete: true}
}

// Incomplete reports whether the struct still lacks its definition.
func (s *Struct) Incomplete() bool { return s.incomplete }

// Complete lays out fields into a previously incomplete struct (same rules
// as NewStruct). A field may not have the struct itself as its direct type.
func (s *Struct) Complete(fields []Field) error {
	if !s.incomplete {
		return fmt.Errorf("ctype: struct %s redefined", s.Name)
	}
	for _, f := range fields {
		if f.Type == Type(s) {
			return fmt.Errorf("ctype: struct %s contains itself", s.Name)
		}
		if st, ok := f.Type.(*Struct); ok && st.Incomplete() {
			return fmt.Errorf("ctype: field %s has incomplete type %s", f.Name, st)
		}
	}
	laid := NewStruct(s.Name, fields)
	s.Fields = laid.Fields
	s.size = laid.size
	s.align = laid.align
	s.incomplete = false
	return nil
}

// NewStruct lays out the given fields per the System V AMD64 ABI: each field
// is placed at the next offset aligned to its own alignment; the struct's
// alignment is the maximum field alignment; the size is rounded up to the
// struct alignment. Field offsets in the input are ignored and recomputed.
func NewStruct(name string, fields []Field) *Struct {
	s := &Struct{Name: name, align: 1}
	var off int64
	for _, f := range fields {
		a := f.Type.Align()
		if a > s.align {
			s.align = a
		}
		off = AlignUp(off, a)
		f.Offset = off
		s.Fields = append(s.Fields, f)
		off += f.Type.Size()
	}
	s.size = AlignUp(off, s.align)
	return s
}

// Size implements Type.
func (s *Struct) Size() int64 { return s.size }

// Align implements Type.
func (s *Struct) Align() int64 { return s.align }

// String implements Type.
func (s *Struct) String() string {
	if s.Name != "" {
		return "struct " + s.Name
	}
	var b strings.Builder
	b.WriteString("struct {")
	for i, f := range s.Fields {
		if i > 0 {
			b.WriteString("; ")
		} else {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s %s", f.Type, f.Name)
	}
	b.WriteString(" }")
	return b.String()
}

// FieldByName returns the field with the given name.
func (s *Struct) FieldByName(name string) (Field, bool) {
	for _, f := range s.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return Field{}, false
}

// FieldAt returns the field covering byte offset off (0 <= off < Size),
// skipping padding holes (for which ok is false).
func (s *Struct) FieldAt(off int64) (Field, bool) {
	for _, f := range s.Fields {
		if off >= f.Offset && off < f.Offset+f.Type.Size() {
			return f, true
		}
	}
	return Field{}, false
}

// AlignUp rounds off up to the next multiple of align (align must be >= 1).
func AlignUp(off, align int64) int64 {
	if align <= 1 {
		return off
	}
	rem := off % align
	if rem == 0 {
		return off
	}
	return off + align - rem
}

// IsAggregate reports whether t is a struct or array — the distinction the
// Gleipnir trace format encodes as the V (variable) vs S (structure) scope
// suffix.
func IsAggregate(t Type) bool {
	switch t.(type) {
	case *Struct, *Array:
		return true
	}
	return false
}

// Underlying strips typedef-like wrappers. The current model has no typedef
// node (typedefs are resolved at parse time), so it returns t unchanged; it
// exists so call sites read correctly and survive a future typedef node.
func Underlying(t Type) Type { return t }
