package ctype

import (
	"fmt"
	"strconv"
	"strings"
)

// PathElem is one step of an access path: either a struct field selection
// (.Name) or an array index ([Index]).
type PathElem struct {
	// Field is the selected field name; empty for an index element.
	Field string
	// Index is the array subscript; valid only when Field is empty.
	Index int64
}

// IsIndex reports whether the element is an array subscript.
func (e PathElem) IsIndex() bool { return e.Field == "" }

// Path is a sequence of member selections and subscripts applied to a root
// variable, e.g. glStructArray[0].myArray[1] is the root "glStructArray"
// plus the path [Index 0, Field myArray, Index 1].
type Path []PathElem

// String renders the path in C syntax (without the root variable name).
func (p Path) String() string { return string(p.AppendText(nil)) }

// AppendText appends the C-syntax rendering of the path to dst and returns
// the extended slice. It never allocates beyond growing dst, so codec hot
// paths can render paths into reused scratch buffers.
func (p Path) AppendText(dst []byte) []byte {
	for _, e := range p {
		if e.IsIndex() {
			dst = append(dst, '[')
			dst = strconv.AppendInt(dst, e.Index, 10)
			dst = append(dst, ']')
		} else {
			dst = append(dst, '.')
			dst = append(dst, e.Field...)
		}
	}
	return dst
}

// Equal reports whether two paths are identical.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the path.
func (p Path) Clone() Path {
	q := make(Path, len(p))
	copy(q, p)
	return q
}

// AccessExpr is a parsed variable reference from a trace line's metadata
// column: a root variable name plus an access path, e.g.
// "lSoA.mX[3]" or "glStructArray[1].myArray[1]".
type AccessExpr struct {
	Root string
	Path Path
}

// String renders the access in C syntax.
func (a AccessExpr) String() string { return a.Root + a.Path.String() }

// AppendText appends the C-syntax rendering of the access to dst and
// returns the extended slice.
func (a AccessExpr) AppendText(dst []byte) []byte {
	return a.Path.AppendText(append(dst, a.Root...))
}

// ParseAccess parses a C-style access expression such as
// "glStructArray[0].myArray[0]". The root identifier may contain any
// non-separator characters (Gleipnir emits names like _zzq_args), and
// subscripts must be decimal integers.
func ParseAccess(s string) (AccessExpr, error) {
	var a AccessExpr
	if s == "" {
		return a, fmt.Errorf("ctype: empty access expression")
	}
	i := 0
	for i < len(s) && s[i] != '.' && s[i] != '[' && s[i] != ']' {
		i++
	}
	a.Root = s[:i]
	if a.Root == "" {
		return a, fmt.Errorf("ctype: access %q has no root variable", s)
	}
	for i < len(s) {
		switch s[i] {
		case '.':
			i++
			j := i
			for j < len(s) && s[j] != '.' && s[j] != '[' {
				j++
			}
			if j == i {
				return a, fmt.Errorf("ctype: empty field name in %q", s)
			}
			a.Path = append(a.Path, PathElem{Field: s[i:j]})
			i = j
		case '[':
			j := strings.IndexByte(s[i:], ']')
			if j < 0 {
				return a, fmt.Errorf("ctype: unterminated subscript in %q", s)
			}
			idx, err := strconv.ParseInt(s[i+1:i+j], 10, 64)
			if err != nil {
				return a, fmt.Errorf("ctype: bad subscript in %q: %v", s, err)
			}
			a.Path = append(a.Path, PathElem{Index: idx})
			i += j + 1
		default:
			return a, fmt.Errorf("ctype: unexpected %q in access %q", s[i], s)
		}
	}
	return a, nil
}

// Resolve walks path starting at type t and returns the byte offset of the
// referenced sub-object from the start of t, together with its type.
// Array subscripts are bounds-checked against the declared length.
func Resolve(t Type, path Path) (off int64, elem Type, err error) {
	elem = t
	for i, e := range path {
		switch tt := elem.(type) {
		case *Array:
			if !e.IsIndex() {
				return 0, nil, fmt.Errorf("ctype: field .%s applied to array %s", e.Field, tt)
			}
			if e.Index < 0 || e.Index >= tt.Len {
				return 0, nil, fmt.Errorf("ctype: index %d out of range for %s", e.Index, tt)
			}
			off += e.Index * tt.Elem.Size()
			elem = tt.Elem
		case *Struct:
			if e.IsIndex() {
				return 0, nil, fmt.Errorf("ctype: subscript [%d] applied to %s", e.Index, tt)
			}
			f, ok := tt.FieldByName(e.Field)
			if !ok {
				return 0, nil, fmt.Errorf("ctype: %s has no field %q", tt, e.Field)
			}
			off += f.Offset
			elem = f.Type
		case *Pointer:
			return 0, nil, fmt.Errorf("ctype: cannot traverse pointer at path step %d without memory", i)
		default:
			return 0, nil, fmt.Errorf("ctype: path continues past scalar %s at step %d", elem, i)
		}
	}
	return off, elem, nil
}

// PathForOffset computes the access path of the sub-object of t that covers
// byte offset off, descending into arrays and structs until it reaches a
// scalar (or a sub-object boundary it cannot descend past, such as a padding
// hole, in which case it returns the path so far). This is the reverse-map
// Valgrind's debug parser performs when it annotates a raw address with
// "glStructArray[0].myArray[0]".
func PathForOffset(t Type, off int64) (Path, Type, error) {
	if off < 0 || off >= t.Size() && !(off == 0 && t.Size() == 0) {
		return nil, nil, fmt.Errorf("ctype: offset %d out of range for %s (size %d)", off, t, t.Size())
	}
	var path Path
	elem := t
	for {
		switch tt := elem.(type) {
		case *Array:
			if tt.Elem.Size() == 0 {
				return path, elem, nil
			}
			i := off / tt.Elem.Size()
			path = append(path, PathElem{Index: i})
			off -= i * tt.Elem.Size()
			elem = tt.Elem
		case *Struct:
			f, ok := tt.FieldAt(off)
			if !ok {
				// Padding hole: stop at the struct itself.
				return path, elem, nil
			}
			path = append(path, PathElem{Field: f.Name})
			off -= f.Offset
			elem = f.Type
		default:
			return path, elem, nil
		}
	}
}
