package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"tracedst/internal/minic"
	"tracedst/internal/trace"
	"tracedst/internal/workloads"
)

func TestCheckpointPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ck, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Put("sweep/t1/4096/orig", sweepEntry{Misses: 42}); err != nil {
		t.Fatal(err)
	}
	var got sweepEntry
	if ok, err := ck.Get("sweep/t1/4096/orig", &got); err != nil || !ok || got.Misses != 42 {
		t.Fatalf("Get = %v %v %v", ok, got, err)
	}
	if ok, _ := ck.Get("sweep/t1/4096/xform", &got); ok {
		t.Error("Get of absent key reported present")
	}

	// A fresh open of the same directory must see the persisted entry.
	ck2, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Len() != 1 {
		t.Fatalf("reloaded checkpoint has %d entries, want 1", ck2.Len())
	}
	got = sweepEntry{}
	if ok, err := ck2.Get("sweep/t1/4096/orig", &got); err != nil || !ok || got.Misses != 42 {
		t.Fatalf("reloaded Get = %v %v %v", ok, got, err)
	}
}

func TestCheckpointIgnoresTornFiles(t *testing.T) {
	dir := t.TempDir()
	// A half-written JSON file, as a crash mid-write without atomic rename
	// would leave. OpenCheckpoint must skip it, not fail.
	if err := os.WriteFile(filepath.Join(dir, "torn.json"), []byte(`{"key":"a","val`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("unrelated"), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Len() != 0 {
		t.Errorf("checkpoint loaded %d entries from garbage", ck.Len())
	}
}

// TestSweepCheckpointResume is the crash-recovery acceptance test: cancel
// a sweep run mid-flight, then resume from the checkpoint directory with a
// different worker count — the merged results must be byte-identical to an
// uninterrupted run, and the resumed run must reuse the persisted work.
func TestSweepCheckpointResume(t *testing.T) {
	clean, err := SweepsParallel(1)
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprintSweeps(clean)

	dir := t.TempDir()
	ck, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Interrupt the run after 5 completed tasks — mid-flight by
	// construction (a full run has eight side-level tasks).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done int32
	opts := RunOptions{Workers: 1, Checkpoint: ck,
		Policy: RunPolicy{afterTask: func(int) {
			if atomic.AddInt32(&done, 1) == 5 {
				cancel()
			}
		}}}
	if _, err := SweepsOpts(ctx, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}

	// Resume in a fresh checkpoint handle, as a restarted process would.
	ck2, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	persisted := ck2.Len()
	if persisted < 5 {
		t.Fatalf("only %d tasks checkpointed before cancellation, want >= 5", persisted)
	}
	resumed, err := SweepsOpts(context.Background(), RunOptions{Workers: 4, Checkpoint: ck2})
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprintSweeps(resumed); got != want {
		t.Errorf("resumed results differ from a clean run:\n--- clean ---\n%s\n--- resumed ---\n%s", want, got)
	}
}

// TestFigureCheckpointReplay: figures restored from a checkpoint print
// identically to freshly computed ones (Sim aside, which is never
// printed).
func TestFigureCheckpointReplay(t *testing.T) {
	dir := t.TempDir()
	ck, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := AllOpts(context.Background(), RunOptions{Workers: 2, Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := AllOpts(context.Background(), RunOptions{Workers: 2, Checkpoint: ck2})
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(first) {
		t.Fatalf("replay returned %d figures, want %d", len(replayed), len(first))
	}
	for i, r := range replayed {
		if r.SimReport != "" {
			t.Errorf("%s: replayed result has a SimReport — it was recomputed, not restored", r.ID)
		}
		if got, want := fingerprintPrinted(r), fingerprintPrinted(first[i]); got != want {
			t.Errorf("%s: replayed figure prints differently:\n--- fresh ---\n%s\n--- replayed ---\n%s",
				r.ID, want, got)
		}
	}
}

// fingerprintPrinted renders everything cmd/experiments prints or writes
// for a figure (Sim is intentionally absent — it is never output).
func fingerprintPrinted(r *Result) string {
	var b strings.Builder
	b.WriteString(r.ID + "|" + r.Title + "|" + r.Cache + "\n")
	for _, n := range r.Notes {
		b.WriteString("note: " + n + "\n")
	}
	if r.Plot != nil {
		b.WriteString(r.Plot.ASCII(36))
		b.WriteString(r.Plot.Summary())
		b.WriteString(r.Plot.CSV())
		b.WriteString(r.Plot.GnuplotData())
	}
	if r.Diff != nil {
		b.WriteString(r.Diff.SideBySide(52))
	}
	return b.String()
}

// TestSweepKeepGoingWithRunawayWorkload: one spec whose workload blows its
// step budget must fail with ErrBudgetExceeded in the structured error
// list while the healthy specs complete fully.
func TestSweepKeepGoingWithRunawayWorkload(t *testing.T) {
	prevSteps := SetMaxSteps(50_000)
	defer SetMaxSteps(prevSteps)

	runawayTrace := func() ([]trace.Record, error) {
		return runWorkload(workloads.Runaway, nil)
	}
	specs := []sweepSpec{
		{
			id: "sweep-bad", title: "runaway workload", geometry: "32-byte blocks, 1-way",
			sizes: []int64{1024, 2048}, config: directMapped,
			orig: runawayTrace, xform: runawayTrace,
		},
		{
			id: "sweep-good", title: "healthy workload", geometry: "32-byte blocks, 1-way",
			sizes: []int64{1024, 2048}, config: directMapped,
			orig: traceT1, xform: transformT1,
		},
	}
	out, err := runSweeps(context.Background(), specs,
		RunOptions{Workers: 2, Policy: RunPolicy{KeepGoing: true}})
	if err == nil {
		t.Fatal("runaway spec did not fail")
	}
	var tes TaskErrors
	if !errors.As(err, &tes) {
		t.Fatalf("err = %T %v, want TaskErrors", err, err)
	}
	if len(tes) != 2 { // one task per side, each covering every size
		t.Errorf("%d failures, want 2: %v", len(tes), tes)
	}
	for _, te := range tes {
		if !errors.Is(te, minic.ErrBudgetExceeded) {
			t.Errorf("failure %v does not unwrap to ErrBudgetExceeded", te)
		}
		if !strings.HasPrefix(te.Name, "sweep/sweep-bad/") {
			t.Errorf("failure names %q, want a sweep-bad task", te.Name)
		}
	}
	// The healthy spec's numbers must match a clean solo run.
	solo, serr := runSweeps(context.Background(), specs[1:], RunOptions{Workers: 1})
	if serr != nil {
		t.Fatal(serr)
	}
	if got, want := out[1].Table(), solo[0].Table(); got != want {
		t.Errorf("healthy spec perturbed by sibling failure:\n%s\nvs\n%s", got, want)
	}
}

// TestSweepCancellationReturnsPartialResults: a cancelled run still hands
// back the points it finished, and with a checkpoint those points are on
// disk.
func TestSweepCancellationReturnsPartialResults(t *testing.T) {
	dir := t.TempDir()
	ck, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done int32
	opts := RunOptions{Workers: 1, Checkpoint: ck,
		Policy: RunPolicy{afterTask: func(int) {
			if atomic.AddInt32(&done, 1) == 3 {
				cancel()
			}
		}}}
	out, err := SweepsOpts(ctx, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out == nil {
		t.Fatal("cancelled run returned nil results")
	}
	var nonZero int
	for _, s := range out {
		for _, p := range s.Points {
			if p.MissesOrig > 0 || p.MissesXform > 0 {
				nonZero++
			}
		}
	}
	if nonZero == 0 {
		t.Error("no partial results survived cancellation")
	}
	if ck.Len() < 3 {
		t.Errorf("%d checkpoint entries after 3 completed tasks", ck.Len())
	}
}
