package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"tracedst/internal/trace"
)

// Checkpoint persists completed task results as one JSON file per task so
// an interrupted batch run (crash, SIGINT, deadline) can resume without
// redoing finished work. Files are written via atomic temp-file+rename —
// a kill mid-write leaves either the previous entry or none, never a
// corrupt one — and loaded back wholesale by OpenCheckpoint. Entries that
// fail to decode on load (e.g. written by an older build) are dropped,
// which merely re-runs those tasks.
//
// Each file is an envelope {"key": ..., "value": ...}: the key names the
// task (e.g. "sweep/sweep-t1/4096/orig"), the value is task-specific.
// Checkpoint is safe for concurrent use by the worker pool.
type Checkpoint struct {
	dir string

	mu      sync.Mutex
	entries map[string]json.RawMessage
}

// ckptEnvelope is the on-disk shape of one entry.
type ckptEnvelope struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// OpenCheckpoint opens (creating if needed) a checkpoint directory and
// loads every valid entry already present — the resume path after a crash.
func OpenCheckpoint(dir string) (*Checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	c := &Checkpoint{dir: dir, entries: map[string]json.RawMessage{}}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		var env ckptEnvelope
		if json.Unmarshal(data, &env) != nil || env.Key == "" || env.Value == nil {
			// Torn or foreign file: ignore it; the task will simply re-run.
			continue
		}
		c.entries[env.Key] = env.Value
	}
	return c, nil
}

// Dir returns the checkpoint directory.
func (c *Checkpoint) Dir() string { return c.dir }

// Len returns the number of loaded or stored entries.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Keys returns every stored entry key with the given prefix ("" for
// all), sorted — the enumeration a restarted service uses to rediscover
// its persisted jobs.
func (c *Checkpoint) Keys(prefix string) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.entries))
	for k := range c.entries {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Get decodes the entry for key into out, reporting whether it existed.
func (c *Checkpoint) Get(key string, out any) (bool, error) {
	c.mu.Lock()
	raw, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("checkpoint: entry %q: %w", key, err)
	}
	return true, nil
}

// Put stores key's value in memory and on disk (atomically), so the entry
// survives any later crash.
func (c *Checkpoint) Put(key string, value any) error {
	raw, err := json.Marshal(value)
	if err != nil {
		return fmt.Errorf("checkpoint: entry %q: %w", key, err)
	}
	data, err := json.Marshal(ckptEnvelope{Key: key, Value: raw})
	if err != nil {
		return fmt.Errorf("checkpoint: entry %q: %w", key, err)
	}
	path := filepath.Join(c.dir, fileForKey(key))
	if err := trace.WriteFileAtomic(path, data, 0o644); err != nil {
		return fmt.Errorf("checkpoint: entry %q: %w", key, err)
	}
	c.mu.Lock()
	c.entries[key] = raw
	c.mu.Unlock()
	return nil
}

// fileForKey flattens a task key into a filename. The true key lives in
// the envelope, so this only needs to be filesystem-safe and injective
// enough in practice (keys use [a-z0-9-/] by convention).
func fileForKey(key string) string {
	var b strings.Builder
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String() + ".json"
}
