// Package experiments regenerates every figure of the paper's evaluation
// (§IV-V): the per-set cache histograms of Figures 3, 4, 6, 7, 10 and 11
// and the trace diffs of Figures 5, 8 and 9, using the same workloads,
// rules and cache geometries. cmd/experiments prints them; bench_test.go
// measures them; EXPERIMENTS.md records the paper-vs-measured comparison.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"tracedst/internal/analysis"
	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/rules"
	"tracedst/internal/telemetry"
	"tracedst/internal/trace"
	"tracedst/internal/tracediff"
	"tracedst/internal/tracer"
	"tracedst/internal/workloads"
	"tracedst/internal/xform"
)

// LEN mirrors the paper: 16 elements for transformations 1 and 2 (the rule
// files of Listings 5 and 8 say [16]), 1024 for transformation 3 (Listing
// 10's 4 KB original array).
const (
	LenT1 = 16
	LenT2 = 16
	LenT3 = 1024
)

// Result is one regenerated figure. Every printed field survives a JSON
// round trip, which is how checkpoint/resume replays a finished figure
// without recomputing it; only SimReport (never printed) is excluded and
// stays empty on restored results.
type Result struct {
	// ID is the figure identifier, e.g. "fig3".
	ID string
	// Title describes the figure.
	Title string
	// Cache names the simulated geometry ("" for pure diff figures).
	Cache string
	// Plot holds per-set series for histogram figures (nil for diffs).
	Plot *analysis.Plot
	// Diff holds the trace alignment for diff figures (nil otherwise).
	Diff *tracediff.Diff
	// SimReport is the rendered simulator report for histogram figures.
	// It is not checkpointed: results restored from a checkpoint have an
	// empty SimReport.
	SimReport string `json:"-"`
	// Notes are measured observations to compare against the paper's
	// claims.
	Notes []string
	// Records is the number of trace records involved.
	Records int
}

func (r *Result) notef(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// memoTrace caches one workload's record slice behind a sync.Once, so a
// full Sweeps()+figures run traces (and transforms) each workload exactly
// once however many figures share it, including when figures run
// concurrently. Records are interned against sharedSyms on first
// resolution; afterwards the slice is immutable and may be shared across
// goroutines.
type memoTrace struct {
	once sync.Once
	recs []trace.Record
	err  error
}

func (m *memoTrace) get(f func() ([]trace.Record, error)) ([]trace.Record, error) {
	m.once.Do(func() {
		m.recs, m.err = f()
		if m.err == nil {
			trace.InternRecords(sharedSyms, m.recs)
			m.err = validateRecords(m.recs)
		}
	})
	return m.recs, m.err
}

// validateMu guards the self-check toggle set by SetValidate.
var (
	validateMu sync.RWMutex
	validateOn bool
)

// SetValidate turns on trace self-checking: every generated (and
// transformed) workload trace is run through the strict validator before
// use, failing the figure on any error-severity finding. cmd/experiments
// -validate wires this.
func SetValidate(on bool) {
	validateMu.Lock()
	validateOn = on
	validateMu.Unlock()
}

// validateRecords applies the validator when self-checking is enabled.
func validateRecords(recs []trace.Record) error {
	validateMu.RLock()
	on := validateOn
	validateMu.RUnlock()
	if !on {
		return nil
	}
	rep := trace.ValidateRecords(trace.Header{}, false, recs)
	if !rep.OK() {
		return fmt.Errorf("experiments: generated trace failed validation:\n%s", rep.Summary())
	}
	return nil
}

var (
	t1Trace, t2Trace, t3Trace, t2HotTrace memoTrace
	t1Xform, t2Xform, t3Xform, t2HotXform memoTrace
)

// maxSteps guards the execution budget applied to every workload traced by
// this package; cmd/experiments wires its -max-steps flag here. Zero keeps
// the interpreter's default limit.
var (
	maxStepsMu sync.Mutex
	maxSteps   int64
)

// SetMaxSteps caps the number of statements any single workload may
// execute while being traced; a workload exceeding it fails its figure
// with an error matching minic.ErrBudgetExceeded instead of hanging the
// run. It returns the previous cap (0 = interpreter default).
func SetMaxSteps(n int64) int64 {
	maxStepsMu.Lock()
	defer maxStepsMu.Unlock()
	prev := maxSteps
	if n < 0 {
		n = 0
	}
	maxSteps = n
	return prev
}

// MaxSteps returns the current per-workload step cap (0 = default).
func MaxSteps() int64 {
	maxStepsMu.Lock()
	defer maxStepsMu.Unlock()
	return maxSteps
}

func runWorkload(src string, defs map[string]string) ([]trace.Record, error) {
	res, err := tracer.Run(src, defs, tracer.Options{MaxSteps: MaxSteps()})
	if err != nil {
		return nil, err
	}
	return res.Records, nil
}

func applyRule(ruleSrc string, orig []trace.Record) ([]trace.Record, error) {
	rule, err := rules.Parse(ruleSrc)
	if err != nil {
		return nil, err
	}
	eng, err := xform.New(xform.Options{}, rule)
	if err != nil {
		return nil, err
	}
	return eng.TransformAll(orig)
}

// traceT1 runs the SoA program (memoized).
func traceT1() ([]trace.Record, error) {
	return t1Trace.get(func() ([]trace.Record, error) {
		return runWorkload(workloads.Trans1SoA, map[string]string{"LEN": fmt.Sprint(LenT1)})
	})
}

// transformT1 applies the Listing 5 rule to the T1 trace (memoized).
func transformT1() ([]trace.Record, error) {
	return t1Xform.get(func() ([]trace.Record, error) {
		orig, err := traceT1()
		if err != nil {
			return nil, err
		}
		return applyRule(workloads.RuleTrans1ForLen(LenT1), orig)
	})
}

func traceT2() ([]trace.Record, error) {
	return t2Trace.get(func() ([]trace.Record, error) {
		return runWorkload(workloads.Trans2Inline, map[string]string{"LEN": fmt.Sprint(LenT2)})
	})
}

func transformT2() ([]trace.Record, error) {
	return t2Xform.get(func() ([]trace.Record, error) {
		orig, err := traceT2()
		if err != nil {
			return nil, err
		}
		return applyRule(workloads.RuleTrans2ForLen(LenT2), orig)
	})
}

func traceT3() ([]trace.Record, error) {
	return t3Trace.get(func() ([]trace.Record, error) {
		return runWorkload(workloads.Trans3Contiguous, map[string]string{"LEN": fmt.Sprint(LenT3)})
	})
}

func transformT3() ([]trace.Record, error) {
	return t3Xform.get(func() ([]trace.Record, error) {
		orig, err := traceT3()
		if err != nil {
			return nil, err
		}
		return applyRule(workloads.RuleTrans3ForLen(LenT3, 16, 8), orig)
	})
}

// hotLoopLen is the T2 hot-loop sweep's element count.
const hotLoopLen = 128

func traceT2Hot() ([]trace.Record, error) {
	return t2HotTrace.get(func() ([]trace.Record, error) {
		return runWorkload(workloads.Trans2HotLoop, map[string]string{"LEN": fmt.Sprint(hotLoopLen)})
	})
}

func transformT2Hot() ([]trace.Record, error) {
	return t2HotXform.get(func() ([]trace.Record, error) {
		orig, err := traceT2Hot()
		if err != nil {
			return nil, err
		}
		return applyRule(workloads.RuleTrans2ForLen(hotLoopLen), orig)
	})
}

// figShards is the process-wide shard count for figure simulations, set
// from cmd/experiments -shards; ≤1 means serial.
var (
	figShardsMu sync.Mutex
	figShards   int
)

// SetFigureShards sets how many cold shards figure simulations split into
// (≤1 = serial) and returns the previous value. Sharded figures carry
// full attribution — merged per-variable series, per-function stats and
// conflict matrices — and equal a serial run with Flush at every shard
// boundary, so AllOpts checkpoints them under distinct @shardsN keys.
func SetFigureShards(n int) int {
	figShardsMu.Lock()
	defer figShardsMu.Unlock()
	prev := figShards
	figShards = n
	return prev
}

// FigureShards returns the current figure shard count.
func FigureShards() int {
	figShardsMu.Lock()
	defer figShardsMu.Unlock()
	return figShards
}

// simulate runs records once through the single-pass multi-config engine
// for the given configs, attributing against the shared intern table (the
// records' ids were issued by it) and publishing the finished pass's
// counters to the default registry. Exact-mode MultiSim reports and
// per-variable series are byte-identical to independent Simulator runs,
// so figures built from it print exactly as before. With SetFigureShards
// above 1 the pass runs on the sharded full-attribution engine instead
// (cold shards interning privately; MergeFrom matches symbols by name).
func simulate(recs []trace.Record, cfgs ...cache.Config) (*dinero.MultiSim, error) {
	reg := telemetry.Default()
	if n := FigureShards(); n > 1 {
		res, err := dinero.MultiSimShardedRecords(context.Background(), recs, dinero.MultiOptions{Configs: cfgs}, n)
		if err != nil {
			return nil, err
		}
		reg.Counter("experiments.records_in").Add(int64(len(recs)))
		res.PublishShardTelemetry(reg)
		return res.Sim, nil
	}
	ms, err := dinero.NewMulti(dinero.MultiOptions{Configs: cfgs, Syms: sharedSyms})
	if err != nil {
		return nil, err
	}
	ms.Process(recs)
	reg.Counter("experiments.records_in").Add(int64(len(recs)))
	ms.PublishTelemetry(reg)
	return ms, nil
}

// ckptCounters caches the checkpoint hit/miss/put counters for one run.
type ckptCounters struct {
	hits, misses, puts *telemetry.Counter
}

func checkpointCounters() ckptCounters {
	reg := telemetry.Default()
	return ckptCounters{
		hits:   reg.Counter("experiments.checkpoint.hits"),
		misses: reg.Counter("experiments.checkpoint.misses"),
		puts:   reg.Counter("experiments.checkpoint.puts"),
	}
}

func histogramResult(id, title string, recs []trace.Record, cfg cache.Config) (*Result, error) {
	ms, err := simulate(recs, cfg)
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:        id,
		Title:     title,
		Cache:     fmt.Sprintf("%d bytes, %d-byte blocks, %s", cfg.Size, cfg.BlockSize, assocName(cfg)),
		Plot:      analysis.FromMulti(title, ms, 0, false),
		SimReport: ms.Report(0),
		Records:   len(recs),
	}
	return r, nil
}

func assocName(cfg cache.Config) string {
	if cfg.Assoc == 1 {
		return "1-way"
	}
	return fmt.Sprintf("%d-way %s", cfg.Assoc, cfg.Repl)
}

// Fig3 — per-set hits/misses of the SoA program on the 32 KB direct-mapped
// cache (series lSoA and lI).
func Fig3() (*Result, error) {
	recs, err := traceT1()
	if err != nil {
		return nil, err
	}
	r, err := histogramResult("fig3", "Structure of Arrays (original)", recs, cache.Paper32KDirect())
	if err != nil {
		return nil, err
	}
	addOccupancyNotes(r, "lSoA", "lI")
	return r, nil
}

// Fig4 — the same trace after the SoA→AoS rule (series lAoS and lI).
func Fig4() (*Result, error) {
	recs, err := transformT1()
	if err != nil {
		return nil, err
	}
	r, err := histogramResult("fig4", "Array of Structures (transformed)", recs, cache.Paper32KDirect())
	if err != nil {
		return nil, err
	}
	addOccupancyNotes(r, "lAoS", "lI")
	if err := addUniformityNote(r, "lAoS"); err != nil {
		return nil, err
	}
	return r, nil
}

// Fig5 — the side-by-side diff of the original and transformed T1 traces.
func Fig5() (*Result, error) {
	orig, err := traceT1()
	if err != nil {
		return nil, err
	}
	got, err := transformT1()
	if err != nil {
		return nil, err
	}
	d := tracediff.New(orig, got)
	r := &Result{
		ID:      "fig5",
		Title:   "SoA→AoS trace diff",
		Diff:    d,
		Records: len(got),
	}
	st := d.Stats()
	r.notef("lines: %d same, %d rewritten, %d inserted, %d deleted",
		st.Same, st.Rewritten, st.Inserted, st.Deleted)
	r.notef("every lSoA access was renamed to lAoS with a new base address; no extra accesses (1:1 mapping)")
	return r, nil
}

// Fig6 — per-set stats of the inline nested-structure program.
func Fig6() (*Result, error) {
	recs, err := traceT2()
	if err != nil {
		return nil, err
	}
	r, err := histogramResult("fig6", "Single level nested structure (original)", recs, cache.Paper32KDirect())
	if err != nil {
		return nil, err
	}
	addOccupancyNotes(r, "lS1", "lI")
	return r, nil
}

// Fig7 — per-set stats after outlining (series lS2, lStorageForRarelyUsed,
// lI) with the extra pointer loads.
func Fig7() (*Result, error) {
	orig, err := traceT2()
	if err != nil {
		return nil, err
	}
	recs, err := transformT2()
	if err != nil {
		return nil, err
	}
	r, err := histogramResult("fig7", "Structure access through indirection (transformed)", recs, cache.Paper32KDirect())
	if err != nil {
		return nil, err
	}
	addOccupancyNotes(r, "lS2", "lStorageForRarelyUsed", "lI")
	r.notef("indirection adds %d pointer loads (one per outlined access)", len(recs)-len(orig))
	return r, nil
}

// Fig8 — the T2 trace diff with the inserted indirection loads.
func Fig8() (*Result, error) {
	orig, err := traceT2()
	if err != nil {
		return nil, err
	}
	got, err := transformT2()
	if err != nil {
		return nil, err
	}
	d := tracediff.New(orig, got)
	r := &Result{ID: "fig8", Title: "Nested structure to structure with indirection: trace diff",
		Diff: d, Records: len(got)}
	st := d.Stats()
	r.notef("lines: %d same, %d rewritten, %d inserted (pointer loads), %d deleted",
		st.Same, st.Rewritten, st.Inserted, st.Deleted)
	return r, nil
}

// Fig9 — the T3 trace diff with injected stride-arithmetic loads.
func Fig9() (*Result, error) {
	orig, err := traceT3()
	if err != nil {
		return nil, err
	}
	got, err := transformT3()
	if err != nil {
		return nil, err
	}
	d := tracediff.New(orig, got)
	r := &Result{ID: "fig9", Title: "Contiguous array to set-pinned array: trace diff",
		Diff: d, Records: len(got)}
	st := d.Stats()
	r.notef("lines: %d same, %d rewritten, %d inserted (ITEMSPERLINE/lI arithmetic), %d deleted",
		st.Same, st.Rewritten, st.Inserted, st.Deleted)
	return r, nil
}

// Fig10 — the contiguous sweep on the PowerPC 440 cache.
func Fig10() (*Result, error) {
	recs, err := traceT3()
	if err != nil {
		return nil, err
	}
	r, err := histogramResult("fig10", "Contiguous array (PPC440 64-way round-robin)", recs, cache.PowerPC440())
	if err != nil {
		return nil, err
	}
	addOccupancyNotes(r, "lContiguousArray", "lI")
	return r, nil
}

// Fig11 — the strided/pinned sweep on the PowerPC 440 cache.
func Fig11() (*Result, error) {
	recs, err := transformT3()
	if err != nil {
		return nil, err
	}
	r, err := histogramResult("fig11", "Array striding (PPC440 64-way round-robin)", recs, cache.PowerPC440())
	if err != nil {
		return nil, err
	}
	addOccupancyNotes(r, "lSetHashingArray", "ITEMSPERLINE", "lI")
	if s, ok := r.Plot.SeriesByLabel("lSetHashingArray"); ok {
		occ := analysis.OccupancyOf(s)
		r.notef("set pinning: %.0f%% of lSetHashingArray traffic in set %d (sets touched: %d)",
			100*occ.DominantShare, occ.DominantSet, occ.SetsTouched)
	}
	return r, nil
}

// addOccupancyNotes records where each named series landed.
func addOccupancyNotes(r *Result, names ...string) {
	for _, name := range names {
		s, ok := r.Plot.SeriesByLabel(name)
		if !ok {
			r.notef("series %s: absent", name)
			continue
		}
		occ := analysis.OccupancyOf(s)
		r.notef("%s: %d hits, %d misses over %d sets (dominant set %d, %.0f%%)",
			name, occ.Hits, occ.Misses, occ.SetsTouched, occ.DominantSet, 100*occ.DominantShare)
	}
}

// addUniformityNote measures the per-set access spread of a series (the
// paper's "more uniformly accessed pattern" claim for Fig 4).
func addUniformityNote(r *Result, name string) error {
	s, ok := r.Plot.SeriesByLabel(name)
	if !ok {
		return fmt.Errorf("experiments: series %s missing", name)
	}
	var min, max int64 = -1, 0
	for i := range s.Hits {
		t := s.Hits[i] + s.Misses[i]
		if t == 0 {
			continue
		}
		if min < 0 || t < min {
			min = t
		}
		if t > max {
			max = t
		}
	}
	r.notef("%s per-set access spread: min %d, max %d (closer = more uniform)", name, min, max)
	return nil
}

// registry of all figures.
var registry = map[string]func() (*Result, error){
	"fig3": Fig3, "fig4": Fig4, "fig5": Fig5, "fig6": Fig6, "fig7": Fig7,
	"fig8": Fig8, "fig9": Fig9, "fig10": Fig10, "fig11": Fig11,
}

// IDs returns the known figure ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool {
		// fig3 < fig4 < … < fig11 numerically.
		return figNum(out[i]) < figNum(out[j])
	})
	return out
}

func figNum(id string) int {
	var n int
	fmt.Sscanf(id, "fig%d", &n)
	return n
}

// Run regenerates one figure by id.
func Run(id string) (*Result, error) {
	f, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown figure %q (known: %v)", id, IDs())
	}
	return f()
}

// All regenerates every figure in order, fanning the figures out over the
// configured worker pool (SetParallelism) under the configured RunPolicy
// (SetPolicy). Output order and contents are identical to a serial run:
// workloads are traced once (memoized) and each figure simulates into its
// own simulator.
func All() ([]*Result, error) {
	return AllOpts(context.Background(), DefaultRunOptions())
}

// AllParallel is All with an explicit worker count (1 = serial).
func AllParallel(workers int) ([]*Result, error) {
	opts := DefaultRunOptions()
	opts.Workers = workers
	return AllOpts(context.Background(), opts)
}

// AllOpts regenerates every figure under explicit run options. A non-nil
// checkpoint replays figures finished by an earlier interrupted run
// (restored results print identically; their SimReport is empty) and
// persists fresh ones. On error the partial result slice is returned with
// it — failed or skipped figures are nil entries, and in KeepGoing mode
// the error is a TaskErrors naming each failed figure while the others
// completed.
func AllOpts(ctx context.Context, opts RunOptions) ([]*Result, error) {
	ids := IDs()
	out := make([]*Result, len(ids))
	name := func(i int) string { return ids[i] }
	ck := checkpointCounters()
	err := forEachPolicy(ctx, opts.Policy, opts.workerCount(), len(ids), name, func(_ context.Context, i int) error {
		id := ids[i]
		ckptKey := "fig/" + id
		if n := FigureShards(); n > 1 {
			// Sharded figures are a distinct result tier (flush-at-boundary
			// reference), like the sweeps' @shardsN checkpoint keys.
			ckptKey = fmt.Sprintf("fig/%s@shards%d", id, n)
		}
		if opts.Checkpoint != nil {
			var saved Result
			if ok, err := opts.Checkpoint.Get(ckptKey, &saved); err != nil {
				return err
			} else if ok {
				ck.hits.Inc()
				out[i] = &saved
				return nil
			}
			ck.misses.Inc()
		}
		r, err := Run(id)
		if err != nil {
			return err // forEachPolicy's TaskError labels it with the figure id
		}
		out[i] = r
		if opts.Checkpoint != nil {
			ck.puts.Inc()
			return opts.Checkpoint.Put(ckptKey, r)
		}
		return nil
	})
	return out, err
}
