package experiments

import (
	"strings"
	"testing"

	"tracedst/internal/analysis"
)

func runFig(t *testing.T, id string) *Result {
	t.Helper()
	r, err := Run(id)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return r
}

func TestIDsOrdered(t *testing.T) {
	want := []string{"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("ids = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ids[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99"); err == nil {
		t.Error("unknown figure accepted")
	}
}

// TestFig3Fig4Shape: the transformation must interleave mX and mY traffic.
// In the SoA layout the structure's sets split into an mX cluster and an mY
// cluster with different per-set counts; in the AoS layout every structure
// set sees the same traffic (the paper's "more uniformly accessed pattern
// observed in Figure 4").
func TestFig3Fig4Shape(t *testing.T) {
	f3, f4 := runFig(t, "fig3"), runFig(t, "fig4")

	spread := func(p *analysis.Plot, label string) (min, max int64) {
		s, ok := p.SeriesByLabel(label)
		if !ok {
			t.Fatalf("series %s missing", label)
		}
		min = -1
		for i := range s.Hits {
			tot := s.Hits[i] + s.Misses[i]
			if tot == 0 {
				continue
			}
			if min < 0 || tot < min {
				min = tot
			}
			if tot > max {
				max = tot
			}
		}
		return min, max
	}
	soaMin, soaMax := spread(f3.Plot, "lSoA")
	aosMin, aosMax := spread(f4.Plot, "lAoS")
	// SoA: mX sets see 8 accesses per 32B block, mY sets see 4 — uneven.
	if soaMin == soaMax {
		t.Errorf("SoA per-set counts unexpectedly uniform (%d)", soaMin)
	}
	// AoS: interior sets uniform (2 structs per block → 4 accesses); edge
	// blocks may differ due to alignment straddle, so compare spread ratio.
	soaSpread := float64(soaMax) / float64(soaMin)
	aosSpread := float64(aosMax) / float64(aosMin)
	if aosSpread > soaSpread {
		t.Errorf("AoS spread %.2f not tighter than SoA %.2f", aosSpread, soaSpread)
	}
}

func TestFig5DiffShape(t *testing.T) {
	r := runFig(t, "fig5")
	if r.Diff == nil {
		t.Fatal("no diff")
	}
	st := r.Diff.Stats()
	if st.Rewritten != 2*LenT1 || st.Inserted != 0 || st.Deleted != 0 {
		t.Errorf("T1 diff = %+v", st)
	}
}

func TestFig7IndirectionLoads(t *testing.T) {
	f6, f7 := runFig(t, "fig6"), runFig(t, "fig7")
	if f7.Records != f6.Records+2*LenT2 {
		t.Errorf("records %d → %d, want +%d pointer loads", f6.Records, f7.Records, 2*LenT2)
	}
	if _, ok := f7.Plot.SeriesByLabel("lStorageForRarelyUsed"); !ok {
		t.Error("pool series missing in fig7")
	}
	if _, ok := f7.Plot.SeriesByLabel("lS1"); ok {
		t.Error("lS1 survived transformation in fig7")
	}
}

func TestFig8DiffShape(t *testing.T) {
	st := runFig(t, "fig8").Diff.Stats()
	if st.Inserted != 2*LenT2 {
		t.Errorf("inserted = %d, want %d", st.Inserted, 2*LenT2)
	}
}

func TestFig9DiffShape(t *testing.T) {
	st := runFig(t, "fig9").Diff.Stats()
	if st.Inserted != 4*LenT3 {
		t.Errorf("inserted = %d, want %d", st.Inserted, 4*LenT3)
	}
	if st.Rewritten < LenT3 {
		t.Errorf("rewritten = %d, want ≥ %d", st.Rewritten, LenT3)
	}
}

// TestFig10Fig11Pinning is the headline claim of transformation 3: the
// contiguous sweep touches all 16 sets; the strided version pins the array
// to a single set.
func TestFig10Fig11Pinning(t *testing.T) {
	f10, f11 := runFig(t, "fig10"), runFig(t, "fig11")

	s10, ok := f10.Plot.SeriesByLabel("lContiguousArray")
	if !ok {
		t.Fatal("lContiguousArray missing")
	}
	occ10 := analysis.OccupancyOf(s10)
	if occ10.SetsTouched != 16 {
		t.Errorf("contiguous array touches %d sets, want 16", occ10.SetsTouched)
	}

	s11, ok := f11.Plot.SeriesByLabel("lSetHashingArray")
	if !ok {
		t.Fatal("lSetHashingArray missing")
	}
	occ11 := analysis.OccupancyOf(s11)
	if occ11.SetsTouched != 1 || occ11.DominantShare != 1.0 {
		t.Errorf("pinned array occupancy = %+v, want a single set", occ11)
	}
	// Same miss count for the array data ("maintaining the same amount of
	// cache misses for the array structure"): both sweeps are cold-miss
	// sequences over 128 distinct blocks.
	if occ10.Misses != occ11.Misses {
		t.Errorf("misses: contiguous %d vs pinned %d", occ10.Misses, occ11.Misses)
	}
	// The injected arithmetic must appear in fig11.
	if _, ok := f11.Plot.SeriesByLabel("ITEMSPERLINE"); !ok {
		t.Error("ITEMSPERLINE series missing in fig11")
	}
}

func TestAllFiguresRun(t *testing.T) {
	rs, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 9 {
		t.Fatalf("got %d results", len(rs))
	}
	for _, r := range rs {
		if len(r.Notes) == 0 {
			t.Errorf("%s has no notes", r.ID)
		}
		if r.Plot == nil && r.Diff == nil {
			t.Errorf("%s has neither plot nor diff", r.ID)
		}
		if r.Records == 0 {
			t.Errorf("%s has no records", r.ID)
		}
		for _, n := range r.Notes {
			if strings.Contains(n, "absent") {
				t.Errorf("%s: %s", r.ID, n)
			}
		}
	}
}

func TestSweepsRun(t *testing.T) {
	ss, err := Sweeps()
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != 4 {
		t.Fatalf("sweeps = %d", len(ss))
	}
	for _, s := range ss {
		if len(s.Points) == 0 {
			t.Errorf("%s has no points", s.ID)
		}
		// Misses must be non-increasing with cache size for LRU sweeps
		// (T3 uses round-robin, where this still holds for these simple
		// sweep traces).
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].MissesOrig > s.Points[i-1].MissesOrig {
				t.Errorf("%s: orig misses increased with size at %d bytes",
					s.ID, s.Points[i].CacheBytes)
			}
		}
		if !strings.Contains(s.Table(), "cache bytes") {
			t.Errorf("%s table malformed", s.ID)
		}
	}
}

func TestSweepWinnerMarks(t *testing.T) {
	s := &SweepResult{Points: []SweepPoint{
		{MissesOrig: 5, MissesXform: 3},
		{MissesOrig: 2, MissesXform: 4},
		{MissesOrig: 1, MissesXform: 1},
	}}
	if s.Winner(0) != '>' || s.Winner(1) != '<' || s.Winner(2) != '=' {
		t.Errorf("winners = %c %c %c", s.Winner(0), s.Winner(1), s.Winner(2))
	}
}
