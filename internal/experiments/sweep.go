package experiments

import (
	"fmt"
	"strings"

	"tracedst/internal/cache"
	"tracedst/internal/rules"
	"tracedst/internal/trace"
	"tracedst/internal/tracer"
	"tracedst/internal/workloads"
	"tracedst/internal/xform"
)

// SweepPoint is one cache size of a layout sweep.
type SweepPoint struct {
	CacheBytes int64
	// MissesOrig / MissesXform are total L1 misses of the original and
	// transformed traces.
	MissesOrig  int64
	MissesXform int64
}

// Sweep compares a transformation across cache sizes — the "who wins
// where" view the paper's single-geometry figures cannot show.
type SweepResult struct {
	ID    string
	Title string
	// Geometry note (block size, associativity).
	Geometry string
	Points   []SweepPoint
}

// Winner reports which side has fewer misses at each size: '<' orig wins,
// '>' transformed wins, '=' tie.
func (s *SweepResult) Winner(i int) byte {
	p := s.Points[i]
	switch {
	case p.MissesOrig < p.MissesXform:
		return '<'
	case p.MissesOrig > p.MissesXform:
		return '>'
	default:
		return '='
	}
}

// Table renders the sweep.
func (s *SweepResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s)\n", s.ID, s.Title, s.Geometry)
	fmt.Fprintf(&b, "%-12s %14s %14s  %s\n", "cache bytes", "orig misses", "xform misses", "winner")
	for i, p := range s.Points {
		var who string
		switch s.Winner(i) {
		case '>':
			who = "transformed"
		case '<':
			who = "original"
		default:
			who = "tie"
		}
		fmt.Fprintf(&b, "%-12d %14d %14d  %s\n", p.CacheBytes, p.MissesOrig, p.MissesXform, who)
	}
	return b.String()
}

// DefaultSweepSizes are the cache sizes swept (32-byte blocks, direct
// mapped unless noted).
var DefaultSweepSizes = []int64{256, 512, 1024, 2048, 4096, 8192, 16384, 32768}

func missesAt(recs []trace.Record, cfg cache.Config) (int64, error) {
	sim, err := simulate(recs, cfg)
	if err != nil {
		return 0, err
	}
	return sim.L1().Stats().Misses(), nil
}

// sweep runs orig and xform traces over the default sizes.
func sweep(id, title string, orig, xform []trace.Record, assoc int) (*SweepResult, error) {
	s := &SweepResult{
		ID:       id,
		Title:    title,
		Geometry: fmt.Sprintf("32-byte blocks, %d-way, LRU", assoc),
	}
	for _, size := range DefaultSweepSizes {
		cfg := cache.Config{Size: size, BlockSize: 32, Assoc: assoc}
		mo, err := missesAt(orig, cfg)
		if err != nil {
			return nil, err
		}
		mx, err := missesAt(xform, cfg)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, SweepPoint{CacheBytes: size, MissesOrig: mo, MissesXform: mx})
	}
	return s, nil
}

// SweepT1 sweeps transformation 1 (SoA vs AoS) across cache sizes.
func SweepT1() (*SweepResult, error) {
	orig, err := traceT1()
	if err != nil {
		return nil, err
	}
	xf, err := transformT1(orig)
	if err != nil {
		return nil, err
	}
	return sweep("sweep-t1", "SoA (orig) vs AoS (transformed)", orig, xf, 1)
}

// SweepT2 sweeps transformation 2 (inline vs outlined) across cache sizes.
func SweepT2() (*SweepResult, error) {
	orig, err := traceT2()
	if err != nil {
		return nil, err
	}
	xf, err := transformT2(orig)
	if err != nil {
		return nil, err
	}
	return sweep("sweep-t2", "inline nested (orig) vs outlined (transformed)", orig, xf, 1)
}

// SweepT3 sweeps transformation 3 (contiguous vs set-pinned) on a 64-way
// round-robin geometry scaled down with size.
func SweepT3() (*SweepResult, error) {
	orig, err := traceT3()
	if err != nil {
		return nil, err
	}
	xf, err := transformT3(orig)
	if err != nil {
		return nil, err
	}
	s := &SweepResult{
		ID:       "sweep-t3",
		Title:    "contiguous (orig) vs set-pinned (transformed)",
		Geometry: "32-byte blocks, 64-way, round-robin",
	}
	for _, size := range []int64{4096, 8192, 16384, 32768, 65536} {
		cfg := cache.Config{Size: size, BlockSize: 32, Assoc: 64, Repl: cache.ReplRoundRobin}
		mo, err := missesAt(orig, cfg)
		if err != nil {
			return nil, err
		}
		mx, err := missesAt(xf, cfg)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, SweepPoint{CacheBytes: size, MissesOrig: mo, MissesXform: mx})
	}
	return s, nil
}

// SweepT2Hot sweeps transformation 2 under its intended access pattern — a
// loop touching only the hot member. The full-touch sweeps above honestly
// show the transformations losing (padding and indirection cost extra
// blocks when every member is touched once); outlining pays off when the
// cold members stay cold.
func SweepT2Hot() (*SweepResult, error) {
	const n = 128
	res, err := tracer.Run(workloads.Trans2HotLoop, map[string]string{"LEN": fmt.Sprint(n)}, tracer.Options{})
	if err != nil {
		return nil, err
	}
	rule, err := rules.Parse(workloads.RuleTrans2ForLen(n))
	if err != nil {
		return nil, err
	}
	eng, err := xform.New(xform.Options{}, rule)
	if err != nil {
		return nil, err
	}
	xf, err := eng.TransformAll(res.Records)
	if err != nil {
		return nil, err
	}
	return sweep("sweep-t2-hot", "hot-only loop: inline (orig) vs outlined (transformed)", res.Records, xf, 1)
}

// Sweeps runs all layout sweeps.
func Sweeps() ([]*SweepResult, error) {
	var out []*SweepResult
	for _, f := range []func() (*SweepResult, error){SweepT1, SweepT2, SweepT2Hot, SweepT3} {
		s, err := f()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
