package experiments

import (
	"context"
	"fmt"
	"strings"

	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/simcache"
	"tracedst/internal/telemetry"
	"tracedst/internal/trace"
)

// SweepPoint is one cache size of a layout sweep.
type SweepPoint struct {
	CacheBytes int64
	// MissesOrig / MissesXform are total L1 misses of the original and
	// transformed traces.
	MissesOrig  int64
	MissesXform int64
}

// Sweep compares a transformation across cache sizes — the "who wins
// where" view the paper's single-geometry figures cannot show.
type SweepResult struct {
	ID    string
	Title string
	// Geometry note (block size, associativity).
	Geometry string
	Points   []SweepPoint
}

// Winner reports which side has fewer misses at each size: '<' orig wins,
// '>' transformed wins, '=' tie.
func (s *SweepResult) Winner(i int) byte {
	p := s.Points[i]
	switch {
	case p.MissesOrig < p.MissesXform:
		return '<'
	case p.MissesOrig > p.MissesXform:
		return '>'
	default:
		return '='
	}
}

// Table renders the sweep.
func (s *SweepResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s)\n", s.ID, s.Title, s.Geometry)
	fmt.Fprintf(&b, "%-12s %14s %14s  %s\n", "cache bytes", "orig misses", "xform misses", "winner")
	for i, p := range s.Points {
		var who string
		switch s.Winner(i) {
		case '>':
			who = "transformed"
		case '<':
			who = "original"
		default:
			who = "tie"
		}
		fmt.Fprintf(&b, "%-12d %14d %14d  %s\n", p.CacheBytes, p.MissesOrig, p.MissesXform, who)
	}
	return b.String()
}

// DefaultSweepSizes are the cache sizes swept (32-byte blocks, direct
// mapped unless noted).
var DefaultSweepSizes = []int64{256, 512, 1024, 2048, 4096, 8192, 16384, 32768}

// simChunk is how many records a sweep simulation processes between
// context polls — small enough that a deadline or SIGINT interrupts a
// simulation within microseconds, large enough to stay invisible in the
// profile.
const simChunk = 1 << 16

// missesAt is the per-config engine: one full Simulator per (size, side)
// simulation. The sweeps no longer run on it — sweepMisses evaluates all
// sizes in one pass — but it remains the reference and the benchmark
// baseline the single-pass engine is gated against (BENCH_multisim.json).
// It simulates recs in chunks, polling ctx between chunks so a
// per-task deadline or a cancelled run stops mid-simulation instead of
// after it. Completed simulations publish their counters (records in and
// simulated, outcomes, page allocations) to the default registry — after
// the hot loop, so the per-access path stays allocation-free.
func missesAt(ctx context.Context, recs []trace.Record, cfg cache.Config) (int64, error) {
	sim, err := dinero.New(dinero.Options{L1: cfg, Syms: sharedSyms})
	if err != nil {
		return 0, err
	}
	for start := 0; start < len(recs); start += simChunk {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		end := start + simChunk
		if end > len(recs) {
			end = len(recs)
		}
		sim.Process(recs[start:end])
	}
	reg := telemetry.Default()
	reg.Counter("experiments.records_in").Add(int64(len(recs)))
	sim.PublishTelemetry(reg)
	return sim.L1().Stats().Misses(), nil
}

// sweepMisses is the single-pass engine: every cache size of a sweep side
// evaluated in one traversal of the record slice via dinero.MultiSim in
// stats-only mode (the sweep consumes miss totals; attribution would be
// pure overhead). Exact-mode results are identical to missesAt per config;
// with sampling the returned misses are scaled estimates. Chunked like
// missesAt so cancellation interrupts mid-trace.
func sweepMisses(ctx context.Context, recs []trace.Record, cfgs []cache.Config, sm dinero.Sampling) ([]int64, error) {
	ms, err := dinero.NewMulti(dinero.MultiOptions{
		Configs: cfgs, Syms: sharedSyms, Sampling: sm, StatsOnly: true,
	})
	if err != nil {
		return nil, err
	}
	for start := 0; start < len(recs); start += simChunk {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		end := start + simChunk
		if end > len(recs) {
			end = len(recs)
		}
		ms.Process(recs[start:end])
	}
	reg := telemetry.Default()
	reg.Counter("experiments.records_in").Add(ms.SimulatedRecords() * int64(len(cfgs)))
	ms.PublishTelemetry(reg)
	out := make([]int64, len(cfgs))
	for i := range cfgs {
		out[i] = ms.ScaledStats(i).Misses()
	}
	return out, nil
}

// sweepMissesSharded is the sharded single-pass engine: the record slice
// splits into contiguous ranges, each range simulates on its own cold
// MultiSim concurrently, and the shards reduce with MultiSim.MergeFrom
// (dinero.MultiSimShardedRecords). The merged misses equal a serial
// sweepMisses run that calls Flush at every shard boundary (see
// dinero.Simulator.Flush for why — replacement decisions compare stamps,
// which survive the merge). Exact sampling only; shard simulators intern
// privately because the shared table is not goroutine-safe and stats-only
// sweeps never read it.
func sweepMissesSharded(ctx context.Context, recs []trace.Record, cfgs []cache.Config, shards int) ([]int64, error) {
	if shards > len(recs) {
		shards = len(recs)
	}
	if shards < 2 || len(recs) == 0 {
		return sweepMisses(ctx, recs, cfgs, dinero.Sampling{})
	}
	res, err := dinero.MultiSimShardedRecords(ctx, recs, dinero.MultiOptions{Configs: cfgs, StatsOnly: true}, shards)
	if err != nil {
		return nil, err
	}
	reg := telemetry.Default()
	reg.Counter("experiments.records_in").Add(res.Sim.SimulatedRecords() * int64(len(cfgs)))
	res.PublishShardTelemetry(reg)
	reg.Counter("experiments.sharded_sweeps").Inc()
	reg.Counter("experiments.sweep_shards").Add(int64(res.Shards))
	out := make([]int64, len(cfgs))
	for ci := range cfgs {
		out[ci] = res.Sim.Stats(ci).Misses()
	}
	return out, nil
}

// samplingKeySuffix distinguishes sampled checkpoint entries from exact
// ones — an estimate must never be replayed as an exact result or vice
// versa.
func samplingKeySuffix(sm dinero.Sampling) string {
	if sm.Exact() {
		return ""
	}
	w := sm.Window
	if sm.Interval > 1 && w == 0 {
		w = dinero.DefaultSampleWindow
	}
	return fmt.Sprintf("@sets%d-int%d-win%d", sm.SetFactor, sm.Interval, w)
}

// runKeySuffix is the full checkpoint-key qualifier for a run's result
// tier: sampling parameters and/or shard count. Sharded results equal a
// flush-at-boundary serial run, not a plain one, so they must not replay
// into (or from) unsharded entries.
func runKeySuffix(opts RunOptions) string {
	s := samplingKeySuffix(opts.Sampling)
	if opts.Shards > 1 {
		s += fmt.Sprintf("@shards%d", opts.Shards)
	}
	return s
}

// sweepSpec declares one layout sweep: which traces to compare, at which
// sizes, on which geometry. Every (size, side) pair is an independent
// simulation, which is what the parallel runner fans out.
type sweepSpec struct {
	id       string
	title    string
	geometry string
	sizes    []int64
	config   func(size int64) cache.Config
	orig     func() ([]trace.Record, error)
	xform    func() ([]trace.Record, error)
}

func directMapped(size int64) cache.Config {
	return cache.Config{Size: size, BlockSize: 32, Assoc: 1}
}

// sweepSpecs lists all layout sweeps in presentation order.
func sweepSpecs() []sweepSpec {
	return []sweepSpec{
		{
			id: "sweep-t1", title: "SoA (orig) vs AoS (transformed)",
			geometry: "32-byte blocks, 1-way, LRU",
			sizes:    DefaultSweepSizes, config: directMapped,
			orig: traceT1, xform: transformT1,
		},
		{
			id: "sweep-t2", title: "inline nested (orig) vs outlined (transformed)",
			geometry: "32-byte blocks, 1-way, LRU",
			sizes:    DefaultSweepSizes, config: directMapped,
			orig: traceT2, xform: transformT2,
		},
		{
			id: "sweep-t2-hot", title: "hot-only loop: inline (orig) vs outlined (transformed)",
			geometry: "32-byte blocks, 1-way, LRU",
			sizes:    DefaultSweepSizes, config: directMapped,
			orig: traceT2Hot, xform: transformT2Hot,
		},
		{
			id: "sweep-t3", title: "contiguous (orig) vs set-pinned (transformed)",
			geometry: "32-byte blocks, 64-way, round-robin",
			sizes:    []int64{4096, 8192, 16384, 32768, 65536},
			config: func(size int64) cache.Config {
				return cache.Config{Size: size, BlockSize: 32, Assoc: 64, Repl: cache.ReplRoundRobin}
			},
			orig: traceT3, xform: transformT3,
		},
	}
}

// sweepEntry is the checkpointed value of one sweep task.
type sweepEntry struct {
	Misses int64 `json:"misses"`
}

// sweepSides names the two halves of a sweep point in checkpoint keys and
// error reports.
var sweepSides = [2]string{"orig", "xform"}

// runSweeps simulates the given specs' sweep points on a worker pool. Each
// task is one (spec, orig-or-xform) side: all of its cache sizes are
// evaluated in a single pass over the shared immutable record slice by the
// multi-config engine, so a full run touches each trace exactly twice (its
// two sides) instead of once per size. Results land in pre-assigned slots,
// so the output is byte-identical whatever the worker count. With a
// checkpoint, sizes persisted by an earlier run — even one made by the
// per-config engine, the keys are unchanged — are restored, and only the
// missing sizes are simulated (configs are independent, so a subset pass
// produces identical numbers). On error the partially-filled results are
// returned alongside it: completed points are valid (and, when
// checkpointed, already safe on disk).
func runSweeps(ctx context.Context, specs []sweepSpec, opts RunOptions) ([]*SweepResult, error) {
	if opts.Shards > 1 && !opts.Sampling.Exact() {
		return nil, fmt.Errorf("experiments: sharding and sampling cannot combine (interval windows depend on global record position)")
	}
	out := make([]*SweepResult, len(specs))
	type task struct{ spec, side int }
	var tasks []task
	for si, sp := range specs {
		r := &SweepResult{ID: sp.id, Title: sp.title, Geometry: sp.geometry,
			Points: make([]SweepPoint, len(sp.sizes))}
		for pi, size := range sp.sizes {
			r.Points[pi].CacheBytes = size
		}
		tasks = append(tasks, task{si, 0}, task{si, 1})
		out[si] = r
	}
	suffix := runKeySuffix(opts)
	key := func(tk task, pi int) string {
		sp := specs[tk.spec]
		return fmt.Sprintf("sweep/%s/%d/%s%s", sp.id, sp.sizes[pi], sweepSides[tk.side], suffix)
	}
	store := func(tk task, pi int, m int64) {
		if tk.side == 0 {
			out[tk.spec].Points[pi].MissesOrig = m
		} else {
			out[tk.spec].Points[pi].MissesXform = m
		}
	}
	name := func(ti int) string {
		tk := tasks[ti]
		return fmt.Sprintf("sweep/%s/%s", specs[tk.spec].id, sweepSides[tk.side])
	}
	ck := checkpointCounters()
	err := forEachPolicy(ctx, opts.Policy, opts.workerCount(), len(tasks), name, func(ctx context.Context, ti int) error {
		tk := tasks[ti]
		sp := specs[tk.spec]
		missing := make([]int, 0, len(sp.sizes))
		for pi := range sp.sizes {
			if opts.Checkpoint != nil {
				var saved sweepEntry
				if ok, err := opts.Checkpoint.Get(key(tk, pi), &saved); err != nil {
					return err
				} else if ok {
					ck.hits.Inc()
					store(tk, pi, saved.Misses)
					continue
				}
				ck.misses.Inc()
			}
			missing = append(missing, pi)
		}
		if len(missing) == 0 {
			return nil
		}
		recsOf := sp.orig
		if tk.side == 1 {
			recsOf = sp.xform
		}
		recs, err := recsOf()
		if err != nil {
			return err
		}
		// The result cache is consulted per missing config: hits restore
		// the stored misses (and backfill the checkpoint), only the rest
		// simulate. Keys carry the run's tier suffix, so sampled, sharded
		// and exact results never cross.
		cacheKey := func(pi int) simcache.Key { return simcache.Key{} }
		if opts.SimCache != nil {
			traceHash := simcache.HashRecords(recs)
			cacheKey = func(pi int) simcache.Key {
				return simcache.Key{
					Trace:    traceHash,
					Config:   simcache.ConfigSig(sp.config(sp.sizes[pi])),
					Sampling: suffix,
					Engine:   simcache.EngineVersion,
				}
			}
			still := missing[:0]
			for _, pi := range missing {
				e, ok, err := opts.SimCache.Get(cacheKey(pi))
				if err != nil {
					return err
				}
				if !ok {
					still = append(still, pi)
					continue
				}
				store(tk, pi, e.Misses)
				if opts.Checkpoint != nil {
					ck.puts.Inc()
					if err := opts.Checkpoint.Put(key(tk, pi), sweepEntry{Misses: e.Misses}); err != nil {
						return err
					}
				}
			}
			missing = still
			if len(missing) == 0 {
				return nil
			}
		}
		cfgs := make([]cache.Config, len(missing))
		for i, pi := range missing {
			cfgs[i] = sp.config(sp.sizes[pi])
		}
		var misses []int64
		if opts.Shards > 1 {
			misses, err = sweepMissesSharded(ctx, recs, cfgs, opts.Shards)
		} else {
			misses, err = sweepMisses(ctx, recs, cfgs, opts.Sampling)
		}
		if err != nil {
			return err
		}
		for i, pi := range missing {
			store(tk, pi, misses[i])
			if opts.Checkpoint != nil {
				ck.puts.Inc()
				if err := opts.Checkpoint.Put(key(tk, pi), sweepEntry{Misses: misses[i]}); err != nil {
					return err
				}
			}
			if opts.SimCache != nil {
				if err := opts.SimCache.Put(cacheKey(pi), simcache.Entry{
					Records: int64(len(recs)), Misses: misses[i],
				}); err != nil {
					return err
				}
			}
		}
		return nil
	})
	return out, err
}

func sweepByID(id string) (*SweepResult, error) {
	for _, sp := range sweepSpecs() {
		if sp.id == id {
			out, err := runSweeps(context.Background(), []sweepSpec{sp}, DefaultRunOptions())
			if err != nil {
				return nil, err
			}
			return out[0], nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown sweep %q", id)
}

// SweepT1 sweeps transformation 1 (SoA vs AoS) across cache sizes.
func SweepT1() (*SweepResult, error) { return sweepByID("sweep-t1") }

// SweepT2 sweeps transformation 2 (inline vs outlined) across cache sizes.
func SweepT2() (*SweepResult, error) { return sweepByID("sweep-t2") }

// SweepT3 sweeps transformation 3 (contiguous vs set-pinned) on a 64-way
// round-robin geometry scaled down with size.
func SweepT3() (*SweepResult, error) { return sweepByID("sweep-t3") }

// SweepT2Hot sweeps transformation 2 under its intended access pattern — a
// loop touching only the hot member. The full-touch sweeps above honestly
// show the transformations losing (padding and indirection cost extra
// blocks when every member is touched once); outlining pays off when the
// cold members stay cold.
func SweepT2Hot() (*SweepResult, error) { return sweepByID("sweep-t2-hot") }

// Sweeps runs all layout sweeps, fanning the individual simulations out
// over the configured worker pool (SetParallelism) under the configured
// RunPolicy (SetPolicy). Each workload is traced and transformed exactly
// once; results are byte-identical to a serial run.
func Sweeps() ([]*SweepResult, error) {
	return SweepsOpts(context.Background(), DefaultRunOptions())
}

// SweepsParallel is Sweeps with an explicit worker count (1 = serial).
func SweepsParallel(workers int) ([]*SweepResult, error) {
	opts := DefaultRunOptions()
	opts.Workers = workers
	return SweepsOpts(context.Background(), opts)
}

// SweepsOpts runs all layout sweeps under explicit run options: the
// context cancels the run (SIGINT wiring lives in cmd/experiments), the
// policy shapes per-task failure handling, and a non-nil checkpoint makes
// the run crash-resumable. On error, the partial results computed (or
// restored) so far are returned with it — in KeepGoing mode the error is a
// TaskErrors listing every failed simulation while the rest completed.
func SweepsOpts(ctx context.Context, opts RunOptions) ([]*SweepResult, error) {
	return runSweeps(ctx, sweepSpecs(), opts)
}
