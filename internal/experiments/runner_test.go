package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		var done [50]int32
		err := forEach(context.Background(), workers, len(done), func(_ context.Context, i int) error {
			atomic.AddInt32(&done[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range done {
			if done[i] != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, done[i])
			}
		}
	}
}

func TestForEachFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var ran int32
		err := forEach(context.Background(), workers, 1000, func(_ context.Context, i int) error {
			atomic.AddInt32(&ran, 1)
			if i == 3 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		if n := atomic.LoadInt32(&ran); int(n) == 1000 {
			t.Errorf("workers=%d: cancellation did not skip queued tasks", workers)
		}
	}
}

func TestForEachParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := forEach(ctx, 4, 10, func(context.Context, int) error { return nil })
	if err == nil {
		t.Error("cancelled parent context not reported")
	}
}

func TestSetParallelismClamps(t *testing.T) {
	prev := SetParallelism(-3)
	defer SetParallelism(prev)
	if got := Parallelism(); got != 1 {
		t.Errorf("parallelism after SetParallelism(-3) = %d, want 1", got)
	}
}

// fingerprintResults renders every observable part of a figure run so the
// serial and parallel paths can be compared byte-for-byte.
func fingerprintResults(rs []*Result) string {
	var b strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&b, "== %s | %s | %s | records=%d\n", r.ID, r.Title, r.Cache, r.Records)
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "note: %s\n", n)
		}
		if r.Plot != nil {
			b.WriteString(r.Plot.CSV())
		}
		if r.Diff != nil {
			fmt.Fprintf(&b, "diff: %+v\n", r.Diff.Stats())
		}
		b.WriteString(r.SimReport)
	}
	return b.String()
}

func fingerprintSweeps(ss []*SweepResult) string {
	var b strings.Builder
	for _, s := range ss {
		b.WriteString(s.Table())
	}
	return b.String()
}

// TestParallelDeterminism is the acceptance gate for the concurrent runner:
// parallel and serial runs of Sweeps() and the full figure regeneration
// must produce byte-identical output. Run under -race this also exercises
// the shared-trace/shared-symtab paths for data races.
func TestParallelDeterminism(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 4
	}

	serialSweeps, err := SweepsParallel(1)
	if err != nil {
		t.Fatal(err)
	}
	parallelSweeps, err := SweepsParallel(workers)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprintSweeps(parallelSweeps), fingerprintSweeps(serialSweeps); got != want {
		t.Errorf("parallel sweeps differ from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", want, got)
	}

	serialFigs, err := AllParallel(1)
	if err != nil {
		t.Fatal(err)
	}
	parallelFigs, err := AllParallel(workers)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprintResults(parallelFigs), fingerprintResults(serialFigs); got != want {
		t.Errorf("parallel figures differ from serial (lengths %d vs %d)", len(got), len(want))
	}
}
