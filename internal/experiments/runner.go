package experiments

import (
	"context"
	"runtime"
	"sync"

	"tracedst/internal/trace"
)

// sharedSyms is the intern table every experiment trace and simulator
// shares: traces are interned once when memoized, after which record slices
// are immutable and safe to share across the worker pool, and simulators
// attribute by integer id without touching strings.
var sharedSyms = trace.NewSymTab()

var (
	parMu       sync.Mutex
	parallelism = runtime.GOMAXPROCS(0)
)

// SetParallelism sets the worker count Sweeps and All fan out to (values
// below 1 are clamped to 1, i.e. fully serial) and returns the previous
// setting. cmd/experiments wires its -parallel flag here.
func SetParallelism(n int) int {
	parMu.Lock()
	defer parMu.Unlock()
	prev := parallelism
	if n < 1 {
		n = 1
	}
	parallelism = n
	return prev
}

// Parallelism returns the current worker count (default GOMAXPROCS).
func Parallelism() int {
	parMu.Lock()
	defer parMu.Unlock()
	return parallelism
}

// forEach runs f(ctx, i) for every i in [0, n) on a pool of workers,
// errgroup-style: the first error cancels the context, remaining queued
// tasks are skipped, and that first error is returned. With one worker it
// degenerates to a plain serial loop. Tasks must write only to their own
// slot of any shared output slice; forEach guarantees all writes are
// visible to the caller when it returns.
func forEach(ctx context.Context, workers, n int, f func(context.Context, int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := f(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}

	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain without working after cancellation
				}
				if err := f(ctx, i); err != nil {
					fail(err)
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	errMu.Lock()
	defer errMu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
