package experiments

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"tracedst/internal/trace"
)

// sharedSyms is the intern table every experiment trace and simulator
// shares: traces are interned once when memoized, after which record slices
// are immutable and safe to share across the worker pool, and simulators
// attribute by integer id without touching strings.
var sharedSyms = trace.NewSymTab()

var (
	parMu       sync.Mutex
	parallelism = runtime.GOMAXPROCS(0)
)

// SetParallelism sets the worker count Sweeps and All fan out to (values
// below 1 are clamped to 1, i.e. fully serial) and returns the previous
// setting. cmd/experiments wires its -parallel flag here.
func SetParallelism(n int) int {
	parMu.Lock()
	defer parMu.Unlock()
	prev := parallelism
	if n < 1 {
		n = 1
	}
	parallelism = n
	return prev
}

// Parallelism returns the current worker count (default GOMAXPROCS).
func Parallelism() int {
	parMu.Lock()
	defer parMu.Unlock()
	return parallelism
}

// RunOptions bundles everything that shapes a resilient batch run: worker
// count, failure policy, and the checkpoint store (nil = no persistence).
type RunOptions struct {
	// Workers is the pool size; values below 1 mean the SetParallelism
	// default.
	Workers int
	// Policy is the per-task failure policy.
	Policy RunPolicy
	// Checkpoint, when non-nil, is consulted before each task (completed
	// tasks are skipped, their stored results reused) and updated after
	// each task completes — the resume path of cmd/experiments.
	Checkpoint *Checkpoint
}

// workerCount resolves the effective pool size.
func (o *RunOptions) workerCount() int {
	if o.Workers < 1 {
		return Parallelism()
	}
	return o.Workers
}

// DefaultRunOptions is the options Sweeps/All use: the process-wide
// parallelism and policy, no checkpointing.
func DefaultRunOptions() RunOptions {
	return RunOptions{Workers: Parallelism(), Policy: Policy()}
}

// forEach runs f(ctx, i) for every i in [0, n) on a pool of workers with
// the zero RunPolicy: errgroup-style first-error-cancels semantics, panics
// isolated into errors. Tasks must write only to their own slot of any
// shared output slice; forEach guarantees all writes are visible to the
// caller when it returns.
func forEach(ctx context.Context, workers, n int, f func(context.Context, int) error) error {
	return forEachPolicy(ctx, RunPolicy{}, workers, n, nil, f)
}

// forEachPolicy runs f(ctx, i) for every i in [0, n) on a pool of workers
// under pol. Every invocation is panic-isolated (a panicking task becomes a
// *PanicError, the pool and process survive), deadline-bounded and retried
// per the policy. Without KeepGoing the first failure cancels the run and
// is returned as a *TaskError; with KeepGoing every task runs and all
// failures return together as TaskErrors, ordered by task index. name,
// when non-nil, labels tasks in error reports. With one worker the pool
// degenerates to a plain serial loop.
func forEachPolicy(ctx context.Context, pol RunPolicy, workers, n int, name func(int) string, f func(context.Context, int) error) error {
	taskErr := func(i, attempts int, err error) *TaskError {
		te := &TaskError{Index: i, Attempts: attempts, Err: err}
		if name != nil {
			te.Name = name(i)
		}
		return te
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var tes TaskErrors
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return keepGoingResult(tes, err)
			}
			attempts, err := runTask(ctx, &pol, i, f)
			if err != nil {
				if !pol.KeepGoing {
					return taskErr(i, attempts, err)
				}
				tes = append(tes, taskErr(i, attempts, err))
				continue
			}
			if pol.afterTask != nil {
				pol.afterTask(i)
			}
		}
		return keepGoingResult(tes, ctx.Err())
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		tes      TaskErrors
	)
	fail := func(te *TaskError) {
		errMu.Lock()
		defer errMu.Unlock()
		if pol.KeepGoing {
			tes = append(tes, te)
			return
		}
		if firstErr == nil {
			firstErr = te
		}
		cancel()
	}

	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if runCtx.Err() != nil {
					continue // drain without working after cancellation
				}
				attempts, err := runTask(runCtx, &pol, i, f)
				if err != nil {
					fail(taskErr(i, attempts, err))
					continue
				}
				if pol.afterTask != nil {
					pol.afterTask(i)
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-runCtx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	errMu.Lock()
	defer errMu.Unlock()
	if pol.KeepGoing {
		return keepGoingResult(tes, ctx.Err())
	}
	if firstErr != nil {
		return firstErr
	}
	return runCtx.Err()
}

// keepGoingResult folds a KeepGoing run's collected failures and the
// run-level context error into one return value: nil when everything
// succeeded, the sorted TaskErrors when only tasks failed, the context
// error when the run was cut short, and both joined when each happened.
func keepGoingResult(tes TaskErrors, ctxErr error) error {
	if len(tes) == 0 {
		if ctxErr != nil {
			return ctxErr
		}
		return nil
	}
	tes.sortByIndex()
	if ctxErr != nil {
		return errors.Join(ctxErr, tes)
	}
	return tes
}
