package experiments

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tracedst/internal/dinero"
	"tracedst/internal/simcache"
	"tracedst/internal/telemetry"
	"tracedst/internal/trace"
)

// sharedSyms is the intern table every experiment trace and simulator
// shares: traces are interned once when memoized, after which record slices
// are immutable and safe to share across the worker pool, and simulators
// attribute by integer id without touching strings.
var sharedSyms = trace.NewSymTab()

var (
	parMu       sync.Mutex
	parallelism = runtime.GOMAXPROCS(0)
)

// SetParallelism sets the worker count Sweeps and All fan out to (values
// below 1 are clamped to 1, i.e. fully serial) and returns the previous
// setting. cmd/experiments wires its -parallel flag here.
func SetParallelism(n int) int {
	parMu.Lock()
	defer parMu.Unlock()
	prev := parallelism
	if n < 1 {
		n = 1
	}
	parallelism = n
	return prev
}

// Parallelism returns the current worker count (default GOMAXPROCS).
func Parallelism() int {
	parMu.Lock()
	defer parMu.Unlock()
	return parallelism
}

// RunOptions bundles everything that shapes a resilient batch run: worker
// count, failure policy, and the checkpoint store (nil = no persistence).
type RunOptions struct {
	// Workers is the pool size; values below 1 mean the SetParallelism
	// default.
	Workers int
	// Policy is the per-task failure policy.
	Policy RunPolicy
	// Checkpoint, when non-nil, is consulted before each task (completed
	// tasks are skipped, their stored results reused) and updated after
	// each task completes — the resume path of cmd/experiments.
	Checkpoint *Checkpoint
	// Sampling selects the sweeps' approximation tier (exact when zero).
	// Sampled results are estimates: they checkpoint under distinct keys
	// and never mix with exact ones.
	Sampling dinero.Sampling
	// Shards > 1 splits each sweep side's record stream into that many
	// contiguous shards simulated in parallel on cold caches and merges
	// the per-config statistics with cache.Stats.Merge. The result equals
	// a serial run that flushes the cache at every shard boundary, so it
	// checkpoints under distinct keys and never mixes with unsharded
	// results. Incompatible with non-exact Sampling.
	Shards int
	// SimCache, when non-nil, memoizes finished sweep simulations on disk,
	// content-addressed by (trace hash, config, result tier, engine
	// version). Unlike Checkpoint — which keys by task name and is scoped
	// to one resumable run — the result cache recognizes identical work
	// across runs, specs and processes. Both can be active at once.
	SimCache *simcache.Store
}

// workerCount resolves the effective pool size.
func (o *RunOptions) workerCount() int {
	if o.Workers < 1 {
		return Parallelism()
	}
	return o.Workers
}

// DefaultRunOptions is the options Sweeps/All use: the process-wide
// parallelism and policy, no checkpointing.
func DefaultRunOptions() RunOptions {
	return RunOptions{Workers: Parallelism(), Policy: Policy()}
}

// forEach runs f(ctx, i) for every i in [0, n) on a pool of workers with
// the zero RunPolicy: errgroup-style first-error-cancels semantics, panics
// isolated into errors. Tasks must write only to their own slot of any
// shared output slice; forEach guarantees all writes are visible to the
// caller when it returns.
func forEach(ctx context.Context, workers, n int, f func(context.Context, int) error) error {
	return forEachPolicy(ctx, RunPolicy{}, workers, n, nil, f)
}

// runInstruments is the telemetry of one pooled run: per-task counters
// and spans, the task-duration histogram, worker busy time for the
// utilization gauge, and the periodic progress line. Everything it
// touches is atomic or registry-internal, so workers share it freely.
type runInstruments struct {
	reg    *telemetry.Registry
	tasks  *telemetry.Counter
	ok     *telemetry.Counter
	failed *telemetry.Counter
	retry  *telemetry.Counter
	panics *telemetry.Counter
	taskNS *telemetry.Histogram
	prog   *telemetry.Progress
	busyNS atomic.Int64
	start  time.Time
}

func newRunInstruments(n int) *runInstruments {
	reg := telemetry.Default()
	return &runInstruments{
		reg:    reg,
		tasks:  reg.Counter("experiments.tasks"),
		ok:     reg.Counter("experiments.tasks_ok"),
		failed: reg.Counter("experiments.tasks_failed"),
		retry:  reg.Counter("experiments.retries"),
		panics: reg.Counter("experiments.panics"),
		taskNS: reg.Histogram("experiments.task_ns"),
		prog:   telemetry.StartProgress("tasks", n, telemetry.ProgressInterval()),
		start:  time.Now(),
	}
}

// runTask wraps the raw policy runner with a span, the duration
// histogram, progress accounting, and — on failure — one structured
// event per TaskError/PanicError emitted the moment it happens (the
// -keep-going sink: failures surface immediately, not only in the final
// error list).
func (ins *runInstruments) runTask(ctx context.Context, pol *RunPolicy, i int, label string, f func(context.Context, int) error) (int, error) {
	sp := ins.reg.StartSpan("task/" + label)
	attempts, err := runTask(ctx, pol, i, f)
	wall := sp.End()
	ins.busyNS.Add(int64(wall))
	ins.taskNS.Observe(int64(wall))
	ins.tasks.Inc()
	if attempts > 1 {
		ins.retry.Add(int64(attempts - 1))
	}
	ins.prog.Add(1)
	if err == nil {
		ins.ok.Inc()
		return attempts, nil
	}
	ins.failed.Inc()
	attrs := []any{"task", label, "attempts", attempts, "err", err.Error()}
	var pe *PanicError
	if errors.As(err, &pe) {
		ins.panics.Inc()
		attrs = []any{"task", label, "attempts", attempts, "panic", true,
			"err", toString(pe.Value), "stack", string(pe.Stack)}
	}
	telemetry.L().Error("task failed", attrs...)
	return attempts, err
}

// finish closes the progress line and records worker utilization: the
// fraction of worker-seconds actually spent inside tasks.
func (ins *runInstruments) finish(workers int) {
	ins.prog.Stop()
	elapsed := time.Since(ins.start)
	if workers < 1 || elapsed <= 0 {
		return
	}
	ins.reg.Gauge("experiments.workers").Set(int64(workers))
	util := 100 * ins.busyNS.Load() / (int64(elapsed) * int64(workers))
	if util > 100 {
		util = 100 // rounding under near-full load
	}
	ins.reg.Gauge("experiments.worker_utilization_pct").Set(util)
}

// toString renders a recovered panic value for a structured event.
func toString(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	if e, ok := v.(error); ok {
		return e.Error()
	}
	return "panic"
}

// forEachPolicy runs f(ctx, i) for every i in [0, n) on a pool of workers
// under pol. Every invocation is panic-isolated (a panicking task becomes a
// *PanicError, the pool and process survive), deadline-bounded and retried
// per the policy. Without KeepGoing the first failure cancels the run and
// is returned as a *TaskError; with KeepGoing every task runs and all
// failures return together as TaskErrors, ordered by task index. name,
// when non-nil, labels tasks in error reports. With one worker the pool
// degenerates to a plain serial loop.
func forEachPolicy(ctx context.Context, pol RunPolicy, workers, n int, name func(int) string, f func(context.Context, int) error) error {
	taskErr := func(i, attempts int, err error) *TaskError {
		te := &TaskError{Index: i, Attempts: attempts, Err: err}
		if name != nil {
			te.Name = name(i)
		}
		return te
	}
	if workers > n {
		workers = n
	}
	label := func(i int) string {
		if name != nil {
			return name(i)
		}
		return "task"
	}
	ins := newRunInstruments(n)
	effWorkers := workers
	if effWorkers < 1 {
		effWorkers = 1
	}
	defer ins.finish(effWorkers)
	if workers <= 1 {
		var tes TaskErrors
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return keepGoingResult(tes, err)
			}
			attempts, err := ins.runTask(ctx, &pol, i, label(i), f)
			if err != nil {
				if !pol.KeepGoing {
					return taskErr(i, attempts, err)
				}
				tes = append(tes, taskErr(i, attempts, err))
				continue
			}
			if pol.afterTask != nil {
				pol.afterTask(i)
			}
		}
		return keepGoingResult(tes, ctx.Err())
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		tes      TaskErrors
	)
	fail := func(te *TaskError) {
		errMu.Lock()
		defer errMu.Unlock()
		if pol.KeepGoing {
			tes = append(tes, te)
			return
		}
		if firstErr == nil {
			firstErr = te
		}
		cancel()
	}

	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if runCtx.Err() != nil {
					continue // drain without working after cancellation
				}
				attempts, err := ins.runTask(runCtx, &pol, i, label(i), f)
				if err != nil {
					fail(taskErr(i, attempts, err))
					continue
				}
				if pol.afterTask != nil {
					pol.afterTask(i)
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-runCtx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	errMu.Lock()
	defer errMu.Unlock()
	if pol.KeepGoing {
		return keepGoingResult(tes, ctx.Err())
	}
	if firstErr != nil {
		return firstErr
	}
	return runCtx.Err()
}

// keepGoingResult folds a KeepGoing run's collected failures and the
// run-level context error into one return value: nil when everything
// succeeded, the sorted TaskErrors when only tasks failed, the context
// error when the run was cut short, and both joined when each happened.
func keepGoingResult(tes TaskErrors, ctxErr error) error {
	if len(tes) == 0 {
		if ctxErr != nil {
			return ctxErr
		}
		return nil
	}
	tes.sortByIndex()
	if ctxErr != nil {
		return errors.Join(ctxErr, tes)
	}
	return tes
}
