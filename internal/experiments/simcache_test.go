package experiments

import (
	"context"
	"testing"

	"tracedst/internal/simcache"
	"tracedst/internal/telemetry"
)

func openSimCache(t *testing.T, dir string) (*simcache.Store, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	sc, err := simcache.Open(dir, reg)
	if err != nil {
		t.Fatal(err)
	}
	return sc, reg
}

// TestSweepSimCacheSecondRunAllHits is the cache-determinism property:
// the same sweep against the same cache directory runs once cold (every
// lookup a miss, every result stored) and once entirely from the cache
// (zero misses), with bit-identical results.
func TestSweepSimCacheSecondRunAllHits(t *testing.T) {
	dir := t.TempDir()

	sc1, reg1 := openSimCache(t, dir)
	first, err := SweepsOpts(context.Background(), RunOptions{Workers: 2, SimCache: sc1})
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprintSweeps(first)
	lookups := reg1.Counter("simcache.lookups").Value()
	if lookups == 0 {
		t.Fatal("cold run never consulted the cache")
	}
	if hits := reg1.Counter("simcache.hits").Value(); hits != 0 {
		t.Errorf("cold run: %d hits, want 0", hits)
	}
	if m, p := reg1.Counter("simcache.misses").Value(), reg1.Counter("simcache.puts").Value(); m != lookups || p != m {
		t.Errorf("cold run: lookups %d misses %d puts %d, want all equal", lookups, m, p)
	}

	// A fresh handle over the same directory, as a separate process.
	sc2, reg2 := openSimCache(t, dir)
	second, err := SweepsOpts(context.Background(), RunOptions{Workers: 4, SimCache: sc2})
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprintSweeps(second); got != want {
		t.Errorf("cached results differ from the cold run:\n--- cold ---\n%s\n--- cached ---\n%s", want, got)
	}
	if m := reg2.Counter("simcache.misses").Value(); m != 0 {
		t.Errorf("warm run: %d misses, want 0", m)
	}
	if h := reg2.Counter("simcache.hits").Value(); h != lookups {
		t.Errorf("warm run: %d hits, want %d (one per cold-run lookup)", h, lookups)
	}
	if p := reg2.Counter("simcache.puts").Value(); p != 0 {
		t.Errorf("warm run stored %d entries, want 0", p)
	}
}

// TestSweepSimCacheBackfillsCheckpoint: a cache hit also lands in the
// run's checkpoint, so a later resume on the checkpoint alone replays
// without touching either the trace or the cache.
func TestSweepSimCacheBackfillsCheckpoint(t *testing.T) {
	dir := t.TempDir()
	sc1, _ := openSimCache(t, dir)
	first, err := SweepsOpts(context.Background(), RunOptions{Workers: 2, SimCache: sc1})
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprintSweeps(first)

	ckDir := t.TempDir()
	ck, err := OpenCheckpoint(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	sc2, reg2 := openSimCache(t, dir)
	if _, err := SweepsOpts(context.Background(), RunOptions{Workers: 2, SimCache: sc2, Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	if m := reg2.Counter("simcache.misses").Value(); m != 0 {
		t.Fatalf("warm run: %d misses, want 0", m)
	}
	if ck.Len() == 0 {
		t.Fatal("cache hits were not backfilled into the checkpoint")
	}

	// Checkpoint-only replay: no cache handle at all.
	ck2, err := OpenCheckpoint(ckDir)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := SweepsOpts(context.Background(), RunOptions{Workers: 2, Checkpoint: ck2})
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprintSweeps(replayed); got != want {
		t.Errorf("checkpoint replay of cached results differs:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}

// TestSweepSimCacheShardTierIsSeparate: sharded sweeps equal a
// flush-at-boundary serial run, not an unflushed one, so their results
// live under a distinct key tier and never answer exact serial lookups
// (or vice versa).
func TestSweepSimCacheShardTierIsSeparate(t *testing.T) {
	dir := t.TempDir()
	sc1, _ := openSimCache(t, dir)
	if _, err := SweepsOpts(context.Background(), RunOptions{Workers: 2, SimCache: sc1}); err != nil {
		t.Fatal(err)
	}
	sc2, reg2 := openSimCache(t, dir)
	if _, err := SweepsOpts(context.Background(), RunOptions{Workers: 2, Shards: 2, SimCache: sc2}); err != nil {
		t.Fatal(err)
	}
	if h := reg2.Counter("simcache.hits").Value(); h != 0 {
		t.Errorf("sharded run hit %d serial-tier entries", h)
	}
	if m := reg2.Counter("simcache.misses").Value(); m == 0 {
		t.Error("sharded run never consulted the cache")
	}
}
