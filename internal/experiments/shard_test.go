package experiments

import (
	"context"
	"testing"

	"tracedst/internal/dinero"
)

// TestSweepShardedMatchesFlushSerial pins the sharded engine's guarantee:
// for every spec, side and size of the standard sweeps, the shard-merged
// miss count equals a serial single-pass run that flushes every
// configuration at the same record boundaries.
func TestSweepShardedMatchesFlushSerial(t *testing.T) {
	ctx := context.Background()
	for _, sd := range loadEngineSides(t) {
		for _, shards := range []int{2, 4} {
			got, err := sweepMissesSharded(ctx, sd.recs, sd.cfgs, shards)
			if err != nil {
				t.Fatal(err)
			}

			// Serial reference: one MultiSim, Flush at each shard boundary.
			ms, err := dinero.NewMulti(dinero.MultiOptions{Configs: sd.cfgs, StatsOnly: true})
			if err != nil {
				t.Fatal(err)
			}
			eff := shards
			if eff > len(sd.recs) {
				eff = len(sd.recs)
			}
			for i := 0; i < eff; i++ {
				lo := len(sd.recs) * i / eff
				hi := len(sd.recs) * (i + 1) / eff
				if i > 0 {
					ms.Flush()
				}
				ms.Process(sd.recs[lo:hi])
			}
			for i, cfg := range sd.cfgs {
				want := ms.Stats(i).Misses()
				if got[i] != want {
					t.Errorf("%s size %d shards=%d: sharded misses %d != flush-serial misses %d",
						sd.id, cfg.Size, shards, got[i], want)
				}
			}
		}
	}
}

// TestSweepShardedDegenerate: one shard (or tiny inputs) falls back to the
// plain single-pass engine.
func TestSweepShardedDegenerate(t *testing.T) {
	ctx := context.Background()
	sd := loadEngineSides(t)[0]
	serial, err := sweepMisses(ctx, sd.recs, sd.cfgs, dinero.Sampling{})
	if err != nil {
		t.Fatal(err)
	}
	one, err := sweepMissesSharded(ctx, sd.recs, sd.cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if one[i] != serial[i] {
			t.Errorf("config %d: 1-shard misses %d != serial %d", i, one[i], serial[i])
		}
	}
}

// TestSweepsShardedCheckpointSeparation: sharded results equal a
// flush-at-boundary run, not a plain serial one — they must checkpoint
// under distinct keys and never replay into unsharded entries.
func TestSweepsShardedCheckpointSeparation(t *testing.T) {
	dir := t.TempDir()
	ck, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SweepsOpts(context.Background(), RunOptions{Workers: 1, Checkpoint: ck}); err != nil {
		t.Fatal(err)
	}
	exactKeys := ck.Len()
	if _, err := SweepsOpts(context.Background(), RunOptions{Workers: 1, Checkpoint: ck, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	if ck.Len() == exactKeys {
		t.Fatal("sharded run reused unsharded checkpoint entries")
	}
}

// TestSweepsShardsRejectSampling: sharding and sampling cannot combine —
// interval windows depend on global record position.
func TestSweepsShardsRejectSampling(t *testing.T) {
	_, err := SweepsOpts(context.Background(), RunOptions{
		Workers: 1, Shards: 2, Sampling: dinero.Sampling{Interval: 4},
	})
	if err == nil {
		t.Fatal("sharded sampled run accepted")
	}
}
