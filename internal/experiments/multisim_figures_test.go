package experiments

import (
	"testing"

	"tracedst/internal/analysis"
	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/trace"
)

// TestFigureMultiSimParity: the histogram figures now simulate through
// the single-pass multi-config engine; their rendered report and per-set
// plot must stay byte-identical to the per-config Simulator path they
// replaced.
func TestFigureMultiSimParity(t *testing.T) {
	cases := []struct {
		id    string
		trace func() ([]trace.Record, error)
		cfg   cache.Config
	}{
		{"fig3", traceT1, cache.Paper32KDirect()},
		{"fig4", transformT1, cache.Paper32KDirect()},
		{"fig6", traceT2, cache.Paper32KDirect()},
		{"fig7", transformT2, cache.Paper32KDirect()},
		{"fig10", traceT3, cache.PowerPC440()},
		{"fig11", transformT3, cache.PowerPC440()},
	}
	for _, c := range cases {
		t.Run(c.id, func(t *testing.T) {
			r, err := Run(c.id)
			if err != nil {
				t.Fatal(err)
			}
			recs, err := c.trace()
			if err != nil {
				t.Fatal(err)
			}
			ref, err := dinero.New(dinero.Options{L1: c.cfg, Syms: sharedSyms})
			if err != nil {
				t.Fatal(err)
			}
			ref.Process(recs)
			if want := ref.Report(); r.SimReport != want {
				t.Errorf("MultiSim report diverges from independent Simulator:\n--- want ---\n%s\n--- got ---\n%s", want, r.SimReport)
			}
			want := analysis.FromSimulator(r.Title, ref, false)
			if got := r.Plot.CSV(); got != want.CSV() {
				t.Errorf("MultiSim plot diverges from independent Simulator:\n--- want ---\n%s\n--- got ---\n%s", want.CSV(), got)
			}
		})
	}
}
