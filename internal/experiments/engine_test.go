package experiments

import (
	"context"
	"testing"
	"time"

	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/trace"
)

// sweepSides loads every (spec, side) of the standard sweeps with its
// record slice and per-size configs — the unit both engines consume.
type engineSide struct {
	id   string
	recs []trace.Record
	cfgs []cache.Config
}

func loadEngineSides(tb testing.TB) []engineSide {
	var out []engineSide
	for _, sp := range sweepSpecs() {
		for sd, recsOf := range []func() ([]trace.Record, error){sp.orig, sp.xform} {
			recs, err := recsOf()
			if err != nil {
				tb.Fatal(err)
			}
			cfgs := make([]cache.Config, len(sp.sizes))
			for i, size := range sp.sizes {
				cfgs[i] = sp.config(size)
			}
			out = append(out, engineSide{sp.id + "/" + sweepSides[sd], recs, cfgs})
		}
	}
	return out
}

// TestSweepEnginesEquivalent pins the rewire's core guarantee: the
// single-pass engine returns, for every spec, side and size of the
// standard sweeps, exactly the miss count the per-config engine computes.
func TestSweepEnginesEquivalent(t *testing.T) {
	ctx := context.Background()
	for _, sd := range loadEngineSides(t) {
		multi, err := sweepMisses(ctx, sd.recs, sd.cfgs, dinero.Sampling{})
		if err != nil {
			t.Fatal(err)
		}
		for i, cfg := range sd.cfgs {
			per, err := missesAt(ctx, sd.recs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if per != multi[i] {
				t.Errorf("%s size %d: single-pass misses %d != per-config misses %d",
					sd.id, cfg.Size, multi[i], per)
			}
		}
	}
}

// TestSweepsSamplingCheckpointSeparation: sampled runs must not replay
// exact checkpoint entries (or vice versa) — their keys differ.
func TestSweepsSamplingCheckpointSeparation(t *testing.T) {
	dir := t.TempDir()
	ck, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := SweepsOpts(context.Background(), RunOptions{Workers: 1, Checkpoint: ck})
	if err != nil {
		t.Fatal(err)
	}
	exactKeys := ck.Len()
	sampled, err := SweepsOpts(context.Background(), RunOptions{
		Workers: 1, Checkpoint: ck, Sampling: dinero.Sampling{SetFactor: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ck.Len() == exactKeys {
		t.Fatal("sampled run reused exact checkpoint entries")
	}
	// The sampled estimate should be in the right ballpark of the exact
	// totals (the golden suite measures tight per-workload bounds; this
	// guards the plumbing: scaling applied exactly once).
	for si, ex := range exact {
		for pi, p := range ex.Points {
			est := sampled[si].Points[pi]
			if p.MissesOrig > 1000 {
				ratio := float64(est.MissesOrig) / float64(p.MissesOrig)
				if ratio < 0.5 || ratio > 2.0 {
					t.Errorf("%s size %d: sampled orig misses %d vs exact %d (ratio %.2f)",
						ex.ID, p.CacheBytes, est.MissesOrig, p.MissesOrig, ratio)
				}
			}
		}
	}
}

// BenchmarkSweepEngines interleaves the three sweep engines over the full
// standard sweep — per-config (one Simulator per size), single-pass
// multi-config, and sampled multi-config (sets/8 + every 4th window) — in
// one benchmark so scheduler noise hits all three equally. benchguard
// gates perconfig_ns/op / multisim_ns/op ≥ 3 in CI.
func BenchmarkSweepEngines(b *testing.B) {
	sides := loadEngineSides(b)
	ctx := context.Background()
	sampled := dinero.Sampling{SetFactor: 8, Interval: 4}
	var tPer, tMulti, tSampled time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		for _, sd := range sides {
			for _, cfg := range sd.cfgs {
				if _, err := missesAt(ctx, sd.recs, cfg); err != nil {
					b.Fatal(err)
				}
			}
		}
		tPer += time.Since(start)

		start = time.Now()
		for _, sd := range sides {
			if _, err := sweepMisses(ctx, sd.recs, sd.cfgs, dinero.Sampling{}); err != nil {
				b.Fatal(err)
			}
		}
		tMulti += time.Since(start)

		start = time.Now()
		for _, sd := range sides {
			if _, err := sweepMisses(ctx, sd.recs, sd.cfgs, sampled); err != nil {
				b.Fatal(err)
			}
		}
		tSampled += time.Since(start)
	}
	b.ReportMetric(float64(tPer.Nanoseconds())/float64(b.N), "perconfig_ns/op")
	b.ReportMetric(float64(tMulti.Nanoseconds())/float64(b.N), "multisim_ns/op")
	b.ReportMetric(float64(tSampled.Nanoseconds())/float64(b.N), "sampled_ns/op")
	if tMulti > 0 {
		b.ReportMetric(tPer.Seconds()/tMulti.Seconds(), "speedup")
	}
}
