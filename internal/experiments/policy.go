package experiments

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"
)

// RunPolicy shapes how the worker pool treats individual tasks. The zero
// value reproduces the historical behaviour — no deadline, no retries,
// first error cancels the run — except that worker panics are always
// converted to errors instead of crashing the process.
type RunPolicy struct {
	// TaskTimeout, when positive, bounds each task with its own deadline:
	// the task's context is cancelled once the budget elapses. Enforcement
	// is cooperative — tasks observe it at their periodic context checks
	// (the simulator between record batches, the interpreter between
	// statements), so a timed-out task returns within one check interval
	// of the deadline.
	TaskTimeout time.Duration
	// Retries is how many times a task that failed with a *transient*
	// error (see Transient) is re-run before the failure counts. Zero
	// disables retrying.
	Retries int
	// RetryBackoff is the sleep before the first retry, doubled on each
	// further attempt. Zero means retry immediately.
	RetryBackoff time.Duration
	// Transient classifies errors worth retrying. Nil means
	// DefaultTransient, which recognises the retryable I/O errno family
	// (EINTR, EAGAIN, EBUSY, ETIMEDOUT). Context cancellation and budget
	// errors are never retried regardless of this hook.
	Transient func(error) bool
	// KeepGoing switches the pool from errgroup semantics (first error
	// cancels everything) to collection semantics: every task runs, and
	// all failures come back together as a TaskErrors list alongside the
	// successful tasks' results.
	KeepGoing bool

	// afterTask, when non-nil, observes each task index that finished
	// successfully. Test hook: checkpoint tests use it to cancel a run
	// after a known amount of progress.
	afterTask func(i int)
}

// policy is the process-wide default applied by Sweeps/All, settable from
// cmd/experiments flags the way SetParallelism is.
var (
	policyMu sync.Mutex
	policy   RunPolicy
)

// SetPolicy replaces the default RunPolicy used by Sweeps and All,
// returning the previous one.
func SetPolicy(p RunPolicy) RunPolicy {
	policyMu.Lock()
	defer policyMu.Unlock()
	prev := policy
	policy = p
	return prev
}

// Policy returns the current default RunPolicy.
func Policy() RunPolicy {
	policyMu.Lock()
	defer policyMu.Unlock()
	return policy
}

// transient reports whether err is worth retrying under the policy.
func (p *RunPolicy) transient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if p.Transient != nil {
		return p.Transient(err)
	}
	return DefaultTransient(err)
}

// DefaultTransient recognises the errno family that a retry can plausibly
// cure: interrupted or temporarily failing I/O. Permission errors, missing
// files, parse errors and semantic failures are permanent.
func DefaultTransient(err error) bool {
	for _, errno := range []syscall.Errno{syscall.EINTR, syscall.EAGAIN, syscall.EBUSY, syscall.ETIMEDOUT} {
		if errors.Is(err, errno) {
			return true
		}
	}
	// fs.ErrClosed shows up when a descriptor is torn down under a
	// concurrent writer; a fresh attempt reopens it.
	return errors.Is(err, fs.ErrClosed) || errors.Is(err, os.ErrDeadlineExceeded)
}

// PanicError is a worker panic caught by the pool: the recovered value plus
// the goroutine stack at the point of the panic. One crashing experiment
// becomes one failed task instead of a dead process.
type PanicError struct {
	// Value is the value passed to panic().
	Value any
	// Stack is the formatted goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("task panicked: %v\n%s", e.Value, e.Stack)
}

// TaskError is one task's failure inside a pooled run.
type TaskError struct {
	// Index is the task's position in the run's task list.
	Index int
	// Name describes the task when the runner knows one ("" otherwise).
	Name string
	// Attempts is how many times the task ran (1 = no retries).
	Attempts int
	// Err is the task's final error.
	Err error
}

// Error implements error.
func (e *TaskError) Error() string {
	label := e.Name
	if label == "" {
		label = fmt.Sprintf("task %d", e.Index)
	}
	if e.Attempts > 1 {
		return fmt.Sprintf("%s (after %d attempts): %v", label, e.Attempts, e.Err)
	}
	return fmt.Sprintf("%s: %v", label, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *TaskError) Unwrap() error { return e.Err }

// TaskErrors is every failure of a KeepGoing run, ordered by task index.
type TaskErrors []*TaskError

// Error implements error.
func (es TaskErrors) Error() string {
	if len(es) == 1 {
		return es[0].Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d tasks failed:", len(es))
	for _, e := range es {
		b.WriteString("\n  ")
		b.WriteString(e.Error())
	}
	return b.String()
}

// Unwrap exposes the individual failures to errors.Is/As.
func (es TaskErrors) Unwrap() []error {
	out := make([]error, len(es))
	for i, e := range es {
		out[i] = e
	}
	return out
}

// sortByIndex orders the collected failures deterministically however the
// workers interleaved.
func (es TaskErrors) sortByIndex() {
	sort.Slice(es, func(i, j int) bool { return es[i].Index < es[j].Index })
}

// safeCall runs f(ctx, i), converting a panic into a *PanicError so the
// worker goroutine (and the process) survives.
func safeCall(ctx context.Context, i int, f func(context.Context, int) error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return f(ctx, i)
}

// RunOne applies the policy to a single task outside a pooled run:
// per-task deadline, panic isolation, and bounded retry with exponential
// backoff for transient errors — the same treatment runTask gives each
// pooled task. The returned attempts count is how many times f ran.
// Long-lived callers (the tracedstd job runner) use it to give every job
// the pool's resilience without a pool.
func RunOne(ctx context.Context, pol RunPolicy, f func(context.Context) error) (attempts int, err error) {
	return runTask(ctx, &pol, 0, func(ctx context.Context, _ int) error { return f(ctx) })
}

// runTask applies the policy to one task: per-task deadline, panic
// isolation, and bounded retry with exponential backoff for transient
// errors. The returned attempts count is how many times f ran.
func runTask(ctx context.Context, pol *RunPolicy, i int, f func(context.Context, int) error) (attempts int, err error) {
	backoff := pol.RetryBackoff
	for {
		attempts++
		tctx, cancel := ctx, context.CancelFunc(func() {})
		if pol.TaskTimeout > 0 {
			tctx, cancel = context.WithTimeout(ctx, pol.TaskTimeout)
		}
		err = safeCall(tctx, i, f)
		cancel()
		if err == nil || attempts > pol.Retries || !pol.transient(err) {
			return attempts, err
		}
		// Transient failure with retry budget left: back off, honouring
		// cancellation of the run.
		if backoff > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				return attempts, err
			case <-t.C:
			}
			backoff *= 2
		} else if ctx.Err() != nil {
			return attempts, err
		}
	}
}
