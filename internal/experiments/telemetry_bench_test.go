package experiments

import (
	"io"
	"testing"
	"time"

	"tracedst/internal/telemetry"
)

// BenchmarkSweepTelemetry measures the full layout-sweep engine with the
// observability layer in its two states: "noop" is the library default
// (discard logger) and "enabled" is what the CLIs install (real registry
// plus an active text logger). The two modes alternate within each
// iteration so clock drift, CPU steal and GC phase affect both equally,
// and each mode's cost is reported as its own metric from the single run.
// The CI bench guard compares the two and fails the build if the enabled
// path costs more than 2% — the telemetry layer must stay invisible in
// the simulation profile.
func BenchmarkSweepTelemetry(b *testing.B) {
	if _, err := SweepsParallel(1); err != nil { // warm the trace memos
		b.Fatal(err)
	}
	recs := sweepRecordCount(b)
	log, err := telemetry.NewLogger(io.Discard, "bench", telemetry.FormatText, false)
	if err != nil {
		b.Fatal(err)
	}
	prevReg := telemetry.Default()
	prevLog := telemetry.L()
	defer func() {
		telemetry.SetDefault(prevReg)
		telemetry.SetLogger(prevLog)
	}()

	sweep := func() time.Duration {
		t0 := time.Now()
		if _, err := SweepsParallel(1); err != nil {
			b.Fatal(err)
		}
		return time.Since(t0)
	}
	var noopNS, enabledNS time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		telemetry.SetDefault(telemetry.NewRegistry())
		telemetry.SetLogger(telemetry.Nop())
		noopNS += sweep()

		telemetry.SetDefault(telemetry.NewRegistry())
		telemetry.SetLogger(log)
		enabledNS += sweep()
	}
	b.StopTimer()
	b.ReportMetric(float64(noopNS)/float64(b.N), "noop_ns/op")
	b.ReportMetric(float64(enabledNS)/float64(b.N), "enabled_ns/op")
	b.ReportMetric(2*float64(recs)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}
