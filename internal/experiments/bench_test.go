package experiments

import (
	"runtime"
	"testing"
)

// sweepRecordCount totals the trace records simulated by one full Sweeps()
// run: every (size, side) point replays its whole trace.
func sweepRecordCount(b *testing.B) int64 {
	var total int64
	for _, sp := range sweepSpecs() {
		orig, err := sp.orig()
		if err != nil {
			b.Fatal(err)
		}
		xf, err := sp.xform()
		if err != nil {
			b.Fatal(err)
		}
		total += int64(len(orig)+len(xf)) * int64(len(sp.sizes))
	}
	return total
}

// BenchmarkSweepSerialVsParallel measures the full layout-sweep engine with
// one worker vs GOMAXPROCS workers. Traces are memoized, so the timed region
// is pure simulation; the custom metric reports simulated trace records per
// second so runs on different machines are comparable.
func BenchmarkSweepSerialVsParallel(b *testing.B) {
	if _, err := SweepsParallel(1); err != nil { // warm the trace memos
		b.Fatal(err)
	}
	recs := sweepRecordCount(b)
	run := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SweepsParallel(workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(recs)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
		}
	}
	b.Run("serial", run(1))
	b.Run("parallel", run(runtime.GOMAXPROCS(0)))
}
