package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// TestForEachPanicIsolation is the regression test for the pool-crash bug:
// a panicking worker used to take down the whole process and leak the
// pool. Now the panic must surface as an error carrying the stack, and —
// in KeepGoing mode — every other task must still run.
func TestForEachPanicIsolation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var ran int32
		err := forEachPolicy(context.Background(), RunPolicy{KeepGoing: true}, workers, 20, nil,
			func(_ context.Context, i int) error {
				if i == 7 {
					panic("kaboom")
				}
				atomic.AddInt32(&ran, 1)
				return nil
			})
		if err == nil {
			t.Fatalf("workers=%d: panic not reported", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want a *PanicError", workers, err)
		}
		if fmt.Sprint(pe.Value) != "kaboom" {
			t.Errorf("workers=%d: panic value = %v", workers, pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "policy_test.go") {
			t.Errorf("workers=%d: stack does not point at the panic site:\n%s", workers, pe.Stack)
		}
		if n := atomic.LoadInt32(&ran); n != 19 {
			t.Errorf("workers=%d: %d tasks ran, want 19 (panic must not sink siblings)", workers, n)
		}
	}
}

// TestForEachPanicFirstErrorMode: without KeepGoing a panic behaves like
// any first error — reported, cancels the rest, process alive.
func TestForEachPanicFirstErrorMode(t *testing.T) {
	err := forEach(context.Background(), 4, 100, func(_ context.Context, i int) error {
		if i == 0 {
			panic(errors.New("early crash"))
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want a *PanicError", err)
	}
	var te *TaskError
	if !errors.As(err, &te) || te.Index != 0 {
		t.Errorf("err = %v, want wrapped in TaskError{Index: 0}", err)
	}
}

// TestKeepGoingCollectsAll: every failure is collected, ordered by task
// index, and the successes still happen.
func TestKeepGoingCollectsAll(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 8} {
		var ran int32
		err := forEachPolicy(context.Background(), RunPolicy{KeepGoing: true}, workers, 30,
			func(i int) string { return fmt.Sprintf("job-%d", i) },
			func(_ context.Context, i int) error {
				atomic.AddInt32(&ran, 1)
				if i%10 == 3 {
					return fmt.Errorf("task %d: %w", i, boom)
				}
				return nil
			})
		if n := atomic.LoadInt32(&ran); n != 30 {
			t.Errorf("workers=%d: ran %d tasks, want all 30", workers, n)
		}
		var tes TaskErrors
		if !errors.As(err, &tes) {
			t.Fatalf("workers=%d: err = %T %v, want TaskErrors", workers, err, err)
		}
		if len(tes) != 3 {
			t.Fatalf("workers=%d: %d failures, want 3: %v", workers, len(tes), tes)
		}
		for k, wantIdx := range []int{3, 13, 23} {
			if tes[k].Index != wantIdx {
				t.Errorf("workers=%d: failure %d has index %d, want %d", workers, k, tes[k].Index, wantIdx)
			}
			if tes[k].Name != fmt.Sprintf("job-%d", wantIdx) {
				t.Errorf("workers=%d: failure %d named %q", workers, k, tes[k].Name)
			}
		}
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: errors.Is through TaskErrors broken", workers)
		}
	}
}

// TestRetryTransient: a task failing with a transient errno is retried
// with backoff until it succeeds; attempts are counted.
func TestRetryTransient(t *testing.T) {
	var calls int32
	pol := RunPolicy{Retries: 3, RetryBackoff: time.Millisecond}
	err := forEachPolicy(context.Background(), pol, 1, 1, nil, func(_ context.Context, i int) error {
		if atomic.AddInt32(&calls, 1) < 3 {
			return fmt.Errorf("flaky write: %w", syscall.EAGAIN)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("transient error not cured by retries: %v", err)
	}
	if calls != 3 {
		t.Errorf("task ran %d times, want 3", calls)
	}
}

// TestRetryExhaustion: a persistently transient failure is reported with
// its attempt count once the budget runs out.
func TestRetryExhaustion(t *testing.T) {
	var calls int32
	pol := RunPolicy{Retries: 2}
	err := forEachPolicy(context.Background(), pol, 1, 1, nil, func(_ context.Context, i int) error {
		atomic.AddInt32(&calls, 1)
		return syscall.EAGAIN
	})
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want TaskError", err)
	}
	if te.Attempts != 3 || calls != 3 {
		t.Errorf("attempts = %d, calls = %d, want 3/3", te.Attempts, calls)
	}
	if !errors.Is(err, syscall.EAGAIN) {
		t.Errorf("underlying errno lost: %v", err)
	}
}

// TestNoRetryOnPermanentError: permanent failures are not retried.
func TestNoRetryOnPermanentError(t *testing.T) {
	var calls int32
	pol := RunPolicy{Retries: 5, RetryBackoff: time.Millisecond}
	err := forEachPolicy(context.Background(), pol, 1, 1, nil, func(context.Context, int) error {
		atomic.AddInt32(&calls, 1)
		return errors.New("parse error: this will never work")
	})
	if err == nil {
		t.Fatal("permanent error swallowed")
	}
	if calls != 1 {
		t.Errorf("permanent error retried %d times", calls-1)
	}
}

// TestTaskTimeout: a task that cooperatively watches its context is cut
// off by the per-task deadline and the failure unwraps to
// DeadlineExceeded; sibling tasks with no such hang complete.
func TestTaskTimeout(t *testing.T) {
	pol := RunPolicy{TaskTimeout: 30 * time.Millisecond, KeepGoing: true}
	var completed int32
	start := time.Now()
	err := forEachPolicy(context.Background(), pol, 2, 4, nil, func(ctx context.Context, i int) error {
		if i == 1 {
			<-ctx.Done() // a "hung" task that honours cancellation
			return fmt.Errorf("simulation stalled: %w", ctx.Err())
		}
		atomic.AddInt32(&completed, 1)
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	var tes TaskErrors
	if !errors.As(err, &tes) || len(tes) != 1 || tes[0].Index != 1 {
		t.Errorf("err = %v, want exactly task 1 failed", err)
	}
	if n := atomic.LoadInt32(&completed); n != 3 {
		t.Errorf("%d healthy tasks completed, want 3", n)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("timeout enforcement took %v", elapsed)
	}
}

// TestDefaultTransientClassification pins the default classifier.
func TestDefaultTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{syscall.EINTR, true},
		{syscall.EAGAIN, true},
		{syscall.EBUSY, true},
		{syscall.ETIMEDOUT, true},
		{fmt.Errorf("wrap: %w", syscall.EINTR), true},
		{syscall.ENOENT, false},
		{errors.New("semantic failure"), false},
		{context.Canceled, false},
	}
	for _, c := range cases {
		if got := DefaultTransient(c.err); got != c.want {
			t.Errorf("DefaultTransient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestTaskErrorsRendering: the aggregate error names every failure.
func TestTaskErrorsRendering(t *testing.T) {
	tes := TaskErrors{
		{Index: 2, Name: "fig5", Attempts: 1, Err: errors.New("bad diff")},
		{Index: 7, Attempts: 3, Err: errors.New("io wobble")},
	}
	msg := tes.Error()
	for _, want := range []string{"2 tasks failed", "fig5: bad diff", "task 7 (after 3 attempts): io wobble"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error text %q missing %q", msg, want)
		}
	}
}
