// Package workloads holds the miniC source of every program the paper
// traces (Listings 1, 3/4, 6/7, 9/10), the transformation rule files of
// Listings 5, 8 and 11, and a handful of larger kernels used by the
// examples and benchmarks. Identifiers follow the paper, with the leading
// "l" (ell) of local names restored where the PDF rendered it as the digit
// one (lSoA, lAoS, lI, …).
package workloads

import "fmt"

// Listing1 is the paper's Listing 1: static and global data structures
// exercised by main and foo. Its trace is the paper's Listing 2.
const Listing1 = `
struct _typeA {
	double d1;
	int myArray[10];
};
struct _typeA glStruct;
struct _typeA glStructArray[10];

int glScalar;
int glArray[10];

void foo(struct _typeA StrcParam[])
{
	int i;
	for (i=0; i<2; i++){
		glStructArray[i].d1 = glScalar;
		glStructArray[i].myArray[i] = glArray[i+1];
		StrcParam[i].d1 = glArray[i];
	}
	return;
}

int main(void)
{
	GLEIPNIR_START_INSTRUMENTATION;

	struct _typeA lcStrcArray[5];
	int i, lcScalar, lcArray[10];

	glScalar = 321;
	lcScalar = 123;

	for (i=0; i<2; i++)
		lcArray[i] = glScalar;

	foo(lcStrcArray);

	GLEIPNIR_STOP_INSTRUMENTATION;
	return 0;
}
`

// Trans1SoA is the structure-of-arrays program (the paper's "Transformation
// 1B" source, Listing 4) — the original layout whose trace is transformed.
// LEN is a macro parameter.
const Trans1SoA = `
int main(int aArgc, char **aArgv) {
	typedef struct {
		int mX[LEN];
		double mY[LEN];
	} MyStructOfArrays;
	MyStructOfArrays lSoA;
	GLEIPNIR_START_INSTRUMENTATION;
	for (int lI=0 ; lI<LEN ; lI++) {
		lSoA.mX[lI] = (int) lI;
		lSoA.mY[lI] = (double) lI;
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return 0;
}
`

// Trans1AoS is the hand-transformed array-of-structures program (the
// paper's "Transformation 1A" source, Listing 3) that the automatic trace
// transformation must emulate.
const Trans1AoS = `
int main(int aArgc, char **aArgv) {
	typedef struct { int mX; double mY; } MyStruct;
	MyStruct lAoS[LEN];
	GLEIPNIR_START_INSTRUMENTATION;
	for (int lI=0 ; lI<LEN ; lI++) {
		lAoS[lI].mX = (int) lI;
		lAoS[lI].mY = (double) lI;
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return 0;
}
`

// Trans2Inline is Listing 6: a structure with a frequently used scalar and
// a rarely used nested structure, stored inline.
const Trans2Inline = `
int main(int aArgc, char **aArgv) {
	typedef struct {
		int mFrequentlyUsed;
		struct { double mY; int mZ; } mRarelyUsed;
	} MyInlineStruct;

	MyInlineStruct lS1[LEN];
	GLEIPNIR_START_INSTRUMENTATION;
	for (int lI=0 ; lI<LEN ; lI++) {
		lS1[lI].mFrequentlyUsed = lI;
		lS1[lI].mRarelyUsed.mY = lI;
		lS1[lI].mRarelyUsed.mZ = lI;
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return 0;
}
`

// Trans2Outlined is Listing 7: the hand-transformed version where the
// rarely used structure lives in an external pool reached via a pointer.
const Trans2Outlined = `
typedef struct { double mY; int mZ; } RarelyUsed;
typedef struct {
	int mFrequentlyUsed;
	RarelyUsed *mRarelyUsed;
} MyOutlinedStruct;

int main(int aArgc, char **aArgv) {
	RarelyUsed lStorageForRarelyUsed[LEN];
	MyOutlinedStruct lS2[LEN];

	for (int lI=0 ; lI<LEN ; lI++) {
		lS2[lI].mRarelyUsed = lStorageForRarelyUsed+lI;
	}

	GLEIPNIR_START_INSTRUMENTATION;
	for (int lI=0 ; lI<LEN ; lI++) {
		lS2[lI].mFrequentlyUsed = lI;
		lS2[lI].mRarelyUsed->mY = lI;
		lS2[lI].mRarelyUsed->mZ = lI;
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return 0;
}
`

// Trans2HotLoop touches only the frequently used member of every element —
// the access pattern hot/cold splitting is designed for (the paper's "goal
// of this transformation is to keep the rarely used structure in an outside
// pool of memory and collocate frequently used elements").
const Trans2HotLoop = `
int main(int aArgc, char **aArgv) {
	typedef struct {
		int mFrequentlyUsed;
		struct { double mY; int mZ; } mRarelyUsed;
	} MyInlineStruct;

	MyInlineStruct lS1[LEN];
	int sum;
	GLEIPNIR_START_INSTRUMENTATION;
	sum = 0;
	for (int lI=0 ; lI<LEN ; lI++) {
		sum += lS1[lI].mFrequentlyUsed;
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return sum;
}
`

// Trans3Contiguous is Listing 9: a plain contiguous array sweep.
const Trans3Contiguous = `
int main(int aArgc, char **aArgv) {
	int lContiguousArray[LEN];
	GLEIPNIR_START_INSTRUMENTATION;
	for (int lI=0 ; lI<LEN ; lI++) {
		lContiguousArray[lI] = lI;
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return 0;
}
`

// Trans3Strided is Listing 10: the hand-transformed set-pinning version.
// The stride formula maps every element onto the cache lines of a single
// set (for a 32 KB, 32 B-block cache with 16 sets modelled per column).
const Trans3Strided = `
#define SETS 16
#define CACHELINE 32
int main(int aArgc, char **aArgv) {
	const int ITEMSPERLINE = CACHELINE/sizeof(int);
	int lSetHashingArray[LEN*SETS];
	GLEIPNIR_START_INSTRUMENTATION;
	for (int lI=0 ; lI<LEN ; lI++) {
		lSetHashingArray[(lI/ITEMSPERLINE)%(SETS*ITEMSPERLINE)+(lI%ITEMSPERLINE)] = lI;
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return 0;
}
`

// RuleTrans1 is Listing 5: the SoA→AoS rule. Element names must match
// between the in and out structures; the root variable is renamed.
const RuleTrans1 = `
in:
struct lSoA {
	int mX[16];
	double mY[16];
};
out:
struct lAoS {
	int mX;
	double mY;
}[16];
`

// RuleTrans2 is Listing 8: nested structure to structure-with-indirection.
// The in rule is written bottom-up (deepest structure first); the out rule
// declares the external pool and a pointer member tying them together.
const RuleTrans2 = `
in:
struct mRarelyUsed {
	double mY;
	int mZ;
};
struct lS1 {
	int mFrequentlyUsed;
	struct mRarelyUsed;
}[16];

out:
struct lStorageForRarelyUsed {
	double mY;
	int mZ;
}[16];
struct lS2 {
	int mFrequentlyUsed;
	* mRarelyUsed:lStorageForRarelyUsed;
}[16];
`

// RuleTrans3 is Listing 11: array striding for cache-set pinning. The out
// declaration carries the stride formula over the original element index lI;
// the inject clause lists the scalar loads the stride arithmetic performs
// (the paper hand-forces these: "we have hand forced the simulator to
// inject additional instructions").
const RuleTrans3 = `
in:
int lContiguousArray[1024]:lSetHashingArray;
out:
int lSetHashingArray[16384 ((lI/8)*(16*8)+(lI%8))];
inject:
L ITEMSPERLINE;
L ITEMSPERLINE;
L lI;
L ITEMSPERLINE;
`

// MatMul is a realistic kernel: naive square matrix multiply over global
// arrays, parameterised by N.
const MatMul = `
double A[N][N];
double B[N][N];
double C[N][N];

int main(void) {
	GLEIPNIR_START_INSTRUMENTATION;
	for (int i=0; i<N; i++) {
		for (int j=0; j<N; j++) {
			double s;
			s = 0.0;
			for (int k=0; k<N; k++) {
				s = s + A[i][k] * B[k][j];
			}
			C[i][j] = s;
		}
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return 0;
}
`

// ListTraversal builds a linked list in a heap pool and walks it — the
// dynamic-structure case the paper lists as future work, exercised through
// the interpreter's malloc support.
const ListTraversal = `
struct node { int value; struct node *next; };

int main(void) {
	struct node *pool;
	struct node *head;
	struct node *p;
	int i, sum;

	pool = malloc(N * sizeof(struct node));
	head = pool;
	for (i=0; i<N; i++) {
		pool[i].value = i;
		if (i < N-1) pool[i].next = pool + (i+1);
		else pool[i].next = pool;  // sentinel: points at head
	}

	GLEIPNIR_START_INSTRUMENTATION;
	sum = 0;
	p = head;
	for (i=0; i<N; i++) {
		sum += p->value;
		p = p->next;
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	free(pool);
	return sum;
}
`

// Stencil is a 1-D three-point stencil over a global array.
const Stencil = `
double src[N];
double dst[N];

int main(void) {
	for (int i=0; i<N; i++) src[i] = (double) i;
	GLEIPNIR_START_INSTRUMENTATION;
	for (int i=1; i<N-1; i++) {
		dst[i] = (src[i-1] + src[i] + src[i+1]) / 3.0;
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return 0;
}
`

// ParticlesAoS is a particle-update kernel over an array of structures —
// the motivating layout question of the paper's introduction at a more
// realistic scale. Only the position fields are touched, so half of every
// cache line holding a particle is wasted.
const ParticlesAoS = `
typedef struct { double x; double y; double vx; double vy; } Particle;
Particle particles[N];

int main(void) {
	GLEIPNIR_START_INSTRUMENTATION;
	for (int i=0; i<N; i++) {
		particles[i].x = particles[i].x + 1.0;
		particles[i].y = particles[i].y + 1.0;
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return 0;
}
`

// ParticlesSoA is the structure-of-arrays variant of ParticlesAoS.
const ParticlesSoA = `
typedef struct {
	double x[N];
	double y[N];
	double vx[N];
	double vy[N];
} Particles;
Particles particles;

int main(void) {
	GLEIPNIR_START_INSTRUMENTATION;
	for (int i=0; i<N; i++) {
		particles.x[i] = particles.x[i] + 1.0;
		particles.y[i] = particles.y[i] + 1.0;
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return 0;
}
`

// Histogram builds a histogram with indirect writes hist[data[i]]++ — the
// data-dependent access pattern that defeats static layout analysis and
// motivates trace-driven study.
const Histogram = `
int data[N];
int hist[BINS];

int main(void) {
	for (int i = 0; i < N; i++) {
		data[i] = (i * 7919) % BINS;
	}
	GLEIPNIR_START_INSTRUMENTATION;
	for (int i = 0; i < N; i++) {
		hist[data[i]]++;
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return hist[0];
}
`

// BinSearch performs repeated binary searches over a sorted global array —
// a branchy, log-depth access pattern.
const BinSearch = `
int keys[N];

int find(int want) {
	int lo, hi;
	lo = 0;
	hi = N - 1;
	while (lo <= hi) {
		int mid;
		mid = (lo + hi) / 2;
		if (keys[mid] == want) return mid;
		if (keys[mid] < want) lo = mid + 1;
		else hi = mid - 1;
	}
	return -1;
}

int main(void) {
	int found;
	for (int i = 0; i < N; i++) keys[i] = i * 2;
	GLEIPNIR_START_INSTRUMENTATION;
	found = 0;
	for (int q = 0; q < 64; q++) {
		if (find((q * 13) % (N * 2)) >= 0) found++;
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return found;
}
`

// Runaway is a pathological workload that never terminates: an unbounded
// loop mutating one local so every iteration still generates memory
// traffic. It exists to exercise the execution-budget machinery
// (tracer.Options.MaxSteps / minic.ErrBudgetExceeded and context
// deadlines) and is deliberately NOT in Named — tools and tests that
// iterate every named workload must keep terminating.
const Runaway = `
int main(void) {
	int lSpin;
	lSpin = 0;
	GLEIPNIR_START_INSTRUMENTATION;
	while (1) {
		lSpin = lSpin + 1;
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return lSpin;
}
`

// Named lists every built-in workload for the CLI tools.
var Named = map[string]struct {
	Source string
	// Defines are the default macro parameters.
	Defines map[string]string
	About   string
}{
	"listing1":    {Listing1, nil, "paper Listing 1: static/global structs (trace = Listing 2)"},
	"trans1-soa":  {Trans1SoA, map[string]string{"LEN": "16"}, "paper Listing 4: structure of arrays (original of T1)"},
	"trans1-aos":  {Trans1AoS, map[string]string{"LEN": "16"}, "paper Listing 3: array of structures (hand-transformed T1)"},
	"trans2-in":   {Trans2Inline, map[string]string{"LEN": "16"}, "paper Listing 6: inline nested struct (original of T2)"},
	"trans2-out":  {Trans2Outlined, map[string]string{"LEN": "16"}, "paper Listing 7: outlined struct via pointer (hand-transformed T2)"},
	"trans3-cont": {Trans3Contiguous, map[string]string{"LEN": "1024"}, "paper Listing 9: contiguous array sweep (original of T3)"},
	"trans3-strd": {Trans3Strided, map[string]string{"LEN": "1024"}, "paper Listing 10: set-pinned strided array (hand-transformed T3)"},
	"matmul":      {MatMul, map[string]string{"N": "24"}, "naive square matrix multiply"},
	"list":        {ListTraversal, map[string]string{"N": "256"}, "heap linked-list traversal (dynamic structures)"},
	"stencil":     {Stencil, map[string]string{"N": "1024"}, "1-D three-point stencil"},
	"particles-aos": {ParticlesAoS, map[string]string{"N": "256"},
		"particle update, array-of-structures layout"},
	"particles-soa": {ParticlesSoA, map[string]string{"N": "256"},
		"particle update, structure-of-arrays layout"},
	"trans2-hot": {Trans2HotLoop, map[string]string{"LEN": "128"},
		"hot-member-only loop over the T2 structure"},
	"histogram": {Histogram, map[string]string{"N": "1024", "BINS": "64"},
		"indirect writes hist[data[i]]++"},
	"binsearch": {BinSearch, map[string]string{"N": "512"},
		"repeated binary searches over a sorted array"},
}

// RuleTrans3ForLen renders the T3 rule for a given original array length
// and cache geometry (sets × itemsPerLine elements per way window).
func RuleTrans3ForLen(l, sets, itemsPerLine int) string {
	return fmt.Sprintf(`
in:
int lContiguousArray[%d]:lSetHashingArray;
out:
int lSetHashingArray[%d ((lI/%d)*(%d*%d)+(lI%%%d))];
inject:
L ITEMSPERLINE;
L ITEMSPERLINE;
L lI;
L ITEMSPERLINE;
`, l, l*sets, itemsPerLine, sets, itemsPerLine, itemsPerLine)
}

// RuleTrans1ForLen renders the T1 rule for a given LEN.
func RuleTrans1ForLen(l int) string {
	return fmt.Sprintf(`
in:
struct lSoA {
	int mX[%d];
	double mY[%d];
};
out:
struct lAoS {
	int mX;
	double mY;
}[%d];
`, l, l, l)
}

// RuleTrans2ForLen renders the T2 rule for a given LEN.
func RuleTrans2ForLen(l int) string {
	return fmt.Sprintf(`
in:
struct mRarelyUsed {
	double mY;
	int mZ;
};
struct lS1 {
	int mFrequentlyUsed;
	struct mRarelyUsed;
}[%d];

out:
struct lStorageForRarelyUsed {
	double mY;
	int mZ;
}[%d];
struct lS2 {
	int mFrequentlyUsed;
	* mRarelyUsed:lStorageForRarelyUsed;
}[%d];
`, l, l, l)
}
