package workloads

import (
	"testing"

	"tracedst/internal/minic"
	"tracedst/internal/trace"
	"tracedst/internal/tracer"
)

// TestAllNamedWorkloadsRun parses and executes every built-in workload with
// its default parameters and checks it produces an annotated trace.
func TestAllNamedWorkloadsRun(t *testing.T) {
	for name, w := range Named {
		t.Run(name, func(t *testing.T) {
			res, err := tracer.Run(w.Source, w.Defines, tracer.Options{})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(res.Records) == 0 {
				t.Fatalf("%s produced an empty trace", name)
			}
			annotated := 0
			for i := range res.Records {
				if res.Records[i].HasSym {
					annotated++
				}
			}
			if annotated == 0 {
				t.Errorf("%s has no annotated records", name)
			}
			if w.About == "" {
				t.Errorf("%s has no description", name)
			}
		})
	}
}

func TestListTraversalComputesSum(t *testing.T) {
	res, err := tracer.Run(ListTraversal, map[string]string{"N": "10"}, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Return != 45 {
		t.Errorf("list sum = %d, want 45", res.Return)
	}
}

func TestMatMulComputesProduct(t *testing.T) {
	// Verify numerically through memory: C[i][j] = Σ A[i][k]·B[k][j] with
	// A, B zero-initialised gives zero — instead set A=B=identity-ish via a
	// tweaked program to check the interpreter; here we only check that the
	// kernel executes and touches all three matrices.
	res, err := tracer.Run(MatMul, map[string]string{"N": "4"}, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	roots := map[string]bool{}
	for i := range res.Records {
		if res.Records[i].HasSym {
			roots[res.Records[i].Var.Root] = true
		}
	}
	for _, want := range []string{"A", "B", "C", "s"} {
		if !roots[want] {
			t.Errorf("matmul trace missing %s", want)
		}
	}
}

func TestParticlesLayoutsDiffer(t *testing.T) {
	aos, err := tracer.Run(ParticlesAoS, map[string]string{"N": "32"}, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	soa, err := tracer.Run(ParticlesSoA, map[string]string{"N": "32"}, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// AoS touches x and y of each particle 32 bytes apart per element pair;
	// SoA splits them into two distant streams. Compare footprints: both
	// touch the same number of particle bytes but different block counts.
	fa := trace.Footprint(trace.Filter(aos.Records, trace.ByVar("particles")), 32)
	fs := trace.Footprint(trace.Filter(soa.Records, trace.ByVar("particles")), 32)
	// AoS: 32 particles × 32 B stride, x/y in the first 16 bytes → every
	// 32-byte block holds one particle's x+y → 32 blocks.
	if fa != 32 {
		t.Errorf("AoS footprint = %d blocks, want 32", fa)
	}
	// SoA: two dense 256-byte streams → 16 blocks (+ up to 2 straddles).
	if fs < 16 || fs > 18 {
		t.Errorf("SoA footprint = %d blocks, want 16..18", fs)
	}
	if fs >= fa {
		t.Errorf("SoA footprint %d not denser than AoS %d for position-only updates", fs, fa)
	}
}

func TestStencilBoundaries(t *testing.T) {
	res, err := tracer.Run(Stencil, map[string]string{"N": "16"}, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// dst[0] and dst[N-1] are never written.
	for i := range res.Records {
		r := &res.Records[i]
		if r.Op == trace.Store && r.HasSym && r.Var.Root == "dst" {
			idx := r.Var.Path[0].Index
			if idx == 0 || idx == 15 {
				t.Errorf("boundary element dst[%d] written", idx)
			}
		}
	}
}

func TestRuleGeneratorsMatchCanonical(t *testing.T) {
	if RuleTrans1ForLen(16) == "" || RuleTrans2ForLen(16) == "" {
		t.Fatal("empty generated rules")
	}
	// The generated rule at the canonical length must describe the same
	// shapes as the hand-written rule (both must parse; detailed equality
	// is covered in the rules package).
	if got := RuleTrans3ForLen(1024, 16, 8); got == "" {
		t.Fatal("empty stride rule")
	}
}

func TestWorkloadsParseStandalone(t *testing.T) {
	// The sources must be valid miniC even without the tracer.
	for name, w := range Named {
		if _, err := minic.Parse(w.Source, w.Defines); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestHistogramIndirectWrites(t *testing.T) {
	res, err := tracer.Run(Histogram, map[string]string{"N": "128", "BINS": "16"}, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every iteration: M on some hist element, L on data[i]; hist[0]'s count
	// equals the number of i with (i*7919)%16 == 0.
	want := 0
	for i := 0; i < 128; i++ {
		if (i*7919)%16 == 0 {
			want++
		}
	}
	if res.Return != int64(want) {
		t.Errorf("hist[0] = %d, want %d", res.Return, want)
	}
	mods := 0
	for i := range res.Records {
		r := &res.Records[i]
		if r.Op == trace.Modify && r.HasSym && r.Var.Root == "hist" {
			mods++
		}
	}
	if mods != 128 {
		t.Errorf("hist modifies = %d, want 128", mods)
	}
}

func TestBinSearchFindsKeys(t *testing.T) {
	res, err := tracer.Run(BinSearch, map[string]string{"N": "512"}, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Queries (q*13)%1024: hits when even (keys are the even numbers).
	want := 0
	for q := 0; q < 64; q++ {
		if (q*13)%1024%2 == 0 {
			want++
		}
	}
	if res.Return != int64(want) {
		t.Errorf("found = %d, want %d", res.Return, want)
	}
	// The traced window must show keys accesses from find at depth 1.
	sawFind := false
	for i := range res.Records {
		if res.Records[i].Func == "find" && res.Records[i].HasSym &&
			res.Records[i].Var.Root == "keys" {
			sawFind = true
			break
		}
	}
	if !sawFind {
		t.Error("no keys accesses attributed to find")
	}
}
