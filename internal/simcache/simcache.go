// Package simcache is a content-addressed, on-disk store of finished
// simulation results. Entries are keyed by what determines a result —
// trace content hash, cache configuration, transformation rule, sampling
// or sharding tier, and engine version — so any consumer that is about to
// simulate a (trace, config, rule) it has seen before can return the
// stored statistics and rendered report instead of walking the trace
// again. The experiments sweeps consult it alongside checkpoints, and the
// trace service uses it to answer duplicate uploads immediately.
//
// The store is a flat directory of JSON files named by the SHA-256 of the
// key, written atomically (write-to-temp + rename, like checkpoints), so
// concurrent writers and readers — including separate processes sharing
// one cache directory — see either a complete entry or none. A stored
// entry embeds its key; a digest collision or torn file therefore reads
// as a miss, never as a wrong result.
//
// Invalidation is by key, never in place: traces are content-hashed, and
// any change to simulation semantics must bump EngineVersion, which
// orphans all previous entries.
package simcache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"tracedst/internal/cache"
	"tracedst/internal/telemetry"
	"tracedst/internal/trace"
)

// EngineVersion is part of every key. Bump it whenever simulation or
// report-rendering semantics change in any way that can alter stored
// results — stale entries then simply stop matching.
const EngineVersion = 1

// Key identifies one simulation result. Equal keys mean equal results;
// every field that can change the outcome must be represented.
type Key struct {
	// Trace is the trace content hash ("glb:…", "raw:…" or "recs:…" —
	// see HashFile and HashRecords).
	Trace string `json:"trace"`
	// Config is the canonical configuration signature (ConfigSig).
	Config string `json:"config"`
	// Rule is the transformation-rule hash (HashText), empty for none.
	Rule string `json:"rule,omitempty"`
	// Sampling qualifies the result tier: sampling parameters or shard
	// count when those change the (scaled or flush-at-boundary) result.
	Sampling string `json:"sampling,omitempty"`
	// Engine is the EngineVersion the result was produced under.
	Engine int `json:"engine"`
}

// digest is the key's file name: SHA-256 over an unambiguous encoding.
func (k Key) digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "trace=%s\x00config=%s\x00rule=%s\x00sampling=%s\x00engine=%d\x00",
		k.Trace, k.Config, k.Rule, k.Sampling, k.Engine)
	return hex.EncodeToString(h.Sum(nil))
}

// Entry is one stored result. Consumers populate what they have: sweeps
// store miss totals, the service stores the full report; Stats carries
// the merged raw counters when available.
type Entry struct {
	// Records is how many records the simulation consumed.
	Records int64 `json:"records"`
	// BadLines and Warnings carry the ingest diagnostics of the original
	// run, so a cached service job reports identically to a fresh one.
	BadLines int `json:"bad_lines,omitempty"`
	Warnings int `json:"warnings,omitempty"`
	// Misses is the total miss count (demand misses, as Stats.Misses).
	Misses int64 `json:"misses"`
	// Stats holds the merged raw statistics, when the producer kept them.
	Stats *cache.Stats `json:"stats,omitempty"`
	// Report is the rendered text report, byte-for-byte.
	Report string `json:"report,omitempty"`
}

// envelope is the on-disk form: the key rides along so a reader can
// reject collisions and torn writes.
type envelope struct {
	Key   Key   `json:"key"`
	Entry Entry `json:"entry"`
}

// Store is a handle on one cache directory. All methods are safe for
// concurrent use; distinct processes may share a directory.
type Store struct {
	dir string

	lookups *telemetry.Counter
	hits    *telemetry.Counter
	misses  *telemetry.Counter
	puts    *telemetry.Counter
}

// Open returns a Store over dir, creating it if needed. Telemetry
// (simcache.lookups/hits/misses/puts) registers on reg — nil means the
// default registry — eagerly, so manifests show zeros rather than
// omitting the counters on an idle cache.
func Open(dir string, reg *telemetry.Registry) (*Store, error) {
	if reg == nil {
		reg = telemetry.Default()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("simcache: %w", err)
	}
	return &Store{
		dir:     dir,
		lookups: reg.Counter("simcache.lookups"),
		hits:    reg.Counter("simcache.hits"),
		misses:  reg.Counter("simcache.misses"),
		puts:    reg.Counter("simcache.puts"),
	}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(k Key) string { return filepath.Join(s.dir, k.digest()+".json") }

// Get looks k up. A malformed or mismatching file counts as a miss — the
// caller re-simulates and overwrites it. Every lookup is exactly one hit
// or one miss (simcache.lookups == hits + misses).
func (s *Store) Get(k Key) (Entry, bool, error) {
	s.lookups.Inc()
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		s.misses.Inc()
		if errors.Is(err, fs.ErrNotExist) {
			return Entry{}, false, nil
		}
		return Entry{}, false, fmt.Errorf("simcache: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil || env.Key != k {
		s.misses.Inc()
		return Entry{}, false, nil
	}
	s.hits.Inc()
	return env.Entry, true, nil
}

// Put stores e under k, atomically replacing any previous entry.
func (s *Store) Put(k Key, e Entry) error {
	data, err := json.MarshalIndent(envelope{Key: k, Entry: e}, "", "  ")
	if err != nil {
		return fmt.Errorf("simcache: %w", err)
	}
	if err := trace.WriteFileAtomic(s.path(k), append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("simcache: %w", err)
	}
	s.puts.Inc()
	return nil
}

// ConfigSig renders a cache configuration canonically for keys. Every
// field that changes simulation results appears; the display Name does
// not (it never reaches the report body).
func ConfigSig(cfg cache.Config) string {
	return fmt.Sprintf("size=%d bsize=%d assoc=%d repl=%s write=%s alloc=%s pf=%s seed=%d classify=%t",
		cfg.Size, cfg.BlockSize, cfg.Assoc, cfg.Repl, cfg.Write, cfg.Alloc, cfg.Prefetch,
		cfg.Seed, cfg.ClassifyMisses)
}

// HashText hashes an arbitrary text artifact (a transformation rule
// source, for example) for use in a key. Empty text hashes to "".
func HashText(src string) string {
	if src == "" {
		return ""
	}
	sum := sha256.Sum256([]byte(src))
	return "txt:" + hex.EncodeToString(sum[:])
}

// HashFile content-hashes a trace file. Indexed .glb traces fold the
// stored per-block CRC32s plus preamble and record count — no payload is
// decoded and no record is walked; anything else (text traces, binary
// traces without a parseable index) streams the raw bytes through
// SHA-256.
func HashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", fmt.Errorf("simcache: %w", err)
	}
	prefix := make([]byte, trace.BinaryMagicLen)
	n, _ := io.ReadFull(f, prefix)
	if trace.DetectFormat(prefix[:n]) == trace.FormatBinary {
		f.Close()
		if h, err := hashIndexedFile(path); err == nil {
			return h, nil
		}
		// Unindexed or damaged binary: fall back to hashing the bytes.
		if f, err = os.Open(path); err != nil {
			return "", fmt.Errorf("simcache: %w", err)
		}
	} else if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return "", fmt.Errorf("simcache: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("simcache: %w", err)
	}
	return "raw:" + hex.EncodeToString(h.Sum(nil)), nil
}

func hashIndexedFile(path string) (string, error) {
	tr, err := trace.OpenIndexed(path)
	if err != nil {
		return "", err
	}
	defer tr.Close()
	if !tr.HasFooter() || tr.FooterErr() != nil {
		// A damaged or missing footer changes the job's validation
		// diagnostics without touching block payloads, so distinct damage
		// variants could collide under the CRC fold. Hash the raw bytes
		// instead — only clean indexed traces take the cheap path.
		return "", fmt.Errorf("simcache: %s: no healthy block index", path)
	}
	return HashIndexed(tr)
}

// HashIndexed hashes an already-open indexed trace by folding its block
// checksums (see HashFile).
func HashIndexed(tr *trace.IndexedTrace) (string, error) {
	sums, err := tr.BlockChecksums()
	if err != nil {
		return "", err
	}
	hdr, _ := tr.Header()
	h := sha256.New()
	fmt.Fprintf(h, "glb hdr=%t pid=%d blocks=%d records=%d\x00",
		tr.HasHeader(), hdr.PID, len(sums), tr.Records())
	var word [4]byte
	for _, c := range sums {
		binary.LittleEndian.PutUint32(word[:], c)
		h.Write(word[:])
	}
	return "glb:" + hex.EncodeToString(h.Sum(nil)), nil
}

// HashRecords hashes an in-memory record slice (the experiments' memoized
// workload traces) by folding each record's canonical text rendering.
func HashRecords(recs []trace.Record) string {
	h := sha256.New()
	var buf []byte
	for i := range recs {
		buf = append(recs[i].AppendText(buf[:0]), '\n')
		h.Write(buf)
	}
	return "recs:" + hex.EncodeToString(h.Sum(nil))
}
