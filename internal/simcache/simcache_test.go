package simcache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tracedst/internal/cache"
	"tracedst/internal/ctype"
	"tracedst/internal/telemetry"
	"tracedst/internal/trace"
)

func testStore(t *testing.T) (*Store, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	s, err := Open(filepath.Join(t.TempDir(), "sc"), reg)
	if err != nil {
		t.Fatal(err)
	}
	return s, reg
}

func testKey() Key {
	return Key{
		Trace:  "recs:deadbeef",
		Config: ConfigSig(cache.Config{Size: 4096, BlockSize: 32, Assoc: 2, Repl: cache.ReplLRU}),
		Engine: EngineVersion,
	}
}

// TestRoundTrip is the cache's core promise: a hit returns the exact
// bytes the miss path stored — report, diagnostics and counts.
func TestRoundTrip(t *testing.T) {
	s, reg := testStore(t)
	k := testKey()

	if _, ok, err := s.Get(k); err != nil || ok {
		t.Fatalf("empty store: ok=%v err=%v, want miss", ok, err)
	}
	want := Entry{
		Records:  12345,
		BadLines: 2,
		Warnings: 1,
		Misses:   678,
		Report:   "== report ==\nline one\n\ttabbed\nnon-ascii: Δ\n",
	}
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(k)
	if err != nil || !ok {
		t.Fatalf("after put: ok=%v err=%v, want hit", ok, err)
	}
	if got != want {
		t.Errorf("round trip mutated the entry:\n got %+v\nwant %+v", got, want)
	}
	if got.Report != want.Report {
		t.Errorf("report bytes differ")
	}

	counters := map[string]int64{
		"simcache.lookups": 2, "simcache.hits": 1, "simcache.misses": 1, "simcache.puts": 1,
	}
	for name, want := range counters {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestKeySensitivity: every key field must change the digest — a result
// stored under one (trace, config, rule, tier, engine) is invisible to
// all others, including an engine-version bump.
func TestKeySensitivity(t *testing.T) {
	s, _ := testStore(t)
	base := testKey()
	if err := s.Put(base, Entry{Records: 1}); err != nil {
		t.Fatal(err)
	}
	variants := map[string]Key{
		"trace":    {Trace: "recs:other", Config: base.Config, Engine: base.Engine},
		"config":   {Trace: base.Trace, Config: ConfigSig(cache.Config{Size: 8192, BlockSize: 32, Assoc: 2, Repl: cache.ReplLRU}), Engine: base.Engine},
		"rule":     {Trace: base.Trace, Config: base.Config, Rule: HashText("rule x => y"), Engine: base.Engine},
		"sampling": {Trace: base.Trace, Config: base.Config, Sampling: "@shards4", Engine: base.Engine},
		"engine":   {Trace: base.Trace, Config: base.Config, Engine: base.Engine + 1},
	}
	for field, k := range variants {
		if _, ok, err := s.Get(k); err != nil {
			t.Fatal(err)
		} else if ok {
			t.Errorf("key differing only in %s hit the stored entry", field)
		}
	}
	if _, ok, _ := s.Get(base); !ok {
		t.Error("unmodified key missed")
	}
}

// TestCollisionAndTornFilesReadAsMiss: a file whose embedded key does not
// match the lookup (digest collision) and a torn/garbage file must both
// read as misses, never as wrong results.
func TestCollisionAndTornFilesReadAsMiss(t *testing.T) {
	s, _ := testStore(t)
	k1, k2 := testKey(), testKey()
	k2.Trace = "recs:other"
	if err := s.Put(k1, Entry{Records: 1}); err != nil {
		t.Fatal(err)
	}
	// Simulate a digest collision: k1's file holds k2's envelope.
	other, err := os.ReadFile(s.path(k2))
	if err == nil {
		t.Fatal("k2 should not exist yet")
	}
	if err := s.Put(k2, Entry{Records: 2}); err != nil {
		t.Fatal(err)
	}
	other, err = os.ReadFile(s.path(k2))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(k1), other, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(k1); err != nil || ok {
		t.Errorf("mismatching embedded key: ok=%v err=%v, want silent miss", ok, err)
	}
	// Torn write: truncated JSON.
	if err := os.WriteFile(s.path(k1), other[:len(other)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(k1); err != nil || ok {
		t.Errorf("torn file: ok=%v err=%v, want silent miss", ok, err)
	}
	// And Put must recover by overwriting in place.
	if err := s.Put(k1, Entry{Records: 3}); err != nil {
		t.Fatal(err)
	}
	if e, ok, _ := s.Get(k1); !ok || e.Records != 3 {
		t.Errorf("after overwrite: ok=%v entry=%+v", ok, e)
	}
}

func testRecords(n int) []trace.Record {
	recs := make([]trace.Record, n)
	for i := range recs {
		recs[i] = trace.Record{
			Op: trace.Load, Addr: uint64(0x1000 + 8*i), Size: 8, Func: "f",
			HasSym: true, Vis: trace.Global, Var: ctype.AccessExpr{Root: "a"},
		}
	}
	return recs
}

func writeTraceFile(t *testing.T, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func encodeBinary(t *testing.T, recs []trace.Record, indexed bool) []byte {
	t.Helper()
	var sb bytesBuffer
	bw := trace.NewBinaryWriter(&sb)
	if indexed {
		bw.EnableIndex()
		bw.SetBlockRecords(64)
	}
	for i := range recs {
		if err := bw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return sb.b
}

// bytesBuffer is a minimal io.Writer over a byte slice (avoids importing
// bytes just for a buffer in one helper).
type bytesBuffer struct{ b []byte }

func (w *bytesBuffer) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }

// TestHashFileTiers: clean indexed .glb files take the cheap CRC-fold
// path; unindexed binaries, damaged footers and text traces hash raw
// bytes — and equal content hashes equal either way.
func TestHashFileTiers(t *testing.T) {
	recs := testRecords(500)

	glb := encodeBinary(t, recs, true)
	p1 := writeTraceFile(t, "a.glb", glb)
	h1, err := HashFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(h1, "glb:") {
		t.Errorf("indexed trace hashed %q, want glb: prefix", h1)
	}
	// Same bytes under another name hash identically.
	h2, err := HashFile(writeTraceFile(t, "b.glb", glb))
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("identical .glb content hashed differently: %q vs %q", h1, h2)
	}
	// HashIndexed over an open handle agrees with HashFile.
	tr, err := trace.NewIndexedBytes(glb)
	if err != nil {
		t.Fatal(err)
	}
	if h3, err := HashIndexed(tr); err != nil || h3 != h1 {
		t.Errorf("HashIndexed %q (err %v) != HashFile %q", h3, err, h1)
	}

	// Damage the footer: the cheap path must refuse (distinct damage
	// variants share block CRCs but not diagnostics) and fall back to raw.
	damaged := append([]byte(nil), glb...)
	damaged[len(damaged)-5] ^= 0xff
	hd, err := HashFile(writeTraceFile(t, "damaged.glb", damaged))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(hd, "raw:") {
		t.Errorf("damaged-footer trace hashed %q, want raw: fallback", hd)
	}
	if hd == h1 {
		t.Error("damaged trace collided with the clean trace")
	}

	// Unindexed binary and text traces hash raw bytes.
	plain := encodeBinary(t, recs, false)
	hp, err := HashFile(writeTraceFile(t, "plain.bin", plain))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(hp, "raw:") {
		t.Errorf("unindexed binary hashed %q, want raw:", hp)
	}
	var txt bytesBuffer
	tw := trace.NewWriter(&txt)
	for i := range recs {
		if err := tw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	ht, err := HashFile(writeTraceFile(t, "t.trace", txt.b))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(ht, "raw:") {
		t.Errorf("text trace hashed %q, want raw:", ht)
	}

	// A one-record change must change every tier's hash.
	recs[100].Addr++
	if g2 := encodeBinary(t, recs, true); g2 != nil {
		hg, err := HashFile(writeTraceFile(t, "c.glb", g2))
		if err != nil {
			t.Fatal(err)
		}
		if hg == h1 {
			t.Error("modified trace collided under the glb CRC fold")
		}
	}
}

// TestHashRecords: deterministic over equal slices, sensitive to any
// record change, distinct from the file-tier prefixes.
func TestHashRecords(t *testing.T) {
	recs := testRecords(100)
	h1 := HashRecords(recs)
	if !strings.HasPrefix(h1, "recs:") {
		t.Fatalf("got %q", h1)
	}
	if h2 := HashRecords(testRecords(100)); h2 != h1 {
		t.Errorf("equal slices hashed differently")
	}
	recs[42].Size = 4
	if h2 := HashRecords(recs); h2 == h1 {
		t.Errorf("modified slice collided")
	}
	if HashRecords(nil) == HashRecords(testRecords(1)) {
		t.Error("empty slice collided with one record")
	}
}

// TestConfigSig: every simulation-relevant field is represented, the
// display name is not.
func TestConfigSig(t *testing.T) {
	base := cache.Config{Name: "a", Size: 4096, BlockSize: 32, Assoc: 2, Repl: cache.ReplLRU}
	renamed := base
	renamed.Name = "b"
	if ConfigSig(base) != ConfigSig(renamed) {
		t.Error("display name leaked into the signature")
	}
	bigger := base
	bigger.Size = 8192
	if ConfigSig(base) == ConfigSig(bigger) {
		t.Error("size change did not change the signature")
	}
	classify := base
	classify.ClassifyMisses = true
	if ConfigSig(base) == ConfigSig(classify) {
		t.Error("classify change did not change the signature")
	}
}
