package cache

import (
	"reflect"
	"testing"
)

// TestStatsMergeProperty checks the sharding identity behind Merge:
// simulating a trace in two shards on cold caches and merging the stats
// equals one simulation of the concatenated trace with a Flush at the
// boundary (Flush invalidates lines and resets replacement/classification
// state but keeps counters — exactly a shard boundary). ReplRandom is
// excluded: its draw stream survives Flush, so a cold-started shard
// diverges.
func TestStatsMergeProperty(t *testing.T) {
	cfgs := []Config{
		{Size: 1024, BlockSize: 32, Assoc: 1},
		{Size: 4096, BlockSize: 32, Assoc: 2, Repl: ReplLRU},
		{Size: 4096, BlockSize: 64, Assoc: 4, Repl: ReplFIFO},
		{Size: 8192, BlockSize: 32, Assoc: 64, Repl: ReplRoundRobin},
		{Size: 4096, BlockSize: 32, Assoc: 2, Write: WriteThrough, Alloc: NoWriteAllocate},
		{Size: 2048, BlockSize: 32, Assoc: 2, Repl: ReplLRU, ClassifyMisses: true},
	}
	traffic := multiTraffic(12000)
	for _, split := range []int{0, 1, len(traffic) / 3, len(traffic) / 2, len(traffic) - 1, len(traffic)} {
		a, b := traffic[:split], traffic[split:]
		for ci, cfg := range cfgs {
			feed := func(c *Cache, part []multiTrafficCase) {
				var buf []Outcome
				for _, tc := range part {
					buf = c.Access(tc.kind, tc.addr, tc.size, tc.owner, buf[:0])
				}
			}
			ref, err := New(cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			feed(ref, a)
			ref.Flush()
			feed(ref, b)

			shardA, _ := New(cfg, nil)
			shardB, _ := New(cfg, nil)
			feed(shardA, a)
			feed(shardB, b)
			merged := shardA.Stats()
			merged.Merge(shardB.Stats())

			if !reflect.DeepEqual(merged, ref.Stats()) {
				t.Errorf("config %d (%+v) split %d: merged shards != concatenated run\n merged: %+v\n ref:    %+v",
					ci, cfg, split, statsNoPerSet(merged), statsNoPerSet(ref.Stats()))
			}
		}
	}
}

// TestStatsMergeGrowsPerSet pins the slice-growth edge: merging stats from
// a cache with more sets widens the receiver without losing entries.
func TestStatsMergeGrowsPerSet(t *testing.T) {
	small := Stats{Reads: 2, ReadHits: 1, ReadMisses: 1, PerSet: []SetStats{{Hits: 1, Misses: 1}}}
	big := Stats{Writes: 3, WriteHits: 3, PerSet: []SetStats{{Hits: 1}, {Hits: 2}}}
	small.Merge(big)
	want := Stats{Reads: 2, ReadHits: 1, ReadMisses: 1, Writes: 3, WriteHits: 3,
		PerSet: []SetStats{{Hits: 2, Misses: 1}, {Hits: 2}}}
	if !reflect.DeepEqual(small, want) {
		t.Errorf("merge with growth: got %+v, want %+v", small, want)
	}
	// Merge into an empty Stats must be a pure copy.
	var zero Stats
	zero.Merge(want)
	if !reflect.DeepEqual(zero, want) {
		t.Errorf("merge into zero: got %+v, want %+v", zero, want)
	}
}
