package cache

import (
	"fmt"
	"math/bits"
)

// MultiSim evaluates N cache configurations over one access stream in a
// single pass: callers decode an address once and every configuration
// updates its own tag/replacement state and statistics. Results are exactly
// those of N independent Cache instances fed the same accesses — the golden
// equivalence tests assert byte-identical statistics — but the per-config
// state lives in flat, id-indexed slices (tags, replacement stamps, owners
// and flag bytes each in their own contiguous array, indexed set×assoc+way)
// so the inner loop touches dense memory instead of chasing per-set slice
// headers.
//
// The kernel covers single-level configurations without prefetching or
// three-C classification (CanMulti reports eligibility); dinero.MultiSim
// layers multi-level and classified configs on top by falling back to full
// Cache instances behind the same record-sharing front end.
//
// A MultiSim additionally supports deterministic set sampling: with
// SampleSets = K (a power of two), only sets whose index is ≡ 0 (mod K) are
// simulated and the rest of the traffic is dropped before touching any
// state. Because a set-associative cache's per-set state depends only on
// the accesses mapping to that set, the sampled sets' statistics are exact
// (for recency-based policies; ReplRandom draws from a shared per-config
// stream and becomes approximate), and scaling by the sampled fraction
// estimates the full-trace totals.
//
// A MultiSim is not safe for concurrent use.
type MultiSim struct {
	per        []multiCfg
	sampleSets int
}

// line-state flag bits.
const (
	mValid uint8 = 1 << iota
	mDirty
)

// multiCfg is one configuration's flattened cache state.
type multiCfg struct {
	cfg      Config
	setMask  uint64
	setBits  uint
	blkShift uint
	assoc    int
	nsets    int
	clock    uint64
	rng      uint64

	// sampleMask selects simulated sets (index&sampleMask == 0); zero
	// means every set. sampledSets is how many sets survive the filter.
	sampleMask  uint64
	sampledSets int

	// Flat line state, indexed set*assoc+way. stamps carries the
	// replacement policy's recency value: last use for LRU, fill time for
	// FIFO; round-robin and random ignore it.
	tags   []uint64
	stamps []uint64
	owners []OwnerID
	flags  []uint8

	// rr is the per-set round-robin pointer (ReplRoundRobin only).
	rr []int32
	// hint is the per-set most-recently-hit way, a search-order shortcut:
	// valid tags are unique within a set, so checking the hinted way first
	// finds the same line the full scan would.
	hint []int32

	stats Stats
}

// MultiVisit observes one simulated block access of one configuration:
// which set it landed in, whether it hit, and the owner of the line it
// evicted (NoOwner when nothing attributable was evicted). dinero's
// multi-config simulator uses it to attribute per-variable and
// per-function statistics without materializing Outcome slices.
type MultiVisit func(cfg, set int, hit bool, evictedOwner OwnerID)

// CanMulti reports whether cfg is eligible for the single-pass kernel:
// a valid single-level geometry without sequential prefetch or three-C
// classification (those paths need the full Cache machinery).
func CanMulti(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Prefetch != PrefetchNone {
		return fmt.Errorf("cache: multi-config kernel does not support prefetching (config %q)", cfg.Name)
	}
	if cfg.ClassifyMisses {
		return fmt.Errorf("cache: multi-config kernel does not support miss classification (config %q)", cfg.Name)
	}
	return nil
}

// NewMultiSim builds a single-pass simulator over cfgs. sampleSets of 0 or
// 1 simulates every set; a power of two K simulates only sets ≡ 0 (mod K)
// in every configuration.
func NewMultiSim(cfgs []Config, sampleSets int) (*MultiSim, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("cache: NewMultiSim needs at least one config")
	}
	if sampleSets < 0 || (sampleSets > 1 && bits.OnesCount(uint(sampleSets)) != 1) {
		return nil, fmt.Errorf("cache: set-sampling factor %d is not a power of two", sampleSets)
	}
	m := &MultiSim{per: make([]multiCfg, len(cfgs)), sampleSets: sampleSets}
	for i, cfg := range cfgs {
		if err := CanMulti(cfg); err != nil {
			return nil, err
		}
		p := &m.per[i]
		nsets := cfg.Sets()
		assoc := cfg.Assoc
		if assoc == 0 {
			assoc = int(cfg.Size / cfg.BlockSize)
		}
		p.cfg = cfg
		p.setMask = uint64(nsets - 1)
		p.setBits = uint(bits.OnesCount64(p.setMask))
		p.blkShift = uint(bits.TrailingZeros64(uint64(cfg.BlockSize)))
		p.assoc = assoc
		p.nsets = nsets
		p.rng = cfg.Seed*2862933555777941757 + 3037000493
		p.tags = make([]uint64, nsets*assoc)
		p.stamps = make([]uint64, nsets*assoc)
		p.owners = make([]OwnerID, nsets*assoc)
		p.flags = make([]uint8, nsets*assoc)
		p.hint = make([]int32, nsets)
		if cfg.Repl == ReplRoundRobin {
			p.rr = make([]int32, nsets)
		}
		p.stats.PerSet = make([]SetStats, nsets)
		p.sampledSets = nsets
		if sampleSets > 1 {
			p.sampleMask = uint64(sampleSets - 1)
			p.sampledSets = (nsets + sampleSets - 1) / sampleSets
		}
	}
	return m, nil
}

// Flush invalidates every line of every configuration, leaving statistics
// in place — the multi-config analogue of Cache.Flush. Like Cache.Flush it
// keeps the clock and random stream running, so a flushed simulator makes
// the same decisions as a cold one for every stamp-comparison policy (LRU,
// FIFO, round-robin); ReplRandom's stream position survives the flush,
// matching Cache.
func (m *MultiSim) Flush() {
	for ci := range m.per {
		p := &m.per[ci]
		clear(p.flags)
		clear(p.hint)
		if p.rr != nil {
			clear(p.rr)
		}
	}
}

// NumConfigs returns how many configurations the simulator evaluates.
func (m *MultiSim) NumConfigs() int { return len(m.per) }

// Config returns configuration i.
func (m *MultiSim) Config(i int) Config { return m.per[i].cfg }

// Stats returns a snapshot of configuration i's raw statistics. Under set
// sampling these cover only the sampled sets; SetScale gives the factor a
// caller multiplies by to estimate full-trace totals.
func (m *MultiSim) Stats(i int) Stats { return m.per[i].stats }

// MergeStats folds another run's raw statistics for configuration i into
// this simulator's (exact cell-wise addition, per-set counts included) —
// the reduce step of sharded multi-config simulation. The live stats are
// mutated in place; other is only read.
func (m *MultiSim) MergeStats(i int, other Stats) {
	m.per[i].stats.Merge(other)
}

// SampleSets returns the set-sampling factor (0 or 1 = exact).
func (m *MultiSim) SampleSets() int { return m.sampleSets }

// SetScale returns the per-config scaling factor that turns sampled-set
// counts into full-cache estimates: total sets over sampled sets (1 when
// sampling is off).
func (m *MultiSim) SetScale(i int) float64 {
	p := &m.per[i]
	if p.sampleMask == 0 {
		return 1
	}
	return float64(p.nsets) / float64(p.sampledSets)
}

// Access performs one possibly block-spanning access against every
// configuration. visit, when non-nil, is called once per simulated block
// per configuration (set-sampled blocks are skipped entirely).
func (m *MultiSim) Access(kind Kind, addr uint64, size int64, owner OwnerID, visit MultiVisit) {
	if size <= 0 {
		size = 1
	}
	end := addr + uint64(size) - 1
	for ci := range m.per {
		p := &m.per[ci]
		if p.assoc == 1 && visit == nil {
			p.accessDirectRun(kind, addr, end, owner)
			continue
		}
		first := addr >> p.blkShift
		last := end >> p.blkShift
		for b := first; b <= last; b++ {
			si := b & p.setMask
			if si&p.sampleMask != 0 {
				continue
			}
			hit, ev := p.accessBlock(kind, b, si, owner)
			if visit != nil {
				visit(ci, int(si), hit, ev)
			}
		}
	}
}

// accessDirectRun is the direct-mapped specialization of the block loop
// for callers that do not observe outcomes: the lookup, statistics and
// fill are inlined over locally bound slices whose masked indexing lets
// the compiler drop bounds checks. Decisions and counters are identical
// to accessBlock with assoc == 1 — the equivalence tests cover both
// paths.
func (p *multiCfg) accessDirectRun(kind Kind, addr, end uint64, owner OwnerID) {
	tags := p.tags
	n := len(tags)
	if n == 0 {
		return
	}
	stamps := p.stamps[:n]
	owners := p.owners[:n]
	flags := p.flags[:n]
	perSet := p.stats.PerSet[:n]
	wb := p.cfg.Write == WriteBack
	writeAround := kind == Write && p.cfg.Alloc == NoWriteAllocate
	setDirty := kind == Write && wb
	first := addr >> p.blkShift
	last := end >> p.blkShift
	for b := first; b <= last; b++ {
		si := int(b) & (n - 1)
		if uint64(si)&p.sampleMask != 0 {
			continue
		}
		p.clock++
		tag := b >> p.setBits
		if tags[si] == tag && flags[si]&mValid != 0 { // hit
			if setDirty {
				flags[si] |= mDirty
			}
			if kind == Read {
				p.stats.Reads++
				p.stats.ReadHits++
			} else {
				p.stats.Writes++
				p.stats.WriteHits++
			}
			perSet[si].Hits++
			continue
		}
		if kind == Read {
			p.stats.Reads++
			p.stats.ReadMisses++
		} else {
			p.stats.Writes++
			p.stats.WriteMisses++
		}
		perSet[si].Misses++
		if writeAround {
			continue
		}
		if f := flags[si]; f&mValid != 0 {
			p.stats.Evictions++
			if f&mDirty != 0 {
				p.stats.Writebacks++
			}
		}
		tags[si] = tag
		stamps[si] = p.clock
		owners[si] = owner
		fl := mValid
		if setDirty {
			fl |= mDirty
		}
		flags[si] = fl
	}
}

// accessBlock mirrors Cache.accessBlock for the supported envelope
// (single level, no prefetch, no classification): same clock, same
// replacement decisions, same statistics.
func (p *multiCfg) accessBlock(kind Kind, block, si uint64, owner OwnerID) (hit bool, evictedOwner OwnerID) {
	p.clock++
	tag := block >> p.setBits
	base := int(si) * p.assoc

	w := -1
	if p.assoc == 1 {
		if p.tags[base] == tag && p.flags[base]&mValid != 0 {
			w = 0
		}
	} else {
		if h := int(p.hint[si]); h < p.assoc {
			if i := base + h; p.tags[i] == tag && p.flags[i]&mValid != 0 {
				w = h
			}
		}
		if w < 0 {
			for j := 0; j < p.assoc; j++ {
				if i := base + j; p.tags[i] == tag && p.flags[i]&mValid != 0 {
					w = j
					break
				}
			}
		}
	}

	if w >= 0 { // hit
		i := base + w
		if p.assoc > 1 {
			p.hint[si] = int32(w)
		}
		if p.cfg.Repl == ReplLRU {
			p.stamps[i] = p.clock
		}
		if kind == Write && p.cfg.Write == WriteBack {
			p.flags[i] |= mDirty
		}
		p.record(kind, si, true)
		return true, NoOwner
	}

	// Miss.
	p.record(kind, si, false)
	if kind == Write && p.cfg.Alloc == NoWriteAllocate {
		// Write-around: no fill (and no next level to forward to).
		return false, NoOwner
	}

	if p.assoc == 1 {
		w = 0
	} else {
		w = p.victim(base, si)
	}
	i := base + w
	if p.flags[i]&mValid != 0 {
		evictedOwner = p.owners[i]
		p.stats.Evictions++
		if p.flags[i]&mDirty != 0 {
			p.stats.Writebacks++
		}
	}
	p.tags[i] = tag
	p.stamps[i] = p.clock
	p.owners[i] = owner
	fl := mValid
	if kind == Write && p.cfg.Write == WriteBack {
		fl |= mDirty
	}
	p.flags[i] = fl
	if p.assoc > 1 {
		p.hint[si] = int32(w)
	}
	return false, evictedOwner
}

// victim replicates Cache.pickVictim on the flat layout: an invalid way
// always wins, then the configured policy decides.
func (p *multiCfg) victim(base int, si uint64) int {
	for w := 0; w < p.assoc; w++ {
		if p.flags[base+w]&mValid == 0 {
			return w
		}
	}
	switch p.cfg.Repl {
	case ReplLRU, ReplFIFO:
		best, bestStamp := 0, p.stamps[base]
		for w := 1; w < p.assoc; w++ {
			if s := p.stamps[base+w]; s < bestStamp {
				best, bestStamp = w, s
			}
		}
		return best
	case ReplRandom:
		// xorshift64*, same stream as Cache.
		p.rng ^= p.rng >> 12
		p.rng ^= p.rng << 25
		p.rng ^= p.rng >> 27
		return int((p.rng * 2685821657736338717) % uint64(p.assoc))
	case ReplRoundRobin:
		w := p.rr[si]
		p.rr[si] = (w + 1) % int32(p.assoc)
		return int(w)
	}
	return 0
}

// record updates the demand counters, inlining Cache.record's non-classify
// half.
func (p *multiCfg) record(kind Kind, si uint64, hit bool) {
	ps := &p.stats.PerSet[si]
	if kind == Read {
		p.stats.Reads++
		if hit {
			p.stats.ReadHits++
			ps.Hits++
		} else {
			p.stats.ReadMisses++
			ps.Misses++
		}
	} else {
		p.stats.Writes++
		if hit {
			p.stats.WriteHits++
			ps.Hits++
		} else {
			p.stats.WriteMisses++
			ps.Misses++
		}
	}
}
