package cache

import (
	"fmt"
	"strings"
)

// SetStats is the per-set hit/miss tally behind the paper's figures.
type SetStats struct {
	Hits   int64
	Misses int64
}

// Stats accumulates a cache level's counters.
type Stats struct {
	Reads       int64
	ReadHits    int64
	ReadMisses  int64
	Writes      int64
	WriteHits   int64
	WriteMisses int64

	Evictions  int64
	Writebacks int64

	// Prefetches counts issued sequential prefetches; PrefetchFills those
	// that actually brought a block in (the rest were already resident).
	Prefetches    int64
	PrefetchFills int64

	// Three-C classification (only when Config.ClassifyMisses).
	Compulsory int64
	Capacity   int64
	Conflict   int64

	PerSet []SetStats
}

// Accesses is the total number of block-granular accesses.
func (s Stats) Accesses() int64 { return s.Reads + s.Writes }

// Hits is the total hit count.
func (s Stats) Hits() int64 { return s.ReadHits + s.WriteHits }

// Misses is the total miss count.
func (s Stats) Misses() int64 { return s.ReadMisses + s.WriteMisses }

// MissRatio returns misses/accesses (0 when idle).
func (s Stats) MissRatio() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(s.Accesses())
}

// Report renders a DineroIV-flavoured statistics block.
func (s Stats) Report(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", name)
	fmt.Fprintf(&b, " Metrics               Total      Fetch       Read      Write\n")
	fmt.Fprintf(&b, " -----------------  --------   --------   --------   --------\n")
	fmt.Fprintf(&b, " Demand Fetches     %9d  %9d  %9d  %9d\n", s.Accesses(), int64(0), s.Reads, s.Writes)
	fmt.Fprintf(&b, " Demand Misses      %9d  %9d  %9d  %9d\n", s.Misses(), int64(0), s.ReadMisses, s.WriteMisses)
	fmt.Fprintf(&b, " Demand Miss Rate   %9.4f  %9.4f  %9.4f  %9.4f\n",
		s.MissRatio(), 0.0, ratio(s.ReadMisses, s.Reads), ratio(s.WriteMisses, s.Writes))
	fmt.Fprintf(&b, " Evictions          %9d   (writebacks %d)\n", s.Evictions, s.Writebacks)
	if s.Prefetches > 0 {
		fmt.Fprintf(&b, " Prefetches         %9d   (fills %d)\n", s.Prefetches, s.PrefetchFills)
	}
	if s.Compulsory+s.Capacity+s.Conflict > 0 {
		fmt.Fprintf(&b, " Miss Classes        compulsory %d   capacity %d   conflict %d\n",
			s.Compulsory, s.Capacity, s.Conflict)
	}
	return b.String()
}

// Merge adds other's counters into s, element-wise for the per-set tally
// (growing s.PerSet if other covers more sets). Every Stats field is a sum
// over independent accesses, so merging is exact and associative: simulating
// a trace in shards — with cold caches between shards, i.e. a Flush at each
// boundary — and merging the shard stats yields the same totals as one
// simulation of the concatenated trace. This is the aggregation primitive
// for sharded sweep scale-out.
func (s *Stats) Merge(other Stats) {
	s.Reads += other.Reads
	s.ReadHits += other.ReadHits
	s.ReadMisses += other.ReadMisses
	s.Writes += other.Writes
	s.WriteHits += other.WriteHits
	s.WriteMisses += other.WriteMisses
	s.Evictions += other.Evictions
	s.Writebacks += other.Writebacks
	s.Prefetches += other.Prefetches
	s.PrefetchFills += other.PrefetchFills
	s.Compulsory += other.Compulsory
	s.Capacity += other.Capacity
	s.Conflict += other.Conflict
	if len(other.PerSet) > len(s.PerSet) {
		grown := make([]SetStats, len(other.PerSet))
		copy(grown, s.PerSet)
		s.PerSet = grown
	}
	for i, ps := range other.PerSet {
		s.PerSet[i].Hits += ps.Hits
		s.PerSet[i].Misses += ps.Misses
	}
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Scaled returns a copy of s with every total multiplied by factor and
// rounded to the nearest count — the estimate a sampled simulation reports
// for the full trace. Totals and misses are rounded independently (misses
// are the primary signal sampling consumers read); hits are derived as
// total − misses so the structural invariants Reads == ReadHits +
// ReadMisses and Writes == WriteHits + WriteMisses hold exactly — per-side
// rounding could otherwise drift them apart by ±1. Per-set counters are
// scaled too; under set sampling the unsampled sets stay zero (scaling
// cannot invent sets that were never simulated), so per-set consumers
// should read only the sampled indices.
func (s Stats) Scaled(factor float64) Stats {
	if factor == 1 {
		out := s
		out.PerSet = append([]SetStats(nil), s.PerSet...)
		return out
	}
	scale := func(n int64) int64 { return int64(float64(n)*factor + 0.5) }
	// splitSide rounds the side's total and miss count, clamps misses into
	// [0, total] and derives hits from the difference.
	splitSide := func(total, misses int64) (t, h, m int64) {
		t = scale(total)
		m = scale(misses)
		if m > t {
			m = t
		}
		return t, t - m, m
	}
	out := Stats{
		Evictions:     scale(s.Evictions),
		Writebacks:    scale(s.Writebacks),
		Prefetches:    scale(s.Prefetches),
		PrefetchFills: scale(s.PrefetchFills),
		Compulsory:    scale(s.Compulsory),
		Capacity:      scale(s.Capacity),
		Conflict:      scale(s.Conflict),
		PerSet:        make([]SetStats, len(s.PerSet)),
	}
	out.Reads, out.ReadHits, out.ReadMisses = splitSide(s.Reads, s.ReadMisses)
	out.Writes, out.WriteHits, out.WriteMisses = splitSide(s.Writes, s.WriteMisses)
	for i, ps := range s.PerSet {
		out.PerSet[i] = SetStats{Hits: scale(ps.Hits), Misses: scale(ps.Misses)}
	}
	return out
}

// OccupiedSets returns the indices of sets with any traffic, in order.
func (s Stats) OccupiedSets() []int {
	var out []int
	for i, ps := range s.PerSet {
		if ps.Hits+ps.Misses > 0 {
			out = append(out, i)
		}
	}
	return out
}
