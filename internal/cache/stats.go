package cache

import (
	"fmt"
	"strings"
)

// SetStats is the per-set hit/miss tally behind the paper's figures.
type SetStats struct {
	Hits   int64
	Misses int64
}

// Stats accumulates a cache level's counters.
type Stats struct {
	Reads       int64
	ReadHits    int64
	ReadMisses  int64
	Writes      int64
	WriteHits   int64
	WriteMisses int64

	Evictions  int64
	Writebacks int64

	// Prefetches counts issued sequential prefetches; PrefetchFills those
	// that actually brought a block in (the rest were already resident).
	Prefetches    int64
	PrefetchFills int64

	// Three-C classification (only when Config.ClassifyMisses).
	Compulsory int64
	Capacity   int64
	Conflict   int64

	PerSet []SetStats
}

// Accesses is the total number of block-granular accesses.
func (s Stats) Accesses() int64 { return s.Reads + s.Writes }

// Hits is the total hit count.
func (s Stats) Hits() int64 { return s.ReadHits + s.WriteHits }

// Misses is the total miss count.
func (s Stats) Misses() int64 { return s.ReadMisses + s.WriteMisses }

// MissRatio returns misses/accesses (0 when idle).
func (s Stats) MissRatio() float64 {
	if s.Accesses() == 0 {
		return 0
	}
	return float64(s.Misses()) / float64(s.Accesses())
}

// Report renders a DineroIV-flavoured statistics block.
func (s Stats) Report(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", name)
	fmt.Fprintf(&b, " Metrics               Total      Fetch       Read      Write\n")
	fmt.Fprintf(&b, " -----------------  --------   --------   --------   --------\n")
	fmt.Fprintf(&b, " Demand Fetches     %9d  %9d  %9d  %9d\n", s.Accesses(), int64(0), s.Reads, s.Writes)
	fmt.Fprintf(&b, " Demand Misses      %9d  %9d  %9d  %9d\n", s.Misses(), int64(0), s.ReadMisses, s.WriteMisses)
	fmt.Fprintf(&b, " Demand Miss Rate   %9.4f  %9.4f  %9.4f  %9.4f\n",
		s.MissRatio(), 0.0, ratio(s.ReadMisses, s.Reads), ratio(s.WriteMisses, s.Writes))
	fmt.Fprintf(&b, " Evictions          %9d   (writebacks %d)\n", s.Evictions, s.Writebacks)
	if s.Prefetches > 0 {
		fmt.Fprintf(&b, " Prefetches         %9d   (fills %d)\n", s.Prefetches, s.PrefetchFills)
	}
	if s.Compulsory+s.Capacity+s.Conflict > 0 {
		fmt.Fprintf(&b, " Miss Classes        compulsory %d   capacity %d   conflict %d\n",
			s.Compulsory, s.Capacity, s.Conflict)
	}
	return b.String()
}

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// OccupiedSets returns the indices of sets with any traffic, in order.
func (s Stats) OccupiedSets() []int {
	var out []int
	for i, ps := range s.PerSet {
		if ps.Hits+ps.Misses > 0 {
			out = append(out, i)
		}
	}
	return out
}
