package cache

import (
	"fmt"
)

// Kind is the access kind the simulator distinguishes.
type Kind int

// Access kinds.
const (
	Read Kind = iota
	Write
)

// MissClass is the three-C classification of a miss.
type MissClass int

// Miss classes (valid when Config.ClassifyMisses is set).
const (
	NotMiss MissClass = iota
	Compulsory
	Capacity
	Conflict
)

// String returns the class name.
func (m MissClass) String() string {
	switch m {
	case NotMiss:
		return "hit"
	case Compulsory:
		return "compulsory"
	case Capacity:
		return "capacity"
	case Conflict:
		return "conflict"
	}
	return fmt.Sprintf("MissClass(%d)", int(m))
}

// OwnerID labels the program variable that filled a line, for eviction
// attribution. The cache never interprets it beyond equality; callers that
// track variables by name intern them (e.g. via trace.SymTab) and pass the
// resulting integer. NoOwner (zero) means "unknown".
type OwnerID int32

// NoOwner is the OwnerID of an unattributed access.
const NoOwner OwnerID = 0

// Outcome describes what one block-granular access did.
type Outcome struct {
	Hit  bool
	Set  int
	Way  int
	Miss MissClass
	// Evicted reports a valid line was replaced; EvictedOwner is the id of
	// the variable that had filled it.
	Evicted      bool
	EvictedOwner OwnerID
	EvictedDirty bool
}

type line struct {
	valid   bool
	tag     uint64
	dirty   bool
	lastUse uint64
	filled  uint64
	owner   OwnerID
}

type set struct {
	lines  []line
	rrNext int // round-robin pointer
}

// Cache is one simulated cache level.
type Cache struct {
	cfg      Config
	sets     []set
	setMask  uint64
	setBits  uint
	blkShift uint
	clock    uint64
	rng      uint64
	stats    Stats
	next     *Cache

	// seen tracks ever-referenced blocks for compulsory classification.
	seen map[uint64]bool
	// shadow is an infinite-capacity LRU directory limited to Size/Block
	// entries for capacity-vs-conflict classification.
	shadow *shadowLRU

	// scratch receives the outcomes of fill/writeback traffic bubbled to
	// the next level, so propagation never allocates. A Cache is not safe
	// for concurrent use, so reusing it across calls is fine.
	scratch []Outcome
}

// New builds a cache level. next, if non-nil, receives miss fills and
// write-through/writeback traffic.
func New(cfg Config, next *Cache) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Sets()
	assoc := cfg.Assoc
	if assoc == 0 {
		assoc = int(cfg.Size / cfg.BlockSize)
	}
	c := &Cache{
		cfg:      cfg,
		sets:     make([]set, nsets),
		setMask:  uint64(nsets - 1),
		setBits:  uint(popcount(uint64(nsets - 1))),
		blkShift: uint(trailingZeros(uint64(cfg.BlockSize))),
		rng:      cfg.Seed*2862933555777941757 + 3037000493,
		next:     next,
	}
	for i := range c.sets {
		c.sets[i].lines = make([]line, assoc)
	}
	c.stats.PerSet = make([]SetStats, nsets)
	if cfg.ClassifyMisses {
		c.seen = map[uint64]bool{}
		c.shadow = newShadowLRU(int(cfg.Size / cfg.BlockSize))
	}
	return c, nil
}

func trailingZeros(v uint64) int {
	n := 0
	for v&1 == 0 {
		v >>= 1
		n++
	}
	return n
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Next returns the next level, if any.
func (c *Cache) Next() *Cache { return c.next }

// Stats returns a snapshot of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// SetOf returns the set index addr maps to.
func (c *Cache) SetOf(addr uint64) int {
	return int((addr >> c.blkShift) & c.setMask)
}

// BlockOf returns the block number of addr.
func (c *Cache) BlockOf(addr uint64) uint64 { return addr >> c.blkShift }

// Access performs one possibly block-spanning access. owner labels the
// program variable for eviction attribution (NoOwner when unknown). One
// Outcome per block touched is appended to out, which is returned; passing
// a reused buffer (out[:0]) keeps the hot path allocation-free, passing nil
// allocates as before.
func (c *Cache) Access(kind Kind, addr uint64, size int64, owner OwnerID, out []Outcome) []Outcome {
	if size <= 0 {
		size = 1
	}
	first := addr >> c.blkShift
	last := (addr + uint64(size) - 1) >> c.blkShift
	missed := false
	for b := first; b <= last; b++ {
		o := c.accessBlock(kind, b, owner)
		missed = missed || !o.Hit
		out = append(out, o)
	}
	if c.cfg.Prefetch == PrefetchAlways || (c.cfg.Prefetch == PrefetchMiss && missed) {
		c.prefetchBlock(last+1, owner)
	}
	return out
}

// bubble sends one block of fill/writeback traffic to the next level,
// reusing the scratch buffer so propagation does not allocate.
func (c *Cache) bubble(kind Kind, addr uint64, owner OwnerID) {
	c.scratch = c.next.Access(kind, addr, c.cfg.BlockSize, owner, c.scratch[:0])
}

// prefetchBlock brings the next sequential block in without touching the
// demand statistics (DineroIV-style sequential prefetch).
func (c *Cache) prefetchBlock(block uint64, owner OwnerID) {
	c.stats.Prefetches++
	si := int(block & c.setMask)
	tag := block >> c.setBits
	st := &c.sets[si]
	for w := range st.lines {
		if st.lines[w].valid && st.lines[w].tag == tag {
			return // already resident; recency deliberately untouched
		}
	}
	c.stats.PrefetchFills++
	if c.next != nil {
		c.bubble(Read, block<<c.blkShift, owner)
	}
	c.clock++
	w := c.pickVictim(st)
	ln := &st.lines[w]
	if ln.valid {
		c.stats.Evictions++
		if ln.dirty {
			c.stats.Writebacks++
			if c.next != nil {
				victimBlock := ln.tag<<c.setBits | uint64(si)
				c.bubble(Write, victimBlock<<c.blkShift, ln.owner)
			}
		}
	}
	*ln = line{valid: true, tag: tag, lastUse: c.clock, filled: c.clock, owner: owner}
	c.classifyTouch(block)
}

// accessBlock performs one block-granular access.
func (c *Cache) accessBlock(kind Kind, block uint64, owner OwnerID) Outcome {
	c.clock++
	si := int(block & c.setMask)
	tag := block >> c.setBits
	st := &c.sets[si]

	var res Outcome
	res.Set = si

	// Lookup.
	for w := range st.lines {
		ln := &st.lines[w]
		if ln.valid && ln.tag == tag {
			res.Hit = true
			res.Way = w
			ln.lastUse = c.clock
			if kind == Write {
				if c.cfg.Write == WriteBack {
					ln.dirty = true
				} else if c.next != nil {
					c.bubble(Write, block<<c.blkShift, owner)
				}
			}
			c.record(kind, si, true, NotMiss)
			c.classifyTouch(block)
			return res
		}
	}

	// Miss.
	res.Miss = c.classifyMiss(block)
	c.record(kind, si, false, res.Miss)

	if kind == Write && c.cfg.Alloc == NoWriteAllocate {
		// Write-around: no fill.
		if c.next != nil {
			c.bubble(Write, block<<c.blkShift, owner)
		}
		c.classifyTouch(block)
		return res
	}

	// Fetch from the next level.
	if c.next != nil {
		c.bubble(Read, block<<c.blkShift, owner)
	}

	// Victim selection.
	w := c.pickVictim(st)
	ln := &st.lines[w]
	if ln.valid {
		res.Evicted = true
		res.EvictedOwner = ln.owner
		res.EvictedDirty = ln.dirty
		c.stats.Evictions++
		if ln.dirty {
			c.stats.Writebacks++
			if c.next != nil {
				victimBlock := ln.tag<<c.setBits | uint64(si)
				c.bubble(Write, victimBlock<<c.blkShift, ln.owner)
			}
		}
	}
	*ln = line{
		valid:   true,
		tag:     tag,
		lastUse: c.clock,
		filled:  c.clock,
		owner:   owner,
	}
	if kind == Write {
		if c.cfg.Write == WriteBack {
			ln.dirty = true
		} else if c.next != nil {
			c.bubble(Write, block<<c.blkShift, owner)
		}
	}
	res.Way = w
	c.classifyTouch(block)
	return res
}

func popcount(v uint64) int {
	n := 0
	for v != 0 {
		n += int(v & 1)
		v >>= 1
	}
	return n
}

// pickVictim chooses the way to replace in st.
func (c *Cache) pickVictim(st *set) int {
	// An invalid way always wins.
	for w := range st.lines {
		if !st.lines[w].valid {
			return w
		}
	}
	switch c.cfg.Repl {
	case ReplLRU:
		best, bestUse := 0, st.lines[0].lastUse
		for w := 1; w < len(st.lines); w++ {
			if st.lines[w].lastUse < bestUse {
				best, bestUse = w, st.lines[w].lastUse
			}
		}
		return best
	case ReplFIFO:
		best, bestFill := 0, st.lines[0].filled
		for w := 1; w < len(st.lines); w++ {
			if st.lines[w].filled < bestFill {
				best, bestFill = w, st.lines[w].filled
			}
		}
		return best
	case ReplRandom:
		// xorshift64*
		c.rng ^= c.rng >> 12
		c.rng ^= c.rng << 25
		c.rng ^= c.rng >> 27
		return int((c.rng * 2685821657736338717) % uint64(len(st.lines)))
	case ReplRoundRobin:
		w := st.rrNext
		st.rrNext = (st.rrNext + 1) % len(st.lines)
		return w
	}
	return 0
}

func (c *Cache) record(kind Kind, set int, hit bool, miss MissClass) {
	ps := &c.stats.PerSet[set]
	if kind == Read {
		c.stats.Reads++
		if hit {
			c.stats.ReadHits++
		} else {
			c.stats.ReadMisses++
		}
	} else {
		c.stats.Writes++
		if hit {
			c.stats.WriteHits++
		} else {
			c.stats.WriteMisses++
		}
	}
	if hit {
		ps.Hits++
	} else {
		ps.Misses++
		switch miss {
		case Compulsory:
			c.stats.Compulsory++
		case Capacity:
			c.stats.Capacity++
		case Conflict:
			c.stats.Conflict++
		}
	}
}

// classifyMiss implements the standard three-C method: first touch is
// compulsory; otherwise a miss that would also miss in a fully-associative
// LRU cache of the same capacity is a capacity miss, else a conflict miss.
func (c *Cache) classifyMiss(block uint64) MissClass {
	if c.seen == nil {
		return NotMiss
	}
	if !c.seen[block] {
		return Compulsory
	}
	if c.shadow.contains(block) {
		return Conflict
	}
	return Capacity
}

func (c *Cache) classifyTouch(block uint64) {
	if c.seen == nil {
		return
	}
	c.seen[block] = true
	c.shadow.touch(block)
}

// MergeStats folds another run's counters into this level's statistics
// (see Stats.Merge) — the aggregation hook for sharded simulation.
func (c *Cache) MergeStats(other Stats) { c.stats.Merge(other) }

// Flush invalidates every line, leaving statistics in place (cold-cache
// restarts between benchmark iterations).
func (c *Cache) Flush() {
	for i := range c.sets {
		for w := range c.sets[i].lines {
			c.sets[i].lines[w] = line{}
		}
		c.sets[i].rrNext = 0
	}
	if c.seen != nil {
		c.seen = map[uint64]bool{}
		c.shadow = newShadowLRU(int(c.cfg.Size / c.cfg.BlockSize))
	}
}

// ResidentBlocks returns how many of the given blocks are currently cached
// (used by the set-pinning residency analysis).
func (c *Cache) ResidentBlocks(blocks []uint64) int {
	n := 0
	for _, b := range blocks {
		si := int(b & c.setMask)
		tag := b >> c.setBits
		for _, ln := range c.sets[si].lines {
			if ln.valid && ln.tag == tag {
				n++
				break
			}
		}
	}
	return n
}

// shadowLRU is a bounded fully-associative LRU directory.
type shadowLRU struct {
	cap   int
	order map[uint64]uint64 // block -> last use
	tick  uint64
}

func newShadowLRU(capacity int) *shadowLRU {
	return &shadowLRU{cap: capacity, order: map[uint64]uint64{}}
}

func (s *shadowLRU) touch(block uint64) {
	s.tick++
	if _, ok := s.order[block]; !ok && len(s.order) >= s.cap {
		// Evict the least recently used entry.
		var lruB uint64
		var lruT uint64 = ^uint64(0)
		for b, t := range s.order {
			if t < lruT {
				lruB, lruT = b, t
			}
		}
		delete(s.order, lruB)
	}
	s.order[block] = s.tick
}

func (s *shadowLRU) contains(block uint64) bool {
	_, ok := s.order[block]
	return ok
}
