package cache

import (
	"math/rand"
	"testing"
)

// TestScaledInvariants: scaling must preserve the structural identities
// Reads == ReadHits + ReadMisses and Writes == WriteHits + WriteMisses for
// every factor — independent per-field rounding used to drift them apart
// by ±1.
func TestScaledInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	factors := []float64{1, 2, 4, 8, 1.5, 3.75, 7.9999, 16.0001, 1024}
	for trial := 0; trial < 2000; trial++ {
		s := Stats{
			Reads:  rng.Int63n(1_000_000),
			Writes: rng.Int63n(1_000_000),
		}
		s.ReadMisses = rng.Int63n(s.Reads + 1)
		s.ReadHits = s.Reads - s.ReadMisses
		s.WriteMisses = rng.Int63n(s.Writes + 1)
		s.WriteHits = s.Writes - s.WriteMisses
		f := factors[trial%len(factors)]
		out := s.Scaled(f)
		if out.Reads != out.ReadHits+out.ReadMisses {
			t.Fatalf("factor %v: Reads %d != hits %d + misses %d (in: %+v)",
				f, out.Reads, out.ReadHits, out.ReadMisses, s)
		}
		if out.Writes != out.WriteHits+out.WriteMisses {
			t.Fatalf("factor %v: Writes %d != hits %d + misses %d (in: %+v)",
				f, out.Writes, out.WriteHits, out.WriteMisses, s)
		}
		if out.ReadHits < 0 || out.ReadMisses < 0 || out.WriteHits < 0 || out.WriteMisses < 0 {
			t.Fatalf("factor %v: negative component in %+v", f, out)
		}
		if out.Accesses() != out.Hits()+out.Misses() {
			t.Fatalf("factor %v: accesses %d != hits %d + misses %d",
				f, out.Accesses(), out.Hits(), out.Misses())
		}
	}
}

// TestScaledRounding: the primary signals (totals and misses) round to
// nearest independently; hits absorb the residue.
func TestScaledRounding(t *testing.T) {
	s := Stats{Reads: 3, ReadHits: 2, ReadMisses: 1, Writes: 5, WriteHits: 5}
	out := s.Scaled(1.5)
	// 3*1.5 = 4.5 -> 5 reads; 1*1.5 = 1.5 -> 2 misses; hits = 3.
	if out.Reads != 5 || out.ReadMisses != 2 || out.ReadHits != 3 {
		t.Fatalf("reads side = %d/%d/%d, want 5/3/2 (total/hits/misses)",
			out.Reads, out.ReadHits, out.ReadMisses)
	}
	// 5*1.5 = 7.5 -> 8 writes, no misses.
	if out.Writes != 8 || out.WriteMisses != 0 || out.WriteHits != 8 {
		t.Fatalf("writes side = %d/%d/%d, want 8/8/0", out.Writes, out.WriteHits, out.WriteMisses)
	}
}

// TestScaledMissesClamped: an all-miss side cannot scale past its total.
func TestScaledMissesClamped(t *testing.T) {
	s := Stats{Reads: 3, ReadMisses: 3}
	out := s.Scaled(1.1)
	// 3*1.1 = 3.3 -> 3 both; hits must stay 0, not go negative.
	if out.Reads != 3 || out.ReadMisses != 3 || out.ReadHits != 0 {
		t.Fatalf("got %d/%d/%d, want 3/0/3", out.Reads, out.ReadHits, out.ReadMisses)
	}
}

// TestScaledIdentity: factor 1 is a deep copy.
func TestScaledIdentity(t *testing.T) {
	s := Stats{Reads: 7, ReadHits: 4, ReadMisses: 3, PerSet: []SetStats{{Hits: 2, Misses: 1}}}
	out := s.Scaled(1)
	if out.Reads != 7 || out.ReadHits != 4 || out.ReadMisses != 3 {
		t.Fatalf("identity scaling changed counters: %+v", out)
	}
	out.PerSet[0].Hits = 99
	if s.PerSet[0].Hits != 2 {
		t.Fatal("Scaled(1) aliases the input's PerSet slice")
	}
}
