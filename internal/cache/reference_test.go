package cache

import (
	"testing"
	"testing/quick"
)

// refDirectMapped is an independent, obviously-correct model of a
// direct-mapped cache: a map from set index to resident block number.
type refDirectMapped struct {
	blockShift uint
	sets       uint64
	resident   map[uint64]uint64
}

func newRefDM(size, blockSize int64) *refDirectMapped {
	shift := uint(0)
	for int64(1)<<shift < blockSize {
		shift++
	}
	return &refDirectMapped{
		blockShift: shift,
		sets:       uint64(size / blockSize),
		resident:   map[uint64]uint64{},
	}
}

func (r *refDirectMapped) access(addr uint64) bool {
	block := addr >> r.blockShift
	set := block % r.sets
	if b, ok := r.resident[set]; ok && b == block {
		return true
	}
	r.resident[set] = block
	return false
}

// TestDirectMappedMatchesReference drives the production simulator and the
// reference model with the same random access stream and requires
// hit-for-hit agreement.
func TestDirectMappedMatchesReference(t *testing.T) {
	f := func(addrs []uint32) bool {
		cfg := Config{Size: 2048, BlockSize: 32, Assoc: 1}
		c, err := New(cfg, nil)
		if err != nil {
			return false
		}
		ref := newRefDM(cfg.Size, cfg.BlockSize)
		for _, a := range addrs {
			got := c.Access(Read, uint64(a), 1, NoOwner, nil)[0].Hit
			want := ref.access(uint64(a))
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// refFullyAssocLRU is an independent fully-associative LRU model.
type refFullyAssocLRU struct {
	blockShift uint
	capacity   int
	order      []uint64 // MRU first
}

func (r *refFullyAssocLRU) access(addr uint64) bool {
	block := addr >> r.blockShift
	for i, b := range r.order {
		if b == block {
			copy(r.order[1:i+1], r.order[:i])
			r.order[0] = block
			return true
		}
	}
	r.order = append([]uint64{block}, r.order...)
	if len(r.order) > r.capacity {
		r.order = r.order[:r.capacity]
	}
	return false
}

// TestFullyAssociativeLRUMatchesReference cross-checks the LRU datapath.
func TestFullyAssociativeLRUMatchesReference(t *testing.T) {
	f := func(addrs []uint16) bool {
		cfg := Config{Size: 256, BlockSize: 32, Assoc: 0, Repl: ReplLRU}
		c, err := New(cfg, nil)
		if err != nil {
			return false
		}
		ref := &refFullyAssocLRU{blockShift: 5, capacity: 8}
		for _, a := range addrs {
			got := c.Access(Read, uint64(a), 1, NoOwner, nil)[0].Hit
			if got != ref.access(uint64(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLRUInclusionProperty: with LRU and a fixed set count, doubling the
// associativity can never turn a hit into a miss (stack property per set).
func TestLRUInclusionProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		small, err := New(Config{Size: 1024, BlockSize: 32, Assoc: 2, Repl: ReplLRU}, nil)
		if err != nil {
			return false
		}
		// Same 16 sets, twice the ways.
		big, err := New(Config{Size: 2048, BlockSize: 32, Assoc: 4, Repl: ReplLRU}, nil)
		if err != nil {
			return false
		}
		if small.Config().Sets() != big.Config().Sets() {
			return false
		}
		for _, a := range addrs {
			hitSmall := small.Access(Read, uint64(a), 1, NoOwner, nil)[0].Hit
			hitBig := big.Access(Read, uint64(a), 1, NoOwner, nil)[0].Hit
			if hitSmall && !hitBig {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
