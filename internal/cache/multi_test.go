package cache

import (
	"reflect"
	"testing"
)

// multiTrafficCase is one synthetic access for the equivalence tests.
type multiTrafficCase struct {
	kind  Kind
	addr  uint64
	size  int64
	owner OwnerID
}

// multiTraffic generates a deterministic mixed workload: strided sweeps,
// hot-set reuse, block-spanning accesses and writes, with rotating owners
// so eviction attribution is exercised.
func multiTraffic(n int) []multiTrafficCase {
	out := make([]multiTrafficCase, 0, n)
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return rng * 2685821657736338717
	}
	for i := 0; i < n; i++ {
		r := next()
		kind := Read
		if r%3 == 0 {
			kind = Write
		}
		var addr uint64
		switch i % 4 {
		case 0: // sequential sweep
			addr = 0x10000 + uint64(i)*8
		case 1: // hot working set
			addr = 0x40000 + (r%64)*32
		case 2: // conflict-prone large stride
			addr = 0x80000 + (r%16)*4096
		default: // scattered
			addr = 0x100000 + r%65536
		}
		size := int64(4)
		if r%7 == 0 {
			size = 48 // spans blocks
		}
		out = append(out, multiTrafficCase{kind, addr, size, OwnerID(1 + r%5)})
	}
	return out
}

// multiEquivConfigs spans the geometry and policy space the kernel
// supports: direct-mapped, set-associative LRU/FIFO/random/round-robin,
// fully associative, write-through and no-write-allocate.
func multiEquivConfigs() []Config {
	return []Config{
		{Size: 1024, BlockSize: 32, Assoc: 1},
		{Size: 4096, BlockSize: 32, Assoc: 2, Repl: ReplLRU},
		{Size: 4096, BlockSize: 64, Assoc: 4, Repl: ReplFIFO},
		{Size: 2048, BlockSize: 32, Assoc: 4, Repl: ReplRandom, Seed: 42},
		{Size: 8192, BlockSize: 32, Assoc: 64, Repl: ReplRoundRobin},
		{Size: 1024, BlockSize: 32, Assoc: 0}, // fully associative
		{Size: 4096, BlockSize: 32, Assoc: 2, Write: WriteThrough},
		{Size: 4096, BlockSize: 32, Assoc: 2, Alloc: NoWriteAllocate},
		{Size: 2048, BlockSize: 128, Assoc: 2, Repl: ReplLRU, Write: WriteThrough, Alloc: NoWriteAllocate},
	}
}

// TestMultiSimMatchesCache drives identical traffic through N independent
// Cache instances and one MultiSim and requires identical statistics —
// counter for counter, set for set.
func TestMultiSimMatchesCache(t *testing.T) {
	cfgs := multiEquivConfigs()
	refs := make([]*Cache, len(cfgs))
	for i, cfg := range cfgs {
		c, err := New(cfg, nil)
		if err != nil {
			t.Fatalf("config %d: %v", i, err)
		}
		refs[i] = c
	}
	ms, err := NewMultiSim(cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}

	var buf []Outcome
	for _, tc := range multiTraffic(20000) {
		for _, c := range refs {
			buf = c.Access(tc.kind, tc.addr, tc.size, tc.owner, buf[:0])
		}
		ms.Access(tc.kind, tc.addr, tc.size, tc.owner, nil)
	}
	for i := range cfgs {
		want, got := refs[i].Stats(), ms.Stats(i)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("config %d (%+v): stats diverge\n cache:    %+v\n multisim: %+v",
				i, cfgs[i], statsNoPerSet(want), statsNoPerSet(got))
			continue
		}
	}
}

// TestMultiSimVisitOutcomes checks the visit callback against the Outcome
// stream of a reference Cache: per-block set, hit/miss, and evicted owner
// must agree.
func TestMultiSimVisitOutcomes(t *testing.T) {
	cfg := Config{Size: 2048, BlockSize: 32, Assoc: 2, Repl: ReplLRU}
	ref, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := NewMultiSim([]Config{cfg}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf []Outcome
	for n, tc := range multiTraffic(5000) {
		buf = ref.Access(tc.kind, tc.addr, tc.size, tc.owner, buf[:0])
		i := 0
		ms.Access(tc.kind, tc.addr, tc.size, tc.owner, func(ci, set int, hit bool, ev OwnerID) {
			if i >= len(buf) {
				t.Fatalf("access %d: more visits than outcomes", n)
			}
			o := buf[i]
			wantEv := OwnerID(NoOwner)
			if o.Evicted {
				wantEv = o.EvictedOwner
			}
			if ci != 0 || set != o.Set || hit != o.Hit || ev != wantEv {
				t.Fatalf("access %d block %d: visit (set %d hit %v ev %d) != outcome (set %d hit %v ev %d)",
					n, i, set, hit, ev, o.Set, o.Hit, wantEv)
			}
			i++
		})
		if i != len(buf) {
			t.Fatalf("access %d: %d visits, %d outcomes", n, i, len(buf))
		}
	}
}

// TestMultiSimSetSamplingExactPerSet verifies the sampling contract: every
// sampled set's per-set counters are exactly those of the full simulation
// (recency-based policies only — random replacement shares one draw
// stream), and no unsampled set is ever touched.
func TestMultiSimSetSamplingExactPerSet(t *testing.T) {
	cfgs := []Config{
		{Size: 4096, BlockSize: 32, Assoc: 1},
		{Size: 8192, BlockSize: 32, Assoc: 4, Repl: ReplLRU},
		{Size: 8192, BlockSize: 32, Assoc: 64, Repl: ReplRoundRobin},
	}
	const k = 4
	exact, err := NewMultiSim(cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := NewMultiSim(cfgs, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range multiTraffic(20000) {
		exact.Access(tc.kind, tc.addr, tc.size, tc.owner, nil)
		sampled.Access(tc.kind, tc.addr, tc.size, tc.owner, nil)
	}
	for i := range cfgs {
		es, ss := exact.Stats(i), sampled.Stats(i)
		for set := range ss.PerSet {
			if set%k == 0 {
				if ss.PerSet[set] != es.PerSet[set] {
					t.Errorf("config %d set %d: sampled %+v != exact %+v", i, set, ss.PerSet[set], es.PerSet[set])
				}
			} else if ss.PerSet[set] != (SetStats{}) {
				t.Errorf("config %d set %d: unsampled set has traffic %+v", i, set, ss.PerSet[set])
			}
		}
		if sc := sampled.SetScale(i); sc != float64(k) {
			t.Errorf("config %d: SetScale = %v, want %d", i, sc, k)
		}
	}
}

// TestNewMultiSimRejects pins the kernel's envelope: bad sampling factors
// and unsupported features fail construction.
func TestNewMultiSimRejects(t *testing.T) {
	good := Config{Size: 1024, BlockSize: 32, Assoc: 1}
	if _, err := NewMultiSim(nil, 0); err == nil {
		t.Error("no configs: want error")
	}
	if _, err := NewMultiSim([]Config{good}, 3); err == nil {
		t.Error("non-power-of-two sampling: want error")
	}
	if _, err := NewMultiSim([]Config{{Size: 1000, BlockSize: 32, Assoc: 1}}, 0); err == nil {
		t.Error("invalid geometry: want error")
	}
	if _, err := NewMultiSim([]Config{{Size: 1024, BlockSize: 32, Assoc: 1, Prefetch: PrefetchMiss}}, 0); err == nil {
		t.Error("prefetch config: want error")
	}
	if _, err := NewMultiSim([]Config{{Size: 1024, BlockSize: 32, Assoc: 1, ClassifyMisses: true}}, 0); err == nil {
		t.Error("classify config: want error")
	}
	if _, err := NewMultiSim([]Config{good}, 8); err != nil {
		t.Errorf("power-of-two sampling: %v", err)
	}
}

// statsNoPerSet strips the per-set slice for readable failure output.
func statsNoPerSet(s Stats) Stats {
	s.PerSet = nil
	return s
}
