package cache

import (
	"strings"
	"testing"
)

// TestPrefetchAlwaysSequentialSweep: with always-prefetch, a sequential
// sweep demand-misses only on the very first block; every later block was
// prefetched ahead of the access.
func TestPrefetchAlwaysSequentialSweep(t *testing.T) {
	cfg := Paper32KDirect()
	cfg.Prefetch = PrefetchAlways
	c := mustNew(t, cfg, nil)
	var misses int64
	for b := 0; b < 64; b++ {
		for _, o := range c.Access(Read, uint64(b)*32, 4, 1, nil) {
			if !o.Hit {
				misses++
			}
		}
	}
	if misses != 1 {
		t.Errorf("demand misses = %d, want 1 (prefetch covers the rest)", misses)
	}
	st := c.Stats()
	if st.Prefetches != 64 {
		t.Errorf("prefetches = %d, want 64", st.Prefetches)
	}
	// Fills: the first prefetch brings block 1; each subsequent access's
	// prefetch brings the next — only the re-prefetch of already-resident
	// blocks is a pure lookup. Sweep of 64 blocks: 64 fills (blocks 1..64).
	if st.PrefetchFills != 64 {
		t.Errorf("prefetch fills = %d, want 64", st.PrefetchFills)
	}
}

// TestPrefetchMissOnlyOnMisses: miss-prefetch triggers only on demand
// misses.
func TestPrefetchMissOnlyOnMisses(t *testing.T) {
	cfg := Paper32KDirect()
	cfg.Prefetch = PrefetchMiss
	c := mustNew(t, cfg, nil)
	c.Access(Read, 0, 4, NoOwner, nil)  // miss → prefetch block 1
	c.Access(Read, 0, 4, NoOwner, nil)  // hit → no prefetch
	c.Access(Read, 32, 4, NoOwner, nil) // hit (prefetched) → no prefetch
	st := c.Stats()
	if st.Prefetches != 1 || st.PrefetchFills != 1 {
		t.Errorf("prefetches = %d fills = %d, want 1/1", st.Prefetches, st.PrefetchFills)
	}
	if st.ReadMisses != 1 || st.ReadHits != 2 {
		t.Errorf("demand stats = %+v", st)
	}
}

// TestPrefetchDoesNotTouchDemandStats: prefetch traffic never shows up in
// the per-set demand counters.
func TestPrefetchDoesNotTouchDemandStats(t *testing.T) {
	cfg := Config{Size: 256, BlockSize: 32, Assoc: 1, Prefetch: PrefetchAlways}
	c := mustNew(t, cfg, nil)
	c.Access(Read, 0, 4, 1, nil)
	st := c.Stats()
	var perSet int64
	for _, ps := range st.PerSet {
		perSet += ps.Hits + ps.Misses
	}
	if perSet != 1 {
		t.Errorf("per-set demand tally = %d, want 1 (prefetch leaked)", perSet)
	}
	if st.Accesses() != 1 {
		t.Errorf("demand accesses = %d", st.Accesses())
	}
}

// TestPrefetchFillsNextLevel: prefetch fills read from L2.
func TestPrefetchFillsNextLevel(t *testing.T) {
	l2 := mustNew(t, Config{Name: "l2", Size: 4096, BlockSize: 32, Assoc: 4}, nil)
	cfg := Config{Size: 256, BlockSize: 32, Assoc: 1, Prefetch: PrefetchMiss}
	l1 := mustNew(t, cfg, l2)
	l1.Access(Read, 0, 4, NoOwner, nil)
	// L2 sees the demand fill and the prefetch fill.
	if got := l2.Stats().Reads; got != 2 {
		t.Errorf("L2 reads = %d, want 2", got)
	}
}

func TestPrefetchPolicyStringsAndParse(t *testing.T) {
	if PrefetchNone.String() != "none" || PrefetchMiss.String() != "miss-prefetch" ||
		PrefetchAlways.String() != "always-prefetch" || PrefetchPolicy(9).String() == "" {
		t.Error("prefetch strings")
	}
	for s, want := range map[string]PrefetchPolicy{
		"none": PrefetchNone, "n": PrefetchNone, "": PrefetchNone,
		"miss": PrefetchMiss, "m": PrefetchMiss,
		"always": PrefetchAlways, "a": PrefetchAlways,
	} {
		got, err := ParsePrefetch(s)
		if err != nil || got != want {
			t.Errorf("ParsePrefetch(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePrefetch("bogus"); err == nil {
		t.Error("bad prefetch policy accepted")
	}
}

// TestPrefetchReportLine: the report mentions prefetches when used.
func TestPrefetchReportLine(t *testing.T) {
	cfg := Paper32KDirect()
	cfg.Prefetch = PrefetchAlways
	c := mustNew(t, cfg, nil)
	c.Access(Read, 0, 4, NoOwner, nil)
	rep := c.Stats().Report("l1")
	if !strings.Contains(rep, "Prefetches") {
		t.Errorf("report missing prefetch line:\n%s", rep)
	}
}
