// Package cache implements a trace-driven set-associative cache simulator in
// the mould of DineroIV: configurable geometry, replacement and write
// policies, optional second level, per-set statistics, three-C miss
// classification, and per-line ownership tracking so that evictions can be
// attributed to the program variables that caused them (the paper's
// "conflicts between program structures").
package cache

import (
	"fmt"
	"math/bits"
)

// ReplPolicy selects the victim within a set.
type ReplPolicy int

// Replacement policies.
const (
	// ReplLRU evicts the least recently used line (DineroIV's -rl).
	ReplLRU ReplPolicy = iota
	// ReplFIFO evicts the oldest-filled line (-rf).
	ReplFIFO
	// ReplRandom evicts a pseudo-random line (-rr).
	ReplRandom
	// ReplRoundRobin cycles a per-set pointer over the ways, as the
	// PowerPC 440 data cache does (paper §IV.A.3).
	ReplRoundRobin
)

// String returns the policy name.
func (p ReplPolicy) String() string {
	switch p {
	case ReplLRU:
		return "LRU"
	case ReplFIFO:
		return "FIFO"
	case ReplRandom:
		return "random"
	case ReplRoundRobin:
		return "round-robin"
	}
	return fmt.Sprintf("ReplPolicy(%d)", int(p))
}

// ParseRepl parses a policy name (dinero single letters accepted).
func ParseRepl(s string) (ReplPolicy, error) {
	switch s {
	case "lru", "l", "LRU":
		return ReplLRU, nil
	case "fifo", "f", "FIFO":
		return ReplFIFO, nil
	case "random", "r":
		return ReplRandom, nil
	case "roundrobin", "rr", "round-robin":
		return ReplRoundRobin, nil
	}
	return 0, fmt.Errorf("cache: unknown replacement policy %q", s)
}

// WritePolicy selects how write hits propagate.
type WritePolicy int

// Write policies.
const (
	// WriteBack marks lines dirty and writes them out on eviction (-wb).
	WriteBack WritePolicy = iota
	// WriteThrough forwards every write to the next level (-wt).
	WriteThrough
)

// String returns the policy name.
func (p WritePolicy) String() string {
	if p == WriteThrough {
		return "write-through"
	}
	return "write-back"
}

// AllocPolicy selects write-miss behaviour.
type AllocPolicy int

// Write-miss allocation policies.
const (
	// WriteAllocate fills the block on a write miss (-wa).
	WriteAllocate AllocPolicy = iota
	// NoWriteAllocate forwards the write without filling (-wn).
	NoWriteAllocate
)

// String returns the policy name.
func (p AllocPolicy) String() string {
	if p == NoWriteAllocate {
		return "no-write-allocate"
	}
	return "write-allocate"
}

// PrefetchPolicy selects hardware prefetching, after DineroIV's options.
type PrefetchPolicy int

// Prefetch policies.
const (
	// PrefetchNone disables prefetching (DineroIV -pfn, the default).
	PrefetchNone PrefetchPolicy = iota
	// PrefetchMiss fetches the next sequential block on every demand miss
	// (-pfm).
	PrefetchMiss
	// PrefetchAlways fetches the next sequential block on every demand
	// access (-pfa).
	PrefetchAlways
)

// String returns the policy name.
func (p PrefetchPolicy) String() string {
	switch p {
	case PrefetchNone:
		return "none"
	case PrefetchMiss:
		return "miss-prefetch"
	case PrefetchAlways:
		return "always-prefetch"
	}
	return fmt.Sprintf("PrefetchPolicy(%d)", int(p))
}

// ParsePrefetch parses a prefetch policy name.
func ParsePrefetch(s string) (PrefetchPolicy, error) {
	switch s {
	case "none", "n", "":
		return PrefetchNone, nil
	case "miss", "m":
		return PrefetchMiss, nil
	case "always", "a":
		return PrefetchAlways, nil
	}
	return 0, fmt.Errorf("cache: unknown prefetch policy %q", s)
}

// Config describes one cache level.
type Config struct {
	// Name labels the level in reports (e.g. "l1-data").
	Name string
	// Size is the total capacity in bytes.
	Size int64
	// BlockSize is the line size in bytes (power of two).
	BlockSize int64
	// Assoc is the number of ways; 1 = direct mapped. 0 means fully
	// associative (one set).
	Assoc int
	// Repl is the replacement policy.
	Repl ReplPolicy
	// Write is the write-hit policy.
	Write WritePolicy
	// Alloc is the write-miss policy.
	Alloc AllocPolicy
	// Prefetch selects sequential prefetching.
	Prefetch PrefetchPolicy
	// Seed drives ReplRandom deterministically.
	Seed uint64
	// ClassifyMisses enables three-C classification (costs a shadow
	// fully-associative directory).
	ClassifyMisses bool
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int {
	assoc := int64(c.Assoc)
	if assoc == 0 {
		return 1
	}
	return int(c.Size / (c.BlockSize * assoc))
}

// Validate checks geometric consistency.
func (c Config) Validate() error {
	if c.Size <= 0 || c.BlockSize <= 0 {
		return fmt.Errorf("cache: size and block size must be positive (got %d, %d)", c.Size, c.BlockSize)
	}
	if bits.OnesCount64(uint64(c.BlockSize)) != 1 {
		return fmt.Errorf("cache: block size %d is not a power of two", c.BlockSize)
	}
	if c.Assoc < 0 {
		return fmt.Errorf("cache: negative associativity %d", c.Assoc)
	}
	assoc := int64(c.Assoc)
	if assoc == 0 {
		assoc = c.Size / c.BlockSize
	}
	if c.Size%(c.BlockSize*assoc) != 0 {
		return fmt.Errorf("cache: size %d not divisible by block %d × assoc %d", c.Size, c.BlockSize, assoc)
	}
	sets := c.Size / (c.BlockSize * assoc)
	if bits.OnesCount64(uint64(sets)) != 1 {
		return fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	return nil
}

// PowerPC440 is the cache organisation of the paper's set-pinning example:
// 32 KB, 32-byte lines, 64 ways per set, round-robin eviction.
func PowerPC440() Config {
	return Config{
		Name:      "ppc440-l1d",
		Size:      32 * 1024,
		BlockSize: 32,
		Assoc:     64,
		Repl:      ReplRoundRobin,
	}
}

// Paper32KDirect is the 32 KB direct-mapped, 32-byte-block cache used for
// the paper's figures 3-8.
func Paper32KDirect() Config {
	return Config{
		Name:      "l1-data",
		Size:      32 * 1024,
		BlockSize: 32,
		Assoc:     1,
		Repl:      ReplLRU,
	}
}
