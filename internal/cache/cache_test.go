package cache

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cfg Config, next *Cache) *Cache {
	t.Helper()
	c, err := New(cfg, next)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func small(assoc int, repl ReplPolicy) Config {
	return Config{Name: "t", Size: 256, BlockSize: 32, Assoc: assoc, Repl: repl}
}

func TestConfigGeometry(t *testing.T) {
	cfg := Paper32KDirect()
	if cfg.Sets() != 1024 {
		t.Errorf("32K direct sets = %d, want 1024", cfg.Sets())
	}
	ppc := PowerPC440()
	if ppc.Sets() != 16 {
		t.Errorf("PPC440 sets = %d, want 16", ppc.Sets())
	}
	full := Config{Size: 1024, BlockSize: 32, Assoc: 0}
	if full.Sets() != 1 {
		t.Errorf("fully associative sets = %d", full.Sets())
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Size: 0, BlockSize: 32, Assoc: 1},
		{Size: 1024, BlockSize: 0, Assoc: 1},
		{Size: 1024, BlockSize: 33, Assoc: 1},     // not power of 2
		{Size: 1000, BlockSize: 32, Assoc: 1},     // not divisible
		{Size: 1024, BlockSize: 32, Assoc: -1},    // negative ways
		{Size: 96 * 32, BlockSize: 32, Assoc: 32}, // 3 sets: not a power of 2
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, cfg)
		}
	}
	if err := PowerPC440().Validate(); err != nil {
		t.Errorf("PPC440 invalid: %v", err)
	}
}

func TestDirectMappedHitMiss(t *testing.T) {
	c := mustNew(t, small(1, ReplLRU), nil) // 8 sets of 1 way
	r1 := c.Access(Read, 0x1000, 4, 1, nil)
	if len(r1) != 1 || r1[0].Hit {
		t.Fatalf("first access = %+v", r1)
	}
	r2 := c.Access(Read, 0x1004, 4, 1, nil) // same block
	if !r2[0].Hit {
		t.Error("same-block access missed")
	}
	// Same set (set 0), different tag → conflict eviction.
	r3 := c.Access(Read, 0x1000+256, 4, 2, nil)
	if r3[0].Hit || !r3[0].Evicted || r3[0].EvictedOwner != 1 {
		t.Errorf("conflicting access = %+v", r3[0])
	}
	st := c.Stats()
	if st.Reads != 3 || st.ReadHits != 1 || st.ReadMisses != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSetIndexing(t *testing.T) {
	c := mustNew(t, small(1, ReplLRU), nil) // 8 sets, 32B blocks
	if c.SetOf(0) != 0 || c.SetOf(32) != 1 || c.SetOf(32*8) != 0 || c.SetOf(33) != 1 {
		t.Errorf("SetOf = %d %d %d %d", c.SetOf(0), c.SetOf(32), c.SetOf(32*8), c.SetOf(33))
	}
	out := c.Access(Read, 64, 4, NoOwner, nil)
	if out[0].Set != 2 {
		t.Errorf("outcome set = %d", out[0].Set)
	}
	if c.Stats().PerSet[2].Misses != 1 {
		t.Error("per-set miss not recorded")
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 4 sets. Blocks A, B, C all in set 0.
	c := mustNew(t, small(2, ReplLRU), nil)
	blockAddr := func(k int) uint64 { return uint64(k) * 32 * 4 } // stride one set-round
	c.Access(Read, blockAddr(0), 4, 1, nil)
	c.Access(Read, blockAddr(1), 4, 2, nil)
	c.Access(Read, blockAddr(0), 4, 1, nil) // A now MRU
	out := c.Access(Read, blockAddr(2), 4, 3, nil)
	if !out[0].Evicted || out[0].EvictedOwner != 2 {
		t.Errorf("LRU evicted %+v, want owner 2 (B)", out[0])
	}
	if hit := c.Access(Read, blockAddr(0), 4, 1, nil); !hit[0].Hit {
		t.Error("A should have survived")
	}
}

func TestFIFOReplacement(t *testing.T) {
	c := mustNew(t, small(2, ReplFIFO), nil)
	blockAddr := func(k int) uint64 { return uint64(k) * 32 * 4 }
	c.Access(Read, blockAddr(0), 4, 1, nil)
	c.Access(Read, blockAddr(1), 4, 2, nil)
	c.Access(Read, blockAddr(0), 4, 1, nil) // recency must NOT save A under FIFO
	out := c.Access(Read, blockAddr(2), 4, 3, nil)
	if !out[0].Evicted || out[0].EvictedOwner != 1 {
		t.Errorf("FIFO evicted %+v, want owner 1 (A)", out[0])
	}
}

func TestRoundRobinReplacement(t *testing.T) {
	c := mustNew(t, small(2, ReplRoundRobin), nil)
	blockAddr := func(k int) uint64 { return uint64(k) * 32 * 4 }
	c.Access(Read, blockAddr(0), 4, 1, nil)       // way 0
	c.Access(Read, blockAddr(1), 4, 2, nil)       // way 1
	o1 := c.Access(Read, blockAddr(2), 4, 3, nil) // rr pointer at 0 → evict A
	o2 := c.Access(Read, blockAddr(3), 4, 4, nil) // rr pointer at 1 → evict B
	o3 := c.Access(Read, blockAddr(4), 4, 5, nil) // wraps → evict C
	if o1[0].EvictedOwner != 1 || o2[0].EvictedOwner != 2 || o3[0].EvictedOwner != 3 {
		t.Errorf("RR evictions = %d %d %d", o1[0].EvictedOwner, o2[0].EvictedOwner, o3[0].EvictedOwner)
	}
}

func TestRandomReplacementDeterministic(t *testing.T) {
	run := func() []int {
		c := mustNew(t, Config{Size: 256, BlockSize: 32, Assoc: 2, Repl: ReplRandom, Seed: 42}, nil)
		var ways []int
		for k := 0; k < 8; k++ {
			out := c.Access(Read, uint64(k)*32*4, 4, NoOwner, nil)
			ways = append(ways, out[0].Way)
		}
		return ways
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("random replacement not deterministic at %d: %v vs %v", i, a, b)
		}
		if a[i] < 0 || a[i] > 1 {
			t.Fatalf("way out of range: %d", a[i])
		}
	}
}

func TestWriteBackEviction(t *testing.T) {
	l2 := mustNew(t, Config{Name: "l2", Size: 4096, BlockSize: 32, Assoc: 4}, nil)
	l1 := mustNew(t, small(1, ReplLRU), l2)
	l1.Access(Write, 0x0, 4, 1, nil) // miss, fill, dirty
	if l2.Stats().Reads != 1 {
		t.Errorf("L2 fill reads = %d", l2.Stats().Reads)
	}
	l1.Access(Read, 256, 4, 2, nil) // evicts dirty x → writeback to L2
	st := l1.Stats()
	if st.Writebacks != 1 || st.Evictions != 1 {
		t.Errorf("stats = %+v", st)
	}
	if l2.Stats().Writes != 1 {
		t.Errorf("L2 writes = %d, want 1 writeback", l2.Stats().Writes)
	}
}

func TestWriteThrough(t *testing.T) {
	l2 := mustNew(t, Config{Name: "l2", Size: 4096, BlockSize: 32, Assoc: 4}, nil)
	l1 := mustNew(t, Config{Size: 256, BlockSize: 32, Assoc: 1, Write: WriteThrough}, l2)
	l1.Access(Write, 0x0, 4, 1, nil) // miss: fill read + through write
	l1.Access(Write, 0x0, 4, 1, nil) // hit: through write
	if got := l2.Stats().Writes; got != 2 {
		t.Errorf("L2 writes = %d, want 2", got)
	}
	// No dirty lines → no writebacks ever.
	l1.Access(Read, 256, 4, 2, nil)
	if l1.Stats().Writebacks != 0 {
		t.Error("write-through produced a writeback")
	}
}

func TestNoWriteAllocate(t *testing.T) {
	c := mustNew(t, Config{Size: 256, BlockSize: 32, Assoc: 1, Alloc: NoWriteAllocate}, nil)
	c.Access(Write, 0x0, 4, 1, nil)
	// The block must not be resident.
	if out := c.Access(Read, 0x0, 4, 1, nil); out[0].Hit {
		t.Error("write miss filled the cache under no-write-allocate")
	}
}

func TestBlockSpanningAccess(t *testing.T) {
	c := mustNew(t, small(1, ReplLRU), nil)
	out := c.Access(Read, 30, 8, NoOwner, nil) // crosses the 32-byte boundary
	if len(out) != 2 {
		t.Fatalf("outcomes = %d, want 2", len(out))
	}
	if out[0].Set == out[1].Set {
		t.Errorf("spanning access hit one set twice: %+v", out)
	}
	if c.Stats().Reads != 2 {
		t.Errorf("reads = %d", c.Stats().Reads)
	}
}

func TestZeroSizeAccessTreatedAsOne(t *testing.T) {
	c := mustNew(t, small(1, ReplLRU), nil)
	if out := c.Access(Read, 0, 0, NoOwner, nil); len(out) != 1 {
		t.Errorf("outcomes = %+v", out)
	}
}

func TestThreeCClassification(t *testing.T) {
	cfg := small(1, ReplLRU) // 8 sets × 1 way = 8 blocks capacity
	cfg.ClassifyMisses = true
	c := mustNew(t, cfg, nil)

	// First touches: compulsory.
	out := c.Access(Read, 0, 4, NoOwner, nil)
	if out[0].Miss != Compulsory {
		t.Errorf("first touch = %v", out[0].Miss)
	}
	// Ping-pong two blocks in the same set while the cache is mostly empty:
	// conflict misses (a fully associative cache would hold both).
	c.Access(Read, 256, 4, NoOwner, nil)
	out = c.Access(Read, 0, 4, NoOwner, nil)
	if out[0].Miss != Conflict {
		t.Errorf("ping-pong miss = %v, want conflict", out[0].Miss)
	}
	st := c.Stats()
	if st.Compulsory == 0 || st.Conflict == 0 {
		t.Errorf("classes = %+v", st)
	}
}

func TestCapacityClassification(t *testing.T) {
	cfg := Config{Size: 256, BlockSize: 32, Assoc: 0, ClassifyMisses: true} // fully assoc, 8 blocks
	c := mustNew(t, cfg, nil)
	// Sweep 16 blocks twice: second sweep misses are capacity (FA cache of
	// the same size also misses).
	for round := 0; round < 2; round++ {
		for b := 0; b < 16; b++ {
			c.Access(Read, uint64(b)*32, 4, NoOwner, nil)
		}
	}
	st := c.Stats()
	if st.Capacity == 0 {
		t.Errorf("no capacity misses: %+v", st)
	}
	if st.Conflict != 0 {
		t.Errorf("conflict misses in fully associative cache: %+v", st)
	}
}

// TestSetPinningResidency reproduces the paper's §IV.A.3 arithmetic: on a
// PowerPC 440-style cache, 4096 contiguous bytes occupy 8 lines in each of
// 16 sets (fully resident), while pinning the same 4096 bytes to a single
// set leaves only 64 of 128 blocks resident — 50% residency.
func TestSetPinningResidency(t *testing.T) {
	// Contiguous.
	c := mustNew(t, PowerPC440(), nil)
	var blocks []uint64
	base := uint64(0x10000)
	for off := int64(0); off < 4096; off += 32 {
		c.Access(Write, base+uint64(off), 4, 1, nil)
		blocks = append(blocks, (base+uint64(off))>>5)
	}
	if got := c.ResidentBlocks(blocks); got != 128 {
		t.Errorf("contiguous residency = %d/128", got)
	}

	// Pinned: 128 blocks that all map to set 11.
	c2 := mustNew(t, PowerPC440(), nil)
	var pinned []uint64
	for k := 0; k < 128; k++ {
		block := uint64(k)*16 + 11 // block % 16 == 11
		addr := block << 5
		c2.Access(Write, addr, 4, 1, nil)
		pinned = append(pinned, block)
	}
	got := c2.ResidentBlocks(pinned)
	if got != 64 {
		t.Errorf("pinned residency = %d/128, want 64 (50%%)", got)
	}
	// All traffic in set 11.
	for i, ps := range c2.Stats().PerSet {
		if i == 11 {
			if ps.Misses == 0 {
				t.Error("no misses recorded in the pinned set")
			}
		} else if ps.Hits+ps.Misses != 0 {
			t.Errorf("traffic leaked to set %d: %+v", i, ps)
		}
	}
}

func TestFlush(t *testing.T) {
	c := mustNew(t, small(2, ReplLRU), nil)
	c.Access(Read, 0, 4, NoOwner, nil)
	c.Flush()
	if out := c.Access(Read, 0, 4, NoOwner, nil); out[0].Hit {
		t.Error("hit after flush")
	}
}

func TestStatsReport(t *testing.T) {
	c := mustNew(t, small(1, ReplLRU), nil)
	c.Access(Read, 0, 4, NoOwner, nil)
	c.Access(Write, 0, 4, NoOwner, nil)
	rep := c.Stats().Report("l1-data")
	for _, want := range []string{"l1-data", "Demand Fetches", "Demand Misses", "Miss Rate"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	if c.Stats().MissRatio() != 0.5 {
		t.Errorf("miss ratio = %v", c.Stats().MissRatio())
	}
	occ := c.Stats().OccupiedSets()
	if len(occ) != 1 || occ[0] != 0 {
		t.Errorf("occupied sets = %v", occ)
	}
}

func TestParseRepl(t *testing.T) {
	for s, want := range map[string]ReplPolicy{
		"lru": ReplLRU, "l": ReplLRU, "fifo": ReplFIFO, "f": ReplFIFO,
		"random": ReplRandom, "r": ReplRandom, "rr": ReplRoundRobin,
	} {
		got, err := ParseRepl(s)
		if err != nil || got != want {
			t.Errorf("ParseRepl(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseRepl("mru"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	if ReplLRU.String() != "LRU" || ReplRoundRobin.String() != "round-robin" {
		t.Error("ReplPolicy strings")
	}
	if WriteBack.String() != "write-back" || WriteThrough.String() != "write-through" {
		t.Error("WritePolicy strings")
	}
	if WriteAllocate.String() != "write-allocate" || NoWriteAllocate.String() != "no-write-allocate" {
		t.Error("AllocPolicy strings")
	}
	if Compulsory.String() != "compulsory" || NotMiss.String() != "hit" {
		t.Error("MissClass strings")
	}
}

// Property: hits + misses == accesses, and per-set tallies sum to the total.
func TestStatsInvariant(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		c, err := New(small(2, ReplLRU), nil)
		if err != nil {
			return false
		}
		for i, a := range addrs {
			k := Read
			if i < len(writes) && writes[i] {
				k = Write
			}
			c.Access(k, uint64(a), 4, 1, nil)
		}
		st := c.Stats()
		if st.Hits()+st.Misses() != st.Accesses() {
			return false
		}
		var sh, sm int64
		for _, ps := range st.PerSet {
			sh += ps.Hits
			sm += ps.Misses
		}
		return sh == st.Hits() && sm == st.Misses()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: immediately repeating any access hits.
func TestTemporalLocalityProperty(t *testing.T) {
	f := func(addr uint32) bool {
		c, err := New(PowerPC440(), nil)
		if err != nil {
			return false
		}
		c.Access(Read, uint64(addr), 4, NoOwner, nil)
		out := c.Access(Read, uint64(addr), 4, NoOwner, nil)
		for _, o := range out {
			if !o.Hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Hierarchy invariants under random traffic: L2 read traffic equals L1
// fill count; write-through L1 never writes back; no-write-allocate never
// fills on writes.
func TestHierarchyInvariants(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		l2cfg := Config{Name: "l2", Size: 4096, BlockSize: 32, Assoc: 4}
		l2, err := New(l2cfg, nil)
		if err != nil {
			return false
		}
		l1, err := New(Config{Size: 512, BlockSize: 32, Assoc: 2, Write: WriteThrough}, l2)
		if err != nil {
			return false
		}
		var fills int64
		var writeCount int64
		for i, a := range addrs {
			k := Read
			if i < len(writes) && writes[i] {
				k = Write
			}
			for _, o := range l1.Access(k, uint64(a), 4, NoOwner, nil) {
				if !o.Hit {
					fills++
				}
				if k == Write {
					writeCount++ // per block touched (spanning writes forward twice)
				}
			}
		}
		st1 := l1.Stats()
		st2 := l2.Stats()
		// Write-through: every write reaches L2; no writebacks anywhere.
		if st1.Writebacks != 0 {
			return false
		}
		if st2.Writes != writeCount {
			return false
		}
		// Every L1 miss fetched a block from L2.
		return st2.Reads == fills
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
