package tracer

import (
	"bytes"
	"strings"
	"testing"

	"tracedst/internal/trace"
	"tracedst/internal/workloads"
)

func mustRun(t *testing.T, src string, defines map[string]string, opts Options) *Result {
	t.Helper()
	res, err := Run(src, defines, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// lines renders records as trace text for substring assertions.
func lines(res *Result) []string {
	out := make([]string, len(res.Records))
	for i := range res.Records {
		out[i] = res.Records[i].String()
	}
	return out
}

// TestListing2Trace checks the structural properties of the paper's
// Listing 2 against our trace of Listing 1.
func TestListing2Trace(t *testing.T) {
	res := mustRun(t, workloads.Listing1, nil, Options{})
	ls := lines(res)
	text := strings.Join(ls, "\n")

	// 1. The trace opens with the client-request artifact: an annotated
	//    store to _zzq_result followed by an unannotated load (lines 2-3).
	if !strings.Contains(ls[0], "_zzq_result") || !strings.HasPrefix(ls[0], "S ") {
		t.Errorf("first line = %q", ls[0])
	}
	if res.Records[1].Op != trace.Load || res.Records[1].HasSym {
		t.Errorf("second line = %q, want unannotated load", ls[1])
	}
	if res.Records[0].Addr != res.Records[1].Addr {
		t.Error("zzq store/load addresses differ")
	}

	// 2. Global scalar store: "S … 4 main GV glScalar" (line 4).
	if !strings.Contains(text, "4 main GV glScalar") {
		t.Errorf("no glScalar store:\n%s", text)
	}

	// 3. Loop locals: "main LV 0 1 i" loads and a modify.
	if !strings.Contains(text, "main LV 0 1 i") {
		t.Error("no annotated loop variable access")
	}
	foundModify := false
	for _, r := range res.Records {
		if r.Op == trace.Modify && r.HasSym && r.Var.Root == "i" {
			foundModify = true
		}
	}
	if !foundModify {
		t.Error("no M record for i++")
	}

	// 4. Local aggregate: "main LS 0 1 lcArray[0]" and "lcArray[1]".
	if !strings.Contains(text, "main LS 0 1 lcArray[0]") ||
		!strings.Contains(text, "main LS 0 1 lcArray[1]") {
		t.Errorf("lcArray accesses missing:\n%s", text)
	}

	// 5. Call protocol: unannotated 8-byte stores attributed to main then
	//    foo (lines 18-19), then foo's StrcParam parameter store (line 20).
	var retIdx = -1
	for i := 0; i+2 < len(res.Records); i++ {
		a, b, c := &res.Records[i], &res.Records[i+1], &res.Records[i+2]
		if a.Op == trace.Store && !a.HasSym && a.Func == "main" && a.Size == 8 &&
			b.Op == trace.Store && !b.HasSym && b.Func == "foo" && b.Size == 8 &&
			c.Op == trace.Store && c.HasSym && c.Func == "foo" && c.Var.Root == "StrcParam" {
			retIdx = i
			break
		}
	}
	if retIdx < 0 {
		t.Errorf("call protocol lines not found:\n%s", text)
	}

	// 6. Inside foo: global struct-array elements with full paths
	//    (lines 25, 29, 39, 43).
	for _, want := range []string{
		"foo GS glStructArray[0].d1",
		"foo GS glStructArray[0].myArray[0]",
		"foo GS glStructArray[1].d1",
		"foo GS glStructArray[1].myArray[1]",
		"foo GS glArray[1]",
		"foo GS glArray[0]",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in trace", want)
		}
	}

	// 7. foo writing into main's frame through StrcParam: frame distance 1
	//    (line 34: "S … 8 foo LS 1 1 lcStrcArray[0].d1").
	if !strings.Contains(text, "foo LS 1 1 lcStrcArray[0].d1") {
		t.Errorf("caller-frame write not annotated with distance 1:\n%s", text)
	}

	// 8. Globals never carry frame/thread columns.
	for _, r := range res.Records {
		if r.HasSym && r.Vis == trace.Global {
			parts := strings.Fields(r.String())
			if len(parts) != 6 {
				t.Errorf("global record %q has %d fields, want 6", r.String(), len(parts))
			}
		}
	}
}

// TestTrans1SoATrace checks the Fig 5 (left side) pattern.
func TestTrans1SoATrace(t *testing.T) {
	res := mustRun(t, workloads.Trans1SoA, map[string]string{"LEN": "16"}, Options{})
	text := strings.Join(lines(res), "\n")
	for _, want := range []string{
		"main LS 0 1 lSoA.mX[0]",
		"main LS 0 1 lSoA.mY[0]",
		"main LS 0 1 lSoA.mX[15]",
		"main LS 0 1 lSoA.mY[15]",
		"main LV 0 1 lI",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q", want)
		}
	}
	// mX elements are 4 bytes apart, mY 8 bytes apart, and the mY block
	// starts 64 bytes after mX (the SoA layout for LEN=16).
	var mx0, mx1, my0 uint64
	for _, r := range res.Records {
		if !r.HasSym {
			continue
		}
		switch r.Var.String() {
		case "lSoA.mX[0]":
			mx0 = r.Addr
		case "lSoA.mX[1]":
			mx1 = r.Addr
		case "lSoA.mY[0]":
			my0 = r.Addr
		}
	}
	if mx1-mx0 != 4 {
		t.Errorf("mX stride = %d", mx1-mx0)
	}
	if my0-mx0 != 64 {
		t.Errorf("mY offset = %d, want 64", my0-mx0)
	}
}

// TestTrans1AoSTrace checks the Fig 5 (right side) reference pattern the
// transformation engine must reproduce.
func TestTrans1AoSTrace(t *testing.T) {
	res := mustRun(t, workloads.Trans1AoS, map[string]string{"LEN": "16"}, Options{})
	var x0, y0, x1 uint64
	for _, r := range res.Records {
		if !r.HasSym {
			continue
		}
		switch r.Var.String() {
		case "lAoS[0].mX":
			x0 = r.Addr
		case "lAoS[0].mY":
			y0 = r.Addr
		case "lAoS[1].mX":
			x1 = r.Addr
		}
	}
	if y0-x0 != 8 {
		t.Errorf("mY offset within struct = %d, want 8 (alignment padding)", y0-x0)
	}
	if x1-x0 != 16 {
		t.Errorf("struct stride = %d, want 16", x1-x0)
	}
}

// TestInstrumentationWindow: the outlined program's pointer-setup loop runs
// before GLEIPNIR_START_INSTRUMENTATION and must be dropped.
func TestInstrumentationWindow(t *testing.T) {
	res := mustRun(t, workloads.Trans2Outlined, map[string]string{"LEN": "16"}, Options{})
	if res.Interp == nil || res.Return != 0 {
		t.Errorf("result = %+v", res)
	}
	tr := strings.Join(lines(res), "\n")
	// No store of the mRarelyUsed pointer fields may appear (setup loop).
	for _, r := range res.Records {
		if r.Op == trace.Store && r.HasSym && r.Size == 8 &&
			strings.HasSuffix(r.Var.String(), ".mRarelyUsed") {
			t.Errorf("setup-loop store leaked into trace: %s", r.String())
		}
	}
	// But pointer loads (indirection) must be present.
	if !strings.Contains(tr, ".mRarelyUsed") {
		t.Errorf("no pointer indirection in trace:\n%s", tr)
	}
	// Dropped counter saw the setup loop.
	if res2, _ := Run(workloads.Trans2Outlined, map[string]string{"LEN": "16"}, Options{}); res2 != nil {
		// Access the tracer indirectly: Dropped is internal to the run, so
		// re-run with a fresh tracer here to check the counter.
		_ = res2
	}
}

func TestDroppedCounter(t *testing.T) {
	// Without markers and without TraceAll, everything is dropped.
	res := mustRun(t, `int g; int main(void) { g = 1; return g; }`, nil, Options{})
	if len(res.Records) != 0 {
		t.Errorf("records = %d, want 0", len(res.Records))
	}
}

func TestTraceAllOption(t *testing.T) {
	res := mustRun(t, `int g; int main(void) { g = 1; return g; }`, nil, Options{TraceAll: true})
	if len(res.Records) != 2 { // S g, L g
		t.Errorf("records = %d, want 2: %v", len(res.Records), lines(res))
	}
}

func TestHeaderAndWriteTo(t *testing.T) {
	res := mustRun(t, workloads.Trans1SoA, map[string]string{"LEN": "4"}, Options{PID: 11580})
	if res.Header.PID != 11580 {
		t.Errorf("pid = %d", res.Header.PID)
	}
	tr := New(Options{PID: 11580})
	tr.Records = res.Records
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	h, recs, err := trace.ParseAll(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if h.PID != 11580 || len(recs) != len(res.Records) {
		t.Errorf("round trip: pid=%d n=%d want %d", h.PID, len(recs), len(res.Records))
	}
	for i := range recs {
		if !recs[i].Equal(&res.Records[i]) {
			t.Fatalf("record %d mismatch: %q vs %q", i, recs[i].String(), res.Records[i].String())
		}
	}
}

func TestHeapTraceAnnotations(t *testing.T) {
	res := mustRun(t, workloads.ListTraversal, map[string]string{"N": "8"}, Options{})
	text := strings.Join(lines(res), "\n")
	// Heap accesses are annotated as global-visibility aggregates of the
	// malloc block, with element paths.
	if !strings.Contains(text, "GS heap_main_1[") {
		t.Errorf("heap annotations missing:\n%s", text)
	}
	if res.Return != 28 { // 0+1+…+7
		t.Errorf("list sum = %d", res.Return)
	}
}

func TestThreadOption(t *testing.T) {
	res := mustRun(t, workloads.Trans1SoA, map[string]string{"LEN": "2"}, Options{Thread: 3})
	for _, r := range res.Records {
		if r.HasSym && r.Vis == trace.Local && r.Thread != 3 {
			t.Errorf("thread = %d in %s", r.Thread, r.String())
		}
	}
}

func TestRunParseError(t *testing.T) {
	if _, err := Run("this is not C", nil, Options{}); err == nil {
		t.Error("parse error not propagated")
	}
}

func TestRunRuntimeError(t *testing.T) {
	if _, err := Run(`int main(void) { int x; x = 1/0; return x; }`, nil, Options{}); err == nil {
		t.Error("runtime error not propagated")
	}
}

// TestFig5LoopShape verifies the per-iteration op pattern of Fig 5's left
// column: S lI; then per iteration L lI (cond), L lI (rhs), L lI (idx),
// S mX[k], L lI, L lI, S mY[k], M lI; and a final failing-condition load.
func TestFig5LoopShape(t *testing.T) {
	res := mustRun(t, workloads.Trans1SoA, map[string]string{"LEN": "2"}, Options{})
	var ops []byte
	for _, r := range res.Records {
		ops = append(ops, byte(r.Op))
	}
	// zzq: S L, then loop.
	want := "SL" + "S" + "LLLSLLSM" + "LLLSLLSM" + "L"
	if string(ops) != want {
		t.Errorf("ops = %s\nwant %s", ops, want)
	}
}

func TestMaxRecordsCap(t *testing.T) {
	res := mustRun(t, workloads.Trans1SoA, map[string]string{"LEN": "16"}, Options{MaxRecords: 10})
	if len(res.Records) != 10 {
		t.Errorf("records = %d, want capped at 10", len(res.Records))
	}
	// The program still ran to completion.
	if res.Return != 0 {
		t.Errorf("return = %d", res.Return)
	}
}
