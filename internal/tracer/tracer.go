// Package tracer is the Gleipnir equivalent: it listens to the miniC
// interpreter's memory events and renders each one as an annotated trace
// line, using the interpreter's symbol table the way Gleipnir uses
// Valgrind's debug-information parser. The result is a trace.Header plus a
// stream of trace.Records in exactly the format of the paper's listings.
package tracer

import (
	"context"
	"fmt"
	"io"
	"time"

	"tracedst/internal/minic"
	"tracedst/internal/symtab"
	"tracedst/internal/telemetry"
	"tracedst/internal/trace"
)

// Options configure a trace collection.
type Options struct {
	// PID is written into the START header (a fixed fake pid keeps traces
	// reproducible; Gleipnir writes the real one).
	PID int
	// Thread is the thread id recorded on local accesses. Gleipnir numbers
	// threads from 1. Zero means 1.
	Thread int
	// TraceAll starts with instrumentation enabled, for programs that do
	// not use the GLEIPNIR_*_INSTRUMENTATION markers.
	TraceAll bool
	// MaxRecords, when positive, stops collecting after that many records
	// (later events count as Dropped) — a safety cap for long-running
	// programs traced into memory.
	MaxRecords int
	// MaxSteps, when positive, bounds the number of statements the traced
	// program may execute; exceeding it fails the run with an error
	// matching minic.ErrBudgetExceeded instead of hanging. Zero keeps the
	// interpreter's default limit.
	MaxSteps int64
	// Ctx, when non-nil, lets a deadline or cancellation interrupt the
	// traced program mid-execution (the interpreter polls it periodically).
	Ctx context.Context
}

// Tracer converts interpreter events to trace records. Create it, then the
// interpreter with the tracer as its listener, then Attach the interpreter
// so the tracer can consult its symbol table.
type Tracer struct {
	opts    Options
	interp  *minic.Interp
	enabled bool

	// Records accumulates the trace in memory.
	Records []trace.Record
	// Dropped counts events suppressed while instrumentation was off.
	Dropped int
}

var _ minic.Listener = (*Tracer)(nil)

// New returns a Tracer with the given options.
func New(opts Options) *Tracer {
	if opts.Thread == 0 {
		opts.Thread = 1
	}
	if opts.PID == 0 {
		opts.PID = 13063 // the paper's listing 2 pid; any fixed value works
	}
	return &Tracer{opts: opts, enabled: opts.TraceAll}
}

// Attach binds the tracer to the interpreter whose events it receives.
func (t *Tracer) Attach(in *minic.Interp) { t.interp = in }

// Header returns the trace file header.
func (t *Tracer) Header() trace.Header { return trace.Header{PID: t.opts.PID} }

// Instrument implements minic.Listener.
func (t *Tracer) Instrument(on bool) { t.enabled = on }

// Access implements minic.Listener: it annotates the raw event with debug
// information and appends a trace record.
func (t *Tracer) Access(op minic.AccessOp, addr uint64, size int64, fn string, depth int) {
	if !t.enabled {
		t.Dropped++
		return
	}
	if t.opts.MaxRecords > 0 && len(t.Records) >= t.opts.MaxRecords {
		t.Dropped++
		return
	}
	rec := trace.Record{
		Op:   trace.Op(op),
		Addr: addr,
		Size: size,
		Func: fn,
	}
	if t.interp != nil {
		if ref, ok := t.interp.Syms.Describe(addr, depth); ok && !hideSymbol(op, ref) {
			rec.HasSym = true
			rec.Aggregate = ref.Aggregate
			rec.Var = ref.Expr
			switch ref.Sym.Kind {
			case symtab.KindLocal:
				rec.Vis = trace.Local
				rec.Frame = ref.FrameDistance
				rec.Thread = t.opts.Thread
			default:
				// Globals and heap blocks are globally visible: no frame or
				// thread column ("there is no need to identify the frame of
				// the corresponding variable").
				rec.Vis = trace.Global
			}
		}
	}
	t.Records = append(t.Records, rec)
}

// hideSymbol reproduces a Gleipnir quirk: the read-back of the Valgrind
// client-request result has no debug info, so the load that follows the
// "_zzq_result" store is printed unannotated (paper listing 2 line 3).
func hideSymbol(op minic.AccessOp, ref symtab.Ref) bool {
	return op == minic.OpLoad && ref.Sym.Name == "_zzq_result"
}

// WriteTo writes the collected trace in Gleipnir format.
func (t *Tracer) WriteTo(w io.Writer) (int64, error) {
	tw := trace.NewWriter(w)
	if err := tw.WriteHeader(t.Header()); err != nil {
		return 0, err
	}
	for i := range t.Records {
		if err := tw.Write(&t.Records[i]); err != nil {
			return 0, err
		}
	}
	if err := tw.Flush(); err != nil {
		return 0, err
	}
	return int64(tw.Records()), nil
}

// Result bundles everything a trace collection produces.
type Result struct {
	Header  trace.Header
	Records []trace.Record
	// Interp is the finished interpreter; its symbol table still holds the
	// globals (frames are gone) and its address space the final memory.
	Interp *minic.Interp
	// Return is main's return value.
	Return int64
}

// Run parses and executes a miniC program, collecting its Gleipnir trace.
// defines are -D style macro definitions (e.g. {"LEN": "16"}).
func Run(src string, defines map[string]string, opts Options) (*Result, error) {
	prog, err := minic.Parse(src, defines)
	if err != nil {
		return nil, err
	}
	return RunProgram(prog, opts)
}

// RunProgram executes an already-parsed program, collecting its trace.
// Each run publishes its cost to the default telemetry registry: steps
// executed, records emitted/dropped and the collection rate.
func RunProgram(prog *minic.Program, opts Options) (*Result, error) {
	t := New(opts)
	in := minic.NewInterp(prog, t)
	if opts.MaxSteps > 0 {
		in.StepLimit = opts.MaxSteps
	}
	if opts.Ctx != nil {
		in.SetContext(opts.Ctx)
	}
	t.Attach(in)
	reg := telemetry.Default()
	sp := reg.StartSpan("tracer/run")
	ret, err := in.Run()
	wall := sp.End()
	reg.Counter("tracer.programs").Inc()
	reg.Counter("tracer.steps").Add(in.Steps())
	reg.Counter("tracer.records").Add(int64(len(t.Records)))
	reg.Counter("tracer.dropped").Add(int64(t.Dropped))
	if err != nil {
		reg.Counter("tracer.errors").Inc()
		return nil, fmt.Errorf("tracer: %w", err)
	}
	if rate := recordsPerSec(len(t.Records), wall); rate > 0 {
		telemetry.L().Debug("trace collected",
			"records", len(t.Records), "steps", in.Steps(),
			"dropped", t.Dropped, "records_per_sec", int64(rate))
	}
	return &Result{
		Header:  t.Header(),
		Records: t.Records,
		Interp:  in,
		Return:  ret,
	}, nil
}

// recordsPerSec guards the rate computation against a sub-resolution wall
// clock reading.
func recordsPerSec(n int, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(n) / wall.Seconds()
}
