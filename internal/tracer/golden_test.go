package tracer

import (
	"flag"
	"os"
	"testing"

	"tracedst/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestListing1Golden pins the exact trace of the paper's Listing 1 —
// addresses, metadata, ordering, everything. Any change to evaluation
// order, stack layout or annotation shows up as a diff here. Regenerate
// deliberately with:
//
//	go test ./internal/tracer -run Golden -update
func TestListing1Golden(t *testing.T) {
	res := mustRun(t, workloads.Listing1, nil, Options{})
	var got []byte
	{
		b := make([]byte, 0, 4096)
		b = append(b, res.Header.String()...)
		b = append(b, '\n')
		for i := range res.Records {
			b = append(b, res.Records[i].String()...)
			b = append(b, '\n')
		}
		got = b
	}
	const path = "testdata/listing1.golden"
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("Listing 1 trace changed; run with -update if intentional.\n got:\n%s\nwant:\n%s", got, want)
	}
}
