package tracer

import (
	"context"
	"errors"
	"testing"
	"time"

	"tracedst/internal/minic"
	"tracedst/internal/workloads"
)

// TestRunawayStepBudget: the pathological workload must fail with the typed
// budget error instead of hanging, and the failure must arrive promptly.
func TestRunawayStepBudget(t *testing.T) {
	start := time.Now()
	_, err := Run(workloads.Runaway, nil, Options{MaxSteps: 10_000})
	if err == nil {
		t.Fatal("runaway workload terminated?!")
	}
	if !errors.Is(err, minic.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want minic.ErrBudgetExceeded", err)
	}
	var be *minic.BudgetError
	if !errors.As(err, &be) || be.Limit != 10_000 {
		t.Errorf("err = %v, want *BudgetError{Limit: 10000}", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("budget enforcement took %v", elapsed)
	}
}

// TestRunawayContextDeadline: without a step budget, a context deadline must
// still interrupt the interpreter loop well before any test timeout.
func TestRunawayContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := Run(workloads.Runaway, nil, Options{Ctx: ctx, MaxRecords: 1024})
	if err == nil {
		t.Fatal("runaway workload terminated?!")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("deadline enforcement took %v", elapsed)
	}
}

// TestMaxStepsLeavesNormalRunsAlone: a generous budget must not perturb a
// terminating workload's trace.
func TestMaxStepsLeavesNormalRunsAlone(t *testing.T) {
	plain, err := Run(workloads.Listing1, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	budgeted, err := Run(workloads.Listing1, nil, Options{MaxSteps: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Records) != len(budgeted.Records) {
		t.Errorf("budgeted run has %d records, plain %d", len(budgeted.Records), len(plain.Records))
	}
}
