// Package memmodel provides the virtual address space the miniC interpreter
// executes against: a sparse, page-granular byte store plus the region
// layout (data segment, heap, stack) that determines where globals, heap
// blocks and stack frames live. Addresses are chosen to resemble those in
// the paper's trace listings (globals near 0x601040, stack near 0x7ff000000)
// so that generated traces look like genuine Gleipnir output.
package memmodel

import (
	"encoding/binary"
	"fmt"
	"math"
)

const pageShift = 12
const pageSize = 1 << pageShift

// Memory is a sparse byte-addressable store. The zero value is ready to use;
// unwritten bytes read as zero (as freshly mapped pages do).
type Memory struct {
	pages map[uint64]*[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// ReadBytes copies size bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, size int) []byte {
	out := make([]byte, size)
	for i := 0; i < size; {
		p := m.page(addr+uint64(i), false)
		off := int((addr + uint64(i)) & (pageSize - 1))
		n := pageSize - off
		if n > size-i {
			n = size - i
		}
		if p != nil {
			copy(out[i:i+n], p[off:off+n])
		}
		i += n
	}
	return out
}

// WriteBytes stores b starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for i := 0; i < len(b); {
		p := m.page(addr+uint64(i), true)
		off := int((addr + uint64(i)) & (pageSize - 1))
		n := copy(p[off:], b[i:])
		i += n
	}
}

// ReadUint reads a little-endian unsigned integer of the given byte size
// (1, 2, 4 or 8).
func (m *Memory) ReadUint(addr uint64, size int) uint64 {
	b := m.ReadBytes(addr, size)
	switch size {
	case 1:
		return uint64(b[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	case 8:
		return binary.LittleEndian.Uint64(b)
	}
	panic(fmt.Sprintf("memmodel: bad integer size %d", size))
}

// WriteUint stores a little-endian unsigned integer of the given byte size.
func (m *Memory) WriteUint(addr uint64, size int, v uint64) {
	var b [8]byte
	switch size {
	case 1:
		b[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b[:2], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b[:4], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(b[:8], v)
	default:
		panic(fmt.Sprintf("memmodel: bad integer size %d", size))
	}
	m.WriteBytes(addr, b[:size])
}

// ReadInt reads a little-endian signed integer of the given byte size.
func (m *Memory) ReadInt(addr uint64, size int) int64 {
	u := m.ReadUint(addr, size)
	shift := uint(64 - size*8)
	return int64(u<<shift) >> shift
}

// WriteInt stores a little-endian signed integer of the given byte size.
func (m *Memory) WriteInt(addr uint64, size int, v int64) {
	m.WriteUint(addr, size, uint64(v))
}

// ReadFloat reads an IEEE-754 float of the given byte size (4 or 8).
func (m *Memory) ReadFloat(addr uint64, size int) float64 {
	switch size {
	case 4:
		return float64(math.Float32frombits(uint32(m.ReadUint(addr, 4))))
	case 8:
		return math.Float64frombits(m.ReadUint(addr, 8))
	}
	panic(fmt.Sprintf("memmodel: bad float size %d", size))
}

// WriteFloat stores an IEEE-754 float of the given byte size (4 or 8).
func (m *Memory) WriteFloat(addr uint64, size int, v float64) {
	switch size {
	case 4:
		m.WriteUint(addr, 4, uint64(math.Float32bits(float32(v))))
	case 8:
		m.WriteUint(addr, 8, math.Float64bits(v))
	default:
		panic(fmt.Sprintf("memmodel: bad float size %d", size))
	}
}

// Pages returns the number of materialised pages (for tests and stats).
func (m *Memory) Pages() int { return len(m.pages) }
