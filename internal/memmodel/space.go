package memmodel

import (
	"fmt"

	"tracedst/internal/ctype"
)

// Region bases mirror a typical small static binary on x86-64 Linux, so that
// generated traces resemble the paper's listings: globals live near
// 0x601040, the heap above them, and the stack below 0x7ff000500 growing
// down.
const (
	DataBase  uint64 = 0x000601040
	DataLimit uint64 = 0x000a00000
	HeapBase  uint64 = 0x001000000
	HeapLimit uint64 = 0x010000000
	StackTop  uint64 = 0x7ff000500
	StackLow  uint64 = 0x7fe000000
)

// BumpAllocator hands out addresses from a contiguous upward-growing region.
type BumpAllocator struct {
	name        string
	base, limit uint64
	next        uint64
}

// NewBumpAllocator returns an allocator over [base, limit).
func NewBumpAllocator(name string, base, limit uint64) *BumpAllocator {
	return &BumpAllocator{name: name, base: base, limit: limit, next: base}
}

// Alloc reserves size bytes aligned to align and returns the base address.
func (b *BumpAllocator) Alloc(size, align int64) (uint64, error) {
	if size < 0 || align < 1 {
		return 0, fmt.Errorf("memmodel: bad alloc size %d align %d", size, align)
	}
	addr := uint64(ctype.AlignUp(int64(b.next-b.base), align)) + b.base
	if addr+uint64(size) > b.limit {
		return 0, fmt.Errorf("memmodel: %s region exhausted (need %d bytes at %#x, limit %#x)",
			b.name, size, addr, b.limit)
	}
	b.next = addr + uint64(size)
	return addr, nil
}

// Used returns the number of bytes handed out (including alignment waste).
func (b *BumpAllocator) Used() uint64 { return b.next - b.base }

// Next returns the next unallocated address (for shadow-region placement).
func (b *BumpAllocator) Next() uint64 { return b.next }

// Frame is one stack frame. Locals are carved downward from the frame base,
// matching a descending stack, but within the frame each Alloc returns the
// lowest-addressed byte of the local.
type Frame struct {
	// Func is the function this frame belongs to.
	Func string
	// Base is the highest address of the frame (exclusive).
	Base uint64
	// sp is the current downward allocation point.
	sp uint64
	// Depth is the 0-based call depth of the frame (main = 0).
	Depth int
}

// Alloc reserves size bytes with the given alignment inside the frame and
// returns the address of the first byte.
func (f *Frame) Alloc(size, align int64) (uint64, error) {
	if size < 0 || align < 1 {
		return 0, fmt.Errorf("memmodel: bad frame alloc size %d align %d", size, align)
	}
	want := f.sp - uint64(size)
	// Align downward.
	want -= want % uint64(align)
	if want < StackLow || want > f.sp {
		return 0, fmt.Errorf("memmodel: stack overflow allocating %d bytes in %s", size, f.Func)
	}
	f.sp = want
	return want, nil
}

// SP returns the current stack pointer of the frame.
func (f *Frame) SP() uint64 { return f.sp }

// Mark returns the current allocation point, for later Release — the
// entry/exit stack discipline of C block scopes.
func (f *Frame) Mark() uint64 { return f.sp }

// Release rewinds the frame to a previous Mark, freeing every local
// allocated since. It panics if mark is not a valid earlier state.
func (f *Frame) Release(mark uint64) {
	if mark < f.sp || mark > f.Base {
		panic("memmodel: Release with invalid mark")
	}
	f.sp = mark
}

// Stack models the call stack: a pile of frames growing down from StackTop.
type Stack struct {
	frames []*Frame
}

// NewStack returns an empty stack.
func NewStack() *Stack { return &Stack{} }

// Push creates a new frame for fn below the current one.
func (s *Stack) Push(fn string) *Frame {
	base := StackTop
	if n := len(s.frames); n > 0 {
		base = s.frames[n-1].sp
	}
	f := &Frame{Func: fn, Base: base, sp: base, Depth: len(s.frames)}
	s.frames = append(s.frames, f)
	return f
}

// Pop removes the top frame. It panics if the stack is empty (a caller bug).
func (s *Stack) Pop() {
	if len(s.frames) == 0 {
		panic("memmodel: pop of empty stack")
	}
	s.frames = s.frames[:len(s.frames)-1]
}

// Top returns the executing frame, or nil when the stack is empty.
func (s *Stack) Top() *Frame {
	if len(s.frames) == 0 {
		return nil
	}
	return s.frames[len(s.frames)-1]
}

// Depth returns the number of live frames.
func (s *Stack) Depth() int { return len(s.frames) }

// FrameAt returns the live frame with the given 0-based depth.
func (s *Stack) FrameAt(depth int) (*Frame, bool) {
	if depth < 0 || depth >= len(s.frames) {
		return nil, false
	}
	return s.frames[depth], true
}

// AddressSpace bundles the memory image with the region allocators.
type AddressSpace struct {
	Mem   *Memory
	Data  *BumpAllocator
	Heap  *BumpAllocator
	Stack *Stack
}

// NewAddressSpace returns a fresh address space with empty regions.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{
		Mem:   NewMemory(),
		Data:  NewBumpAllocator("data", DataBase, DataLimit),
		Heap:  NewBumpAllocator("heap", HeapBase, HeapLimit),
		Stack: NewStack(),
	}
}

// RegionOf classifies an address by region name ("data", "heap", "stack" or
// "unmapped").
func RegionOf(addr uint64) string {
	switch {
	case addr >= DataBase && addr < DataLimit:
		return "data"
	case addr >= HeapBase && addr < HeapLimit:
		return "heap"
	case addr >= StackLow && addr < StackTop:
		return "stack"
	default:
		return "unmapped"
	}
}
