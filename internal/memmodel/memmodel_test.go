package memmodel

import (
	"testing"
	"testing/quick"
)

func TestMemoryZeroFill(t *testing.T) {
	m := NewMemory()
	b := m.ReadBytes(0x601040, 16)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("byte %d = %d, want 0", i, v)
		}
	}
	if m.Pages() != 0 {
		t.Errorf("reading should not materialise pages: %d", m.Pages())
	}
}

func TestMemoryReadWriteBytes(t *testing.T) {
	m := NewMemory()
	m.WriteBytes(0x100, []byte{1, 2, 3, 4})
	got := m.ReadBytes(0x100, 4)
	for i, want := range []byte{1, 2, 3, 4} {
		if got[i] != want {
			t.Errorf("byte %d = %d, want %d", i, got[i], want)
		}
	}
}

func TestMemoryCrossPageAccess(t *testing.T) {
	m := NewMemory()
	addr := uint64(pageSize - 2) // straddles the first page boundary
	m.WriteUint(addr, 8, 0x1122334455667788)
	if got := m.ReadUint(addr, 8); got != 0x1122334455667788 {
		t.Errorf("cross-page read = %#x", got)
	}
	if m.Pages() != 2 {
		t.Errorf("pages = %d, want 2", m.Pages())
	}
}

func TestMemoryIntSignExtension(t *testing.T) {
	m := NewMemory()
	m.WriteInt(0x200, 4, -7)
	if got := m.ReadInt(0x200, 4); got != -7 {
		t.Errorf("ReadInt = %d", got)
	}
	if got := m.ReadUint(0x200, 4); got != 0xfffffff9 {
		t.Errorf("ReadUint = %#x", got)
	}
	m.WriteInt(0x210, 1, -1)
	if got := m.ReadInt(0x210, 1); got != -1 {
		t.Errorf("1-byte ReadInt = %d", got)
	}
}

func TestMemoryFloats(t *testing.T) {
	m := NewMemory()
	m.WriteFloat(0x300, 8, 3.5)
	if got := m.ReadFloat(0x300, 8); got != 3.5 {
		t.Errorf("double = %v", got)
	}
	m.WriteFloat(0x310, 4, 1.25)
	if got := m.ReadFloat(0x310, 4); got != 1.25 {
		t.Errorf("float = %v", got)
	}
}

func TestMemoryBadSizesPanic(t *testing.T) {
	m := NewMemory()
	for _, f := range []func(){
		func() { m.ReadUint(0, 3) },
		func() { m.WriteUint(0, 5, 0) },
		func() { m.ReadFloat(0, 2) },
		func() { m.WriteFloat(0, 16, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for bad size")
				}
			}()
			f()
		}()
	}
}

// Property: WriteUint/ReadUint round-trips for all supported sizes at
// arbitrary (possibly page-straddling) addresses.
func TestMemoryUintRoundTripProperty(t *testing.T) {
	m := NewMemory()
	sizes := []int{1, 2, 4, 8}
	f := func(addr uint32, pick uint8, v uint64) bool {
		size := sizes[int(pick)%len(sizes)]
		mask := ^uint64(0)
		if size < 8 {
			mask = (1 << (8 * size)) - 1
		}
		m.WriteUint(uint64(addr), size, v)
		return m.ReadUint(uint64(addr), size) == v&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBumpAllocator(t *testing.T) {
	b := NewBumpAllocator("data", DataBase, DataBase+64)
	a1, err := b.Alloc(4, 4)
	if err != nil || a1 != DataBase {
		t.Fatalf("a1 = %#x err=%v", a1, err)
	}
	a2, err := b.Alloc(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a2%8 != 0 || a2 < a1+4 {
		t.Errorf("a2 = %#x not aligned after a1", a2)
	}
	if _, err := b.Alloc(1000, 1); err == nil {
		t.Error("over-allocation accepted")
	}
	if b.Used() == 0 || b.Next() <= DataBase {
		t.Errorf("Used=%d Next=%#x", b.Used(), b.Next())
	}
	if _, err := b.Alloc(-1, 1); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := b.Alloc(1, 0); err == nil {
		t.Error("zero align accepted")
	}
}

func TestStackFrames(t *testing.T) {
	s := NewStack()
	if s.Top() != nil || s.Depth() != 0 {
		t.Fatal("fresh stack not empty")
	}
	mainF := s.Push("main")
	if mainF.Base != StackTop || mainF.Depth != 0 {
		t.Errorf("main frame = %+v", mainF)
	}
	a, err := mainF.Alloc(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a >= StackTop || a%4 != 0 {
		t.Errorf("local at %#x", a)
	}
	fooF := s.Push("foo")
	if fooF.Base != mainF.SP() || fooF.Depth != 1 {
		t.Errorf("foo frame base = %#x, want %#x", fooF.Base, mainF.SP())
	}
	b, err := fooF.Alloc(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b >= a {
		t.Errorf("foo local %#x not below main local %#x", b, a)
	}
	if f, ok := s.FrameAt(0); !ok || f != mainF {
		t.Error("FrameAt(0) lookup failed")
	}
	if _, ok := s.FrameAt(5); ok {
		t.Error("FrameAt(5) should fail")
	}
	s.Pop()
	if s.Top() != mainF {
		t.Error("pop did not restore main")
	}
	s.Pop()
	defer func() {
		if recover() == nil {
			t.Error("pop of empty stack did not panic")
		}
	}()
	s.Pop()
}

func TestFrameAllocAlignment(t *testing.T) {
	s := NewStack()
	f := s.Push("main")
	if _, err := f.Alloc(1, 1); err != nil {
		t.Fatal(err)
	}
	a, err := f.Alloc(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a%8 != 0 {
		t.Errorf("misaligned double at %#x", a)
	}
	if _, err := f.Alloc(-2, 1); err == nil {
		t.Error("negative frame alloc accepted")
	}
}

func TestStackOverflow(t *testing.T) {
	s := NewStack()
	f := s.Push("main")
	if _, err := f.Alloc(int64(StackTop-StackLow)+16, 1); err == nil {
		t.Error("stack overflow not detected")
	}
}

func TestRegionOf(t *testing.T) {
	cases := map[uint64]string{
		DataBase:      "data",
		HeapBase + 8:  "heap",
		StackTop - 16: "stack",
		0x10:          "unmapped",
		StackTop + 1:  "unmapped",
	}
	for addr, want := range cases {
		if got := RegionOf(addr); got != want {
			t.Errorf("RegionOf(%#x) = %q, want %q", addr, got, want)
		}
	}
}

func TestNewAddressSpace(t *testing.T) {
	as := NewAddressSpace()
	addr, err := as.Data.Alloc(4, 4)
	if err != nil || addr != DataBase {
		t.Errorf("first global at %#x err=%v, want %#x", addr, err, DataBase)
	}
	h, err := as.Heap.Alloc(32, 16)
	if err != nil || h != HeapBase {
		t.Errorf("first heap block at %#x err=%v", h, err)
	}
	as.Mem.WriteUint(addr, 4, 321)
	if as.Mem.ReadUint(addr, 4) != 321 {
		t.Error("memory write through space failed")
	}
}
