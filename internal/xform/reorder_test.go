package xform

import (
	"testing"

	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/trace"
	"tracedst/internal/tracer"
)

// Field reordering is expressible as a struct-remap rule whose in and out
// sides are both arrays of structs with the same members in a different
// order — hot members first packs them at lower offsets (and removes
// padding holes).
const reorderRule = `
in:
struct lRec {
	char tag;
	double weight;
	int hot;
}[32];
out:
struct lRec2 {
	int hot;
	char tag;
	double weight;
}[32];
`

const reorderProgram = `
typedef struct { char tag; double weight; int hot; } Rec;
Rec lRec[32];

int main(void) {
	int sum;
	GLEIPNIR_START_INSTRUMENTATION;
	sum = 0;
	for (int i = 0; i < 32; i++) {
		sum += lRec[i].hot;
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return sum;
}
`

func TestFieldReorderingRemap(t *testing.T) {
	res, err := tracer.Run(reorderProgram, nil, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := mustEngine(t, mustRule(t, reorderRule))
	got, err := eng.TransformAll(res.Records)
	if err != nil {
		t.Fatal(err)
	}
	// In-struct: char@0, double@8, int@16, size 24. Out: int@0, char@4,
	// double@8, size 16. The hot member moves from offset 16 to 0 and the
	// element stride shrinks from 24 to 16.
	var h0, h1 uint64
	for i := range got {
		if got[i].HasSym {
			switch got[i].Var.String() {
			case "lRec2[0].hot":
				h0 = got[i].Addr
			case "lRec2[1].hot":
				h1 = got[i].Addr
			}
		}
	}
	if h0 == 0 || h1 == 0 {
		t.Fatal("reordered accesses missing")
	}
	if h1-h0 != 16 {
		t.Errorf("element stride = %d, want 16 (was 24)", h1-h0)
	}

	// Density payoff: the hot sweep misses fewer blocks after reordering.
	sim := func(recs []trace.Record) int64 {
		s, err := dinero.New(dinero.Options{L1: cache.Config{Size: 256, BlockSize: 32, Assoc: 2}})
		if err != nil {
			t.Fatal(err)
		}
		s.Process(recs)
		return s.L1().Stats().Misses()
	}
	before, after := sim(res.Records), sim(got)
	// 32 hot ints: inline stride 24 → 32×24=768 B = 24 blocks; packed
	// stride 16 → 512 B = 16 blocks. Fewer blocks ⇒ fewer cold misses.
	if after >= before {
		t.Errorf("misses: before %d, after %d — reordering should reduce them", before, after)
	}
}
