package xform

import (
	"strings"
	"testing"

	"tracedst/internal/memmodel"
	"tracedst/internal/trace"
	"tracedst/internal/tracer"
)

// The paper's §VI lists dynamic (heap) data structures as future work:
// "Due to the nature of the tracing tool we can apply our transformations
// to static data structures only." Our tracer retypes malloc blocks from
// the pointer they are assigned to, so heap-allocated arrays of structures
// carry full debug paths (heap_main_1[i].field) and the same rules apply.
const heapProgram = `
typedef struct { int mX; double mY; } Rec;

int main(void) {
	Rec *recs;
	recs = malloc(16 * sizeof(Rec));
	GLEIPNIR_START_INSTRUMENTATION;
	for (int i = 0; i < 16; i++) {
		recs[i].mX = i;
		recs[i].mY = i;
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	free(recs);
	return 0;
}
`

// The heap block's debug name is its allocation site; the rule targets it
// directly (AoS → SoA on a malloc'd array).
const heapRule = `
in:
struct heap_main_1 {
	int mX;
	double mY;
}[16];
out:
struct heapSoA {
	int mX[16];
	double mY[16];
};
`

func TestHeapStructureTransformation(t *testing.T) {
	res, err := tracer.Run(heapProgram, nil, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the heap accesses are annotated with element paths.
	sawHeap := false
	for i := range res.Records {
		r := &res.Records[i]
		if r.HasSym && r.Var.Root == "heap_main_1" {
			sawHeap = true
			if r.Vis != trace.Global {
				t.Errorf("heap record not globally visible: %s", r.String())
			}
			if memmodel.RegionOf(r.Addr) != "heap" {
				t.Errorf("heap record outside heap region: %s", r.String())
			}
		}
	}
	if !sawHeap {
		t.Fatal("no annotated heap accesses in trace")
	}

	eng := mustEngine(t, mustRule(t, heapRule))
	got, err := eng.TransformAll(res.Records)
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	for i := range got {
		if got[i].HasSym {
			text.WriteString(got[i].Var.String())
			text.WriteByte('\n')
		}
	}
	for _, want := range []string{"heapSoA.mX[0]", "heapSoA.mY[15]"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
	if strings.Contains(text.String(), "heap_main_1") {
		t.Error("heap_main_1 survived the transformation")
	}
	// SoA layout: mX elements 4 apart, mY block after all mX.
	var x0, x1, y0 uint64
	for i := range got {
		if !got[i].HasSym {
			continue
		}
		switch got[i].Var.String() {
		case "heapSoA.mX[0]":
			x0 = got[i].Addr
		case "heapSoA.mX[1]":
			x1 = got[i].Addr
		case "heapSoA.mY[0]":
			y0 = got[i].Addr
		}
	}
	if x1-x0 != 4 || y0-x0 != 64 {
		t.Errorf("SoA layout: mX stride %d (want 4), mY offset %d (want 64)", x1-x0, y0-x0)
	}
	if eng.Stats().Matched != 32 {
		t.Errorf("matched = %d", eng.Stats().Matched)
	}
}
