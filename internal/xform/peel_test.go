package xform

import (
	"strings"
	"testing"

	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/rules"
	"tracedst/internal/trace"
	"tracedst/internal/tracer"
)

const peelRule = `
in:
struct lRec {
	int hot;
	double cold1;
	double cold2;
}[64];
out:
struct lHot {
	int hot;
}[64];
struct lCold {
	double cold1;
	double cold2;
}[64];
`

const peelProgram = `
typedef struct { int hot; double cold1; double cold2; } Rec;
Rec lRec[64];

int main(void) {
	int sum;
	GLEIPNIR_START_INSTRUMENTATION;
	sum = 0;
	for (int i = 0; i < 64; i++) {
		sum += lRec[i].hot;
	}
	lRec[0].cold1 = 1.5;
	GLEIPNIR_STOP_INSTRUMENTATION;
	return sum;
}
`

func TestPeelRuleParses(t *testing.T) {
	r, err := rules.Parse(peelRule)
	if err != nil {
		t.Fatal(err)
	}
	pr, ok := r.(*rules.PeelRule)
	if !ok {
		t.Fatalf("kind = %v", r.Kind())
	}
	if pr.Kind().String() != "peel" {
		t.Errorf("kind string = %s", pr.Kind())
	}
	if pr.InRoot() != "lRec" || pr.OutRoot() != "lHot" {
		t.Errorf("roots = %s → %s", pr.InRoot(), pr.OutRoot())
	}
	if len(pr.Groups) != 2 || pr.ByField["hot"] != 0 || pr.ByField["cold1"] != 1 || pr.ByField["cold2"] != 1 {
		t.Errorf("groups = %+v byField=%v", pr.Groups, pr.ByField)
	}
	// lHot: 64×4 = 256 B; lCold: 64×16 = 1024 B.
	if rules.OutSize(pr) != 256+1024 {
		t.Errorf("out size = %d", rules.OutSize(pr))
	}
	if rules.InSize(pr) != 64*24 {
		t.Errorf("in size = %d", rules.InSize(pr))
	}
}

func TestPeelRuleErrors(t *testing.T) {
	cases := map[string]string{
		"member in two groups": `
in:
struct a { int x; int y; }[4];
out:
struct g1 { int x; }[4];
struct g2 { int x; int y; }[4];`,
		"member unassigned": `
in:
struct a { int x; int y; }[4];
out:
struct g1 { int x; }[4];
struct g2 { int x2; }[4];`,
		"length mismatch": `
in:
struct a { int x; int y; }[4];
out:
struct g1 { int x; }[8];
struct g2 { int y; }[4];`,
		"scalar in shape": `
in:
struct a { int x; int y; };
out:
struct g1 { int x; }[4];
struct g2 { int y; }[4];`,
	}
	for name, src := range cases {
		if _, err := rules.Parse(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPeelTransform(t *testing.T) {
	res, err := tracer.Run(peelProgram, nil, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := mustEngine(t, mustRule(t, peelRule))
	got, err := eng.TransformAll(res.Records)
	if err != nil {
		t.Fatal(err)
	}
	// No insertions — peeling is a pure address remap.
	if len(got) != len(res.Records) {
		t.Fatalf("record count changed: %d → %d", len(res.Records), len(got))
	}
	text := strings.Builder{}
	for i := range got {
		if got[i].HasSym {
			text.WriteString(got[i].Var.String())
			text.WriteByte('\n')
		}
	}
	for _, want := range []string{"lHot[0].hot", "lHot[63].hot", "lCold[0].cold1"} {
		if !strings.Contains(text.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
	if strings.Contains(text.String(), "lRec") {
		t.Error("lRec survived peeling")
	}

	// Layout: hot elements 4 bytes apart in the peeled array (24 before).
	var h0, h1, c0 uint64
	for i := range got {
		if !got[i].HasSym {
			continue
		}
		switch got[i].Var.String() {
		case "lHot[0].hot":
			h0 = got[i].Addr
		case "lHot[1].hot":
			h1 = got[i].Addr
		case "lCold[0].cold1":
			c0 = got[i].Addr
		}
	}
	if h1-h0 != 4 {
		t.Errorf("hot stride = %d, want 4", h1-h0)
	}
	// lRec is a global (data segment): the cold group is placed above the
	// hot group, past its end.
	if c0 < h0+64*4 {
		t.Errorf("cold group at %#x overlaps hot group at %#x", c0, h0)
	}

	// Density payoff: a tiny cache holds all peeled hot data.
	cfg := cache.Config{Size: 256, BlockSize: 32, Assoc: 1}
	miss := func(recs []trace.Record) int64 {
		s, err := dinero.New(dinero.Options{L1: cfg})
		if err != nil {
			t.Fatal(err)
		}
		s.Process(recs)
		return s.L1().Stats().Misses()
	}
	if b, a := miss(res.Records), miss(got); a >= b {
		t.Errorf("peeling did not reduce misses: %d → %d", b, a)
	}
}

func TestPeelGlobalGroupsAbove(t *testing.T) {
	rule := mustRule(t, `
in:
struct gRec { int x; int y; }[4];
out:
struct gX { int x; }[4];
struct gY { int y; }[4];
`)
	eng := mustEngine(t, rule)
	rec, _ := trace.ParseRecord("S 000601040 4 main GS gRec[0].x")
	out, err := eng.Transform(&rec)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Var.String() != "gX[0].x" {
		t.Errorf("out = %s", out[0].Var.String())
	}
	x, _ := eng.OutBase("gX")
	y, ok := eng.OutBase("gY")
	if !ok || y <= x {
		t.Errorf("global peel group gY at %#x not above gX at %#x", y, x)
	}
}

func TestPeelNonConformingPassThrough(t *testing.T) {
	eng := mustEngine(t, mustRule(t, peelRule))
	rec, _ := trace.ParseRecord("L 7ff000100 8 main LS 0 1 lRec")
	out, err := eng.Transform(&rec)
	if err != nil || len(out) != 1 || !out[0].Equal(&rec) {
		t.Errorf("whole-struct access altered: %+v err=%v", out, err)
	}
}
