// Package xform is the paper's trace-transformation module: a streaming
// rewriter that applies rule-based data-structure transformations to a
// Gleipnir trace during simulation, without touching the traced program.
//
// Processing follows §IV.A of the paper:
//
//  1. Initialise the rules — each rule's out structures get a new base
//     address and size.
//  2. Check validity — each trace line's metadata variable is parsed into a
//     nested access path; lines whose root variable and nesting match an in
//     rule are transformed, everything else passes through unchanged
//     ("the simulator will simply ignore it").
//  3. Apply the transformation — the in path is mapped to the out rule and
//     a new address computed; pointer indirection inserts an extra load,
//     stride rules insert the hand-selected index-arithmetic accesses.
//  4. Print the transformation — the rewritten stream can be written to a
//     transformed_trace.out file and diffed against the original.
package xform

import (
	"fmt"
	"io"

	"tracedst/internal/ctype"
	"tracedst/internal/memmodel"
	"tracedst/internal/rules"
	"tracedst/internal/telemetry"
	"tracedst/internal/trace"
)

// Options tune the engine.
type Options struct {
	// ShadowAlign forces the alignment of relocated out structures. Zero
	// selects automatically: the out type's natural alignment, or for
	// stride rules the power of two covering the formula's largest jump
	// (so that pinned windows stay within one cache set).
	ShadowAlign int64
}

// Stats counts what the engine did.
type Stats struct {
	// Total records seen.
	Total int64
	// Matched records rewritten by a rule.
	Matched int64
	// Passed records forwarded unchanged.
	Passed int64
	// Inserted extra records (indirection loads, injected arithmetic).
	Inserted int64
}

// Engine applies one or more rules to a record stream. Rules match on
// distinct root variables; the first matching rule wins.
type Engine struct {
	opts   Options
	states []*ruleState
	byRoot map[string]*ruleState

	// lastScalar remembers the most recent annotated scalar record per
	// root variable, so injected accesses can reuse real addresses.
	lastScalar map[string]trace.Record
	// synth hands out addresses for injected variables that never appear
	// in the original trace (e.g. ITEMSPERLINE).
	synthNext uint64
	synthAddr map[string]uint64

	stats Stats
}

// ruleState is the per-rule address bookkeeping.
type ruleState struct {
	rule rules.Rule
	// inBase is established from the first matching record.
	inBase uint64
	haveIn bool
	// bases maps out variable name → base address.
	bases map[string]uint64
}

// New builds an engine over the given rules.
func New(opts Options, rs ...rules.Rule) (*Engine, error) {
	if len(rs) == 0 {
		return nil, fmt.Errorf("xform: no rules given")
	}
	e := &Engine{
		opts:       opts,
		byRoot:     map[string]*ruleState{},
		lastScalar: map[string]trace.Record{},
		synthNext:  memmodel.StackTop + 16,
		synthAddr:  map[string]uint64{},
	}
	for _, r := range rs {
		if _, dup := e.byRoot[r.InRoot()]; dup {
			return nil, fmt.Errorf("xform: two rules for root %q", r.InRoot())
		}
		st := &ruleState{rule: r, bases: map[string]uint64{}}
		e.states = append(e.states, st)
		e.byRoot[r.InRoot()] = st
	}
	return e, nil
}

// Stats returns the counters so far.
func (e *Engine) Stats() Stats { return e.stats }

// OutBase reports the base address assigned to an out variable (valid once
// a record matched the rule).
func (e *Engine) OutBase(name string) (uint64, bool) {
	for _, st := range e.states {
		if a, ok := st.bases[name]; ok {
			return a, true
		}
	}
	return 0, false
}

// Transform rewrites one record. It returns the record(s) to emit in order:
// the unchanged record, or the rewritten record preceded by any inserted
// accesses.
func (e *Engine) Transform(rec *trace.Record) ([]trace.Record, error) {
	e.stats.Total++
	// Track scalar addresses for inject resolution.
	if rec.HasSym && len(rec.Var.Path) == 0 {
		e.lastScalar[rec.Var.Root] = *rec
	}
	if !rec.HasSym {
		e.stats.Passed++
		return []trace.Record{*rec}, nil
	}
	st, ok := e.byRoot[rec.Var.Root]
	if !ok {
		e.stats.Passed++
		return []trace.Record{*rec}, nil
	}
	out, err := e.apply(st, rec)
	if err != nil {
		return nil, err
	}
	if out == nil {
		// Non-conforming nesting: ignore (pass through).
		e.stats.Passed++
		return []trace.Record{*rec}, nil
	}
	e.stats.Matched++
	if n := len(out) - 1; n > 0 {
		e.stats.Inserted += int64(n)
	}
	return out, nil
}

// TransformAll rewrites a whole record slice. Each call publishes what it
// did — records seen, rules fired, records inserted/passed — to the
// default telemetry registry.
func (e *Engine) TransformAll(recs []trace.Record) ([]trace.Record, error) {
	before := e.stats
	out := make([]trace.Record, 0, len(recs)+len(recs)/4)
	for i := range recs {
		rs, err := e.Transform(&recs[i])
		if err != nil {
			e.publish(before)
			return nil, err
		}
		out = append(out, rs...)
	}
	e.publish(before)
	return out, nil
}

// publish adds this call's stat deltas (engines accumulate across calls)
// to the default registry.
func (e *Engine) publish(before Stats) {
	reg := telemetry.Default()
	reg.Counter("xform.runs").Inc()
	reg.Counter("xform.records").Add(e.stats.Total - before.Total)
	reg.Counter("xform.rules_fired").Add(e.stats.Matched - before.Matched)
	reg.Counter("xform.inserted").Add(e.stats.Inserted - before.Inserted)
	reg.Counter("xform.passed").Add(e.stats.Passed - before.Passed)
}

// Run streams records from rd to wr, transforming as it goes — the paper's
// trace-file → transformed_trace.out pipeline.
func (e *Engine) Run(rd *trace.Reader, wr *trace.Writer) error {
	return e.RunSource(trace.NewSource(rd, 0), wr)
}

// RunSource streams record batches from src to wr, transforming as it
// goes, holding only one batch live at a time — the constant-memory
// transform stage, format-agnostic on both ends. Like TransformAll it
// publishes its stat deltas to the default telemetry registry.
func (e *Engine) RunSource(src trace.RecordSource, wr trace.RecordWriter) error {
	before := e.stats
	h, err := src.Header()
	if err != nil && err != io.EOF {
		return err
	}
	// A headerless input stays headerless — inventing a zero START line
	// would break byte-level round trips through tracediff.
	if src.HasHeader() {
		if err := wr.WriteHeader(h); err != nil {
			return err
		}
	}
	for {
		batch, err := src.NextBatch()
		if err == io.EOF {
			e.publish(before)
			return wr.Flush()
		}
		if err != nil {
			e.publish(before)
			return err
		}
		for i := range batch {
			out, err := e.Transform(&batch[i])
			if err != nil {
				e.publish(before)
				return err
			}
			for j := range out {
				if err := wr.Write(&out[j]); err != nil {
					return err
				}
			}
		}
	}
}

// apply dispatches on the rule kind. A nil, nil return means "does not
// conform — pass through".
func (e *Engine) apply(st *ruleState, rec *trace.Record) ([]trace.Record, error) {
	switch r := st.rule.(type) {
	case *rules.StructRemapRule:
		return e.applyRemap(st, r, rec)
	case *rules.OutlineRule:
		return e.applyOutline(st, r, rec)
	case *rules.StrideRule:
		return e.applyStride(st, r, rec)
	case *rules.PeelRule:
		return e.applyPeel(st, r, rec)
	}
	return nil, fmt.Errorf("xform: unknown rule type %T", st.rule)
}

// establish computes the in base address from the first conforming record
// and assigns out bases.
func (e *Engine) establish(st *ruleState, rec *trace.Record, inType ctype.Type) error {
	if st.haveIn {
		return nil
	}
	off, _, err := ctype.Resolve(inType, rec.Var.Path)
	if err != nil {
		return fmt.Errorf("xform: cannot anchor %s: %v", rec.Var, err)
	}
	st.inBase = rec.Addr - uint64(off)
	st.haveIn = true
	return e.assignBases(st)
}

// assignBases places each out structure: the primary replaces the in
// structure at its (re-aligned) base, auxiliaries (the outline pool) go
// below it on the stack or above it in the data segment ("the simulator
// will read the in and out rules and set up a new base address and size for
// the new structure").
func (e *Engine) assignBases(st *ruleState) error {
	onStack := memmodel.RegionOf(st.inBase) == "stack"
	switch r := st.rule.(type) {
	case *rules.StructRemapRule:
		align := e.alignFor(r.OutType.Align(), 0)
		st.bases[r.OutVar] = alignDown(st.inBase, align)
	case *rules.OutlineRule:
		align := e.alignFor(r.OutType.Align(), 0)
		primary := alignDown(st.inBase, align)
		st.bases[r.OutVar] = primary
		poolAlign := e.alignFor(r.PoolType.Align(), 0)
		if onStack {
			st.bases[r.PoolVar] = alignDown(primary-uint64(r.PoolType.Size()), poolAlign)
		} else {
			st.bases[r.PoolVar] = alignUp(primary+uint64(r.OutType.Size()), poolAlign)
		}
	case *rules.StrideRule:
		align := e.alignFor(r.Elem.Align(), strideAutoAlign(r))
		st.bases[r.OutVar] = alignDown(st.inBase, align)
	case *rules.PeelRule:
		// First group replaces the in structure; subsequent groups stack
		// below it (stack variables) or above it (globals/heap).
		primaryAlign := e.alignFor(r.Groups[0].Type.Align(), 0)
		base := alignDown(st.inBase, primaryAlign)
		st.bases[r.Groups[0].Var] = base
		low := base
		high := base + uint64(r.Groups[0].Type.Size())
		for _, g := range r.Groups[1:] {
			a := e.alignFor(g.Type.Align(), 0)
			if onStack {
				low = alignDown(low-uint64(g.Type.Size()), a)
				st.bases[g.Var] = low
			} else {
				high = alignUp(high, a)
				st.bases[g.Var] = high
				high += uint64(g.Type.Size())
			}
		}
	}
	return nil
}

// alignFor picks the effective alignment: explicit option, else the larger
// of the natural and automatic alignments.
func (e *Engine) alignFor(natural, auto int64) uint64 {
	if e.opts.ShadowAlign > 0 {
		return uint64(e.opts.ShadowAlign)
	}
	a := natural
	if auto > a {
		a = auto
	}
	if a < 1 {
		a = 1
	}
	return uint64(a)
}

// strideAutoAlign returns the power of two covering the formula's largest
// byte jump, so that each pinned window falls entirely within one cache-set
// stride (512 bytes for the paper's formula).
func strideAutoAlign(r *rules.StrideRule) int64 {
	esz := r.Elem.Size()
	var maxJump int64 = esz
	prev, err := r.Formula.Eval(0)
	if err != nil {
		return esz
	}
	for i := int64(1); i < r.InLen; i++ {
		cur, err := r.Formula.Eval(i)
		if err != nil {
			return esz
		}
		jump := (cur - prev) * esz
		if jump < 0 {
			jump = -jump
		}
		if jump > maxJump {
			maxJump = jump
		}
		prev = cur
	}
	align := int64(1)
	for align < maxJump && align < 4096 {
		align <<= 1
	}
	return align
}

func alignDown(a uint64, align uint64) uint64 { return a - a%align }

func alignUp(a uint64, align uint64) uint64 {
	if r := a % align; r != 0 {
		return a + align - r
	}
	return a
}
