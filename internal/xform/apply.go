package xform

import (
	"tracedst/internal/ctype"
	"tracedst/internal/rules"
	"tracedst/internal/trace"
)

// applyRemap rewrites one SoA↔AoS record: the access is decomposed into a
// (member, element-index) pair and re-resolved against the out layout.
func (e *Engine) applyRemap(st *ruleState, r *rules.StructRemapRule, rec *trace.Record) ([]trace.Record, error) {
	field, flat, ok := splitAccess(r.InType, rec.Var.Path)
	if !ok {
		return nil, nil
	}
	outPath, ok := buildAccess(r.OutType, field, flat)
	if !ok {
		return nil, nil
	}
	if err := e.establish(st, rec, r.InType); err != nil {
		return nil, err
	}
	off, elem, err := ctype.Resolve(r.OutType, outPath)
	if err != nil {
		return nil, nil // out of range for the out shape: ignore
	}
	out := *rec
	out.Addr = st.bases[r.OutVar] + uint64(off)
	out.Size = elem.Size()
	out.Var = ctype.AccessExpr{Root: r.OutVar, Path: outPath}
	out.Aggregate = true
	var recs []trace.Record
	if err := e.appendInjects(&out, r.Inject(), &recs); err != nil {
		return nil, err
	}
	return append(recs, out), nil
}

// splitAccess decomposes a conforming access path into (member name, flat
// element index). Conforming paths are [idx]·field(·idx) with at most one
// varying dimension on each level.
func splitAccess(t ctype.Type, path ctype.Path) (string, int64, bool) {
	var outer int64
	st, isStruct := t.(*ctype.Struct)
	if arr, ok := t.(*ctype.Array); ok {
		if len(path) == 0 || !path[0].IsIndex() {
			return "", 0, false
		}
		outer = path[0].Index
		path = path[1:]
		st, isStruct = arr.Elem.(*ctype.Struct)
	}
	if !isStruct || len(path) == 0 || path[0].IsIndex() {
		return "", 0, false
	}
	fieldName := path[0].Field
	f, ok := st.FieldByName(fieldName)
	if !ok {
		return "", 0, false
	}
	path = path[1:]
	var inner, innerLen int64 = 0, 1
	if fa, ok := f.Type.(*ctype.Array); ok {
		if len(path) != 1 || !path[0].IsIndex() {
			return "", 0, false
		}
		inner = path[0].Index
		innerLen = fa.Len
		path = nil
	}
	if len(path) != 0 {
		return "", 0, false
	}
	return fieldName, outer*innerLen + inner, true
}

// buildAccess is the inverse of splitAccess for the out layout.
func buildAccess(t ctype.Type, field string, flat int64) (ctype.Path, bool) {
	var p ctype.Path
	st, isStruct := t.(*ctype.Struct)
	isArray := false
	if arr, ok := t.(*ctype.Array); ok {
		isArray = true
		st, isStruct = arr.Elem.(*ctype.Struct)
	}
	if !isStruct {
		return nil, false
	}
	f, ok := st.FieldByName(field)
	if !ok {
		return nil, false
	}
	var innerLen int64 = 1
	_, fieldIsArray := f.Type.(*ctype.Array)
	if fa, ok := f.Type.(*ctype.Array); ok {
		innerLen = fa.Len
	}
	if isArray {
		p = append(p, ctype.PathElem{Index: flat / innerLen})
	} else if flat >= innerLen {
		return nil, false
	}
	p = append(p, ctype.PathElem{Field: field})
	if fieldIsArray {
		p = append(p, ctype.PathElem{Index: flat % innerLen})
	} else if flat%innerLen != 0 {
		return nil, false
	}
	return p, true
}

// applyOutline rewrites one record of the nested→indirect transformation.
// Accesses to the nested member become a pointer load on the out structure
// followed by the access in the external pool; other members are remapped
// onto the out structure.
func (e *Engine) applyOutline(st *ruleState, r *rules.OutlineRule, rec *trace.Record) ([]trace.Record, error) {
	path := rec.Var.Path
	if len(path) < 2 || !path[0].IsIndex() || path[1].IsIndex() {
		return nil, nil
	}
	idx := path[0].Index
	field := path[1].Field
	if err := e.establish(st, rec, r.InType); err != nil {
		return nil, err
	}
	outStruct := r.OutType.Elem.(*ctype.Struct)

	if field != r.NestedField {
		// Plain member: remap onto the out structure.
		outPath := append(ctype.Path{{Index: idx}}, path[1:]...)
		off, elem, err := ctype.Resolve(r.OutType, outPath)
		if err != nil {
			return nil, nil
		}
		out := *rec
		out.Addr = st.bases[r.OutVar] + uint64(off)
		out.Size = elem.Size()
		out.Var = ctype.AccessExpr{Root: r.OutVar, Path: outPath}
		out.Aggregate = true
		return []trace.Record{out}, nil
	}

	// Nested member: lS1[i].mRarelyUsed.g → load lS2[i].mRarelyUsed (the
	// pointer), then access lStorage[i].g. "The transformed trace must
	// reflect this transformation because the new trace should reflect any
	// additional memory accesses which result from transforming structures."
	ptrField, _ := outStruct.FieldByName(r.NestedField)
	ptrPath := ctype.Path{{Index: idx}, {Field: r.NestedField}}
	ptrOff, _, err := ctype.Resolve(r.OutType, ptrPath)
	if err != nil {
		return nil, nil
	}
	load := *rec
	load.Op = trace.Load
	load.Addr = st.bases[r.OutVar] + uint64(ptrOff)
	load.Size = ptrField.Type.Size()
	load.Var = ctype.AccessExpr{Root: r.OutVar, Path: ptrPath}
	load.Aggregate = true

	poolPath := append(ctype.Path{{Index: idx}}, path[2:]...)
	poolOff, elem, err := ctype.Resolve(r.PoolType, poolPath)
	if err != nil {
		return nil, nil
	}
	out := *rec
	out.Addr = st.bases[r.PoolVar] + uint64(poolOff)
	out.Size = elem.Size()
	out.Var = ctype.AccessExpr{Root: r.PoolVar, Path: poolPath}
	out.Aggregate = true
	return []trace.Record{load, out}, nil
}

// applyStride rewrites one array access through the index formula and
// prepends the injected arithmetic accesses.
func (e *Engine) applyStride(st *ruleState, r *rules.StrideRule, rec *trace.Record) ([]trace.Record, error) {
	path := rec.Var.Path
	if len(path) != 1 || !path[0].IsIndex() {
		return nil, nil
	}
	i := path[0].Index
	if i < 0 || i >= r.InLen {
		return nil, nil
	}
	inType := ctype.NewArray(r.Elem, r.InLen)
	if err := e.establish(st, rec, inType); err != nil {
		return nil, err
	}
	j, err := r.Formula.Eval(i)
	if err != nil {
		return nil, err
	}
	out := *rec
	out.Addr = st.bases[r.OutVar] + uint64(j*r.Elem.Size())
	out.Size = r.Elem.Size()
	out.Var = ctype.AccessExpr{Root: r.OutVar, Path: ctype.Path{{Index: j}}}
	out.Aggregate = true

	var recs []trace.Record
	if err := e.appendInjects(&out, r.Inject(), &recs); err != nil {
		return nil, err
	}
	return append(recs, out), nil
}

// applyPeel rewrites one record of the structure-peeling transformation:
// lRec[i].f moves to the group array holding member f, preserving the
// element index.
func (e *Engine) applyPeel(st *ruleState, r *rules.PeelRule, rec *trace.Record) ([]trace.Record, error) {
	path := rec.Var.Path
	if len(path) < 2 || !path[0].IsIndex() || path[1].IsIndex() {
		return nil, nil
	}
	gi, ok := r.ByField[path[1].Field]
	if !ok {
		return nil, nil
	}
	if err := e.establish(st, rec, r.InType); err != nil {
		return nil, err
	}
	group := r.Groups[gi]
	outPath := append(ctype.Path{{Index: path[0].Index}}, path[1:]...)
	off, elem, err := ctype.Resolve(group.Type, outPath)
	if err != nil {
		return nil, nil
	}
	out := *rec
	out.Addr = st.bases[group.Var] + uint64(off)
	out.Size = elem.Size()
	out.Var = ctype.AccessExpr{Root: group.Var, Path: outPath}
	out.Aggregate = true
	return []trace.Record{out}, nil
}

// appendInjects materialises the rule's inject list as records placed
// before the transformed access. Variables seen in the trace reuse their
// real addresses; unseen ones (stride temporaries like ITEMSPERLINE) get
// stable synthetic stack slots.
func (e *Engine) appendInjects(model *trace.Record, injs []rules.InjectAccess, dst *[]trace.Record) error {
	if len(injs) == 0 || dst == nil {
		return nil
	}
	for _, inj := range injs {
		var rec trace.Record
		if prev, ok := e.lastScalar[inj.Var]; ok {
			rec = prev
			rec.Func = model.Func
		} else {
			addr, ok := e.synthAddr[inj.Var]
			if !ok {
				addr = e.synthNext
				e.synthNext += 16
				e.synthAddr[inj.Var] = addr
			}
			rec = trace.Record{
				Func:   model.Func,
				HasSym: true,
				Vis:    trace.Local,
				Frame:  0,
				Thread: model.Thread,
				Var:    ctype.AccessExpr{Root: inj.Var},
			}
			if rec.Thread == 0 {
				rec.Thread = 1
			}
			rec.Addr = addr
		}
		rec.Op = trace.Op(inj.Op)
		rec.Size = inj.Size
		*dst = append(*dst, rec)
	}
	return nil
}
