package xform

import (
	"bytes"
	"strings"
	"testing"

	"tracedst/internal/rules"
	"tracedst/internal/trace"
	"tracedst/internal/tracer"
	"tracedst/internal/workloads"
)

func mustRule(t *testing.T, src string) rules.Rule {
	t.Helper()
	r, err := rules.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustEngine(t *testing.T, rs ...rules.Rule) *Engine {
	t.Helper()
	e, err := New(Options{}, rs...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func traceOf(t *testing.T, src string, defines map[string]string) []trace.Record {
	t.Helper()
	res, err := tracer.Run(src, defines, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Records
}

func varStrings(recs []trace.Record) []string {
	var out []string
	for i := range recs {
		if recs[i].HasSym {
			out = append(out, recs[i].Var.String())
		} else {
			out = append(out, "-")
		}
	}
	return out
}

// TestTrans1Fig5 reproduces Figure 5: transforming the SoA trace with the
// Listing 5 rule yields the access pattern of the hand-written AoS program.
func TestTrans1Fig5(t *testing.T) {
	orig := traceOf(t, workloads.Trans1SoA, map[string]string{"LEN": "16"})
	eng := mustEngine(t, mustRule(t, workloads.RuleTrans1))
	got, err := eng.TransformAll(orig)
	if err != nil {
		t.Fatal(err)
	}
	// Same record count: T1 inserts nothing (Fig 5 shows 1:1 lines).
	if len(got) != len(orig) {
		t.Fatalf("record count changed: %d → %d", len(orig), len(got))
	}
	// Reference: the hand-transformed program.
	ref := traceOf(t, workloads.Trans1AoS, map[string]string{"LEN": "16"})
	if len(ref) != len(got) {
		t.Fatalf("reference has %d records, transformed %d", len(ref), len(got))
	}
	for i := range got {
		g, r := &got[i], &ref[i]
		if g.Op != r.Op || g.Size != r.Size {
			t.Fatalf("record %d: op/size %c/%d vs reference %c/%d", i, g.Op, g.Size, r.Op, r.Size)
		}
		// Variable naming must match the reference exactly for lAoS records.
		if r.HasSym && strings.HasPrefix(r.Var.Root, "lAoS") {
			if !g.HasSym || g.Var.String() != r.Var.String() {
				t.Fatalf("record %d: %q vs reference %q", i, g.Var.String(), r.Var.String())
			}
		}
	}
	// Address deltas within the transformed structure must match the AoS
	// layout: mY 8 bytes after mX, consecutive structs 16 bytes apart.
	addrOf := func(recs []trace.Record, v string) uint64 {
		for i := range recs {
			if recs[i].HasSym && recs[i].Var.String() == v {
				return recs[i].Addr
			}
		}
		t.Fatalf("%s not found", v)
		return 0
	}
	x0 := addrOf(got, "lAoS[0].mX")
	y0 := addrOf(got, "lAoS[0].mY")
	x1 := addrOf(got, "lAoS[1].mX")
	if y0-x0 != 8 || x1-x0 != 16 {
		t.Errorf("layout deltas: mY-mX=%d struct stride=%d, want 8 and 16", y0-x0, x1-x0)
	}
	// Non-matching records (lI, zzq) pass through untouched.
	st := eng.Stats()
	if st.Matched != 32 { // 16 mX + 16 mY stores
		t.Errorf("matched = %d, want 32", st.Matched)
	}
	if st.Inserted != 0 {
		t.Errorf("inserted = %d", st.Inserted)
	}
	if st.Total != int64(len(orig)) {
		t.Errorf("total = %d", st.Total)
	}
}

// TestTrans1ReverseAoStoSoA checks the inverse direction (rules are
// one-directional, so this needs its own rule file).
func TestTrans1ReverseAoStoSoA(t *testing.T) {
	rule := mustRule(t, `
in:
struct lAoS {
	int mX;
	double mY;
}[16];
out:
struct lSoA {
	int mX[16];
	double mY[16];
};
`)
	orig := traceOf(t, workloads.Trans1AoS, map[string]string{"LEN": "16"})
	eng := mustEngine(t, rule)
	got, err := eng.TransformAll(orig)
	if err != nil {
		t.Fatal(err)
	}
	text := strings.Join(varStrings(got), "\n")
	for _, want := range []string{"lSoA.mX[0]", "lSoA.mY[15]"} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q", want)
		}
	}
	if strings.Contains(text, "lAoS") {
		t.Error("lAoS survived the transformation")
	}
}

// TestTrans2Fig8 reproduces Figure 8: the nested-structure accesses become
// a pointer load plus a pool access.
func TestTrans2Fig8(t *testing.T) {
	orig := traceOf(t, workloads.Trans2Inline, map[string]string{"LEN": "16"})
	eng := mustEngine(t, mustRule(t, workloads.RuleTrans2))
	got, err := eng.TransformAll(orig)
	if err != nil {
		t.Fatal(err)
	}
	// 32 nested accesses (mY and mZ per element) each gain one load.
	if len(got) != len(orig)+32 {
		t.Fatalf("record count %d → %d, want +32", len(orig), len(got))
	}
	if eng.Stats().Inserted != 32 {
		t.Errorf("inserted = %d", eng.Stats().Inserted)
	}
	// Find the first transformed nested write: must be preceded by the
	// pointer load, exactly as the green lines of Fig 8.
	for i := 1; i < len(got); i++ {
		if got[i].HasSym && got[i].Var.String() == "lStorageForRarelyUsed[0].mY" {
			prev := &got[i-1]
			if prev.Op != trace.Load || prev.Var.String() != "lS2[0].mRarelyUsed" || prev.Size != 8 {
				t.Errorf("pointer load missing before pool access: %s", prev.String())
			}
			if got[i].Op != trace.Store || got[i].Size != 8 {
				t.Errorf("pool access = %s", got[i].String())
			}
			break
		}
	}
	text := strings.Join(varStrings(got), "\n")
	for _, want := range []string{
		"lS2[0].mFrequentlyUsed",
		"lS2[15].mRarelyUsed",
		"lStorageForRarelyUsed[15].mZ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q", want)
		}
	}
	if strings.Contains(text, "lS1") {
		t.Error("lS1 survived the transformation")
	}
	// The reference program's traced loop must produce the same op pattern:
	// compare against the hand-transformed Listing 7 trace.
	ref := traceOf(t, workloads.Trans2Outlined, map[string]string{"LEN": "16"})
	opsOf := func(recs []trace.Record) string {
		var b strings.Builder
		for i := range recs {
			b.WriteByte(byte(recs[i].Op))
		}
		return b.String()
	}
	if opsOf(got) != opsOf(ref) {
		t.Errorf("op sequence differs from hand-transformed reference\n got %s\n ref %s",
			opsOf(got), opsOf(ref))
	}
}

// TestTrans2Layout checks the out layout distances: the pool sits below the
// out structure on the stack, pool elements are 16 bytes apart.
func TestTrans2Layout(t *testing.T) {
	orig := traceOf(t, workloads.Trans2Inline, map[string]string{"LEN": "16"})
	eng := mustEngine(t, mustRule(t, workloads.RuleTrans2))
	got, err := eng.TransformAll(orig)
	if err != nil {
		t.Fatal(err)
	}
	var s2Base, poolBase uint64
	var ok1, ok2 bool
	s2Base, ok1 = eng.OutBase("lS2")
	poolBase, ok2 = eng.OutBase("lStorageForRarelyUsed")
	if !ok1 || !ok2 {
		t.Fatal("bases not assigned")
	}
	if poolBase >= s2Base {
		t.Errorf("pool at %#x not below lS2 at %#x (stack var)", poolBase, s2Base)
	}
	var y0, y1 uint64
	for i := range got {
		if got[i].HasSym {
			switch got[i].Var.String() {
			case "lStorageForRarelyUsed[0].mY":
				y0 = got[i].Addr
			case "lStorageForRarelyUsed[1].mY":
				y1 = got[i].Addr
			}
		}
	}
	if y1-y0 != 16 {
		t.Errorf("pool element stride = %d, want 16", y1-y0)
	}
}

// TestTrans3Fig9 reproduces Figure 9: stride remap with injected
// index-arithmetic loads.
func TestTrans3Fig9(t *testing.T) {
	orig := traceOf(t, workloads.Trans3Contiguous, map[string]string{"LEN": "1024"})
	eng := mustEngine(t, mustRule(t, workloads.RuleTrans3))
	got, err := eng.TransformAll(orig)
	if err != nil {
		t.Fatal(err)
	}
	// Each of the 1024 stores gains 4 injected loads.
	if eng.Stats().Inserted != 4*1024 {
		t.Errorf("inserted = %d, want 4096", eng.Stats().Inserted)
	}
	// Inspect the first transformed store: preceded by ITEMSPERLINE and lI
	// loads, with lI reusing its real trace address.
	idx := -1
	for i := range got {
		if got[i].HasSym && got[i].Var.String() == "lSetHashingArray[0]" {
			idx = i
			break
		}
	}
	if idx < 4 {
		t.Fatalf("transformed store not found (idx=%d)", idx)
	}
	names := []string{}
	for _, r := range got[idx-4 : idx] {
		names = append(names, r.Var.Root)
		if r.Op != trace.Load {
			t.Errorf("injected op = %c", r.Op)
		}
	}
	wantNames := []string{"ITEMSPERLINE", "ITEMSPERLINE", "lI", "ITEMSPERLINE"}
	for i := range wantNames {
		if names[i] != wantNames[i] {
			t.Errorf("inject %d = %s, want %s", i, names[i], wantNames[i])
		}
	}
	// The injected lI load must reuse lI's true address.
	var liAddr uint64
	for i := range orig {
		if orig[i].HasSym && orig[i].Var.Root == "lI" {
			liAddr = orig[i].Addr
			break
		}
	}
	if got[idx-2].Addr != liAddr {
		t.Errorf("injected lI at %#x, real lI at %#x", got[idx-2].Addr, liAddr)
	}
	// ITEMSPERLINE is synthetic but stable.
	if got[idx-4].Addr != got[idx-3].Addr {
		t.Error("synthetic ITEMSPERLINE address not stable")
	}

	// Index mapping: element 9 lands at formula position 129.
	for i := range got {
		if got[i].HasSym && got[i].Var.Root == "lSetHashingArray" {
			j := got[i].Var.Path[0].Index
			base, _ := eng.OutBase("lSetHashingArray")
			if got[i].Addr != base+uint64(j*4) {
				t.Fatalf("address %#x inconsistent with index %d", got[i].Addr, j)
			}
		}
	}
	text := strings.Join(varStrings(got), "\n")
	if !strings.Contains(text, "lSetHashingArray[129]") {
		t.Error("formula mapping for element 9 missing")
	}
	if strings.Contains(text, "lContiguousArray") {
		t.Error("lContiguousArray survived")
	}
}

// TestTrans3SetPinning: the transformed addresses must all fall in a single
// 32-byte window per 512 bytes — one cache set on the PPC440 geometry.
func TestTrans3SetPinning(t *testing.T) {
	orig := traceOf(t, workloads.Trans3Contiguous, map[string]string{"LEN": "1024"})
	eng := mustEngine(t, mustRule(t, workloads.RuleTrans3))
	got, err := eng.TransformAll(orig)
	if err != nil {
		t.Fatal(err)
	}
	sets := map[uint64]bool{}
	for i := range got {
		if got[i].HasSym && got[i].Var.Root == "lSetHashingArray" {
			sets[(got[i].Addr>>5)&15] = true
		}
	}
	if len(sets) != 1 {
		t.Errorf("pinned accesses span %d sets, want 1 (auto-alignment failed)", len(sets))
	}
}

func TestUnmatchedNestingIgnored(t *testing.T) {
	// A record whose root matches but whose path does not conform must pass
	// through unchanged ("the simulator will simply ignore it").
	rule := mustRule(t, workloads.RuleTrans1)
	eng := mustEngine(t, rule)
	rec, err := trace.ParseRecord("S 7ff000390 4 main LS 0 1 lSoA.bogus[0]")
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Transform(&rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || !out[0].Equal(&rec) {
		t.Errorf("non-conforming record altered: %+v", out)
	}
	if eng.Stats().Passed != 1 {
		t.Errorf("stats = %+v", eng.Stats())
	}
}

func TestWholeStructAccessIgnored(t *testing.T) {
	rule := mustRule(t, workloads.RuleTrans1)
	eng := mustEngine(t, rule)
	rec, _ := trace.ParseRecord("L 7ff000390 8 main LS 0 1 lSoA")
	out, err := eng.Transform(&rec)
	if err != nil || len(out) != 1 || !out[0].Equal(&rec) {
		t.Errorf("whole-struct access altered: %+v err=%v", out, err)
	}
}

func TestOneDirectionalRules(t *testing.T) {
	// A rule lSoA→lAoS must not touch lAoS records ("the mapping between an
	// in rule and an out rule is not bi-directional").
	eng := mustEngine(t, mustRule(t, workloads.RuleTrans1))
	rec, _ := trace.ParseRecord("S 7ff000350 4 main LS 0 1 lAoS[0].mX")
	out, err := eng.Transform(&rec)
	if err != nil || len(out) != 1 || !out[0].Equal(&rec) {
		t.Errorf("out-rule record rewritten: %+v err=%v", out, err)
	}
}

func TestMultipleRules(t *testing.T) {
	r1 := mustRule(t, workloads.RuleTrans1)
	r2 := mustRule(t, workloads.RuleTrans2)
	eng := mustEngine(t, r1, r2)
	s1, _ := trace.ParseRecord("S 7ff000390 4 main LS 0 1 lSoA.mX[0]")
	s2, _ := trace.ParseRecord("S 7ff000100 4 main LS 0 1 lS1[0].mFrequentlyUsed")
	o1, err1 := eng.Transform(&s1)
	o2, err2 := eng.Transform(&s2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if o1[0].Var.Root != "lAoS" || o2[0].Var.Root != "lS2" {
		t.Errorf("multi-rule roots = %s, %s", o1[0].Var.Root, o2[0].Var.Root)
	}
}

func TestDuplicateRuleRoots(t *testing.T) {
	r := mustRule(t, workloads.RuleTrans1)
	if _, err := New(Options{}, r, r); err == nil {
		t.Error("duplicate roots accepted")
	}
}

func TestNoRules(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("empty engine accepted")
	}
}

func TestShadowAlignOption(t *testing.T) {
	eng, err := New(Options{ShadowAlign: 4096}, mustRule(t, workloads.RuleTrans1))
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := trace.ParseRecord("S 7ff000393 4 main LS 0 1 lSoA.mX[0]")
	if _, err := eng.Transform(&rec); err != nil {
		t.Fatal(err)
	}
	base, ok := eng.OutBase("lAoS")
	if !ok || base%4096 != 0 {
		t.Errorf("base %#x not 4096-aligned", base)
	}
}

func TestRunStreaming(t *testing.T) {
	res, err := tracer.Run(workloads.Trans1SoA, map[string]string{"LEN": "4"}, tracer.Options{PID: 11580})
	if err != nil {
		t.Fatal(err)
	}
	var in bytes.Buffer
	tw := trace.NewWriter(&in)
	if err := tw.WriteHeader(res.Header); err != nil {
		t.Fatal(err)
	}
	for i := range res.Records {
		if err := tw.Write(&res.Records[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	eng := mustEngine(t, mustRule(t, workloads.RuleTrans1ForLen(4)))
	var out bytes.Buffer
	if err := eng.Run(trace.NewReader(&in), trace.NewWriter(&out)); err != nil {
		t.Fatal(err)
	}
	h, recs, err := trace.ParseAll(out.String())
	if err != nil {
		t.Fatal(err)
	}
	if h.PID != 11580 {
		t.Errorf("header pid = %d", h.PID)
	}
	if len(recs) != len(res.Records) {
		t.Errorf("streamed %d records, want %d", len(recs), len(res.Records))
	}
	if !strings.Contains(out.String(), "lAoS[0].mX") {
		t.Error("streamed output not transformed")
	}
}

// TestGlobalInVarPoolAbove: for globals, the outline pool is placed above
// the structure (data segment grows up).
func TestGlobalInVarPoolAbove(t *testing.T) {
	rule := mustRule(t, `
in:
struct mR { double y; int z; };
struct gS1 { int a; struct mR; }[4];
out:
struct pool { double y; int z; }[4];
struct gS2 { int a; * mR:pool; }[4];
`)
	eng := mustEngine(t, rule)
	rec, _ := trace.ParseRecord("S 000601040 4 main GS gS1[0].a")
	if _, err := eng.Transform(&rec); err != nil {
		t.Fatal(err)
	}
	s2, _ := eng.OutBase("gS2")
	pool, ok := eng.OutBase("pool")
	if !ok || pool <= s2 {
		t.Errorf("global pool at %#x not above gS2 at %#x", pool, s2)
	}
}

// Property-ish exhaustive check: every SoA element maps to the unique AoS
// address and no two distinct accesses collide.
func TestRemapBijective(t *testing.T) {
	eng := mustEngine(t, mustRule(t, workloads.RuleTrans1))
	seen := map[uint64]string{}
	for i := 0; i < 16; i++ {
		for _, f := range []string{"mX", "mY"} {
			line := "S 7ff000390 4 main LS 0 1 lSoA." + f + "[" + itoa(i) + "]"
			rec, err := trace.ParseRecord(line)
			if err != nil {
				t.Fatal(err)
			}
			// Give each element its true address: mX at +4i, mY at +64+8i.
			if f == "mX" {
				rec.Addr = 0x7ff000390 + uint64(4*i)
				rec.Size = 4
			} else {
				rec.Addr = 0x7ff000390 + 64 + uint64(8*i)
				rec.Size = 8
			}
			out, err := eng.Transform(&rec)
			if err != nil {
				t.Fatal(err)
			}
			got := out[len(out)-1]
			if prev, dup := seen[got.Addr]; dup {
				t.Fatalf("address collision: %s and %s at %#x", prev, got.Var.String(), got.Addr)
			}
			seen[got.Addr] = got.Var.String()
		}
	}
	if len(seen) != 32 {
		t.Errorf("mapped %d distinct addresses", len(seen))
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// TestRunHeaderlessStaysHeaderless: a trace without a START line must not
// gain a synthetic zero header in the transformed output, or byte-level
// round trips through tracediff break.
func TestRunHeaderlessStaysHeaderless(t *testing.T) {
	in := strings.NewReader("S 7ff000393 4 main LS 0 1 lSoA.mX[0]\nL 7ff000393 4 main LS 0 1 lSoA.mX[0]\n")
	eng := mustEngine(t, mustRule(t, workloads.RuleTrans1ForLen(4)))
	var out bytes.Buffer
	if err := eng.Run(trace.NewReader(in), trace.NewWriter(&out)); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(out.String(), "START") {
		t.Errorf("headerless input gained a header:\n%s", out.String())
	}
	if n := len(strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")); n != 2 {
		t.Errorf("output has %d lines, want 2", n)
	}
}
