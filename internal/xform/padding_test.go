package xform

import (
	"testing"

	"tracedst/internal/cache"
	"tracedst/internal/dinero"
	"tracedst/internal/trace"
	"tracedst/internal/tracer"
)

// Array padding is expressible as a stride rule with formula i + i/K: every
// K elements an extra slot is skipped, shifting subsequent elements by one.
// The classic use case is a power-of-two row stride that makes a column
// walk hit a single cache set; padding spreads the column across sets.
const paddingProgram = `
int m[4096];

int main(void) {
	int sum;
	GLEIPNIR_START_INSTRUMENTATION;
	sum = 0;
	for (int r = 0; r < 16; r++) {         // walk one column of a 64x64 matrix
		for (int c = 0; c < 64; c++) {
			sum += m[c*64 + r];
		}
	}
	GLEIPNIR_STOP_INSTRUMENTATION;
	return sum;
}
`

// Pad one cache line (8 ints) per 64-element row, so each row starts one
// set later: element index i moves to i + (i/64)*8.
const paddingRule = `
in:
int m[4096]:mPadded;
out:
int mPadded[4600 (i + (i/64)*8)];
`

func TestArrayPaddingViaStrideRule(t *testing.T) {
	res, err := tracer.Run(paddingProgram, nil, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := mustEngine(t, mustRule(t, paddingRule))
	padded, err := eng.TransformAll(res.Records)
	if err != nil {
		t.Fatal(err)
	}

	// Column walk on an 8 KB direct-mapped cache (256 sets of 32 B). The
	// unpadded row stride of 64 ints = 8 blocks folds the 64 column blocks
	// onto 32 sets (two blocks per set, one way): every walk ping-pongs and
	// essentially all 1024 accesses miss. Padded by one line per row the
	// stride becomes 9 blocks, coprime to 256: the column spreads over 64
	// distinct sets and row-to-row reuse turns into hits.
	cfg := cache.Config{Size: 8192, BlockSize: 32, Assoc: 1}
	miss := func(recs []trace.Record, root string) int64 {
		sim, err := dinero.New(dinero.Options{L1: cfg})
		if err != nil {
			t.Fatal(err)
		}
		sim.Process(recs)
		return sim.Var(root).Misses
	}
	before := miss(res.Records, "m")
	after := miss(padded, "mPadded")
	// Unpadded: near-total thrash.
	if before < 1000 {
		t.Errorf("unpadded column-walk misses = %d, want ~1024 (thrash)", before)
	}
	// Padded: only the cold fills remain — two distinct block groups
	// (r 0-7 and r 8-15) × 64 blocks = 128 compulsory misses.
	if after != 128 {
		t.Errorf("padded misses = %d, want 128 (cold only)", after)
	}

	// The padded layout must spread the column across 64 distinct sets.
	sim, err := dinero.New(dinero.Options{L1: cfg})
	if err != nil {
		t.Fatal(err)
	}
	sim.Process(padded)
	occupied := 0
	for _, ps := range sim.Var("mPadded").PerSet {
		if ps.Hits+ps.Misses > 0 {
			occupied++
		}
	}
	if occupied < 64 {
		t.Errorf("padded column walk occupies %d sets, want ≥ 64", occupied)
	}

	// Index mapping sanity: addresses must follow the formula exactly.
	for i := range padded {
		if padded[i].HasSym && padded[i].Var.Root == "mPadded" {
			idx := padded[i].Var.Path[0].Index
			base, _ := eng.OutBase("mPadded")
			if padded[i].Addr != base+uint64(idx*4) {
				t.Fatalf("address inconsistent at index %d", idx)
			}
		}
	}
}
