package xform_test

import (
	"fmt"

	"tracedst/internal/rules"
	"tracedst/internal/trace"
	"tracedst/internal/xform"
)

// Example demonstrates rewriting a single trace line under the paper's
// Listing 5 rule: the SoA access is renamed, relocated and re-sized for the
// AoS layout.
func Example() {
	rule, err := rules.Parse(`
in:
struct lSoA { int mX[4]; double mY[4]; };
out:
struct lAoS { int mX; double mY; }[4];
`)
	if err != nil {
		panic(err)
	}
	eng, err := xform.New(xform.Options{}, rule)
	if err != nil {
		panic(err)
	}
	rec, err := trace.ParseRecord("S 7ff000390 4 main LS 0 1 lSoA.mX[2]")
	if err != nil {
		panic(err)
	}
	out, err := eng.Transform(&rec)
	if err != nil {
		panic(err)
	}
	fmt.Println(out[0].Var.String())
	// Output: lAoS[2].mX
}

// ExampleEngine_Transform shows the inserted indirection load of the
// outlining rule (Listing 8): one input record becomes two output records.
func ExampleEngine_Transform() {
	rule, err := rules.Parse(`
in:
struct mRarelyUsed { double mY; int mZ; };
struct lS1 { int mFrequentlyUsed; struct mRarelyUsed; }[4];
out:
struct pool { double mY; int mZ; }[4];
struct lS2 { int mFrequentlyUsed; * mRarelyUsed:pool; }[4];
`)
	if err != nil {
		panic(err)
	}
	eng, err := xform.New(xform.Options{}, rule)
	if err != nil {
		panic(err)
	}
	rec, err := trace.ParseRecord("S 7ff000300 8 main LS 0 1 lS1[1].mRarelyUsed.mY")
	if err != nil {
		panic(err)
	}
	out, err := eng.Transform(&rec)
	if err != nil {
		panic(err)
	}
	for _, r := range out {
		fmt.Println(r.Op.String(), r.Var.String())
	}
	// Output:
	// L lS2[1].mRarelyUsed
	// S pool[1].mY
}
