package xform

import (
	"flag"
	"os"
	"testing"

	"tracedst/internal/trace"
	"tracedst/internal/tracer"
	"tracedst/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestTrans1TransformedGolden pins the byte-exact transformed trace of the
// paper's transformation 1 (the right column of Figure 5): any change to
// base-address assignment, path mapping or record formatting shows up as a
// diff. Regenerate deliberately with:
//
//	go test ./internal/xform -run Golden -update
func TestTrans1TransformedGolden(t *testing.T) {
	res, err := tracer.Run(workloads.Trans1SoA, map[string]string{"LEN": "16"}, tracer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng := mustEngine(t, mustRule(t, workloads.RuleTrans1))
	out, err := eng.TransformAll(res.Records)
	if err != nil {
		t.Fatal(err)
	}
	got := trace.Format(res.Header, out)
	const path = "testdata/trans1_transformed.golden"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("transformed trace changed; run with -update if intentional.\n got:\n%s", got)
	}
}
