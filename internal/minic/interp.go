package minic

import (
	"context"
	"errors"
	"fmt"

	"tracedst/internal/ctype"
	"tracedst/internal/memmodel"
	"tracedst/internal/symtab"
)

// AccessOp is the kind of memory event the interpreter reports: 'L' load,
// 'S' store, 'M' read-modify-write (matching Gleipnir's codes).
type AccessOp byte

// Access operations.
const (
	OpLoad   AccessOp = 'L'
	OpStore  AccessOp = 'S'
	OpModify AccessOp = 'M'
)

// Listener observes the interpreter's memory behaviour. fn is the function
// executing the access and depth its 0-based call depth — together with the
// interpreter's symbol table this is everything Gleipnir's trace line needs.
type Listener interface {
	Access(op AccessOp, addr uint64, size int64, fn string, depth int)
	// Instrument reports GLEIPNIR_START/STOP_INSTRUMENTATION markers.
	Instrument(on bool)
}

// nopListener discards all events.
type nopListener struct{}

func (nopListener) Access(AccessOp, uint64, int64, string, int) {}
func (nopListener) Instrument(bool)                             {}

// DefaultStepLimit bounds the number of executed statements to keep runaway
// programs from hanging the simulator.
const DefaultStepLimit = 100_000_000

// ErrBudgetExceeded is the sentinel matched by errors.Is when a program
// runs past its step budget. The concrete error is a *BudgetError carrying
// the limit.
var ErrBudgetExceeded = errors.New("step budget exceeded")

// BudgetError reports a program that executed more statements than its
// budget allows — the typed form of "this workload is runaway", so batch
// runners can report it and keep going instead of hanging.
type BudgetError struct {
	// Limit is the step budget that was exhausted.
	Limit int64
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("minic: step budget %d exceeded (infinite loop?)", e.Limit)
}

// Is matches ErrBudgetExceeded.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// ctxCheckMask sets how often the interpreter polls its context: every
// (mask+1) steps, cheap enough to hide in the statement dispatch cost.
const ctxCheckMask = 1023

// Interp executes a parsed Program against a fresh address space, reporting
// every data access to the Listener.
type Interp struct {
	prog  *Program
	Space *memmodel.AddressSpace
	Syms  *symtab.Table

	lis       Listener
	StepLimit int64
	steps     int64
	ctx       context.Context

	fnStack []string
	// dedup, when non-nil, suppresses duplicate load events for the same
	// address within a single lvalue address computation (mirroring the
	// register reuse visible in the paper's traces, e.g. one load of i for
	// glStructArray[i].myArray[i]).
	dedup map[uint64]bool

	heapSeq int
	// zzqAddr is the hidden _zzq_result local used by the GLEIPNIR macros.
	zzqAddr map[string]uint64
	// globalsByName resolves identifier references to global symbols.
	globalsByName map[string]*symtab.Symbol
}

// NewInterp returns an interpreter for prog reporting to lis (which may be
// nil to discard events).
func NewInterp(prog *Program, lis Listener) *Interp {
	if lis == nil {
		lis = nopListener{}
	}
	return &Interp{
		prog:          prog,
		Space:         memmodel.NewAddressSpace(),
		Syms:          symtab.New(),
		lis:           lis,
		StepLimit:     DefaultStepLimit,
		zzqAddr:       map[string]uint64{},
		globalsByName: map[string]*symtab.Symbol{},
	}
}

// Run lays out the globals and executes main. The returned value is main's
// return value (0 if main returns void or falls off the end).
func (in *Interp) Run() (int64, error) {
	for _, g := range in.prog.Globals {
		addr, err := in.Space.Data.Alloc(g.Type.Size(), g.Type.Align())
		if err != nil {
			return 0, err
		}
		sym, err := in.Syms.AddGlobal(g.Name, addr, g.Type)
		if err != nil {
			return 0, err
		}
		in.globalsByName[g.Name] = sym
		if g.Init != nil {
			// Static initialisation happens before execution: no events.
			n, err := constEval(g.Init)
			if err != nil {
				return 0, fmt.Errorf("minic: global %s: non-constant initialiser: %v", g.Name, err)
			}
			in.writeScalar(addr, g.Type, Value{T: ctype.Long, I: n})
		}
		if g.InitList != nil {
			arr := g.Type.(*ctype.Array)
			for i, e := range g.InitList {
				n, err := constEval(e)
				if err != nil {
					return 0, fmt.Errorf("minic: global %s[%d]: non-constant initialiser: %v", g.Name, i, err)
				}
				in.writeScalar(addr+uint64(int64(i)*arr.Elem.Size()), arr.Elem, Value{T: ctype.Long, I: n})
			}
		}
	}
	mainFn := in.prog.Funcs["main"]
	// Synthesize argc = 0, argv = NULL (and zero values for any further
	// parameters) for the standard main signatures.
	args := make([]Value, len(mainFn.Params))
	for i, prm := range mainFn.Params {
		args[i] = Value{T: prm.Type}
	}
	v, err := in.call(mainFn, args)
	if err != nil {
		return 0, err
	}
	return v.Int(), nil
}

// Steps returns the number of statements executed.
func (in *Interp) Steps() int64 { return in.steps }

// SetContext attaches a cancellation context to the interpreter: the step
// loop polls it every few hundred statements, so a deadline or SIGINT
// interrupts even a program that never terminates on its own. A nil ctx
// clears the check.
func (in *Interp) SetContext(ctx context.Context) { in.ctx = ctx }

func (in *Interp) curFn() string {
	if len(in.fnStack) == 0 {
		return "_start"
	}
	return in.fnStack[len(in.fnStack)-1]
}

func (in *Interp) depth() int { return len(in.fnStack) - 1 }

// access emits a memory event, honouring lvalue-computation deduplication
// for loads.
func (in *Interp) access(op AccessOp, addr uint64, size int64) {
	if op == OpLoad && in.dedup != nil {
		if in.dedup[addr] {
			return
		}
		in.dedup[addr] = true
	}
	in.lis.Access(op, addr, size, in.curFn(), in.depth())
}

// ---------------------------------------------------------------------------
// function calls

type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

// execState carries the per-invocation environment.
type execState struct {
	frame  *memmodel.Frame
	scopes []blockScope
	ret    Value
}

// blockScope is one C block scope: its name bindings plus the frame mark
// taken at entry, so exiting the block releases its locals' stack space
// (loops re-declaring block locals reuse the same slots, as compiled code
// does).
type blockScope struct {
	vars map[string]*symtab.Symbol
	mark uint64
}

func (st *execState) pushScope() {
	st.scopes = append(st.scopes, blockScope{
		vars: map[string]*symtab.Symbol{},
		mark: st.frame.Mark(),
	})
}

func (st *execState) popScope() {
	sc := st.scopes[len(st.scopes)-1]
	st.frame.Release(sc.mark)
	st.scopes = st.scopes[:len(st.scopes)-1]
}

func (st *execState) define(name string, sym *symtab.Symbol) {
	st.scopes[len(st.scopes)-1].vars[name] = sym
}

func (st *execState) lookup(name string) (*symtab.Symbol, bool) {
	for i := len(st.scopes) - 1; i >= 0; i-- {
		if s, ok := st.scopes[i].vars[name]; ok {
			return s, true
		}
	}
	return nil, false
}

// call invokes fd with already-evaluated argument values, emitting the call
// protocol the paper's traces show: a return-address push attributed to the
// caller, a frame-pointer save attributed to the callee, then one store per
// parameter.
func (in *Interp) call(fd *FuncDecl, args []Value) (Value, error) {
	if len(args) != len(fd.Params) {
		return Value{}, fmt.Errorf("minic: %s called with %d args, want %d", fd.Name, len(args), len(fd.Params))
	}
	frame := in.Space.Stack.Push(fd.Name)

	if len(in.fnStack) > 0 {
		// Return-address push, attributed to the caller (paper listing 2
		// line 18: "S 7ff000050 8 main").
		ra, err := frame.Alloc(8, 8)
		if err != nil {
			return Value{}, err
		}
		in.access(OpStore, ra, 8)
	}

	in.fnStack = append(in.fnStack, fd.Name)
	in.Syms.PushFrame(fd.Name)
	st := &execState{frame: frame}
	st.pushScope()

	if len(in.fnStack) > 1 {
		// Saved frame pointer, attributed to the callee (line 19:
		// "S 7ff000048 8 foo").
		bp, err := frame.Alloc(8, 8)
		if err != nil {
			return Value{}, err
		}
		in.access(OpStore, bp, 8)
	}

	for i, prm := range fd.Params {
		addr, err := frame.Alloc(prm.Type.Size(), prm.Type.Align())
		if err != nil {
			return Value{}, err
		}
		sym, err := in.Syms.AddLocal(prm.Name, addr, prm.Type)
		if err != nil {
			return Value{}, err
		}
		st.define(prm.Name, sym)
		v, err := convert(args[i], prm.Type)
		if err != nil {
			return Value{}, err
		}
		in.writeScalar(addr, prm.Type, v)
		in.access(OpStore, addr, prm.Type.Size())
	}

	c, err := in.execBlock(st, fd.Body)
	in.Syms.PopFrame()
	in.Space.Stack.Pop()
	in.fnStack = in.fnStack[:len(in.fnStack)-1]
	if err != nil {
		return Value{}, err
	}
	if c == ctrlReturn {
		return st.ret, nil
	}
	return IntValue(0), nil
}

// ---------------------------------------------------------------------------
// statements

func (in *Interp) step() error {
	in.steps++
	if in.steps > in.StepLimit {
		return &BudgetError{Limit: in.StepLimit}
	}
	if in.ctx != nil && in.steps&ctxCheckMask == 0 {
		if err := in.ctx.Err(); err != nil {
			return fmt.Errorf("minic: interrupted after %d steps: %w", in.steps, err)
		}
	}
	return nil
}

func (in *Interp) execBlock(st *execState, b *Block) (ctrl, error) {
	st.pushScope()
	defer st.popScope()
	for _, s := range b.Stmts {
		c, err := in.execStmt(st, s)
		if err != nil || c != ctrlNone {
			return c, err
		}
	}
	return ctrlNone, nil
}

func (in *Interp) execStmt(st *execState, s Stmt) (ctrl, error) {
	if err := in.step(); err != nil {
		return ctrlNone, err
	}
	switch n := s.(type) {
	case *Block:
		return in.execBlock(st, n)
	case *DeclStmt:
		for _, d := range n.Decls {
			if err := in.declareLocal(st, d); err != nil {
				return ctrlNone, err
			}
		}
		return ctrlNone, nil
	case *ExprStmt:
		_, err := in.evalExpr(st, n.X)
		return ctrlNone, err
	case *Gleipnir:
		return ctrlNone, in.execGleipnir(st, n.On)
	case *Return:
		if n.X != nil {
			v, err := in.evalExpr(st, n.X)
			if err != nil {
				return ctrlNone, err
			}
			st.ret = v
		}
		return ctrlReturn, nil
	case *Break:
		return ctrlBreak, nil
	case *Continue:
		return ctrlContinue, nil
	case *If:
		cond, err := in.evalExpr(st, n.Cond)
		if err != nil {
			return ctrlNone, err
		}
		if cond.Bool() {
			return in.execStmt(st, n.Then)
		}
		if n.Else != nil {
			return in.execStmt(st, n.Else)
		}
		return ctrlNone, nil
	case *Switch:
		cond, err := in.evalExpr(st, n.Cond)
		if err != nil {
			return ctrlNone, err
		}
		v := cond.Int()
		start := -1
		for i, cs := range n.Cases {
			for _, cv := range cs.Vals {
				if cv == v {
					start = i
					break
				}
			}
			if start >= 0 {
				break
			}
		}
		if start < 0 {
			for i, cs := range n.Cases {
				if cs.Default {
					start = i
					break
				}
			}
		}
		if start < 0 {
			return ctrlNone, nil
		}
		// Fall through successive arms until a break.
		for i := start; i < len(n.Cases); i++ {
			for _, s := range n.Cases[i].Body {
				c, err := in.execStmt(st, s)
				if err != nil {
					return ctrlNone, err
				}
				switch c {
				case ctrlBreak:
					return ctrlNone, nil
				case ctrlReturn, ctrlContinue:
					return c, nil
				}
			}
		}
		return ctrlNone, nil
	case *While:
		for {
			if err := in.step(); err != nil {
				return ctrlNone, err
			}
			cond, err := in.evalExpr(st, n.Cond)
			if err != nil {
				return ctrlNone, err
			}
			if !cond.Bool() {
				return ctrlNone, nil
			}
			c, err := in.execStmt(st, n.Body)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if c == ctrlReturn {
				return c, nil
			}
		}
	case *DoWhile:
		for {
			if err := in.step(); err != nil {
				return ctrlNone, err
			}
			c, err := in.execStmt(st, n.Body)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if c == ctrlReturn {
				return c, nil
			}
			cond, err := in.evalExpr(st, n.Cond)
			if err != nil {
				return ctrlNone, err
			}
			if !cond.Bool() {
				return ctrlNone, nil
			}
		}
	case *For:
		st.pushScope()
		defer st.popScope()
		if n.Init != nil {
			if c, err := in.execStmt(st, n.Init); err != nil || c != ctrlNone {
				return c, err
			}
		}
		for {
			if err := in.step(); err != nil {
				return ctrlNone, err
			}
			if n.Cond != nil {
				cond, err := in.evalExpr(st, n.Cond)
				if err != nil {
					return ctrlNone, err
				}
				if !cond.Bool() {
					return ctrlNone, nil
				}
			}
			c, err := in.execStmt(st, n.Body)
			if err != nil {
				return ctrlNone, err
			}
			if c == ctrlReturn {
				return c, nil
			}
			if c == ctrlBreak {
				return ctrlNone, nil
			}
			if n.Post != nil {
				if _, err := in.evalExpr(st, n.Post); err != nil {
					return ctrlNone, err
				}
			}
		}
	}
	return ctrlNone, fmt.Errorf("minic: unhandled statement %T", s)
}

// declareLocal allocates, registers and (optionally) initialises one local.
func (in *Interp) declareLocal(st *execState, d VarDecl) error {
	addr, err := st.frame.Alloc(d.Type.Size(), d.Type.Align())
	if err != nil {
		return err
	}
	sym, err := in.Syms.AddLocal(d.Name, addr, d.Type)
	if err != nil {
		return err
	}
	st.define(d.Name, sym)
	if d.Init != nil {
		v, err := in.evalExpr(st, d.Init)
		if err != nil {
			return err
		}
		return in.storeTo(lvalue{addr: addr, t: d.Type}, v)
	}
	if d.InitList != nil {
		// Element-wise stores, as the compiled initialisation performs.
		arr := d.Type.(*ctype.Array)
		for i, e := range d.InitList {
			v, err := in.evalExpr(st, e)
			if err != nil {
				return err
			}
			lv := lvalue{addr: addr + uint64(int64(i)*arr.Elem.Size()), t: arr.Elem}
			if err := in.storeTo(lv, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// execGleipnir implements the instrumentation markers. START enables
// tracing and then, like the real Valgrind client request, touches the
// hidden _zzq_result slot (a symbolised store followed by an unannotated
// load — paper listing 2 lines 2-3).
func (in *Interp) execGleipnir(st *execState, on bool) error {
	if on {
		in.lis.Instrument(true)
		fn := in.curFn()
		addr, ok := in.zzqAddr[fn]
		if !ok {
			var err error
			addr, err = st.frame.Alloc(8, 8)
			if err != nil {
				return err
			}
			sym, err := in.Syms.AddLocal("_zzq_result", addr, ctype.ULong)
			if err != nil {
				return err
			}
			st.define("_zzq_result", sym)
			in.zzqAddr[fn] = addr
		}
		in.access(OpStore, addr, 8)
		// The readback is performed by glue code with no debug info; the
		// tracer will find the _zzq_result symbol, but Gleipnir prints it
		// bare. We emit it as a plain load; annotation is the tracer's call.
		in.access(OpLoad, addr, 8)
		return nil
	}
	in.lis.Instrument(false)
	return nil
}
