package minic

import (
	"fmt"

	"tracedst/internal/ctype"
	"tracedst/internal/symtab"
)

// Value is a miniC runtime value. Integers and pointers live in I, floats in
// F; T is the static C type.
type Value struct {
	T ctype.Type
	I int64
	F float64
	// heapSym tracks the block a freshly returned malloc pointer refers to,
	// so that assigning it to a typed pointer can retype the block for
	// debug-info purposes.
	heapSym *symtab.Symbol
}

// IntValue returns an int-typed value.
func IntValue(v int64) Value { return Value{T: ctype.Int, I: v} }

func isFloatType(t ctype.Type) bool {
	p, ok := t.(*ctype.Primitive)
	return ok && p.Float
}

func isIntType(t ctype.Type) bool {
	p, ok := t.(*ctype.Primitive)
	return ok && !p.Float
}

func isPointerType(t ctype.Type) bool {
	_, ok := t.(*ctype.Pointer)
	return ok
}

// Bool reports C truthiness.
func (v Value) Bool() bool {
	if isFloatType(v.T) {
		return v.F != 0
	}
	return v.I != 0
}

// Float returns the value as float64 regardless of representation.
func (v Value) Float() float64 {
	if isFloatType(v.T) {
		return v.F
	}
	return float64(v.I)
}

// Int returns the value as int64, truncating floats as C does.
func (v Value) Int() int64 {
	if isFloatType(v.T) {
		return int64(v.F)
	}
	return v.I
}

// convert implements C conversion rules between scalar types.
func convert(v Value, to ctype.Type) (Value, error) {
	switch {
	case to == nil:
		return Value{}, fmt.Errorf("minic: conversion to void")
	case isFloatType(to):
		return Value{T: to, F: v.Float()}, nil
	case isIntType(to):
		n := v.Int()
		// Truncate to the destination width with sign/zero extension.
		p := to.(*ctype.Primitive)
		if p.Bytes < 8 {
			shift := uint(64 - p.Bytes*8)
			if p.Signed {
				n = n << shift >> shift
			} else {
				n = int64(uint64(n) << shift >> shift)
			}
		}
		return Value{T: to, I: n}, nil
	case isPointerType(to):
		return Value{T: to, I: v.Int(), heapSym: v.heapSym}, nil
	default:
		return Value{}, fmt.Errorf("minic: cannot convert %s to %s", v.T, to)
	}
}

// usualArith performs the usual arithmetic conversions for two operands and
// reports whether the computation is floating point.
func usualArith(a, b Value) bool { return isFloatType(a.T) || isFloatType(b.T) }

// lvalue is a resolved memory place.
type lvalue struct {
	addr uint64
	t    ctype.Type
}
