package minic

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// genExpr builds a random integer expression as C source together with its
// ground-truth value computed in Go with C semantics (truncating division).
// Division/modulo operands are guarded against zero and the value range is
// kept small to avoid overflow disagreements.
func genExpr(r *rand.Rand, depth int) (string, int64) {
	if depth == 0 || r.Intn(3) == 0 {
		v := int64(r.Intn(41) - 20)
		if v < 0 {
			return fmt.Sprintf("(%d)", v), v
		}
		return fmt.Sprintf("%d", v), v
	}
	ls, lv := genExpr(r, depth-1)
	rs, rv := genExpr(r, depth-1)
	switch r.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", ls, rs), lv + rv
	case 1:
		return fmt.Sprintf("(%s - %s)", ls, rs), lv - rv
	case 2:
		return fmt.Sprintf("(%s * %s)", ls, rs), lv * rv
	case 3:
		if rv == 0 {
			return fmt.Sprintf("(%s + %s)", ls, rs), lv + rv
		}
		return fmt.Sprintf("(%s / %s)", ls, rs), lv / rv
	case 4:
		if rv == 0 {
			return fmt.Sprintf("(%s - %s)", ls, rs), lv - rv
		}
		return fmt.Sprintf("(%s %% %s)", ls, rs), lv % rv
	default:
		// Relational, producing 0/1.
		ops := []string{"<", ">", "<=", ">=", "==", "!="}
		op := ops[r.Intn(len(ops))]
		var b bool
		switch op {
		case "<":
			b = lv < rv
		case ">":
			b = lv > rv
		case "<=":
			b = lv <= rv
		case ">=":
			b = lv >= rv
		case "==":
			b = lv == rv
		case "!=":
			b = lv != rv
		}
		v := int64(0)
		if b {
			v = 1
		}
		return fmt.Sprintf("(%s %s %s)", ls, op, rs), v
	}
}

// TestExpressionEvaluationDifferential compares the interpreter against Go
// on randomly generated constant expressions, both via direct return and
// via a round trip through typed memory.
func TestExpressionEvaluationDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(12345))
	for i := 0; i < 200; i++ {
		src, want := genExpr(r, 4)
		// Return values are C ints; keep the ground truth in range.
		want32 := int64(int32(want))
		prog := fmt.Sprintf(`int main(void) { long v; v = %s; return (int) v; }`, src)
		p, err := Parse(prog, nil)
		if err != nil {
			t.Fatalf("expr %s: %v", src, err)
		}
		got, err := NewInterp(p, nil).Run()
		if err != nil {
			t.Fatalf("expr %s: %v", src, err)
		}
		if got != want32 {
			t.Fatalf("expr %s = %d, want %d", src, got, want32)
		}
	}
}

// TestLoopDifferential compares loop-accumulated sums against Go.
func TestLoopDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(999))
	for i := 0; i < 30; i++ {
		n := r.Intn(20) + 1
		step := r.Intn(3) + 1
		src := fmt.Sprintf(`int main(void) {
	int s;
	s = 0;
	for (int i = 0; i < %d; i += %d) s += i*i;
	return s;
}`, n, step)
		var want int64
		for j := 0; j < n; j += step {
			want += int64(j * j)
		}
		p, err := Parse(src, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewInterp(p, nil).Run()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("n=%d step=%d: got %d want %d", n, step, got, want)
		}
	}
}

// TestArrayShuffleDifferential writes a pseudo-random permutation through
// the interpreter's memory and reads it back.
func TestArrayShuffleDifferential(t *testing.T) {
	const n = 64
	src := fmt.Sprintf(`int main(void) {
	int a[%d];
	int sum;
	for (int i = 0; i < %d; i++) a[i] = (i*37+11) %% %d;
	sum = 0;
	for (int i = 0; i < %d; i++) sum += a[i] * i;
	return sum %% 65536;
}`, n, n, n, n)
	var want int64
	vals := make([]int64, n)
	for i := 0; i < n; i++ {
		vals[i] = int64((i*37 + 11) % n)
	}
	for i := 0; i < n; i++ {
		want += vals[i] * int64(i)
	}
	want %= 65536
	p, err := Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewInterp(p, nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

// TestRecursionDifferential checks the call stack with recursive factorial
// and Fibonacci.
func TestRecursionDifferential(t *testing.T) {
	src := `
int fact(int n) { if (n <= 1) return 1; return n * fact(n-1); }
int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
int main(void) { return fact(6) + fib(10); }`
	p, err := Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewInterp(p, nil).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 720+55 {
		t.Fatalf("got %d, want 775", got)
	}
}

// TestDeepRecursionOverflows verifies stack exhaustion is an error, not a
// crash.
func TestDeepRecursionOverflows(t *testing.T) {
	src := `
int burn(int n) { int pad[512]; pad[0] = n; return burn(n+1) + pad[0]; }
int main(void) { return burn(0); }`
	p, err := Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInterp(p, nil).Run(); err == nil {
		t.Fatal("unbounded recursion did not fail")
	} else if !strings.Contains(err.Error(), "stack overflow") && !strings.Contains(err.Error(), "step budget") {
		t.Fatalf("unexpected error: %v", err)
	}
}
