package minic

import (
	"fmt"

	"tracedst/internal/ctype"
)

// lookupVar resolves a name to its live symbol: innermost scope first, then
// globals.
func (in *Interp) lookupVar(st *execState, name string) (lvalue, error) {
	if sym, ok := st.lookup(name); ok {
		return lvalue{addr: sym.Addr, t: sym.Type}, nil
	}
	if sym, ok := in.globalsByName[name]; ok {
		return lvalue{addr: sym.Addr, t: sym.Type}, nil
	}
	return lvalue{}, fmt.Errorf("minic: undefined variable %q in %s", name, in.curFn())
}

// readScalar reads a scalar (or pointer) value from memory without emitting
// an event.
func (in *Interp) readScalar(addr uint64, t ctype.Type) (Value, error) {
	switch tt := t.(type) {
	case *ctype.Primitive:
		if tt.Float {
			return Value{T: t, F: in.Space.Mem.ReadFloat(addr, int(tt.Bytes))}, nil
		}
		if tt.Signed {
			return Value{T: t, I: in.Space.Mem.ReadInt(addr, int(tt.Bytes))}, nil
		}
		return Value{T: t, I: int64(in.Space.Mem.ReadUint(addr, int(tt.Bytes)))}, nil
	case *ctype.Pointer:
		return Value{T: t, I: int64(in.Space.Mem.ReadUint(addr, 8))}, nil
	}
	return Value{}, fmt.Errorf("minic: cannot load aggregate %s as a value", t)
}

// writeScalar writes a scalar value to memory without emitting an event.
func (in *Interp) writeScalar(addr uint64, t ctype.Type, v Value) {
	switch tt := t.(type) {
	case *ctype.Primitive:
		if tt.Float {
			in.Space.Mem.WriteFloat(addr, int(tt.Bytes), v.Float())
		} else {
			in.Space.Mem.WriteInt(addr, int(tt.Bytes), v.Int())
		}
		return
	case *ctype.Pointer:
		in.Space.Mem.WriteUint(addr, 8, uint64(v.Int()))
		return
	}
	panic(fmt.Sprintf("minic: writeScalar of aggregate %s", t))
}

// loadFrom loads a scalar lvalue, emitting the L event.
func (in *Interp) loadFrom(lv lvalue) (Value, error) {
	v, err := in.readScalar(lv.addr, lv.t)
	if err != nil {
		return Value{}, err
	}
	in.access(OpLoad, lv.addr, lv.t.Size())
	return v, nil
}

// storeTo converts v to the lvalue's type, writes it, and emits the S event.
func (in *Interp) storeTo(lv lvalue, v Value) error {
	cv, err := convert(v, lv.t)
	if err != nil {
		return err
	}
	in.writeScalar(lv.addr, lv.t, cv)
	in.access(OpStore, lv.addr, lv.t.Size())
	// malloc-retyping: assigning a fresh heap pointer to a typed pointer
	// gives the block that element type for debug-info purposes.
	if v.heapSym != nil {
		if pt, ok := lv.t.(*ctype.Pointer); ok {
			if esz := pt.Elem.Size(); esz > 0 {
				n := v.heapSym.Type.Size() / esz
				if n > 0 {
					v.heapSym.Type = ctype.NewArray(pt.Elem, n)
				}
			}
		}
	}
	return nil
}

// evalLValue computes the address of an assignable expression. Loads
// performed along the way (subscript variables, pointer fields) emit events,
// deduplicated per outermost lvalue computation.
func (in *Interp) evalLValue(st *execState, e Expr) (lvalue, error) {
	outermost := in.dedup == nil
	if outermost {
		in.dedup = map[uint64]bool{}
		defer func() { in.dedup = nil }()
	}
	return in.lvalueInner(st, e)
}

func (in *Interp) lvalueInner(st *execState, e Expr) (lvalue, error) {
	switch n := e.(type) {
	case *Ident:
		return in.lookupVar(st, n.Name)
	case *Index:
		base, elem, err := in.indexBase(st, n.X)
		if err != nil {
			return lvalue{}, err
		}
		iv, err := in.evalExpr(st, n.I)
		if err != nil {
			return lvalue{}, err
		}
		return lvalue{addr: base + uint64(iv.Int()*elem.Size()), t: elem}, nil
	case *Member:
		if n.Arrow {
			pv, err := in.evalExpr(st, n.X)
			if err != nil {
				return lvalue{}, err
			}
			pt, ok := pv.T.(*ctype.Pointer)
			if !ok {
				return lvalue{}, fmt.Errorf("minic: -> applied to non-pointer %s", pv.T)
			}
			stc, ok := pt.Elem.(*ctype.Struct)
			if !ok {
				return lvalue{}, fmt.Errorf("minic: -> applied to pointer to non-struct %s", pt.Elem)
			}
			f, ok := stc.FieldByName(n.Name)
			if !ok {
				return lvalue{}, fmt.Errorf("minic: %s has no field %q", stc, n.Name)
			}
			return lvalue{addr: uint64(pv.Int()) + uint64(f.Offset), t: f.Type}, nil
		}
		lv, err := in.lvalueInner(st, n.X)
		if err != nil {
			return lvalue{}, err
		}
		stc, ok := lv.t.(*ctype.Struct)
		if !ok {
			return lvalue{}, fmt.Errorf("minic: . applied to non-struct %s", lv.t)
		}
		f, ok := stc.FieldByName(n.Name)
		if !ok {
			return lvalue{}, fmt.Errorf("minic: %s has no field %q", stc, n.Name)
		}
		return lvalue{addr: lv.addr + uint64(f.Offset), t: f.Type}, nil
	case *Unary:
		if n.Op == "*" && !n.Postfix {
			pv, err := in.evalExpr(st, n.X)
			if err != nil {
				return lvalue{}, err
			}
			pt, ok := pv.T.(*ctype.Pointer)
			if !ok {
				return lvalue{}, fmt.Errorf("minic: * applied to non-pointer %s", pv.T)
			}
			return lvalue{addr: uint64(pv.Int()), t: pt.Elem}, nil
		}
	}
	return lvalue{}, fmt.Errorf("minic: expression %T is not assignable", e)
}

// indexBase resolves the base of a subscript: arrays yield their storage
// address directly; pointers are loaded (with an L event) to fetch the base.
func (in *Interp) indexBase(st *execState, x Expr) (uint64, ctype.Type, error) {
	// Prefer treating x as a place so arrays do not decay prematurely.
	if lv, err := in.lvalueInner(st, x); err == nil {
		switch tt := lv.t.(type) {
		case *ctype.Array:
			return lv.addr, tt.Elem, nil
		case *ctype.Pointer:
			pv, err := in.loadFrom(lv)
			if err != nil {
				return 0, nil, err
			}
			return uint64(pv.Int()), tt.Elem, nil
		default:
			return 0, nil, fmt.Errorf("minic: subscript of non-array %s", lv.t)
		}
	}
	// Fall back to an rvalue pointer (e.g. (p+1)[2]).
	pv, err := in.evalExpr(st, x)
	if err != nil {
		return 0, nil, err
	}
	pt, ok := pv.T.(*ctype.Pointer)
	if !ok {
		return 0, nil, fmt.Errorf("minic: subscript of non-pointer %s", pv.T)
	}
	return uint64(pv.Int()), pt.Elem, nil
}

// evalExpr evaluates an expression for its value, emitting load events for
// every variable read, exactly as the compiled program would.
func (in *Interp) evalExpr(st *execState, e Expr) (Value, error) {
	switch n := e.(type) {
	case *IntLit:
		return IntValue(n.V), nil
	case *FloatLit:
		return Value{T: ctype.Double, F: n.V}, nil
	case *StrLit:
		return Value{}, fmt.Errorf("minic: string literals are not supported in expressions")
	case *Ident:
		lv, err := in.lookupVar(st, n.Name)
		if err != nil {
			return Value{}, err
		}
		return in.rvalue(lv)
	case *Index, *Member:
		lv, err := in.evalLValue(st, e)
		if err != nil {
			return Value{}, err
		}
		return in.rvalue(lv)
	case *Unary:
		return in.evalUnary(st, n)
	case *Binary:
		return in.evalBinary(st, n)
	case *Assign:
		return in.evalAssign(st, n)
	case *Cast:
		v, err := in.evalExpr(st, n.X)
		if err != nil {
			return Value{}, err
		}
		return convert(v, n.Type)
	case *SizeofType:
		return Value{T: ctype.ULong, I: n.Type.Size()}, nil
	case *SizeofExpr:
		t, err := in.typeOf(st, n.X)
		if err != nil {
			return Value{}, err
		}
		return Value{T: ctype.ULong, I: t.Size()}, nil
	case *Cond:
		c, err := in.evalExpr(st, n.C)
		if err != nil {
			return Value{}, err
		}
		if c.Bool() {
			return in.evalExpr(st, n.T)
		}
		return in.evalExpr(st, n.F)
	case *Call:
		return in.evalCall(st, n)
	case *Comma:
		var v Value
		for _, x := range n.List {
			var err error
			v, err = in.evalExpr(st, x)
			if err != nil {
				return Value{}, err
			}
		}
		return v, nil
	}
	return Value{}, fmt.Errorf("minic: unhandled expression %T", e)
}

// rvalue converts a place to a value: aggregates decay to pointers with no
// memory traffic; scalars are loaded.
func (in *Interp) rvalue(lv lvalue) (Value, error) {
	switch tt := lv.t.(type) {
	case *ctype.Array:
		return Value{T: ctype.NewPointer(tt.Elem), I: int64(lv.addr)}, nil
	case *ctype.Struct:
		return Value{}, fmt.Errorf("minic: struct values are not supported (use members of %s)", tt)
	}
	return in.loadFrom(lv)
}

// typeOf computes the static type of an expression without evaluating it
// (used by sizeof).
func (in *Interp) typeOf(st *execState, e Expr) (ctype.Type, error) {
	switch n := e.(type) {
	case *IntLit:
		return ctype.Int, nil
	case *FloatLit:
		return ctype.Double, nil
	case *Ident:
		lv, err := in.lookupVar(st, n.Name)
		if err != nil {
			return nil, err
		}
		return lv.t, nil
	case *Index:
		bt, err := in.typeOf(st, n.X)
		if err != nil {
			return nil, err
		}
		switch tt := bt.(type) {
		case *ctype.Array:
			return tt.Elem, nil
		case *ctype.Pointer:
			return tt.Elem, nil
		}
		return nil, fmt.Errorf("minic: sizeof subscript of %s", bt)
	case *Member:
		bt, err := in.typeOf(st, n.X)
		if err != nil {
			return nil, err
		}
		if n.Arrow {
			pt, ok := bt.(*ctype.Pointer)
			if !ok {
				return nil, fmt.Errorf("minic: -> on %s", bt)
			}
			bt = pt.Elem
		}
		stc, ok := bt.(*ctype.Struct)
		if !ok {
			return nil, fmt.Errorf("minic: member of %s", bt)
		}
		f, ok := stc.FieldByName(n.Name)
		if !ok {
			return nil, fmt.Errorf("minic: %s has no field %q", stc, n.Name)
		}
		return f.Type, nil
	case *Cast:
		return n.Type, nil
	case *Unary:
		if n.Op == "*" {
			bt, err := in.typeOf(st, n.X)
			if err != nil {
				return nil, err
			}
			pt, ok := bt.(*ctype.Pointer)
			if !ok {
				return nil, fmt.Errorf("minic: * on %s", bt)
			}
			return pt.Elem, nil
		}
		return in.typeOf(st, n.X)
	}
	return ctype.Int, nil
}

func (in *Interp) evalUnary(st *execState, n *Unary) (Value, error) {
	switch n.Op {
	case "-", "!", "~":
		v, err := in.evalExpr(st, n.X)
		if err != nil {
			return Value{}, err
		}
		switch n.Op {
		case "-":
			if isFloatType(v.T) {
				return Value{T: v.T, F: -v.F}, nil
			}
			return Value{T: v.T, I: -v.I}, nil
		case "!":
			if v.Bool() {
				return IntValue(0), nil
			}
			return IntValue(1), nil
		default: // "~"
			return Value{T: v.T, I: ^v.Int()}, nil
		}
	case "&":
		lv, err := in.evalLValue(st, n.X)
		if err != nil {
			return Value{}, err
		}
		t := lv.t
		if at, ok := t.(*ctype.Array); ok {
			t = at.Elem // &arr ≈ arr for our addressing purposes
		}
		return Value{T: ctype.NewPointer(t), I: int64(lv.addr)}, nil
	case "*":
		lv, err := in.evalLValue(st, n)
		if err != nil {
			return Value{}, err
		}
		return in.rvalue(lv)
	case "++", "--":
		// A read-modify-write: one M event, as in the paper's loop
		// increments ("M 7ff0001b8 4 main LV 0 1 i").
		lv, err := in.evalLValue(st, n.X)
		if err != nil {
			return Value{}, err
		}
		old, err := in.readScalar(lv.addr, lv.t)
		if err != nil {
			return Value{}, err
		}
		delta := int64(1)
		if n.Op == "--" {
			delta = -1
		}
		var nv Value
		switch {
		case isFloatType(lv.t):
			nv = Value{T: lv.t, F: old.F + float64(delta)}
		case isPointerType(lv.t):
			pt := lv.t.(*ctype.Pointer)
			nv = Value{T: lv.t, I: old.I + delta*pt.Elem.Size()}
		default:
			nv = Value{T: lv.t, I: old.I + delta}
		}
		cv, err := convert(nv, lv.t)
		if err != nil {
			return Value{}, err
		}
		in.writeScalar(lv.addr, lv.t, cv)
		in.access(OpModify, lv.addr, lv.t.Size())
		if n.Postfix {
			return old, nil
		}
		return cv, nil
	}
	return Value{}, fmt.Errorf("minic: unhandled unary %q", n.Op)
}

func (in *Interp) evalBinary(st *execState, n *Binary) (Value, error) {
	// Short-circuit logicals.
	if n.Op == "&&" || n.Op == "||" {
		x, err := in.evalExpr(st, n.X)
		if err != nil {
			return Value{}, err
		}
		if n.Op == "&&" && !x.Bool() {
			return IntValue(0), nil
		}
		if n.Op == "||" && x.Bool() {
			return IntValue(1), nil
		}
		y, err := in.evalExpr(st, n.Y)
		if err != nil {
			return Value{}, err
		}
		if y.Bool() {
			return IntValue(1), nil
		}
		return IntValue(0), nil
	}
	x, err := in.evalExpr(st, n.X)
	if err != nil {
		return Value{}, err
	}
	y, err := in.evalExpr(st, n.Y)
	if err != nil {
		return Value{}, err
	}
	return applyBinary(n.Op, x, y)
}

// applyBinary implements the arithmetic, relational and bitwise operators,
// including pointer arithmetic.
func applyBinary(op string, x, y Value) (Value, error) {
	// Pointer arithmetic.
	if xp, ok := x.T.(*ctype.Pointer); ok {
		switch op {
		case "+":
			return Value{T: x.T, I: x.I + y.Int()*xp.Elem.Size()}, nil
		case "-":
			if _, yIsPtr := y.T.(*ctype.Pointer); yIsPtr {
				return Value{T: ctype.Long, I: (x.I - y.I) / xp.Elem.Size()}, nil
			}
			return Value{T: x.T, I: x.I - y.Int()*xp.Elem.Size()}, nil
		case "==", "!=", "<", ">", "<=", ">=":
			return compare(op, float64(x.I), float64(y.Int())), nil
		}
		return Value{}, fmt.Errorf("minic: pointer %s not supported", op)
	}
	if yp, ok := y.T.(*ctype.Pointer); ok {
		if op == "+" {
			return Value{T: y.T, I: y.I + x.Int()*yp.Elem.Size()}, nil
		}
		if op == "==" || op == "!=" || op == "<" || op == ">" || op == "<=" || op == ">=" {
			return compare(op, float64(x.Int()), float64(y.I)), nil
		}
		return Value{}, fmt.Errorf("minic: int %s pointer not supported", op)
	}

	if usualArith(x, y) {
		a, b := x.Float(), y.Float()
		switch op {
		case "+":
			return Value{T: ctype.Double, F: a + b}, nil
		case "-":
			return Value{T: ctype.Double, F: a - b}, nil
		case "*":
			return Value{T: ctype.Double, F: a * b}, nil
		case "/":
			if b == 0 {
				return Value{}, fmt.Errorf("minic: floating division by zero")
			}
			return Value{T: ctype.Double, F: a / b}, nil
		case "==", "!=", "<", ">", "<=", ">=":
			return compare(op, a, b), nil
		}
		return Value{}, fmt.Errorf("minic: operator %s not defined on floats", op)
	}

	a, b := x.Int(), y.Int()
	switch op {
	case "+":
		return IntValue(a + b), nil
	case "-":
		return IntValue(a - b), nil
	case "*":
		return IntValue(a * b), nil
	case "/":
		if b == 0 {
			return Value{}, fmt.Errorf("minic: division by zero")
		}
		return IntValue(a / b), nil
	case "%":
		if b == 0 {
			return Value{}, fmt.Errorf("minic: modulo by zero")
		}
		return IntValue(a % b), nil
	case "<<":
		return IntValue(a << uint(b)), nil
	case ">>":
		return IntValue(a >> uint(b)), nil
	case "&":
		return IntValue(a & b), nil
	case "|":
		return IntValue(a | b), nil
	case "^":
		return IntValue(a ^ b), nil
	case "==", "!=", "<", ">", "<=", ">=":
		return compare(op, float64(a), float64(b)), nil
	}
	return Value{}, fmt.Errorf("minic: unhandled binary %q", op)
}

func compare(op string, a, b float64) Value {
	var r bool
	switch op {
	case "==":
		r = a == b
	case "!=":
		r = a != b
	case "<":
		r = a < b
	case ">":
		r = a > b
	case "<=":
		r = a <= b
	case ">=":
		r = a >= b
	}
	if r {
		return IntValue(1)
	}
	return IntValue(0)
}

// evalAssign implements simple and compound assignment. The evaluation
// order matches the paper's traces: the right-hand side is evaluated first
// (its loads appear first), then the target address is computed (subscript
// loads), then the store (or modify, for compound ops) is emitted.
func (in *Interp) evalAssign(st *execState, n *Assign) (Value, error) {
	rhs, err := in.evalExpr(st, n.RHS)
	if err != nil {
		return Value{}, err
	}
	lv, err := in.evalLValue(st, n.LHS)
	if err != nil {
		return Value{}, err
	}
	if n.Op == "=" {
		if err := in.storeTo(lv, rhs); err != nil {
			return Value{}, err
		}
		return rhs, nil
	}
	// Compound assignment: read-modify-write, one M event.
	old, err := in.readScalar(lv.addr, lv.t)
	if err != nil {
		return Value{}, err
	}
	nv, err := applyBinary(n.Op[:len(n.Op)-1], old, rhs)
	if err != nil {
		return Value{}, err
	}
	cv, err := convert(nv, lv.t)
	if err != nil {
		return Value{}, err
	}
	in.writeScalar(lv.addr, lv.t, cv)
	in.access(OpModify, lv.addr, lv.t.Size())
	return cv, nil
}

// evalCall dispatches builtin and user functions. Arguments are evaluated
// in the caller (emitting their loads) before the call protocol runs.
func (in *Interp) evalCall(st *execState, n *Call) (Value, error) {
	switch n.Name {
	case "malloc", "calloc":
		return in.evalMalloc(st, n)
	case "free":
		if len(n.Args) != 1 {
			return Value{}, fmt.Errorf("minic: free takes one argument")
		}
		pv, err := in.evalExpr(st, n.Args[0])
		if err != nil {
			return Value{}, err
		}
		if !in.Syms.RemoveHeap(uint64(pv.Int())) {
			return Value{}, fmt.Errorf("minic: free of unallocated pointer %#x", pv.Int())
		}
		return IntValue(0), nil
	}
	fd, ok := in.prog.Funcs[n.Name]
	if !ok {
		return Value{}, fmt.Errorf("minic: line %d: call to undefined function %q", n.Line, n.Name)
	}
	args := make([]Value, len(n.Args))
	for i, a := range n.Args {
		v, err := in.evalExpr(st, a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	return in.call(fd, args)
}

func (in *Interp) evalMalloc(st *execState, n *Call) (Value, error) {
	var size int64
	switch {
	case n.Name == "malloc" && len(n.Args) == 1:
		v, err := in.evalExpr(st, n.Args[0])
		if err != nil {
			return Value{}, err
		}
		size = v.Int()
	case n.Name == "calloc" && len(n.Args) == 2:
		a, err := in.evalExpr(st, n.Args[0])
		if err != nil {
			return Value{}, err
		}
		b, err := in.evalExpr(st, n.Args[1])
		if err != nil {
			return Value{}, err
		}
		size = a.Int() * b.Int()
	default:
		return Value{}, fmt.Errorf("minic: bad %s arity", n.Name)
	}
	if size <= 0 {
		return Value{}, fmt.Errorf("minic: %s of non-positive size %d", n.Name, size)
	}
	addr, err := in.Space.Heap.Alloc(size, 16)
	if err != nil {
		return Value{}, err
	}
	in.heapSeq++
	name := fmt.Sprintf("heap_%s_%d", in.curFn(), in.heapSeq)
	sym, err := in.Syms.AddHeap(name, addr, ctype.NewArray(ctype.Char, size), in.curFn())
	if err != nil {
		return Value{}, err
	}
	return Value{T: ctype.NewPointer(ctype.Char), I: int64(addr), heapSym: sym}, nil
}
