package minic

import (
	"testing"

	"tracedst/internal/ctype"
)

func mustParse(t *testing.T, src string, defines map[string]string) *Program {
	t.Helper()
	p, err := Parse(src, defines)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestParseListing1(t *testing.T) {
	// The paper's Listing 1, verbatim modulo OCR fixes.
	src := `
struct _typeA {
	double d1;
	int myArray[10];
};
struct _typeA glStruct;
struct _typeA glStructArray[10];

int glScalar;
int glArray[10];

void foo(struct _typeA StrcParam[])
{
	int i;
	for (i=0; i<2; i++){
		glStructArray[i].d1 = glScalar;
		glStructArray[i].myArray[i] = glArray[i+1];
		StrcParam[i].d1 = glArray[i];
	}
	return;
}

int main(void)
{
	GLEIPNIR_START_INSTRUMENTATION;
	struct _typeA lcStrcArray[5];
	int i, lcScalar, lcArray[10];

	glScalar = 321;
	lcScalar = 123;

	for (i=0; i<2; i++)
		lcArray[i] = glScalar;

	foo(lcStrcArray);

	GLEIPNIR_STOP_INSTRUMENTATION;
	return 0;
}
`
	p := mustParse(t, src, nil)
	if len(p.Globals) != 4 {
		t.Errorf("globals = %d, want 4", len(p.Globals))
	}
	if p.Globals[1].Name != "glStructArray" || p.Globals[1].Type.Size() != 480 {
		t.Errorf("glStructArray = %+v", p.Globals[1])
	}
	foo := p.Funcs["foo"]
	if foo == nil {
		t.Fatal("foo missing")
	}
	if len(foo.Params) != 1 {
		t.Fatalf("foo params = %+v", foo.Params)
	}
	// Array parameter decays to pointer.
	if _, ok := foo.Params[0].Type.(*ctype.Pointer); !ok {
		t.Errorf("StrcParam type = %v, want pointer", foo.Params[0].Type)
	}
	if foo.Ret != nil {
		t.Errorf("foo return = %v, want void", foo.Ret)
	}
	if p.Funcs["main"].Ret != ctype.Int {
		t.Error("main does not return int")
	}
}

func TestParseTypedefStruct(t *testing.T) {
	src := `
int main(int aArgc, char **aArgv) {
	typedef struct { int mX; double mY; } MyStruct;
	MyStruct lAoS[16];
	for (int lI=0 ; lI<16 ; lI++) {
		lAoS[lI].mX = (int) lI;
		lAoS[lI].mY = (double) lI;
	}
	return 0;
}
`
	p := mustParse(t, src, nil)
	main := p.Funcs["main"]
	if len(main.Params) != 2 {
		t.Fatalf("main params = %+v", main.Params)
	}
	// char **aArgv
	pp, ok := main.Params[1].Type.(*ctype.Pointer)
	if !ok {
		t.Fatalf("aArgv = %v", main.Params[1].Type)
	}
	if _, ok := pp.Elem.(*ctype.Pointer); !ok {
		t.Errorf("aArgv = %v, want char**", main.Params[1].Type)
	}
}

func TestParseTypedefNamesAnonymousStruct(t *testing.T) {
	src := `typedef struct { double mY; int mZ; } RarelyUsed;
RarelyUsed pool[4];
int main(void) { return 0; }`
	p := mustParse(t, src, nil)
	arr := p.Globals[0].Type.(*ctype.Array)
	st := arr.Elem.(*ctype.Struct)
	if st.Name != "RarelyUsed" {
		t.Errorf("typedef struct name = %q", st.Name)
	}
}

func TestParseForVariants(t *testing.T) {
	src := `int main(void) {
	int i, s;
	for (;;) { break; }
	for (i=0;;i++) { if (i>3) break; }
	for (i=0; i<4;) { i++; }
	s = 0;
	for (int j=0; j<3; j++) s += j;
	return s;
}`
	mustParse(t, src, nil)
}

func TestParseControlFlow(t *testing.T) {
	src := `int main(void) {
	int i, n;
	n = 0;
	i = 0;
	while (i < 10) { if (i == 5) { i++; continue; } n += i; i++; }
	do { n--; } while (n > 20);
	return n > 0 ? n : -n;
}`
	mustParse(t, src, nil)
}

func TestParsePointerOps(t *testing.T) {
	src := `
typedef struct { double mY; int mZ; } RarelyUsed;
typedef struct {
	int mFrequentlyUsed;
	RarelyUsed *mRarelyUsed;
} MyOutlinedStruct;
int main(void) {
	RarelyUsed lStorageForRarelyUsed[16];
	MyOutlinedStruct lS2[16];
	for (int lI=0 ; lI<16 ; lI++) {
		lS2[lI].mRarelyUsed = lStorageForRarelyUsed+lI;
	}
	for (int lI=0 ; lI<16 ; lI++) {
		lS2[lI].mFrequentlyUsed = lI;
		lS2[lI].mRarelyUsed->mY = lI;
		lS2[lI].mRarelyUsed->mZ = lI;
	}
	return 0;
}`
	mustParse(t, src, nil)
}

func TestParseSizeofAndDefines(t *testing.T) {
	src := `
#define SETS 16
#define CACHELINE 32
int main(void) {
	const int ITEMSPERLINE = CACHELINE/sizeof(int);
	int lSetHashingArray[1024*SETS];
	for (int lI=0 ; lI<1024 ; lI++) {
		lSetHashingArray[(lI/ITEMSPERLINE)%(SETS*ITEMSPERLINE)+(lI%ITEMSPERLINE)] = lI;
	}
	return 0;
}`
	p := mustParse(t, src, nil)
	_ = p
}

func TestParseConstDimensionFolding(t *testing.T) {
	p := mustParse(t, `int a[4*8]; int main(void){ return sizeof(a); }`, nil)
	if p.Globals[0].Type.Size() != 128 {
		t.Errorf("a size = %d", p.Globals[0].Type.Size())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		``,       // no main
		`int x;`, // no main
		`int main(void) { return 0; } int main(void) { return 1; }`, // dup
		`bogus main(void) { return 0; }`,                            // unknown type
		`int main(void) { int a[n]; return 0; }`,                    // non-constant dim
		`int main(void) { struct X y; return 0; }`,                  // undefined struct
		`int main(void) { return 0 }`,                               // missing ;
		`int main(void) { for (;; }`,                                // bad for
		`int main(void) { int x = ; }`,                              // bad init
		`struct S { void v; }; int main(void){return 0;}`,           // void field
		`int main(void) { x.; return 0; }`,                          // bad member
	} {
		if _, err := Parse(bad, nil); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// (lI/8)%(16*8)+(lI%8) must parse with C precedence; verify via constant
	// folding on a literal instance.
	e, err := Parse(`int a[(40/8)%(16*8)+(40%8)]; int main(void){return 0;}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// (40/8)%128 + 0 = 5
	if e.Globals[0].Type.(*ctype.Array).Len != 5 {
		t.Errorf("folded dim = %d, want 5", e.Globals[0].Type.(*ctype.Array).Len)
	}
}

func TestParseGleipnirMarkers(t *testing.T) {
	p := mustParse(t, `int main(void) {
	GLEIPNIR_START_INSTRUMENTATION;
	GLEIPNIR_STOP_INSTRUMENTATION;
	return 0;
}`, nil)
	body := p.Funcs["main"].Body.Stmts
	g1, ok1 := body[0].(*Gleipnir)
	g2, ok2 := body[1].(*Gleipnir)
	if !ok1 || !ok2 || !g1.On || g2.On {
		t.Errorf("markers = %+v %+v", body[0], body[1])
	}
}
